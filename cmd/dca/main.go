// Command dca is the command-line front end to Dynamic Commutativity
// Analysis. It compiles a MiniC source file and reports, per loop, whether
// DCA finds it commutative — optionally alongside the five baseline
// detectors the paper compares against.
//
// Usage:
//
//	dca analyze [-baselines] [-schedules n] [-json] [-cache-dir d]
//	            [-journal run.wal] [-resume] file.mc
//	dca run file.mc
//	dca ir file.mc
//	dca parallel -fn name -loop k [-workers n] file.mc
//	dca fuzz -seed 1 -count 2000
//	dca serve -addr :8344 [-cache-dir d]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/discopop"
	"dca/internal/engine"
	"dca/internal/fingerprint"
	"dca/internal/icc"
	"dca/internal/idioms"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/journal"
	"dca/internal/obs"
	"dca/internal/opt"
	"dca/internal/parallel"
	"dca/internal/parser"
	"dca/internal/polly"
	"dca/internal/printer"
	"dca/internal/sandbox"
	"dca/internal/server"
	"dca/internal/skeleton"
	"dca/internal/vm"
)

// Exit codes by failure category, so suite drivers can triage without
// parsing stderr.
const (
	exitOK       = 0
	exitErr      = 1 // generic error (compile failure, bad input, ...)
	exitUsage    = 2
	exitFault    = 3 // the program under test faulted
	exitBudget   = 4 // a resource budget (steps/heap/output) ran out
	exitTimeout  = 5 // wall-clock timeout or cancellation
	exitInternal = 6 // internal panic in the analysis
)

// exitCodeFor maps an error to its failure-category exit code.
func exitCodeFor(err error) int {
	if err == nil {
		return exitOK
	}
	var trap *sandbox.Trap
	if errors.As(err, &trap) {
		switch trap.Kind {
		case sandbox.Budget:
			return exitBudget
		case sandbox.Timeout:
			return exitTimeout
		case sandbox.Panic:
			return exitInternal
		default:
			return exitFault
		}
	}
	switch {
	case errors.Is(err, interp.ErrBudget):
		return exitBudget
	case errors.Is(err, interp.ErrCancelled), errors.Is(err, context.Canceled):
		return exitTimeout
	}
	return exitErr
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "analyze":
		err = cmdAnalyze(args)
	case "run":
		err = cmdRun(args)
	case "ir":
		err = cmdIR(args)
	case "parallel":
		err = cmdParallel(args)
	case "fuzz":
		err = cmdFuzz(args)
	case "serve":
		err = cmdServe(args)
	case "fleet-bench":
		err = cmdFleetBench(args)
	case "skeletons":
		err = cmdSkeletons(args)
	case "contexts":
		err = cmdContexts(args)
	case "fmt":
		err = cmdFmt(args)
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dca:", err)
		os.Exit(exitCodeFor(err))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `dca — Dynamic Commutativity Analysis for MiniC programs

commands:
  analyze [-j n] [-baselines] [-schedules n] [-timeout d] [-max-steps n]
          [-retry n] [-no-prescreen] [-debug-snapshots] [-json]
          [-stop-after n] [-no-footprint] [-no-prove] [-no-vm]
          [-journal run.wal] [-resume] [-journal-sync n]
          [-trace out.jsonl] [-cache-dir d] [-cache-mem bytes] [-no-cache]
          [-inject-kind k -inject-at-step n|-inject-at-intrinsic n
           -inject-fn f -inject-loop k] file.mc  run DCA on every loop
  serve [-addr host:port] [-j n] [-max-concurrent n] [-max-queue n]
        [-queue-timeout d] [-cache-dir d] [-cache-mem bytes] [-no-cache]
        [-schedules n] [-timeout d] [-max-steps n] [-retry n]
        [-max-source-bytes n] [-drain-timeout d] [-run-dir d]
        [-fleet url1,url2,...] [-peers url1,url2,... -self url]
        [-trace out.jsonl]                       run the analysis service
                                                 (metrics at GET /metrics;
                                                 -fleet = coordinator mode,
                                                 -peers = peer verdict cache)
  fleet-bench [-nodes n] [-j n] [-bench-out f.json]
                                                 benchmark an in-process fleet
                                                 against a single node
  run [-opt] [-timeout d] [-max-steps n] [-no-vm] file.mc
                                                 execute the program
  ir [-opt] file.mc                              print the IR
  parallel -fn f -loop k [-workers n] [-timeout d] [-max-steps n] file.mc
                                                 run one loop in parallel
  fuzz [-seed n] [-count n] [-j n] [-wall d] [-schedules n] [-timeout d]
       [-max-steps n] [-corpus d] [-par-workers list] [-no-baselines]
       [-bench-out f.json] [-v]                  differential fuzzing campaign
                                                 over generated loop nests
  skeletons file.mc                              classify commutative loops
  contexts -fn f -loop k file.mc                 per-calling-context verdicts
  fmt file.mc                                    print canonical source

exit codes: 0 ok, 1 error, 2 usage, 3 program fault, 4 budget exhausted,
            5 timeout, 6 internal panic`)
}

func compile(path string) (*ir.Program, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return irbuild.Compile(path, string(text))
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	baselines := fs.Bool("baselines", false, "also run the five baseline detectors")
	jsonOut := fs.Bool("json", false, "emit the verdict report as JSON")
	cacheDir := fs.String("cache-dir", "", "persistent verdict-cache directory (empty = memory-only)")
	cacheMem := fs.Int64("cache-mem", 0, "verdict-cache memory budget in bytes (0 = default)")
	noCache := fs.Bool("no-cache", false, "disable the verdict cache")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "concurrent analysis workers (1 = sequential)")
	schedules := fs.Int("schedules", 3, "number of random permutation schedules (plus reverse)")
	noPrescreen := fs.Bool("no-prescreen", false, "disable the coverage prescreen (run every loop's golden run)")
	journalPath := fs.String("journal", "", "write-ahead run journal file (crash-durable verdict log)")
	resume := fs.Bool("resume", false, "replay -journal and skip already-verdicted loops")
	syncEvery := fs.Int("journal-sync", 0, "journal fsync batch size (0 = default, 1 = every record)")
	tracePath := fs.String("trace", "", "append per-loop trace events to this JSONL file")
	debugSnapshots := fs.Bool("debug-snapshots", false, "keep string snapshots alongside digests for mismatch diagnosis")
	stopAfter := fs.Int("stop-after", 0, "stop replaying after this many consecutive agreeing schedules (0 = test all)")
	noFootprint := fs.Bool("no-footprint", false, "disable the footprint fast path (always run schedule replays)")
	noProve := fs.Bool("no-prove", false, "disable the static commutativity prover (every verdict comes from the dynamic stage)")
	noVM := fs.Bool("no-vm", false, "execute with the tree-walking interpreter instead of the bytecode VM")
	timeout := fs.Duration("timeout", 0, "wall-clock limit per execution (0 = none)")
	maxSteps := fs.Int64("max-steps", 0, "instruction budget per execution (0 = default 200M)")
	retry := fs.Int("retry", 1, "doubled-budget retries for budget/timeout traps (negative disables)")
	injectKind := fs.String("inject-kind", "", "fault injection: trap kind to trip (fault|budget|panic)")
	injectStep := fs.Int64("inject-at-step", 0, "fault injection: trip at the Nth instruction of a run")
	injectIntr := fs.Int64("inject-at-intrinsic", 0, "fault injection: trip at the Nth rt_* intrinsic call of a run")
	injectFn := fs.String("inject-fn", "", "fault injection: restrict to this function's loop (with -inject-loop)")
	injectLoop := fs.Int("inject-loop", 0, "fault injection: loop index within -inject-fn")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze: need exactly one source file")
	}
	if *jsonOut && *baselines {
		return fmt.Errorf("analyze: -json and -baselines are mutually exclusive")
	}
	if *resume && *journalPath == "" {
		return fmt.Errorf("analyze: -resume needs -journal")
	}
	if *journalPath != "" && *injectKind != "" {
		return fmt.Errorf("analyze: -journal cannot be combined with fault injection (injected verdicts must never be journaled)")
	}
	prog, err := compile(fs.Arg(0))
	if err != nil {
		return err
	}
	scheds := []dcart.Schedule{dcart.Reverse{}}
	for i := 0; i < *schedules; i++ {
		scheds = append(scheds, dcart.Random{Seed: int64(i + 1)})
	}
	if *noVM {
		vm.SetEnabled(false)
	}
	opts := core.Options{
		Schedules:      scheds,
		MaxSteps:       *maxSteps,
		Timeout:        *timeout,
		Retries:        *retry,
		InjectFn:       *injectFn,
		InjectLoop:     *injectLoop,
		DebugSnapshots: *debugSnapshots,
		StopAfter:      *stopAfter,
		NoFootprint:    *noFootprint,
		NoProve:        *noProve,
	}
	if *injectKind != "" {
		kind, err := parseInjectKind(*injectKind)
		if err != nil {
			return err
		}
		opts.Inject = sandbox.Inject{Kind: kind, AtStep: *injectStep, AtIntrinsic: *injectIntr}
		if opts.Inject.AtStep == 0 && opts.Inject.AtIntrinsic == 0 {
			return fmt.Errorf("analyze: -inject-kind needs -inject-at-step or -inject-at-intrinsic")
		}
	}
	// The cache only pays off across invocations, so it is tied to a
	// persistent directory; -no-cache wins over -cache-dir.
	var diskCache *cache.Cache
	if *cacheDir != "" && !*noCache {
		c, err := cache.Open(*cacheDir, *cacheMem, core.CacheRecordVersion)
		if err != nil {
			return fmt.Errorf("analyze: open cache: %w", err)
		}
		opts.Cache = c
		diskCache = c
	}
	var traceSink *obs.JSONL
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("analyze: open trace file: %w", err)
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		opts.Trace = traceSink
		if diskCache != nil {
			// Disk faults in the verdict cache surface in the same trace.
			diskCache.SetTrace(traceSink)
		}
	}
	eopt := engine.Options{Core: opts, Workers: *jobs, NoPrescreen: *noPrescreen}
	var jnl *journal.Journal
	if *journalPath != "" {
		// The run key ties the journal to this program and configuration:
		// a journal from a different source file or schedule set is
		// discarded on open, never replayed into wrong verdicts.
		runKey := fingerprint.Run(prog, fingerprint.Inputs{
			Schedules:      scheds,
			Limits:         sandbox.Limits{MaxSteps: *maxSteps, Timeout: *timeout},
			Retries:        *retry,
			DebugSnapshots: *debugSnapshots,
			StopAfter:      *stopAfter,
			NoFootprint:    *noFootprint,
			NoProve:        *noProve,
		}).String()
		j, rec, err := journal.Open(*journalPath, runKey, journal.Options{
			Version:   core.CacheRecordVersion,
			SyncEvery: *syncEvery,
			Resume:    *resume,
		})
		if err != nil {
			return fmt.Errorf("analyze: %w", err)
		}
		defer j.Close()
		jnl = j
		eopt.Journal = journalSink{j}
		if *resume {
			if rec.Discarded != "" {
				fmt.Fprintf(os.Stderr, "dca: journal discarded (%s); starting fresh\n", rec.Discarded)
			}
			if rec.TornBytes > 0 {
				fmt.Fprintf(os.Stderr, "dca: journal: dropped %d torn trailing bytes\n", rec.TornBytes)
			}
		}
		if len(rec.Records) > 0 {
			eopt.Resume = make(map[engine.LoopKey][]byte, len(rec.Records))
			for _, r := range rec.Records {
				// Append order; a duplicate loop keeps the latest record.
				eopt.Resume[engine.LoopKey{Fn: r.Fn, Index: r.Index}] = []byte(r.Data)
			}
		}
	}
	// The analysis is scoped to the process signals: Ctrl-C stops replays
	// promptly instead of waiting out their budgets.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	rep, err := engine.Analyze(ctx, prog, eopt)
	if err != nil {
		return err
	}
	if jnl != nil {
		fmt.Fprintf(os.Stderr, "dca: journal: resumed %d loops, appended %d records\n",
			rep.ResumedLoops(), jnl.Appended())
		if jerr := jnl.Err(); jerr != nil {
			fmt.Fprintf(os.Stderr, "dca: warning: journal degraded, this run is not resumable: %v\n", jerr)
		}
	}
	if traceSink != nil {
		if terr := traceSink.Err(); terr != nil {
			return fmt.Errorf("analyze: write trace: %w", terr)
		}
	}
	if *jsonOut {
		data, err := rep.MarshalIndentJSON(time.Since(start))
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return ctx.Err()
	}
	fmt.Println("== DCA ==")
	fmt.Print(rep)
	fmt.Printf("commutative: %d of %d loops\n", rep.Count(core.Commutative), len(rep.Loops))
	if n := rep.Count(core.ResourceExhausted); n > 0 {
		fmt.Printf("resource-exhausted: %d loops (raise -max-steps/-timeout or -retry)\n", n)
	}
	if n := rep.Count(core.Failed); n > 0 {
		fmt.Printf("failed: %d loops\n", n)
	}
	if n := rep.Count(core.Cancelled); n > 0 {
		fmt.Printf("cancelled: %d loops (analysis interrupted)\n", n)
	}
	// An interrupted analysis still prints its partial report, but the
	// process must exit 5 (cancelled), not 0 — partial verdicts are not a
	// completed run.
	if err := ctx.Err(); err != nil {
		return err
	}
	if !*baselines {
		return nil
	}
	// One traced execution serves both dependence profilers.
	prof, err := depprof.Trace(prog, 0)
	if err != nil {
		return err
	}
	dp := depprof.AnalyzeProfile(prog, prof, depprof.DefaultPolicy())
	fmt.Println("\n== Dependence Profiling ==")
	fmt.Print(dp)
	dpp := discopop.AnalyzeProfile(prog, prof)
	fmt.Println("\n== DiscoPoP ==")
	fmt.Print(dpp)
	fmt.Println("\n== Idioms ==")
	printStatic(prog, func(fn string, idx int) (bool, []string) {
		v := idioms.Analyze(prog).Verdict(fn, idx)
		if v == nil {
			return false, nil
		}
		return v.Parallel, v.Reasons
	})
	fmt.Println("\n== Polly ==")
	fmt.Print(polly.Analyze(prog))
	fmt.Println("\n== ICC ==")
	ic := icc.Analyze(prog)
	printStatic(prog, func(fn string, idx int) (bool, []string) {
		v := ic.Verdict(fn, idx)
		if v == nil {
			return false, nil
		}
		return v.Parallel, v.Reasons
	})
	return nil
}

func printStatic(prog *ir.Program, verdict func(fn string, idx int) (bool, []string)) {
	rep, err := core.Analyze(prog, core.Options{Schedules: []dcart.Schedule{dcart.Reverse{}}})
	if err != nil {
		return
	}
	for _, l := range rep.Loops {
		ok, reasons := verdict(l.Fn, l.Index)
		status := "serial"
		if ok {
			status = "parallel"
		}
		if len(reasons) > 0 {
			fmt.Printf("%s/L%d: %s (%s)\n", l.Fn, l.Index, status, reasons[0])
		} else {
			fmt.Printf("%s/L%d: %s\n", l.Fn, l.Index, status)
		}
	}
}

// journalSink adapts *journal.Journal to the engine's JournalSink, keeping
// the engine decoupled from the journal package.
type journalSink struct{ j *journal.Journal }

func (s journalSink) Record(fn string, index int, data []byte) error {
	return s.j.Append(fn, index, data)
}

// parseInjectKind maps a -inject-kind flag value to a sandbox trap kind.
func parseInjectKind(s string) (sandbox.Kind, error) {
	switch s {
	case "fault":
		return sandbox.Fault, nil
	case "budget":
		return sandbox.Budget, nil
	case "panic":
		return sandbox.Panic, nil
	}
	return sandbox.None, fmt.Errorf("unknown inject kind %q (want fault|budget|panic)", s)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "engine workers shared by all requests")
	maxConc := fs.Int("max-concurrent", 0, "concurrent /analyze requests (0 = workers)")
	cacheDir := fs.String("cache-dir", "", "persistent verdict-cache directory (empty = memory-only)")
	cacheMem := fs.Int64("cache-mem", 0, "verdict-cache memory budget in bytes (0 = default)")
	noCache := fs.Bool("no-cache", false, "disable the verdict cache")
	schedules := fs.Int("schedules", 3, "number of random permutation schedules (plus reverse)")
	timeout := fs.Duration("timeout", 30*time.Second, "wall-clock ceiling per execution")
	maxSteps := fs.Int64("max-steps", 0, "instruction budget per execution (0 = default 200M)")
	retry := fs.Int("retry", 1, "doubled-budget retries for budget/timeout traps (negative disables)")
	maxSource := fs.Int64("max-source-bytes", 1<<20, "request body size cap")
	maxQueue := fs.Int("max-queue", 0, "waiting /analyze requests before shedding (0 = 4x max-concurrent)")
	queueTimeout := fs.Duration("queue-timeout", 0, "max wait for an analysis slot before shedding (0 = 10s)")
	drain := fs.Duration("drain-timeout", 15*time.Second, "in-flight drain window on shutdown")
	tracePath := fs.String("trace", "", "append per-loop trace events to this JSONL file")
	fleetNodes := fs.String("fleet", "", "comma-separated worker base URLs; coordinator mode: /analyze shards loops across them")
	dispatchTimeout := fs.Duration("dispatch-timeout", 5*time.Minute, "fleet: wall-clock cap per batch dispatch attempt (0 = request context only)")
	hedgeAfter := fs.Duration("hedge-after", 0, "fleet: re-issue a straggling batch to the ring successor after this delay (0 = no hedging)")
	probeInterval := fs.Duration("probe-interval", time.Second, "fleet: health-prober cadence for re-admitting dead workers")
	nodeRetries := fs.Int("node-retries", 1, "fleet: same-node retries of a transient dispatch failure (negative disables)")
	peers := fs.String("peers", "", "comma-separated fleet member base URLs (identical on every member); enables the peer verdict-cache protocol")
	self := fs.String("self", "", "this node's own base URL within -peers")
	runDir := fs.String("run-dir", "", "directory for async-run write-ahead journals (empty = no journals)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %q", fs.Args())
	}
	cfg := server.Config{
		Workers:        *jobs,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		MaxSourceBytes: *maxSource,
		MaxSteps:       *maxSteps,
		Timeout:        *timeout,
		Retries:        *retry,
		Schedules:      *schedules,
		DrainTimeout:   *drain,
		Fleet:          splitNodes(*fleetNodes),
		PeerNodes:      splitNodes(*peers),
		PeerSelf:       *self,
		RunDir:         *runDir,
	}
	cfg.DispatchTimeout = *dispatchTimeout
	cfg.HedgeAfter = *hedgeAfter
	cfg.ProbeInterval = *probeInterval
	cfg.NodeRetries = *nodeRetries
	if len(cfg.PeerNodes) > 0 && cfg.PeerSelf == "" {
		return fmt.Errorf("serve: -peers requires -self (this node's own URL in the list)")
	}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: open trace file: %w", err)
		}
		defer f.Close()
		cfg.Trace = obs.NewJSONL(f)
	}
	if !*noCache {
		// Unlike one-shot analyze, the daemon benefits from a memory-only
		// cache too: it lives as long as the process.
		c, err := cache.Open(*cacheDir, *cacheMem, core.CacheRecordVersion)
		if err != nil {
			return fmt.Errorf("serve: open cache: %w", err)
		}
		cfg.Cache = c
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	role := "standalone"
	switch {
	case len(cfg.Fleet) > 0:
		role = fmt.Sprintf("coordinator over %d workers", len(cfg.Fleet))
	case len(cfg.PeerNodes) > 0:
		role = fmt.Sprintf("fleet worker (%d peers)", len(cfg.PeerNodes))
	}
	fmt.Fprintf(os.Stderr, "dca serve: listening on %s (%d workers, %s)\n", *addr, *jobs, role)
	if err := server.New(cfg).ListenAndServe(ctx, *addr); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(os.Stderr, "dca serve: drained, bye")
	return nil
}

// splitNodes parses a comma-separated node list, dropping empty entries
// and trailing slashes so "http://a:1," and "http://a:1/" both name the
// same ring member.
func splitNodes(s string) []string {
	var nodes []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimRight(strings.TrimSpace(n), "/")
		if n != "" {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	optimize := fs.Bool("opt", false, "optimize the IR before executing")
	timeout := fs.Duration("timeout", 0, "wall-clock limit (0 = none)")
	maxSteps := fs.Int64("max-steps", 0, "instruction budget (0 = interpreter default)")
	noVM := fs.Bool("no-vm", false, "execute with the tree-walking interpreter instead of the bytecode VM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one source file")
	}
	if *noVM {
		vm.SetEnabled(false)
	}
	prog, err := compile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *optimize {
		stats := opt.Program(prog)
		fmt.Fprintf(os.Stderr, "(opt: %d rewrites)\n", stats.Total())
	}
	oc := sandbox.Run(nil, prog, interp.Config{Out: os.Stdout},
		sandbox.Limits{MaxSteps: *maxSteps, Timeout: *timeout}, nil)
	if !oc.OK() {
		return oc.Trap
	}
	fmt.Fprintf(os.Stderr, "(%d steps)\n", oc.Result.Steps)
	return nil
}

func cmdIR(args []string) error {
	fs := flag.NewFlagSet("ir", flag.ExitOnError)
	optimize := fs.Bool("opt", false, "optimize the IR before printing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("ir: need exactly one source file")
	}
	prog, err := compile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *optimize {
		opt.Program(prog)
	}
	fmt.Print(prog)
	return nil
}

func cmdSkeletons(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("skeletons: need exactly one source file")
	}
	prog, err := compile(args[0])
	if err != nil {
		return err
	}
	rep, err := core.Analyze(prog, core.Options{})
	if err != nil {
		return err
	}
	for _, l := range rep.Loops {
		if !l.Verdict.IsParallelizable() {
			continue
		}
		inst, err := instrument.Loop(prog, l.Fn, l.Index)
		if err != nil {
			continue
		}
		info := skeleton.Classify(inst)
		fmt.Printf("%-40s %-12s accumulators=%v heapWrites=%d allocates=%v\n",
			l.ID, info.Kind, info.Accumulators, info.HeapWrites, info.Allocates)
	}
	return nil
}

func cmdFmt(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("fmt: need exactly one source file")
	}
	text, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := parser.Parse(args[0], string(text))
	if err != nil {
		return err
	}
	fmt.Print(printer.Print(prog))
	return nil
}

func cmdContexts(args []string) error {
	fs := flag.NewFlagSet("contexts", flag.ExitOnError)
	fn := fs.String("fn", "main", "function containing the loop")
	loop := fs.Int("loop", 0, "loop index within the function")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("contexts: need exactly one source file")
	}
	prog, err := compile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := core.AnalyzeLoopContexts(prog, *fn, *loop, core.Options{})
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

func cmdParallel(args []string) error {
	fs := flag.NewFlagSet("parallel", flag.ExitOnError)
	fn := fs.String("fn", "main", "function containing the loop")
	loop := fs.Int("loop", 0, "loop index within the function")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	timeout := fs.Duration("timeout", 0, "wall-clock limit for the whole run (0 = none)")
	maxSteps := fs.Int64("max-steps", 0, "instruction budget per worker (0 = interpreter default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("parallel: need exactly one source file")
	}
	prog, err := compile(fs.Arg(0))
	if err != nil {
		return err
	}
	inst, err := instrument.Loop(prog, *fn, *loop)
	if err != nil {
		return err
	}
	res, err := parallel.RunLoop(inst, parallel.Options{Workers: *workers, Out: os.Stdout, Timeout: *timeout, MaxSteps: *maxSteps})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "(%d invocations, %d iterations over %d workers)\n",
		res.Invocations, res.Iterations, res.Workers)
	return nil
}
