// Package icc reimplements the auto-parallelization decision procedure of a
// mature industrial compiler in the style of Intel ICC [53] with the
// profitability heuristic disabled (par-threshold=0), as configured for
// detection in the paper. Compared with the Polly model it additionally
//
//   - inlines pure functions (calls to side-effect-free user functions are
//     acceptable in candidate loops — the paper notes ICC's robustness comes
//     from "more aggressive inlining of pure functions");
//   - accepts scalar reduction and conditional min/max recurrences as well
//     as inductions; and
//   - tolerates read-only pointer field accesses (there are no field stores
//     to conflict with).
//
// It still requires affine subscripts for every access to written arrays,
// so indirect histograms (a[b[i]] += e) remain out of reach — those belong
// to the Idioms detector.
package icc

import (
	"fmt"

	"dca/internal/affine"
	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/pointer"
	"dca/internal/polly"
	"dca/internal/purity"
	"dca/internal/scalar"
)

// LoopKey aliases the shared static-loop key.
type LoopKey = polly.LoopKey

// Verdict aliases the shared static verdict shape.
type Verdict = polly.Verdict

// Report holds ICC's verdicts for one program.
type Report struct {
	Prog     *ir.Program
	Verdicts map[LoopKey]*Verdict
}

// Parallelizable counts loops reported parallel.
func (r *Report) Parallelizable() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Parallel {
			n++
		}
	}
	return n
}

// Verdict returns the verdict for fn's index-th loop, or nil.
func (r *Report) Verdict(fn string, index int) *Verdict {
	return r.Verdicts[LoopKey{Fn: fn, Index: index}]
}

// Analyze statically classifies every loop of the program.
func Analyze(prog *ir.Program) *Report {
	rep := &Report{Prog: prog, Verdicts: map[LoopKey]*Verdict{}}
	pa := pointer.Analyze(prog)
	pur := purity.Analyze(prog)
	for _, fn := range prog.Funcs {
		env := affine.NewEnv(fn)
		for _, loop := range env.Loops {
			v := &Verdict{Key: LoopKey{Fn: fn.Name, Index: loop.Index}}
			rep.Verdicts[v.Key] = v
			v.Reasons = check(env, pa, pur, loop)
			v.Parallel = len(v.Reasons) == 0
		}
	}
	return rep
}

func check(env *affine.Env, pa *pointer.Analysis, pur *purity.Info, loop *cfg.Loop) []string {
	var reasons []string
	info := env.Info[loop]
	if !info.OK {
		return []string{"loop not countable: " + info.Why}
	}
	if len(loop.Exits) != 1 {
		reasons = append(reasons, "multiple loop exits")
	}
	if info.Step < 0 {
		// The modelled dependence tests only handle canonical upward
		// counted loops (mirroring the direction-sensitivity of classic
		// vectorizing compilers); the polyhedral model has no such limit.
		reasons = append(reasons, "non-canonical downward-counted loop")
	}
	fieldLoadBases := map[*ir.Local]bool{}
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Print:
				reasons = append(reasons, "I/O in loop")
			case *ir.Call:
				if i.Builtin {
					continue
				}
				if !pur.Pure(i.Callee) || pur.Allocates[i.Callee] {
					reasons = append(reasons, fmt.Sprintf("call to impure function %q", i.Callee))
				}
			case *ir.Store:
				if i.FieldName != "" {
					reasons = append(reasons, "store through pointer field")
				}
			case *ir.Load:
				if i.FieldName != "" {
					fieldLoadBases[i.Base.Local] = true
				}
			case *ir.Alloc:
				reasons = append(reasons, "allocation in loop")
			}
		}
	}
	if len(reasons) > 0 {
		return dedup(reasons)
	}
	// Scalars: induction, reduction and min/max recurrences are handled.
	for _, c := range scalar.Classify(env.Env, loop) {
		if c.Class == scalar.Fatal {
			reasons = append(reasons, fmt.Sprintf("unresolvable loop-carried scalar %q", c.Local.Name))
		}
	}
	if len(reasons) > 0 {
		return dedup(reasons)
	}
	// Memory: every access to a written object must be affine; field loads
	// are read-only by the checks above and cannot conflict with array
	// stores (struct and array regions are disjoint).
	var arrayAccs []affine.Access
	for _, a := range env.Accesses(loop) {
		if a.Field != "" {
			continue
		}
		arrayAccs = append(arrayAccs, a)
	}
	writtenBases := map[*ir.Local]bool{}
	for _, a := range arrayAccs {
		if a.IsWrite {
			writtenBases[a.Base] = true
		}
	}
	for _, a := range arrayAccs {
		if a.SubErr == nil {
			continue
		}
		if a.IsWrite {
			reasons = append(reasons, "non-affine store subscript: "+a.SubErr.Error())
			continue
		}
		// Non-affine read: fatal only if it may alias a written object.
		for w := range writtenBases {
			if a.Base == w || aliasLocals(pa, a.Base, w) {
				reasons = append(reasons, "non-affine load subscript aliases a written array")
				break
			}
		}
	}
	if len(reasons) > 0 {
		return dedup(reasons)
	}
	reasons = append(reasons, polly.CarriedMemoryDeps(env, pa, loop, arrayAccs, nil)...)
	return dedup(reasons)
}

func aliasLocals(pa *pointer.Analysis, a, b *ir.Local) bool {
	if a == nil || b == nil {
		return true
	}
	for _, s := range pa.PointsTo(a) {
		for _, t := range pa.PointsTo(b) {
			if s == t {
				return true
			}
		}
	}
	return false
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
