package token_test

import (
	"testing"

	"dca/internal/token"
)

func TestKindStrings(t *testing.T) {
	cases := map[token.Kind]string{
		token.PLUS: "+", token.ARROW: "->", token.SHL: "<<",
		token.KwFunc: "func", token.KwWhile: "while", token.EOF: "EOF",
		token.IDENT: "IDENT", token.Kind(9999): "UNKNOWN",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestKeywordTable(t *testing.T) {
	for spelling, kind := range token.Keywords {
		if kind.String() != spelling {
			t.Errorf("keyword %q maps to kind printing %q", spelling, kind.String())
		}
	}
	if len(token.Keywords) != 19 {
		t.Errorf("keyword count = %d", len(token.Keywords))
	}
}

func TestPredicates(t *testing.T) {
	for _, k := range []token.Kind{token.ASSIGN, token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ, token.PERCENTEQ} {
		if !k.IsAssignOp() {
			t.Errorf("%s should be an assign op", k)
		}
	}
	if token.EQ.IsAssignOp() || token.PLUS.IsAssignOp() {
		t.Error("comparison/plus misclassified as assignment")
	}
	for _, k := range []token.Kind{token.KwInt, token.KwFloat, token.KwBool, token.KwString} {
		if !k.IsTypeKeyword() {
			t.Errorf("%s should be a type keyword", k)
		}
	}
	if token.KwFunc.IsTypeKeyword() {
		t.Error("func is not a type keyword")
	}
}

func TestTokenString(t *testing.T) {
	tok := token.Token{Kind: token.IDENT, Text: "foo"}
	if tok.String() != "IDENT(foo)" {
		t.Errorf("token string = %q", tok.String())
	}
	op := token.Token{Kind: token.PLUS, Text: "+"}
	if op.String() != "+" {
		t.Errorf("op string = %q", op.String())
	}
}
