package discopop_test

import (
	"testing"

	"dca/internal/discopop"
	"dca/internal/irbuild"
)

func analyze(t *testing.T, src string) *discopop.Report {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := discopop.Analyze(prog, 0)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func TestDoallDetected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) { a[i] = i; }
	print(a[0]);
}`)
	if v := rep.Verdict("main", 0); v == nil || !v.Parallel {
		t.Errorf("doall verdict = %+v", v)
	}
	if rep.ParallelLoops() != 1 {
		t.Errorf("parallel loops = %d", rep.ParallelLoops())
	}
}

func TestMinMaxNotDetected(t *testing.T) {
	// DiscoPoP's pattern matcher lacks conditional min/max reductions.
	rep := analyze(t, `
func main() {
	var a []int = new [16]int;
	var m int = 0;
	for (var i int = 0; i < 16; i++) {
		if (a[i] > m) { m = a[i]; }
	}
	print(m);
}`)
	if v := rep.Verdict("main", 0); v == nil || v.Parallel {
		t.Errorf("minmax must be serial for DiscoPoP, got %+v", v)
	}
}

func TestImpureCallNotDetected(t *testing.T) {
	// Calls with side effects cross computational units.
	rep := analyze(t, `
func upd(a []int, i int) { a[i] = i; }
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) { upd(a, i); }
	print(a[0]);
}`)
	if v := rep.Verdict("main", 0); v == nil || v.Parallel {
		t.Errorf("impure-call loop must be serial for DiscoPoP, got %+v", v)
	}
}

func TestTaskSectionIndependent(t *testing.T) {
	rep := analyze(t, `
func pure2(x int) int { return x + 1; }
func work(a []int, b []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] = pure2(i); }
	for (var j int = 0; j < n; j++) { b[j] = pure2(j * 2); }
}
func main() {
	var a []int = new [8]int;
	var b []int = new [8]int;
	work(a, b, 8);
	print(a[0] + b[0]);
}`)
	if len(rep.TaskSections) != 1 {
		t.Fatalf("task sections = %d, want 1\n%s", len(rep.TaskSections), rep)
	}
	if rep.ParallelRegions() != rep.ParallelLoops()+1 {
		t.Error("region count must add the section")
	}
}

func TestTaskSectionDependentNotCounted(t *testing.T) {
	rep := analyze(t, `
func work(a []int, n int) int {
	var s int = 0;
	for (var i int = 0; i < n; i++) { a[i] = i; }
	for (var j int = 0; j < n; j++) { s += a[j]; }
	return s;
}
func main() {
	var a []int = new [8]int;
	print(work(a, 8));
}`)
	if len(rep.TaskSections) != 0 {
		t.Errorf("dependent loops must not form a section: %v", rep.TaskSections)
	}
}

func TestTaskSectionScalarFlowNotCounted(t *testing.T) {
	rep := analyze(t, `
func work(a []int, b []int, n int) int {
	var s int = 0;
	for (var i int = 0; i < n; i++) { s += i; a[i] = i; }
	var t int = 0;
	for (var j int = 0; j < n; j++) { t += s; b[j] = j; }
	return t;
}
func main() {
	var a []int = new [8]int;
	var b []int = new [8]int;
	print(work(a, b, 8));
}`)
	if len(rep.TaskSections) != 0 {
		t.Errorf("scalar flow between units must block the section: %v", rep.TaskSections)
	}
}

func TestUnexecutedUnitsNotSections(t *testing.T) {
	rep := analyze(t, `
func pure2(x int) int { return x + 1; }
func work(a []int, b []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] = pure2(i); }
	for (var j int = 0; j < n; j++) { b[j] = pure2(j); }
}
func main() {
	var a []int = new [8]int;
	var b []int = new [8]int;
	work(a, b, 0); // loops never execute
	print(a[0] + b[0]);
}`)
	if len(rep.TaskSections) != 0 {
		t.Errorf("unexecuted units must not form sections: %v", rep.TaskSections)
	}
}
