package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCounterAndGaugeConcurrent: the atomic hot paths survive concurrent
// hammering with exact totals. Run under -race this is the package's
// sharing-discipline test.
func TestCounterAndGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	v := r.CounterVec("v_total", "test vec", "kind")
	g := r.Gauge("g", "test gauge")
	h := r.Histogram("h_seconds", "test histogram", []float64{0.01, 0.1, 1})

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := fmt.Sprintf("k%d", w%2)
			for i := 0; i < per; i++ {
				c.Inc()
				v.Inc(kind)
				g.Inc()
				g.Dec()
				h.Observe(0.05)
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if got := v.Value("k0") + v.Value("k1"); got != workers*per {
		t.Errorf("vec total = %d, want %d", got, workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	want := 0.05 * workers * per
	if s := h.Sum(); s < want*0.999 || s > want*1.001 {
		t.Errorf("histogram sum = %g, want ~%g", s, want)
	}
}

// TestWritePrometheus: the exposition output carries HELP/TYPE headers,
// label sets, and cumulative histogram buckets in the text 0.0.4 shape.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests")
	c.Add(3)
	v := r.CounterVec("traps_total", "traps", "kind")
	v.Inc("fault")
	v.Add("budget", 2)
	g := r.Gauge("in_flight", "in flight")
	g.Set(7)
	r.GaugeFunc("pool_in_use", "pool", func() float64 { return 4 })
	r.CounterFunc("ext_total", "external", func() float64 { return 9 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP req_total requests\n# TYPE req_total counter\nreq_total 3\n",
		"# TYPE traps_total counter\ntraps_total{kind=\"budget\"} 2\ntraps_total{kind=\"fault\"} 1\n",
		"# TYPE in_flight gauge\nin_flight 7\n",
		"# TYPE pool_in_use gauge\npool_in_use 4\n",
		"# TYPE ext_total counter\next_total 9\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBucketEdges: an observation equal to a bound lands in that
// bound's bucket (le is inclusive), and larger ones fall through to +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e_seconds", "edges", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"e_seconds_bucket{le=\"1\"} 1\n",
		"e_seconds_bucket{le=\"2\"} 2\n",
		"e_seconds_bucket{le=\"+Inf\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "escapes", "why")
	v.Inc("a\"b\\c\nd")
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if want := `esc_total{why="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("output missing %q:\n%s", want, buf.String())
	}
}

// TestJSONL: every emitted event becomes one well-formed JSON line with a
// timestamp, concurrent emitters included.
func TestJSONL(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewJSONL(safe)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.Emit(Event{Stage: StageReplay, Schedule: fmt.Sprintf("s%d", w), DurationMS: 1.5})
			}
		}(w)
	}
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("got %d lines, want 100", len(lines))
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Time == "" || ev.Stage != StageReplay {
			t.Fatalf("line missing stamp or stage: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestAnalysisMetricsEmit: the event→instrument mapping counts replays,
// traps, retries, cache outcomes, and verdicts.
func TestAnalysisMetricsEmit(t *testing.T) {
	r := NewRegistry()
	m := NewAnalysisMetrics(r)
	m.Emit(Event{Stage: StageReference, DurationMS: 100})
	m.Emit(Event{Stage: StageGolden, DurationMS: 50, Retries: 1})
	m.Emit(Event{Stage: StageReplay, DurationMS: 50, Trap: "fault"})
	m.Emit(Event{Stage: StageCache, Outcome: OutcomeHit})
	m.Emit(Event{Stage: StageCache, Outcome: OutcomeMiss})
	m.Emit(Event{Stage: StageVerdict, Verdict: "commutative"})
	m.Emit(Event{Stage: StageVerdict, Verdict: "cancelled"})

	if m.Replays.Value() != 3 {
		t.Errorf("replays = %d, want 3", m.Replays.Value())
	}
	if m.Traps.Value("fault") != 1 {
		t.Errorf("fault traps = %d, want 1", m.Traps.Value("fault"))
	}
	if m.Retries.Value() != 1 {
		t.Errorf("retries = %d, want 1", m.Retries.Value())
	}
	if m.CacheHits.Value() != 1 || m.CacheMisses.Value() != 1 {
		t.Errorf("cache = %d/%d, want 1/1", m.CacheHits.Value(), m.CacheMisses.Value())
	}
	if m.Verdicts.Value("commutative") != 1 || m.Verdicts.Value("cancelled") != 1 {
		t.Error("verdict counters wrong")
	}
	if m.ReplaySeconds.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", m.ReplaySeconds.Count())
	}
}
