package fingerprint_test

import (
	"testing"
	"time"

	"dca/internal/dcart"
	"dca/internal/fingerprint"
	"dca/internal/instrument"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/sandbox"
)

const baseSrc = `
func helper(x int) int { return x * 2; }
func main() {
	var array []int = new [32]int;
	for (var i int = 0; i < 32; i++) { array[i] = helper(i); }
	var s int = 0;
	for (var i int = 0; i < 32; i++) { s += array[i]; }
	print(s);
}`

// payloadChanged differs from baseSrc only inside the first loop's payload.
const payloadChanged = `
func helper(x int) int { return x * 2; }
func main() {
	var array []int = new [32]int;
	for (var i int = 0; i < 32; i++) { array[i] = helper(i) + 1; }
	var s int = 0;
	for (var i int = 0; i < 32; i++) { s += array[i]; }
	print(s);
}`

// calleeChanged differs from baseSrc only in a function the loop calls —
// the loop body's own IR is unchanged, but the dynamic stage executes the
// callee, so the key must still change.
const calleeChanged = `
func helper(x int) int { return x * 3; }
func main() {
	var array []int = new [32]int;
	for (var i int = 0; i < 32; i++) { array[i] = helper(i); }
	var s int = 0;
	for (var i int = 0; i < 32; i++) { s += array[i]; }
	print(s);
}`

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func keyOf(t *testing.T, src string, loop int, in fingerprint.Inputs) fingerprint.Key {
	t.Helper()
	prog := compile(t, src)
	inst, err := instrument.Loop(prog, "main", loop)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return fingerprint.Loop(prog, "main", loop, inst, in)
}

func defaultInputs() fingerprint.Inputs {
	return fingerprint.Inputs{
		Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}},
		Limits:    sandbox.Limits{MaxSteps: 200_000_000},
		Retries:   1,
	}
}

// TestDeterministic: the same inputs always produce the same key, including
// across independent compilations of the same source.
func TestDeterministic(t *testing.T) {
	a := keyOf(t, baseSrc, 0, defaultInputs())
	b := keyOf(t, baseSrc, 0, defaultInputs())
	if a != b {
		t.Fatalf("same inputs produced different keys: %s vs %s", a, b)
	}
	if len(a.String()) != 32 {
		t.Fatalf("key %q is not 32 hex digits", a)
	}
}

// TestSensitivity: every input that can reach a verdict must change the
// key; each case flips exactly one input against the base.
func TestSensitivity(t *testing.T) {
	base := keyOf(t, baseSrc, 0, defaultInputs())

	cases := []struct {
		name string
		key  fingerprint.Key
	}{
		{"payload IR change", keyOf(t, payloadChanged, 0, defaultInputs())},
		{"callee change outside the loop body", keyOf(t, calleeChanged, 0, defaultInputs())},
		{"different loop of the same program", keyOf(t, baseSrc, 1, defaultInputs())},
		{"schedule seed change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.Schedules = []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 2}}
			return in
		}())},
		{"schedule count change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.Schedules = append(in.Schedules, dcart.Random{Seed: 2})
			return in
		}())},
		{"step budget change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.Limits.MaxSteps = 100
			return in
		}())},
		{"timeout change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.Limits.Timeout = time.Second
			return in
		}())},
		{"heap budget change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.Limits.MaxHeapObjects = 10_000
			return in
		}())},
		{"retry budget change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.Retries = 2
			return in
		}())},
		{"debug-snapshots change", keyOf(t, baseSrc, 0, func() fingerprint.Inputs {
			in := defaultInputs()
			in.DebugSnapshots = true
			return in
		}())},
	}
	seen := map[fingerprint.Key]string{base: "base"}
	for _, c := range cases {
		if c.key == base {
			t.Errorf("%s: key did not change", c.name)
		}
		if prev, dup := seen[c.key]; dup {
			t.Errorf("%s: key collides with %s", c.name, prev)
		}
		seen[c.key] = c.name
	}
}

// TestRunKey: the run-level fingerprint is deterministic, sensitive to
// program and configuration changes, position-insensitive, and distinct
// from every loop key of the same run.
func TestRunKey(t *testing.T) {
	runKey := func(src string, in fingerprint.Inputs) fingerprint.Key {
		return fingerprint.Run(compile(t, src), in)
	}
	base := runKey(baseSrc, defaultInputs())
	if base != runKey(baseSrc, defaultInputs()) {
		t.Fatal("same inputs produced different run keys")
	}
	if base != runKey("// comment\n\n"+baseSrc, defaultInputs()) {
		t.Fatal("position-only change invalidated the run key")
	}
	if base == runKey(calleeChanged, defaultInputs()) {
		t.Fatal("program change did not change the run key")
	}
	changed := defaultInputs()
	changed.Schedules = []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 2}}
	if base == runKey(baseSrc, changed) {
		t.Fatal("schedule change did not change the run key")
	}
	changed = defaultInputs()
	changed.Retries = 2
	if base == runKey(baseSrc, changed) {
		t.Fatal("retry-budget change did not change the run key")
	}
	// A run key must never alias a loop key: the journal and the verdict
	// cache share a key namespace shape (32 hex digits).
	for loop := 0; loop < 2; loop++ {
		if base == keyOf(t, baseSrc, loop, defaultInputs()) {
			t.Fatalf("run key collides with loop %d key", loop)
		}
	}
}

// TestPositionInsensitive: formatting-only source changes (moved lines,
// comments) shift positions but not structure; the key must not change.
func TestPositionInsensitive(t *testing.T) {
	shifted := "// leading comment\n\n\n" + baseSrc
	a := keyOf(t, baseSrc, 0, defaultInputs())
	b := keyOf(t, shifted, 0, defaultInputs())
	if a != b {
		t.Fatalf("position-only change invalidated the key: %s vs %s", a, b)
	}
}
