package core

import (
	"encoding/json"

	"dca/internal/fingerprint"
	"dca/internal/instrument"
	"dca/internal/ir"
	"dca/internal/sandbox"
)

// CacheRecordVersion is the schema version of the serialized verdict
// records the analysis stores in a VerdictCache. Callers opening a
// persistent cache (internal/cache) pass it as the store's application
// version, so a record-format change invalidates every stale entry instead
// of decoding it. The fingerprint schema needs no version here: it is
// hashed into every key (fingerprint.Version), so key schemas can never
// alias.
const CacheRecordVersion uint32 = 2

// Verdict provenance values. Every analyzed loop records whether its
// outcome was computed by running the dynamic stage or served from the
// verdict cache.
const (
	// ProvenanceComputed: the verdict was produced by running the analysis
	// (including static-stage short circuits, which always run fresh).
	ProvenanceComputed = "computed"
	// ProvenanceCached: the dynamic-stage outcome was served from the
	// verdict cache; no golden run or replay executed.
	ProvenanceCached = "cached"
	// ProvenanceJournaled: the whole loop outcome was replayed from a
	// write-ahead run journal (`dca analyze -resume`); neither the static
	// nor the dynamic stage ran in this process.
	ProvenanceJournaled = "journaled"
	// ProvenanceFootprint: the golden run proved the loop's iterations
	// touch pairwise-disjoint heap cells, so the Commutative verdict was
	// issued without running any schedule replay.
	ProvenanceFootprint = "footprint-proved"
	// ProvenanceProved: the static commutativity prover (internal/prove)
	// closed a symbolic proof, so the Commutative verdict was issued after
	// the golden run (the coverage witness) without any schedule replay.
	ProvenanceProved = "static-proved"
)

// VerdictCache is the incremental-analysis store consulted before each
// loop's dynamic stage. Keys are loop-analysis fingerprints
// (internal/fingerprint), values are serialized verdict records; both
// methods must be safe for concurrent use. internal/cache provides the
// two-tier production implementation.
type VerdictCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// cachedVerdict is the serialized dynamic-stage outcome. Only fields the
// dynamic stage determines are stored: identity fields (Fn, ID, Pos, ...)
// are recomputed from the program on every run, and Provenance, Replays,
// and Elapsed describe the serving run, not the verdict.
type cachedVerdict struct {
	Verdict         Verdict `json:"verdict"`
	Reason          string  `json:"reason,omitempty"`
	Invocations     int     `json:"invocations"`
	Iterations      int64   `json:"iterations"`
	SchedulesTested int     `json:"schedules_tested"`
	Retries         int     `json:"retries"`
	TrapKind        string  `json:"trap_kind,omitempty"`
	// Replay-reduction counters: how the verdict's evidence was bounded.
	// A footprint-proved record keeps its SkippedFootprint count so warm
	// runs still report how much replay work the proof avoided; likewise a
	// static-proved record keeps SkippedProve (the skipped replays).
	SkippedStop      int `json:"skipped_stop,omitempty"`
	SkippedFootprint int `json:"skipped_footprint,omitempty"`
	SkippedProve     int `json:"skipped_prove,omitempty"`
}

// loopKey fingerprints one loop analysis under the active options.
func loopKey(prog *ir.Program, fnName string, loopIndex int, inst *instrument.Instrumented, opt *Options) string {
	return fingerprint.Loop(prog, fnName, loopIndex, inst, fingerprint.Inputs{
		Schedules:      opt.Schedules,
		Limits:         opt.Limits(),
		Retries:        opt.Retries,
		DebugSnapshots: opt.DebugSnapshots,
		StopAfter:      opt.StopAfter,
		NoFootprint:    opt.NoFootprint,
		NoProve:        opt.NoProve,
	}).String()
}

// encodeCachedVerdict serializes a freshly computed dynamic-stage outcome.
func encodeCachedVerdict(res *LoopResult) []byte {
	data, err := json.Marshal(cachedVerdict{
		Verdict:          res.Verdict,
		Reason:           res.Reason,
		Invocations:      res.Invocations,
		Iterations:       res.Iterations,
		SchedulesTested:  res.SchedulesTested,
		Retries:          res.Retries,
		TrapKind:         res.TrapKind,
		SkippedStop:      res.SkippedStop,
		SkippedFootprint: res.SkippedFootprint,
		SkippedProve:     res.SkippedProve,
	})
	if err != nil {
		return nil // never happens for this struct; a nil record is simply not stored
	}
	return data
}

// decodeCachedVerdict restores a stored outcome into res. It returns false
// — and leaves res usable for a fresh computation — when the record does
// not decode to a plausible verdict, so a corrupted or stale cache entry
// degrades to a miss rather than a wrong result.
func decodeCachedVerdict(data []byte, res *LoopResult) bool {
	var cv cachedVerdict
	if err := json.Unmarshal(data, &cv); err != nil {
		return false
	}
	if cv.Verdict < 0 || int(cv.Verdict) >= len(verdictNames) {
		return false
	}
	if cv.Verdict == Cancelled {
		// No writer stores Cancelled (a statement about a dead context, not
		// the program); a record claiming it is corrupt or forged.
		return false
	}
	res.Verdict = cv.Verdict
	res.Reason = cv.Reason
	res.Invocations = cv.Invocations
	res.Iterations = cv.Iterations
	res.SchedulesTested = cv.SchedulesTested
	res.Retries = cv.Retries
	res.TrapKind = cv.TrapKind
	res.SkippedStop = cv.SkippedStop
	res.SkippedFootprint = cv.SkippedFootprint
	res.SkippedProve = cv.SkippedProve
	return true
}

// EncodeLoopRecord serializes a completed loop outcome in the shared
// verdict-record schema (CacheRecordVersion) — the payload format of both
// the verdict cache and the write-ahead run journal. Returns nil for a
// result that must not be persisted.
func EncodeLoopRecord(res *LoopResult) []byte {
	if res.Verdict == Cancelled {
		// A cancelled loop is a statement about the caller's context, not
		// the program; persisting it would resume into a hole.
		return nil
	}
	return encodeCachedVerdict(res)
}

// DecodeLoopRecord restores a persisted loop outcome into res, reporting
// false — and leaving res untouched, usable for a fresh computation — when
// the record does not decode to a plausible verdict.
func DecodeLoopRecord(data []byte, res *LoopResult) bool {
	return decodeCachedVerdict(data, res)
}

// cacheableVerdict reports whether a computed outcome may be stored.
// Timeout-trapped outcomes depend on wall-clock speed, panic-trapped ones
// on analysis bugs, and cancelled ones on the caller's context — none is a
// deterministic function of the fingerprinted inputs, so they are
// recomputed every run. Everything else (commutative, non-commutative,
// not-executed, fault-failed, and budget-exhausted outcomes) is
// deterministic under the interpreter.
func cacheableVerdict(res *LoopResult) bool {
	if res.Verdict == Cancelled {
		return false
	}
	switch res.TrapKind {
	case sandbox.Timeout.String(), sandbox.Panic.String():
		return false
	}
	return true
}
