package types_test

import (
	"strings"
	"testing"

	"dca/internal/parser"
	"dca/internal/types"
)

func check(t *testing.T, src string) (*types.Info, error) {
	t.Helper()
	prog, err := parser.Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return types.Check(prog)
}

func mustCheck(t *testing.T, src string) *types.Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func TestBasicProgram(t *testing.T) {
	info := mustCheck(t, `
struct Node { val int; next *Node; }
func sum(head *Node) int {
	var s int = 0;
	var p *Node = head;
	while (p != nil) { s += p->val; p = p->next; }
	return s;
}
func main() {
	var n *Node = new Node;
	n->val = 3;
	print(sum(n));
}
`)
	if info.Funcs["sum"].Result.Kind != types.Int {
		t.Errorf("sum result = %s", info.Funcs["sum"].Result)
	}
	if info.Structs["Node"].FieldIndex("next") != 1 {
		t.Errorf("next index = %d", info.Structs["Node"].FieldIndex("next"))
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undefined var", `func main() { x = 1; }`, "undefined variable"},
		{"undefined func", `func main() { f(); }`, "undefined function"},
		{"bad assign", `func main() { var x int = 0; x = true; }`, "cannot assign"},
		{"bad init", `func main() { var x int = 1.5; }`, "cannot initialize"},
		{"bad cond", `func main() { if (1) { } }`, "must be bool"},
		{"while cond", `func main() { while (2) { } }`, "must be bool"},
		{"bad binop", `func main() { var x int = 1 + true; }`, "invalid operands"},
		{"bad index", `func main() { var x int = 3; print(x[0]); }`, "cannot index"},
		{"float index", `func main() { var a []int = new [4]int; print(a[1.5]); }`, "index must be int"},
		{"no field", `struct S { a int; } func main() { var s *S = new S; print(s->b); }`, "no field"},
		{"field on scalar", `func main() { var x int = 0; print(x->y); }`, "struct pointer"},
		{"arity", `func f(a int) { } func main() { f(1, 2); }`, "2 args, want 1"},
		{"arg type", `func f(a int) { } func main() { f(true); }`, "cannot use bool"},
		{"missing return", `func f() int { return; }`, "missing return value"},
		{"void return", `func f() { return 3; }`, "unexpected return value"},
		{"return type", `func f() int { return true; }`, "cannot return bool"},
		{"dup struct", `struct S { } struct S { }`, "duplicate struct"},
		{"dup func", `func f() { } func f() { }`, "duplicate function"},
		{"dup field", `struct S { a int; a int; }`, "duplicate field"},
		{"redecl", `func main() { var x int = 0; var x int = 1; }`, "redeclaration"},
		{"unknown type", `func main() { var x Foo = nil; }`, "unknown type"},
		{"new scalar", `func main() { var x int = 0; x = new int; }`, "new requires a struct type"},
		{"mod float", `func main() { var x float = 1.0; x %= 2.0; }`, "%="},
		{"shadow builtin", `func len(x int) int { return x; }`, "shadows a builtin"},
		{"stmt not call", `func main() { 1 + 2; }`, "must be a call"},
		{"len scalar", `func main() { print(len(3)); }`, "requires an array"},
		{"string cmp mix", `func main() { var b bool = "a" < 1; }`, "invalid operands"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := check(t, c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestValidPrograms(t *testing.T) {
	cases := []string{
		`func main() { var s string = "a" + "b"; print(s, s < "c"); }`,
		`func main() { var a []int = new [8]int; print(len(a)); }`,
		`struct P { x float; } func main() { var p *P = nil; if (p == nil) { } }`,
		`func main() { var a [][]int = new [3][]int; a[0] = new [2]int; a[0][1] = 5; print(a[0][1]); }`,
		`func f() *Q { return nil; } struct Q { } func main() { print(f() == nil); }`,
		`func main() { var x float = float(3) + 1.5; var y int = int(x); print(y); }`,
		`func main() { var b bool = true && false || !true; print(b); }`,
		`func main() { for (var i int = 0; i < 3; i++) { continue; } }`,
	}
	for i, src := range cases {
		if _, err := check(t, src); err != nil {
			t.Errorf("case %d: unexpected error: %v\n%s", i, err, src)
		}
	}
}

func TestTypeEquality(t *testing.T) {
	si := types.NewStructInfo("S", []types.FieldInfo{{Name: "x", Type: types.IntType}})
	p1 := &types.Type{Kind: types.Pointer, Struct: si}
	p2 := &types.Type{Kind: types.Pointer, Struct: si}
	if !p1.Equal(p2) {
		t.Error("same struct pointers must be equal")
	}
	a1 := &types.Type{Kind: types.Array, Elem: types.IntType}
	a2 := &types.Type{Kind: types.Array, Elem: types.FloatType}
	if a1.Equal(a2) {
		t.Error("different array elems must differ")
	}
	if !types.NilType.AssignableTo(p1) || !types.NilType.AssignableTo(a1) {
		t.Error("nil assignable to refs")
	}
	if types.NilType.AssignableTo(types.IntType) {
		t.Error("nil not assignable to int")
	}
	if a1.String() != "[]int" || p1.String() != "*S" {
		t.Errorf("strings: %s, %s", a1, p1)
	}
}

func TestExprTypesRecorded(t *testing.T) {
	info := mustCheck(t, `func main() { var x int = 1 + 2; print(x); }`)
	found := false
	for _, typ := range info.ExprTypes {
		if typ.Kind == types.Int {
			found = true
		}
	}
	if !found {
		t.Error("no int expression types recorded")
	}
}
