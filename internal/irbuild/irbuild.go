// Package irbuild lowers a type-checked MiniC AST into the three-address IR.
// Logical && and || become control flow; struct/array accesses become
// Load/Store over (object, index) addresses; loops become the natural-loop
// CFG shapes that the loop finder recovers.
package irbuild

import (
	"fmt"

	"dca/internal/ast"
	"dca/internal/ir"
	"dca/internal/parser"
	"dca/internal/types"
)

// Build lowers the whole program.
func Build(info *types.Info) (*ir.Program, error) {
	prog := &ir.Program{Name: info.Program.File.Name, Structs: info.Structs}
	for _, fd := range info.Program.Funcs {
		b := &builder{info: info, prog: prog}
		fn, err := b.buildFunc(fd)
		if err != nil {
			return nil, err
		}
		prog.AddFunc(fn)
	}
	if err := prog.Verify(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustBuild lowers and panics on error; for compiled-in workloads.
func MustBuild(info *types.Info) *ir.Program {
	p, err := Build(info)
	if err != nil {
		panic("irbuild.MustBuild: " + err.Error())
	}
	return p
}

// Compile parses, checks and lowers source text in one step.
func Compile(name, text string) (*ir.Program, error) {
	prog, err := parser.Parse(name, text)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	return Build(info)
}

// MustCompile is Compile panicking on error.
func MustCompile(name, text string) *ir.Program {
	p, err := Compile(name, text)
	if err != nil {
		panic("irbuild.MustCompile(" + name + "): " + err.Error())
	}
	return p
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type builder struct {
	info   *types.Info
	prog   *ir.Program
	fn     *ir.Func
	cur    *ir.Block
	scopes []map[string]*ir.Local
	loops  []loopCtx
	err    error
}

func (b *builder) errorf(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *builder) buildFunc(fd *ast.FuncDecl) (*ir.Func, error) {
	sig := b.info.Funcs[fd.Name]
	fn := ir.NewFunc(fd.Name, sig.Result)
	fn.Pos = fd.Pos()
	b.fn = fn
	b.pushScope()
	for i, p := range fd.Params {
		l := fn.NewParam(p.Name, sig.Params[i])
		b.declare(p.Name, l)
	}
	entry := fn.NewBlock("entry")
	b.cur = entry
	b.buildBlockStmt(fd.Body)
	// Fall-off-the-end return.
	if b.cur != nil {
		if sig.Result.Kind == types.Void {
			b.cur.Term = &ir.Ret{}
		} else {
			v := ir.ConstOp(ir.ZeroValue(sig.Result))
			b.cur.Term = &ir.Ret{Val: &v}
		}
	}
	b.popScope()
	// Any block left unterminated is unreachable structure (e.g. after
	// break); terminate it with a self-consistent return.
	for _, blk := range fn.Blocks {
		if blk.Term == nil {
			if sig.Result.Kind == types.Void {
				blk.Term = &ir.Ret{}
			} else {
				v := ir.ConstOp(ir.ZeroValue(sig.Result))
				blk.Term = &ir.Ret{Val: &v}
			}
		}
	}
	return fn, b.err
}

func (b *builder) pushScope() { b.scopes = append(b.scopes, map[string]*ir.Local{}) }
func (b *builder) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) declare(name string, l *ir.Local) {
	b.scopes[len(b.scopes)-1][name] = l
}

func (b *builder) lookup(name string) *ir.Local {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if l, ok := b.scopes[i][name]; ok {
			return l
		}
	}
	b.errorf("irbuild: undefined variable %q", name)
	return b.fn.NewTemp(types.IntType)
}

// emit appends an instruction to the current block (if reachable).
func (b *builder) emit(in ir.Instr) {
	if b.cur != nil {
		b.cur.Append(in)
	}
}

// terminate seals the current block and moves to next (which may be nil for
// dead code after return/break).
func (b *builder) terminate(t ir.Term, next *ir.Block) {
	if b.cur != nil {
		b.cur.Term = t
	}
	b.cur = next
}

func (b *builder) buildBlockStmt(s *ast.BlockStmt) {
	b.pushScope()
	for _, st := range s.Stmts {
		b.buildStmt(st)
	}
	b.popScope()
}

func (b *builder) buildStmt(s ast.Stmt) {
	if b.cur == nil {
		return // unreachable code after return/break/continue
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.buildBlockStmt(s)
	case *ast.VarDecl:
		t := b.info.VarTypes[s]
		l := b.fn.NewLocal(s.Name, t)
		if s.Init != nil {
			v := b.buildExpr(s.Init)
			b.emit(&ir.Mov{Dst: l, Src: v})
		} else {
			b.emit(&ir.Mov{Dst: l, Src: ir.ConstOp(ir.ZeroValue(t))})
		}
		b.declare(s.Name, l)
	case *ast.AssignStmt:
		b.buildAssign(s)
	case *ast.IncDecStmt:
		op := "+="
		if s.Dec {
			op = "-="
		}
		one := &ast.IntLit{LitPos: s.Pos(), Val: 1}
		b.info.ExprTypes[one] = types.IntType
		if b.info.TypeOf(s.LHS).Kind == types.Float {
			fone := &ast.FloatLit{LitPos: s.Pos(), Val: 1}
			b.info.ExprTypes[fone] = types.FloatType
			b.buildAssign(&ast.AssignStmt{LHS: s.LHS, Op: op, RHS: fone})
		} else {
			b.buildAssign(&ast.AssignStmt{LHS: s.LHS, Op: op, RHS: one})
		}
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.WhileStmt:
		b.buildWhile(s)
	case *ast.ForStmt:
		b.buildFor(s)
	case *ast.ReturnStmt:
		if s.Val != nil {
			v := b.buildExpr(s.Val)
			b.terminate(&ir.Ret{Val: &v}, nil)
		} else {
			b.terminate(&ir.Ret{}, nil)
		}
	case *ast.BreakStmt:
		if len(b.loops) == 0 {
			b.errorf("irbuild: break outside loop at %s", s.Pos())
			return
		}
		b.terminate(&ir.Goto{Target: b.loops[len(b.loops)-1].breakTo}, nil)
	case *ast.ContinueStmt:
		if len(b.loops) == 0 {
			b.errorf("irbuild: continue outside loop at %s", s.Pos())
			return
		}
		b.terminate(&ir.Goto{Target: b.loops[len(b.loops)-1].continueTo}, nil)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			b.errorf("irbuild: expression statement must be a call")
			return
		}
		b.buildCall(call, false)
	case *ast.PrintStmt:
		args := make([]ir.Operand, len(s.Args))
		for i, a := range s.Args {
			args[i] = b.buildExpr(a)
		}
		b.emit(&ir.Print{Args: args})
	default:
		b.errorf("irbuild: unhandled statement %T", s)
	}
}

func (b *builder) buildAssign(s *ast.AssignStmt) {
	// Compute the RHS value (possibly combined with the old LHS value).
	combine := func(old ir.Operand) ir.Operand {
		rhs := b.buildExpr(s.RHS)
		if s.Op == "=" {
			return rhs
		}
		kind, _ := ir.BinKindFromString(s.Op[:1]) // "+=" -> "+"
		t := b.info.TypeOf(s.LHS)
		dst := b.fn.NewTemp(t)
		b.emit(&ir.BinOp{Dst: dst, Op: kind, X: old, Y: rhs})
		return ir.LocalOp(dst)
	}
	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		l := b.lookup(lhs.Name)
		v := combine(ir.LocalOp(l))
		b.emit(&ir.Mov{Dst: l, Src: v})
	case *ast.IndexExpr:
		base := b.buildExpr(lhs.X)
		idx := b.buildExpr(lhs.Index)
		var old ir.Operand
		if s.Op != "=" {
			t := b.info.TypeOf(lhs)
			tmp := b.fn.NewTemp(t)
			b.emit(&ir.Load{Dst: tmp, Base: base, Index: idx})
			old = ir.LocalOp(tmp)
		}
		v := combine(old)
		b.emit(&ir.Store{Base: base, Index: idx, Src: v})
	case *ast.FieldExpr:
		base := b.buildExpr(lhs.X)
		xt := b.info.TypeOf(lhs.X)
		fi := xt.Struct.FieldIndex(lhs.Name)
		idx := ir.IntOp(int64(fi))
		var old ir.Operand
		if s.Op != "=" {
			t := b.info.TypeOf(lhs)
			tmp := b.fn.NewTemp(t)
			b.emit(&ir.Load{Dst: tmp, Base: base, Index: idx, FieldName: lhs.Name})
			old = ir.LocalOp(tmp)
		}
		v := combine(old)
		b.emit(&ir.Store{Base: base, Index: idx, Src: v, FieldName: lhs.Name})
	default:
		b.errorf("irbuild: bad assignment target %T", s.LHS)
	}
}

func (b *builder) buildIf(s *ast.IfStmt) {
	thenB := b.fn.NewBlock("then")
	var elseB *ir.Block
	done := b.fn.NewBlock("endif")
	if s.Else != nil {
		elseB = b.fn.NewBlock("else")
	} else {
		elseB = done
	}
	b.buildCond(s.Cond, thenB, elseB)
	b.cur = thenB
	b.buildBlockStmt(s.Then)
	b.terminate(&ir.Goto{Target: done}, nil)
	if s.Else != nil {
		b.cur = elseB
		b.buildStmt(s.Else)
		b.terminate(&ir.Goto{Target: done}, nil)
	}
	b.cur = done
}

func (b *builder) buildWhile(s *ast.WhileStmt) {
	header := b.fn.NewBlock("while.header")
	header.Pos = s.Pos()
	body := b.fn.NewBlock("while.body")
	exit := b.fn.NewBlock("while.exit")
	b.terminate(&ir.Goto{Target: header}, header)
	b.buildCond(s.Cond, body, exit)
	b.loops = append(b.loops, loopCtx{breakTo: exit, continueTo: header})
	b.cur = body
	b.buildBlockStmt(s.Body)
	b.terminate(&ir.Goto{Target: header}, exit)
	b.loops = b.loops[:len(b.loops)-1]
}

func (b *builder) buildFor(s *ast.ForStmt) {
	b.pushScope()
	if s.Init != nil {
		b.buildStmt(s.Init)
	}
	header := b.fn.NewBlock("for.header")
	header.Pos = s.Pos()
	body := b.fn.NewBlock("for.body")
	latch := b.fn.NewBlock("for.latch")
	exit := b.fn.NewBlock("for.exit")
	b.terminate(&ir.Goto{Target: header}, header)
	if s.Cond != nil {
		b.buildCond(s.Cond, body, exit)
	} else {
		b.terminate(&ir.Goto{Target: body}, nil)
	}
	b.loops = append(b.loops, loopCtx{breakTo: exit, continueTo: latch})
	b.cur = body
	b.buildBlockStmt(s.Body)
	b.terminate(&ir.Goto{Target: latch}, latch)
	if s.Post != nil {
		b.buildStmt(s.Post)
	}
	b.terminate(&ir.Goto{Target: header}, exit)
	b.loops = b.loops[:len(b.loops)-1]
	b.popScope()
}

// buildCond lowers a boolean expression in branch position, applying
// short-circuit evaluation for && and ||.
func (b *builder) buildCond(e ast.Expr, thenB, elseB *ir.Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case "&&":
			mid := b.fn.NewBlock("and.rhs")
			b.buildCond(e.X, mid, elseB)
			b.cur = mid
			b.buildCond(e.Y, thenB, elseB)
			return
		case "||":
			mid := b.fn.NewBlock("or.rhs")
			b.buildCond(e.X, thenB, mid)
			b.cur = mid
			b.buildCond(e.Y, thenB, elseB)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == "!" {
			b.buildCond(e.X, elseB, thenB)
			return
		}
	}
	v := b.buildExpr(e)
	b.terminate(&ir.If{Cond: v, Then: thenB, Else: elseB}, nil)
}

func (b *builder) buildExpr(e ast.Expr) ir.Operand {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.IntOp(e.Val)
	case *ast.FloatLit:
		return ir.ConstOp(ir.FloatVal(e.Val))
	case *ast.BoolLit:
		return ir.ConstOp(ir.BoolVal(e.Val))
	case *ast.StringLit:
		return ir.ConstOp(ir.StringVal(e.Val))
	case *ast.NilLit:
		return ir.ConstOp(ir.NilVal())
	case *ast.Ident:
		return ir.LocalOp(b.lookup(e.Name))
	case *ast.UnaryExpr:
		x := b.buildExpr(e.X)
		t := b.info.TypeOf(e)
		dst := b.fn.NewTemp(t)
		op := ir.Neg
		if e.Op == "!" {
			op = ir.Not
		}
		b.emit(&ir.UnOp{Dst: dst, Op: op, X: x})
		return ir.LocalOp(dst)
	case *ast.BinaryExpr:
		if e.Op == "&&" || e.Op == "||" {
			return b.buildShortCircuit(e)
		}
		x := b.buildExpr(e.X)
		y := b.buildExpr(e.Y)
		kind, ok := ir.BinKindFromString(e.Op)
		if !ok {
			b.errorf("irbuild: unknown operator %q", e.Op)
			kind = ir.Add
		}
		dst := b.fn.NewTemp(b.info.TypeOf(e))
		b.emit(&ir.BinOp{Dst: dst, Op: kind, X: x, Y: y})
		return ir.LocalOp(dst)
	case *ast.IndexExpr:
		base := b.buildExpr(e.X)
		idx := b.buildExpr(e.Index)
		dst := b.fn.NewTemp(b.info.TypeOf(e))
		b.emit(&ir.Load{Dst: dst, Base: base, Index: idx})
		return ir.LocalOp(dst)
	case *ast.FieldExpr:
		base := b.buildExpr(e.X)
		xt := b.info.TypeOf(e.X)
		fi := xt.Struct.FieldIndex(e.Name)
		dst := b.fn.NewTemp(b.info.TypeOf(e))
		b.emit(&ir.Load{Dst: dst, Base: base, Index: ir.IntOp(int64(fi)), FieldName: e.Name})
		return ir.LocalOp(dst)
	case *ast.NewExpr:
		t := b.info.TypeOf(e)
		dst := b.fn.NewTemp(t)
		if e.Len != nil {
			n := b.buildExpr(e.Len)
			b.emit(&ir.Alloc{Dst: dst, Elem: t.Elem, Count: n})
		} else {
			b.emit(&ir.Alloc{Dst: dst, Struct: t.Struct})
		}
		return ir.LocalOp(dst)
	case *ast.CallExpr:
		return b.buildCall(e, true)
	}
	b.errorf("irbuild: unhandled expression %T", e)
	return ir.IntOp(0)
}

// buildShortCircuit lowers a && / || in value position.
func (b *builder) buildShortCircuit(e *ast.BinaryExpr) ir.Operand {
	dst := b.fn.NewTemp(types.BoolType)
	tB := b.fn.NewBlock("sc.true")
	fB := b.fn.NewBlock("sc.false")
	done := b.fn.NewBlock("sc.done")
	b.buildCond(e, tB, fB)
	b.cur = tB
	b.emit(&ir.Mov{Dst: dst, Src: ir.ConstOp(ir.BoolVal(true))})
	b.terminate(&ir.Goto{Target: done}, nil)
	b.cur = fB
	b.emit(&ir.Mov{Dst: dst, Src: ir.ConstOp(ir.BoolVal(false))})
	b.terminate(&ir.Goto{Target: done}, done)
	return ir.LocalOp(dst)
}

func (b *builder) buildCall(e *ast.CallExpr, wantValue bool) ir.Operand {
	name := e.Fn.Name
	args := make([]ir.Operand, len(e.Args))
	for i, a := range e.Args {
		args[i] = b.buildExpr(a)
	}
	_, builtin := types.Builtins[name]
	var sig *types.FuncSig
	if builtin {
		sig = types.Builtins[name]
	} else {
		sig = b.info.Funcs[name]
		if sig == nil {
			b.errorf("irbuild: call to unknown function %q", name)
			return ir.IntOp(0)
		}
	}
	var dst *ir.Local
	if sig.Result.Kind != types.Void {
		dst = b.fn.NewTemp(sig.Result)
	}
	b.emit(&ir.Call{Dst: dst, Callee: name, Builtin: builtin, Args: args})
	if !wantValue || dst == nil {
		return ir.IntOp(0)
	}
	return ir.LocalOp(dst)
}
