package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/fleet"
)

// postAsync submits an async analysis and decodes the 202 run handle.
func postAsync(t *testing.T, url string, req AnalyzeRequest) runHandle {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("async analyze status = %d, want 202: %s", resp.StatusCode, buf.Bytes())
	}
	var h runHandle
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.RunID == "" || h.StatusURL == "" || h.EventsURL == "" {
		t.Fatalf("incomplete run handle: %+v", h)
	}
	return h
}

// readEvents consumes a run's NDJSON stream: per-loop verdicts followed by
// the terminal status line.
func readEvents(t *testing.T, url string) ([]core.LoopJSON, fleet.Status) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q, want application/x-ndjson", ct)
	}
	var loops []core.LoopJSON
	var final fleet.Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			State string `json:"state"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.State != "" {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatalf("decode terminal status: %v\n%s", err, line)
			}
			continue
		}
		var lj core.LoopJSON
		if err := json.Unmarshal(line, &lj); err != nil {
			t.Fatalf("decode loop event: %v\n%s", err, line)
		}
		loops = append(loops, lj)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final.State == "" {
		t.Fatal("stream ended without a terminal status line")
	}
	return loops, final
}

// TestAsyncRunStreamsEveryVerdictOnce: an async run answers 202
// immediately, streams every per-loop verdict exactly once in source
// order, and its final report matches the synchronous path.
func TestAsyncRunStreamsEveryVerdictOnce(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c, Workers: 2})

	_, body := postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	syncRep := decodeReport(t, body)

	h := postAsync(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	if h.TotalLoops != len(syncRep.Loops) {
		t.Fatalf("handle total_loops = %d, want %d", h.TotalLoops, len(syncRep.Loops))
	}
	loops, final := readEvents(t, ts.URL+h.EventsURL)
	if final.State != "done" || final.Report == nil {
		t.Fatalf("terminal status = %+v, want done with report", final)
	}
	if len(loops) != len(syncRep.Loops) {
		t.Fatalf("streamed %d loop events, want %d", len(loops), len(syncRep.Loops))
	}
	for i, lj := range loops {
		want := syncRep.Loops[i]
		if lj.Fn != want.Fn || lj.Index != want.Index || lj.Verdict != want.Verdict {
			t.Errorf("event %d = %s#%d %s, want %s#%d %s (source order violated)",
				i, lj.Fn, lj.Index, lj.Verdict, want.Fn, want.Index, want.Verdict)
		}
	}

	// A late subscriber replays the identical stream.
	replay, _ := readEvents(t, ts.URL+h.EventsURL)
	if len(replay) != len(loops) {
		t.Fatalf("late subscriber saw %d events, want %d", len(replay), len(loops))
	}

	// The status endpoint agrees.
	resp, err := http.Get(ts.URL + h.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleet.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.CompletedLoops != len(syncRep.Loops) {
		t.Fatalf("status = %+v, want done with %d loops", st, len(syncRep.Loops))
	}
}

// TestAsyncEventsSSE: Accept: text/event-stream switches the stream to SSE
// framing with "loop" and "done" events.
func TestAsyncEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := postAsync(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})

	req, _ := http.NewRequest("GET", ts.URL+h.EventsURL, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	if got := strings.Count(out, "event: loop\n"); got != h.TotalLoops {
		t.Errorf("SSE stream has %d loop events, want %d:\n%s", got, h.TotalLoops, out)
	}
	if !strings.Contains(out, "event: done\n") {
		t.Errorf("SSE stream has no done event:\n%s", out)
	}
}

// TestAsyncDisconnectDoesNotCancelRun: tearing down an event subscriber
// leaves the run running to completion; no verdict comes back cancelled.
func TestAsyncDisconnectDoesNotCancelRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := postAsync(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+h.EventsURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // disconnect mid-stream
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + h.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		var st fleet.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if st.Report == nil {
				t.Fatal("done run has no report")
			}
			for _, l := range st.Report.Loops {
				if l.Verdict == "cancelled" {
					t.Errorf("loop %s#%d cancelled; disconnect propagated into the run", l.Fn, l.Index)
				}
			}
			return
		}
		if st.State == "error" {
			t.Fatalf("run erred after disconnect: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished after disconnect; status %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnalyzeKnobValidation: the PR-7 knobs ride the request schema with
// the same validation discipline as the sandbox ceilings.
func TestAnalyzeKnobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc, StopAfter: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stop_after=-1 status = %d, want 400: %s", resp.StatusCode, body)
	}

	resp, body = postAnalyze(t, ts.URL, AnalyzeRequest{
		Filename: "t.mc", Source: testSrc,
		StopAfter: 1, NoFootprint: true, NoVM: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knobbed analyze status = %d, want 200: %s", resp.StatusCode, body)
	}
	if rep := decodeReport(t, body); len(rep.Loops) == 0 {
		t.Fatal("knobbed analyze produced no loops")
	}
}

// TestAnalyzeLoopShardFilter: the loops field restricts analysis to the
// named shard — the field the coordinator uses to split programs.
func TestAnalyzeLoopShardFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, body := postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	full := decodeReport(t, body)
	if len(full.Loops) < 2 {
		t.Fatalf("need >= 2 loops to shard, got %d", len(full.Loops))
	}
	want := full.Loops[1]

	_, body = postAnalyze(t, ts.URL, AnalyzeRequest{
		Filename: "t.mc", Source: testSrc,
		Loops: []fleet.LoopRef{{Fn: want.Fn, Index: want.Index}},
	})
	shard := decodeReport(t, body)
	if len(shard.Loops) != 1 {
		t.Fatalf("shard report has %d loops, want 1", len(shard.Loops))
	}
	if got := shard.Loops[0]; got.Fn != want.Fn || got.Index != want.Index || got.Verdict != want.Verdict {
		t.Fatalf("shard loop = %s#%d %s, want %s#%d %s",
			got.Fn, got.Index, got.Verdict, want.Fn, want.Index, want.Verdict)
	}
}

// TestRunEndpointsUnknownID: both run endpoints 404 on unknown handles.
func TestRunEndpointsUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, path := range []string{"/runs/nope", "/runs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestAsyncRunJournaled: with RunDir set, an async run leaves a journal
// file behind named after its handle.
func TestAsyncRunJournaled(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, RunDir: dir})
	h := postAsync(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	if _, final := readEvents(t, ts.URL+h.EventsURL); final.State != "done" {
		t.Fatalf("run state = %s, want done", final.State)
	}
	journalPath := fmt.Sprintf("%s/%s.journal", dir, h.RunID)
	if _, err := os.Stat(journalPath); err != nil {
		t.Fatalf("async run left no journal: %v", err)
	}
}

// TestAsyncCoordinatorRunJournaled: a coordinator with RunDir journals the
// merged per-loop rows too — one framed record per streamed verdict.
func TestAsyncCoordinatorRunJournaled(t *testing.T) {
	_, w1 := newTestServer(t, Config{Workers: 2})
	_, w2 := newTestServer(t, Config{Workers: 2})
	dir := t.TempDir()
	_, co := newTestServer(t, Config{Workers: 2, RunDir: dir, Fleet: []string{w1.URL, w2.URL}})

	h := postAsync(t, co.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	loops, final := readEvents(t, co.URL+h.EventsURL)
	if final.State != "done" {
		t.Fatalf("run state = %s, want done", final.State)
	}
	data, err := os.ReadFile(fmt.Sprintf("%s/%s.journal", dir, h.RunID))
	if err != nil {
		t.Fatalf("coordinator run left no journal: %v", err)
	}
	// One header line plus one record per streamed verdict.
	if records := bytes.Count(data, []byte("\n")) - 1; records != len(loops) {
		t.Fatalf("journal has %d records, want %d (one per loop)", records, len(loops))
	}
}
