// BFS example: the paper's Fig. 2 — a worklist-driven breadth-first search
// over a pointer-linked graph from the Lonestar suite. The top-down step's
// frontier conflicts defeat every dependence-based technique; DCA proves
// the step commutative, and the machine model turns the detection into the
// whole-program speedup of Fig. 5.
package main

import (
	"fmt"
	"log"

	"dca/internal/bench"
	"dca/internal/core"
	"dca/internal/depprof"
	"dca/internal/icc"
	"dca/internal/polly"
	"dca/internal/workloads/plds"
)

func main() {
	p := plds.ByName("BFS")
	prog, err := p.Compile()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%s), key loop %s/L%d\n\n", p.Name, p.Origin, p.KeyFn, p.KeyLoop)

	res, err := core.AnalyzeLoop(prog, p.KeyFn, p.KeyLoop, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DCA:      %s (golden run: %d invocations, %d iterations)\n",
		res.Verdict, res.Invocations, res.Iterations)

	dp, err := depprof.Analyze(prog, depprof.DefaultPolicy(), 0)
	if err != nil {
		log.Fatal(err)
	}
	if v := dp.Verdict(p.KeyFn, p.KeyLoop); v != nil {
		fmt.Printf("DepProf:  parallel=%v %v\n", v.Parallel, v.Reasons)
	}
	if v := polly.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v != nil {
		fmt.Printf("Polly:    parallel=%v %v\n", v.Parallel, v.Reasons)
	}
	if v := icc.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v != nil {
		fmt.Printf("ICC:      parallel=%v %v\n", v.Parallel, v.Reasons)
	}

	r, err := bench.RunPLDS(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkey-loop coverage: %.0f%% of sequential execution\n", r.CoverageMeasured*100)
	fmt.Printf("modelled 72-core speedup with DCA parallelization: %.1fx (paper: up to %.1fx)\n",
		r.Speedup, p.Fig5Target)
}
