// Package sandbox wraps the DCA pipeline's interpreter executions in
// fault-isolated, budgeted, cancellable cells. Every replay of the dynamic
// stage (reference run, golden run, permuted runs, baseline profiling runs)
// can trap — a program fault reachable only under permutation, a resource
// budget running out, a wall-clock timeout, or an internal panic in the
// analysis itself — and the pipeline must tell these apart: a fault during
// a permuted replay is an observable behavioural difference (evidence of
// non-commutativity), while a budget exhaustion or an internal panic says
// nothing about the program at all. The sandbox converts each of those
// outcomes into a structured Trap so callers can degrade per loop instead
// of aborting a whole suite analysis.
//
// A deterministic fault Injector can trip any trap kind at the Nth
// instruction or the Nth rt_* intrinsic call, so the degradation paths
// themselves are testable.
package sandbox

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/vm"
)

// Kind classifies why a sandboxed execution stopped abnormally.
type Kind int

const (
	// None: the execution completed normally.
	None Kind = iota
	// Fault: the program itself trapped (division by zero, nil dereference,
	// out-of-bounds access, ...) — an observable behaviour of the program
	// under test.
	Fault
	// Budget: a resource budget (steps, heap objects, output bytes) ran out.
	Budget
	// Timeout: the wall-clock limit elapsed or the context was cancelled.
	Timeout
	// Panic: the interpreter or an installed runtime panicked — an analysis
	// bug, never an observable behaviour of the program under test.
	Panic
)

var kindNames = [...]string{"none", "fault", "budget", "timeout", "panic"}

func (k Kind) String() string { return kindNames[k] }

// Trap is the structured description of one abnormal termination.
type Trap struct {
	Kind  Kind
	Err   error  // the underlying error; for panics, a wrapped panic value
	Stack string // goroutine stack at the panic site; panics only
	Steps int64  // instructions retired when the trap fired
}

func (t *Trap) Error() string {
	return fmt.Sprintf("sandbox: %s after %d steps: %v", t.Kind, t.Steps, t.Err)
}

// Unwrap exposes the underlying error for errors.Is / errors.As.
func (t *Trap) Unwrap() error { return t.Err }

// Classify maps an interpreter error to its trap kind.
func Classify(err error) Kind {
	switch {
	case err == nil:
		return None
	case errors.Is(err, interp.ErrBudget):
		return Budget
	case errors.Is(err, interp.ErrCancelled):
		return Timeout
	default:
		return Fault
	}
}

// Limits bounds one execution. Zero fields mean no limit (the interpreter
// still applies its own default step cap).
type Limits struct {
	MaxSteps       int64
	MaxHeapObjects int64
	MaxOutput      int64
	Timeout        time.Duration
}

// Doubled returns the limits with the step budget and timeout doubled —
// the bounded-retry policy for Budget and Timeout traps.
func (l Limits) Doubled() Limits {
	l.MaxSteps *= 2
	l.Timeout *= 2
	return l
}

// Outcome reports one sandboxed execution.
type Outcome struct {
	Result *interp.Result // nil when the run trapped
	Trap   *Trap          // nil when the run completed
}

// OK reports whether the execution completed without a trap.
func (o *Outcome) OK() bool { return o.Trap == nil }

// Run executes prog's main function under cfg inside a fault-isolated cell:
// limits are applied on top of cfg, inj (which may be nil) is armed, panics
// are recovered into a Panic trap, and interpreter errors are classified.
// ctx may be nil; with lim.Timeout set it is wrapped in a deadline.
func Run(ctx context.Context, prog *ir.Program, cfg interp.Config, lim Limits, inj *Injector) (out *Outcome) {
	if ctx == nil {
		ctx = context.Background()
	}
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	cfg.Ctx = ctx
	if lim.MaxSteps > 0 {
		cfg.MaxSteps = lim.MaxSteps
	}
	if lim.MaxHeapObjects > 0 {
		cfg.MaxHeapObjects = lim.MaxHeapObjects
	}
	if lim.MaxOutput > 0 {
		cfg.MaxOutput = lim.MaxOutput
	}
	if inj.Enabled() {
		cfg.StepHook = chainStepHooks(cfg.StepHook, inj.StepHook())
		if inj.spec.AtIntrinsic > 0 {
			cfg.Runtime = inj.WrapRuntime(cfg.Runtime)
		}
	}
	it := newExecutor(prog, cfg)
	defer func() {
		if r := recover(); r != nil {
			out = &Outcome{Trap: &Trap{
				Kind:  Panic,
				Err:   fmt.Errorf("sandbox: recovered panic: %v", r),
				Stack: string(debug.Stack()),
				Steps: it.Steps(),
			}}
		}
	}()
	main := prog.Func("main")
	if main == nil {
		return &Outcome{Trap: &Trap{Kind: Fault, Err: fmt.Errorf("sandbox: program %q has no main function", prog.Name)}}
	}
	ret, err := it.Call(main, nil, nil)
	if err != nil {
		out = &Outcome{Trap: &Trap{Kind: Classify(err), Err: err, Steps: it.Steps()}}
		release(it, ir.Value{})
		return out
	}
	out = &Outcome{Result: &interp.Result{Steps: it.Steps(), BlockCount: it.BlockCounts(), Ret: ret}}
	release(it, ret)
	return out
}

// release hands a pooling executor (the VM) its arenas back once the
// outcome has been extracted. Nothing a sandboxed run produces outlives the
// Outcome: traps and output are strings, verification state is digests, and
// step/block counts are copied above — so recycling is safe unless main
// itself returned a heap reference, in which case the machine is simply
// dropped. Panicking runs never reach here and are dropped too.
func release(it executor, ret ir.Value) {
	if ret.Ref != nil {
		return
	}
	if r, ok := it.(interface{ Release() }); ok {
		r.Release()
	}
}

// executor abstracts the two execution engines behind Run: the bytecode VM
// (internal/vm) and the tree-walking interpreter. Both honour the same
// contract — step counts, block counts, output, traps — so the choice is
// invisible to callers.
type executor interface {
	Call(fn *ir.Func, args []ir.Value, parent *interp.Frame) (ir.Value, error)
	Steps() int64
	BlockCounts() map[*ir.Block]int64
}

// newExecutor picks the VM when it is enabled and the config carries no
// per-instruction subscriptions (Tracer, StepHook) the VM cannot raise;
// everything else runs on the tree-walker.
func newExecutor(prog *ir.Program, cfg interp.Config) executor {
	if vm.Enabled() && vm.Supported(cfg) {
		return vm.New(prog, cfg)
	}
	return interp.New(prog, cfg)
}

// RunRetry executes Run with a fresh configuration from mkCfg, retrying
// Budget and Timeout traps at doubled limits up to retries times — the
// dynamic stage's bounded-retry policy, shared by every caller so the
// policy cannot drift between the loop-level and context-level analyses.
// mkCfg is called once per attempt so the caller can rebuild per-attempt
// state (runtime, output sink) and keep references to the last attempt's.
// Returns the final outcome and the retries actually spent.
//
// A Timeout trap caused by ctx itself being done is never retried: the
// caller cancelled the whole analysis, and a doubled budget cannot buy
// back a dead context.
func RunRetry(ctx context.Context, prog *ir.Program, mkCfg func() interp.Config, lim Limits, inj *Injector, retries int) (*Outcome, int) {
	spent := 0
	for {
		oc := Run(ctx, prog, mkCfg(), lim, inj)
		if oc.OK() {
			return oc, spent
		}
		if ctx != nil && ctx.Err() != nil {
			return oc, spent
		}
		if k := oc.Trap.Kind; (k == Budget || k == Timeout) && spent < retries {
			spent++
			lim = lim.Doubled()
			// Back off before retrying: a timeout trap usually means the
			// host is oversubscribed right now, and re-running immediately
			// at a doubled budget just doubles the pressure. The pause is
			// exponential in the retries already spent and gives way to
			// cancellation instantly.
			if !sleepBackoff(ctx, spent) {
				return oc, spent
			}
			continue
		}
		return oc, spent
	}
}

// Retry backoff tuning. Package variables so tests can compress time.
var (
	retryBackoffBase = 5 * time.Millisecond
	retryBackoffMax  = 250 * time.Millisecond
)

// sleepBackoff pauses retryBackoffBase << (spent-1), capped at
// retryBackoffMax. It reports false when ctx was cancelled during the
// pause — the retry must not run then.
func sleepBackoff(ctx context.Context, spent int) bool {
	d := retryBackoffBase << uint(spent-1)
	if d > retryBackoffMax || d <= 0 {
		d = retryBackoffMax
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func chainStepHooks(a, b func(fr *interp.Frame, in ir.Instr, steps int64) error) func(fr *interp.Frame, in ir.Instr, steps int64) error {
	if a == nil {
		return b
	}
	return func(fr *interp.Frame, in ir.Instr, steps int64) error {
		if err := a(fr, in, steps); err != nil {
			return err
		}
		return b(fr, in, steps)
	}
}

// Inject describes a deterministic trap to trip during execution.
type Inject struct {
	// AtStep trips the trap when a run retires this many instructions
	// (0 = off).
	AtStep int64
	// AtIntrinsic trips the trap at the Nth rt_* intrinsic call of a run
	// (0 = off).
	AtIntrinsic int64
	// Kind is what to inject: Fault, Budget, or Panic.
	Kind Kind
	// MaxTrips bounds the total number of trips across every run sharing
	// the Injector (0 = unlimited).
	MaxTrips int64
}

// Injector carries an Inject spec plus the cross-run trip counter. One
// Injector may be shared by several runs — including concurrent worker
// runs; the trip counter is atomic.
type Injector struct {
	spec  Inject
	trips atomic.Int64
}

// NewInjector arms an injection spec.
func NewInjector(spec Inject) *Injector { return &Injector{spec: spec} }

// Enabled reports whether the injector (which may be nil) can trip.
func (inj *Injector) Enabled() bool {
	return inj != nil && (inj.spec.AtStep > 0 || inj.spec.AtIntrinsic > 0)
}

// Trips returns how many times the injector has fired so far.
func (inj *Injector) Trips() int64 {
	if inj == nil {
		return 0
	}
	return inj.trips.Load()
}

// tryTrip claims one trip, honouring MaxTrips.
func (inj *Injector) tryTrip() bool {
	n := inj.trips.Add(1)
	if inj.spec.MaxTrips > 0 && n > inj.spec.MaxTrips {
		inj.trips.Add(-1)
		return false
	}
	return true
}

// fire produces the injected trap: it panics for Kind Panic and returns an
// error otherwise.
func (inj *Injector) fire(site string, steps int64) error {
	switch inj.spec.Kind {
	case Panic:
		panic(fmt.Sprintf("sandbox: injected panic at %s (step %d)", site, steps))
	case Budget:
		return &interp.BudgetError{Resource: "injected", Fn: site, Block: "?", Steps: steps, Limit: 0}
	default:
		return fmt.Errorf("sandbox: injected fault at %s (step %d)", site, steps)
	}
}

// StepHook returns an interp.Config.StepHook arming AtStep for one run: it
// trips at the first instruction at or after the target step count (step
// counts also advance on block terminators, which the hook never sees).
// Each call returns a fresh closure with its own run-local state, so one
// Injector can arm many runs — including concurrent worker runs.
func (inj *Injector) StepHook() func(fr *interp.Frame, in ir.Instr, steps int64) error {
	if inj == nil || inj.spec.AtStep <= 0 {
		return nil
	}
	fired := false
	return func(fr *interp.Frame, in ir.Instr, steps int64) error {
		if fired || steps < inj.spec.AtStep {
			return nil
		}
		fired = true
		if inj.tryTrip() {
			return inj.fire(fr.Fn.Name, steps)
		}
		return nil
	}
}

// WrapRuntime wraps rt so the Nth intrinsic call of the run trips the
// injected trap. Each call creates a fresh per-run counter.
func (inj *Injector) WrapRuntime(rt interp.Runtime) interp.Runtime {
	if inj == nil || inj.spec.AtIntrinsic <= 0 {
		return rt
	}
	return &injectRuntime{inner: rt, inj: inj}
}

type injectRuntime struct {
	inner interp.Runtime
	inj   *Injector
	calls int64
}

func (w *injectRuntime) Intrinsic(ev interp.Env, fr *interp.Frame, name string, args []ir.Value) (ir.Value, error) {
	w.calls++
	if w.calls == w.inj.spec.AtIntrinsic && w.inj.tryTrip() {
		if err := w.inj.fire("@"+name, ev.Steps()); err != nil {
			return ir.Value{}, err
		}
	}
	if w.inner == nil {
		return ir.Value{}, fmt.Errorf("sandbox: intrinsic @%s with no runtime installed", name)
	}
	return w.inner.Intrinsic(ev, fr, name, args)
}
