// Package server is the `dca serve` analysis service: a long-lived HTTP
// daemon that accepts MiniC program source, runs the concurrent analysis
// engine with the incremental verdict cache in front of every loop's
// dynamic stage, and returns structured per-loop verdicts.
//
// The service is built for sustained traffic:
//
//   - One engine.Pool is shared by every in-flight request, so total
//     interpreter concurrency is bounded by the configured worker budget no
//     matter how many requests arrive.
//   - A request semaphore bounds concurrent analyses, and an admission
//     gate sheds load before it becomes work: arrivals past the queue
//     watermark (MaxConcurrent + MaxQueue), requests that wait longer than
//     QueueTimeout for a slot, and arrivals during a drain are all turned
//     away with 503 + Retry-After, counted by reason in
//     dca_load_shed_total.
//   - The verdict cache's disk tier sits behind a circuit breaker
//     (internal/cache): repeated disk faults trip it open, the cache runs
//     memory-only, and /metrics shows the breaker state and trip count.
//   - Every analysis is scoped to its request context: a client that
//     disconnects mid-analysis cancels its interpreter runs, frees its
//     semaphore slot and pool workers promptly, and is accounted as
//     rejected — never cached, never counted as an analysis error.
//   - Every execution inherits the sandbox budgets and timeouts of the
//     fault-isolated dynamic stage; requests may tighten them but never
//     exceed the server's ceiling. Budgets that are negative or would
//     overflow the nanosecond clock are rejected with 400.
//   - Request bodies are size-capped before they are read.
//   - Shutdown is graceful: on context cancellation (SIGTERM in cmd/dca)
//     /healthz flips to "draining" with 503, the listener closes, in-flight
//     analyses drain within DrainTimeout, and only then does Serve return.
//
// Observability runs through one obs.Registry: every per-loop trace event
// the engine emits is folded into the registry's instruments
// (obs.AnalysisMetrics), GET /metrics serves the registry in Prometheus
// text format, and GET /stats re-expresses the same instruments as JSON —
// the three views can never disagree about what happened.
//
// The server is also the fleet's building block (internal/fleet). The same
// process can serve three roles, chosen by configuration:
//
//   - Worker: Config.PeerNodes wraps the verdict cache in the fleet's peer
//     protocol — misses consult the key's ring owner over GET /cache/{key},
//     fresh verdicts write through — and the /cache/{key} handlers serve
//     this node's local tier to its peers.
//   - Coordinator: Config.Fleet routes /analyze through a
//     fleet.Coordinator, which shards the program's loops across the worker
//     nodes by fingerprint and merges their verdicts into one report that
//     is identical (timing aside) to a single node's.
//   - Batch front end: POST /analyze?async=1 registers a run, answers 202
//     with a handle, and finishes the analysis in the background on a
//     context the client's disconnect cannot cancel. GET /runs/{id} is the
//     status; GET /runs/{id}/events streams per-loop verdicts in source
//     order as NDJSON (or SSE under Accept: text/event-stream). With
//     Config.RunDir set, every async run also appends to a write-ahead
//     journal (internal/journal), the same machinery `dca analyze -journal`
//     uses.
//
// Endpoints: POST /analyze (sync or ?async=1), GET /runs/{id},
// GET /runs/{id}/events, GET /cache/{key}, PUT /cache/{key}, GET /healthz,
// GET /stats, GET /metrics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/engine"
	"dca/internal/fingerprint"
	"dca/internal/fleet"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/journal"
	"dca/internal/obs"
)

// Request outcome labels for the dca_request_outcomes_total counter — a
// closed set, per the registry's cardinality policy.
const (
	outcomeAnalyzed = "analyzed" // analysis completed, report returned
	outcomeErrored  = "errored"  // compile or reference-execution failure
	outcomeRejected = "rejected" // turned away: busy, oversized, or cancelled
)

// Load-shed reasons for the dca_load_shed_total counter — also a closed
// set. Every shed response carries 503 plus a Retry-After header.
const (
	shedQueueFull    = "queue_full"    // admission watermark exceeded
	shedQueueTimeout = "queue_timeout" // waited QueueTimeout without a slot
	shedDraining     = "draining"      // arrived during graceful shutdown
)

// Config tunes the analysis service. The zero value is production-safe:
// GOMAXPROCS workers, 1 MiB source cap, 30s per-execution timeout, default
// step budget, no cache.
type Config struct {
	// Workers bounds the engine pool shared by all requests (<= 0 means
	// GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds concurrently served /analyze requests (<= 0
	// means Workers).
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for an analysis
	// slot beyond the MaxConcurrent in flight; arrivals past the watermark
	// are shed immediately with 503 + Retry-After instead of piling up
	// (<= 0 means 4x MaxConcurrent).
	MaxQueue int
	// QueueTimeout bounds how long an admitted request may wait for a slot
	// before it is shed (<= 0 means 10s).
	QueueTimeout time.Duration
	// MaxSourceBytes caps the request body (<= 0 means 1 MiB).
	MaxSourceBytes int64
	// MaxSteps / Timeout / MaxHeapObjects / MaxOutput are the
	// per-execution sandbox ceilings. Requests may lower them, never
	// raise them. Zero MaxSteps means the core default (200M); zero
	// Timeout means 30s.
	MaxSteps       int64
	Timeout        time.Duration
	MaxHeapObjects int64
	MaxOutput      int64
	// Retries is the doubled-budget retry count (0 means the core
	// default of 1; negative disables).
	Retries int
	// Schedules is the default number of random permutation schedules run
	// in addition to reverse (<= 0 means 3).
	Schedules int
	// Cache, when non-nil, serves repeated analyses without re-running
	// their dynamic stages.
	Cache core.VerdictCache
	// DrainTimeout bounds how long Serve waits for in-flight requests
	// after shutdown begins (<= 0 means 15s).
	DrainTimeout time.Duration
	// Trace, when non-nil, additionally receives every per-loop trace
	// event the analyses emit (e.g. an obs.JSONL sink). The server always
	// folds events into its /metrics registry regardless.
	Trace obs.Sink
	// Fleet, when non-empty, puts the server in coordinator mode: /analyze
	// shards the program's loops across these worker base URLs by
	// fingerprint and merges their verdicts instead of analyzing locally.
	Fleet []string
	// FleetClient overrides the coordinator's dispatch HTTP client — tests
	// and the chaos bench inject a fault-injecting transport here. nil
	// means a plain client (per-attempt clocks come from DispatchTimeout).
	FleetClient *http.Client
	// DispatchTimeout caps one fleet batch dispatch attempt; a hung worker
	// becomes a retryable failure instead of a stalled run (<= 0 means no
	// cap beyond the request context).
	DispatchTimeout time.Duration
	// NodeRetries is how many times a transient dispatch failure retries
	// the same worker before the node leaves rotation (0 means 1; negative
	// disables retries).
	NodeRetries int
	// HedgeAfter re-issues a still-unfinished batch to the ring successor
	// after this straggler delay, first result wins (<= 0 disables).
	HedgeAfter time.Duration
	// ProbeInterval is the health prober's cadence for re-admitting dead
	// workers (<= 0 means 1s).
	ProbeInterval time.Duration
	// PeerNodes, when non-empty (and Cache is set), wraps the verdict
	// cache in the fleet's peer protocol: misses consult the key's ring
	// owner among these base URLs, fresh verdicts write through. The list
	// must be identical on every fleet member (it defines the ring) and
	// include this node itself.
	PeerNodes []string
	// PeerSelf is this node's own base URL within PeerNodes, so keys it
	// owns itself never leave the process.
	PeerSelf string
	// RunDir, when non-empty, backs every async run (/analyze?async=1)
	// with a write-ahead journal in this directory, one file per run.
	RunDir string
	// RetryJitter overrides the Retry-After jitter source: it returns a
	// uniform value in [0, max). nil means math/rand. Tests inject a
	// deterministic source.
	RetryJitter func(max int64) int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = c.Workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 10 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Schedules <= 0 {
		c.Schedules = 3
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	return c
}

// Server is the analysis service.
type Server struct {
	cfg      Config
	pool     *engine.Pool
	sem      chan struct{}
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool

	// Observability: one registry backs /metrics and /stats; analysis
	// trace events flow into it through metrics (an obs.Sink), fanned out
	// together with cfg.Trace.
	reg     *obs.Registry
	metrics *obs.AnalysisMetrics
	sink    obs.Sink

	requests     *obs.Counter    // /analyze requests accepted for processing
	outcomes     *obs.CounterVec // accepted requests by final outcome
	shed         *obs.CounterVec // load-shed responses by reason
	loopsDone    *obs.Counter    // loops analyzed across all requests
	encodeErrors *obs.Counter    // response encodes that failed mid-write
	inFlight     *obs.Gauge
	admitted     atomic.Int64 // requests inside /analyze (waiting + in flight)

	// Fleet wiring. localCache is the node's own cache, before any peer
	// wrapping — the /cache/{key} handlers serve it directly so a peer
	// lookup can never recurse back onto the ring. coord is non-nil in
	// coordinator mode. runs registers async analyses; bg tracks their
	// background goroutines so a drain can wait for them.
	localCache core.VerdictCache
	coord      *fleet.Coordinator
	fleetM     *fleet.Metrics
	runs       *fleet.Registry
	bg         sync.WaitGroup
	jitter     func(max int64) int64

	logEncodeOnce sync.Once
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		pool:       engine.NewPool(cfg.Workers),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reg:        obs.NewRegistry(),
		localCache: cfg.Cache,
		runs:       fleet.NewRegistry(),
		jitter:     cfg.RetryJitter,
	}
	if s.jitter == nil {
		s.jitter = rand.Int63n
	}
	s.metrics = obs.NewAnalysisMetrics(s.reg)
	s.sink = obs.Sink(s.metrics)
	if cfg.Trace != nil {
		s.sink = obs.Multi{s.metrics, cfg.Trace}
	}
	// Fleet roles. The metrics are registered once, on whichever ring this
	// node builds first (cache ring as a worker, dispatch ring in
	// coordinator mode); both rings hash identically, so the gauge is
	// equally honest. The peer wrap runs before the coordinator so the
	// coordinator's local fallback analyzes through the final cache — the
	// same tier stack a worker request would have used.
	if len(cfg.PeerNodes) > 0 && cfg.Cache != nil {
		ring := fleet.NewRing(cfg.PeerNodes)
		s.fleetM = fleet.NewMetrics(s.reg, ring)
		s.cfg.Cache = fleet.NewPeerCache(fleet.PeerConfig{
			Local:   cfg.Cache,
			Ring:    ring,
			Self:    cfg.PeerSelf,
			Metrics: s.fleetM,
			Trace:   s.sink,
		})
	}
	if len(cfg.Fleet) > 0 {
		s.coord = fleet.NewCoordinator(fleet.CoordinatorConfig{
			Nodes:  cfg.Fleet,
			Client: cfg.FleetClient,
			Trace:  s.sink,
			Policy: fleet.Policy{
				DispatchTimeout: cfg.DispatchTimeout,
				NodeRetries:     cfg.NodeRetries,
				HedgeAfter:      cfg.HedgeAfter,
				ProbeInterval:   cfg.ProbeInterval,
				Jitter:          cfg.RetryJitter,
			},
			// Graceful degradation: with every worker out of rotation the
			// coordinator analyzes in-process under the same ceilings a
			// worker would have applied, so the merged report stays
			// byte-identical to a healthy fleet's.
			Local: fleet.NewLocalAnalyzer(fleet.LocalConfig{
				Pool:           s.pool,
				Workers:        s.cfg.Workers,
				Schedules:      s.cfg.Schedules,
				MaxSteps:       s.cfg.MaxSteps,
				Timeout:        s.cfg.Timeout,
				MaxHeapObjects: s.cfg.MaxHeapObjects,
				MaxOutput:      s.cfg.MaxOutput,
				Retries:        s.cfg.Retries,
				Cache:          s.cfg.Cache,
				Trace:          s.sink,
			}),
		})
		if s.fleetM == nil {
			s.fleetM = fleet.NewMetrics(s.reg, s.coord.Ring())
		}
		s.coord.SetMetrics(s.fleetM)
		fleet.RegisterMembership(s.reg, s.coord.Membership())
	}
	s.requests = s.reg.Counter("dca_requests_total",
		"Analyze requests accepted for processing.")
	s.outcomes = s.reg.CounterVec("dca_request_outcomes_total",
		"Accepted analyze requests by final outcome.", "outcome")
	s.shed = s.reg.CounterVec("dca_load_shed_total",
		"Requests shed with 503 + Retry-After, by reason.", "reason")
	s.reg.GaugeFunc("dca_queue_depth",
		"Admitted analyze requests waiting for an analysis slot.",
		func() float64 {
			if d := s.admitted.Load() - s.inFlight.Value(); d > 0 {
				return float64(d)
			}
			return 0
		})
	s.loopsDone = s.reg.Counter("dca_loops_analyzed_total",
		"Loops analyzed across all completed requests.")
	s.encodeErrors = s.reg.Counter("dca_response_encode_errors_total",
		"Responses whose JSON encoding failed mid-write (usually a disconnected client).")
	s.inFlight = s.reg.Gauge("dca_inflight_requests",
		"Analyze requests currently being served.")
	s.reg.GaugeFunc("dca_pool_workers",
		"Configured engine worker-pool capacity.",
		func() float64 { return float64(s.pool.Cap()) })
	s.reg.GaugeFunc("dca_pool_in_use",
		"Engine worker-pool slots held right now.",
		func() float64 { return float64(s.pool.InUse()) })
	s.reg.GaugeFunc("dca_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	// The production cache exposes tiered counters; sample them at scrape
	// time so /metrics covers hit tiers, evictions, and corruption without
	// double-counting the analysis-level hit/miss events.
	if c, ok := cfg.Cache.(*cache.Cache); ok && c != nil {
		s.reg.CounterFunc("dca_cache_mem_hits_total",
			"Verdict-cache lookups served from the memory tier.",
			func() float64 { return float64(c.Stats().MemHits) })
		s.reg.CounterFunc("dca_cache_disk_hits_total",
			"Verdict-cache lookups served from the disk tier.",
			func() float64 { return float64(c.Stats().DiskHits) })
		s.reg.CounterFunc("dca_cache_misses_total",
			"Verdict-cache lookups that missed both tiers.",
			func() float64 { return float64(c.Stats().Misses) })
		s.reg.CounterFunc("dca_cache_evictions_total",
			"Memory-tier entries evicted by the LRU bound.",
			func() float64 { return float64(c.Stats().Evictions) })
		s.reg.CounterFunc("dca_cache_corruptions_total",
			"Cache records rejected as corrupt.",
			func() float64 { return float64(c.Stats().Corruptions) })
		s.reg.CounterFunc("dca_cache_disk_write_errors_total",
			"Verdict-cache disk writes that failed (entry lost to recomputation).",
			func() float64 { return float64(c.Stats().DiskWriteErrors) })
		s.reg.CounterFunc("dca_cache_disk_read_errors_total",
			"Verdict-cache disk reads that failed with an I/O error (degraded to misses).",
			func() float64 { return float64(c.Stats().DiskReadErrors) })
		s.reg.CounterFunc("dca_cache_breaker_trips_total",
			"Times the cache's disk circuit breaker tripped open.",
			func() float64 { return float64(c.Stats().BreakerTrips) })
		s.reg.GaugeFunc("dca_cache_breaker_open",
			"Disk circuit breaker state: 0 closed, 0.5 half-open, 1 open.",
			func() float64 {
				switch c.Stats().BreakerState {
				case cache.BreakerOpen:
					return 1
				case cache.BreakerHalfOpen:
					return 0.5
				default:
					return 0
				}
			})
		// Route the cache's disk-fault trace events into the same stream the
		// analyses feed, so /metrics sees write errors as they happen.
		c.SetTrace(s.sink)
	}
	s.mux.HandleFunc("POST /analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRunStatus)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	return s
}

// Handler exposes the service's HTTP handler (also used by tests via
// httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry, so embedders can add
// their own instruments next to the service's.
func (s *Server) Registry() *obs.Registry { return s.reg }

// FleetMetrics exposes the fleet instruments — nil outside fleet roles —
// so embedders like `dca fleet-bench` can read peer-cache hit rates and
// dispatch counts without scraping /metrics.
func (s *Server) FleetMetrics() *fleet.Metrics { return s.fleetM }

// ListenAndServe serves on addr until ctx is cancelled, then drains
// gracefully. It returns nil after a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// beginDrain flips the server into its drain window: /healthz starts
// reporting "draining" with 503 so load balancers stop routing to it.
func (s *Server) beginDrain() { s.draining.Store(true) }

// Serve serves on an existing listener until ctx is cancelled, then shuts
// down gracefully: /healthz flips to draining, the listener closes, and
// in-flight requests get up to DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if s.coord != nil {
		// Coordinator mode: the background prober re-admits recovered
		// workers for the server's whole lifetime.
		s.coord.StartProber(ctx)
	}
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.beginDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		// Async runs outlive their HTTP handlers; give them the rest of the
		// drain window too, so a SIGTERM doesn't silently abandon a run the
		// journal would otherwise have made resumable right up to its tail.
		done := make(chan struct{})
		go func() { s.bg.Wait(); close(done) }()
		select {
		case <-done:
		case <-drainCtx.Done():
		}
		return err
	}
}

// AnalyzeRequest is the /analyze request body.
type AnalyzeRequest struct {
	// Filename labels positions in verdicts ("request.mc" when empty).
	Filename string `json:"filename,omitempty"`
	// Source is the MiniC program to analyze.
	Source string `json:"source"`
	// Schedules overrides the number of random permutation schedules
	// (bounded by the server default; 0 keeps the default).
	Schedules int `json:"schedules,omitempty"`
	// MaxSteps / TimeoutMS tighten the per-execution budgets; values above
	// the server ceiling are clamped down to it. Negative values, and
	// timeouts too large to express in nanoseconds, are rejected with 400.
	MaxSteps  int64 `json:"max_steps,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache forces a fresh computation for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// StopAfter enables the sequential stopping rule: once this many
	// consecutive schedules agree with the golden run, the rest are
	// skipped. 0 tests every schedule; negative is rejected with 400.
	StopAfter int `json:"stop_after,omitempty"`
	// NoFootprint disables the footprint fast path for this request.
	NoFootprint bool `json:"no_footprint,omitempty"`
	// NoProve disables the static commutativity prover for this request,
	// so every loop's verdict comes from the dynamic stage.
	NoProve bool `json:"no_prove,omitempty"`
	// NoVM runs this request's executions on the tree-walking interpreter
	// instead of the bytecode VM. Unlike the CLI's process-wide -no-vm
	// flag, this is per-request: concurrent requests with different
	// settings never interfere.
	NoVM bool `json:"no_vm,omitempty"`
	// Loops, when non-empty, restricts the analysis to the listed loops —
	// the fleet's shard filter. The reference execution still runs once;
	// only the listed loops are analyzed and reported.
	Loops []fleet.LoopRef `json:"loops,omitempty"`
}

// AnalyzeResponse is the /analyze response body.
type AnalyzeResponse struct {
	Report *core.ReportJSON `json:"report"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Usually the client hung up mid-write; count every occurrence,
		// log the first so a systematic encoding bug is visible without
		// flooding the log on every disconnect.
		s.encodeErrors.Inc()
		s.logEncodeOnce.Do(func() {
			log.Printf("server: response encode failed (further occurrences counted in dca_response_encode_errors_total): %v", err)
		})
	}
}

// clampBudget lowers def to req when the request asks for less; requests
// can never exceed the server ceiling. def <= 0 (unlimited server budget)
// adopts any requested bound.
func clampBudget(def, req int64) int64 {
	if req <= 0 {
		return def
	}
	if def <= 0 || req < def {
		return req
	}
	return def
}

// maxTimeoutMS is the largest request timeout expressible in nanoseconds;
// anything above it would overflow time.Duration's int64 clock.
const maxTimeoutMS = math.MaxInt64 / int64(time.Millisecond)

// validate rejects request budgets no analysis could honour: negative
// values and timeouts that overflow the nanosecond clock. (Before this
// check existed, timeout_ms above ~9.2e12 silently overflowed into a
// negative — i.e. server-default — timeout.)
func (req *AnalyzeRequest) validate() error {
	if req.Schedules < 0 {
		return fmt.Errorf("\"schedules\" must be >= 0, got %d", req.Schedules)
	}
	if req.MaxSteps < 0 {
		return fmt.Errorf("\"max_steps\" must be >= 0, got %d", req.MaxSteps)
	}
	if req.TimeoutMS < 0 {
		return fmt.Errorf("\"timeout_ms\" must be >= 0, got %d", req.TimeoutMS)
	}
	if req.TimeoutMS > maxTimeoutMS {
		return fmt.Errorf("\"timeout_ms\" %d overflows the nanosecond clock (max %d)", req.TimeoutMS, maxTimeoutMS)
	}
	if req.StopAfter < 0 {
		return fmt.Errorf("\"stop_after\" must be >= 0, got %d", req.StopAfter)
	}
	return nil
}

// options assembles the engine options for one request. The request has
// passed validate, so the budget arithmetic cannot overflow.
func (s *Server) options(req *AnalyzeRequest) engine.Options {
	n := req.Schedules
	if n <= 0 || n > s.cfg.Schedules {
		n = s.cfg.Schedules
	}
	scheds := []dcart.Schedule{dcart.Reverse{}}
	for i := 0; i < n; i++ {
		scheds = append(scheds, dcart.Random{Seed: int64(i + 1)})
	}
	copt := core.Options{
		Schedules:      scheds,
		MaxSteps:       clampBudget(s.cfg.MaxSteps, req.MaxSteps),
		Timeout:        time.Duration(clampBudget(int64(s.cfg.Timeout), req.TimeoutMS*int64(time.Millisecond))),
		MaxHeapObjects: s.cfg.MaxHeapObjects,
		MaxOutput:      s.cfg.MaxOutput,
		Retries:        s.cfg.Retries,
		StopAfter:      req.StopAfter,
		NoFootprint:    req.NoFootprint,
		NoProve:        req.NoProve,
		NoVM:           req.NoVM,
		Trace:          s.sink,
	}
	if !req.NoCache {
		copt.Cache = s.cfg.Cache
	}
	eopt := engine.Options{Core: copt, Pool: s.pool}
	if len(req.Loops) > 0 {
		only := make(map[engine.LoopKey]bool, len(req.Loops))
		for _, ref := range req.Loops {
			only[engine.LoopKey{Fn: ref.Fn, Index: ref.Index}] = true
		}
		eopt.Only = only
	}
	return eopt
}

// knobs re-expresses the request's analysis options for fleet dispatch, so
// workers run under exactly this request's configuration.
func (s *Server) knobs(req *AnalyzeRequest) fleet.Knobs {
	return fleet.Knobs{
		Schedules:   req.Schedules,
		MaxSteps:    req.MaxSteps,
		TimeoutMS:   req.TimeoutMS,
		NoCache:     req.NoCache,
		StopAfter:   req.StopAfter,
		NoFootprint: req.NoFootprint,
		NoProve:     req.NoProve,
		NoVM:        req.NoVM,
	}
}

// shedRequest turns one request away with 503, a Retry-After hint, and the
// shed accounting: load balancers and well-behaved clients back off instead
// of retrying into the same overload.
//
// The hint is jittered across [base, 2*base): a fixed value synchronizes
// every turned-away client onto the same retry instant — and in a fleet,
// where one overloaded worker sheds a coordinator's whole batch and the
// coordinator re-dispatches on the same clock, a fixed hint would march
// thundering herds from node to node. The uniform spread decorrelates them;
// tests inject a deterministic jitter source via Config.RetryJitter.
func (s *Server) shedRequest(w http.ResponseWriter, reason, msg string) {
	s.outcomes.Inc(outcomeRejected)
	s.shed.Inc(reason)
	retry := int64(1)
	if secs := int64(s.cfg.QueueTimeout / time.Second); secs > retry {
		retry = secs
	}
	if reason == shedDraining {
		// This instance is going away; tell the client to wait out a typical
		// redeploy rather than hammer a dying process.
		retry = int64(s.cfg.DrainTimeout / time.Second)
		if retry < 1 {
			retry = 1
		}
	}
	retry += s.jitter(retry)
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
	s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{msg})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	// Admission gate, before the body is even read. Draining means every
	// new arrival belongs on another instance; the queue watermark bounds
	// how much work can pile up behind the MaxConcurrent in flight.
	if s.draining.Load() {
		s.shedRequest(w, shedDraining, "server is draining")
		return
	}
	if q := s.admitted.Add(1); q > int64(s.cfg.MaxConcurrent+s.cfg.MaxQueue) {
		s.admitted.Add(-1)
		s.shedRequest(w, shedQueueFull, "server at capacity: queue full")
		return
	}
	defer s.admitted.Add(-1)

	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.outcomes.Inc(outcomeRejected)
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxSourceBytes)})
			return
		}
		s.writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	if req.Source == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{"missing \"source\""})
		return
	}
	if err := req.validate(); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	// Concurrency bound: wait for a slot, but only as long as the client
	// stays and the queue timeout allows — a slow drain of the backlog must
	// turn into fast 503s, not requests parked until their sockets rot.
	// Async runs keep their slot past the handler's return; the background
	// goroutine releases it, so MaxConcurrent bounds sync and async work
	// uniformly.
	queueTimer := time.NewTimer(s.cfg.QueueTimeout)
	defer queueTimer.Stop()
	release := func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
	case <-queueTimer.C:
		s.shedRequest(w, shedQueueTimeout, "server at capacity: queue wait exceeded")
		return
	case <-r.Context().Done():
		s.outcomes.Inc(outcomeRejected)
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{"server at capacity"})
		return
	}
	s.requests.Inc()
	s.inFlight.Inc()

	filename := req.Filename
	if filename == "" {
		filename = "request.mc"
	}
	prog, err := irbuild.Compile(filename, req.Source)
	if err != nil {
		release()
		s.inFlight.Dec()
		s.outcomes.Inc(outcomeErrored)
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{"compile: " + err.Error()})
		return
	}

	if r.URL.Query().Get("async") != "" {
		s.startAsync(w, prog, &req)
		return
	}
	defer release()
	defer s.inFlight.Dec()

	// The analysis is scoped to the request: a disconnected client cancels
	// every interpreter run it still owns and frees the pool promptly.
	start := time.Now()
	rep, err := s.analyze(r.Context(), prog, filename, &req, nil)
	if r.Context().Err() != nil {
		// The client is gone; whatever the engine salvaged (Cancelled
		// verdicts were never cached) has no reader. This is load shed,
		// not an analysis failure.
		s.outcomes.Inc(outcomeRejected)
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{"analysis cancelled: client disconnected"})
		return
	}
	if err != nil {
		var perr *fleet.ProgramError
		if s.coord != nil && !errors.As(err, &perr) {
			// The fleet failed the request, not the program: every worker
			// the ring offered was dead or shedding.
			s.outcomes.Inc(outcomeErrored)
			s.writeJSON(w, http.StatusBadGateway, errorResponse{"fleet: " + err.Error()})
			return
		}
		// The reference execution failed: the program is analyzable by
		// nobody, which is the request's fault, not the server's.
		s.outcomes.Inc(outcomeErrored)
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{"analysis: " + err.Error()})
		return
	}
	s.outcomes.Inc(outcomeAnalyzed)
	s.loopsDone.Add(uint64(len(rep.Loops)))
	rep.ElapsedSeconds = time.Since(start).Seconds()
	s.writeJSON(w, http.StatusOK, AnalyzeResponse{Report: rep})
}

// analyze runs one request's analysis — locally through the engine, or
// sharded across the fleet in coordinator mode — and returns the report in
// wire form. onLoop, when non-nil, receives every loop verdict exactly
// once as it completes (the async path feeds the run registry with it).
func (s *Server) analyze(ctx context.Context, prog *ir.Program, filename string, req *AnalyzeRequest, onLoop func(core.LoopJSON)) (*core.ReportJSON, error) {
	if s.coord != nil {
		return s.coord.Analyze(ctx, prog, filename, req.Source, s.knobs(req), onLoop)
	}
	eopt := s.options(req)
	if onLoop != nil {
		eopt.OnLoop = func(res *core.LoopResult) { onLoop(res.JSON()) }
	}
	start := time.Now()
	rep, err := engine.Analyze(ctx, prog, eopt)
	if err != nil {
		return nil, err
	}
	return rep.JSON(time.Since(start)), nil
}

// runHandle is the 202 response to POST /analyze?async=1.
type runHandle struct {
	RunID      string `json:"run_id"`
	StatusURL  string `json:"status_url"`
	EventsURL  string `json:"events_url"`
	TotalLoops int    `json:"total_loops"`
}

// asyncJournal adapts the write-ahead journal to the engine's sink.
type asyncJournal struct{ j *journal.Journal }

func (a asyncJournal) Record(fn string, index int, data []byte) error {
	return a.j.Append(fn, index, data)
}

// runKey fingerprints an async run's program + configuration — the run
// handle's suffix and the journal's header key, so a journal can never be
// replayed into a run with different semantics.
func (s *Server) runKey(prog *ir.Program, req *AnalyzeRequest) string {
	copt := s.options(req).Core
	return fingerprint.Run(prog, fingerprint.Inputs{
		Schedules:   copt.Schedules,
		Limits:      copt.Limits(),
		Retries:     copt.Retries,
		StopAfter:   copt.StopAfter,
		NoFootprint: copt.NoFootprint,
		NoProve:     copt.NoProve,
	}).String()
}

// startAsync registers the analysis as a run and finishes it in the
// background: the response is an immediate 202 with the run handle, and
// the analysis itself runs on a context the client's disconnect cannot
// touch. The caller's semaphore slot travels with the goroutine, so
// MaxConcurrent bounds async and sync analyses together.
func (s *Server) startAsync(w http.ResponseWriter, prog *ir.Program, req *AnalyzeRequest) {
	refs := fleet.EnumerateLoops(prog)
	if len(req.Loops) > 0 {
		only := make(map[fleet.LoopRef]bool, len(req.Loops))
		for _, ref := range req.Loops {
			only[ref] = true
		}
		kept := refs[:0]
		for _, ref := range refs {
			if only[ref] {
				kept = append(kept, ref)
			}
		}
		refs = kept
	}
	run := s.runs.NewRun(s.runKey(prog, req), refs)
	s.bg.Add(1)
	go s.runAsync(run, prog, req)
	s.writeJSON(w, http.StatusAccepted, runHandle{
		RunID:      run.ID(),
		StatusURL:  "/runs/" + run.ID(),
		EventsURL:  "/runs/" + run.ID() + "/events",
		TotalLoops: len(refs),
	})
}

// runAsync is the background half of an async run. It owns the semaphore
// slot and in-flight accounting its handler left behind, feeds the run's
// event stream as loops complete, and seals the run with the merged
// report. With RunDir set, every completed loop is also journaled, so a
// crashed server leaves a resumable record behind.
func (s *Server) runAsync(run *fleet.Run, prog *ir.Program, req *AnalyzeRequest) {
	defer s.bg.Done()
	defer func() { <-s.sem; s.inFlight.Dec() }()

	filename := req.Filename
	if filename == "" {
		filename = "request.mc"
	}
	ctx := context.Background()
	start := time.Now()
	var j *journal.Journal
	if s.cfg.RunDir != "" {
		path := filepath.Join(s.cfg.RunDir, run.ID()+".journal")
		jj, _, jerr := journal.Open(path, s.runKey(prog, req), journal.Options{Version: core.CacheRecordVersion})
		if jerr != nil {
			// The run proceeds without durability; the failure is visible
			// in the trace stream rather than silently swallowed.
			s.sink.Emit(obs.Event{Stage: obs.StageJournal, Outcome: obs.OutcomeError, Err: jerr.Error()})
		} else {
			j = jj
			defer j.Close()
		}
	}
	var rep *core.ReportJSON
	var err error
	if s.coord != nil {
		// The coordinator journals the merged rows it streams: worker
		// verdicts land as framed LoopJSON records, so a crashed
		// coordinator still leaves a per-loop account of the run.
		onLoop := run.Complete
		if j != nil {
			onLoop = func(lj core.LoopJSON) {
				if data, merr := json.Marshal(lj); merr == nil {
					j.Append(lj.Fn, lj.Index, data)
				}
				run.Complete(lj)
			}
		}
		rep, err = s.coord.Analyze(ctx, prog, filename, req.Source, s.knobs(req), onLoop)
	} else {
		eopt := s.options(req)
		eopt.OnLoop = func(res *core.LoopResult) { run.Complete(res.JSON()) }
		if j != nil {
			eopt.Journal = asyncJournal{j}
		}
		var engineRep *core.Report
		engineRep, err = engine.Analyze(ctx, prog, eopt)
		if err == nil {
			rep = engineRep.JSON(time.Since(start))
		}
	}
	if err != nil {
		s.outcomes.Inc(outcomeErrored)
	} else {
		s.outcomes.Inc(outcomeAnalyzed)
		s.loopsDone.Add(uint64(len(rep.Loops)))
	}
	run.Finish(rep, err)
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	run := s.runs.Get(r.PathValue("id"))
	if run == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{"unknown run"})
		return
	}
	s.writeJSON(w, http.StatusOK, run.Status())
}

// handleRunEvents streams a run's per-loop verdicts — every verdict
// exactly once, in source order, no matter when the subscriber attaches
// (late subscribers replay the released prefix first). The default format
// is NDJSON: one core.LoopJSON object per line, terminated by the run's
// final Status object (recognizable by its "state" field). With
// Accept: text/event-stream the same payloads arrive as SSE "loop" events
// followed by one "done" event. A disconnect ends the stream only; the
// run itself continues on its background context.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	run := s.runs.Get(r.PathValue("id"))
	if run == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{"unknown run"})
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	write := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for i := 0; ; {
		ev, ok, done := run.Next(r.Context(), i)
		switch {
		case ok:
			if !write("loop", ev) {
				return
			}
			i++
		case done:
			write("done", run.Status())
			return
		default:
			// Client gone; the run continues without this subscriber.
			return
		}
	}
}

// handleCacheGet serves this node's local verdict-cache tier to its fleet
// peers. Deliberately the local cache, never the peer-wrapped one: a peer
// lookup answered by another peer lookup would chase the ring in circles.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if s.localCache == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{"no verdict cache configured"})
		return
	}
	key := r.PathValue("key")
	if !cache.ValidKey(key) {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{"malformed cache key"})
		return
	}
	data, ok := s.localCache.Get(key)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{"cache miss"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleCachePut accepts a peer's write-through. The body is size-capped
// and syntax-checked before it may enter the store; a corrupt record is
// the writer's problem, never this node's.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if s.localCache == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{"no verdict cache configured"})
		return
	}
	key := r.PathValue("key")
	if !cache.ValidKey(key) {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{"malformed cache key"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, fleet.MaxPeerRecord))
	if err != nil {
		s.writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("record exceeds %d bytes", fleet.MaxPeerRecord)})
		return
	}
	if !json.Valid(data) {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{"record is not valid JSON"})
		return
	}
	s.localCache.Put(key, data)
	w.WriteHeader(http.StatusNoContent)
}

// healthz is the liveness payload.
type healthz struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int64   `json:"in_flight"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Load balancers must stop routing here while in-flight analyses
		// finish; 503 is the conventional take-me-out-of-rotation signal.
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, healthz{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Value(),
	})
}

// statsResponse is the /stats payload — the registry's instruments
// re-expressed as JSON for humans and existing scrapers.
type statsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      uint64       `json:"requests"`
	Analyzed      uint64       `json:"analyzed"`
	Errored       uint64       `json:"errored"`
	Rejected      uint64       `json:"rejected"`
	LoopsAnalyzed uint64       `json:"loops_analyzed"`
	InFlight      int64        `json:"in_flight"`
	Shed          shedStats    `json:"shed"`
	Pool          poolStats    `json:"pool"`
	Cache         *cache.Stats `json:"cache,omitempty"`
}

// shedStats re-expresses dca_load_shed_total for /stats readers.
type shedStats struct {
	QueueFull    uint64 `json:"queue_full"`
	QueueTimeout uint64 `json:"queue_timeout"`
	Draining     uint64 `json:"draining"`
}

type poolStats struct {
	Workers int `json:"workers"`
	InUse   int `json:"in_use"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Value(),
		Analyzed:      s.outcomes.Value(outcomeAnalyzed),
		Errored:       s.outcomes.Value(outcomeErrored),
		Rejected:      s.outcomes.Value(outcomeRejected),
		LoopsAnalyzed: s.loopsDone.Value(),
		InFlight:      s.inFlight.Value(),
		Shed: shedStats{
			QueueFull:    s.shed.Value(shedQueueFull),
			QueueTimeout: s.shed.Value(shedQueueTimeout),
			Draining:     s.shed.Value(shedDraining),
		},
		Pool: poolStats{Workers: s.pool.Cap(), InUse: s.pool.InUse()},
	}
	// The production cache exposes counters; any other VerdictCache simply
	// reports no cache section.
	if c, ok := s.cfg.Cache.(*cache.Cache); ok && c != nil {
		st := c.Stats()
		resp.Cache = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}
