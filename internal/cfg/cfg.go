// Package cfg computes control-flow facts over IR functions: predecessor
// and successor maps, reverse postorder, dominator trees (Cooper-Harvey-
// Kennedy) and natural loops with their nesting forest. DCA analyzes loops
// found here.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"dca/internal/ir"
)

// Graph holds per-function control-flow structure.
type Graph struct {
	Fn     *ir.Func
	Preds  map[*ir.Block][]*ir.Block
	Succs  map[*ir.Block][]*ir.Block
	RPO    []*ir.Block       // reverse postorder over reachable blocks
	rpoNum map[*ir.Block]int // position in RPO
	idom   map[*ir.Block]*ir.Block
}

// New computes the CFG for fn.
func New(fn *ir.Func) *Graph {
	g := &Graph{
		Fn:    fn,
		Preds: map[*ir.Block][]*ir.Block{},
		Succs: map[*ir.Block][]*ir.Block{},
	}
	for _, b := range fn.Blocks {
		if b.Term == nil {
			continue
		}
		for _, s := range b.Term.Succs() {
			g.Succs[b] = append(g.Succs[b], s)
			g.Preds[s] = append(g.Preds[s], b)
		}
	}
	g.computeRPO()
	g.computeDominators()
	return g
}

func (g *Graph) computeRPO() {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Fn.Entry())
	g.RPO = make([]*ir.Block, len(post))
	g.rpoNum = make(map[*ir.Block]int, len(post))
	for i := range post {
		b := post[len(post)-1-i]
		g.RPO[i] = b
		g.rpoNum[b] = i
	}
}

// Reachable reports whether b is reachable from the entry.
func (g *Graph) Reachable(b *ir.Block) bool {
	_, ok := g.rpoNum[b]
	return ok
}

// computeDominators runs the Cooper-Harvey-Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	g.idom = map[*ir.Block]*ir.Block{}
	entry := g.Fn.Entry()
	g.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range g.Preds[b] {
				if _, ok := g.idom[p]; !ok {
					continue // not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for g.rpoNum[a] > g.rpoNum[b] {
			a = g.idom[a]
		}
		for g.rpoNum[b] > g.rpoNum[a] {
			b = g.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry's idom is itself).
func (g *Graph) Idom(b *ir.Block) *ir.Block { return g.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (g *Graph) Dominates(a, b *ir.Block) bool {
	if !g.Reachable(a) || !g.Reachable(b) {
		return false
	}
	entry := g.Fn.Entry()
	for {
		if a == b {
			return true
		}
		if b == entry {
			return false
		}
		nb := g.idom[b]
		if nb == b || nb == nil {
			return false
		}
		b = nb
	}
}

// Loop is a natural loop: Header plus the set of Blocks (including the
// header). Exits are the blocks outside the loop that loop blocks branch to.
type Loop struct {
	Fn       *ir.Func
	Header   *ir.Block
	Blocks   map[*ir.Block]bool
	Latches  []*ir.Block // in-loop predecessors of the header
	Exits    []*ir.Block // out-of-loop successor blocks
	ExitSrcs []*ir.Block // in-loop blocks with an edge out
	Parent   *Loop
	Children []*Loop
	Depth    int // 1 = outermost
	Index    int // stable index within the function (header RPO order)
}

// Contains reports whether the block belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// String renders a compact loop description.
func (l *Loop) String() string {
	names := make([]string, 0, len(l.Blocks))
	for b := range l.Blocks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return fmt.Sprintf("loop@%s{%s}", l.Header.Name, strings.Join(names, ","))
}

// ID returns a stable identifier usable in reports: function name, loop
// index and source position when available.
func (l *Loop) ID() string {
	pos := l.Header.Pos
	if pos.IsValid() {
		return fmt.Sprintf("%s/L%d@%s", l.Fn.Name, l.Index, pos)
	}
	return fmt.Sprintf("%s/L%d", l.Fn.Name, l.Index)
}

// FindLoops detects all natural loops via back edges (edge a->h where h
// dominates a) and builds the nesting forest. Loops sharing a header are
// merged, as in LLVM's LoopInfo.
func (g *Graph) FindLoops() []*Loop {
	byHeader := map[*ir.Block]*Loop{}
	var headers []*ir.Block
	for _, b := range g.RPO {
		for _, s := range g.Succs[b] {
			if g.Dominates(s, b) {
				// back edge b -> s
				l, ok := byHeader[s]
				if !ok {
					l = &Loop{Fn: g.Fn, Header: s, Blocks: map[*ir.Block]bool{s: true}}
					byHeader[s] = l
					headers = append(headers, s)
				}
				l.Latches = append(l.Latches, b)
				g.collectLoopBody(l, b)
			}
		}
	}
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	// Stable order by header RPO.
	sort.SliceStable(loops, func(i, j int) bool {
		return g.rpoNum[loops[i].Header] < g.rpoNum[loops[j].Header]
	})
	for i, l := range loops {
		l.Index = i
	}
	// Exits.
	for _, l := range loops {
		seenExit := map[*ir.Block]bool{}
		seenSrc := map[*ir.Block]bool{}
		for b := range l.Blocks {
			for _, s := range g.Succs[b] {
				if !l.Blocks[s] {
					if !seenExit[s] {
						seenExit[s] = true
						l.Exits = append(l.Exits, s)
					}
					if !seenSrc[b] {
						seenSrc[b] = true
						l.ExitSrcs = append(l.ExitSrcs, b)
					}
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool { return g.rpoNum[l.Exits[i]] < g.rpoNum[l.Exits[j]] })
		sort.Slice(l.ExitSrcs, func(i, j int) bool { return g.rpoNum[l.ExitSrcs[i]] < g.rpoNum[l.ExitSrcs[j]] })
	}
	// Nesting: loop A is a child of the smallest loop strictly containing
	// its header (and not equal to it).
	for _, l := range loops {
		var best *Loop
		for _, m := range loops {
			if m == l || !m.Blocks[l.Header] {
				continue
			}
			if best == nil || len(m.Blocks) < len(best.Blocks) {
				best = m
			}
		}
		if best != nil {
			l.Parent = best
			best.Children = append(best.Children, l)
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// collectLoopBody walks predecessors from a latch back to the header,
// adding every visited block to the loop.
func (g *Graph) collectLoopBody(l *Loop, latch *ir.Block) {
	if l.Blocks[latch] {
		return
	}
	stack := []*ir.Block{latch}
	l.Blocks[latch] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds[b] {
			if !l.Blocks[p] && g.Reachable(p) {
				l.Blocks[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// LoopsOf is a convenience: CFG + loop detection in one call.
func LoopsOf(fn *ir.Func) (*Graph, []*Loop) {
	g := New(fn)
	return g, g.FindLoops()
}
