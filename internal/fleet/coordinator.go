package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dca/internal/cfg"
	"dca/internal/core"
	"dca/internal/fingerprint"
	"dca/internal/ir"
	"dca/internal/obs"
)

// Knobs are the per-request analysis options the coordinator forwards
// verbatim to every worker, so a sharded analysis runs under exactly the
// configuration a single node would have used.
type Knobs struct {
	Schedules   int
	MaxSteps    int64
	TimeoutMS   int64
	NoCache     bool
	StopAfter   int
	NoFootprint bool
	NoProve     bool
	NoVM        bool
}

// workerRequest is the worker-side /analyze body. JSON tags mirror the
// server's AnalyzeRequest; the type is redeclared here so fleet never
// imports internal/server (the server imports fleet).
type workerRequest struct {
	Filename    string    `json:"filename,omitempty"`
	Source      string    `json:"source"`
	Schedules   int       `json:"schedules,omitempty"`
	MaxSteps    int64     `json:"max_steps,omitempty"`
	TimeoutMS   int64     `json:"timeout_ms,omitempty"`
	NoCache     bool      `json:"no_cache,omitempty"`
	StopAfter   int       `json:"stop_after,omitempty"`
	NoFootprint bool      `json:"no_footprint,omitempty"`
	NoProve     bool      `json:"no_prove,omitempty"`
	NoVM        bool      `json:"no_vm,omitempty"`
	Loops       []LoopRef `json:"loops,omitempty"`
}

type workerResponse struct {
	Report *core.ReportJSON `json:"report"`
	Error  string           `json:"error"`
}

// maxWorkerResponse caps a worker response body (reports are bounded by
// the loop count, but a confused peer must not balloon memory).
const maxWorkerResponse = 64 << 20

// Coordinator shards a program's loops across the fleet's workers and
// merges their verdicts back into one deterministic report. Its failure
// handling is governed by a Policy (attempt timeouts, same-node retries,
// hedging, backoff) and a Membership lifecycle (failed nodes leave
// rotation, the prober brings them back); when the whole fleet is down it
// degrades to in-process analysis through its LocalAnalyzer — the fleet
// is an accelerator, never a single point of failure.
type Coordinator struct {
	ring    *Ring
	client  *http.Client
	m       *Metrics
	trace   obs.Sink
	policy  Policy
	jitter  func(int64) int64
	members *Membership
	local   LocalAnalyzer

	proberOn atomic.Bool
}

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Nodes are the worker base URLs ("http://host:port"). Required.
	Nodes []string
	// Client overrides the HTTP client used for dispatch; nil means a
	// client with no overall timeout — per-attempt clocks come from
	// Policy.DispatchTimeout, and batches are otherwise bounded by the
	// request context (suites can run for minutes).
	Client *http.Client
	// Metrics, when non-nil, receives dispatch and re-dispatch counts.
	Metrics *Metrics
	// Trace, when non-nil, receives one StageFleet event per batch
	// dispatch outcome, retry, hedge, rejoin, and fallback.
	Trace obs.Sink
	// Policy tunes the dispatch resilience knobs; the zero value gets
	// production defaults.
	Policy Policy
	// Local, when non-nil, is the graceful-degradation path: with every
	// worker out of rotation the coordinator analyzes the remaining loops
	// in-process instead of failing the run.
	Local LocalAnalyzer
}

// NewCoordinator builds a coordinator over the given worker nodes.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	policy := cfg.Policy.withDefaults()
	jitter := policy.Jitter
	if jitter == nil {
		jitter = rand.Int63n
	}
	c := &Coordinator{
		ring:   NewRing(cfg.Nodes),
		client: client,
		m:      cfg.Metrics,
		trace:  cfg.Trace,
		policy: policy,
		jitter: jitter,
		local:  cfg.Local,
	}
	c.members = newMembership(c.ring.Nodes(), policy.ProbeInterval, policy.ProbeBackoffCap, jitter)
	return c
}

// Ring exposes the coordinator's dispatch ring (shared with metrics and
// the peer cache when the process is both coordinator and worker).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Membership exposes the node lifecycle tracker — gauges sample it and
// tests assert on it.
func (c *Coordinator) Membership() *Membership { return c.members }

// SetMetrics attaches the fleet instruments after construction — the
// server builds the coordinator first so the ring-size gauge can sample
// its ring, then hands the registered metrics back. Call before Analyze.
func (c *Coordinator) SetMetrics(m *Metrics) { c.m = m }

// StartProber launches the background health prober: out-of-rotation
// nodes are probed on an exponential, jittered backoff and re-admitted
// the moment /healthz answers — mid-run and across runs alike. The
// prober stops when ctx is cancelled; starting twice is a no-op while
// the first prober lives.
func (c *Coordinator) StartProber(ctx context.Context) {
	if c.proberOn.Swap(true) {
		return
	}
	go func() {
		defer c.proberOn.Store(false)
		t := time.NewTicker(c.policy.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.probeDue(ctx)
			}
		}
	}()
}

// probeDue probes every out-of-rotation node whose backoff has elapsed,
// concurrently, each under the probe timeout. Successes rejoin the ring;
// failures double the node's backoff.
func (c *Coordinator) probeDue(ctx context.Context) {
	due := c.members.due(time.Now())
	if len(due) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, node := range due {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			err := c.probeNode(ctx, node)
			if c.m != nil {
				c.m.Probes.Inc()
			}
			if err != nil {
				if c.m != nil {
					c.m.ProbeFailures.Inc()
				}
				c.members.probeFailed(node)
				return
			}
			c.admit(node)
		}(node)
	}
	wg.Wait()
}

// admit returns a node to rotation, counting and tracing the rejoin
// exactly once per transition.
func (c *Coordinator) admit(node string) {
	if !c.members.MarkLive(node) {
		return
	}
	if c.m != nil {
		c.m.Rejoins.Inc()
	}
	if c.trace != nil {
		c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeRejoin, Reason: node})
	}
}

// probeNode performs one /healthz probe under the policy's probe timeout.
func (c *Coordinator) probeNode(ctx context.Context, node string) error {
	pctx, cancel := context.WithTimeout(ctx, c.policy.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// EnumerateLoops lists a program's loops in report order — sorted by
// function name, then loop index, exactly like core.Analyze's output. The
// registry seeds its source-ordered stream from this list, and the
// coordinator merges worker verdicts back into it.
func EnumerateLoops(prog *ir.Program) []LoopRef {
	var refs []LoopRef
	for _, fn := range prog.Funcs {
		_, loops := cfg.LoopsOf(fn)
		for _, loop := range loops {
			refs = append(refs, LoopRef{Fn: fn.Name, Index: loop.Index})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Fn != refs[j].Fn {
			return refs[i].Fn < refs[j].Fn
		}
		return refs[i].Index < refs[j].Index
	})
	return refs
}

// Health probes every node's /healthz concurrently, each under the
// policy's probe timeout, returning the nodes that failed (missing
// entries are healthy). One hung node costs one probe timeout, not the
// whole seeding pass.
func (c *Coordinator) Health(ctx context.Context) map[string]error {
	var mu sync.Mutex
	bad := make(map[string]error)
	var wg sync.WaitGroup
	for _, n := range c.ring.Nodes() {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			if err := c.probeNode(ctx, n); err != nil {
				mu.Lock()
				bad[n] = err
				mu.Unlock()
			}
		}(n)
	}
	wg.Wait()
	return bad
}

// ProgramError is a worker's 4xx verdict on the dispatched program itself
// (compile failure, reference-execution trap, invalid knobs). It is the
// program's fault, not the worker's: re-dispatching to another node would
// fail identically, so the coordinator aborts the run instead of marking
// nodes dead one by one.
type ProgramError struct {
	Node string
	Msg  string
}

func (e *ProgramError) Error() string { return e.Msg }

// batchResult is one batch's outcome, drained by the merge loop. A batch
// may have touched several nodes (same-node retries stay inside one
// attempt; hedging adds a second): failed lists every node that exhausted
// its attempts, node names the one that produced rep.
type batchResult struct {
	refs   []LoopRef
	node   string
	rep    *core.ReportJSON
	failed []string
	err    error
}

// Analyze shards prog's loops across the fleet, dispatches per-worker
// batches concurrently, and merges the verdicts into one report whose
// loop order, summary, and totals are byte-identical (modulo timing) to a
// single node analyzing the whole program.
//
// Failure handling is policy-driven. Each batch attempt is bounded by the
// dispatch timeout; transient failures retry the same node (honoring a
// shedding worker's Retry-After) before the node leaves rotation and the
// batch re-routes to its ring successor in the next round, after a
// decorrelated-jitter backoff. A straggling batch is hedged to the
// successor after HedgeAfter; the first result wins. When every node is
// out of rotation the remaining loops are analyzed in-process through the
// LocalAnalyzer. All of it is safe by verdict determinism: semantics are
// at-least-once, verdicts are fingerprint-keyed deterministic functions,
// and the first result wins on merge. onLoop, when non-nil, receives
// every merged loop verdict exactly once, as it lands.
func (c *Coordinator) Analyze(ctx context.Context, prog *ir.Program, filename, source string, knobs Knobs, onLoop func(core.LoopJSON)) (*core.ReportJSON, error) {
	start := time.Now()
	refs := EnumerateLoops(prog)
	router := fingerprint.NewRouter(prog)
	route := make(map[LoopRef]string, len(refs))
	for _, ref := range refs {
		route[ref] = router.Route(ref.Fn, ref.Index).String()
	}

	results := make(map[LoopRef]core.LoopJSON, len(refs))
	pending := refs
	stalled := 0 // consecutive rounds with no merge progress and no membership change
	barren := 0  // consecutive rounds with no merge progress at all
	backoff := time.Duration(0)
	round := 0

	for len(results) < len(refs) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fleet: analysis cancelled: %w", context.Cause(ctx))
		}
		if round > 0 {
			// Decorrelated-jitter backoff between re-dispatch rounds: retrying
			// coordinators spread apart instead of re-arriving in waves.
			backoff = c.policy.backoffStep(c.jitter, backoff)
			if !sleepCtx(ctx, backoff) {
				return nil, fmt.Errorf("fleet: analysis cancelled: %w", context.Cause(ctx))
			}
		}
		round++
		if !c.proberOn.Load() {
			// No background prober (bare coordinator): probe due nodes inline
			// so a recovered worker still rejoins across and within runs.
			c.probeDue(ctx)
		}

		// Route the still-pending loops onto the in-rotation ring.
		excluded := c.members.Excluded()
		batches := make(map[string][]LoopRef)
		degraded := false
		for _, ref := range pending {
			owner := c.ring.Owner(route[ref], excluded)
			if owner == "" {
				degraded = true
				break
			}
			batches[owner] = append(batches[owner], ref)
		}

		if degraded {
			// Every worker is out of rotation: the fleet was an accelerator,
			// so finish the remaining loops in-process instead of failing.
			if c.local == nil {
				return nil, fmt.Errorf("fleet: no live workers (%d/%d nodes out of rotation)", len(excluded), c.ring.Size())
			}
			if c.m != nil {
				c.m.FallbackRuns.Inc()
				c.m.FallbackLoops.Add(uint64(len(pending)))
			}
			if c.trace != nil {
				c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeFallback,
					Reason: fmt.Sprintf("%d loops analyzed in-process", len(pending))})
			}
			rows, err := c.local(ctx, prog, knobs, pending, onLoop)
			if err != nil {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("fleet: analysis cancelled: %w", context.Cause(ctx))
				}
				// The local reference execution failed; every worker would have
				// agreed, so this is the program's fault, exactly like a 4xx.
				return nil, &ProgramError{Node: "local", Msg: err.Error()}
			}
			if err := ctx.Err(); err != nil {
				// Engine cancellation yields Cancelled rows, which a healthy
				// run would never merge; surface the cancellation instead.
				return nil, fmt.Errorf("fleet: analysis cancelled: %w", context.Cause(ctx))
			}
			for _, ref := range pending {
				lj, ok := rows[ref]
				if !ok {
					return nil, fmt.Errorf("fleet: local fallback produced no verdict for %s #%d", ref.Fn, ref.Index)
				}
				results[ref] = lj
			}
			pending = nil
			continue
		}

		// Dispatch every batch concurrently; drain outcomes as they land.
		out := make(chan batchResult, len(batches))
		for node, batch := range batches {
			if c.m != nil {
				c.m.Dispatches.Inc(node)
			}
			go func(node string, batch []LoopRef) {
				out <- c.runBatch(ctx, node, batch, route[batch[0]], excluded, filename, source, knobs)
			}(node, batch)
		}

		progress := false
		transitions := false
		var fatal error
		for range batches {
			br := <-out
			for _, n := range br.failed {
				if c.members.Suspect(n) {
					transitions = true
				}
			}
			var perr *ProgramError
			if errors.As(br.err, &perr) && br.rep == nil {
				// Keep draining so no dispatch goroutine leaks, then abort.
				if fatal == nil {
					fatal = br.err
				}
				continue
			}
			if br.rep == nil {
				// Every attempt for this batch failed; its loops stay pending
				// and the next round routes them to the ring successor.
				if c.m != nil {
					c.m.Redispatches.Inc()
				}
				if c.trace != nil {
					c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeError, Err: br.err.Error()})
				}
				continue
			}
			if c.trace != nil {
				c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeOK})
			}
			want := make(map[LoopRef]bool, len(br.refs))
			for _, ref := range br.refs {
				want[ref] = true
			}
			for _, lj := range br.rep.Loops {
				ref := LoopRef{Fn: lj.Fn, Index: lj.Index}
				if !want[ref] {
					continue // a worker may never widen its batch
				}
				if _, dup := results[ref]; dup {
					continue // at-least-once: first result wins
				}
				results[ref] = lj
				progress = true
				if onLoop != nil {
					onLoop(lj)
				}
			}
		}

		if fatal != nil {
			return nil, fatal
		}

		var still []LoopRef
		for _, ref := range pending {
			if _, ok := results[ref]; !ok {
				still = append(still, ref)
			}
		}
		pending = still
		if len(pending) == 0 {
			continue
		}
		// No-progress bounds. A round that merged nothing and changed no
		// node's state is a worker answering 200 while omitting its loops —
		// re-dispatching the same batches would spin forever, dead set or
		// not. The barren bound additionally stops a flapping node (fails
		// dispatch, passes probes) from spinning the run: every pending loop
		// must land within a ring's worth of reroute rounds.
		if progress {
			stalled, barren = 0, 0
			continue
		}
		barren++
		if transitions {
			stalled = 0
		} else {
			stalled++
		}
		if stalled >= 2 {
			return nil, fmt.Errorf("fleet: %d loops missing from worker reports", len(pending))
		}
		if barren >= c.ring.Size()+2 {
			return nil, fmt.Errorf("fleet: %d loops still pending after %d no-progress rounds", len(pending), barren)
		}
	}

	return mergeReport(refs, results, time.Since(start)), nil
}

// runBatch drives one batch to completion against its owner: same-node
// retries inside attemptNode, plus a hedge to the ring successor once the
// straggler delay elapses. First successful report wins; the loser's
// attempt is cancelled. Safe by verdict determinism — both nodes would
// return identical rows.
func (c *Coordinator) runBatch(ctx context.Context, primary string, batch []LoopRef, routeKey string, excluded map[string]bool, filename, source string, knobs Knobs) batchResult {
	br := batchResult{refs: batch}
	type outcome struct {
		node string
		rep  *core.ReportJSON
		err  error
	}
	out := make(chan outcome, 2)
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func(node string) {
		go func() {
			rep, err := c.attemptNode(actx, node, filename, source, knobs, batch)
			out <- outcome{node, rep, err}
		}()
	}
	launch(primary)
	inflight := 1
	var hedgeC <-chan time.Time
	if c.policy.HedgeAfter > 0 {
		t := time.NewTimer(c.policy.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	for inflight > 0 {
		select {
		case o := <-out:
			inflight--
			if o.err != nil {
				br.failed = append(br.failed, o.node)
				br.err = o.err
				var perr *ProgramError
				if errors.As(o.err, &perr) {
					return br // the program's fault: no retry anywhere helps
				}
				continue
			}
			br.rep, br.node, br.err = o.rep, o.node, nil
			if o.node != primary && c.m != nil {
				c.m.HedgeWins.Inc()
			}
			return br
		case <-hedgeC:
			hedgeC = nil
			if succ := c.hedgeTarget(primary, routeKey, excluded); succ != "" {
				if c.m != nil {
					c.m.Hedges.Inc()
				}
				if c.trace != nil {
					c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeHedged,
						Reason: primary + " -> " + succ})
				}
				launch(succ)
				inflight++
			}
		case <-actx.Done():
			br.err = context.Cause(actx)
			return br
		}
	}
	return br
}

// hedgeTarget picks the batch's hedge destination: the ring successor of
// its route key with the primary also excluded. "" when no other live
// node exists.
func (c *Coordinator) hedgeTarget(primary, routeKey string, excluded map[string]bool) string {
	ex := make(map[string]bool, len(excluded)+1)
	for n := range excluded {
		ex[n] = true
	}
	ex[primary] = true
	return c.ring.Owner(routeKey, ex)
}

// attemptNode dispatches one batch to one node, retrying transient
// failures on the same node up to the policy's retry budget. Each attempt
// runs under the dispatch timeout; between attempts it waits the larger
// of the decorrelated backoff and the worker's own Retry-After hint
// (capped) — a shedding worker said when it wants to be retried, and
// ignoring that only re-arrives into the same overload.
func (c *Coordinator) attemptNode(ctx context.Context, node, filename, source string, knobs Knobs, batch []LoopRef) (*core.ReportJSON, error) {
	var lastErr error
	var retryAfter time.Duration
	backoff := time.Duration(0)
	for try := 0; try <= c.policy.NodeRetries; try++ {
		if try > 0 {
			backoff = c.policy.backoffStep(c.jitter, backoff)
			wait := backoff
			if retryAfter > 0 {
				if retryAfter > c.policy.MaxRetryAfter {
					retryAfter = c.policy.MaxRetryAfter
				}
				if retryAfter > wait {
					wait = retryAfter
				}
			}
			if c.m != nil {
				c.m.NodeRetries.Inc()
			}
			if c.trace != nil {
				c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeRetry, Reason: node})
			}
			if !sleepCtx(ctx, wait) {
				return nil, context.Cause(ctx)
			}
		}
		actx := ctx
		cancel := func() {}
		if c.policy.DispatchTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.policy.DispatchTimeout)
		}
		rep, ra, err := c.dispatch(actx, node, filename, source, knobs, batch)
		cancel()
		if err == nil {
			// A successful dispatch is a successful probe: a node another run
			// suspected moments ago has just proven itself.
			c.admit(node)
			return rep, nil
		}
		var perr *ProgramError
		if errors.As(err, &perr) {
			return nil, err
		}
		if ctx.Err() != nil {
			// The run (or the hedge winner) cancelled us; don't spin retries.
			return nil, err
		}
		lastErr, retryAfter = err, ra
	}
	return nil, lastErr
}

// dispatch sends one batch to one worker and decodes its report. Any
// non-200 status — including a 503 shed — is a failed attempt; a 503's
// Retry-After hint is returned so the caller can honor it.
func (c *Coordinator) dispatch(ctx context.Context, node, filename, source string, knobs Knobs, batch []LoopRef) (*core.ReportJSON, time.Duration, error) {
	body, err := json.Marshal(workerRequest{
		Filename:    filename,
		Source:      source,
		Schedules:   knobs.Schedules,
		MaxSteps:    knobs.MaxSteps,
		TimeoutMS:   knobs.TimeoutMS,
		NoCache:     knobs.NoCache,
		StopAfter:   knobs.StopAfter,
		NoFootprint: knobs.NoFootprint,
		NoProve:     knobs.NoProve,
		NoVM:        knobs.NoVM,
		Loops:       batch,
	})
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", node, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWorkerResponse))
	if err != nil {
		return nil, 0, fmt.Errorf("%s: read response: %w", node, err)
	}
	if resp.StatusCode != http.StatusOK {
		var wr workerResponse
		msg := resp.Status
		if json.Unmarshal(data, &wr) == nil && wr.Error != "" {
			msg = wr.Error
		}
		// 4xx means the program (or the forwarded knobs) is at fault and
		// every node would agree; 5xx and transport errors mean this node is.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, 0, &ProgramError{Node: node, Msg: msg}
		}
		var ra time.Duration
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		return nil, ra, fmt.Errorf("%s: %s: %s", node, resp.Status, msg)
	}
	var wr workerResponse
	if err := json.Unmarshal(data, &wr); err != nil {
		return nil, 0, fmt.Errorf("%s: decode response: %w", node, err)
	}
	if wr.Report == nil {
		return nil, 0, fmt.Errorf("%s: response carried no report", node)
	}
	return wr.Report, 0, nil
}

// mergeReport assembles the fleet report: loops in report order, summary
// and totals recomputed from the merged loops — the same arithmetic
// core.Report.JSON applies, so N workers and one worker render the same
// bytes (timing aside).
func mergeReport(refs []LoopRef, results map[LoopRef]core.LoopJSON, elapsed time.Duration) *core.ReportJSON {
	rep := &core.ReportJSON{
		Loops:          make([]core.LoopJSON, 0, len(refs)),
		Summary:        map[string]int{},
		TotalLoops:     len(refs),
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, ref := range refs {
		lj := results[ref]
		rep.Loops = append(rep.Loops, lj)
		rep.Summary[lj.Verdict]++
		if lj.Verdict == core.Commutative.String() {
			rep.Commutative++
		}
		switch lj.Provenance {
		case core.ProvenanceCached:
			rep.CachedLoops++
		case core.ProvenanceJournaled:
			rep.ResumedLoops++
		}
		rep.Replays += lj.Replays
	}
	return rep
}
