package core

import (
	"fmt"
	"strings"

	"dca/internal/ir"
)

// InputVerdict is one workload's verdict for the loop under test.
type InputVerdict struct {
	Input  string
	Result *LoopResult
}

// MultiInputReport combines DCA verdicts for one loop across several
// workloads — the paper's §V-D future-work suggestion ("applying combined
// tests for multiple inputs and exploring inputs leading to execution paths
// that might affect commutativity"). A loop is only proposed for
// parallelization when every input that exercises it agrees; a flip across
// inputs (the 429.mcf situation) is surfaced as instability instead of a
// silent false positive.
type MultiInputReport struct {
	Fn        string
	LoopIndex int
	Inputs    []InputVerdict
	// Combined is Commutative only when every exercising input found the
	// loop commutative; NonCommutative if any input refuted it; otherwise
	// the most informative non-verdict (not-executed / excluded / failed).
	Combined Verdict
	// Stable reports whether all exercising inputs agreed.
	Stable bool
}

func (r *MultiInputReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/L%d across %d inputs: combined=%s stable=%v\n", r.Fn, r.LoopIndex, len(r.Inputs), r.Combined, r.Stable)
	for _, iv := range r.Inputs {
		fmt.Fprintf(&b, "  %-24s %-16s", iv.Input, iv.Result.Verdict)
		if iv.Result.Reason != "" {
			fmt.Fprintf(&b, " (%s)", iv.Result.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NamedProgram pairs a workload label with its compiled program. All
// programs must contain the function/loop under test (typically the same
// source compiled with different embedded inputs).
type NamedProgram struct {
	Name string
	Prog *ir.Program
}

// AnalyzeAcrossInputs runs DCA on the same loop under several workloads and
// combines the verdicts.
func AnalyzeAcrossInputs(inputs []NamedProgram, fnName string, loopIndex int, opt Options) (*MultiInputReport, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("core: no inputs")
	}
	rep := &MultiInputReport{Fn: fnName, LoopIndex: loopIndex, Stable: true}
	sawCommutative, sawNonCommutative := false, false
	var fallback Verdict = NotExecuted
	for _, in := range inputs {
		res, err := AnalyzeLoop(in.Prog, fnName, loopIndex, opt)
		if err != nil {
			return nil, fmt.Errorf("core: input %q: %w", in.Name, err)
		}
		rep.Inputs = append(rep.Inputs, InputVerdict{Input: in.Name, Result: res})
		switch res.Verdict {
		case Commutative:
			sawCommutative = true
		case NonCommutative:
			sawNonCommutative = true
		case NotExecuted:
			// no evidence either way
		default:
			fallback = res.Verdict
		}
	}
	switch {
	case sawNonCommutative:
		rep.Combined = NonCommutative
		rep.Stable = !sawCommutative
	case sawCommutative:
		rep.Combined = Commutative
	default:
		rep.Combined = fallback
	}
	return rep, nil
}
