package engine_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dca/internal/core"
	"dca/internal/engine"
	"dca/internal/irbuild"
	"dca/internal/obs"
	"dca/internal/sandbox"
	"dca/internal/workloads/plds"
)

// memJournal is an in-memory JournalSink: what the engine hands a real
// write-ahead journal, without the disk.
type memJournal struct {
	mu   sync.Mutex
	recs map[engine.LoopKey][]byte
	err  error
}

func newMemJournal() *memJournal { return &memJournal{recs: map[engine.LoopKey][]byte{}} }

func (m *memJournal) Record(fn string, index int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	m.recs[engine.LoopKey{Fn: fn, Index: index}] = append([]byte(nil), data...)
	return nil
}

// assertSameVerdicts is assertIdentical minus Provenance: a resumed loop
// legitimately reports "journaled" where the fresh run said "computed";
// everything the user sees — the report text and every verdict field —
// must still match exactly.
func assertSameVerdicts(t *testing.T, label string, fresh, resumed *core.Report) {
	t.Helper()
	if fresh.String() != resumed.String() {
		t.Fatalf("%s: reports differ\n--- fresh ---\n%s--- resumed ---\n%s", label, fresh, resumed)
	}
	if len(fresh.Loops) != len(resumed.Loops) {
		t.Fatalf("%s: loop counts differ: %d vs %d", label, len(fresh.Loops), len(resumed.Loops))
	}
	for i := range fresh.Loops {
		a, b := *fresh.Loops[i], *resumed.Loops[i]
		a.Elapsed, b.Elapsed = 0, 0
		a.Replays, b.Replays = 0, 0
		a.Provenance, b.Provenance = "", ""
		a.DurStatic, b.DurStatic = 0, 0
		a.DurGolden, b.DurGolden = 0, 0
		a.DurReplay, b.DurReplay = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: loop %d differs:\n  fresh:   %+v\n  resumed: %+v", label, i, a, b)
		}
	}
}

// TestJournalResumeIdentity: a run that journals every verdict, resumed
// from those records, must produce a report identical to the fresh run —
// with every loop served from the journal and zero replays performed.
func TestJournalResumeIdentity(t *testing.T) {
	prog, err := plds.ByName("treeadd").Compile()
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()

	j := newMemJournal()
	fresh, err := engine.Analyze(context.Background(), prog,
		engine.Options{Core: opt, Workers: 4, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if len(j.recs) != len(fresh.Loops) {
		t.Fatalf("journaled %d records for %d loops", len(j.recs), len(fresh.Loops))
	}

	var tr obs.Collector
	ropt := opt
	ropt.Trace = &tr
	resumed, err := engine.Analyze(context.Background(), prog,
		engine.Options{Core: ropt, Workers: 4, Resume: j.recs})
	if err != nil {
		t.Fatal(err)
	}
	assertSameVerdicts(t, "journal resume", fresh, resumed)
	if got := resumed.ResumedLoops(); got != len(fresh.Loops) {
		t.Fatalf("ResumedLoops = %d, want %d", got, len(fresh.Loops))
	}
	for _, l := range resumed.Loops {
		if l.Provenance != core.ProvenanceJournaled {
			t.Fatalf("loop %s/%d provenance %q, want journaled", l.Fn, l.Index, l.Provenance)
		}
		if l.Replays != 0 {
			t.Fatalf("loop %s/%d performed %d replays despite journal hit", l.Fn, l.Index, l.Replays)
		}
	}
	hits, verdicts := 0, 0
	for _, ev := range tr.Events() {
		switch {
		case ev.Stage == obs.StageJournal && ev.Outcome == obs.OutcomeHit:
			hits++
		case ev.Stage == obs.StageVerdict:
			verdicts++
			if ev.Provenance != core.ProvenanceJournaled {
				t.Fatalf("verdict event provenance %q, want journaled", ev.Provenance)
			}
		case ev.Stage == obs.StageGolden || ev.Stage == obs.StageReplay:
			t.Fatalf("resumed run executed a %s stage", ev.Stage)
		}
	}
	if hits != len(fresh.Loops) || verdicts != len(fresh.Loops) {
		t.Fatalf("trace: %d journal hits, %d verdicts, want %d each", hits, verdicts, len(fresh.Loops))
	}
}

// TestJournalResumePartial: loops missing from the resume map — the crash
// case — run fresh and are re-journaled; resumed loops are not.
func TestJournalResumePartial(t *testing.T) {
	prog, err := irbuild.Compile("prescreen.mc", prescreenSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()

	j := newMemJournal()
	fresh, err := engine.Analyze(context.Background(), prog,
		engine.Options{Core: opt, Workers: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Loops) < 3 {
		t.Fatalf("want >= 3 loops, got %d", len(fresh.Loops))
	}
	// Simulate a crash after the first verdict: keep one record.
	keep := engine.LoopKey{Fn: fresh.Loops[0].Fn, Index: fresh.Loops[0].Index}
	partial := map[engine.LoopKey][]byte{keep: j.recs[keep]}

	j2 := newMemJournal()
	resumed, err := engine.Analyze(context.Background(), prog,
		engine.Options{Core: opt, Workers: 2, Journal: j2, Resume: partial})
	if err != nil {
		t.Fatal(err)
	}
	assertSameVerdicts(t, "partial resume", fresh, resumed)
	if got := resumed.ResumedLoops(); got != 1 {
		t.Fatalf("ResumedLoops = %d, want 1", got)
	}
	// The continuation journals only what it computed.
	if _, ok := j2.recs[keep]; ok {
		t.Fatal("resumed loop was re-journaled")
	}
	if want := len(fresh.Loops) - 1; len(j2.recs) != want {
		t.Fatalf("continuation journaled %d records, want %d", len(j2.recs), want)
	}
}

// TestJournalResumeCorruptRecord: a resume record that does not decode
// falls through to a fresh analysis — corruption degrades to
// recomputation, never to a wrong verdict.
func TestJournalResumeCorruptRecord(t *testing.T) {
	prog, err := irbuild.Compile("prescreen.mc", prescreenSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	fresh, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[engine.LoopKey][]byte{}
	for _, l := range fresh.Loops {
		bad[engine.LoopKey{Fn: l.Fn, Index: l.Index}] = []byte(`{"verdict": 9999}`)
	}
	resumed, err := engine.Analyze(context.Background(), prog,
		engine.Options{Core: opt, Workers: 2, Resume: bad})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "corrupt resume", fresh, resumed)
	if got := resumed.ResumedLoops(); got != 0 {
		t.Fatalf("ResumedLoops = %d, want 0 for corrupt records", got)
	}
}

// TestJournalBypassedUnderInjection: armed fault injection must bypass the
// journal in both directions, like the verdict cache — injected traps are
// harness behaviour, not reusable analysis results.
func TestJournalBypassedUnderInjection(t *testing.T) {
	prog, err := plds.ByName("treeadd").Compile()
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Inject = sandbox.Inject{AtIntrinsic: 40, Kind: sandbox.Fault}

	// A poisoned resume map: if injection consulted it, verdicts would skew.
	clean, err := engine.Analyze(context.Background(), prog, engine.Options{Core: testOptions(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	poison := map[engine.LoopKey][]byte{}
	for _, l := range clean.Loops {
		poison[engine.LoopKey{Fn: l.Fn, Index: l.Index}] = core.EncodeLoopRecord(l)
	}

	j := newMemJournal()
	injected, err := engine.Analyze(context.Background(), prog,
		engine.Options{Core: opt, Workers: 2, Journal: j, Resume: poison})
	if err != nil {
		t.Fatal(err)
	}
	if len(j.recs) != 0 {
		t.Fatalf("injection run journaled %d records", len(j.recs))
	}
	if got := injected.ResumedLoops(); got != 0 {
		t.Fatalf("injection run resumed %d loops", got)
	}
}
