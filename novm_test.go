package main

import (
	"os"
	"runtime"
	"testing"

	"dca/internal/bench"
	"dca/internal/vm"
)

// TestNoVMSuiteIdentity is the executor-identity smoke: the full NPB suite
// run on the bytecode VM and again forced onto the tree-walking interpreter
// (the -no-vm path) must render byte-identical Tables I/III/IV. It runs the
// tree-walker at full cost, so it is gated behind DCA_VM_IDENTITY=1 and
// wired into CI's bench job rather than the race legs (BenchmarkSuiteVM
// performs the same check when the bench leg runs; this test keeps the
// guarantee testable without the benchmark harness).
func TestNoVMSuiteIdentity(t *testing.T) {
	if os.Getenv("DCA_VM_IDENTITY") == "" {
		t.Skip("set DCA_VM_IDENTITY=1 to run the full-suite executor identity check")
	}
	workers := runtime.NumCPU()
	vmSuite, err := bench.RunSuiteWorkers(workers)
	if err != nil {
		t.Fatalf("vm suite: %v", err)
	}
	vm.SetEnabled(false)
	defer vm.SetEnabled(true)
	noSuite, err := bench.RunSuiteWorkers(workers)
	if err != nil {
		t.Fatalf("no-vm suite: %v", err)
	}
	if vmSuite.TableI() != noSuite.TableI() {
		t.Errorf("Table I diverges:\nvm:\n%s\nno-vm:\n%s", vmSuite.TableI(), noSuite.TableI())
	}
	if vmSuite.TableIII() != noSuite.TableIII() {
		t.Errorf("Table III diverges:\nvm:\n%s\nno-vm:\n%s", vmSuite.TableIII(), noSuite.TableIII())
	}
	if vmSuite.TableIV() != noSuite.TableIV() {
		t.Errorf("Table IV diverges:\nvm:\n%s\nno-vm:\n%s", vmSuite.TableIV(), noSuite.TableIV())
	}
}
