package core

import (
	"testing"

	"dca/internal/sandbox"
)

// TestCacheablePolicy: timeout- and panic-derived outcomes depend on
// wall-clock speed or analysis bugs and must never be stored; every
// deterministic outcome is storable.
func TestCacheablePolicy(t *testing.T) {
	cases := []struct {
		verdict  Verdict
		trapKind string
		want     bool
	}{
		{Commutative, "", true},
		{NonCommutative, "", true},
		{NonCommutative, sandbox.Fault.String(), true},
		{NotExecuted, "", true},
		{Failed, sandbox.Fault.String(), true},
		{Failed, "", true}, // golden-run divergence: deterministic
		{ResourceExhausted, sandbox.Budget.String(), true},
		{ResourceExhausted, sandbox.Timeout.String(), false},
		{Failed, sandbox.Panic.String(), false},
	}
	for _, c := range cases {
		res := &LoopResult{Verdict: c.verdict, TrapKind: c.trapKind}
		if got := cacheableVerdict(res); got != c.want {
			t.Errorf("cacheableVerdict(%s, trap %q) = %v, want %v", c.verdict, c.trapKind, got, c.want)
		}
	}
}

// TestCachedVerdictRoundTrip: every stored field survives encode/decode.
func TestCachedVerdictRoundTrip(t *testing.T) {
	src := &LoopResult{
		Verdict:         NonCommutative,
		Reason:          "schedule reverse changed live-outs of invocation 3",
		Invocations:     7,
		Iterations:      123456,
		SchedulesTested: 2,
		Retries:         1,
		TrapKind:        sandbox.Fault.String(),
	}
	data := encodeCachedVerdict(src)
	if data == nil {
		t.Fatal("encode returned nil")
	}
	var dst LoopResult
	if !decodeCachedVerdict(data, &dst) {
		t.Fatal("decode rejected a fresh record")
	}
	if dst.Verdict != src.Verdict || dst.Reason != src.Reason ||
		dst.Invocations != src.Invocations || dst.Iterations != src.Iterations ||
		dst.SchedulesTested != src.SchedulesTested || dst.Retries != src.Retries ||
		dst.TrapKind != src.TrapKind {
		t.Fatalf("round trip lost fields:\n  in:  %+v\n  out: %+v", *src, dst)
	}
}
