// Package bench is the experiment harness: it runs every analyzer over the
// workload suites and regenerates each table and figure of the paper's
// evaluation, rendered as paper-vs-measured rows.
package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"dca/internal/cfg"
	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/discopop"
	"dca/internal/engine"
	"dca/internal/icc"
	"dca/internal/idioms"
	"dca/internal/ir"
	"dca/internal/machine"
	"dca/internal/polly"
	"dca/internal/workloads/archetype"
	"dca/internal/workloads/npb"
)

// NPBResult bundles every analyzer's output for one generated benchmark.
type NPBResult struct {
	Spec *npb.Spec
	Prog *ir.Program

	DP   *depprof.Report
	DiP  *discopop.Report
	ID   *idioms.Report
	PO   *polly.Report
	IC   *icc.Report
	DCA  *core.Report
	Prof *depprof.Profile

	// Truth maps every loop to its archetype ground truth.
	Truth map[depprof.LoopKey]archetype.Truth

	// keys caches the program's loop enumeration: Counts, detectedKeys, and
	// Accuracy are called once per table render, and rebuilding the CFG and
	// loop forest for every call made rendering quadratic in the suite size.
	keys []depprof.LoopKey
}

// LoopKeys returns every loop of the program in deterministic order,
// computed once per result.
func (r *NPBResult) LoopKeys() []depprof.LoopKey {
	if r.keys == nil {
		r.keys = loopKeys(r.Prog)
	}
	return r.keys
}

// npbSchedules is the suite's DCA schedule set.
func npbSchedules() []dcart.Schedule {
	return []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}}
}

// RunNPB generates the benchmark and runs all six analyzers sequentially.
func RunNPB(spec *npb.Spec) (*NPBResult, error) {
	return RunNPBEngine(spec, nil)
}

// RunNPBEngine runs all six analyzers with replays drawn from pool
// (nil = sequential) and no verdict cache.
func RunNPBEngine(spec *npb.Spec, pool *engine.Pool) (*NPBResult, error) {
	return RunNPBOptions(spec, pool, nil)
}

// RunNPBOptions runs all six analyzers over the generated benchmark. The
// dependence profilers (depprof, discopop) and the machine model share ONE
// traced execution — the trace is policy-independent — instead of tracing
// the program once per baseline. DCA runs on the concurrent engine, its
// replays drawn from pool (nil = sequential) and its verdicts served from
// vc (nil = always computed).
func RunNPBOptions(spec *npb.Spec, pool *engine.Pool, vc core.VerdictCache) (*NPBResult, error) {
	return RunNPBConfig(spec, pool, vc, false)
}

// RunNPBConfig additionally controls the static commutativity prover:
// noProve forces every DCA verdict through the dynamic stage.
func RunNPBConfig(spec *npb.Spec, pool *engine.Pool, vc core.VerdictCache, noProve bool) (*NPBResult, error) {
	prog, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	r := &NPBResult{Spec: spec, Prog: prog}
	prof, err := depprof.Trace(prog, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: trace: %w", spec.Name, err)
	}
	r.Prof = prof
	r.DP = depprof.AnalyzeProfile(prog, prof, depprof.DefaultPolicy())
	r.DiP = discopop.AnalyzeProfile(prog, prof)
	r.ID = idioms.Analyze(prog)
	r.PO = polly.Analyze(prog)
	r.IC = icc.Analyze(prog)
	eopt := engine.Options{Core: core.Options{Schedules: npbSchedules(), Cache: vc, NoProve: noProve}, Workers: 1, Pool: pool}
	if r.DCA, err = engine.Analyze(context.Background(), prog, eopt); err != nil {
		return nil, fmt.Errorf("%s: dca: %w", spec.Name, err)
	}
	r.Truth = truthMap(spec, prog)
	r.LoopKeys() // warm the cache before results are shared across goroutines
	return r, nil
}

// truthMap reconstructs per-loop ground truth from the generator's group
// layout: function workN holds its group's instances' loops in order.
func truthMap(spec *npb.Spec, prog *ir.Program) map[depprof.LoopKey]archetype.Truth {
	m := map[depprof.LoopKey]archetype.Truth{}
	for gi, g := range spec.Groups() {
		fn := prog.Func(fmt.Sprintf("work%d", gi))
		if fn == nil {
			continue
		}
		_, loops := cfg.LoopsOf(fn)
		li := 0
		for _, inst := range g {
			for k := 0; k < inst.Kind.LoopsPerInstance(); k++ {
				if li < len(loops) {
					m[depprof.LoopKey{Fn: fn.Name, Index: loops[li].Index}] = inst.Kind.Truth()
					li++
				}
			}
		}
	}
	return m
}

// MeasuredRow is one benchmark's measured detection counts.
type MeasuredRow struct {
	Loops, DepProf, DiscoPoP, Idioms, Polly, ICC, Combined, DCA int
}

// Counts computes the measured counts across every loop of the program.
func (r *NPBResult) Counts() MeasuredRow {
	var row MeasuredRow
	keys := r.LoopKeys()
	row.Loops = len(keys)
	for _, key := range keys {
		idV := r.ID.Verdict(key.Fn, key.Index)
		poV := r.PO.Verdict(key.Fn, key.Index)
		icV := r.IC.Verdict(key.Fn, key.Index)
		id := idV != nil && idV.Parallel
		po := poV != nil && poV.Parallel
		ic := icV != nil && icV.Parallel
		if id {
			row.Idioms++
		}
		if po {
			row.Polly++
		}
		if ic {
			row.ICC++
		}
		if id || po || ic {
			row.Combined++
		}
		if v := r.DP.Verdict(key.Fn, key.Index); v != nil && v.Parallel {
			row.DepProf++
		}
		if res := r.DCA.Result(key.Fn, key.Index); res != nil && res.Verdict.IsParallelizable() {
			row.DCA++
		}
	}
	row.DiscoPoP = r.DiP.ParallelRegions()
	return row
}

// loopKeys enumerates every loop in the program deterministically.
func loopKeys(prog *ir.Program) []depprof.LoopKey {
	var keys []depprof.LoopKey
	for _, fn := range prog.Funcs {
		_, loops := cfg.LoopsOf(fn)
		for _, l := range loops {
			keys = append(keys, depprof.LoopKey{Fn: fn.Name, Index: l.Index})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fn != keys[j].Fn {
			return keys[i].Fn < keys[j].Fn
		}
		return keys[i].Index < keys[j].Index
	})
	return keys
}

// detectedKeys returns the loops a predicate accepts.
func (r *NPBResult) detectedKeys(pred func(key depprof.LoopKey) bool) []depprof.LoopKey {
	var out []depprof.LoopKey
	for _, key := range r.LoopKeys() {
		if pred(key) {
			out = append(out, key)
		}
	}
	return out
}

// DCAKeys returns the loops DCA found commutative.
func (r *NPBResult) DCAKeys() []depprof.LoopKey {
	return r.detectedKeys(func(key depprof.LoopKey) bool {
		res := r.DCA.Result(key.Fn, key.Index)
		return res != nil && res.Verdict.IsParallelizable()
	})
}

// CombinedStaticKeys returns the union of the three static detectors.
func (r *NPBResult) CombinedStaticKeys() []depprof.LoopKey {
	return r.detectedKeys(func(key depprof.LoopKey) bool {
		idV := r.ID.Verdict(key.Fn, key.Index)
		poV := r.PO.Verdict(key.Fn, key.Index)
		icV := r.IC.Verdict(key.Fn, key.Index)
		return idV != nil && idV.Parallel || poV != nil && poV.Parallel || icV != nil && icV.Parallel
	})
}

// Accuracy reports DCA's false positives/negatives against ground truth
// (Table IV's semi-manual analysis, here exact by construction).
func (r *NPBResult) Accuracy() (found, falsePos, falseNeg int) {
	for _, key := range r.LoopKeys() {
		res := r.DCA.Result(key.Fn, key.Index)
		if res == nil {
			continue
		}
		truth, ok := r.Truth[key]
		if !ok {
			continue
		}
		detected := res.Verdict.IsParallelizable()
		if detected {
			found++
			if truth == archetype.TruthSerial || truth == archetype.TruthIO {
				falsePos++
			}
		} else if truth == archetype.TruthParallel {
			falseNeg++
		}
	}
	return
}

// Coverage returns (DCA coverage, combined-static coverage) as fractions.
func (r *NPBResult) Coverage() (dca, static float64) {
	dcaSel := machine.Select(r.Prof, r.DCAKeys(), 0)
	statSel := machine.Select(r.Prof, r.CombinedStaticKeys(), 0)
	return machine.Coverage(r.Prof, dcaSel), machine.Coverage(r.Prof, statSel)
}

// Speedups computes the Fig. 6 series for the benchmark: each tool
// parallelizes the profitable subset of the loops it detected, on the
// modelled 72-core host.
type Speedups struct {
	DCA, Idioms, Polly, ICC     float64
	ExpertLoop, ExpertFull      float64 // Fig. 7 series
	CoverageDCA, CoverageStatic float64
}

// MinProfitableCoverage is the expert profitability filter: loops below
// this share of execution are not worth spawning threads for.
const MinProfitableCoverage = 0.0005

func (r *NPBResult) Speedups() Speedups {
	cfg := machine.Xeon72(r.Spec.BandwidthCap)
	speed := func(keys []depprof.LoopKey) float64 {
		sel := machine.SelectBest(cfg, r.Prof, keys, MinProfitableCoverage)
		return machine.Speedup(cfg, r.Prof, sel)
	}
	var s Speedups
	s.DCA = speed(r.DCAKeys())
	s.Idioms = speed(r.detectedKeys(func(k depprof.LoopKey) bool {
		v := r.ID.Verdict(k.Fn, k.Index)
		return v != nil && v.Parallel
	}))
	s.Polly = speed(r.detectedKeys(func(k depprof.LoopKey) bool {
		v := r.PO.Verdict(k.Fn, k.Index)
		return v != nil && v.Parallel
	}))
	s.ICC = speed(r.detectedKeys(func(k depprof.LoopKey) bool {
		v := r.IC.Verdict(k.Fn, k.Index)
		return v != nil && v.Parallel
	}))
	// Expert loop-level parallelization: the ground-truth parallel loops.
	s.ExpertLoop = speed(r.detectedKeys(func(k depprof.LoopKey) bool {
		return r.Truth[k] == archetype.TruthParallel
	}))
	// Expert whole-program parallelization: parallel sections spanning
	// loops, modelled by the spec's expert coverage/ceiling.
	cov, cap_ := r.Spec.ExpertFullCov, r.Spec.ExpertFullCap
	if cap_ > float64(cfg.Cores) {
		cap_ = float64(cfg.Cores)
	}
	if cap_ < 1 {
		cap_ = 1
	}
	s.ExpertFull = 1 / ((1 - cov) + cov/cap_)
	s.CoverageDCA, s.CoverageStatic = r.Coverage()
	return s
}

// GeoMean computes the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// renderTable renders aligned columns.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
