// Package ast defines the abstract syntax tree for MiniC, the small
// imperative language used as the DCA compilation substrate. MiniC has
// functions, structs, fixed scalar types, heap-allocated arrays and
// pointer-linked structures — enough surface to express both the regular
// array loops and the PLDS traversals studied in the paper.
package ast

import "dca/internal/source"

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// ---------------------------------------------------------------- Types

// Type is a syntactic type expression.
type Type interface {
	Node
	typeNode()
	String() string
}

// NamedType is a builtin scalar type or a struct name.
type NamedType struct {
	NamePos source.Pos
	Name    string // "int", "float", "bool", "string" or a struct name
}

func (t *NamedType) Pos() source.Pos { return t.NamePos }
func (t *NamedType) typeNode()       {}
func (t *NamedType) String() string  { return t.Name }

// PointerType is *Elem; Elem must name a struct.
type PointerType struct {
	StarPos source.Pos
	Elem    Type
}

func (t *PointerType) Pos() source.Pos { return t.StarPos }
func (t *PointerType) typeNode()       {}
func (t *PointerType) String() string  { return "*" + t.Elem.String() }

// ArrayType is []Elem, a heap-allocated array.
type ArrayType struct {
	BrackPos source.Pos
	Elem     Type
}

func (t *ArrayType) Pos() source.Pos { return t.BrackPos }
func (t *ArrayType) typeNode()       {}
func (t *ArrayType) String() string  { return "[]" + t.Elem.String() }

// ---------------------------------------------------------------- Decls

// Field is a name/type pair used for struct fields and parameters.
type Field struct {
	NamePos source.Pos
	Name    string
	Type    Type
}

// StructDecl declares a struct type.
type StructDecl struct {
	KwPos  source.Pos
	Name   string
	Fields []Field
}

func (d *StructDecl) Pos() source.Pos { return d.KwPos }

// FuncDecl declares a function. Ret is nil for void functions.
type FuncDecl struct {
	KwPos  source.Pos
	Name   string
	Params []Field
	Ret    Type
	Body   *BlockStmt
}

func (d *FuncDecl) Pos() source.Pos { return d.KwPos }

// Program is a parsed MiniC compilation unit.
type Program struct {
	File    *source.File
	Structs []*StructDecl
	Funcs   []*FuncDecl
}

// Struct returns the declaration of the named struct, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func returns the declaration of the named function, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------- Stmts

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is { stmts... }.
type BlockStmt struct {
	LBrace source.Pos
	Stmts  []Stmt
}

func (s *BlockStmt) Pos() source.Pos { return s.LBrace }
func (s *BlockStmt) stmtNode()       {}

// VarDecl is `var name T = init;` (init optional).
type VarDecl struct {
	KwPos source.Pos
	Name  string
	Type  Type
	Init  Expr // may be nil
}

func (s *VarDecl) Pos() source.Pos { return s.KwPos }
func (s *VarDecl) stmtNode()       {}

// AssignStmt is `lhs op rhs;` where op is =, +=, -=, *=, /= or %=.
type AssignStmt struct {
	LHS Expr
	Op  string // "=", "+=", ...
	RHS Expr
}

func (s *AssignStmt) Pos() source.Pos { return s.LHS.Pos() }
func (s *AssignStmt) stmtNode()       {}

// IncDecStmt is `lhs++;` or `lhs--;`.
type IncDecStmt struct {
	LHS Expr
	Dec bool
}

func (s *IncDecStmt) Pos() source.Pos { return s.LHS.Pos() }
func (s *IncDecStmt) stmtNode()       {}

// IfStmt is `if (cond) then else?`.
type IfStmt struct {
	KwPos source.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // *BlockStmt, *IfStmt or nil
}

func (s *IfStmt) Pos() source.Pos { return s.KwPos }
func (s *IfStmt) stmtNode()       {}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	KwPos source.Pos
	Cond  Expr
	Body  *BlockStmt
}

func (s *WhileStmt) Pos() source.Pos { return s.KwPos }
func (s *WhileStmt) stmtNode()       {}

// ForStmt is `for (init; cond; post) body`; any clause may be nil.
type ForStmt struct {
	KwPos source.Pos
	Init  Stmt
	Cond  Expr
	Post  Stmt
	Body  *BlockStmt
}

func (s *ForStmt) Pos() source.Pos { return s.KwPos }
func (s *ForStmt) stmtNode()       {}

// ReturnStmt is `return expr?;`.
type ReturnStmt struct {
	KwPos source.Pos
	Val   Expr // may be nil
}

func (s *ReturnStmt) Pos() source.Pos { return s.KwPos }
func (s *ReturnStmt) stmtNode()       {}

// BreakStmt is `break;`.
type BreakStmt struct{ KwPos source.Pos }

func (s *BreakStmt) Pos() source.Pos { return s.KwPos }
func (s *BreakStmt) stmtNode()       {}

// ContinueStmt is `continue;`.
type ContinueStmt struct{ KwPos source.Pos }

func (s *ContinueStmt) Pos() source.Pos { return s.KwPos }
func (s *ContinueStmt) stmtNode()       {}

// ExprStmt is an expression (a call) in statement position.
type ExprStmt struct{ X Expr }

func (s *ExprStmt) Pos() source.Pos { return s.X.Pos() }
func (s *ExprStmt) stmtNode()       {}

// PrintStmt is `print(args...);`, MiniC's sole I/O statement — it marks the
// loops DCA must exclude for side effects.
type PrintStmt struct {
	KwPos source.Pos
	Args  []Expr
}

func (s *PrintStmt) Pos() source.Pos { return s.KwPos }
func (s *PrintStmt) stmtNode()       {}

// ---------------------------------------------------------------- Exprs

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a variable reference.
type Ident struct {
	NamePos source.Pos
	Name    string
}

func (e *Ident) Pos() source.Pos { return e.NamePos }
func (e *Ident) exprNode()       {}

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Val    int64
}

func (e *IntLit) Pos() source.Pos { return e.LitPos }
func (e *IntLit) exprNode()       {}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos source.Pos
	Val    float64
}

func (e *FloatLit) Pos() source.Pos { return e.LitPos }
func (e *FloatLit) exprNode()       {}

// BoolLit is true or false.
type BoolLit struct {
	LitPos source.Pos
	Val    bool
}

func (e *BoolLit) Pos() source.Pos { return e.LitPos }
func (e *BoolLit) exprNode()       {}

// StringLit is a string literal.
type StringLit struct {
	LitPos source.Pos
	Val    string
}

func (e *StringLit) Pos() source.Pos { return e.LitPos }
func (e *StringLit) exprNode()       {}

// NilLit is the nil pointer literal.
type NilLit struct{ LitPos source.Pos }

func (e *NilLit) Pos() source.Pos { return e.LitPos }
func (e *NilLit) exprNode()       {}

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	X  Expr
	Op string
	Y  Expr
}

func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()       {}

// UnaryExpr is `op x` for op in {-, !}.
type UnaryExpr struct {
	OpPos source.Pos
	Op    string
	X     Expr
}

func (e *UnaryExpr) Pos() source.Pos { return e.OpPos }
func (e *UnaryExpr) exprNode()       {}

// CallExpr is `fn(args...)`; `len(x)` is a builtin call.
type CallExpr struct {
	Fn   *Ident
	Args []Expr
}

func (e *CallExpr) Pos() source.Pos { return e.Fn.Pos() }
func (e *CallExpr) exprNode()       {}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	X     Expr
	Index Expr
}

func (e *IndexExpr) Pos() source.Pos { return e.X.Pos() }
func (e *IndexExpr) exprNode()       {}

// FieldExpr is `x->name` (pointer field access).
type FieldExpr struct {
	X    Expr
	Name string
}

func (e *FieldExpr) Pos() source.Pos { return e.X.Pos() }
func (e *FieldExpr) exprNode()       {}

// NewExpr is `new T` (struct allocation) or `new [n]T` (array allocation).
type NewExpr struct {
	KwPos source.Pos
	Type  Type // element/struct type
	Len   Expr // non-nil for array allocation
}

func (e *NewExpr) Pos() source.Pos { return e.KwPos }
func (e *NewExpr) exprNode()       {}
