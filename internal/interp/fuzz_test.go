package interp_test

import (
	"io"
	"testing"

	"dca/internal/interp"
	"dca/internal/irbuild"
)

// FuzzCompileAndRun pushes arbitrary text through the entire pipeline —
// parse, check, lower, verify, execute under a step budget. Programs that
// fail any stage are skipped; programs that compile must execute without
// panicking (runtime errors are fine, they are values).
//
// The seed corpus lives in testdata/fuzz/FuzzCompileAndRun — one file per
// interesting program (runtime div-by-zero, nil list walk, budget pressure,
// int64 wraparound, ...). Those files run as ordinary subtests in plain
// `go test`; add new regression inputs there, not inline here.
func FuzzCompileAndRun(f *testing.F) {
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := irbuild.Compile("fuzz.mc", src)
		if err != nil {
			return
		}
		// Compiled programs must verify and run to completion, a runtime
		// error, or the budget — never a panic.
		_, _ = interp.Run(prog, interp.Config{Out: io.Discard, MaxSteps: 200_000})
	})
}
