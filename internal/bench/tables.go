package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/discopop"
	"dca/internal/engine"
	"dca/internal/icc"
	"dca/internal/idioms"
	"dca/internal/machine"
	"dca/internal/polly"
	"dca/internal/workloads/npb"
	"dca/internal/workloads/plds"
)

// Suite holds the results for the full NPB proxy suite.
type Suite struct {
	Results []*NPBResult
}

// RunSuite runs every analyzer over all ten NPB proxies, fanned out over
// GOMAXPROCS workers.
func RunSuite() (*Suite, error) {
	return RunSuiteWorkers(runtime.GOMAXPROCS(0))
}

// RunSuiteWorkers runs the suite with a bounded worker budget shared by
// everything: benchmark-level fan-out, per-loop analyses, and per-schedule
// replays all draw from one pool, so -j N bounds total concurrency rather
// than multiplying across levels. Results keep spec order; the verdicts are
// identical to the sequential path for any worker count.
func RunSuiteWorkers(workers int) (*Suite, error) {
	return RunSuiteOptions(workers, nil)
}

// RunSuiteOptions additionally shares a verdict cache across the whole
// suite: a warm cache serves every previously analyzed loop without
// re-running its dynamic stage.
func RunSuiteOptions(workers int, vc core.VerdictCache) (*Suite, error) {
	return RunSuiteConfig(workers, vc, false)
}

// RunSuiteConfig additionally controls the static commutativity prover:
// noProve forces every DCA verdict through the dynamic stage.
func RunSuiteConfig(workers int, vc core.VerdictCache, noProve bool) (*Suite, error) {
	if workers < 1 {
		workers = 1
	}
	specs := npb.Specs()
	pool := engine.NewPool(workers)
	results := make([]*NPBResult, len(specs))
	errs := make([]error, len(specs))
	// The spec-level gate bounds how many benchmarks run their traced
	// profiling and static analyses at once; the engine pool bounds the
	// dynamic-stage replays within and across benchmarks.
	gate := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec *npb.Spec) {
			defer wg.Done()
			gate <- struct{}{}
			defer func() { <-gate }()
			results[i], errs[i] = RunNPBConfig(spec, pool, vc, noProve)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Suite{Results: results}, nil
}

// Replays sums the dynamic-stage executions (golden runs plus schedule
// replays) across the suite's DCA reports — the work a warm cache avoids.
func (s *Suite) Replays() int {
	n := 0
	for _, r := range s.Results {
		n += r.DCA.Replays()
	}
	return n
}

// SkippedReplays sums the schedule replays the suite's DCA runs avoided,
// split by mechanism (sequential stopping rule vs footprint fast path).
func (s *Suite) SkippedReplays() (stop, footprint int) {
	for _, r := range s.Results {
		st, fp := r.DCA.SkippedReplays()
		stop += st
		footprint += fp
	}
	return stop, footprint
}

// ProvedLoops counts the loops across the suite whose verdicts the static
// commutativity prover decided without any execution.
func (s *Suite) ProvedLoops() int {
	n := 0
	for _, r := range s.Results {
		n += r.DCA.ProvedLoops()
	}
	return n
}

// SkippedProveRuns sums the dynamic-stage executions (golden run plus every
// schedule replay) that static proofs made unnecessary across the suite.
func (s *Suite) SkippedProveRuns() int {
	n := 0
	for _, r := range s.Results {
		n += r.DCA.SkippedProveRuns()
	}
	return n
}

// StageSeconds sums the per-loop DCA stage durations across the suite:
// static rewriting, golden runs, and schedule replays.
func (s *Suite) StageSeconds() (static, golden, replay float64) {
	for _, r := range s.Results {
		st, g, rp := r.DCA.StageSeconds()
		static += st
		golden += g
		replay += rp
	}
	return static, golden, replay
}

// CachedLoops counts the loops whose verdicts were served from the cache.
func (s *Suite) CachedLoops() int {
	n := 0
	for _, r := range s.Results {
		n += r.DCA.CachedLoops()
	}
	return n
}

func cell(paper int, measured int, reported bool) string {
	if !reported {
		return fmt.Sprintf("—/%d", measured)
	}
	return fmt.Sprintf("%d/%d", paper, measured)
}

// TableI renders the paper's Table I (dynamic techniques vs DCA) as
// paper/measured cells.
func (s *Suite) TableI() string {
	header := []string{"Bmk", "Loops", "DepProf", "DiscoPoP", "DCA"}
	var rows [][]string
	tot := MeasuredRow{}
	ptot := npb.PaperRow{}
	for _, r := range s.Results {
		row := r.Counts()
		p := r.Spec.Paper
		rows = append(rows, []string{
			r.Spec.Name,
			cell(p.Loops, row.Loops, true),
			cell(p.DepProf, row.DepProf, p.DPReported),
			cell(p.DiscoPoP, row.DiscoPoP, p.DPReported),
			cell(p.DCA, row.DCA, true),
		})
		tot.Loops += row.Loops
		tot.DepProf += row.DepProf
		tot.DiscoPoP += row.DiscoPoP
		tot.DCA += row.DCA
		ptot.Loops += p.Loops
		ptot.DepProf += p.DepProf
		ptot.DiscoPoP += p.DiscoPoP
		ptot.DCA += p.DCA
	}
	rows = append(rows, []string{"Total",
		cell(ptot.Loops, tot.Loops, true),
		cell(ptot.DepProf, tot.DepProf, true) + " (paper total over reported rows)",
		cell(ptot.DiscoPoP, tot.DiscoPoP, true),
		cell(ptot.DCA, tot.DCA, true),
	})
	return "Table I — NPB loops reported parallelizable (paper/measured)\n" + renderTable(header, rows)
}

// TableIII renders the static techniques vs DCA.
func (s *Suite) TableIII() string {
	header := []string{"Bmk", "Loops", "Idioms", "Polly", "ICC", "Combined", "DCA"}
	var rows [][]string
	tot := MeasuredRow{}
	ptot := npb.PaperRow{}
	for _, r := range s.Results {
		row := r.Counts()
		p := r.Spec.Paper
		rows = append(rows, []string{
			r.Spec.Name,
			cell(p.Loops, row.Loops, true),
			cell(p.Idioms, row.Idioms, true),
			cell(p.Polly, row.Polly, true),
			cell(p.ICC, row.ICC, true),
			cell(p.Combined, row.Combined, true),
			cell(p.DCA, row.DCA, true),
		})
		tot.Loops += row.Loops
		tot.Idioms += row.Idioms
		tot.Polly += row.Polly
		tot.ICC += row.ICC
		tot.Combined += row.Combined
		tot.DCA += row.DCA
		ptot.Loops += p.Loops
		ptot.Idioms += p.Idioms
		ptot.Polly += p.Polly
		ptot.ICC += p.ICC
		ptot.Combined += p.Combined
		ptot.DCA += p.DCA
	}
	rows = append(rows, []string{"Total",
		cell(ptot.Loops, tot.Loops, true),
		cell(ptot.Idioms, tot.Idioms, true),
		cell(ptot.Polly, tot.Polly, true),
		cell(ptot.ICC, tot.ICC, true),
		cell(ptot.Combined, tot.Combined, true),
		cell(ptot.DCA, tot.DCA, true),
	})
	return "Table III — NPB loops reported parallelizable by static tools (paper/measured)\n" + renderTable(header, rows)
}

// TableIV renders DCA accuracy and coverage.
func (s *Suite) TableIV() string {
	header := []string{"Bmk", "Loops", "Found", "FalsePos", "FalseNeg", "CovDCA%", "CovStatic%"}
	var rows [][]string
	for _, r := range s.Results {
		row := r.Counts()
		p := r.Spec.Paper
		found, fp, fn := r.Accuracy()
		cd, cs := r.Coverage()
		rows = append(rows, []string{
			r.Spec.Name,
			fmt.Sprintf("%d", row.Loops),
			fmt.Sprintf("%d/%d", p.DCA, found),
			fmt.Sprintf("0/%d", fp),
			fmt.Sprintf("0/%d", fn),
			fmt.Sprintf("%d/%.0f", p.CovDCA, cd*100),
			fmt.Sprintf("%d/%.0f", p.CovStatic, cs*100),
		})
	}
	return "Table IV — DCA precision and sequential coverage (paper/measured)\n" + renderTable(header, rows)
}

// Figure6 renders the NPB parallelization speedups.
func (s *Suite) Figure6() string {
	header := []string{"Bmk", "Idioms", "Polly", "ICC", "DCA"}
	var rows [][]string
	var gID, gPO, gIC, gDCA []float64
	var pID, pPO, pIC, pDCA []float64
	for _, r := range s.Results {
		sp := r.Speedups()
		p := r.Spec.Paper
		rows = append(rows, []string{
			r.Spec.Name,
			fmt.Sprintf("%.1f/%.2f", p.SpeedIdioms, sp.Idioms),
			fmt.Sprintf("%.1f/%.2f", p.SpeedPolly, sp.Polly),
			fmt.Sprintf("%.1f/%.2f", p.SpeedICC, sp.ICC),
			fmt.Sprintf("%.1f/%.2f", p.SpeedDCA, sp.DCA),
		})
		gID = append(gID, sp.Idioms)
		gPO = append(gPO, sp.Polly)
		gIC = append(gIC, sp.ICC)
		gDCA = append(gDCA, sp.DCA)
		pID = append(pID, p.SpeedIdioms)
		pPO = append(pPO, p.SpeedPolly)
		pIC = append(pIC, p.SpeedICC)
		pDCA = append(pDCA, p.SpeedDCA)
	}
	rows = append(rows, []string{"GMean",
		fmt.Sprintf("%.1f/%.2f", GeoMean(pID), GeoMean(gID)),
		fmt.Sprintf("%.1f/%.2f", GeoMean(pPO), GeoMean(gPO)),
		fmt.Sprintf("%.1f/%.2f", GeoMean(pIC), GeoMean(gIC)),
		fmt.Sprintf("%.1f/%.2f", GeoMean(pDCA), GeoMean(gDCA)),
	})
	return "Figure 6 — NPB speedup over sequential, 72-core model (paper/measured)\n" + renderTable(header, rows)
}

// Figure7 renders DCA against expert parallelization.
func (s *Suite) Figure7() string {
	header := []string{"Bmk", "DCA", "ExpertLoop", "ExpertFull"}
	var rows [][]string
	var gD, gL, gF, pD, pL, pF []float64
	for _, r := range s.Results {
		sp := r.Speedups()
		p := r.Spec.Paper
		rows = append(rows, []string{
			r.Spec.Name,
			fmt.Sprintf("%.1f/%.2f", p.SpeedDCA, sp.DCA),
			fmt.Sprintf("%.1f/%.2f", p.SpeedExpertLoop, sp.ExpertLoop),
			fmt.Sprintf("%.1f/%.2f", p.SpeedExpertFull, sp.ExpertFull),
		})
		gD, gL, gF = append(gD, sp.DCA), append(gL, sp.ExpertLoop), append(gF, sp.ExpertFull)
		pD, pL, pF = append(pD, p.SpeedDCA), append(pL, p.SpeedExpertLoop), append(pF, p.SpeedExpertFull)
	}
	rows = append(rows, []string{"GMean",
		fmt.Sprintf("%.1f/%.2f", GeoMean(pD), GeoMean(gD)),
		fmt.Sprintf("%.1f/%.2f", GeoMean(pL), GeoMean(gL)),
		fmt.Sprintf("%.1f/%.2f", GeoMean(pF), GeoMean(gF)),
	})
	return "Figure 7 — DCA vs expert parallelization, 72-core model (paper/measured)\n" + renderTable(header, rows)
}

// PLDSResult is the Table II / Figure 5 outcome for one PLDS workload.
type PLDSResult struct {
	Program  *plds.Program
	DCAFound bool
	DCAWhy   string
	// BaselinesDetecting lists any baseline that (incorrectly, per the
	// paper's claim) reported the key loop parallel.
	BaselinesDetecting []string
	CoverageMeasured   float64
	Speedup            float64 // machine-model speedup (Fig. 5 programs)
}

// RunPLDS analyzes one PLDS workload end to end.
func RunPLDS(p *plds.Program) (*PLDSResult, error) {
	prog, err := p.Compile()
	if err != nil {
		return nil, err
	}
	res := &PLDSResult{Program: p}
	dcaRes, err := core.AnalyzeLoop(prog, p.KeyFn, p.KeyLoop, core.Options{
		Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}, dcart.Random{Seed: 2}},
	})
	if err != nil {
		return nil, fmt.Errorf("%s: dca: %w", p.Name, err)
	}
	res.DCAFound = dcaRes.Verdict.IsParallelizable()
	res.DCAWhy = dcaRes.Reason

	// One traced execution serves both dependence profilers.
	prof, err := depprof.Trace(prog, 0)
	if err != nil {
		return nil, err
	}
	dp := depprof.AnalyzeProfile(prog, prof, depprof.DefaultPolicy())
	if v := dp.Verdict(p.KeyFn, p.KeyLoop); v != nil && v.Parallel {
		res.BaselinesDetecting = append(res.BaselinesDetecting, "DepProf")
	}
	dpp := discopop.AnalyzeProfile(prog, prof)
	if v := dpp.Verdict(p.KeyFn, p.KeyLoop); v != nil && v.Parallel {
		res.BaselinesDetecting = append(res.BaselinesDetecting, "DiscoPoP")
	}
	if v := idioms.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v != nil && v.Parallel {
		res.BaselinesDetecting = append(res.BaselinesDetecting, "Idioms")
	}
	if v := polly.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v != nil && v.Parallel {
		res.BaselinesDetecting = append(res.BaselinesDetecting, "Polly")
	}
	if v := icc.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v != nil && v.Parallel {
		res.BaselinesDetecting = append(res.BaselinesDetecting, "ICC")
	}

	key := depprof.LoopKey{Fn: p.KeyFn, Index: p.KeyLoop}
	res.CoverageMeasured = machine.Coverage(dp.Profile, []depprof.LoopKey{key})
	if p.Fig5 {
		// DCA parallelization of the whole program: every commutative loop
		// is a candidate, the profitability filter and outermost selection
		// pick the parallel regions (as for the NPB suite).
		full, err := engine.Analyze(context.Background(), prog, engine.Options{Core: core.Options{
			Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}},
		}})
		if err != nil {
			return nil, fmt.Errorf("%s: dca full: %w", p.Name, err)
		}
		var keys []depprof.LoopKey
		for _, lr := range full.Loops {
			if lr.Verdict.IsParallelizable() {
				keys = append(keys, depprof.LoopKey{Fn: lr.Fn, Index: lr.Index})
			}
		}
		cfg := machine.Xeon72(p.Cap)
		sel := machine.SelectBest(cfg, dp.Profile, keys, MinProfitableCoverage)
		res.Speedup = machine.Speedup(cfg, dp.Profile, sel)
	}
	return res, nil
}

// TableII renders the PLDS detection table.
func TableII(results []*PLDSResult) string {
	header := []string{"Benchmark", "Origin", "Function", "Cov% p/m", "Loop", "Overall", "Technique", "DCA", "Baselines"}
	var rows [][]string
	for _, r := range results {
		dca := "commutative"
		if !r.DCAFound {
			dca = "MISSED(" + r.DCAWhy + ")"
		}
		base := "all fail"
		if len(r.BaselinesDetecting) > 0 {
			base = "DETECTED BY " + strings.Join(r.BaselinesDetecting, ",")
		}
		p := r.Program
		rows = append(rows, []string{
			p.Name, p.Origin, p.Function,
			fmt.Sprintf("%d/%.0f", p.CoveragePct, r.CoverageMeasured*100),
			p.PotentialLoop, p.PotentialOverall, p.Technique, dca, base,
		})
	}
	return "Table II — PLDS loops detected by DCA; baselines fail (paper/measured)\n" + renderTable(header, rows)
}

// Figure5 renders the PLDS parallelization speedups.
func Figure5(results []*PLDSResult) string {
	header := []string{"Benchmark", "Paper", "Measured"}
	var rows [][]string
	for _, r := range results {
		if !r.Program.Fig5 {
			continue
		}
		rows = append(rows, []string{
			r.Program.Name,
			fmt.Sprintf("%.1f", r.Program.Fig5Target),
			fmt.Sprintf("%.2f", r.Speedup),
		})
	}
	return "Figure 5 — PLDS speedup over sequential, 72-core model (paper/measured)\n" + renderTable(header, rows)
}
