package interp_test

import (
	"io"
	"testing"

	"dca/internal/interp"
	"dca/internal/irbuild"
)

// FuzzCompileAndRun pushes arbitrary text through the entire pipeline —
// parse, check, lower, verify, execute under a step budget. Programs that
// fail any stage are skipped; programs that compile must execute without
// panicking (runtime errors are fine, they are values).
func FuzzCompileAndRun(f *testing.F) {
	seeds := []string{
		"func main() { print(1 + 2 * 3); }",
		"func main() { var a []int = new [3]int; a[1] = 7; print(a[1] / a[0]); }", // div by zero at runtime
		"struct N { v int; next *N; } func main() { var p *N = nil; while (p != nil) { p = p->next; } print(0); }",
		"func f(n int) int { if (n < 2) { return n; } return f(n-1) + f(n-2); } func main() { print(f(10)); }",
		"func main() { var i int = 0; while (i < 1000000) { i++; } print(i); }", // budget pressure
		"func main() { var a []int = new [0]int; print(len(a)); }",
		"func main() { var x int = 9223372036854775807; print(x + 1); }", // wraparound
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := irbuild.Compile("fuzz.mc", src)
		if err != nil {
			return
		}
		// Compiled programs must verify and run to completion, a runtime
		// error, or the budget — never a panic.
		_, _ = interp.Run(prog, interp.Config{Out: io.Discard, MaxSteps: 200_000})
	})
}
