package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// killResumeSrc has four quick loops followed by one slow nested loop, so a
// SIGKILL landing after the first journal records arrive is guaranteed to
// interrupt the suite before the slow loop's verdict is journaled.
const killResumeSrc = `
func fill(a []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] = i * 7; }
}
func main() {
	var a []int = new [64]int;
	fill(a, 64);
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s = s + a[i]; }
	var p int = 1;
	for (var i int = 1; i < 32; i++) { p = (p * i) % 9973; }
	var b []int = new [64]int;
	for (var i int = 0; i < 64; i++) { b[i] = a[63 - i]; }
	var slow int = 0;
	for (var i int = 0; i < 700; i++) {
		for (var j int = 0; j < 700; j++) { slow = slow + (i ^ j); }
	}
	print(s); print(p); print(b[0]); print(slow);
}`

// TestKillResumeHelper is not a test: it is the child process body for
// TestKillResume, re-executed from the test binary. It runs cmdAnalyze with
// the argument list from the environment and exits before the
// testing framework can print anything to stdout (the parent compares the
// report bytes on stdout).
func TestKillResumeHelper(t *testing.T) {
	raw := os.Getenv("DCA_KILL_RESUME_ARGS")
	if raw == "" {
		t.Skip("helper process body; run via TestKillResume")
	}
	if err := cmdAnalyze(strings.Split(raw, "\x1f")); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runAnalyzeChild(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillResumeHelper")
	cmd.Env = append(os.Environ(), "DCA_KILL_RESUME_ARGS="+strings.Join(args, "\x1f"))
	return cmd
}

// countRecords returns how many complete journal lines past the header have
// reached the file.
func countRecords(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := bytes.Count(data, []byte("\n")) - 1 // header line
	if n < 0 {
		return 0
	}
	return n
}

// TestKillResume is the end-to-end durability contract: SIGKILL a journaled
// analysis mid-suite, rerun with -resume, and the resumed report is
// byte-identical to an uninterrupted run — with the already-verdicted loops
// skipped, not recomputed.
func TestKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(killResumeSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "run.wal")
	// -j 1 completes loops in order; -journal-sync 1 makes every record
	// durable the moment it is appended, so the kill can land anywhere.
	args := []string{"-j", "1", "-journal-sync", "1", "-journal", wal, src}

	victim := runAnalyzeChild(t, args...)
	victim.Stdout, victim.Stderr = new(bytes.Buffer), new(bytes.Buffer)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for at least two durable records, then kill. The slow fifth loop
	// keeps the child busy for far longer than the poll granularity, so the
	// suite cannot have finished.
	deadline := time.Now().Add(30 * time.Second)
	for countRecords(wal) < 2 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			t.Fatalf("no journal records after 30s; child stderr: %s", victim.Stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait() // expected: killed
	killed := countRecords(wal)
	if killed < 2 {
		t.Fatalf("journal lost durable records after SIGKILL: %d left", killed)
	}

	// Resume: must skip the journaled loops and finish the rest.
	var resumedOut, resumedErr bytes.Buffer
	resumed := runAnalyzeChild(t, append([]string{"-resume"}, args...)...)
	resumed.Stdout, resumed.Stderr = &resumedOut, &resumedErr
	if err := resumed.Run(); err != nil {
		t.Fatalf("resume run failed: %v\nstderr: %s", err, resumedErr.String())
	}
	m := regexp.MustCompile(`resumed (\d+) loops, appended (\d+) records`).
		FindStringSubmatch(resumedErr.String())
	if m == nil {
		t.Fatalf("resume summary missing from stderr: %s", resumedErr.String())
	}
	skipped, _ := strconv.Atoi(m[1])
	appended, _ := strconv.Atoi(m[2])
	if skipped < 2 {
		t.Errorf("resume skipped %d loops, want >= 2 (the pre-kill records)", skipped)
	}
	if appended < 1 {
		t.Errorf("resume appended %d records, want >= 1 (the kill landed mid-suite)", appended)
	}

	// An uninterrupted run of the same program is the reference.
	var freshOut, freshErr bytes.Buffer
	fresh := runAnalyzeChild(t, "-j", "1", src)
	fresh.Stdout, fresh.Stderr = &freshOut, &freshErr
	if err := fresh.Run(); err != nil {
		t.Fatalf("fresh run failed: %v\nstderr: %s", err, freshErr.String())
	}
	if !bytes.Equal(resumedOut.Bytes(), freshOut.Bytes()) {
		t.Errorf("resumed report differs from uninterrupted run:\n-- resumed --\n%s\n-- fresh --\n%s",
			resumedOut.String(), freshOut.String())
	}
}
