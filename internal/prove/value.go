package prove

import "dca/internal/ir"

// valueDepth bounds the single-def chain resolution in resolve.
const valueDepth = 16

// vnode is a normalized value expression: constants and unresolvable locals
// are leaves, everything else is an operation over resolved children.
type vnode struct {
	op   string // "const", "leaf", "load", "bin:<op>", "un:<op>"
	cval ir.Value
	leaf *ir.Local
	kids []*vnode
}

// resolve normalizes an operand occurring in instruction at into a value
// tree. A local with exactly one in-loop definition that dominates the
// occurrence is inlined through moves, arithmetic, and plain loads; any
// other local stays a leaf. Leaf locals and load base locals are collected
// into leaves/bases for the stability checks in sameValue. Returns nil when
// the operand cannot be normalized (field access, non-local load base,
// depth exhausted).
func (p *prover) resolve(o ir.Operand, at ir.Instr, depth int, leaves, bases map[*ir.Local]bool) *vnode {
	if depth > valueDepth {
		return nil
	}
	if o.Local == nil {
		return &vnode{op: "const", cval: o.Const}
	}
	l := o.Local
	if defs := p.defs[l]; len(defs) == 1 && p.dominatesInstr(defs[0], at) {
		switch d := defs[0].(type) {
		case *ir.Mov:
			return p.resolve(d.Src, d, depth+1, leaves, bases)
		case *ir.UnOp:
			x := p.resolve(d.X, d, depth+1, leaves, bases)
			if x == nil {
				return nil
			}
			return &vnode{op: "un:" + d.Op.String(), kids: []*vnode{x}}
		case *ir.BinOp:
			x := p.resolve(d.X, d, depth+1, leaves, bases)
			y := p.resolve(d.Y, d, depth+1, leaves, bases)
			if x == nil || y == nil {
				return nil
			}
			return &vnode{op: "bin:" + d.Op.String(), kids: []*vnode{x, y}}
		case *ir.Load:
			if d.FieldName != "" {
				return nil
			}
			base := p.resolve(d.Base, d, depth+1, leaves, bases)
			idx := p.resolve(d.Index, d, depth+1, leaves, bases)
			if base == nil || idx == nil || base.leaf == nil {
				return nil
			}
			bases[base.leaf] = true
			return &vnode{op: "load", kids: []*vnode{base, idx}}
		}
	}
	leaves[l] = true
	return &vnode{op: "leaf", leaf: l}
}

func equalVnode(a, b *vnode) bool {
	if a.op != b.op || len(a.kids) != len(b.kids) {
		return false
	}
	switch a.op {
	case "const":
		return a.cval.Equal(b.cval)
	case "leaf":
		return a.leaf == b.leaf
	}
	for i := range a.kids {
		if !equalVnode(a.kids[i], b.kids[i]) {
			return false
		}
	}
	return true
}

// sameValue reports whether operand a (an operand of instruction atA) and
// operand b (an operand of atB) are guaranteed to evaluate to the same
// value within any single iteration. Both are normalized with resolve and
// compared structurally; the comparison is then grounded by two stability
// checks:
//
//   - every leaf local's in-loop definitions lie only in blocks from which
//     neither occurrence is reachable within one iteration (e.g. the latch
//     increment of the IV) — so no redefinition can execute between the two
//     evaluations;
//   - every load base is unaliased by any in-loop write access, so the two
//     loads observe the same memory.
func (p *prover) sameValue(a ir.Operand, atA ir.Instr, b ir.Operand, atB ir.Instr) bool {
	leaves := map[*ir.Local]bool{}
	bases := map[*ir.Local]bool{}
	na := p.resolve(a, atA, 0, leaves, bases)
	nb := p.resolve(b, atB, 0, leaves, bases)
	if na == nil || nb == nil || !equalVnode(na, nb) {
		return false
	}
	ba, bb := p.instrBlock[atA], p.instrBlock[atB]
	for l := range leaves {
		for _, d := range p.defs[l] {
			db := p.instrBlock[d]
			if db == nil || p.reachesInIter(db, ba) || p.reachesInIter(db, bb) {
				return false
			}
		}
	}
	if len(bases) > 0 {
		for _, acc := range p.env.Accesses(p.loop) {
			if !acc.IsWrite {
				continue
			}
			for base := range bases {
				if p.mayAliasLocals(acc.Base, base) {
					return false
				}
			}
		}
	}
	return true
}

// dominatesInstr reports whether the definition instruction executes before
// the use instruction on every intra-iteration path: its block strictly
// dominates the use's block, or both share a block and the definition comes
// first.
func (p *prover) dominatesInstr(def, use ir.Instr) bool {
	db, ub := p.instrBlock[def], p.instrBlock[use]
	if db == nil || ub == nil {
		return false
	}
	if db == ub {
		return p.instrIndex[def] < p.instrIndex[use]
	}
	return p.env.G.Dominates(db, ub)
}

// reachesInIter reports whether dst is reachable from src along loop-body
// edges without re-entering the header (i.e. within one iteration).
// src == dst counts as reachable.
func (p *prover) reachesInIter(src, dst *ir.Block) bool {
	if src == dst {
		return true
	}
	seen := map[*ir.Block]bool{src: true}
	work := []*ir.Block{src}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		var succs []*ir.Block
		switch t := b.Term.(type) {
		case *ir.If:
			succs = []*ir.Block{t.Then, t.Else}
		case *ir.Goto:
			succs = []*ir.Block{t.Target}
		}
		for _, s := range succs {
			if s == dst {
				return true
			}
			if !p.loop.Blocks[s] || s == p.loop.Header || seen[s] {
				continue
			}
			seen[s] = true
			work = append(work, s)
		}
	}
	return false
}

// mayAliasLocals is the conservative points-to alias test polly uses for
// access pairs, over bare locals.
func (p *prover) mayAliasLocals(a, b *ir.Local) bool {
	if a == nil || b == nil || a == b {
		return true
	}
	for _, s := range p.pa.PointsTo(a) {
		for _, t := range p.pa.PointsTo(b) {
			if s == t {
				return true
			}
		}
	}
	return false
}
