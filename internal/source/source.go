// Package source provides positions, spans and diagnostics for the MiniC
// frontend. Every token and AST node carries a Pos so that analyses and the
// DCA report can point back at the loop in the original program text.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position in a source file, expressed as line and column
// (both 1-based) plus a byte offset (0-based).
type Pos struct {
	Line   int
	Col    int
	Offset int
}

// NoPos is the zero position, used for synthesized nodes.
var NoPos = Pos{}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p occurs strictly before q in the file.
func (p Pos) Before(q Pos) bool { return p.Offset < q.Offset }

// Span is a half-open region [Start, End) of a file.
type Span struct {
	Start Pos
	End   Pos
}

func (s Span) String() string {
	return fmt.Sprintf("%s-%s", s.Start, s.End)
}

// File associates a name with source text and precomputes line offsets so
// byte offsets can be mapped back to line/column pairs.
type File struct {
	Name  string
	Text  string
	lines []int // byte offset of the start of each line
}

// NewFile builds a File for the given name and contents.
func NewFile(name, text string) *File {
	f := &File{Name: name, Text: text}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// PosFor converts a byte offset into a full Pos.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Text) {
		offset = len(f.Text)
	}
	line := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > offset }) - 1
	return Pos{Line: line + 1, Col: offset - f.lines[line] + 1, Offset: offset}
}

// LineText returns the text of the given 1-based line, without the newline.
func (f *File) LineText(line int) string {
	if line < 1 || line > len(f.lines) {
		return ""
	}
	start := f.lines[line-1]
	end := len(f.Text)
	if line < len(f.lines) {
		end = f.lines[line] - 1
	}
	return f.Text[start:end]
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }

// Diagnostic is a single error or warning tied to a source position.
type Diagnostic struct {
	File string
	Pos  Pos
	Msg  string
}

func (d Diagnostic) Error() string {
	if d.File == "" {
		return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
	}
	return fmt.Sprintf("%s:%s: %s", d.File, d.Pos, d.Msg)
}

// DiagList collects diagnostics; it implements error when non-empty.
type DiagList struct {
	Diags []Diagnostic
}

// Add appends a diagnostic.
func (l *DiagList) Add(file string, pos Pos, format string, args ...any) {
	l.Diags = append(l.Diags, Diagnostic{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Empty reports whether no diagnostics have been recorded.
func (l *DiagList) Empty() bool { return len(l.Diags) == 0 }

// Err returns the list as an error, or nil when empty.
func (l *DiagList) Err() error {
	if l.Empty() {
		return nil
	}
	return l
}

func (l *DiagList) Error() string {
	var b strings.Builder
	for i, d := range l.Diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}

// Sort orders diagnostics by position.
func (l *DiagList) Sort() {
	sort.SliceStable(l.Diags, func(i, j int) bool {
		return l.Diags[i].Pos.Offset < l.Diags[j].Pos.Offset
	})
}
