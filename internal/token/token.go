// Package token defines the lexical tokens of the MiniC language, the small
// C-like imperative language used as the compilation substrate for DCA.
package token

import "dca/internal/source"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123
	FLOAT  // 1.5
	STRING // "abc"

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	ASSIGN     // =
	PLUSEQ     // +=
	MINUSEQ    // -=
	STAREQ     // *=
	SLASHEQ    // /=
	PERCENTEQ  // %=
	PLUSPLUS   // ++
	MINUSMINUS // --

	EQ  // ==
	NEQ // !=
	LT  // <
	GT  // >
	LEQ // <=
	GEQ // >=

	ANDAND // &&
	OROR   // ||
	NOT    // !

	AMP   // &
	PIPE  // |
	CARET // ^
	SHL   // <<
	SHR   // >>

	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	DOT       // .
	ARROW     // ->
	COLON     // :

	// Keywords.
	KwFunc
	KwStruct
	KwVar
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwNew
	KwNil
	KwTrue
	KwFalse
	KwPrint
	KwInt
	KwFloat
	KwBool
	KwString
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", STRING: "STRING",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PERCENTEQ: "%=", PLUSPLUS: "++", MINUSMINUS: "--",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";",
	DOT: ".", ARROW: "->", COLON: ":",
	KwFunc: "func", KwStruct: "struct", KwVar: "var", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwNew: "new", KwNil: "nil",
	KwTrue: "true", KwFalse: "false", KwPrint: "print",
	KwInt: "int", KwFloat: "float", KwBool: "bool", KwString: "string",
}

func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "UNKNOWN"
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"func": KwFunc, "struct": KwStruct, "var": KwVar, "if": KwIf,
	"else": KwElse, "while": KwWhile, "for": KwFor, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "new": KwNew, "nil": KwNil,
	"true": KwTrue, "false": KwFalse, "print": KwPrint,
	"int": KwInt, "float": KwFloat, "bool": KwBool, "string": KwString,
}

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  source.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, STRING:
		return t.Kind.String() + "(" + t.Text + ")"
	}
	return t.Kind.String()
}

// IsAssignOp reports whether the kind is one of the compound or plain
// assignment operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PERCENTEQ:
		return true
	}
	return false
}

// IsTypeKeyword reports whether the kind names a builtin scalar type.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case KwInt, KwFloat, KwBool, KwString:
		return true
	}
	return false
}
