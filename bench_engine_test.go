package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dca/internal/bench"
	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/vm"
)

// benchFile is the machine-readable benchmark record. Both suite benchmarks
// write into it, so updates go through mergeBenchFile rather than a blind
// overwrite.
const benchFile = "BENCH_analysis.json"

// AnalysisBench is the parallel-engine benchmark record, merged into
// BENCH_analysis.json by BenchmarkSuiteAnalysis.
type AnalysisBench struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	NumCPU            int     `json:"num_cpu"`
	WorkersSequential int     `json:"workers_sequential"`
	WorkersParallel   int     `json:"workers_parallel"`
	SuiteSecondsSeq   float64 `json:"suite_seconds_sequential"`
	SuiteSecondsPar   float64 `json:"suite_seconds_parallel"`
	// Speedup is omitted when the parallel leg cannot actually run in
	// parallel (single-CPU host): a ratio of two sequential runs is noise,
	// not a speedup.
	Speedup           float64 `json:"speedup,omitempty"`
	AllocBytesSeq     uint64  `json:"alloc_bytes_sequential"`
	AllocBytesPar     uint64  `json:"alloc_bytes_parallel"`
	VerdictsIdentical bool    `json:"verdicts_identical"`
}

// CacheBench is the cold-vs-warm verdict-cache benchmark record, merged
// into BENCH_analysis.json under "cache" by BenchmarkSuiteCache.
type CacheBench struct {
	Workers          int     `json:"workers"`
	SuiteSecondsCold float64 `json:"suite_seconds_cold"`
	SuiteSecondsWarm float64 `json:"suite_seconds_warm"`
	ReplaysCold      int     `json:"replays_cold"`
	ReplaysWarm      int     `json:"replays_warm"`
	// ReplaySkipRate is the share of dynamic-stage executions the warm run
	// avoided: 1 - warm/cold.
	ReplaySkipRate  float64 `json:"replay_skip_rate"`
	CachedLoopsWarm int     `json:"cached_loops_warm"`
	TablesIdentical bool    `json:"tables_identical"`
	MemHits         uint64  `json:"cache_mem_hits"`
	Misses          uint64  `json:"cache_misses"`
}

// VMBench is the executor benchmark record, merged into BENCH_analysis.json
// under "vm" by BenchmarkSuiteVM: the cold suite on the bytecode VM versus
// the tree-walking interpreter, plus where the VM run's time went and how
// many replays the reducers skipped.
type VMBench struct {
	Workers          int     `json:"workers"`
	SuiteSecondsVM   float64 `json:"suite_seconds_vm"`
	SuiteSecondsNoVM float64 `json:"suite_seconds_no_vm"`
	SpeedupVsInterp  float64 `json:"speedup_vs_interp"`
	// Stage split of the VM run's DCA time (seconds).
	SecondsStatic float64 `json:"seconds_static"`
	SecondsGolden float64 `json:"seconds_golden"`
	SecondsReplay float64 `json:"seconds_replay"`
	// Replays skipped by the sequential stopping rule and the footprint
	// fast path during the VM run.
	SkippedStop      int  `json:"skipped_stop"`
	SkippedFootprint int  `json:"skipped_footprint"`
	ReplaysVM        int  `json:"replays_vm"`
	ReplaysNoVM      int  `json:"replays_no_vm"`
	TablesIdentical  bool `json:"tables_identical"`
}

// ProveBench is the static-prover benchmark record, merged into
// BENCH_analysis.json under "prove" by BenchmarkSuiteProve: the cold NPB
// suite with the prover on versus forced through the dynamic stage, the
// share of loops the prover decided, and the executions its proofs skipped.
type ProveBench struct {
	Workers             int     `json:"workers"`
	SuiteSecondsProve   float64 `json:"suite_seconds_prove"`
	SuiteSecondsNoProve float64 `json:"suite_seconds_no_prove"`
	// ProvedLoops / TotalLoops: how many suite loops the prover decided.
	ProvedLoops      int     `json:"proved_loops"`
	TotalLoops       int     `json:"total_loops"`
	StaticProvedRate float64 `json:"static_proved_rate"`
	// Replay delta: dynamic-stage executions with and without the prover;
	// SkippedProveRuns is the schedule-replay count the proofs made
	// unnecessary as accounted per proved loop (golden runs still execute
	// as each proved loop's coverage witness).
	ReplaysProve     int  `json:"replays_prove"`
	ReplaysNoProve   int  `json:"replays_no_prove"`
	SkippedProveRuns int  `json:"skipped_prove_runs"`
	TablesIdentical  bool `json:"tables_identical"`
}

// mergeBenchFile read-modify-writes update's top-level keys into the
// benchmark record, preserving keys written by the other benchmark. Keys in
// remove are deleted — omitempty fields would otherwise leave a stale value
// from an earlier run in place.
func mergeBenchFile(b *testing.B, update any, remove ...string) {
	b.Helper()
	merged := map[string]json.RawMessage{}
	if data, err := os.ReadFile(benchFile); err == nil {
		// A corrupt or legacy record is simply replaced.
		json.Unmarshal(data, &merged)
	}
	data, err := json.Marshal(update)
	if err != nil {
		b.Fatal(err)
	}
	var upd map[string]json.RawMessage
	if err := json.Unmarshal(data, &upd); err != nil {
		b.Fatal(err)
	}
	for k, v := range upd {
		merged[k] = v
	}
	for _, k := range remove {
		delete(merged, k)
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(benchFile, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// withAllCPUs raises GOMAXPROCS to the machine's CPU count for the duration
// of fn, restoring it afterwards. CI benchmark runners sometimes launch the
// process with GOMAXPROCS=1; the parallel leg must still use the hardware.
func withAllCPUs(fn func()) {
	prev := runtime.GOMAXPROCS(0)
	if cpus := runtime.NumCPU(); cpus > prev {
		runtime.GOMAXPROCS(cpus)
		defer runtime.GOMAXPROCS(prev)
	}
	fn()
}

// timedSuite runs the full NPB suite at the given worker count against vc
// (nil = no cache), returning the suite, wall-clock, and heap bytes
// allocated during the run.
func timedSuite(b *testing.B, workers int, vc core.VerdictCache) (*bench.Suite, time.Duration, uint64) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	s, err := bench.RunSuiteOptions(workers, vc)
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		b.Fatal(err)
	}
	return s, dur, after.TotalAlloc - before.TotalAlloc
}

// BenchmarkSuiteAnalysis measures the analysis engine's suite-level
// speedup: the full NPB run at -j 1 versus -j NumCPU, the parallel leg run
// with GOMAXPROCS raised to the hardware CPU count. It asserts the two
// produce byte-identical Tables I/III/IV and merges the measurement into
// BENCH_analysis.json (run via `go test -run=^$ -bench=SuiteAnalysis
// -benchtime=1x .`). The ≥3x speedup floor is asserted only on hosts with
// at least 4 CPUs; a single-CPU host records no speedup at all.
func BenchmarkSuiteAnalysis(b *testing.B) {
	cpus := runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		seq, seqDur, seqAlloc := timedSuite(b, 1, nil)
		var par *bench.Suite
		var parDur time.Duration
		var parAlloc uint64
		withAllCPUs(func() {
			par, parDur, parAlloc = timedSuite(b, cpus, nil)
		})

		identical := seq.TableI() == par.TableI() &&
			seq.TableIII() == par.TableIII() &&
			seq.TableIV() == par.TableIV()
		if !identical {
			b.Fatalf("parallel suite diverged from sequential:\nseq TableI:\n%s\npar TableI:\n%s",
				seq.TableI(), par.TableI())
		}
		rec := AnalysisBench{
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			NumCPU:            cpus,
			WorkersSequential: 1,
			WorkersParallel:   cpus,
			SuiteSecondsSeq:   seqDur.Seconds(),
			SuiteSecondsPar:   parDur.Seconds(),
			AllocBytesSeq:     seqAlloc,
			AllocBytesPar:     parAlloc,
			VerdictsIdentical: identical,
		}
		var stale []string
		if cpus > 1 {
			rec.Speedup = seqDur.Seconds() / parDur.Seconds()
		} else {
			stale = append(stale, "speedup")
		}
		mergeBenchFile(b, rec, stale...)
		fmt.Fprintf(os.Stderr, "suite: seq %.2fs, par(-j %d) %.2fs, speedup %.2fx\n",
			rec.SuiteSecondsSeq, cpus, rec.SuiteSecondsPar, rec.Speedup)
		if cpus >= 4 && rec.Speedup < 3 {
			b.Fatalf("suite speedup %.2fx below the 3x floor at -j %d", rec.Speedup, cpus)
		}
		if rec.Speedup > 0 {
			b.ReportMetric(rec.Speedup, "speedup")
		}
	}
}

// BenchmarkSuiteVM measures the executor win: the cold NPB suite (workers=1,
// no verdict cache) on the bytecode VM versus the same suite forced onto the
// tree-walking interpreter with vm.SetEnabled(false). The two must produce
// byte-identical Tables I/III/IV; the timing, the VM run's stage split, and
// the replay-reducer skip counters are merged into BENCH_analysis.json under
// "vm" (run via `go test -run=^$ -bench=SuiteVM -benchtime=1x .`).
func BenchmarkSuiteVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vmSuite, vmDur, _ := timedSuite(b, 1, nil)
		vm.SetEnabled(false)
		noSuite, noDur, _ := timedSuite(b, 1, nil)
		vm.SetEnabled(true)

		identical := vmSuite.TableI() == noSuite.TableI() &&
			vmSuite.TableIII() == noSuite.TableIII() &&
			vmSuite.TableIV() == noSuite.TableIV()
		if !identical {
			b.Fatalf("VM suite diverged from tree-walker:\nvm TableI:\n%s\nno-vm TableI:\n%s",
				vmSuite.TableI(), noSuite.TableI())
		}
		stop, fp := vmSuite.SkippedReplays()
		static, golden, replay := vmSuite.StageSeconds()
		rec := struct {
			VM VMBench `json:"vm"`
		}{VMBench{
			Workers:          1,
			SuiteSecondsVM:   vmDur.Seconds(),
			SuiteSecondsNoVM: noDur.Seconds(),
			SpeedupVsInterp:  noDur.Seconds() / vmDur.Seconds(),
			SecondsStatic:    static,
			SecondsGolden:    golden,
			SecondsReplay:    replay,
			SkippedStop:      stop,
			SkippedFootprint: fp,
			ReplaysVM:        vmSuite.Replays(),
			ReplaysNoVM:      noSuite.Replays(),
			TablesIdentical:  identical,
		}}
		mergeBenchFile(b, rec)
		fmt.Fprintf(os.Stderr, "vm: %.2fs vs interp %.2fs (%.2fx); stages static %.2fs golden %.2fs replay %.2fs; skipped stop %d footprint %d\n",
			vmDur.Seconds(), noDur.Seconds(), rec.VM.SpeedupVsInterp, static, golden, replay, stop, fp)
		b.ReportMetric(rec.VM.SpeedupVsInterp, "speedup-vs-interp")
	}
}

// BenchmarkSuiteProve measures the static-prover win: the cold NPB suite
// (workers=1, no verdict cache) with the prover on versus the same suite
// forced through the dynamic stage with -no-prove. The two must produce
// byte-identical Tables I/III/IV — a static proof may only remove work,
// never change a verdict — and the prover must decide a nonzero share of
// the suite's loops. The rate and the replay delta are merged into
// BENCH_analysis.json under "prove" (run via `go test -run=^$
// -bench=SuiteProve -benchtime=1x .`).
func BenchmarkSuiteProve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pvSuite, pvDur, _ := timedSuite(b, 1, nil)
		start := time.Now()
		npSuite, err := bench.RunSuiteConfig(1, nil, true)
		npDur := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}

		identical := pvSuite.TableI() == npSuite.TableI() &&
			pvSuite.TableIII() == npSuite.TableIII() &&
			pvSuite.TableIV() == npSuite.TableIV()
		if !identical {
			b.Fatalf("prover suite diverged from dynamic-only:\nprove TableI:\n%s\nno-prove TableI:\n%s",
				pvSuite.TableI(), npSuite.TableI())
		}
		proved := pvSuite.ProvedLoops()
		if proved == 0 {
			b.Fatal("prover decided no loops across the whole NPB suite")
		}
		total := 0
		for _, r := range pvSuite.Results {
			total += len(r.DCA.Loops)
		}
		rec := struct {
			Prove ProveBench `json:"prove"`
		}{ProveBench{
			Workers:             1,
			SuiteSecondsProve:   pvDur.Seconds(),
			SuiteSecondsNoProve: npDur.Seconds(),
			ProvedLoops:         proved,
			TotalLoops:          total,
			StaticProvedRate:    float64(proved) / float64(total),
			ReplaysProve:        pvSuite.Replays(),
			ReplaysNoProve:      npSuite.Replays(),
			SkippedProveRuns:    pvSuite.SkippedProveRuns(),
			TablesIdentical:     identical,
		}}
		mergeBenchFile(b, rec)
		fmt.Fprintf(os.Stderr, "prove: %.2fs vs no-prove %.2fs; proved %d/%d loops (%.0f%%), replays %d -> %d (skipped %d runs)\n",
			pvDur.Seconds(), npDur.Seconds(), proved, total, 100*rec.Prove.StaticProvedRate,
			npSuite.Replays(), pvSuite.Replays(), rec.Prove.SkippedProveRuns)
		b.ReportMetric(rec.Prove.StaticProvedRate, "static-proved-rate")
	}
}

// BenchmarkSuiteCache measures the incremental-analysis win: the full NPB
// suite cold (empty verdict cache) versus warm (every verdict cached). The
// warm run must reproduce the tables byte-for-byte while skipping at least
// 90% of the dynamic-stage replays; the skip rate and cache counters are
// merged into BENCH_analysis.json under "cache".
func BenchmarkSuiteCache(b *testing.B) {
	cpus := runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		c, err := cache.Open("", 0, core.CacheRecordVersion)
		if err != nil {
			b.Fatal(err)
		}
		var cold, warm *bench.Suite
		var coldDur, warmDur time.Duration
		withAllCPUs(func() {
			cold, coldDur, _ = timedSuite(b, cpus, c)
			warm, warmDur, _ = timedSuite(b, cpus, c)
		})

		identical := cold.TableI() == warm.TableI() &&
			cold.TableIII() == warm.TableIII() &&
			cold.TableIV() == warm.TableIV()
		if !identical {
			b.Fatalf("warm suite diverged from cold:\ncold TableI:\n%s\nwarm TableI:\n%s",
				cold.TableI(), warm.TableI())
		}
		if cold.Replays() == 0 {
			b.Fatal("cold suite performed no replays")
		}
		skip := 1 - float64(warm.Replays())/float64(cold.Replays())
		if skip < 0.9 {
			b.Fatalf("warm suite skipped only %.0f%% of replays (%d -> %d), want >= 90%%",
				skip*100, cold.Replays(), warm.Replays())
		}
		st := c.Stats()
		rec := struct {
			Cache CacheBench `json:"cache"`
		}{CacheBench{
			Workers:          cpus,
			SuiteSecondsCold: coldDur.Seconds(),
			SuiteSecondsWarm: warmDur.Seconds(),
			ReplaysCold:      cold.Replays(),
			ReplaysWarm:      warm.Replays(),
			ReplaySkipRate:   skip,
			CachedLoopsWarm:  warm.CachedLoops(),
			TablesIdentical:  identical,
			MemHits:          st.MemHits,
			Misses:           st.Misses,
		}}
		mergeBenchFile(b, rec)
		fmt.Fprintf(os.Stderr, "cache: cold %.2fs, warm %.2fs, replay skip %.1f%% (%d -> %d)\n",
			coldDur.Seconds(), warmDur.Seconds(), skip*100, cold.Replays(), warm.Replays())
		b.ReportMetric(skip, "skip-rate")
	}
}
