package vm_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/vm"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// runBoth executes prog's main on both executors with fresh configs from
// mkCfg and returns (vm output, interp output, vm machine, interp machine,
// vm error, interp error). The same *ir.Program is shared, so block
// pointers in BlockCounts are comparable across the two.
func runBoth(t testing.TB, prog *ir.Program, mkCfg func(out *strings.Builder) interp.Config) (string, string, *vm.Machine, *interp.Interp, error, error) {
	t.Helper()
	main := prog.Func("main")
	if main == nil {
		t.Fatal("no main")
	}
	var outV, outI strings.Builder
	mv := vm.New(prog, mkCfg(&outV))
	_, errV := mv.Call(main, nil, nil)
	mi := interp.New(prog, mkCfg(&outI))
	_, errI := mi.Call(main, nil, nil)
	return outV.String(), outI.String(), mv, mi, errV, errI
}

// assertParity demands byte-identical output, identical step counts, and
// identical error strings (including nil-ness) from the two executors.
func assertParity(t *testing.T, prog *ir.Program, mkCfg func(out *strings.Builder) interp.Config) {
	t.Helper()
	outV, outI, mv, mi, errV, errI := runBoth(t, prog, mkCfg)
	if (errV == nil) != (errI == nil) {
		t.Fatalf("error divergence: vm=%v interp=%v", errV, errI)
	}
	if errV != nil && errV.Error() != errI.Error() {
		t.Errorf("error text divergence:\nvm:     %v\ninterp: %v", errV, errI)
	}
	if outV != outI {
		t.Errorf("output divergence:\nvm:\n%s\ninterp:\n%s", outV, outI)
	}
	if mv.Steps() != mi.Steps() {
		t.Errorf("step divergence: vm=%d interp=%d", mv.Steps(), mi.Steps())
	}
}

// TestCorpusParity runs every frontend testdata program on both executors
// and demands identical output, steps, and block counts — the byte-identical
// contract the dynamic stage's verdict tables rest on.
func TestCorpusParity(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("..", "interp", "testdata", "*.mc"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			text, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := irbuild.Compile(src, string(text))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertParity(t, prog, func(out *strings.Builder) interp.Config {
				return interp.Config{Out: out}
			})
			// Block counts from a separate pair of runs (counting is optional
			// and must not perturb the uncounted runs above).
			_, _, mv, mi, errV, errI := runBoth(t, prog, func(out *strings.Builder) interp.Config {
				return interp.Config{Out: out, CountBlocks: true}
			})
			if errV != nil || errI != nil {
				t.Fatalf("counted run failed: vm=%v interp=%v", errV, errI)
			}
			cv, ci := mv.BlockCounts(), mi.BlockCounts()
			if len(cv) != len(ci) {
				t.Fatalf("block-count table sizes diverge: vm=%d interp=%d", len(cv), len(ci))
			}
			for b, n := range ci {
				if cv[b] != n {
					t.Errorf("block %s: vm=%d interp=%d", b.Name, cv[b], n)
				}
			}
		})
	}
}

// TestFaultParity: runtime faults must carry the same wrapped frame chain
// and message from both executors.
func TestFaultParity(t *testing.T) {
	cases := map[string]string{
		"div-zero":     `func f(x int) int { var z int = 0; return x / z; } func main() { print(f(3)); }`,
		"mod-zero":     `func main() { var z int = 0; print(7 % z); }`,
		"nil-deref":    `struct N { v int; } func main() { var n *N = nil; print(n->v); }`,
		"oob-index":    `func main() { var a []int = new [4]int; print(a[9]); }`,
		"neg-index":    `func main() { var a []int = new [4]int; var i int = 0 - 1; print(a[i]); }`,
		"deep-frames":  `func a(x int) int { var z int = 0; return x / z; } func b(x int) int { return a(x); } func c(x int) int { return b(x); } func main() { print(c(1)); }`,
		"shift-amount": `func main() { var s int = 0 - 1; print(1 << s); }`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			assertParity(t, compile(t, src), func(out *strings.Builder) interp.Config {
				return interp.Config{Out: out}
			})
		})
	}
}

// TestBudgetParity: the step budget must trip at the same instruction with
// the same *interp.BudgetError fields — in particular Steps = limit+1, the
// step that overran.
func TestBudgetParity(t *testing.T) {
	prog := compile(t, `func main() { var s int = 0; while (true) { s += 1; } }`)
	const limit = 777
	_, _, mv, mi, errV, errI := runBoth(t, prog, func(out *strings.Builder) interp.Config {
		return interp.Config{Out: out, MaxSteps: limit}
	})
	var bv, bi *interp.BudgetError
	if !errors.As(errV, &bv) || !errors.As(errI, &bi) {
		t.Fatalf("want BudgetError from both: vm=%v interp=%v", errV, errI)
	}
	if *bv != *bi {
		t.Errorf("budget error fields diverge:\nvm:     %+v\ninterp: %+v", *bv, *bi)
	}
	if bv.Steps != limit+1 {
		t.Errorf("budget trips at step %d, want limit+1 = %d", bv.Steps, limit+1)
	}
	if mv.Steps() != mi.Steps() || mv.Steps() != limit+1 {
		t.Errorf("machine steps diverge: vm=%d interp=%d, want %d", mv.Steps(), mi.Steps(), limit+1)
	}
	if errV.Error() != errI.Error() {
		t.Errorf("budget error text diverges:\nvm:     %v\ninterp: %v", errV, errI)
	}
}

// TestHeapBudgetParity: allocation budgets trip identically.
func TestHeapBudgetParity(t *testing.T) {
	src := `struct N { v int; } func main() { for (var i int = 0; i < 100; i++) { var n *N = new N; n->v = i; } }`
	assertParity(t, compile(t, src), func(out *strings.Builder) interp.Config {
		return interp.Config{Out: out, MaxHeapObjects: 10}
	})
}

// TestCancelParity: a pre-cancelled context stops both executors with
// ErrCancelled before any visible effect.
func TestCancelParity(t *testing.T) {
	prog := compile(t, `func main() { print(1); }`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, _, errV, errI := runBoth(t, prog, func(out *strings.Builder) interp.Config {
		return interp.Config{Out: out, Ctx: ctx}
	})
	if !errors.Is(errV, interp.ErrCancelled) || !errors.Is(errI, interp.ErrCancelled) {
		t.Fatalf("want ErrCancelled from both: vm=%v interp=%v", errV, errI)
	}
	if errV.Error() != errI.Error() {
		t.Errorf("cancel error text diverges:\nvm:     %v\ninterp: %v", errV, errI)
	}
}

// TestFootprintParity: both executors must report the same load/store
// footprint — same disjointness verdict — for the same segment markup.
func TestFootprintParity(t *testing.T) {
	// Writes a[i] per "segment", reads only its own cell: disjoint.
	src := `func main() {
		var a []int = new [8]int;
		for (var i int = 0; i < 8; i++) { a[i] = a[i] + i; }
		print(a[7]);
	}`
	prog := compile(t, src)
	run := func(exec func(cfg interp.Config) error) *interp.Footprint {
		fp := interp.NewFootprint()
		fp.BeginSegment()
		var out strings.Builder
		if err := exec(interp.Config{Out: &out, Footprint: fp}); err != nil {
			t.Fatal(err)
		}
		fp.EndInvocation()
		return fp
	}
	main := prog.Func("main")
	fv := run(func(cfg interp.Config) error { _, err := vm.New(prog, cfg).Call(main, nil, nil); return err })
	fi := run(func(cfg interp.Config) error { _, err := interp.New(prog, cfg).Call(main, nil, nil); return err })
	if fv.Disjoint() != fi.Disjoint() {
		t.Errorf("footprint divergence: vm disjoint=%v interp disjoint=%v", fv.Disjoint(), fi.Disjoint())
	}
}

// TestSupported: per-instruction subscriptions keep runs off the VM.
func TestSupported(t *testing.T) {
	if !vm.Supported(interp.Config{}) {
		t.Error("plain config should be VM-supported")
	}
	if vm.Supported(interp.Config{StepHook: func(*interp.Frame, ir.Instr, int64) error { return nil }}) {
		t.Error("StepHook config must not be VM-supported")
	}
	if vm.Supported(interp.Config{Tracer: nopTracer{}}) {
		t.Error("Tracer config must not be VM-supported")
	}
}

type nopTracer struct{}

func (nopTracer) OnBlock(*interp.Frame, *ir.Block)                  {}
func (nopTracer) OnLoad(*interp.Frame, *ir.Load, *ir.Object, int)   {}
func (nopTracer) OnStore(*interp.Frame, *ir.Store, *ir.Object, int) {}
func (nopTracer) OnCall(*interp.Frame)                              {}
func (nopTracer) OnRet(*interp.Frame)                               {}
