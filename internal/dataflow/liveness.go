// Package dataflow implements the dataflow analyses DCA builds on: backward
// liveness over locals, loop live-in/live-out sets (the paper's §III notion
// of observable loop effects), and flow-insensitive def-use summaries used
// by iterator recognition.
package dataflow

import (
	"sort"

	"dca/internal/cfg"
	"dca/internal/ir"
)

// LocalSet is a set of IR locals.
type LocalSet map[*ir.Local]bool

// NewLocalSet builds a set from the given locals.
func NewLocalSet(ls ...*ir.Local) LocalSet {
	s := LocalSet{}
	for _, l := range ls {
		s[l] = true
	}
	return s
}

// Add inserts l and reports whether it was new.
func (s LocalSet) Add(l *ir.Local) bool {
	if s[l] {
		return false
	}
	s[l] = true
	return true
}

// AddAll inserts every member of t, reporting whether s grew.
func (s LocalSet) AddAll(t LocalSet) bool {
	grew := false
	for l := range t {
		if s.Add(l) {
			grew = true
		}
	}
	return grew
}

// Clone copies the set.
func (s LocalSet) Clone() LocalSet {
	c := make(LocalSet, len(s))
	for l := range s {
		c[l] = true
	}
	return c
}

// Sorted returns members ordered by local index (stable for reports).
func (s LocalSet) Sorted() []*ir.Local {
	out := make([]*ir.Local, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Liveness holds per-block live-in/live-out sets for one function.
type Liveness struct {
	G       *cfg.Graph
	LiveIn  map[*ir.Block]LocalSet
	LiveOut map[*ir.Block]LocalSet
	use     map[*ir.Block]LocalSet // upward-exposed uses
	def     map[*ir.Block]LocalSet
}

// ComputeLiveness runs the standard backward may-liveness analysis.
func ComputeLiveness(g *cfg.Graph) *Liveness {
	lv := &Liveness{
		G:       g,
		LiveIn:  map[*ir.Block]LocalSet{},
		LiveOut: map[*ir.Block]LocalSet{},
		use:     map[*ir.Block]LocalSet{},
		def:     map[*ir.Block]LocalSet{},
	}
	for _, b := range g.Fn.Blocks {
		use, def := LocalSet{}, LocalSet{}
		for _, in := range b.Instrs {
			for _, o := range in.Uses() {
				if o.Local != nil && !def[o.Local] {
					use[o.Local] = true
				}
			}
			if d := in.Def(); d != nil {
				def[d] = true
			}
		}
		if b.Term != nil {
			for _, o := range b.Term.Uses() {
				if o.Local != nil && !def[o.Local] {
					use[o.Local] = true
				}
			}
		}
		lv.use[b], lv.def[b] = use, def
		lv.LiveIn[b] = LocalSet{}
		lv.LiveOut[b] = LocalSet{}
	}
	// Iterate to fixpoint, visiting blocks in postorder (reverse RPO) for
	// fast convergence of the backward problem.
	changed := true
	for changed {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			out := lv.LiveOut[b]
			for _, s := range g.Succs[b] {
				if out.AddAll(lv.LiveIn[s]) {
					changed = true
				}
			}
			in := lv.LiveIn[b]
			for l := range lv.use[b] {
				if in.Add(l) {
					changed = true
				}
			}
			for l := range out {
				if !lv.def[b][l] {
					if in.Add(l) {
						changed = true
					}
				}
			}
		}
	}
	return lv
}

// LoopEffects describes the observable variable traffic of a loop: the
// paper's live-in, live-out and live-through sets (§IV-A2).
type LoopEffects struct {
	Loop *cfg.Loop
	// LiveIn: locals defined outside the loop and used inside it.
	LiveIn LocalSet
	// LiveOut: locals defined (or redefined) inside the loop that are live
	// on some loop exit edge — the values DCA's verification compares.
	LiveOut LocalSet
	// LiveThrough: locals live across the loop but untouched by it.
	LiveThrough LocalSet
	// DefsInside: every local defined by some instruction in the loop.
	DefsInside LocalSet
	// UsesInside: every local read by some instruction in the loop.
	UsesInside LocalSet
	// LiveAfter: every local live at some loop exit target. These are the
	// snapshot roots for DCA's live-out verification: scalars are compared
	// by value and references by deep heap structure, so heap mutations
	// reachable from live-through pointers (e.g. array[i]++ with the array
	// live after the loop) are observed too.
	LiveAfter LocalSet
}

// AnalyzeLoop computes the loop's liveness-based effect sets.
func (lv *Liveness) AnalyzeLoop(l *cfg.Loop) *LoopEffects {
	e := &LoopEffects{
		Loop:        l,
		LiveIn:      LocalSet{},
		LiveOut:     LocalSet{},
		LiveThrough: LocalSet{},
		DefsInside:  LocalSet{},
		UsesInside:  LocalSet{},
	}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d != nil {
				e.DefsInside[d] = true
			}
			for _, o := range in.Uses() {
				if o.Local != nil {
					e.UsesInside[o.Local] = true
				}
			}
		}
		if b.Term != nil {
			for _, o := range b.Term.Uses() {
				if o.Local != nil {
					e.UsesInside[o.Local] = true
				}
			}
		}
	}
	// Live at any exit target = live after the loop.
	liveAfter := LocalSet{}
	for _, ex := range l.Exits {
		liveAfter.AddAll(lv.LiveIn[ex])
	}
	e.LiveAfter = liveAfter
	for v := range liveAfter {
		switch {
		case e.DefsInside[v]:
			e.LiveOut[v] = true
		case lv.LiveIn[l.Header][v]:
			e.LiveThrough[v] = true
		}
	}
	// Live-in: used inside, live at header entry, not (only) defined inside
	// before use. We over-approximate with "used inside and live into the
	// header", which is precise for the reducible loops MiniC produces.
	for v := range e.UsesInside {
		if lv.LiveIn[l.Header][v] {
			e.LiveIn[v] = true
		}
	}
	return e
}
