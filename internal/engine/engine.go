// Package engine is the concurrent analysis engine: it runs DCA's per-loop
// analyses — and, after each golden run, the per-schedule replays — across a
// bounded worker pool, while preserving report-identical output with the
// sequential core.Analyze path.
//
// Three properties make the fan-out sound:
//
//   - Replays never share mutable state. instrument.Loop clones the program
//     per loop, the interpreter allocates a fresh heap per execution, and
//     the shared inputs (original program, purity info, loop forests) are
//     read-only after construction.
//   - Determinism is recovered structurally, not by locking: loop results
//     are preallocated in enumeration order and sorted exactly like the
//     sequential path, and schedule outcomes are folded in schedule order
//     with the same first-failure early exit (core.AnalyzeLoopInto).
//   - Fault injection (a deliberately order-sensitive cross-run trip
//     counter) forces schedule replays inline on their loop's worker, so
//     trips are consumed in sequential order.
//
// The engine also adds a coverage prescreen: the reference execution runs
// once with block counting enabled, and loops whose header never executes
// skip the golden run and every replay — the workload cannot produce
// evidence for them — going straight to NotExecuted after the static stage.
//
// Every analysis is request-scoped: the caller's context flows into the
// reference execution, every loop's dynamic stage, and every offloaded
// schedule replay. Cancelling it stops scheduling new work, interrupts
// in-flight interpreter runs, and marks unfinished loops Cancelled — the
// report always comes back complete, never blocked on a dead client.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dca/internal/cfg"
	"dca/internal/core"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/obs"
	"dca/internal/purity"
	"dca/internal/sandbox"
)

// Pool is a counting semaphore shared by every analysis a caller fans out:
// loop analyses and offloaded schedule replays all draw from the same
// bounded worker budget, so nesting cannot oversubscribe the host.
type Pool struct{ sem chan struct{} }

// NewPool sizes a worker pool; workers < 1 is clamped to 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

func (p *Pool) release() { <-p.sem }

// acquireCtx claims a slot, giving up when ctx is cancelled first. It
// reports whether the slot was actually acquired — callers that proceed
// without one must not release it.
func (p *Pool) acquireCtx(ctx context.Context) bool {
	select {
	case p.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Cap returns the pool's total worker capacity.
func (p *Pool) Cap() int { return cap(p.sem) }

// InUse returns how many worker slots are held right now — a point-in-time
// load reading for monitoring endpoints.
func (p *Pool) InUse() int { return len(p.sem) }

// tryAcquire claims a slot only if one is free — the non-blocking form used
// for schedule offload, so a loop analysis holding a slot can never
// deadlock waiting for its own sub-tasks.
func (p *Pool) tryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// LoopKey identifies one loop within the analyzed program — the resume
// map's key. Loop enumeration is deterministic (function order, loop index),
// so the same program always yields the same keys.
type LoopKey struct {
	Fn    string
	Index int
}

// JournalSink receives one serialized verdict record per completed loop —
// the engine's view of a write-ahead run journal. Record must be safe for
// concurrent use; an error means the record was not made durable (the
// analysis itself continues).
type JournalSink interface {
	Record(fn string, index int, data []byte) error
}

// Options configures the concurrent engine.
type Options struct {
	// Core is the analysis configuration, identical to core.Analyze's.
	Core core.Options
	// Workers bounds concurrent executions; <= 0 means GOMAXPROCS.
	Workers int
	// Pool, when non-nil, shares a worker budget across several Analyze
	// calls (suite-level fan-out); Workers is ignored then.
	Pool *Pool
	// NoPrescreen disables the coverage prescreen, forcing every loop
	// through the golden run like the sequential path.
	NoPrescreen bool
	// Journal, when non-nil, receives every completed loop verdict as it is
	// reached (core.EncodeLoopRecord schema), making the run resumable.
	Journal JournalSink
	// Resume maps loops to verdict records recovered from a previous run's
	// journal. A mapped loop skips its static and dynamic stage entirely and
	// reports the recovered outcome with ProvenanceJournaled; a record that
	// fails to decode falls through to a fresh analysis.
	Resume map[LoopKey][]byte
	// Only, when non-nil, restricts the analysis to the listed loops: loops
	// outside the set are neither analyzed nor reported. This is the fleet's
	// shard filter — a worker handed one batch of a program's loops runs the
	// reference execution once and analyzes just its share. nil means every
	// loop, exactly as before.
	Only map[LoopKey]bool
	// OnLoop, when non-nil, is called once per loop as its analysis
	// completes (including cached, journaled, and cancelled outcomes), from
	// the worker goroutine that finished it — completion order, not report
	// order. The result must be treated as read-only. Run registries use it
	// to stream per-loop verdicts while the analysis is still running.
	OnLoop func(res *core.LoopResult)
}

// Analyze runs DCA over every loop of every function, like core.Analyze,
// but fanned out over the worker pool and prescreened for coverage. ctx
// (nil means Background) scopes the whole analysis: once it is cancelled no
// new loop or replay starts, in-flight interpreter runs are interrupted,
// and every unfinished loop reports Verdict Cancelled.
func Analyze(ctx context.Context, prog *ir.Program, opt Options) (*core.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	copt := opt.Core.Normalized()
	pool := opt.Pool
	if pool == nil {
		workers := opt.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		pool = NewPool(workers)
	}

	// Reference execution, once, with block counting: its output is the
	// behaviour every replay must preserve, and its block counts are the
	// coverage prescreen. A trap here is fatal for the whole analysis —
	// including the trap a cancelled ctx converts it into.
	var refBuf strings.Builder
	refStart := time.Now()
	oc := sandbox.Run(ctx, prog, interp.Config{Out: &refBuf, CountBlocks: true, NoVM: copt.NoVM}, copt.Limits(), nil)
	if !oc.OK() {
		if copt.Trace != nil {
			copt.Trace.Emit(obs.Event{Stage: obs.StageReference, Outcome: obs.OutcomeTrap,
				Trap: oc.Trap.Kind.String(), Err: oc.Trap.Err.Error(),
				DurationMS: float64(time.Since(refStart)) / float64(time.Millisecond)})
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("engine: analysis cancelled during reference execution: %w", context.Cause(ctx))
		}
		return nil, fmt.Errorf("engine: reference execution failed (%s): %w", oc.Trap.Kind, oc.Trap)
	}
	if copt.Trace != nil {
		copt.Trace.Emit(obs.Event{Stage: obs.StageReference, Outcome: obs.OutcomeOK,
			DurationMS: float64(time.Since(refStart)) / float64(time.Millisecond)})
	}
	refOut := refBuf.String()
	blockCt := oc.Result.BlockCount

	pur := purity.Analyze(prog)
	rep := &core.Report{Prog: prog}

	// Enumerate loops up front, preallocating results in enumeration order.
	type loopJob struct {
		fn          *ir.Func
		loop        *cfg.Loop
		res         *core.LoopResult
		prescreened bool
	}
	var jobs []loopJob
	for _, fn := range prog.Funcs {
		_, loops := cfg.LoopsOf(fn)
		for _, loop := range loops {
			if opt.Only != nil && !opt.Only[LoopKey{Fn: fn.Name, Index: loop.Index}] {
				continue
			}
			res := &core.LoopResult{
				Fn:    fn.Name,
				Index: loop.Index,
				ID:    loop.ID(),
				Pos:   loop.Header.Pos,
				Depth: loop.Depth,
			}
			rep.Loops = append(rep.Loops, res)
			jobs = append(jobs, loopJob{
				fn:          fn,
				loop:        loop,
				res:         res,
				prescreened: !opt.NoPrescreen && blockCt[loop.Header] == 0,
			})
		}
	}

	// Injection's trip counter is consumed in run order; keep schedule
	// replays inline (sequential within each loop) when it is armed. Loops
	// stay parallel: each loop arms its own independent injector.
	var mkExec func() core.ScheduleExecutor
	if copt.InjectionEnabled() {
		mkExec = func() core.ScheduleExecutor { return nil }
	} else {
		mkExec = func() core.ScheduleExecutor { return scheduleExecutor(ctx, pool) }
	}

	// Armed fault injection bypasses durability in both directions, exactly
	// like the verdict cache: injected traps are harness behaviour, not
	// reusable analysis results.
	journal, resume := opt.Journal, opt.Resume
	if copt.InjectionEnabled() {
		journal, resume = nil, nil
	}
	var journalErrOnce sync.Once

	// Bounded dispatch: at most pool.Cap() dispatcher goroutines pull jobs
	// from a shared index, instead of one goroutine per loop parked on the
	// semaphore. A suite with thousands of loops costs Cap() goroutines,
	// and a cancelled ctx stops the pull loop instead of leaving a spawned
	// backlog behind. Jobs whose slot acquisition loses to cancellation
	// still run AnalyzeLoopInto slot-less: its entry check marks the loop
	// Cancelled without doing any work, keeping the report complete.
	workers := pool.Cap()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				// A journaled loop skips both stages — no pool slot needed.
				// A record that fails to decode degrades to a fresh analysis.
				if data, ok := resume[LoopKey{Fn: j.fn.Name, Index: j.loop.Index}]; ok &&
					replayJournaled(&copt, data, j.res) {
					if opt.OnLoop != nil {
						opt.OnLoop(j.res)
					}
					continue
				}
				held := pool.acquireCtx(ctx)
				core.AnalyzeLoopInto(ctx, prog, j.fn, j.loop, pur, copt, refOut, j.res, j.prescreened, mkExec())
				if held {
					pool.release()
				}
				if journal != nil {
					if data := core.EncodeLoopRecord(j.res); data != nil {
						if err := journal.Record(j.res.Fn, j.res.Index, data); err != nil && copt.Trace != nil {
							// The journal's write errors are sticky; one event
							// says it all instead of one per remaining loop.
							journalErrOnce.Do(func() {
								copt.Trace.Emit(obs.Event{Stage: obs.StageJournal, Fn: j.res.Fn,
									LoopID: j.res.ID, Outcome: obs.OutcomeError, Err: err.Error()})
							})
						}
					}
				}
				if opt.OnLoop != nil {
					opt.OnLoop(j.res)
				}
			}
		}()
	}
	wg.Wait()

	sortLoops(rep)
	return rep, nil
}

// replayJournaled restores a journaled verdict into res, emitting the same
// trailing trace events a fresh analysis would (a journal hit, then the
// verdict). It reports false — leaving res untouched — when the record does
// not decode, so corruption degrades to recomputation.
func replayJournaled(opt *core.Options, data []byte, res *core.LoopResult) bool {
	start := time.Now()
	if !core.DecodeLoopRecord(data, res) {
		return false
	}
	res.Provenance = core.ProvenanceJournaled
	res.Elapsed = time.Since(start)
	if opt.Trace != nil {
		opt.Trace.Emit(obs.Event{Stage: obs.StageJournal, Fn: res.Fn, LoopID: res.ID,
			Outcome: obs.OutcomeHit})
		opt.Trace.Emit(obs.Event{Stage: obs.StageVerdict, Fn: res.Fn, LoopID: res.ID,
			Verdict: res.Verdict.String(), Reason: res.Reason, Trap: res.TrapKind,
			Provenance: res.Provenance, Retries: res.Retries,
			DurationMS: float64(res.Elapsed) / float64(time.Millisecond)})
	}
	return true
}

// scheduleExecutor offloads schedule replays onto free pool slots, running
// the rest inline on the loop's own worker. All offloadable replays start
// eagerly — the fold may discard outcomes past its first failure, trading
// a little wasted work for latency — while inline ones stay lazy, so they
// are skipped after an early exit just like the sequential path. A
// cancelled ctx stops the eager offload: remaining replays run inline,
// where the dynamic stage's own cancellation checks cut them short.
func scheduleExecutor(ctx context.Context, pool *Pool) core.ScheduleExecutor {
	return func(n int, runOne func(i int) core.ScheduleOutcome) func(i int) core.ScheduleOutcome {
		results := make([]core.ScheduleOutcome, n)
		done := make([]chan struct{}, n)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if !pool.tryAcquire() {
				continue
			}
			ch := make(chan struct{})
			done[i] = ch
			go func(i int) {
				defer pool.release()
				defer close(ch)
				// runOne recovers its own panics into a Panic-trap outcome.
				results[i] = runOne(i)
			}(i)
		}
		return func(i int) core.ScheduleOutcome {
			if done[i] != nil {
				<-done[i]
				return results[i]
			}
			return runOne(i)
		}
	}
}

// sortLoops orders results exactly like core.Analyze: by function name,
// then loop index.
func sortLoops(rep *core.Report) {
	loops := rep.Loops
	sort.SliceStable(loops, func(i, j int) bool {
		if loops[i].Fn != loops[j].Fn {
			return loops[i].Fn < loops[j].Fn
		}
		return loops[i].Index < loops[j].Index
	})
}
