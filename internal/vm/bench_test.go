package vm_test

import (
	"io"
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/vm"
)

// Three kernels chosen to stress the three costs that separate the two
// executors: pure dispatch (tight arithmetic loop), heap churn (allocation
// plus loads/stores), and call overhead (deep recursion).
var benchKernels = []struct {
	name string
	src  string
}{
	{"dispatch", `func main() {
		var s int = 0;
		for (var i int = 0; i < 20000; i++) { s = s + i*3 - (i >> 1); }
		print(s);
	}`},
	{"alloc", `struct N { v int; next *N; }
	func main() {
		var head *N = nil;
		for (var i int = 0; i < 2000; i++) {
			var n *N = new N; n->v = i; n->next = head; head = n;
		}
		var s int = 0;
		while (head != nil) { s += head->v; head = head->next; }
		print(s);
	}`},
	{"calls", `func fib(n int) int {
		if (n < 2) { return n; }
		return fib(n-1) + fib(n-2);
	}
	func main() { print(fib(18)); }`},
}

// BenchmarkVMvsInterp pits the bytecode VM against the tree-walking
// interpreter on each kernel (run via
// `go test ./internal/vm -run=^$ -bench=VMvsInterp`). The vm/interp
// sub-benchmark ratio is the dispatch win the dynamic stage sees per
// golden run or replay.
func BenchmarkVMvsInterp(b *testing.B) {
	for _, k := range benchKernels {
		prog := compile(b, k.src)
		main := prog.Func("main")
		b.Run(k.name+"/vm", func(b *testing.B) {
			benchExec(b, prog, main, func(cfg interp.Config) caller { return vm.New(prog, cfg) })
		})
		b.Run(k.name+"/interp", func(b *testing.B) {
			benchExec(b, prog, main, func(cfg interp.Config) caller { return interp.New(prog, cfg) })
		})
	}
}

type caller interface {
	Call(fn *ir.Func, args []ir.Value, parent *interp.Frame) (ir.Value, error)
	Steps() int64
}

func benchExec(b *testing.B, prog *ir.Program, main *ir.Func, mk func(cfg interp.Config) caller) {
	var steps int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := mk(interp.Config{Out: io.Discard})
		if _, err := m.Call(main, nil, nil); err != nil {
			b.Fatal(err)
		}
		steps = m.Steps()
	}
	b.ReportMetric(float64(steps), "steps/op")
}

// BenchmarkCompile measures the one-time bytecode compilation cost that the
// VM amortizes across every run of the same program.
func BenchmarkCompile(b *testing.B) {
	src := benchKernels[0].src
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog := compile(b, src)
		var out strings.Builder
		m := vm.New(prog, interp.Config{Out: &out})
		if _, err := m.Call(prog.Func("main"), nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
