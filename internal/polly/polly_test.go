package polly_test

import (
	"testing"

	"dca/internal/irbuild"
	"dca/internal/polly"
)

func analyze(t *testing.T, src string) *polly.Report {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return polly.Analyze(prog)
}

func expect(t *testing.T, rep *polly.Report, fn string, idx int, want bool) {
	t.Helper()
	v := rep.Verdict(fn, idx)
	if v == nil {
		t.Fatalf("no verdict for %s/L%d", fn, idx)
	}
	if v.Parallel != want {
		t.Errorf("%s/L%d = %v (%v), want %v", fn, idx, v.Parallel, v.Reasons, want)
	}
}

func TestAffineDoallAccepted(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var b []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = b[i] * 2 + 1; }
	print(a[0]);
}`)
	expect(t, rep, "main", 0, true)
}

func TestNestedAffineAccepted(t *testing.T) {
	rep := analyze(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 8; j++) { m[i*8+j] = i + j; }
	}
	print(m[63]);
}`)
	expect(t, rep, "main", 0, true) // outer: 8i+j covers disjoint rows
	expect(t, rep, "main", 1, true) // inner
}

func TestRecurrenceRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	for (var i int = 1; i < 64; i++) { a[i] = a[i-1] + 1; }
	print(a[63]);
}`)
	expect(t, rep, "main", 0, false)
}

func TestReductionRejectedByPolly(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s += a[i]; }
	print(s);
}`)
	expect(t, rep, "main", 0, false)
}

func TestCallRejected(t *testing.T) {
	rep := analyze(t, `
func f(x int) int { return x * 2; }
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = f(i); }
	print(a[0]);
}`)
	expect(t, rep, "main", 0, false)
}

func TestPLDSRejected(t *testing.T) {
	rep := analyze(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = new Node;
	var p *Node = head;
	while (p != nil) { p->val++; p = p->next; }
	print(head->val);
}`)
	expect(t, rep, "main", 0, false)
}

func TestEarlyExitRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) {
		a[i] = i;
		if (i == 40) { break; }
	}
	print(a[0]);
}`)
	expect(t, rep, "main", 0, false)
}

func TestStridedDisjointAccepted(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [128]int;
	for (var i int = 0; i < 64; i++) { a[2*i] = a[2*i+1] + 1; }
	print(a[0]);
}`)
	// Writes hit even elements, reads odd: strong SIV proves independence.
	expect(t, rep, "main", 0, true)
}

func TestOverlappingStrideRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [130]int;
	for (var i int = 0; i < 64; i++) { a[2*i] = a[2*i+2] + 1; }
	print(a[0]);
}`)
	// distance 1 in iteration space: carried.
	expect(t, rep, "main", 0, false)
}

func TestHistogramRejectedByPolly(t *testing.T) {
	rep := analyze(t, `
func main() {
	var b []int = new [64]int;
	var h []int = new [8]int;
	for (var i int = 0; i < 64; i++) { h[b[i]] += 1; }
	print(h[0]);
}`)
	expect(t, rep, "main", 0, false)
}

func TestSymbolicBoundAccepted(t *testing.T) {
	rep := analyze(t, `
func fill(a []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] = i; }
}
func main() {
	var a []int = new [32]int;
	fill(a, 32);
	print(a[31]);
}`)
	// Polly accepts parametric bounds.
	expect(t, rep, "fill", 0, true)
}
