// Package fuzzgen is a seeded, deterministic MiniC loop-nest generator
// with ground-truth commutativity labels. It composes iterator shapes
// (counted range up/down, linked-list walk, worklist indirection, nested
// range) with payload effects (pure, scalar reductions, disjoint/affine
// array writes, aliased writes, order-dependent folds and outputs) where
// every production carries a label — commutative, non-commutative, or
// unknown — established by construction, not by running any analyzer.
//
// The generator exists to test the analyzers, so its determinism contract
// is strict: the same seed yields the same Program spec and the same
// rendered source, byte for byte, on every platform and in every process.
// All randomness flows from a splitmix64 stream seeded by the caller;
// nothing is ever derived from the clock.
//
// The package also carries the delta-debugging minimizer (shrink.go) and
// the regression-corpus store (corpus.go) used by the differential harness
// in fuzzgen/diff.
package fuzzgen

import "fmt"

// Label is the ground-truth commutativity class of a generated loop.
type Label int

// Ground-truth labels. The soundness invariant the differential harness
// enforces: DCA must never report a LabelNonCommutative loop commutative.
const (
	// LabelCommutative: iterations may run in any order with identical
	// observable results — guaranteed by construction (disjoint writes,
	// associative-commutative integer folds, idempotent-free but
	// order-insensitive updates).
	LabelCommutative Label = iota
	// LabelNonCommutative: reversing the iteration order provably changes
	// a live-out or the program output. The productions are constructed so
	// the always-tested Reverse schedule is sufficient evidence: a
	// commutative verdict can never be excused by "the schedules missed it".
	LabelNonCommutative
	// LabelUnknown: order sensitivity depends on arithmetic collisions or
	// floating-point rounding the generator does not decide. Any verdict
	// is acceptable; the loops exist to widen pipeline coverage, and the
	// parallel-executor oracle still applies when DCA says commutative.
	LabelUnknown
)

var labelNames = [...]string{"commutative", "non-commutative", "unknown"}

func (l Label) String() string { return labelNames[l] }

// IterShape enumerates the iterator productions.
type IterShape int

// Iterator shapes.
const (
	// IterRangeUp: for (i = 0; i < n; i++).
	IterRangeUp IterShape = iota
	// IterRangeDown: for (i = n-1; i >= 0; i--).
	IterRangeDown
	// IterList: while (p != nil) { ...; p = p->next; } over a list built in
	// main (the build loop itself is an unlabeled, order-dependent loop).
	IterList
	// IterWorklist: for (k = 0; k < n; k++) { i = w[k]; ... } where w is a
	// permutation of 0..n-1 — the element order is data, not control.
	IterWorklist
	// IterNested: a two-level range nest over a flattened r*c array; the
	// loop function contains two labeled loops (outer and inner).
	IterNested
	numIterShapes
)

var iterNames = [...]string{"range", "range_down", "list", "worklist", "nested"}

func (s IterShape) String() string { return iterNames[s] }

// PayloadKind enumerates the payload productions.
type PayloadKind int

// Payload effects. Comments give the ground truth and its argument.
const (
	// PayPure: local computation, no observable effect. Commutative.
	PayPure PayloadKind = iota
	// PayDisjointWrite: a[i] = f(i); each iteration owns its cell.
	// Commutative.
	PayDisjointWrite
	// PaySumReduce: s += f(i); int addition is associative-commutative
	// (wraparound included). Commutative.
	PaySumReduce
	// PayProdReduce: s *= odd(i); int multiplication likewise. Commutative.
	PayProdReduce
	// PayMinMax: if (v > m) { m = v; }; max is associative-commutative.
	// Commutative.
	PayMinMax
	// PayHistogram: h[i % m] += g(i); per-cell sums of commutative adds.
	// Commutative — but NOT safe for the goroutine executor (racy
	// increments of shared cells), so it is excluded from the parallel
	// oracle by ParallelSafe.
	PayHistogram
	// PayScatterInj: a[(i*s) % n] = f(i) with gcd(s, n) = 1 — an injective
	// index map, so writes are disjoint. Commutative.
	PayScatterInj
	// PayOrderedFold: s = s*3 + v(i) with the v(i) pairwise distinct; the
	// fold weights values by position, so any reordering (reverse in
	// particular) changes s. Non-commutative for trip >= 2.
	PayOrderedFold
	// PayFirstWrite: if (c[i/2] == 0) { c[i/2] = i+k; } — first writer
	// wins; reversing the order flips the winner of every colliding pair.
	// Non-commutative for trip >= 2.
	PayFirstWrite
	// PayRecurrence: a[i] = a[i-1] + g(i) — a carried chain; under reverse
	// order every read sees the unwritten predecessor. Non-commutative for
	// trip >= 3 (range-up iterator only).
	PayRecurrence
	// PayAliasedWrite: a[i] = f1(i); b[n-1-i] = f2(i) where a and b alias
	// the same array — contested cells are last-writer-wins.
	// Non-commutative for trip >= 2.
	PayAliasedWrite
	// PayIOPrint: prints inside the loop; output order is observable.
	// Non-commutative (DCA must exclude it as an I/O loop, which is a
	// correct, sound outcome — never a commutative verdict).
	PayIOPrint
	// PayFloatSum: f += 1/float(g(i)); reordering changes rounding, but
	// whether the final bits differ depends on the trip and magnitudes.
	// Unknown.
	PayFloatSum
	// PayModWrite: a[(i*i + k) % n] = f(i); collisions (and hence order
	// sensitivity) depend on quadratic residues mod n. Unknown.
	PayModWrite
	numPayloadKinds
)

var payloadNames = [...]string{
	"pure", "disjoint_write", "sum_reduce", "prod_reduce", "minmax",
	"histogram", "scatter", "ordered_fold", "first_write", "recurrence",
	"aliased_write", "io_print", "float_sum", "mod_write",
}

func (p PayloadKind) String() string { return payloadNames[p] }

// LoopSpec is one generated loop-nest production: an iterator shape, a
// payload effect, and the concrete parameters the renderer interpolates.
// Specs — not rendered text — are what the minimizer mutates, so every
// transformation stays inside the grammar and the ground-truth label
// remains valid by construction.
type LoopSpec struct {
	// Seq is the program-unique sequence number; it names the loop
	// function (fz<Seq>_<payload>) and stays stable under shrinking.
	Seq     int         `json:"seq"`
	Iter    IterShape   `json:"iter"`
	Payload PayloadKind `json:"payload"`
	// Trip is the iteration count (the outer trip for IterNested).
	Trip int `json:"trip"`
	// Inner is the inner trip for IterNested (0 otherwise).
	Inner int `json:"inner,omitempty"`
	// Stride is the scatter/worklist permutation stride, coprime with the
	// element count.
	Stride int `json:"stride,omitempty"`
	// Mod is the histogram bucket count / first-write collision divisor.
	Mod int `json:"mod,omitempty"`
	// K1, K2 are small positive payload constants.
	K1 int `json:"k1"`
	K2 int `json:"k2"`
	// Noise adds a benign local computation to the payload; the minimizer
	// drops it first ("remove statements").
	Noise bool `json:"noise,omitempty"`
}

// FnName is the generated function holding this loop (every labeled loop
// lives in its own function, so fn name identifies the production; for
// IterNested the function holds both labeled loops).
func (l *LoopSpec) FnName() string {
	return fmt.Sprintf("fz%d_%s", l.Seq, l.Payload)
}

// Label returns the spec's ground truth.
func (l *LoopSpec) Label() Label {
	switch l.Payload {
	case PayOrderedFold, PayFirstWrite, PayRecurrence, PayAliasedWrite, PayIOPrint:
		return LabelNonCommutative
	case PayFloatSum, PayModWrite:
		return LabelUnknown
	}
	return LabelCommutative
}

// ParallelSafe reports whether the loop is safe for the goroutine
// executor's privatization scheme: disjoint heap writes or recognized
// scalar reductions only. Commutative-but-racy payloads (histogram: many
// iterations increment one shared cell) are excluded — running them through
// internal/parallel would be a data race in the interpreter heap, not a
// commutativity question.
func (l *LoopSpec) ParallelSafe() bool {
	if l.Label() != LabelCommutative {
		return false
	}
	switch l.Payload {
	case PayPure, PayDisjointWrite, PayScatterInj, PaySumReduce, PayProdReduce:
		return true
	}
	return false
}

// Elements returns the number of array elements / list nodes the loop
// touches (Trip, or Trip*Inner for nests).
func (l *LoopSpec) Elements() int {
	if l.Iter == IterNested {
		return l.Trip * l.Inner
	}
	return l.Trip
}

// Program is one generated program spec: the seed it came from and its
// loop productions. Render assembles the MiniC source; Labels exposes the
// per-function ground truth the differential harness checks against.
type Program struct {
	Seed  int64      `json:"seed"`
	Loops []LoopSpec `json:"loops"`
}

// Labels maps generated function name -> ground truth. The label covers
// every loop inside that function (IterNested functions hold two loops,
// both carrying the production's label). Loops in main — list builds,
// worklist fills, checksum folds — are unlabeled by design: they are real
// analysis work but assert nothing.
func (p *Program) Labels() map[string]Label {
	m := make(map[string]Label, len(p.Loops))
	for i := range p.Loops {
		m[p.Loops[i].FnName()] = p.Loops[i].Label()
	}
	return m
}

// SpecByFn returns the loop spec rendered into the named function, or nil.
func (p *Program) SpecByFn(fn string) *LoopSpec {
	for i := range p.Loops {
		if p.Loops[i].FnName() == fn {
			return &p.Loops[i]
		}
	}
	return nil
}

// rng is a splitmix64 stream — deterministic, platform-independent, and
// stable across Go releases (unlike math/rand's generator-order contract).
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	return &rng{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// compatible reports whether the grammar composes the iterator with the
// payload. The exclusions are semantic, not cosmetic: a recurrence needs
// the canonical ascending index chain, and node payloads only exist for
// value-shaped effects.
func compatible(it IterShape, pay PayloadKind) bool {
	switch it {
	case IterList:
		switch pay {
		case PayPure, PayDisjointWrite, PaySumReduce, PayProdReduce,
			PayMinMax, PayOrderedFold, PayFloatSum, PayIOPrint:
			return true
		}
		return false
	case IterNested:
		switch pay {
		case PayPure, PayDisjointWrite, PaySumReduce, PayHistogram,
			PayOrderedFold, PayMinMax:
			return true
		}
		return false
	case IterRangeDown, IterWorklist:
		return pay != PayRecurrence
	}
	return true
}

// minTrip is the smallest iteration count under which the production's
// label argument holds (see the PayloadKind comments). The generator never
// goes below it and the minimizer stops shrinking at it.
func minTrip(pay PayloadKind) int {
	switch pay {
	case PayRecurrence:
		return 3
	case PayOrderedFold, PayFirstWrite, PayAliasedWrite:
		return 4
	}
	return 2
}

// coprime returns a stride > 1 coprime with n (injective i -> (i*s) % n).
func coprime(n int, r *rng) int {
	for {
		s := r.rangeInt(3, 19)
		if s%2 == 0 {
			s++
		}
		if gcd(s, n) == 1 {
			return s
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// New generates the program spec for one seed. Identical seeds yield
// identical specs; the renderer is pure, so identical specs yield
// byte-identical source.
func New(seed int64) *Program {
	r := newRNG(seed)
	p := &Program{Seed: seed}
	nLoops := r.rangeInt(1, 4)
	for i := 0; i < nLoops; i++ {
		var it IterShape
		var pay PayloadKind
		for {
			it = IterShape(r.intn(int(numIterShapes)))
			pay = PayloadKind(r.intn(int(numPayloadKinds)))
			if compatible(it, pay) {
				break
			}
		}
		spec := LoopSpec{
			Seq:     i,
			Iter:    it,
			Payload: pay,
			Trip:    r.rangeInt(minTrip(pay), 48),
			K1:      r.rangeInt(2, 9),
			K2:      r.rangeInt(1, 9),
			Noise:   r.intn(3) == 0,
		}
		if it == IterNested {
			spec.Trip = r.rangeInt(2, 8)
			spec.Inner = r.rangeInt(2, 8)
		}
		// The ordered-fold label argument (rearrangement inequality over
		// the positional weights 3^k) needs exact arithmetic: cap total
		// elements at 16 so the fold never wraps int64.
		if pay == PayOrderedFold {
			if it == IterNested {
				spec.Trip = r.rangeInt(2, 4)
				spec.Inner = r.rangeInt(2, 4)
			} else if spec.Trip > 16 {
				spec.Trip = 4 + spec.Trip%13
			}
		}
		if spec.K1 == spec.K2 {
			spec.K2 = spec.K1 + 1 // aliased writes need distinct values
		}
		switch pay {
		case PayHistogram:
			spec.Mod = r.rangeInt(2, 8)
		case PayScatterInj:
			spec.Stride = coprime(spec.Elements(), r)
		}
		if it == IterWorklist {
			spec.Stride = coprime(spec.Elements(), r)
		}
		p.Loops = append(p.Loops, spec)
	}
	return p
}
