package affine

import (
	"math"
	"testing"

	"dca/internal/cfg"
	"dca/internal/irbuild"
)

func TestAbsInt(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0},
		{5, 5},
		{-5, 5},
		{math.MaxInt64, math.MaxInt64},
		{-math.MaxInt64, math.MaxInt64},
		// Regression: -MinInt64 overflows back to MinInt64, so the old
		// absInt returned a negative value here.
		{math.MinInt64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := absInt(c.in); got != c.want {
			t.Errorf("absInt(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := absInt(c.in); got < 0 {
			t.Errorf("absInt(%d) = %d is negative", c.in, got)
		}
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{1, 2, 3, true},
		{-1, -2, -3, true},
		{math.MaxInt64, 0, math.MaxInt64, true},
		{math.MaxInt64, 1, 0, false},
		{math.MaxInt64, math.MaxInt64, 0, false},
		{math.MinInt64, 0, math.MinInt64, true},
		{math.MinInt64, -1, 0, false},
		{math.MinInt64, math.MinInt64, 0, false},
		{math.MinInt64, math.MaxInt64, -1, true},
	}
	for _, c := range cases {
		got, ok := satAdd(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("satAdd(%d, %d) = (%d, %v), want (%d, %v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestSatMul(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, math.MinInt64, 0, true},
		{math.MinInt64, 0, 0, true},
		{1, math.MinInt64, math.MinInt64, true},
		{math.MinInt64, 1, math.MinInt64, true},
		// Regression: the p/b != a overflow probe would panic on
		// MinInt64 / -1 without the explicit MinInt64 guard.
		{math.MinInt64, -1, 0, false},
		{-1, math.MinInt64, 0, false},
		{math.MinInt64, 2, 0, false},
		{3, 4, 12, true},
		{-3, 4, -12, true},
		{math.MaxInt64, 2, 0, false},
		{1 << 32, 1 << 32, 0, false},
		{1 << 31, 1 << 31, 1 << 62, true},
	}
	for _, c := range cases {
		got, ok := satMul(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("satMul(%d, %d) = (%d, %v), want (%d, %v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

// TestHasMultipleInRangeDifferential checks the closed-form residue test
// against the old O(hi-lo) scan it replaced, over small ranges.
func TestHasMultipleInRangeDifferential(t *testing.T) {
	scan := func(lo, hi, g int64) bool {
		for v := lo; v <= hi; v++ {
			if v%g == 0 {
				return true
			}
		}
		return false
	}
	for lo := int64(-15); lo <= 15; lo++ {
		for hi := lo; hi <= 15; hi++ {
			for g := int64(1); g <= 12; g++ {
				want := scan(lo, hi, g)
				if got := hasMultipleInRange(lo, hi, g); got != want {
					t.Fatalf("hasMultipleInRange(%d, %d, %d) = %v, scan = %v", lo, hi, g, got, want)
				}
			}
		}
	}
	// Empty interval.
	if hasMultipleInRange(3, 2, 1) {
		t.Error("empty interval must have no multiples")
	}
}

// TestHasCarriedKDifferential checks the closed-form iteration-distance test
// against the old O(khi-klo) scan: a nonzero k in [klo, khi] with |k| < trip
// (any nonzero k when trip < 0, i.e. the trip count is unknown).
func TestHasCarriedKDifferential(t *testing.T) {
	scan := func(klo, khi, trip int64) bool {
		for k := klo; k <= khi; k++ {
			if k == 0 {
				continue
			}
			if trip >= 0 && absInt(k) >= trip {
				continue
			}
			return true
		}
		return false
	}
	trips := []int64{-1, 0, 1, 2, 3, 5, 8, 40}
	for klo := int64(-12); klo <= 12; klo++ {
		for khi := klo - 1; khi <= 12; khi++ { // khi = klo-1 covers empty intervals
			for _, trip := range trips {
				want := scan(klo, khi, trip)
				if got := hasCarriedK(klo, khi, trip); got != want {
					t.Fatalf("hasCarriedK(%d, %d, trip=%d) = %v, scan = %v", klo, khi, trip, got, want)
				}
			}
		}
	}
}

// TestCarriedClosedFormLargeRange exercises the interval endpoints the old
// scan could never finish: a huge inner trip count makes the residual range
// span ~2^61 values, which the closed form must decide instantly.
func TestCarriedClosedFormLargeRange(t *testing.T) {
	env, loop, store := compileOuterStore(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 2305843009213693951; j++) { m[4*i + j] = i; }
	}
	print(m[0]);
}`)
	if !env.Carried(store, store, loop) {
		t.Error("4i+j with a huge j range overlaps across i: carried dependence")
	}
}

// TestCarriedResidualRangeOverflow is the overflow regression for the rng
// accumulation: c * |step| * (trip-1) wraps int64 (the old code computed a
// garbage range), so Carried must bail to "assume dependence".
func TestCarriedResidualRangeOverflow(t *testing.T) {
	// 4 * 1 * (4611686018427387903 - 1) > MaxInt64.
	env, loop, store := compileOuterStore(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 4611686018427387903; j++) { m[i + 4*j] = i; }
	}
	print(m[0]);
}`)
	if !env.Carried(store, store, loop) {
		t.Error("overflowing residual range must assume dependence")
	}
}

// TestCarriedIntervalEndpointOverflow drives d ± rng past int64: a large
// constant offset between the two subscripts plus a large residual range.
func TestCarriedIntervalEndpointOverflow(t *testing.T) {
	env, loop, _ := compileOuterStore(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 2305843009213693951; j++) { m[4*i + j] = i; }
	}
	print(m[0]);
}`)
	var store Access
	for _, a := range env.Accesses(loop) {
		if a.IsWrite {
			store = a
		}
	}
	// Synthesize a partner access offset by a huge constant so that
	// d + rng overflows.
	far := store
	far.Sub = store.Sub.clone()
	far.Sub.Const += math.MaxInt64 - 100
	if !env.Carried(store, far, loop) {
		t.Error("overflowing interval endpoint must assume dependence")
	}
}

// TestCarriedMinInt64Coefficient: a MinInt64 IV coefficient has no
// representable magnitude; gcd/division reasoning over its saturated |x|
// could wrongly prove independence, so Carried must assume dependence.
func TestCarriedMinInt64Coefficient(t *testing.T) {
	env, loop, store := compileOuterStore(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) { m[2*i] = i; }
	print(m[0]);
}`)
	bad := store
	bad.Sub = store.Sub.clone()
	iv := env.Info[loop].IV
	bad.Sub.Coeffs[iv] = math.MinInt64
	if !env.Carried(bad, store, loop) || !env.Carried(store, bad, loop) {
		t.Error("MinInt64 IV coefficient must assume dependence")
	}
}

// compileOuterStore compiles src and returns the outermost loop of main and
// its (single) affine store access.
func compileOuterStore(t *testing.T, src string) (*Env, *cfg.Loop, Access) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	env := NewEnv(prog.Func("main"))
	loop := env.Loops[0]
	var store Access
	found := false
	for _, a := range env.Accesses(loop) {
		if a.IsWrite {
			store, found = a, true
		}
	}
	if !found {
		t.Fatal("no store access found")
	}
	return env, loop, store
}
