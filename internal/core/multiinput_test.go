package core_test

import (
	"strings"
	"testing"

	"dca/internal/core"
	"dca/internal/irbuild"
	"dca/internal/workloads/plds"
)

func compileProg(t *testing.T, name, src string) core.NamedProgram {
	t.Helper()
	prog, err := irbuild.Compile(name+".mc", src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return core.NamedProgram{Name: name, Prog: prog}
}

// TestMultiInputMCF reproduces the paper's 429.mcf discussion as a
// multi-input experiment: under the test/ref-style input the latent
// dependence is never exercised and DCA says commutative; the adversarial
// input flips the verdict, and the combined result is an unstable
// non-commutative — exactly the false positive the single-input analysis
// would have produced, now surfaced.
func TestMultiInputMCF(t *testing.T) {
	clean := plds.MCF(false)
	dirty := plds.MCF(true)
	cleanProg, err := clean.Compile()
	if err != nil {
		t.Fatal(err)
	}
	dirtyProg, err := dirty.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.AnalyzeAcrossInputs([]core.NamedProgram{
		{Name: "test-input", Prog: cleanProg},
		{Name: "adversarial", Prog: dirtyProg},
	}, clean.KeyFn, clean.KeyLoop, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Combined != core.NonCommutative {
		t.Errorf("combined = %s, want non-commutative", rep.Combined)
	}
	if rep.Stable {
		t.Error("verdicts flip across inputs: must be unstable")
	}
	if !strings.Contains(rep.String(), "adversarial") {
		t.Errorf("report rendering:\n%s", rep)
	}
}

func TestMultiInputAgreement(t *testing.T) {
	mk := func(name string, n int) core.NamedProgram {
		return compileProg(t, name, `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < `+itoa(n)+`; i++) { a[i] = i * 2; }
	print(a[0]);
}`)
	}
	rep, err := core.AnalyzeAcrossInputs([]core.NamedProgram{mk("small", 8), mk("large", 64)}, "main", 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Combined != core.Commutative || !rep.Stable {
		t.Errorf("combined = %s stable=%v, want commutative/stable", rep.Combined, rep.Stable)
	}
}

func TestMultiInputUnexercisedIgnored(t *testing.T) {
	// One input never executes the loop: it contributes no evidence.
	rep, err := core.AnalyzeAcrossInputs([]core.NamedProgram{
		compileProg(t, "empty", `
func main() {
	var n int = 0;
	var a []int = new [8]int;
	for (var i int = 0; i < n; i++) { a[i] = i; }
	print(a[0]);
}`),
		compileProg(t, "full", `
func main() {
	var n int = 8;
	var a []int = new [8]int;
	for (var i int = 0; i < n; i++) { a[i] = i; }
	print(a[0]);
}`),
	}, "main", 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Combined != core.Commutative || !rep.Stable {
		t.Errorf("combined = %s stable=%v", rep.Combined, rep.Stable)
	}
}

func TestMultiInputNoInputs(t *testing.T) {
	if _, err := core.AnalyzeAcrossInputs(nil, "main", 0, core.Options{}); err == nil {
		t.Error("empty input set must error")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
