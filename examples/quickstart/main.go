// Quickstart: run Dynamic Commutativity Analysis on the paper's Fig. 1 —
// the same map operation written over an array and over a linked list.
// Dependence profiling handles the first and fails on the second; DCA
// detects both as commutative.
package main

import (
	"fmt"
	"log"

	"dca/internal/core"
	"dca/internal/depprof"
	"dca/internal/irbuild"
)

const src = `
struct Node { val int; next *Node; }

// Fig. 1(a): array-based map loop.
func mapArray(array []int, n int) {
	for (var i int = 0; i < n; i++) { array[i]++; }
}

// Fig. 1(b): the same map over a pointer-linked list.
func mapList(head *Node) {
	var ptr *Node = head;
	while (ptr != nil) {
		ptr->val++;
		ptr = ptr->next;
	}
}

func main() {
	var a []int = new [64]int;
	mapArray(a, 64);

	var head *Node = nil;
	for (var i int = 0; i < 64; i++) {
		var n *Node = new Node;
		n->val = i;
		n->next = head;
		head = n;
	}
	mapList(head);

	var s int = a[0] + a[63];
	var p *Node = head;
	while (p != nil) { s += p->val; p = p->next; }
	print(s);
}
`

func main() {
	prog, err := irbuild.Compile("fig1.mc", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Dynamic Commutativity Analysis (per loop):")
	rep, err := core.Analyze(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	fmt.Println("\nDependence profiling on the same loops:")
	dp, err := depprof.Analyze(prog, depprof.DefaultPolicy(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dp)

	fmt.Println("\nThe array map (mapArray/L0) is parallel for both techniques.")
	fmt.Println("The list map (mapList/L0) defeats dependence profiling — the")
	fmt.Println("cross-iteration dependence on ptr — but DCA permutes its")
	fmt.Println("iterations, observes identical live-outs, and reports it")
	fmt.Println("commutative: the paper's central result in one example.")
}
