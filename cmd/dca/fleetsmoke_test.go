package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"dca/internal/core"
	"dca/internal/fingerprint"
	"dca/internal/fleet"
	"dca/internal/irbuild"
)

// fleetSmokeSrc: one quick loop first in source order (so the event stream
// produces its first verdict early) followed by three slow loops, so a
// worker killed after the first event dies with its shard still in flight.
const fleetSmokeSrc = `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) { a[i] = i * 3; }
	var s int = 0;
	for (var i int = 0; i < 400; i++) {
		for (var j int = 0; j < 400; j++) { s = s + (i ^ j); }
	}
	var p int = 0;
	for (var i int = 0; i < 400; i++) {
		for (var j int = 0; j < 400; j++) { p = p + (i & j); }
	}
	var q int = 0;
	for (var i int = 0; i < 400; i++) {
		for (var j int = 0; j < 400; j++) { q = q + i + j; }
	}
	print(s); print(p); print(q);
}`

// TestFleetSmokeHelper is not a test: it is the child process body for
// TestFleetSmoke, re-executed from the test binary to run `dca serve` with
// the argument list from the environment.
func TestFleetSmokeHelper(t *testing.T) {
	raw := os.Getenv("DCA_FLEET_SMOKE_ARGS")
	if raw == "" {
		t.Skip("helper process body; run via TestFleetSmoke")
	}
	if err := cmdServe(strings.Split(raw, "\x1f")); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func startServeChild(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestFleetSmokeHelper")
	cmd.Env = append(os.Environ(), "DCA_FLEET_SMOKE_ARGS="+strings.Join(args, "\x1f"))
	cmd.Stderr = new(bytes.Buffer)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// freeAddr reserves a loopback port and releases it for a child to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, url string, child *exec.Cmd) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy; child stderr: %s", url, child.Stderr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// smokeTable renders the deterministic per-loop fields of a report.
func smokeTable(rep *core.ReportJSON) string {
	var b strings.Builder
	for _, l := range rep.Loops {
		fmt.Fprintf(&b, "%s #%d %s %s\n", l.Fn, l.Index, l.Verdict, l.Reason)
	}
	return b.String()
}

// TestFleetSmoke is the multi-process fleet contract: one coordinator and
// two worker processes, a reference analysis with both workers alive, then
// an async analysis during which one worker is SIGKILLed after the first
// streamed verdict — and the merged report must stay byte-identical.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	w1, w2, co := freeAddr(t), freeAddr(t), freeAddr(t)
	w1URL, w2URL, coURL := "http://"+w1, "http://"+w2, "http://"+co
	peers := w1URL + "," + w2URL

	// Workers run cacheless so the second pass recomputes and the kill
	// lands while its shard is genuinely in flight.
	startServeChild(t, "-addr", w1, "-no-cache", "-schedules", "1", "-peers", peers, "-self", w1URL)
	worker2 := startServeChild(t, "-addr", w2, "-no-cache", "-schedules", "1", "-peers", peers, "-self", w2URL)
	coord := startServeChild(t, "-addr", co, "-schedules", "1", "-fleet", peers)
	for _, probe := range []struct {
		url   string
		child *exec.Cmd
	}{{w1URL, worker2}, {w2URL, worker2}, {coURL, coord}} {
		waitHealthy(t, probe.url, probe.child)
	}

	reqBody, _ := json.Marshal(map[string]any{"filename": "smoke.mc", "source": fleetSmokeSrc})

	// Reference pass: both workers alive.
	resp, err := http.Post(coURL+"/analyze", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var ref struct {
		Report *core.ReportJSON `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ref.Report == nil {
		t.Fatalf("reference analyze: status %d, coordinator stderr: %s", resp.StatusCode, coord.Stderr)
	}
	want := smokeTable(ref.Report)
	if len(ref.Report.Loops) < 4 {
		t.Fatalf("reference has %d loops, want >= 4", len(ref.Report.Loops))
	}

	// Kill pass: async run, SIGKILL worker 2 after the first verdict lands.
	resp, err = http.Post(coURL+"/analyze?async=1", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var handle struct {
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&handle); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async analyze: status %d", resp.StatusCode)
	}

	events, err := http.Get(coURL + handle.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	killed := false
	var final fleet.Status
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			State string `json:"state"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.State != "" {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatalf("decode terminal status: %v\n%s", err, line)
			}
			break
		}
		if !killed {
			killed = true
			if err := worker2.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("stream ended before any verdict; kill never landed mid-suite")
	}
	if final.State != "done" || final.Report == nil {
		t.Fatalf("run after worker kill = %+v, want done with report; coordinator stderr: %s",
			final, coord.Stderr)
	}
	if got := smokeTable(final.Report); got != want {
		t.Errorf("report after mid-suite worker kill diverged:\n-- reference --\n%s-- killed --\n%s", want, got)
	}
}

// smokeAnalyze runs one synchronous analyze and returns the verdict table.
func smokeAnalyze(t *testing.T, coURL string, coord *exec.Cmd) string {
	t.Helper()
	reqBody, _ := json.Marshal(map[string]any{"filename": "smoke.mc", "source": fleetSmokeSrc})
	resp, err := http.Post(coURL+"/analyze", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Report *core.ReportJSON `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Report == nil {
		t.Fatalf("analyze: status %d, coordinator stderr: %s", resp.StatusCode, coord.Stderr)
	}
	return smokeTable(out.Report)
}

// scrapeMetric reads one unlabeled sample from a /metrics endpoint.
func scrapeMetric(t *testing.T, url, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %s sample %q: %v", name, line, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestFleetSmokeRejoin is the multi-process recovery contract: a worker is
// SIGKILLed between runs, the fleet keeps answering identically without it,
// and when a replacement process binds the same address the coordinator's
// prober re-admits it and routes subsequent batches to it again.
func TestFleetSmokeRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}

	// Routing hashes worker URLs, so whether the restarted worker is owed
	// any batches depends on the ports the OS hands out. Retry address
	// pairs until the ring splits the program's loops across both workers.
	prog, err := irbuild.Compile("smoke.mc", fleetSmokeSrc)
	if err != nil {
		t.Fatal(err)
	}
	refs := fleet.EnumerateLoops(prog)
	router := fingerprint.NewRouter(prog)
	var w1, w2 string
	for try := 0; ; try++ {
		if try >= 50 {
			t.Fatal("no address pair splits the ring after 50 tries")
		}
		w1, w2 = freeAddr(t), freeAddr(t)
		ring := fleet.NewRing([]string{"http://" + w1, "http://" + w2})
		owners := map[string]bool{}
		for _, ref := range refs {
			owners[ring.Owner(router.Route(ref.Fn, ref.Index).String(), nil)] = true
		}
		if len(owners) == 2 {
			break
		}
	}
	co := freeAddr(t)
	w1URL, w2URL, coURL := "http://"+w1, "http://"+w2, "http://"+co
	peers := w1URL + "," + w2URL

	workerArgs := func(addr, self string) []string {
		return []string{"-addr", addr, "-no-cache", "-schedules", "1", "-peers", peers, "-self", self}
	}
	startServeChild(t, workerArgs(w1, w1URL)...)
	worker2 := startServeChild(t, workerArgs(w2, w2URL)...)
	coord := startServeChild(t, "-addr", co, "-schedules", "1", "-fleet", peers,
		"-probe-interval", "50ms", "-node-retries", "1")
	for _, url := range []string{w1URL, w2URL, coURL} {
		waitHealthy(t, url, coord)
	}

	want := smokeAnalyze(t, coURL, coord)
	if want == "" {
		t.Fatal("reference table is empty")
	}

	// Kill pass: worker 2 is gone for the whole run; the survivor absorbs
	// its shards and the table must not move.
	if err := worker2.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	worker2.Wait()
	if got := smokeAnalyze(t, coURL, coord); got != want {
		t.Errorf("table with worker 2 dead diverged:\n-- reference --\n%s-- killed --\n%s", want, got)
	}

	// Restart on the same address (the ring routes by URL) and wait for
	// the prober to re-admit it.
	restarted := startServeChild(t, workerArgs(w2, w2URL)...)
	waitHealthy(t, w2URL, restarted)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if live, ok := scrapeMetric(t, coURL, "dca_fleet_nodes_live"); ok && live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted worker never re-admitted; coordinator stderr: %s", coord.Stderr)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if rejoins, ok := scrapeMetric(t, coURL, "dca_fleet_rejoins_total"); !ok || rejoins < 1 {
		t.Errorf("dca_fleet_rejoins_total = %v (present=%v), want >= 1", rejoins, ok)
	}

	// Rejoin pass: the table still matches, and the replacement process —
	// which has analyzed nothing so far — actually served its shards.
	if got := smokeAnalyze(t, coURL, coord); got != want {
		t.Errorf("table after rejoin diverged:\n-- reference --\n%s-- rejoined --\n%s", want, got)
	}
	statsResp, err := http.Get(w2URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		LoopsAnalyzed uint64 `json:"loops_analyzed"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.LoopsAnalyzed == 0 {
		t.Error("restarted worker analyzed no loops; batches never reached it")
	}
}
