package fuzzgen

// Minimize delta-debugs a failing program spec: it greedily applies
// shrinking transformations — drop whole loops, drop noise statements,
// narrow iterator domains (trips, nest dims, histogram buckets), simplify
// payload constants — keeping a candidate only when keep reports that the
// original disagreement still reproduces. Transformations operate on the
// spec, never on rendered text, so every candidate stays inside the
// grammar and its ground-truth label remains valid by construction; trips
// never shrink below the production's minTrip, where the label argument
// would stop holding.
//
// keep is called on every candidate (typically a full differential
// re-check); Minimize bounds the number of calls, so a slow or flaky
// predicate cannot run away. The input program is never mutated.
func Minimize(p *Program, keep func(*Program) bool, maxChecks int) *Program {
	if maxChecks <= 0 {
		maxChecks = 200
	}
	checks := 0
	try := func(cand *Program) bool {
		if checks >= maxChecks {
			return false
		}
		checks++
		return keep(cand)
	}
	cur := p.clone()
	for changed := true; changed; {
		changed = false
		// Drop loops, last first (later loops are cheaper to remove: their
		// scaffolding follows the failing loop's in main).
		for i := len(cur.Loops) - 1; i >= 0 && len(cur.Loops) > 1; i-- {
			cand := cur.clone()
			cand.Loops = append(cand.Loops[:i], cand.Loops[i+1:]...)
			if try(cand) {
				cur, changed = cand, true
			}
		}
		// Drop noise statements.
		for i := range cur.Loops {
			if !cur.Loops[i].Noise {
				continue
			}
			cand := cur.clone()
			cand.Loops[i].Noise = false
			if try(cand) {
				cur, changed = cand, true
			}
		}
		// Narrow iterator domains: halve trips toward the label's floor.
		for i := range cur.Loops {
			l := &cur.Loops[i]
			for _, t := range []int{minTrip(l.Payload), l.Trip / 2} {
				if t >= minTrip(l.Payload) && t < l.Trip {
					cand := cur.clone()
					cand.Loops[i].Trip = t
					cand.Loops[i].normalize()
					if try(cand) {
						cur, changed = cand, true
						break
					}
				}
			}
			if l.Iter == IterNested && l.Inner > 2 {
				cand := cur.clone()
				cand.Loops[i].Inner = 2
				cand.Loops[i].normalize()
				if try(cand) {
					cur, changed = cand, true
				}
			}
			if l.Payload == PayHistogram && l.Mod > 2 {
				cand := cur.clone()
				cand.Loops[i].Mod = 2
				if try(cand) {
					cur, changed = cand, true
				}
			}
		}
		// Simplify payload constants.
		for i := range cur.Loops {
			l := &cur.Loops[i]
			if l.K1 > 2 || l.K2 > 1 {
				cand := cur.clone()
				cand.Loops[i].K1, cand.Loops[i].K2 = 2, 1
				cand.Loops[i].normalize()
				if try(cand) {
					cur, changed = cand, true
				}
			}
		}
	}
	return cur
}

// normalize re-establishes spec invariants after a mutation: strides must
// stay coprime with the (possibly shrunk) element count, and aliased
// writes need distinct constants.
func (l *LoopSpec) normalize() {
	if l.Stride != 0 {
		s := 3
		for gcd(s, l.Elements()) != 1 {
			s += 2
		}
		l.Stride = s
	}
	if l.K1 == l.K2 {
		l.K2 = l.K1 + 1
	}
}

func (p *Program) clone() *Program {
	c := &Program{Seed: p.Seed, Loops: make([]LoopSpec, len(p.Loops))}
	copy(c.Loops, p.Loops)
	return c
}
