package parallel_test

import (
	"strings"
	"testing"

	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/irbuild"
	"dca/internal/parallel"
)

// runBoth executes src sequentially and with the given loop parallelized,
// returning both outputs.
func runBoth(t *testing.T, src, fn string, loopIdx, workers int) (seq, par string) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var seqOut strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &seqOut}); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	inst, err := instrument.Loop(prog, fn, loopIdx)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	var parOut strings.Builder
	res, err := parallel.RunLoop(inst, parallel.Options{Workers: workers, Out: &parOut})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatalf("no iterations ran in parallel")
	}
	return seqOut.String(), parOut.String()
}

func TestParallelDoall(t *testing.T) {
	seq, par := runBoth(t, `
func main() {
	var a []int = new [1000]int;
	for (var i int = 0; i < 1000; i++) { a[i] = i * 3 + 1; }
	var s int = 0;
	for (var i int = 0; i < 1000; i++) { s += a[i]; }
	print(s);
}`, "main", 0, 8)
	if seq != par {
		t.Errorf("parallel doall output %q != sequential %q", par, seq)
	}
}

func TestParallelScalarReduction(t *testing.T) {
	seq, par := runBoth(t, `
func main() {
	var a []int = new [5000]int;
	for (var i int = 0; i < 5000; i++) { a[i] = (i * 7) % 13; }
	var s int = 0;
	for (var i int = 0; i < 5000; i++) { s += a[i] * a[i]; }
	print(s);
}`, "main", 1, 8)
	if seq != par {
		t.Errorf("parallel reduction output %q != sequential %q", par, seq)
	}
}

func TestParallelPLDSMap(t *testing.T) {
	seq, par := runBoth(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 500; i++) {
		var n *Node = new Node;
		n->val = i;
		n->next = head;
		head = n;
	}
	var p *Node = head;
	while (p != nil) {
		p->val = p->val * 2 + 1;
		p = p->next;
	}
	var s int = 0;
	p = head;
	while (p != nil) { s += p->val; p = p->next; }
	print(s);
}`, "main", 1, 4)
	if seq != par {
		t.Errorf("parallel PLDS map output %q != sequential %q", par, seq)
	}
}

// TestRefusesOrderedCommit: a last-writer-wins scalar cannot be privatized.
func TestRefusesOrderedCommit(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var last int = 0;
	for (var i int = 0; i < 10; i++) { last = i * 2; }
	print(last);
}`)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := instrument.Loop(prog, "main", 0)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	_, err = parallel.RunLoop(inst, parallel.Options{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "ordered commit") {
		t.Errorf("expected ordered-commit refusal, got %v", err)
	}
}

func TestParallelProductReduction(t *testing.T) {
	seq, par := runBoth(t, `
func main() {
	var p int = 1;
	for (var i int = 1; i <= 12; i++) { p *= i; }
	print(p);
}`, "main", 0, 3)
	if seq != par {
		t.Errorf("parallel product %q != sequential %q", par, seq)
	}
}

func TestWorkerCountClamped(t *testing.T) {
	// More workers than iterations must still work.
	seq, par := runBoth(t, `
func main() {
	var a []int = new [3]int;
	for (var i int = 0; i < 3; i++) { a[i] = i + 10; }
	print(a[0] + a[1] + a[2]);
}`, "main", 0, 16)
	if seq != par {
		t.Errorf("clamped workers output %q != %q", par, seq)
	}
}

func TestExplicitChunkSchedule(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var a []int = new [100]int;
	for (var i int = 0; i < 100; i++) { a[i] = i * i; }
	var s int = 0;
	for (var i int = 0; i < 100; i++) { s += a[i]; }
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	var seq strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &seq}); err != nil {
		t.Fatal(err)
	}
	inst, err := instrument.Loop(prog, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 100, 1000} {
		var par strings.Builder
		if _, err := parallel.RunLoop(inst, parallel.Options{Workers: 4, Chunk: chunk, Out: &par}); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if par.String() != seq.String() {
			t.Errorf("chunk %d: output %q != %q", chunk, par.String(), seq.String())
		}
	}
}
