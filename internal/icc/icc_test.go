package icc_test

import (
	"testing"

	"dca/internal/icc"
	"dca/internal/irbuild"
)

func analyze(t *testing.T, src string) *icc.Report {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return icc.Analyze(prog)
}

func expect(t *testing.T, rep *icc.Report, fn string, idx int, want bool) {
	t.Helper()
	v := rep.Verdict(fn, idx)
	if v == nil {
		t.Fatalf("no verdict for %s/L%d", fn, idx)
	}
	if v.Parallel != want {
		t.Errorf("%s/L%d = %v (%v), want %v", fn, idx, v.Parallel, v.Reasons, want)
	}
}

func TestDoallAccepted(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = i * i; }
	print(a[0]);
}`)
	expect(t, rep, "main", 0, true)
}

// TestPureCallAccepted: ICC inlines pure functions; Polly would reject.
func TestPureCallAccepted(t *testing.T) {
	rep := analyze(t, `
func sq(x int) int { return x * x; }
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = sq(i); }
	print(a[0]);
}`)
	expect(t, rep, "main", 0, true)
}

func TestImpureCallRejected(t *testing.T) {
	rep := analyze(t, `
func store(a []int, i int) { a[i] = i; }
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { store(a, i); }
	print(a[0]);
}`)
	// The callee writes the heap: without dependence info through the call,
	// ICC rejects.
	expect(t, rep, "main", 0, false)
}

func TestScalarReductionAccepted(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s += a[i]; }
	print(s);
}`)
	expect(t, rep, "main", 0, true)
}

func TestMinMaxAccepted(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var m int = 0;
	for (var i int = 0; i < 64; i++) {
		if (a[i] > m) { m = a[i]; }
	}
	print(m);
}`)
	expect(t, rep, "main", 0, true)
}

func TestHistogramRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var b []int = new [64]int;
	var h []int = new [8]int;
	for (var i int = 0; i < 64; i++) { h[b[i]] += 1; }
	print(h[0]);
}`)
	expect(t, rep, "main", 0, false)
}

func TestPLDSRejected(t *testing.T) {
	rep := analyze(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = new Node;
	var p *Node = head;
	while (p != nil) { p->val++; p = p->next; }
	print(head->val);
}`)
	expect(t, rep, "main", 0, false)
}

// TestReadOnlyFieldAccess: reading fields of loop-invariant pointers is
// acceptable to ICC (no field stores to conflict).
func TestReadOnlyFieldAccess(t *testing.T) {
	rep := analyze(t, `
struct Cfg { scale int; }
func main() {
	var c *Cfg = new Cfg;
	c->scale = 3;
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = i * c->scale; }
	print(a[0]);
}`)
	expect(t, rep, "main", 0, true)
}

func TestFieldStoreRejected(t *testing.T) {
	rep := analyze(t, `
struct Acc { sum int; }
func main() {
	var c *Acc = new Acc;
	for (var i int = 0; i < 64; i++) { c->sum += i; }
	print(c->sum);
}`)
	expect(t, rep, "main", 0, false)
}

func TestRecurrenceRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	for (var i int = 1; i < 64; i++) { a[i] = a[i-1] + 1; }
	print(a[63]);
}`)
	expect(t, rep, "main", 0, false)
}
