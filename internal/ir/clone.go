package ir

// Clone deep-copies a function: fresh locals, blocks, instructions and
// terminators. The instrumentation pass clones a function before rewriting
// its loops so the original stays analyzable.
func (f *Func) Clone() *Func {
	g := &Func{Name: f.Name, Result: f.Result, Pos: f.Pos, Prog: f.Prog}
	lm := make(map[*Local]*Local, len(f.Locals))
	for _, l := range f.Locals {
		nl := &Local{Name: l.Name, Index: l.Index, Type: l.Type, Param: l.Param, Synth: l.Synth}
		g.Locals = append(g.Locals, nl)
		lm[l] = nl
		if l.Param {
			g.Params = append(g.Params, nl)
		}
	}
	bm := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Index: b.Index, Name: b.Name, Pos: b.Pos}
		g.Blocks = append(g.Blocks, nb)
		bm[b] = nb
	}
	op := func(o Operand) Operand {
		if o.Local != nil {
			return Operand{Local: lm[o.Local]}
		}
		return o
	}
	ops := func(os []Operand) []Operand {
		if os == nil {
			return nil
		}
		out := make([]Operand, len(os))
		for i, o := range os {
			out[i] = op(o)
		}
		return out
	}
	loc := func(l *Local) *Local {
		if l == nil {
			return nil
		}
		return lm[l]
	}
	for _, b := range f.Blocks {
		nb := bm[b]
		for _, in := range b.Instrs {
			nb.Instrs = append(nb.Instrs, cloneInstr(in, op, ops, loc))
		}
		switch t := b.Term.(type) {
		case *If:
			nb.Term = &If{Cond: op(t.Cond), Then: bm[t.Then], Else: bm[t.Else]}
		case *Goto:
			nb.Term = &Goto{Target: bm[t.Target]}
		case *Ret:
			if t.Val == nil {
				nb.Term = &Ret{}
			} else {
				v := op(*t.Val)
				nb.Term = &Ret{Val: &v}
			}
		}
	}
	return g
}

func cloneInstr(in Instr, op func(Operand) Operand, ops func([]Operand) []Operand, loc func(*Local) *Local) Instr {
	switch i := in.(type) {
	case *BinOp:
		return &BinOp{Dst: loc(i.Dst), Op: i.Op, X: op(i.X), Y: op(i.Y)}
	case *UnOp:
		return &UnOp{Dst: loc(i.Dst), Op: i.Op, X: op(i.X)}
	case *Mov:
		return &Mov{Dst: loc(i.Dst), Src: op(i.Src)}
	case *Load:
		return &Load{Dst: loc(i.Dst), Base: op(i.Base), Index: op(i.Index), FieldName: i.FieldName}
	case *Store:
		return &Store{Base: op(i.Base), Index: op(i.Index), Src: op(i.Src), FieldName: i.FieldName}
	case *Alloc:
		return &Alloc{Dst: loc(i.Dst), Struct: i.Struct, Elem: i.Elem, Count: op(i.Count)}
	case *Call:
		return &Call{Dst: loc(i.Dst), Callee: i.Callee, Builtin: i.Builtin, Args: ops(i.Args)}
	case *Print:
		return &Print{Args: ops(i.Args)}
	case *Intrinsic:
		return &Intrinsic{Dst: loc(i.Dst), Name: i.Name, Args: ops(i.Args)}
	}
	panic("ir: unknown instruction in clone")
}
