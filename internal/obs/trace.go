package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace stages, in lifecycle order. Every analyzed loop emits a subset of
// these: a static-stage outcome, optionally a prescreen skip, optionally a
// verdict-cache lookup, a golden run, zero or more schedule replays, and
// always a final verdict. The whole-program reference execution emits one
// program-level event (empty LoopID) per analysis.
const (
	// StageReference: the uninstrumented whole-program reference execution.
	StageReference = "reference"
	// StageStatic: selection + separation + instrumentation outcome for one
	// loop ("ok", or the short-circuit verdict name).
	StageStatic = "static"
	// StagePrescreen: the coverage prescreen skipped this loop's dynamic
	// stage (outcome "skipped"). Loops that proceed emit no prescreen event.
	StagePrescreen = "prescreen"
	// StageCache: verdict-cache lookup (outcome "hit" or "miss") or store
	// (outcome "error" when the disk write failed).
	StageCache = "cache"
	// StageJournal: write-ahead run-journal activity — outcome "hit" when a
	// loop's verdict was replayed from the journal (skipping both stages),
	// "error" when appending a fresh verdict failed.
	StageJournal = "journal"
	// StagePeer: peer verdict-cache activity in the analysis fleet —
	// outcome "hit" when a ring-owner served a verdict this node did not
	// have, "miss" when the owner had nothing either, "error" when the peer
	// was unreachable or returned garbage (both degrade to a local miss).
	StagePeer = "peer"
	// StageFleet: coordinator dispatch activity — outcome "ok" for a batch
	// served by its ring owner, "error" for a failed batch whose loops were
	// re-dispatched to the ring successor, "retry" for a same-node retry of
	// a transient failure, "hedged" when a straggling batch was re-issued to
	// the successor, "rejoin" when the health prober re-admitted a node, and
	// "fallback" when the coordinator analyzed loops in-process because no
	// live worker remained.
	StageFleet = "fleet"
	// StageProve: the static commutativity prover's attempt for one loop —
	// outcome "proved" (Reason names the closing argument) when the loop's
	// dynamic stage was skipped, "miss" (Reason lists the per-argument
	// obstructions) when it fell through to the dynamic stage.
	StageProve = "prove"
	// StageGolden: the instrumented golden run (outcome "ok" or "trap").
	StageGolden = "golden"
	// StageReplay: one permuted schedule replay (outcome "ok" or "trap").
	StageReplay = "replay"
	// StageVerdict: the loop's final verdict; always the loop's last event.
	StageVerdict = "verdict"
)

// Trace outcomes for the Outcome field (stages also use verdict names).
const (
	OutcomeOK      = "ok"
	OutcomeTrap    = "trap"
	OutcomeHit     = "hit"
	OutcomeMiss    = "miss"
	OutcomeSkipped = "skipped"
	OutcomeError   = "error"
	OutcomeProved  = "proved"
	// Fleet dispatch outcomes (StageFleet).
	OutcomeRetry    = "retry"
	OutcomeHedged   = "hedged"
	OutcomeRejoin   = "rejoin"
	OutcomeFallback = "fallback"
)

// Event is one structured record in a loop's analysis lifecycle. Fields
// are populated per stage; zero fields are omitted from JSONL. LoopID
// carries the high-cardinality identity that metrics deliberately drop.
type Event struct {
	// Time is an RFC3339Nano timestamp. Emitters may leave it empty; the
	// JSONL sink stamps it at write time. Metric sinks ignore it.
	Time string `json:"time,omitempty"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Fn and LoopID identify the loop ("" for program-level events).
	Fn     string `json:"fn,omitempty"`
	LoopID string `json:"loop,omitempty"`
	// Schedule names the permutation of a replay event.
	Schedule string `json:"schedule,omitempty"`
	// Outcome summarizes the stage: "ok", "trap", "hit", "miss", "skipped",
	// or a short-circuit verdict name for static events.
	Outcome string `json:"outcome,omitempty"`
	// Trap is the sandbox trap kind ("fault", "budget", "timeout", "panic")
	// when the stage trapped.
	Trap string `json:"trap,omitempty"`
	// Verdict and Reason mirror the loop result on verdict events.
	Verdict string `json:"verdict,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Provenance is "computed", "cached", or "journaled" on verdict events.
	Provenance string `json:"provenance,omitempty"`
	// Retries counts doubled-budget retries the stage consumed.
	Retries int `json:"retries,omitempty"`
	// DurationMS is the stage's wall-clock cost in milliseconds.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Err carries the underlying error text of a trap.
	Err string `json:"err,omitempty"`
}

// Sink consumes trace events. Implementations must be safe for concurrent
// use: the engine emits replay events from multiple workers at once.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Multi fans one event out to several sinks in order.
type Multi []Sink

// Emit forwards ev to every sink.
func (m Multi) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// JSONL writes one JSON object per event, newline-delimited — the
// `dca analyze -trace` sink. Writes are serialized under a mutex; the
// first write error is retained and subsequent events are dropped.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit writes one event, stamping Time if the emitter left it empty.
func (s *JSONL) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if ev.Time == "" {
		ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	s.err = s.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Collector buffers events in memory — the test and tooling sink.
type Collector struct {
	mu  sync.Mutex
	evs []Event
}

// Emit appends ev.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

// Events returns a snapshot copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.evs))
	copy(out, c.evs)
	return out
}
