package ir

import "fmt"

// Verify checks structural invariants of a function:
//   - every block has a terminator;
//   - branch targets belong to the function;
//   - every operand local and defined local belongs to the function;
//   - local indices are consistent.
//
// Passes run Verify after transforming IR; a failure is a compiler bug.
// The instrumenter verifies every loop clone it produces, so this runs on
// the analysis hot path: membership tests use Local.Index identity checks
// and error strings are only formatted once a violation is found.
func (f *Func) Verify() error {
	for i, l := range f.Locals {
		if l.Index != i {
			return fmt.Errorf("ir: %s: local %q has index %d, want %d", f.Name, l.Name, l.Index, i)
		}
	}
	owns := func(l *Local) bool {
		return l.Index >= 0 && l.Index < len(f.Locals) && f.Locals[l.Index] == l
	}
	var blocks map[*Block]bool
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d != nil && !owns(d) {
				return fmt.Errorf("ir: %s: block %s: %s defines foreign local %q", f.Name, b.Name, in, d.Name)
			}
			for _, u := range in.Uses() {
				if u.Local != nil && !owns(u.Local) {
					return fmt.Errorf("ir: %s: block %s: %s reads foreign local %q", f.Name, b.Name, in, u.Local.Name)
				}
			}
		}
		if b.Term == nil {
			return fmt.Errorf("ir: %s: block %s has no terminator", f.Name, b.Name)
		}
		for _, u := range b.Term.Uses() {
			if u.Local != nil && !owns(u.Local) {
				return fmt.Errorf("ir: %s: block %s terminator reads foreign local %q", f.Name, b.Name, u.Local.Name)
			}
		}
		for _, s := range b.Term.Succs() {
			if blocks == nil {
				blocks = make(map[*Block]bool, len(f.Blocks))
				for _, bb := range f.Blocks {
					blocks[bb] = true
				}
			}
			if !blocks[s] {
				return fmt.Errorf("ir: %s: block %s branches to foreign block %q", f.Name, b.Name, s.Name)
			}
		}
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: function has no blocks", f.Name)
	}
	return nil
}

// Verify checks all functions in the program.
func (p *Program) Verify() error {
	for _, f := range p.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}
