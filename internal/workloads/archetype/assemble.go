package archetype

import (
	"fmt"
	"strings"
)

// Group is a set of instances emitted into one function. Groups of two
// independent instances form the task-parallel sections DiscoPoP detects;
// most groups hold a single instance.
type Group []Instance

// Source assembles a complete MiniC program from instance groups. Each
// group becomes one function; main allocates the data, invokes every group
// in order and prints a checksum so all results are live.
func Source(groups []Group) string {
	var decls, setups, calls strings.Builder
	needPure, needUpd, needPLDS := false, false, false
	var consumes []string
	for _, g := range groups {
		for _, inst := range g {
			switch inst.Kind {
			case DoallCall, UnexercisedICC:
				needPure = true
			case DoallCallRW:
				needUpd = true
			case PLDSMap:
				needPLDS = true
			}
		}
	}
	for gi, g := range groups {
		fname := fmt.Sprintf("work%d", gi)
		var params, body, retExprs []string
		var args []string
		for pi, inst := range g {
			piece := Build(inst)
			// Parameter names are shared inside a group function; suffix
			// them per position to keep them unique.
			rename := map[string]string{}
			for _, p := range piece.Params {
				parts := strings.SplitN(p, " ", 2)
				fresh := fmt.Sprintf("%s_%d", parts[0], pi)
				rename[parts[0]] = fresh
				params = append(params, fresh+" "+parts[1])
			}
			b := piece.Body
			for old, fresh := range rename {
				b = renameIdent(b, old, fresh)
			}
			body = append(body, b)
			if piece.RetExpr != "" {
				retExprs = append(retExprs, piece.RetExpr)
			}
			setups.WriteString(piece.Setup)
			args = append(args, piece.Args...)
			if piece.Consume != "" {
				consumes = append(consumes, piece.Consume)
			}
		}
		ret := ""
		retStmt := ""
		if len(retExprs) > 0 {
			ret = " int"
			retStmt = "\treturn " + strings.Join(retExprs, " + 31 * (") + strings.Repeat(")", len(retExprs)-1) + ";\n"
		}
		fmt.Fprintf(&decls, "func %s(%s)%s {\n%s%s}\n", fname, strings.Join(params, ", "), ret, strings.Join(body, ""), retStmt)
		if len(retExprs) > 0 {
			fmt.Fprintf(&calls, "\tcheck += %s(%s);\n", fname, strings.Join(args, ", "))
		} else {
			fmt.Fprintf(&calls, "\t%s(%s);\n", fname, strings.Join(args, ", "))
		}
	}
	var b strings.Builder
	b.WriteString(SharedDecls(needPure, needUpd, needPLDS))
	b.WriteString(decls.String())
	b.WriteString("func main() {\n")
	b.WriteString(setups.String())
	b.WriteString("\tvar check int = 0;\n")
	b.WriteString(calls.String())
	for _, c := range consumes {
		fmt.Fprintf(&b, "\tcheck += %s;\n", c)
	}
	b.WriteString("\tprint(check);\n}\n")
	return b.String()
}

// renameIdent renames whole-word occurrences of an identifier in a MiniC
// fragment.
func renameIdent(src, old, fresh string) string {
	isWord := func(c byte) bool {
		return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
	}
	var out strings.Builder
	for i := 0; i < len(src); {
		j := strings.Index(src[i:], old)
		if j < 0 {
			out.WriteString(src[i:])
			break
		}
		j += i
		before := j == 0 || !isWord(src[j-1])
		after := j+len(old) >= len(src) || !isWord(src[j+len(old)])
		out.WriteString(src[i:j])
		if before && after {
			out.WriteString(fresh)
		} else {
			out.WriteString(old)
		}
		i = j + len(old)
	}
	return out.String()
}
