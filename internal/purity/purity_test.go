package purity_test

import (
	"testing"

	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/purity"
)

func analyze(t *testing.T, src string) (*ir.Program, *purity.Info) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, purity.Analyze(prog)
}

func TestDirectEffects(t *testing.T) {
	_, info := analyze(t, `
func pureFn(x int) int { return x * 2; }
func printer() { print(1); }
func storer(a []int) { a[0] = 1; }
func allocer() []int { return new [4]int; }
func main() { print(pureFn(1)); printer(); var a []int = allocer(); storer(a); }
`)
	if info.MayIO["pureFn"] || info.WritesHeap["pureFn"] || !info.Pure("pureFn") {
		t.Error("pureFn must be pure")
	}
	if !info.MayIO["printer"] {
		t.Error("printer does I/O")
	}
	if !info.WritesHeap["storer"] || info.Pure("storer") {
		t.Error("storer writes the heap")
	}
	if !info.Allocates["allocer"] {
		t.Error("allocer allocates")
	}
}

func TestTransitiveEffects(t *testing.T) {
	_, info := analyze(t, `
func leaf() { print(1); }
func mid() { leaf(); }
func top() { mid(); }
func cleanMid(x int) int { return x; }
func main() { top(); print(cleanMid(1)); }
`)
	for _, fn := range []string{"leaf", "mid", "top", "main"} {
		if !info.MayIO[fn] {
			t.Errorf("%s must transitively do I/O", fn)
		}
	}
	if info.MayIO["cleanMid"] {
		t.Error("cleanMid is clean")
	}
}

func TestMutualRecursion(t *testing.T) {
	_, info := analyze(t, `
func even(n int) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n int) int { if (n == 0) { print(n); return 0; } return even(n - 1); }
func main() { print(even(4)); }
`)
	if !info.MayIO["even"] || !info.MayIO["odd"] {
		t.Error("mutual recursion must propagate the I/O effect")
	}
}

func TestLoopDoesIO(t *testing.T) {
	prog, info := analyze(t, `
func emit(x int) { print(x); }
func main() {
	for (var i int = 0; i < 3; i++) { emit(i); }
	for (var j int = 0; j < 3; j++) { var x int = j * 2; x++; }
}
`)
	_, loops := cfg.LoopsOf(prog.Func("main"))
	if !info.LoopDoesIO(loops[0].Blocks) {
		t.Error("loop calling emit does I/O")
	}
	if info.LoopDoesIO(loops[1].Blocks) {
		t.Error("pure loop flagged for I/O")
	}
}
