// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`); each
// Benchmark prints the paper-vs-measured rows once and then times the
// regeneration. The Ablation benchmarks exercise the design choices called
// out in DESIGN.md, and the Parallel benchmarks measure real goroutine
// speedups of DCA-parallelized loops on the host.
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"dca/internal/bench"
	"dca/internal/cfg"
	"dca/internal/core"
	"dca/internal/dataflow"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/irbuild"
	"dca/internal/iterrec"
	"dca/internal/parallel"
	"dca/internal/pointer"
	"dca/internal/workloads/npb"
	"dca/internal/workloads/plds"
)

var printOnce sync.Once

// smallSuite runs the two fast NPB proxies; the full suite is exercised by
// BenchmarkTableI (which reports all ten rows once).
func smallSuite(b *testing.B) *bench.Suite {
	b.Helper()
	s := &bench.Suite{}
	for _, name := range []string{"EP", "IS"} {
		r, err := bench.RunNPB(npb.SpecByName(name))
		if err != nil {
			b.Fatal(err)
		}
		s.Results = append(s.Results, r)
	}
	return s
}

var (
	fullSuiteOnce sync.Once
	fullSuite     *bench.Suite
	fullSuiteErr  error
)

func fullNPB(b *testing.B) *bench.Suite {
	b.Helper()
	fullSuiteOnce.Do(func() { fullSuite, fullSuiteErr = bench.RunSuite() })
	if fullSuiteErr != nil {
		b.Fatal(fullSuiteErr)
	}
	return fullSuite
}

// BenchmarkTableI regenerates Table I (dynamic techniques vs DCA over the
// ten NPB proxies) and prints it once.
func BenchmarkTableI(b *testing.B) {
	s := fullNPB(b)
	printOnce.Do(func() {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, s.TableI())
		fmt.Fprintln(os.Stderr, s.TableIII())
		fmt.Fprintln(os.Stderr, s.TableIV())
		fmt.Fprintln(os.Stderr, s.Figure6())
		fmt.Fprintln(os.Stderr, s.Figure7())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range s.Results {
			_ = r.Counts()
		}
	}
}

// BenchmarkTableIII times the static-tool detection over two benchmarks
// (the detection itself, not the workload generation).
func BenchmarkTableIII(b *testing.B) {
	s := smallSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range s.Results {
			row := r.Counts()
			if row.Combined == 0 {
				b.Fatal("no static detections")
			}
		}
	}
}

// BenchmarkTableIV times the accuracy/coverage computation.
func BenchmarkTableIV(b *testing.B) {
	s := smallSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range s.Results {
			if _, fp, fn := r.Accuracy(); fp != 0 || fn != 0 {
				b.Fatal("accuracy regression")
			}
			r.Coverage()
		}
	}
}

// BenchmarkTableII regenerates the PLDS detection table for two
// representative workloads per iteration.
func BenchmarkTableII(b *testing.B) {
	progs := []*plds.Program{plds.ByName("429.mcf"), plds.ByName("ks")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var results []*bench.PLDSResult
		for _, p := range progs {
			r, err := bench.RunPLDS(p)
			if err != nil {
				b.Fatal(err)
			}
			if !r.DCAFound || len(r.BaselinesDetecting) != 0 {
				b.Fatalf("%s: Table II regression: %+v", p.Name, r)
			}
			results = append(results, r)
		}
		_ = bench.TableII(results)
	}
}

// BenchmarkFigure5 regenerates a Fig. 5 speedup point (treeadd).
func BenchmarkFigure5(b *testing.B) {
	p := plds.ByName("treeadd")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunPLDS(p)
		if err != nil {
			b.Fatal(err)
		}
		if r.Speedup < 4 {
			b.Fatalf("treeadd speedup regression: %.2f", r.Speedup)
		}
	}
}

// BenchmarkFigure6 regenerates the EP speedup series (the paper's 55.2x
// headline point).
func BenchmarkFigure6(b *testing.B) {
	r, err := bench.RunNPB(npb.SpecByName("EP"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Speedups()
		if s.DCA < 40 || s.DCA < s.ICC {
			b.Fatalf("EP speedup regression: %+v", s)
		}
	}
}

// BenchmarkFigure7 regenerates the expert-comparison series for MG.
func BenchmarkFigure7(b *testing.B) {
	r, err := bench.RunNPB(npb.SpecByName("MG"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Speedups()
		if s.ExpertFull < s.DCA-0.1 {
			b.Fatalf("expert-full below DCA: %+v", s)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md). ---

const ablationSrc = `
func main() {
	var a []int = new [200]int;
	for (var i int = 0; i < 200; i++) { a[i] = (i * 13 + 7) % 101; }
	var s int = 0;
	for (var i int = 0; i < 200; i++) { s += a[i]; }
	print(s);
}
`

// BenchmarkAblationSchedules measures detection cost against the number of
// permutation schedules (the paper's safety/cost trade-off in §IV-B2).
func BenchmarkAblationSchedules(b *testing.B) {
	prog, err := irbuild.Compile("abl.mc", ablationSrc)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		scheds := []dcart.Schedule{dcart.Reverse{}}
		for i := 1; i < n; i++ {
			scheds = append(scheds, dcart.Random{Seed: int64(i)})
		}
		b.Run(fmt.Sprintf("schedules-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.Analyze(prog, core.Options{Schedules: scheds})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Count(core.Commutative) != 2 {
					b.Fatal("detection changed under schedule count")
				}
			}
		})
	}
}

// BenchmarkAblationSnapshot compares deep live-out snapshots against the
// scalar-only alternative DESIGN.md rejects (deep capture observes heap
// mutations reachable from live-through pointers).
func BenchmarkAblationSnapshot(b *testing.B) {
	prog, err := irbuild.Compile("abl.mc", ablationSrc)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := instrument.Loop(prog, "main", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("deep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := dcart.NewRuntime(dcart.Identity{})
			rt.DebugSnapshots = true
			if _, err := interp.Run(inst.Prog, interp.Config{Runtime: rt}); err != nil {
				b.Fatal(err)
			}
			if len(rt.Snapshots) != 1 || len(rt.SnapshotStrings[0]) < 200 {
				b.Fatal("deep snapshot should serialize the array")
			}
		}
	})
}

// BenchmarkAblationRegions compares iterator recognition under the two
// memory-region granularities: the field-sensitive regions DCA uses, and
// the object-granular ablation (pointer.AnalyzeFieldInsensitive), under
// which the canonical PLDS map loses its payload entirely.
func BenchmarkAblationRegions(b *testing.B) {
	prog, err := irbuild.Compile("abl.mc", `
struct Node { val int; next *Node; }
func walk(head *Node) {
	var p *Node = head;
	while (p != nil) { p->val = p->val * 2 + 1; p = p->next; }
}
func main() {
	var n *Node = new Node;
	walk(n);
	print(n->val);
}`)
	if err != nil {
		b.Fatal(err)
	}
	fn := prog.Func("walk")
	g, loops := cfg.LoopsOf(fn)
	pd := cfg.ComputePostDom(g)
	lv := dataflow.ComputeLiveness(g)
	b.Run("field-sensitive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sep := iterrec.Separate(g, pd, loops[0], pointer.Analyze(prog), lv)
			if !sep.OK {
				b.Fatalf("must separate: %s", sep.Reason)
			}
		}
	})
	b.Run("object-granular", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sep := iterrec.Separate(g, pd, loops[0], pointer.AnalyzeFieldInsensitive(prog), lv)
			if sep.OK {
				b.Fatal("ablation should lose the payload")
			}
		}
	})
}

// --- Real parallel execution on the host. ---

const parallelSrc = `
func main() {
	var a []int = new [30000]int;
	for (var i int = 0; i < 30000; i++) {
		var acc int = 0;
		for (var k int = 0; k < 40; k++) { acc += (i * k + 7) % 13; }
		a[i] = acc;
	}
	var s int = 0;
	for (var i int = 0; i < 30000; i++) { s += a[i]; }
	print(s);
}
`

// BenchmarkParallelDoall measures actual goroutine execution of a
// DCA-parallelized loop at several worker counts.
func BenchmarkParallelDoall(b *testing.B) {
	prog, err := irbuild.Compile("par.mc", parallelSrc)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := instrument.Loop(prog, "main", 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.RunLoop(inst, parallel.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterp measures raw interpreter throughput (the substrate cost
// every dynamic analysis pays).
func BenchmarkInterp(b *testing.B) {
	prog, err := irbuild.Compile("par.mc", parallelSrc)
	if err != nil {
		b.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(res.Steps) // steps per op, reported as "MB/s" = Msteps/s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, interp.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDependenceProfiling measures the trace-based profiler over the
// same program.
func BenchmarkDependenceProfiling(b *testing.B) {
	prog, err := irbuild.Compile("par.mc", parallelSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := depprof.Trace(prog, 0); err != nil {
			b.Fatal(err)
		}
	}
}
