package sandbox

import (
	"context"
	"testing"
	"time"

	"dca/internal/interp"
	"dca/internal/irbuild"
)

// TestRetryBackoffSpendsRetries: budget traps still retry at doubled
// limits with the backoff in place, and the pause grows but stays capped.
func TestRetryBackoffSpendsRetries(t *testing.T) {
	oldBase, oldMax := retryBackoffBase, retryBackoffMax
	retryBackoffBase, retryBackoffMax = time.Millisecond, 4*time.Millisecond
	defer func() { retryBackoffBase, retryBackoffMax = oldBase, oldMax }()

	prog, err := irbuild.Compile("t.mc", `func main() { while (true) { } }`)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() interp.Config { return interp.Config{} }
	oc, spent := RunRetry(nil, prog, mkCfg, Limits{MaxSteps: 100}, nil, 3)
	if oc.OK() || oc.Trap.Kind != Budget {
		t.Fatalf("want Budget trap after retries, got %+v", oc.Trap)
	}
	if spent != 3 {
		t.Fatalf("spent %d retries, want 3", spent)
	}
}

// TestRetryBackoffCancellable: a context cancelled during the backoff
// pause stops the retry loop immediately — the last real outcome comes
// back, with no further execution.
func TestRetryBackoffCancellable(t *testing.T) {
	oldBase, oldMax := retryBackoffBase, retryBackoffMax
	retryBackoffBase, retryBackoffMax = time.Hour, time.Hour // park in backoff
	defer func() { retryBackoffBase, retryBackoffMax = oldBase, oldMax }()

	prog, err := irbuild.Compile("t.mc", `func main() { while (true) { } }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var spent int
	var oc *Outcome
	go func() {
		defer close(done)
		oc, spent = RunRetry(ctx, prog, func() interp.Config { return interp.Config{} },
			Limits{MaxSteps: 100}, nil, 3)
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt trap and enter backoff
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunRetry did not return after cancellation during backoff")
	}
	if oc.OK() || oc.Trap.Kind != Budget {
		t.Fatalf("want the pre-backoff Budget outcome, got %+v", oc.Trap)
	}
	if spent != 1 {
		t.Fatalf("spent = %d, want 1 (the retry whose backoff was cancelled)", spent)
	}
}

// TestBackoffGrowth: the pause doubles per spent retry and caps at
// retryBackoffMax.
func TestBackoffGrowth(t *testing.T) {
	oldBase, oldMax := retryBackoffBase, retryBackoffMax
	retryBackoffBase, retryBackoffMax = 5*time.Millisecond, 250*time.Millisecond
	defer func() { retryBackoffBase, retryBackoffMax = oldBase, oldMax }()

	for _, tc := range []struct {
		spent int
		want  time.Duration
	}{{1, 5 * time.Millisecond}, {2, 10 * time.Millisecond}, {3, 20 * time.Millisecond}, {7, 250 * time.Millisecond}, {40, 250 * time.Millisecond}} {
		d := retryBackoffBase << uint(tc.spent-1)
		if d > retryBackoffMax || d <= 0 {
			d = retryBackoffMax
		}
		if d != tc.want {
			t.Errorf("spent %d: backoff %v, want %v", tc.spent, d, tc.want)
		}
	}
}
