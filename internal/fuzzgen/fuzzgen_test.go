package fuzzgen

import (
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/irbuild"
)

// TestDeterministic: the same seed yields byte-identical source — the
// repro contract every campaign failure line depends on.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := New(seed).Render()
		b := New(seed).Render()
		if a != b {
			t.Fatalf("seed %d: renders differ:\n%s\n----\n%s", seed, a, b)
		}
	}
	if New(1).Render() == New(2).Render() {
		t.Fatal("distinct seeds rendered identically")
	}
}

// TestGeneratedProgramsCompileAndRun: every generated program must pass
// the whole frontend and execute cleanly within a modest budget — traps in
// a campaign should come from analysis pressure, not generator bugs.
func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		p := New(seed)
		src := p.Render()
		prog, err := irbuild.Compile("fuzz.mc", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		if _, err := interp.Run(prog, interp.Config{MaxSteps: 5_000_000}); err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
	}
}

// TestGrammarCoverage: over a modest seed range the generator must reach
// every iterator shape and every payload kind — otherwise the campaign's
// claimed coverage silently narrows.
func TestGrammarCoverage(t *testing.T) {
	iters := map[IterShape]bool{}
	pays := map[PayloadKind]bool{}
	for seed := int64(0); seed < 400; seed++ {
		for _, l := range New(seed).Loops {
			iters[l.Iter] = true
			pays[l.Payload] = true
		}
	}
	for s := IterShape(0); s < numIterShapes; s++ {
		if !iters[s] {
			t.Errorf("iterator %v never generated", s)
		}
	}
	for p := PayloadKind(0); p < numPayloadKinds; p++ {
		if !pays[p] {
			t.Errorf("payload %v never generated", p)
		}
	}
}

// TestLabelsCoverEveryLoopFn: every rendered fz function carries a label
// and is present in the source.
func TestLabelsCoverEveryLoopFn(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := New(seed)
		src := p.Render()
		for fn, label := range p.Labels() {
			if !strings.Contains(src, "func "+fn+"(") {
				t.Fatalf("seed %d: labeled fn %s (%v) missing from source", seed, fn, label)
			}
		}
	}
}

// TestMinimizeShrinksAndPreservesPredicate: minimizing against a simple
// structural predicate drops unrelated loops and narrows trips while the
// predicate keeps holding, and never violates label floors.
func TestMinimizeShrinksAndPreservesPredicate(t *testing.T) {
	var p *Program
	for seed := int64(0); ; seed++ {
		p = New(seed)
		n := 0
		for _, l := range p.Loops {
			if l.Label() == LabelNonCommutative {
				n++
			}
		}
		if n >= 1 && len(p.Loops) >= 3 {
			break
		}
	}
	// Predicate: the program still contains a non-commutative production
	// that compiles — a stand-in for "the disagreement reproduces".
	keep := func(c *Program) bool {
		has := false
		for _, l := range c.Loops {
			if l.Label() == LabelNonCommutative {
				has = true
			}
		}
		if !has {
			return false
		}
		_, err := irbuild.Compile("m.mc", c.Render())
		return err == nil
	}
	min := Minimize(p, keep, 0)
	if !keep(min) {
		t.Fatal("minimized program no longer satisfies the predicate")
	}
	if len(min.Loops) >= len(p.Loops) && len(p.Loops) > 1 {
		t.Errorf("minimizer dropped no loops: %d -> %d", len(p.Loops), len(min.Loops))
	}
	for _, l := range min.Loops {
		if l.Trip < minTrip(l.Payload) {
			t.Errorf("trip %d below label floor %d for %v", l.Trip, minTrip(l.Payload), l.Payload)
		}
		if l.Stride != 0 && gcd(l.Stride, l.Elements()) != 1 {
			t.Errorf("stride %d not coprime with %d after shrink", l.Stride, l.Elements())
		}
	}
}
