// Package diff is the differential harness over the fuzzgen generator: it
// pushes every generated program through the full DCA pipeline under the
// existing sandbox budgets and cross-checks the outcome three ways —
//
//  1. DCA verdict vs. the generator's ground-truth label. A commutative
//     verdict on a non-commutative label is a soundness violation and
//     fails the campaign hard; divergence evidence on a commutative label
//     ("label violation") is equally hard — one of the generator's proof
//     or the analyzer is wrong, and either must be fixed.
//  2. DCA vs. the five baseline detectors (dependence profiling, DiscoPoP,
//     idioms, Polly, ICC), logged as precision/soundness deltas per
//     baseline — never campaign failures; static over-claims on
//     non-commutative loops are exactly the paper's point.
//  3. Parallel-executor output vs. the sequential golden run for every
//     loop DCA marks commutative whose payload is safe for the
//     privatization scheme — the end-to-end oracle that closes the loop
//     with internal/parallel. Divergence fails hard.
//
// Disagreements are shrunk by the fuzzgen minimizer and persisted into the
// regression corpus (internal/fuzzgen/corpus), deduplicated by loop
// fingerprint; the corpus replays in ordinary `go test` runs.
package diff

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/discopop"
	"dca/internal/fingerprint"
	"dca/internal/fuzzgen"
	"dca/internal/icc"
	"dca/internal/idioms"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/parallel"
	"dca/internal/polly"
	"dca/internal/sandbox"
	"dca/internal/vm"
)

// BaselineNames lists the five baseline detectors the harness runs
// differentially against DCA.
var BaselineNames = []string{"depprof", "discopop", "idioms", "polly", "icc"}

// Options configures one differential check.
type Options struct {
	// Schedules are the permutations DCA tests; default Reverse + 2 random.
	// Reverse must stay in the set: the generator's non-commutative label
	// arguments are proofs about the reversed order specifically.
	Schedules []dcart.Schedule
	// MaxSteps / Timeout bound every execution (defaults 2M steps, 5s).
	MaxSteps int64
	Timeout  time.Duration
	// ParWorkers are the worker counts the parallel oracle exercises
	// (default {2}).
	ParWorkers []int
	// Baselines enables the five-detector differential comparison.
	Baselines bool
}

func (o Options) normalized() Options {
	if len(o.Schedules) == 0 {
		o.Schedules = []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}, dcart.Random{Seed: 2}}
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 2_000_000
	}
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if len(o.ParWorkers) == 0 {
		o.ParWorkers = []int{2}
	}
	return o
}

// Violation kinds.
const (
	KindSoundness   = "soundness"
	KindLabel       = "label"
	KindParallelDiv = "parallel-divergence"
	// KindExecDiv: the bytecode VM and the tree-walking interpreter
	// disagreed on the same program — output bytes, step count, or error.
	// The two executors are contractually identical; any divergence is an
	// executor bug and fails the campaign hard.
	KindExecDiv = "exec-divergence"
	// KindProverDiv: the static commutativity prover declared a loop
	// commutative but the dynamic stage (prover disabled) produced
	// divergence evidence on the same loop. The proof and the evidence
	// cannot both be right; either way the prover is unsound and the
	// campaign fails hard.
	KindProverDiv = "prover-divergence"
)

// Violation is one hard disagreement in a checked program.
type Violation struct {
	Kind    string
	Fn      string
	Index   int
	Label   fuzzgen.Label
	Verdict string
	Detail  string
}

// LoopOutcome records one loop's cross-check.
type LoopOutcome struct {
	Fn      string
	Index   int
	Labeled bool
	Label   fuzzgen.Label
	Verdict core.Verdict
	Reason  string
	// Proved marks a verdict decided by the static commutativity prover
	// (no execution evidence); these loops are re-analyzed with the prover
	// disabled and cross-checked against the dynamic verdict.
	Proved bool
	// ParallelChecked/ParallelRefused report the end-to-end oracle: checked
	// means at least one worker-count ran to completion and was compared;
	// refused means the executor declined (unprivatizable env) or trapped.
	ParallelChecked bool
	ParallelRefused bool
	// Baselines maps detector name -> claims-parallel, present when the
	// baseline comparison ran.
	Baselines map[string]bool
}

// Result is the differential outcome for one generated program.
type Result struct {
	Seed    int64
	Source  string
	Trapped bool
	// TrapKind classifies a skipped program: "compile", "fault", "budget",
	// "timeout", "panic", or "error".
	TrapKind   string
	TrapDetail string
	Loops      []LoopOutcome
	Violations []Violation
}

// Check runs one generated program through the full differential harness.
// It never panics and never aborts a campaign: a program that traps at any
// stage (compile, reference execution, analysis) comes back with Trapped
// set and is counted, not fatal.
func Check(p *fuzzgen.Program, opt Options) (res *Result) {
	opt = opt.normalized()
	res = &Result{Seed: p.Seed}
	defer func() {
		if r := recover(); r != nil {
			res.Trapped = true
			res.TrapKind = "panic"
			res.TrapDetail = fmt.Sprint(r)
		}
	}()
	res.Source = p.Render()
	prog, err := irbuild.Compile(fmt.Sprintf("fuzz-seed-%d.mc", p.Seed), res.Source)
	if err != nil {
		res.Trapped = true
		res.TrapKind = "compile"
		res.TrapDetail = err.Error()
		return res
	}

	// Cross-check 0: the two executors themselves. Both run the whole
	// program directly (bypassing the process-global VM toggle, which a
	// concurrent campaign must not flip); any divergence in output, steps,
	// or error is an executor bug, minimized and persisted like any other
	// violation.
	if detail := execDiverge(prog, opt.MaxSteps); detail != "" {
		res.Violations = append(res.Violations, Violation{
			Kind: KindExecDiv, Fn: "main", Index: 0, Verdict: "divergent", Detail: detail,
		})
	}

	limits := sandbox.Limits{MaxSteps: opt.MaxSteps, Timeout: opt.Timeout}
	var refOut strings.Builder
	if oc := sandbox.Run(nil, prog, interp.Config{Out: &refOut}, limits, nil); !oc.OK() {
		res.Trapped = true
		res.TrapKind = oc.Trap.Kind.String()
		res.TrapDetail = oc.Trap.Error()
		return res
	}

	rep, err := core.Analyze(prog, core.Options{
		Schedules: opt.Schedules,
		MaxSteps:  opt.MaxSteps,
		Timeout:   opt.Timeout,
	})
	if err != nil {
		res.Trapped = true
		res.TrapKind = trapKindOf(err)
		res.TrapDetail = err.Error()
		return res
	}

	labels := p.Labels()
	for _, lr := range rep.Loops {
		out := LoopOutcome{Fn: lr.Fn, Index: lr.Index, Verdict: lr.Verdict, Reason: lr.Reason,
			Proved: lr.Provenance == core.ProvenanceProved}
		if label, ok := labels[lr.Fn]; ok {
			out.Labeled = true
			out.Label = label
			// Cross-check 1: verdict vs. ground truth. Only the two
			// definitive verdicts can disagree with a label; exclusion,
			// inseparability, and resource exhaustion are coverage loss,
			// not evidence.
			switch {
			case label == fuzzgen.LabelNonCommutative && lr.Verdict == core.Commutative:
				detail := "DCA reported a provably order-dependent loop commutative"
				if out.Proved {
					detail = "the static prover declared a provably order-dependent loop commutative"
				}
				res.Violations = append(res.Violations, Violation{
					Kind: KindSoundness, Fn: lr.Fn, Index: lr.Index, Label: label,
					Verdict: lr.Verdict.String(),
					Detail:  detail,
				})
			case label == fuzzgen.LabelCommutative && lr.Verdict == core.NonCommutative:
				res.Violations = append(res.Violations, Violation{
					Kind: KindLabel, Fn: lr.Fn, Index: lr.Index, Label: label,
					Verdict: lr.Verdict.String(),
					Detail:  "DCA produced divergence evidence on a provably commutative loop: " + lr.Reason,
				})
			}
		}
		res.Loops = append(res.Loops, out)
	}

	// Cross-check 4: every statically proved verdict against the dynamic
	// oracle. Re-analyze with the prover disabled and demand that no proved
	// loop comes back NonCommutative — divergence evidence against a proof
	// means the prover is unsound. Coverage-loss verdicts (not-executed,
	// resource-exhausted, failed) are not disagreement: the proof needs no
	// execution evidence, which is the point of having it.
	anyProved := false
	for _, out := range res.Loops {
		if out.Proved {
			anyProved = true
			break
		}
	}
	if anyProved {
		dyn, err := core.Analyze(prog, core.Options{
			Schedules: opt.Schedules,
			MaxSteps:  opt.MaxSteps,
			Timeout:   opt.Timeout,
			NoProve:   true,
		})
		if err == nil {
			for _, out := range res.Loops {
				if !out.Proved {
					continue
				}
				dr := dyn.Result(out.Fn, out.Index)
				if dr != nil && dr.Verdict == core.NonCommutative {
					res.Violations = append(res.Violations, Violation{
						Kind: KindProverDiv, Fn: out.Fn, Index: out.Index, Label: out.Label,
						Verdict: out.Verdict.String(),
						Detail:  "dynamic stage (prover disabled) found divergence on a static-proved loop: " + dr.Reason,
					})
				}
			}
		}
	}

	// Cross-check 3: the end-to-end parallel oracle.
	for i := range res.Loops {
		out := &res.Loops[i]
		if !out.Labeled || out.Verdict != core.Commutative {
			continue
		}
		spec := p.SpecByFn(out.Fn)
		if spec == nil || !spec.ParallelSafe() {
			continue
		}
		checkParallel(prog, out, refOut.String(), opt, res)
	}

	// Cross-check 2: the five baselines, logged as deltas only.
	if opt.Baselines {
		runBaselines(prog, opt, res)
	}
	return res
}

// execOutcome captures one executor's complete observable behaviour on a
// program: output bytes, executed steps, the error (empty = clean), and a
// recovered panic message (empty = no panic).
type execOutcome struct {
	out      string
	steps    int64
	err      string
	trapKind string
	panicked string
}

// stepCounter is the slice of the executor contract execDiverge needs.
type stepCounter interface {
	Call(fn *ir.Func, args []ir.Value, parent *interp.Frame) (ir.Value, error)
	Steps() int64
}

// runExec runs main() to completion under one executor, converting panics
// into a comparable outcome instead of unwinding the harness.
func runExec(ex stepCounter, main *ir.Func, buf *strings.Builder) (oc execOutcome) {
	defer func() {
		oc.out = buf.String()
		oc.steps = ex.Steps()
		if r := recover(); r != nil {
			oc.panicked = fmt.Sprint(r)
		}
	}()
	if _, err := ex.Call(main, nil, nil); err != nil {
		oc.err = err.Error()
		oc.trapKind = sandbox.Classify(err).String()
	}
	return oc
}

// execDiverge runs the program under the tree-walking interpreter and the
// bytecode VM and describes the first observable divergence ("" = none).
func execDiverge(prog *ir.Program, maxSteps int64) string {
	main := prog.Func("main")
	if main == nil {
		return ""
	}
	var bufI, bufV strings.Builder
	oi := runExec(interp.New(prog, interp.Config{Out: &bufI, MaxSteps: maxSteps}), main, &bufI)
	ov := runExec(vm.New(prog, interp.Config{Out: &bufV, MaxSteps: maxSteps}), main, &bufV)
	switch {
	case oi.panicked != ov.panicked:
		return fmt.Sprintf("panic divergence: interp %q vs vm %q", oi.panicked, ov.panicked)
	case oi.trapKind != ov.trapKind:
		return fmt.Sprintf("trap-category divergence: interp %q (%s) vs vm %q (%s)", oi.trapKind, oi.err, ov.trapKind, ov.err)
	case oi.err != ov.err:
		return fmt.Sprintf("error divergence: interp %q vs vm %q", oi.err, ov.err)
	case oi.out != ov.out:
		return fmt.Sprintf("output divergence: interp %q vs vm %q", truncate(oi.out), truncate(ov.out))
	case oi.steps != ov.steps:
		return fmt.Sprintf("step-count divergence: interp %d vs vm %d", oi.steps, ov.steps)
	}
	return ""
}

// checkParallel runs one DCA-commutative loop through the goroutine
// executor at each configured worker count and compares whole-program
// output with the sequential reference.
func checkParallel(prog *ir.Program, out *LoopOutcome, refOut string, opt Options, res *Result) {
	inst, err := instrument.Loop(prog, out.Fn, out.Index)
	if err != nil {
		out.ParallelRefused = true
		return
	}
	for _, w := range opt.ParWorkers {
		var buf strings.Builder
		pres, err := parallel.RunLoop(inst, parallel.Options{
			Workers: w, Out: &buf, MaxSteps: opt.MaxSteps, Timeout: opt.Timeout,
		})
		if err != nil {
			// Refusal (unprivatizable env, e.g. a min/max accumulator) or a
			// worker trap: logged, never a divergence.
			out.ParallelRefused = true
			return
		}
		if pres.Iterations == 0 {
			return
		}
		if buf.String() != refOut {
			out.ParallelChecked = true
			res.Violations = append(res.Violations, Violation{
				Kind: KindParallelDiv, Fn: out.Fn, Index: out.Index, Label: out.Label,
				Verdict: out.Verdict.String(),
				Detail: fmt.Sprintf("parallel output (workers=%d) diverged from sequential golden: %q vs %q",
					w, truncate(buf.String()), truncate(refOut)),
			})
			return
		}
	}
	out.ParallelChecked = true
}

// runBaselines attaches the five detectors' claims to every labeled loop.
// One traced execution serves both dependence profilers, as in cmd/dca.
func runBaselines(prog *ir.Program, opt Options, res *Result) {
	prof, err := depprof.Trace(prog, opt.MaxSteps)
	if err != nil {
		return
	}
	dp := depprof.AnalyzeProfile(prog, prof, depprof.DefaultPolicy())
	dpp := discopop.AnalyzeProfile(prog, prof)
	idi := idioms.Analyze(prog)
	pol := polly.Analyze(prog)
	ic := icc.Analyze(prog)
	claims := func(fn string, idx int) map[string]bool {
		m := map[string]bool{}
		if v := dp.Verdict(fn, idx); v != nil {
			m["depprof"] = v.Parallel
		}
		if v := dpp.Verdict(fn, idx); v != nil {
			m["discopop"] = v.Parallel
		}
		if v := idi.Verdict(fn, idx); v != nil {
			m["idioms"] = v.Parallel
		}
		if v := pol.Verdict(fn, idx); v != nil {
			m["polly"] = v.Parallel
		}
		if v := ic.Verdict(fn, idx); v != nil {
			m["icc"] = v.Parallel
		}
		return m
	}
	for i := range res.Loops {
		if res.Loops[i].Labeled {
			res.Loops[i].Baselines = claims(res.Loops[i].Fn, res.Loops[i].Index)
		}
	}
}

// trapKindOf classifies an analysis-level error.
func trapKindOf(err error) string {
	var trap *sandbox.Trap
	if errors.As(err, &trap) {
		return trap.Kind.String()
	}
	return "error"
}

func truncate(s string) string {
	const max = 120
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

// LoopFingerprint computes the structural fingerprint of one loop in a
// generated program — the corpus dedup key. Falls back to the program
// fingerprint when the loop cannot be instrumented.
func LoopFingerprint(src, fn string, index int) (string, error) {
	prog, err := irbuild.Compile("corpus.mc", src)
	if err != nil {
		return "", err
	}
	if inst, err := instrument.Loop(prog, fn, index); err == nil {
		return fingerprint.Loop(prog, fn, index, inst, fingerprint.Inputs{}).String(), nil
	}
	return fingerprint.Run(prog, fingerprint.Inputs{}).String(), nil
}

// CampaignOptions configures a fuzzing campaign: Count programs generated
// from consecutive seeds starting at Seed, checked on Jobs workers.
type CampaignOptions struct {
	// Seed is the campaign seed. Program i is generated from seed Seed+i,
	// so any failure reproduces with `dca fuzz -seed <Seed+i> -count 1`.
	// Seed 0 is an ordinary fixed seed — seeds are never derived from the
	// clock, here or anywhere in the generator.
	Seed  int64
	Count int
	// Jobs bounds concurrent program checks (default GOMAXPROCS).
	Jobs int
	// Wall caps campaign wall-clock time; the campaign stops dispatching
	// when exceeded and reports WallCapped (0 = uncapped).
	Wall  time.Duration
	Check Options
	// CorpusDir, when non-empty, receives minimized counterexamples
	// (deduplicated by loop fingerprint).
	CorpusDir string
	// MinimizeChecks bounds re-checks spent shrinking one failure
	// (default 200).
	MinimizeChecks int
	// Log receives the campaign header, per-failure repro lines, and the
	// summary (nil = silent).
	Log io.Writer
}

// BaselineStat aggregates one detector's claims against the ground truth.
type BaselineStat struct {
	// OnCommutative / LabeledCommutative: of the loops labeled commutative
	// that the baseline saw, how many it also claimed parallel — the
	// precision delta against DCA.
	OnCommutative      int `json:"on_commutative"`
	LabeledCommutative int `json:"labeled_commutative"`
	// OnNonCommutative / LabeledNonCommutative: how many provably
	// order-dependent loops the baseline claimed parallel — a static
	// over-claim, logged, never a campaign failure.
	OnNonCommutative      int `json:"on_non_commutative"`
	LabeledNonCommutative int `json:"labeled_non_commutative"`
}

// Stats is the campaign aggregate.
type Stats struct {
	CampaignSeed int64          `json:"campaign_seed"`
	Requested    int            `json:"requested"`
	Completed    int            `json:"completed"`
	Trapped      int            `json:"trapped"`
	TrapKinds    map[string]int `json:"trap_kinds,omitempty"`
	// Verdicts is the verdict distribution over every analyzed loop
	// (labeled productions and unlabeled scaffolding alike).
	Verdicts map[string]int `json:"verdicts"`
	// Labels counts labeled loops by ground truth; LabelVerdicts maps
	// "label/verdict" to a count for the full confusion surface.
	Labels        map[string]int `json:"labels"`
	LabelVerdicts map[string]int `json:"label_verdicts"`
	// Parallel oracle counters.
	ParallelChecked int `json:"parallel_checked"`
	ParallelRefused int `json:"parallel_refused"`
	// ProvedLoops counts loops the static commutativity prover decided
	// (each one cross-checked against the prover-disabled dynamic verdict).
	ProvedLoops int `json:"proved_loops"`
	// Hard-failure counters (must all be zero for a healthy campaign).
	SoundnessViolations int                      `json:"soundness_violations"`
	LabelViolations     int                      `json:"label_violations"`
	ParallelDivergences int                      `json:"parallel_divergences"`
	ExecDivergences     int                      `json:"exec_divergences"`
	ProverDivergences   int                      `json:"prover_divergences"`
	Baselines           map[string]*BaselineStat `json:"baselines,omitempty"`
	Seconds             float64                  `json:"seconds"`
	ProgramsPerSec      float64                  `json:"programs_per_sec"`
	TrapRate            float64                  `json:"trap_rate"`
	WallCapped          bool                     `json:"wall_capped,omitempty"`
}

// Violations returns the total hard-failure count.
func (s *Stats) ViolationCount() int {
	return s.SoundnessViolations + s.LabelViolations + s.ParallelDivergences +
		s.ExecDivergences + s.ProverDivergences
}

// Failure is one campaign disagreement after minimization.
type Failure struct {
	Violation
	// Seed regenerates the original program: `dca fuzz -seed Seed -count 1`.
	Seed  int64
	Repro string
	// Minimized is the shrunk spec, Source its rendering.
	Minimized *fuzzgen.Program
	Source    string
	// CorpusPath is where the entry was written ("" when deduplicated
	// against an existing isomorphic entry or no corpus dir configured).
	CorpusPath string
	Deduped    bool
}

// RunCampaign generates and differentially checks Count programs. It
// returns the aggregate stats and every (minimized) failure; err is
// reserved for campaign-infrastructure problems — program-level traps and
// violations never abort the run.
func RunCampaign(ctx context.Context, opt CampaignOptions) (*Stats, []*Failure, error) {
	if opt.Count <= 0 {
		opt.Count = 100
	}
	if opt.Jobs <= 0 {
		opt.Jobs = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Wall > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Wall)
		defer cancel()
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format, args...)
		}
	}
	logf("dca fuzz: campaign seed=%d count=%d jobs=%d (repro any failure with its printed seed)\n",
		opt.Seed, opt.Count, opt.Jobs)

	stats := &Stats{
		CampaignSeed:  opt.Seed,
		Requested:     opt.Count,
		TrapKinds:     map[string]int{},
		Verdicts:      map[string]int{},
		Labels:        map[string]int{},
		LabelVerdicts: map[string]int{},
		Baselines:     map[string]*BaselineStat{},
	}
	var (
		mu       sync.Mutex
		failures []*Failure
		wg       sync.WaitGroup
	)
	start := time.Now()
	sem := make(chan struct{}, opt.Jobs)
	for i := 0; i < opt.Count; i++ {
		if ctx.Err() != nil {
			stats.WallCapped = true
			break
		}
		seed := opt.Seed + int64(i)
		sem <- struct{}{}
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			res := Check(fuzzgen.New(seed), opt.Check)
			mu.Lock()
			defer mu.Unlock()
			mergeStats(stats, res)
			for _, v := range res.Violations {
				f := handleFailure(seed, v, opt, logf)
				failures = append(failures, f)
			}
		}(seed)
	}
	wg.Wait()
	stats.Seconds = time.Since(start).Seconds()
	done := stats.Completed + stats.Trapped
	if stats.Seconds > 0 {
		stats.ProgramsPerSec = float64(done) / stats.Seconds
	}
	if done > 0 {
		stats.TrapRate = float64(stats.Trapped) / float64(done)
	}
	if stats.WallCapped {
		logf("dca fuzz: wall-clock cap hit after %d of %d programs\n", done, opt.Count)
	}
	return stats, failures, nil
}

// mergeStats folds one program result into the campaign aggregate.
// Caller holds the stats lock.
func mergeStats(s *Stats, res *Result) {
	for _, v := range res.Violations {
		switch v.Kind {
		case KindSoundness:
			s.SoundnessViolations++
		case KindLabel:
			s.LabelViolations++
		case KindParallelDiv:
			s.ParallelDivergences++
		case KindExecDiv:
			s.ExecDivergences++
		case KindProverDiv:
			s.ProverDivergences++
		}
	}
	if res.Trapped {
		s.Trapped++
		s.TrapKinds[res.TrapKind]++
		return
	}
	s.Completed++
	for _, lo := range res.Loops {
		s.Verdicts[lo.Verdict.String()]++
		if lo.Proved {
			s.ProvedLoops++
		}
		if !lo.Labeled {
			continue
		}
		s.Labels[lo.Label.String()]++
		s.LabelVerdicts[lo.Label.String()+"/"+lo.Verdict.String()]++
		if lo.ParallelChecked {
			s.ParallelChecked++
		}
		if lo.ParallelRefused {
			s.ParallelRefused++
		}
		for name, claims := range lo.Baselines {
			bs := s.Baselines[name]
			if bs == nil {
				bs = &BaselineStat{}
				s.Baselines[name] = bs
			}
			switch lo.Label {
			case fuzzgen.LabelCommutative:
				bs.LabeledCommutative++
				if claims {
					bs.OnCommutative++
				}
			case fuzzgen.LabelNonCommutative:
				bs.LabeledNonCommutative++
				if claims {
					bs.OnNonCommutative++
				}
			}
		}
	}
}

// handleFailure minimizes one violation, writes it to the corpus, and logs
// the repro line. Caller holds the stats lock (minimization is expensive
// but failures are rare by design; serializing them keeps corpus writes
// race-free).
func handleFailure(seed int64, v Violation, opt CampaignOptions, logf func(string, ...any)) *Failure {
	f := &Failure{
		Violation: v,
		Seed:      seed,
		Repro:     fmt.Sprintf("dca fuzz -seed %d -count 1", seed),
	}
	orig := fuzzgen.New(seed)
	min := fuzzgen.Minimize(orig, func(cand *fuzzgen.Program) bool {
		r := Check(cand, opt.Check)
		for _, cv := range r.Violations {
			if cv.Kind == v.Kind && cv.Fn == v.Fn {
				return true
			}
		}
		return false
	}, opt.MinimizeChecks)
	f.Minimized = min
	f.Source = min.Render()
	logf("dca fuzz: FAILURE kind=%s fn=%s loop=%d label=%s verdict=%s seed=%d\n    repro: %s\n    %s\n",
		v.Kind, v.Fn, v.Index, v.Label, v.Verdict, seed, f.Repro, v.Detail)
	if opt.CorpusDir == "" {
		return f
	}
	fp, err := LoopFingerprint(f.Source, v.Fn, v.Index)
	if err != nil {
		logf("dca fuzz: warning: fingerprinting minimized counterexample failed: %v\n", err)
		return f
	}
	path, dup, err := fuzzgen.WriteEntry(opt.CorpusDir, &fuzzgen.Entry{
		Kind: v.Kind, Fn: v.Fn, Loop: v.Index,
		Label: v.Label.String(), Verdict: v.Verdict, Detail: v.Detail,
		Seed: seed, CampaignSeed: opt.Seed, Repro: f.Repro,
		Fingerprint: fp, Spec: min, Source: f.Source,
	})
	switch {
	case err != nil:
		logf("dca fuzz: warning: writing corpus entry failed: %v\n", err)
	case dup:
		f.Deduped = true
		logf("dca fuzz: corpus: isomorphic entry already present (fingerprint %s), not rewritten\n", fp[:16])
	default:
		f.CorpusPath = path
		logf("dca fuzz: corpus: wrote %s\n", path)
	}
	return f
}
