// Package iterrec implements generalized iterator recognition (§IV-A1 of
// the paper, after Manilov et al. CC'18): the iterator of a loop is the
// backward slice of its exit conditions, closed over register, memory and
// control dependences within the loop. Everything else is payload.
//
// The package also decides *separability*: whether the payload forms a
// single-entry region with a single continuation point, so that the
// instrumentation pass can (a) linearize the iterator into a record-only
// clone and (b) outline the payload behind one call site. Loops that fail
// these checks are reported with a reason and skipped by DCA, mirroring the
// loops the paper's prototype cannot transform.
package iterrec

import (
	"fmt"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/ir"
	"dca/internal/pointer"
)

// ContPoint is the single continuation where payload control flow rejoins
// the iterator: either the start of an iterator-side block (Index == 0) or
// an in-block position just after a payload run (Index > 0).
type ContPoint struct {
	Block *ir.Block
	Index int
}

// Run is the contiguous payload instruction range [Lo, Hi) of one block.
type Run struct{ Lo, Hi int }

// Separation is the result of iterator/payload separation for one loop.
type Separation struct {
	Fn   *ir.Func
	Loop *cfg.Loop

	// OK reports whether the loop is separable; Reason explains failures.
	OK     bool
	Reason string

	// IterInstrs is the iterator slice.
	IterInstrs map[ir.Instr]bool
	// Runs maps each payload-containing block to its payload range.
	Runs map[*ir.Block]Run
	// PayloadSide marks blocks whose terminator continues payload control
	// flow (pure-payload and empty payload-side blocks, and mixed blocks
	// whose payload run extends to the terminator).
	PayloadSide map[*ir.Block]bool
	// B0/P0 is the unique payload entry point.
	B0 *ir.Block
	P0 int
	// Cont is the unique continuation point.
	Cont ContPoint

	// IterLocals are iterator-defined locals consumed by the payload; their
	// per-iteration values are what iterator linearization records.
	IterLocals []*ir.Local
	// EnvLocals are the payload-accessed locals shared across iterations
	// (loop-carried scalars, live-in bases, live-out results); the outlined
	// payload accesses them through an environment object.
	EnvLocals []*ir.Local
	// Internal are payload locals private to one iteration.
	Internal dataflow.LocalSet
	// PayloadDefSet records the locals defined by payload instructions,
	// captured at separation time (the instrumentation pass later mutates
	// the loop's blocks, so it cannot be recomputed from them).
	PayloadDefSet dataflow.LocalSet

	// PayloadInstrCount counts payload instructions (for reports).
	PayloadInstrCount int
	// PayloadStores/PayloadCallStores count heap stores in the payload
	// (direct, and through callees); PayloadAllocs counts allocations.
	// Skeleton classification consumes these.
	PayloadStores     int
	PayloadCallStores int
	PayloadAllocs     int
}

func fail(sep *Separation, format string, args ...any) *Separation {
	sep.OK = false
	sep.Reason = fmt.Sprintf(format, args...)
	return sep
}

// Separate computes the iterator slice and separability for one loop.
func Separate(g *cfg.Graph, pd *cfg.PostDom, loop *cfg.Loop, pa *pointer.Analysis, lv *dataflow.Liveness) *Separation {
	fn := g.Fn
	sep := &Separation{
		Fn:          fn,
		Loop:        loop,
		IterInstrs:  map[ir.Instr]bool{},
		Runs:        map[*ir.Block]Run{},
		PayloadSide: map[*ir.Block]bool{},
	}

	// --- 1. Collect loop instructions and register def map. ---
	inLoop := func(b *ir.Block) bool { return loop.Blocks[b] }
	type pos struct {
		b   *ir.Block
		idx int
	}
	where := map[ir.Instr]pos{}
	defs := map[*ir.Local][]ir.Instr{}
	var allInstrs []ir.Instr
	for _, b := range orderedBlocks(g, loop) {
		for i, in := range b.Instrs {
			where[in] = pos{b, i}
			allInstrs = append(allInstrs, in)
			if d := in.Def(); d != nil {
				defs[d] = append(defs[d], in)
			}
		}
	}

	// --- 2. Memory access summaries per instruction. ---
	readRegions := map[ir.Instr]pointer.RegionSet{}
	writeRegions := map[ir.Instr]pointer.RegionSet{}
	for _, in := range allInstrs {
		switch i := in.(type) {
		case *ir.Load:
			rs := pointer.RegionSet{}
			for _, r := range pa.AccessRegions(i) {
				rs.Add(r)
			}
			readRegions[in] = rs
		case *ir.Store:
			ws := pointer.RegionSet{}
			for _, r := range pa.AccessRegions(i) {
				ws.Add(r)
			}
			writeRegions[in] = ws
		case *ir.Call:
			if mr := pa.CallEffects(i); mr != nil {
				readRegions[in] = mr.Reads
				writeRegions[in] = mr.Writes
			}
		}
	}

	// --- 3. Backward slice of exit conditions. ---
	var work []ir.Instr
	add := func(in ir.Instr) {
		if in != nil && !sep.IterInstrs[in] {
			sep.IterInstrs[in] = true
			work = append(work, in)
		}
	}
	addCondDefs := func(o ir.Operand) {
		if o.Local != nil {
			for _, d := range defs[o.Local] {
				add(d)
			}
		}
	}
	// Seed: conditions of blocks with exit edges, plus their controlling
	// branches inside the loop.
	seedBlock := func(b *ir.Block) {
		if t, ok := b.Term.(*ir.If); ok {
			addCondDefs(t.Cond)
		}
		for _, a := range pd.ControllingBranches(b) {
			if inLoop(a) {
				if t, ok := a.Term.(*ir.If); ok {
					addCondDefs(t.Cond)
				}
			}
		}
	}
	for _, b := range loop.ExitSrcs {
		seedBlock(b)
	}
	// Closure.
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		// Register dependences.
		for _, u := range in.Uses() {
			if u.Local != nil {
				for _, d := range defs[u.Local] {
					add(d)
				}
			}
		}
		// Memory dependences: reads of in depend on loop writes to
		// intersecting regions.
		if rr := readRegions[in]; len(rr) > 0 {
			for _, w := range allInstrs {
				if wr := writeRegions[w]; len(wr) > 0 && rr.Intersects(wr) {
					add(w)
				}
			}
		}
		// Control dependences: the conditions deciding whether in runs.
		for _, a := range pd.ControllingBranches(where[in].b) {
			if inLoop(a) {
				if t, ok := a.Term.(*ir.If); ok {
					addCondDefs(t.Cond)
				}
			}
		}
	}

	// --- 4. Per-block payload runs + contiguity. ---
	payloadCount := 0
	for _, b := range orderedBlocks(g, loop) {
		lo, hi := -1, -1
		for i, in := range b.Instrs {
			if !sep.IterInstrs[in] {
				if lo == -1 {
					lo = i
				}
				if lo != -1 && hi != -1 && i > hi {
					return fail(sep, "payload instructions not contiguous in block %s", b.Name)
				}
				hi = i + 1
				payloadCount++
			} else if lo != -1 && hi == i {
				// iterator instr after payload started: suffix begins; any
				// later payload instr triggers the check above.
				continue
			}
		}
		if lo != -1 {
			sep.Runs[b] = Run{Lo: lo, Hi: hi}
		}
	}
	sep.PayloadInstrCount = payloadCount
	for _, in := range allInstrs {
		if sep.IterInstrs[in] {
			continue
		}
		switch i := in.(type) {
		case *ir.Store:
			sep.PayloadStores++
		case *ir.Alloc:
			sep.PayloadAllocs++
		case *ir.Call:
			if mr := pa.CallEffects(i); mr != nil && len(mr.Writes) > 0 {
				sep.PayloadCallStores++
			}
		}
	}
	if payloadCount == 0 {
		return fail(sep, "empty payload: loop is pure iterator")
	}

	// --- 5. Block sides. ---
	// A block is payload-side when its terminator continues payload control
	// flow: payload run reaching the end of the block, or an instruction-
	// free block whose in-edges are all payload-side.
	for b, r := range sep.Runs {
		if r.Hi == len(b.Instrs) {
			sep.PayloadSide[b] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for b := range loop.Blocks {
			if len(b.Instrs) > 0 || sep.PayloadSide[b] {
				continue
			}
			anyPayload, anyIter := false, false
			for _, p := range g.Preds[b] {
				if !inLoop(p) {
					anyIter = true
					continue
				}
				if sep.PayloadSide[p] {
					// Edge from payload-side block: payload edge — unless
					// this target is already the continuation of a mixed
					// block, handled below.
					anyPayload = true
				} else {
					anyIter = true
				}
			}
			if anyPayload && !anyIter {
				sep.PayloadSide[b] = true
				changed = true
			}
		}
	}

	// --- 6. Entry points. ---
	type point struct {
		b   *ir.Block
		idx int
	}
	entries := map[point]bool{}
	for b, r := range sep.Runs {
		if r.Lo > 0 {
			entries[point{b, r.Lo}] = true // in-block fallthrough from iterator prefix
		} else {
			for _, p := range g.Preds[b] {
				if !inLoop(p) || !sep.PayloadSide[p] {
					entries[point{b, 0}] = true
				}
			}
		}
	}
	// Payload-side empty blocks entered from iterator side are also entries.
	for b := range sep.PayloadSide {
		if _, hasRun := sep.Runs[b]; hasRun {
			continue
		}
		for _, p := range g.Preds[b] {
			if inLoop(p) && !sep.PayloadSide[p] {
				entries[point{b, 0}] = true
			}
		}
	}
	if len(entries) != 1 {
		return fail(sep, "payload region has %d entry points, need exactly 1", len(entries))
	}
	for e := range entries {
		sep.B0, sep.P0 = e.b, e.idx
	}

	// --- 7. Continuation points. ---
	conts := map[ContPoint]bool{}
	for b, r := range sep.Runs {
		if r.Hi < len(b.Instrs) {
			conts[ContPoint{Block: b, Index: r.Hi}] = true
		}
	}
	for b := range sep.PayloadSide {
		for _, s := range g.Succs[b] {
			if !inLoop(s) {
				return fail(sep, "payload block %s exits the loop", b.Name)
			}
			if sep.PayloadSide[s] {
				continue // region-internal edge
			}
			if s == sep.B0 && sep.P0 == 0 {
				continue // region-internal back edge (payload-internal loop)
			}
			if s == sep.B0 && sep.P0 > 0 {
				return fail(sep, "payload re-enters iterator prefix of %s", sep.B0.Name)
			}
			if r, ok := sep.Runs[s]; ok && r.Lo == 0 {
				// Edge into the start of a mixed block's payload run (for
				// example an inner-loop exit falling into the store that
				// precedes the iterator advance): region-internal.
				continue
			}
			conts[ContPoint{Block: s, Index: 0}] = true
		}
	}
	if len(conts) != 1 {
		return fail(sep, "payload region has %d continuation points, need exactly 1", len(conts))
	}
	for c := range conts {
		sep.Cont = c
	}

	// --- 8. Iterator instructions must survive linearization. ---
	// Allowed homes: blocks with no payload run that are iterator-side,
	// B0's prefix, and the continuation block's suffix.
	for in := range sep.IterInstrs {
		p := where[in]
		if r, mixed := sep.Runs[p.b]; mixed {
			okPrefix := p.b == sep.B0 && p.idx < sep.P0
			okSuffix := p.b == sep.Cont.Block && p.idx >= sep.Cont.Index
			// A block can be both B0 and the continuation (single-block
			// payload run in the middle).
			if !okPrefix && !okSuffix {
				_ = r
				return fail(sep, "iterator instruction %q stranded inside payload region (block %s)", in, p.b.Name)
			}
		} else if sep.PayloadSide[p.b] {
			return fail(sep, "iterator instruction %q in payload-side block %s", in, p.b.Name)
		}
	}

	// --- 9. Memory separability: payload reads must not alias iterator
	// writes (the driver replays payload after the whole iterator ran).
	iterWrites := pointer.RegionSet{}
	for in := range sep.IterInstrs {
		iterWrites.AddAll(writeRegions[in])
	}
	if len(iterWrites) > 0 {
		for _, in := range allInstrs {
			if sep.IterInstrs[in] {
				continue
			}
			if rr := readRegions[in]; rr.Intersects(iterWrites) {
				return fail(sep, "payload instruction %q reads memory the iterator mutates", in)
			}
		}
	}

	// --- 10. Local classification. ---
	iterDefs := dataflow.LocalSet{}
	for in := range sep.IterInstrs {
		if d := in.Def(); d != nil {
			iterDefs[d] = true
		}
	}
	iterUses := dataflow.LocalSet{}
	for in := range sep.IterInstrs {
		for _, u := range in.Uses() {
			if u.Local != nil {
				iterUses[u.Local] = true
			}
		}
	}
	payloadUses := dataflow.LocalSet{}
	payloadDefs := dataflow.LocalSet{}
	sep.PayloadDefSet = payloadDefs
	for _, in := range allInstrs {
		if sep.IterInstrs[in] {
			continue
		}
		for _, u := range in.Uses() {
			if u.Local != nil {
				payloadUses[u.Local] = true
			}
		}
		if d := in.Def(); d != nil {
			payloadDefs[d] = true
		}
	}
	// Conditions of payload-side terminators count as payload uses.
	for b := range sep.PayloadSide {
		if t, ok := b.Term.(*ir.If); ok && t.Cond.Local != nil {
			payloadUses[t.Cond.Local] = true
		}
	}
	effects := lv.AnalyzeLoop(loop)
	liveHdr := lv.LiveIn[loop.Header]
	seenIter := map[*ir.Local]bool{}
	seenEnv := map[*ir.Local]bool{}
	sep.Internal = dataflow.LocalSet{}
	for _, l := range sortedLocals(payloadUses, payloadDefs) {
		switch {
		case iterDefs[l]:
			if payloadDefs[l] {
				return fail(sep, "local %q defined by both iterator and payload", l.Name)
			}
			if payloadUses[l] && !seenIter[l] {
				seenIter[l] = true
				sep.IterLocals = append(sep.IterLocals, l)
			}
		case payloadDefs[l] && !liveHdr[l] && !effects.LiveAfter[l] && !iterUses[l]:
			sep.Internal[l] = true
		default:
			if !seenEnv[l] {
				seenEnv[l] = true
				sep.EnvLocals = append(sep.EnvLocals, l)
			}
		}
	}

	sep.OK = true
	return sep
}

// orderedBlocks returns the loop blocks in RPO for determinism.
func orderedBlocks(g *cfg.Graph, loop *cfg.Loop) []*ir.Block {
	var out []*ir.Block
	for _, b := range g.RPO {
		if loop.Blocks[b] {
			out = append(out, b)
		}
	}
	return out
}

func sortedLocals(sets ...dataflow.LocalSet) []*ir.Local {
	all := dataflow.LocalSet{}
	for _, s := range sets {
		all.AddAll(s)
	}
	return all.Sorted()
}
