// Package chaos is the storage layer's fault boundary: a narrow filesystem
// interface (FS) that internal/cache and internal/journal perform every
// disk operation through, plus fault-injecting implementations that make
// crash recovery a tested property instead of an assumed one.
//
// OS is the production implementation — a zero-cost delegation to package
// os. Faulty wraps any FS with a deterministic fault plan: the Nth eligible
// operation fails with a chosen fault kind (EIO, ENOSPC, a short write that
// persists only a prefix, or a torn rename that leaves a half-copied
// destination), optionally sticky so every later operation fails too —
// modelling a disk that died rather than hiccuped. Monkey layers seeded
// random faults over a workload for property tests.
//
// The injector is deliberately boring: no goroutines, no timing, one atomic
// plan. A property test enumerates fault points by first counting a clean
// run's operations (CountOps), then re-running the workload once per index
// with the fault planted there, and asserting the reopened store lost at
// most its unsynced tail and never serves corrupt data.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// File is the writable-file surface the storage layer needs. os.File
// satisfies it.
type File interface {
	io.Writer
	io.Closer
	// Name returns the path the file was opened under.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (recovery truncates torn tails).
	Truncate(size int64) error
}

// FS is the filesystem surface the storage layer runs on. Every operation
// the verdict cache and the run journal perform goes through it, so a
// fault-injecting implementation can fail any of them deterministically.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens name like os.OpenFile; the storage layer uses it for
	// append-mode journal writes.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a fresh temp file in dir like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// ---------------------------------------------------------------------- OS

// OS is the production FS: package os, verbatim.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

// ------------------------------------------------------------------ faults

// Kind selects what an injected fault does.
type Kind int

const (
	// EIO: the operation fails with an I/O error and has no effect.
	EIO Kind = iota
	// ENOSPC: the operation fails with a no-space error and has no effect.
	ENOSPC
	// ShortWrite: a write persists only a prefix of its bytes, then fails —
	// the torn-record case recovery must detect. Non-write operations fail
	// as EIO.
	ShortWrite
	// TornRename: a rename copies only a prefix of the source to the
	// destination, leaves the source behind, and fails — modelling a crash
	// inside a non-atomic rename. Non-rename operations fail as EIO.
	TornRename
)

var kindNames = [...]string{"eio", "enospc", "short-write", "torn-rename"}

func (k Kind) String() string { return kindNames[k] }

// errInjected marks every injected failure so tests can tell planted faults
// from real ones.
var errInjected = errors.New("chaos: injected fault")

// Injected reports whether err came from a chaos injector.
func Injected(err error) bool { return errors.Is(err, errInjected) }

func (k Kind) err(op, name string) error {
	errno := syscall.EIO
	if k == ENOSPC {
		errno = syscall.ENOSPC
	}
	return fmt.Errorf("%s %s: %w: %w", op, name, errInjected, errno)
}

// Plan is a deterministic fault schedule.
type Plan struct {
	// FailAt is the 1-based index of the eligible operation that fails
	// (0 = never). Eligible operations are the mutating ones — mkdir,
	// create, open-for-write, write, sync, rename, remove, truncate — plus,
	// when Reads is set, read-path operations.
	FailAt int64
	// Kind is the fault to inject.
	Kind Kind
	// Sticky makes every eligible operation after FailAt fail too — a disk
	// that died, not one that hiccuped.
	Sticky bool
	// Reads includes ReadFile/ReadDir/Stat among the eligible operations.
	Reads bool
}

// Faulty wraps an FS with a deterministic fault plan. Safe for concurrent
// use. The zero plan injects nothing, so a Faulty{Inner: fs} is also the
// operation counter used to enumerate fault points.
type Faulty struct {
	Inner FS

	mu         sync.Mutex
	plan       Plan
	ops        int64
	faults     int64
	alwaysFail bool
}

// NewFaulty wraps inner with plan.
func NewFaulty(inner FS, plan Plan) *Faulty { return &Faulty{Inner: inner, plan: plan} }

// Ops returns how many eligible operations have been observed.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Faults returns how many operations were failed by injection.
func (f *Faulty) Faults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// SetAlwaysFail toggles unconditional failure of every eligible operation —
// the circuit-breaker test mode: the disk stays dead until healed.
func (f *Faulty) SetAlwaysFail(v bool) {
	f.mu.Lock()
	f.alwaysFail = v
	f.mu.Unlock()
}

// step counts one eligible operation and reports whether it must fail.
func (f *Faulty) step(read bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if read && !f.plan.Reads && !f.alwaysFail {
		return false
	}
	f.ops++
	fail := f.alwaysFail ||
		(f.plan.FailAt > 0 && (f.ops == f.plan.FailAt || (f.plan.Sticky && f.ops > f.plan.FailAt)))
	if fail {
		f.faults++
	}
	return fail
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if f.step(false) {
		return f.plan.Kind.err("mkdir", path)
	}
	return f.Inner.MkdirAll(path, perm)
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f.step(false) {
		return nil, f.plan.Kind.err("open", name)
	}
	file, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{inner: file, fs: f}, nil
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if f.step(false) {
		return nil, f.plan.Kind.err("create", dir)
	}
	file, err := f.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{inner: file, fs: f}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if f.step(true) {
		return nil, f.plan.Kind.err("read", name)
	}
	return f.Inner.ReadFile(name)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if f.step(true) {
		return nil, f.plan.Kind.err("readdir", name)
	}
	return f.Inner.ReadDir(name)
}

func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if f.step(true) {
		return nil, f.plan.Kind.err("stat", name)
	}
	return f.Inner.Stat(name)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if f.step(false) {
		if f.plan.Kind == TornRename {
			f.tearRename(oldpath, newpath)
		}
		return f.plan.Kind.err("rename", oldpath)
	}
	return f.Inner.Rename(oldpath, newpath)
}

// tearRename simulates a crash inside a non-atomic rename: the destination
// receives a prefix of the source under its final name. Best effort — the
// point is to plant a plausible corruption for recovery to catch.
func (f *Faulty) tearRename(oldpath, newpath string) {
	data, err := f.Inner.ReadFile(oldpath)
	if err != nil {
		return
	}
	file, err := f.Inner.OpenFile(newpath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	file.Write(data[:len(data)/2])
	file.Close()
}

func (f *Faulty) Remove(name string) error {
	if f.step(false) {
		return f.plan.Kind.err("remove", name)
	}
	return f.Inner.Remove(name)
}

// faultyFile routes writes, syncs, and truncates through the plan. Close is
// never injected: a failing close adds no recovery case the write faults
// don't already cover, and failing it would leak descriptors in tests.
type faultyFile struct {
	inner File
	fs    *Faulty
}

func (f *faultyFile) Name() string { return f.inner.Name() }

func (f *faultyFile) Close() error { return f.inner.Close() }

func (f *faultyFile) Write(p []byte) (int, error) {
	if f.fs.step(false) {
		if f.fs.plan.Kind == ShortWrite && len(p) > 0 {
			n, _ := f.inner.Write(p[:(len(p)+1)/2])
			return n, f.fs.plan.Kind.err("write", f.inner.Name())
		}
		return 0, f.fs.plan.Kind.err("write", f.inner.Name())
	}
	return f.inner.Write(p)
}

func (f *faultyFile) Sync() error {
	if f.fs.step(false) {
		return f.fs.plan.Kind.err("sync", f.inner.Name())
	}
	return f.inner.Sync()
}

func (f *faultyFile) Truncate(size int64) error {
	if f.fs.step(false) {
		return f.fs.plan.Kind.err("truncate", f.inner.Name())
	}
	return f.inner.Truncate(size)
}

// CountOps runs workload against a counting (never-failing) wrapper of
// inner and returns how many eligible operations it performed — the fault
// points a property test then enumerates. reads selects whether read-path
// operations count.
func CountOps(inner FS, reads bool, workload func(FS)) int64 {
	f := NewFaulty(inner, Plan{Reads: reads})
	workload(f)
	return f.Ops()
}

// ------------------------------------------------------------------ monkey

// Monkey wraps an FS with seeded random faults: every eligible operation
// fails with probability prob, with a random fault kind. Deterministic for
// a given seed and operation sequence. Safe for concurrent use, but
// concurrent workloads make the fault sequence schedule-dependent.
type Monkey struct {
	Inner FS

	mu     sync.Mutex
	rng    *rand.Rand
	prob   float64
	reads  bool
	faults int64
}

// NewMonkey builds a random-fault FS over inner. reads selects whether
// read-path operations are eligible.
func NewMonkey(inner FS, seed int64, prob float64, reads bool) *Monkey {
	return &Monkey{Inner: inner, rng: rand.New(rand.NewSource(seed)), prob: prob, reads: reads}
}

// Faults returns how many operations were failed by injection.
func (m *Monkey) Faults() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// roll decides one operation's fate; kind is only meaningful when it fails.
func (m *Monkey) roll(read bool) (Kind, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if read && !m.reads {
		return 0, false
	}
	if m.rng.Float64() >= m.prob {
		return 0, false
	}
	m.faults++
	return Kind(m.rng.Intn(int(TornRename) + 1)), true
}

func (m *Monkey) MkdirAll(path string, perm os.FileMode) error {
	if k, fail := m.roll(false); fail {
		return k.err("mkdir", path)
	}
	return m.Inner.MkdirAll(path, perm)
}

func (m *Monkey) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if k, fail := m.roll(false); fail {
		return nil, k.err("open", name)
	}
	file, err := m.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &monkeyFile{inner: file, fs: m}, nil
}

func (m *Monkey) CreateTemp(dir, pattern string) (File, error) {
	if k, fail := m.roll(false); fail {
		return nil, k.err("create", dir)
	}
	file, err := m.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &monkeyFile{inner: file, fs: m}, nil
}

func (m *Monkey) ReadFile(name string) ([]byte, error) {
	if k, fail := m.roll(true); fail {
		return nil, k.err("read", name)
	}
	return m.Inner.ReadFile(name)
}

func (m *Monkey) ReadDir(name string) ([]fs.DirEntry, error) {
	if k, fail := m.roll(true); fail {
		return nil, k.err("readdir", name)
	}
	return m.Inner.ReadDir(name)
}

func (m *Monkey) Stat(name string) (fs.FileInfo, error) {
	if k, fail := m.roll(true); fail {
		return nil, k.err("stat", name)
	}
	return m.Inner.Stat(name)
}

func (m *Monkey) Rename(oldpath, newpath string) error {
	k, fail := m.roll(false)
	if !fail {
		return m.Inner.Rename(oldpath, newpath)
	}
	if k == TornRename {
		(&Faulty{Inner: m.Inner}).tearRename(oldpath, newpath)
	}
	return k.err("rename", oldpath)
}

func (m *Monkey) Remove(name string) error {
	if k, fail := m.roll(false); fail {
		return k.err("remove", name)
	}
	return m.Inner.Remove(name)
}

type monkeyFile struct {
	inner File
	fs    *Monkey
}

func (f *monkeyFile) Name() string { return f.inner.Name() }

func (f *monkeyFile) Close() error { return f.inner.Close() }

func (f *monkeyFile) Write(p []byte) (int, error) {
	if k, fail := f.fs.roll(false); fail {
		if k == ShortWrite && len(p) > 0 {
			n, _ := f.inner.Write(p[:(len(p)+1)/2])
			return n, k.err("write", f.inner.Name())
		}
		return 0, k.err("write", f.inner.Name())
	}
	return f.inner.Write(p)
}

func (f *monkeyFile) Sync() error {
	if k, fail := f.fs.roll(false); fail {
		return k.err("sync", f.inner.Name())
	}
	return f.inner.Sync()
}

func (f *monkeyFile) Truncate(size int64) error {
	if k, fail := f.fs.roll(false); fail {
		return k.err("truncate", f.inner.Name())
	}
	return f.inner.Truncate(size)
}
