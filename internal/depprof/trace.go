// Package depprof reimplements profile-driven dependence-based parallelism
// detection in the style of Tournavitis et al. [8]: a full memory-access
// trace of one workload execution, per-loop-invocation detection of loop-
// carried RAW/WAR/WAW dependences, dynamic array privatization (write-first
// test), memory reduction groups, and static scalar classification
// (induction, reduction, min/max) — a loop is reported parallelizable iff
// every remaining carried dependence is benign.
//
// Crucially — and this is the paper's central contrast — the pointer-chase
// iterator of a PLDS loop (ptr = ptr->next) is a loop-carried scalar
// dependence that is neither induction nor reduction, so dependence
// profiling must reject every PLDS traversal that DCA accepts.
package depprof

import (
	"errors"
	"fmt"

	"dca/internal/affine"
	"dca/internal/cfg"
	"dca/internal/interp"
	"dca/internal/ir"
)

// LoopKey identifies a loop by function name and loop index.
type LoopKey struct {
	Fn    string
	Index int
}

// Addr is a dynamic memory address: heap object identity plus element.
type Addr struct {
	Obj int64
	Idx int
}

// addrState tracks the access history of one address within one loop
// invocation.
type addrState struct {
	lastWriteIter int64
	lastReadIter  int64
	curIter       int64
	writtenInCur  bool
	everReadFirst bool
	// group tracking: -1 unset, -2 mixed, else reduction group id
	group int
	// carried dependence flags for this address
	raw, war, waw bool
}

// invocation is one dynamic activation of a loop.
type invocation struct {
	loop  *cfg.Loop
	key   LoopKey
	iter  int64
	addrs map[Addr]*addrState
	lp    *LoopProfile
}

// LoopProfile aggregates dynamic facts about one loop across invocations.
type LoopProfile struct {
	Key         LoopKey
	Loop        *cfg.Loop
	Invocations int
	// Iterations counts loop-header entries; BodyExecuted reports whether
	// any body block (or the header itself for single-block loops) ever ran.
	Iterations   int64
	BodyExecuted bool
	// Carried dependences observed anywhere, after per-address analysis.
	FatalRAW bool // carried RAW outside any reduction group
	NeedPriv bool // some address carried WAR/WAW without RAW
	// ReductionAddrs: some addresses were pure reduction-group traffic.
	ReductionAddrs bool
	addrFatalRAW   int
	addrNeedPriv   int
	addrPrivFail   int
}

// Profile is the result of tracing one program execution.
type Profile struct {
	Loops map[LoopKey]*LoopProfile
	Steps int64
	// LoopSteps counts dynamic instructions attributed to each loop
	// (including callees), for coverage accounting.
	LoopSteps map[LoopKey]int64
	// Contains records observed dynamic nesting: Contains[a][b] means an
	// invocation of b ran inside an invocation of a (possibly across
	// calls). Loop selection uses it to parallelize outermost loops only.
	Contains map[LoopKey]map[LoopKey]bool
	// Truncated reports that the traced execution ran out of its step
	// budget: the profile covers only the prefix that executed. Verdicts
	// drawn from it are sound for what ran but may miss later behaviour.
	Truncated bool
}

// tracer implements interp.Tracer.
type tracer struct {
	prof *Profile
	// static maps, precomputed over all functions
	loopsOf map[*ir.Func][]*cfg.Loop
	chainOf map[*ir.Block][]*cfg.Loop // outermost..innermost loops containing block
	groupOf map[ir.Instr]int          // reduction group ids
	frames  []*frameCtx
	active  []*invocation // global invocation stack (across frames)
}

type frameCtx struct {
	fn *ir.Func
	// how many invocations this frame pushed
	pushed int
}

// Trace executes the program and collects the dependence profile.
func Trace(prog *ir.Program, maxSteps int64) (*Profile, error) {
	tr := &tracer{
		prof: &Profile{
			Loops:     map[LoopKey]*LoopProfile{},
			LoopSteps: map[LoopKey]int64{},
			Contains:  map[LoopKey]map[LoopKey]bool{},
		},
		chainOf: map[*ir.Block][]*cfg.Loop{},
		groupOf: map[ir.Instr]int{},
	}
	for _, fn := range prog.Funcs {
		_, loops := cfg.LoopsOf(fn)
		for _, l := range loops {
			tr.prof.Loops[LoopKey{fn.Name, l.Index}] = &LoopProfile{
				Key:  LoopKey{fn.Name, l.Index},
				Loop: l,
			}
		}
		for _, b := range fn.Blocks {
			var chain []*cfg.Loop
			for _, l := range loops {
				if l.Blocks[b] {
					chain = append(chain, l)
				}
			}
			// order outermost first (by depth)
			for i := 0; i < len(chain); i++ {
				for j := i + 1; j < len(chain); j++ {
					if chain[j].Depth < chain[i].Depth {
						chain[i], chain[j] = chain[j], chain[i]
					}
				}
			}
			tr.chainOf[b] = chain
		}
		for in, g := range affine.MemReductionGroups(fn) {
			tr.groupOf[in] = g
		}
	}
	res, err := interp.Run(prog, interp.Config{Tracer: tr, MaxSteps: maxSteps})
	switch {
	case err == nil:
		tr.prof.Steps = res.Steps
	case errors.Is(err, interp.ErrBudget):
		// Budget exhaustion is an analysis-resource limit, not a program
		// fault: keep the partial profile and mark it truncated.
		tr.prof.Truncated = true
		var be *interp.BudgetError
		if errors.As(err, &be) {
			tr.prof.Steps = be.Steps
		}
	default:
		return nil, fmt.Errorf("depprof: traced program faulted: %w", err)
	}
	// Close any invocations left open (program ended inside loops, or the
	// trace was cut short by the budget).
	for len(tr.active) > 0 {
		tr.closeInvocation(tr.active[len(tr.active)-1])
		tr.active = tr.active[:len(tr.active)-1]
	}
	return tr.prof, nil
}

// ---------------------------------------------------------------- Tracer

func (tr *tracer) OnCall(fr *interp.Frame) {
	tr.frames = append(tr.frames, &frameCtx{fn: fr.Fn})
}

func (tr *tracer) OnRet(_ *interp.Frame) {
	fc := tr.frames[len(tr.frames)-1]
	for i := 0; i < fc.pushed; i++ {
		tr.closeInvocation(tr.active[len(tr.active)-1])
		tr.active = tr.active[:len(tr.active)-1]
	}
	tr.frames = tr.frames[:len(tr.frames)-1]
}

func (tr *tracer) OnBlock(fr *interp.Frame, b *ir.Block) {
	fc := tr.frames[len(tr.frames)-1]
	chain := tr.chainOf[b]
	// Pop invocations of this frame whose loop no longer contains b.
	for fc.pushed > 0 {
		top := tr.active[len(tr.active)-1]
		if top.loop.Blocks[b] {
			break
		}
		tr.closeInvocation(top)
		tr.active = tr.active[:len(tr.active)-1]
		fc.pushed--
	}
	// Push newly-entered loops (outermost first).
	for _, l := range chain {
		if fc.pushed > 0 {
			// already active?
			found := false
			for i := len(tr.active) - fc.pushed; i < len(tr.active); i++ {
				if tr.active[i].loop == l {
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		key := LoopKey{fr.Fn.Name, l.Index}
		inv := &invocation{loop: l, key: key, addrs: map[Addr]*addrState{}, lp: tr.prof.Loops[key]}
		inv.lp.Invocations++
		for _, anc := range tr.active {
			m := tr.prof.Contains[anc.key]
			if m == nil {
				m = map[LoopKey]bool{}
				tr.prof.Contains[anc.key] = m
			}
			m[key] = true
		}
		tr.active = append(tr.active, inv)
		fc.pushed++
	}
	// Header entry = new iteration for that loop's invocation; any other
	// loop block proves the body executed.
	for i := len(tr.active) - fc.pushed; i >= 0 && i < len(tr.active); i++ {
		inv := tr.active[i]
		if inv.loop.Header == b {
			inv.iter++
			inv.lp.Iterations++
			if len(inv.loop.Blocks) == 1 {
				inv.lp.BodyExecuted = true
			}
		} else if inv.loop.Blocks[b] {
			inv.lp.BodyExecuted = true
		}
	}
	// Coverage: attribute this block's instructions to every active loop.
	cost := int64(len(b.Instrs)) + 1
	for _, inv := range tr.active {
		tr.prof.LoopSteps[inv.key] += cost
	}
}

func (tr *tracer) OnLoad(_ *interp.Frame, in *ir.Load, obj *ir.Object, idx int) {
	a := Addr{Obj: obj.ID, Idx: idx}
	g, hasG := tr.groupOf[in]
	for _, inv := range tr.active {
		st := inv.state(a)
		if st.curIter != inv.iter {
			st.curIter = inv.iter
			st.writtenInCur = false
		}
		if !st.writtenInCur {
			st.everReadFirst = true
			if st.lastWriteIter > 0 && st.lastWriteIter != inv.iter {
				st.raw = true
			}
		}
		st.lastReadIter = inv.iter
		inv.updateGroup(st, g, hasG)
	}
}

func (tr *tracer) OnStore(_ *interp.Frame, in *ir.Store, obj *ir.Object, idx int) {
	a := Addr{Obj: obj.ID, Idx: idx}
	g, hasG := tr.groupOf[in]
	for _, inv := range tr.active {
		st := inv.state(a)
		if st.curIter != inv.iter {
			st.curIter = inv.iter
			st.writtenInCur = false
		}
		if st.lastReadIter > 0 && st.lastReadIter != inv.iter {
			st.war = true
		}
		if st.lastWriteIter > 0 && st.lastWriteIter != inv.iter {
			st.waw = true
		}
		st.lastWriteIter = inv.iter
		st.writtenInCur = true
		inv.updateGroup(st, g, hasG)
	}
}

func (inv *invocation) state(a Addr) *addrState {
	st, ok := inv.addrs[a]
	if !ok {
		st = &addrState{group: -1}
		inv.addrs[a] = st
	}
	return st
}

func (inv *invocation) updateGroup(st *addrState, g int, hasG bool) {
	if !hasG {
		st.group = -2 // accessed by a non-reduction instruction
		return
	}
	switch st.group {
	case -1:
		st.group = g
	case g:
	default:
		st.group = -2
	}
}

// closeInvocation folds an invocation's per-address states into the loop
// profile.
func (tr *tracer) closeInvocation(inv *invocation) {
	lp := inv.lp
	for _, st := range inv.addrs {
		isReduction := st.group >= 0
		if isReduction {
			lp.ReductionAddrs = true
			continue // all carried traffic on this address is one op= group
		}
		if st.raw {
			lp.FatalRAW = true
			lp.addrFatalRAW++
			continue
		}
		if st.war || st.waw {
			lp.NeedPriv = true
			lp.addrNeedPriv++
			if st.everReadFirst {
				lp.addrPrivFail++
			}
		}
	}
}
