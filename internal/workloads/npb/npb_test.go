package npb_test

import (
	"testing"

	"dca/internal/cfg"
	"dca/internal/interp"
	"dca/internal/workloads/npb"
)

// TestSpecInvariants checks the structural bookkeeping of every benchmark
// spec: the archetype counts must sum to the paper's loop count, the
// generated program must compile, actually contain that many loops, and
// run deterministically. (The detection-count assertions live in
// internal/bench's TestNPBFull.)
func TestSpecInvariants(t *testing.T) {
	names := map[string]bool{}
	for _, spec := range npb.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if names[spec.Name] {
				t.Fatalf("duplicate benchmark %q", spec.Name)
			}
			names[spec.Name] = true
			if got := spec.ExpectedLoops(); got != spec.Paper.Loops {
				t.Fatalf("archetype mix yields %d loops, paper says %d", got, spec.Paper.Loops)
			}
			if spec.TripStatic <= 0 || spec.TripDyn <= 0 || spec.TripSerial <= 0 || spec.TripIO <= 0 {
				t.Fatalf("non-positive trips: %+v", spec)
			}
			if spec.BandwidthCap <= 0 || spec.BandwidthCap > 72 {
				t.Fatalf("bandwidth cap out of range: %v", spec.BandwidthCap)
			}
			if spec.ExpertFullCov <= 0 || spec.ExpertFullCov > 1 || spec.ExpertFullCap <= 0 {
				t.Fatalf("expert parameters out of range: %+v", spec)
			}
			prog, err := spec.Compile()
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, spec.Source())
			}
			loops := 0
			for _, fn := range prog.Funcs {
				_, ls := cfg.LoopsOf(fn)
				loops += len(ls)
			}
			if loops != spec.Paper.Loops {
				t.Fatalf("generated program has %d loops, want %d", loops, spec.Paper.Loops)
			}
		})
	}
	if len(names) != 10 {
		t.Fatalf("benchmarks = %d, want 10", len(names))
	}
}

// TestGeneratedProgramsRun executes the two smallest proxies end to end.
func TestGeneratedProgramsRun(t *testing.T) {
	for _, name := range []string{"EP", "IS"} {
		spec := npb.SpecByName(name)
		if spec == nil {
			t.Fatalf("missing spec %q", name)
		}
		prog, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(prog, interp.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Steps == 0 {
			t.Errorf("%s: no work executed", name)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if npb.SpecByName("BT") == nil || npb.SpecByName("zz") != nil {
		t.Error("SpecByName lookup broken")
	}
}
