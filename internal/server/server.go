// Package server is the `dca serve` analysis service: a long-lived HTTP
// daemon that accepts MiniC program source, runs the concurrent analysis
// engine with the incremental verdict cache in front of every loop's
// dynamic stage, and returns structured per-loop verdicts.
//
// The service is built for sustained traffic:
//
//   - One engine.Pool is shared by every in-flight request, so total
//     interpreter concurrency is bounded by the configured worker budget no
//     matter how many requests arrive.
//   - A request semaphore bounds concurrent analyses; excess requests wait
//     only as long as their own context allows, then are turned away with
//     503 instead of piling up.
//   - Every execution inherits the sandbox budgets and timeouts of the
//     fault-isolated dynamic stage; requests may tighten them but never
//     exceed the server's ceiling.
//   - Request bodies are size-capped before they are read.
//   - Shutdown is graceful: on context cancellation (SIGTERM in cmd/dca)
//     the listener closes, in-flight analyses drain within DrainTimeout,
//     and only then does Serve return.
//
// Endpoints: POST /analyze, GET /healthz, GET /stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/engine"
	"dca/internal/irbuild"
)

// Config tunes the analysis service. The zero value is production-safe:
// GOMAXPROCS workers, 1 MiB source cap, 30s per-execution timeout, default
// step budget, no cache.
type Config struct {
	// Workers bounds the engine pool shared by all requests (<= 0 means
	// GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds concurrently served /analyze requests (<= 0
	// means Workers).
	MaxConcurrent int
	// MaxSourceBytes caps the request body (<= 0 means 1 MiB).
	MaxSourceBytes int64
	// MaxSteps / Timeout / MaxHeapObjects / MaxOutput are the
	// per-execution sandbox ceilings. Requests may lower them, never
	// raise them. Zero MaxSteps means the core default (200M); zero
	// Timeout means 30s.
	MaxSteps       int64
	Timeout        time.Duration
	MaxHeapObjects int64
	MaxOutput      int64
	// Retries is the doubled-budget retry count (0 means the core
	// default of 1; negative disables).
	Retries int
	// Schedules is the default number of random permutation schedules run
	// in addition to reverse (<= 0 means 3).
	Schedules int
	// Cache, when non-nil, serves repeated analyses without re-running
	// their dynamic stages.
	Cache core.VerdictCache
	// DrainTimeout bounds how long Serve waits for in-flight requests
	// after shutdown begins (<= 0 means 15s).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = c.Workers
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Schedules <= 0 {
		c.Schedules = 3
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	return c
}

// Server is the analysis service.
type Server struct {
	cfg   Config
	pool  *engine.Pool
	sem   chan struct{}
	mux   *http.ServeMux
	start time.Time

	requests  atomic.Uint64 // /analyze requests accepted for processing
	analyzed  atomic.Uint64 // analyses completed successfully
	errored   atomic.Uint64 // analyses failed (compile or reference errors)
	rejected  atomic.Uint64 // requests turned away (busy or oversized)
	loopsDone atomic.Uint64 // loops analyzed across all requests
	inFlight  atomic.Int64
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  engine.NewPool(cfg.Workers),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Handler exposes the service's HTTP handler (also used by tests via
// httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until ctx is cancelled, then drains
// gracefully. It returns nil after a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves on an existing listener until ctx is cancelled, then shuts
// down gracefully: the listener closes immediately, in-flight requests get
// up to DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		return srv.Shutdown(drainCtx)
	}
}

// AnalyzeRequest is the /analyze request body.
type AnalyzeRequest struct {
	// Filename labels positions in verdicts ("request.mc" when empty).
	Filename string `json:"filename,omitempty"`
	// Source is the MiniC program to analyze.
	Source string `json:"source"`
	// Schedules overrides the number of random permutation schedules
	// (bounded by the server default; 0 keeps the default).
	Schedules int `json:"schedules,omitempty"`
	// MaxSteps / TimeoutMS tighten the per-execution budgets; values above
	// the server ceiling are clamped down to it.
	MaxSteps  int64 `json:"max_steps,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache forces a fresh computation for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// AnalyzeResponse is the /analyze response body.
type AnalyzeResponse struct {
	Report *core.ReportJSON `json:"report"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clampBudget lowers def to req when the request asks for less; requests
// can never exceed the server ceiling. def <= 0 (unlimited server budget)
// adopts any requested bound.
func clampBudget(def, req int64) int64 {
	if req <= 0 {
		return def
	}
	if def <= 0 || req < def {
		return req
	}
	return def
}

// options assembles the engine options for one request.
func (s *Server) options(req *AnalyzeRequest) engine.Options {
	n := req.Schedules
	if n <= 0 || n > s.cfg.Schedules {
		n = s.cfg.Schedules
	}
	scheds := []dcart.Schedule{dcart.Reverse{}}
	for i := 0; i < n; i++ {
		scheds = append(scheds, dcart.Random{Seed: int64(i + 1)})
	}
	copt := core.Options{
		Schedules:      scheds,
		MaxSteps:       clampBudget(s.cfg.MaxSteps, req.MaxSteps),
		Timeout:        time.Duration(clampBudget(int64(s.cfg.Timeout), req.TimeoutMS*int64(time.Millisecond))),
		MaxHeapObjects: s.cfg.MaxHeapObjects,
		MaxOutput:      s.cfg.MaxOutput,
		Retries:        s.cfg.Retries,
	}
	if !req.NoCache {
		copt.Cache = s.cfg.Cache
	}
	return engine.Options{Core: copt, Pool: s.pool}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.rejected.Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxSourceBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	if req.Source == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"missing \"source\""})
		return
	}

	// Concurrency bound: wait for a slot only as long as the client waits.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		s.rejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"server at capacity"})
		return
	}
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	filename := req.Filename
	if filename == "" {
		filename = "request.mc"
	}
	prog, err := irbuild.Compile(filename, req.Source)
	if err != nil {
		s.errored.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{"compile: " + err.Error()})
		return
	}

	start := time.Now()
	rep, err := engine.Analyze(prog, s.options(&req))
	if err != nil {
		// The reference execution failed: the program is analyzable by
		// nobody, which is the request's fault, not the server's.
		s.errored.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{"analysis: " + err.Error()})
		return
	}
	s.analyzed.Add(1)
	s.loopsDone.Add(uint64(len(rep.Loops)))
	writeJSON(w, http.StatusOK, AnalyzeResponse{Report: rep.JSON(time.Since(start))})
}

// healthz is the liveness payload.
type healthz struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int64   `json:"in_flight"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthz{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Load(),
	})
}

// statsResponse is the /stats payload.
type statsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      uint64       `json:"requests"`
	Analyzed      uint64       `json:"analyzed"`
	Errored       uint64       `json:"errored"`
	Rejected      uint64       `json:"rejected"`
	LoopsAnalyzed uint64       `json:"loops_analyzed"`
	InFlight      int64        `json:"in_flight"`
	Pool          poolStats    `json:"pool"`
	Cache         *cache.Stats `json:"cache,omitempty"`
}

type poolStats struct {
	Workers int `json:"workers"`
	InUse   int `json:"in_use"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Analyzed:      s.analyzed.Load(),
		Errored:       s.errored.Load(),
		Rejected:      s.rejected.Load(),
		LoopsAnalyzed: s.loopsDone.Load(),
		InFlight:      s.inFlight.Load(),
		Pool:          poolStats{Workers: s.pool.Cap(), InUse: s.pool.InUse()},
	}
	// The production cache exposes counters; any other VerdictCache simply
	// reports no cache section.
	if c, ok := s.cfg.Cache.(*cache.Cache); ok && c != nil {
		st := c.Stats()
		resp.Cache = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
