// Skeletons example: the paper's future-work direction (§VII) — classify
// every commutative loop of a program into a parallel algorithmic skeleton
// (map / reduce / map-reduce / expand), and demonstrate the §IV-E
// context-sensitivity extension: the same loop commutative under one caller
// and order-dependent under another.
package main

import (
	"fmt"
	"log"

	"dca/internal/core"
	"dca/internal/instrument"
	"dca/internal/irbuild"
	"dca/internal/skeleton"
)

const src = `
struct Node { val int; next *Node; }

// map skeleton: elementwise update over a PLDS.
func scale(head *Node) {
	var p *Node = head;
	while (p != nil) { p->val = p->val * 3; p = p->next; }
}

// reduce skeleton: associative accumulation.
func total(head *Node) int {
	var s int = 0;
	var p *Node = head;
	while (p != nil) { s += p->val; p = p->next; }
	return s;
}

// map-reduce skeleton: writes history and accumulates.
func squash(a []int, n int) int {
	var mx int = 0;
	for (var i int = 0; i < n; i++) {
		a[i] = (a[i] * 7) % 101;
		if (a[i] > mx) { mx = a[i]; }
	}
	return mx;
}

// context-dependent kernel: stride 5 scatters injectively, stride 0
// collapses every write onto out[0].
func kernel(out []int, n int, stride int) {
	for (var i int = 0; i < n; i++) { out[(i * stride) % n] = i + 1; }
}
func scatterPhase(out []int) { kernel(out, 16, 5); }
func collapsePhase(out []int) { kernel(out, 16, 0); }

func main() {
	var head *Node = nil;
	for (var i int = 0; i < 32; i++) {
		var nd *Node = new Node;
		nd->val = i;
		nd->next = head;
		head = nd;
	}
	scale(head);
	var a []int = new [32]int;
	for (var i int = 0; i < 32; i++) { a[i] = i; }
	var mx int = squash(a, 32);

	var good []int = new [16]int;
	var bad []int = new [16]int;
	scatterPhase(good);
	collapsePhase(bad);
	print(total(head), mx, good[3], bad[0]);
}
`

func main() {
	prog, err := irbuild.Compile("skel.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("skeletons of the commutative loops:")
	for _, l := range rep.Loops {
		if !l.Verdict.IsParallelizable() {
			continue
		}
		inst, err := instrument.Loop(prog, l.Fn, l.Index)
		if err != nil {
			continue
		}
		info := skeleton.Classify(inst)
		fmt.Printf("  %-28s %-11s accumulators=%v\n", l.ID, info.Kind, info.Accumulators)
	}

	fmt.Println("\ncontext-sensitive verdicts for the kernel loop:")
	ctxRep, err := core.AnalyzeLoopContexts(prog, "kernel", 0, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ctxRep)
	fmt.Println("\nthe context-insensitive paper prototype would reject the kernel")
	fmt.Println("outright; the per-context extension recovers the stride-5 caller.")
}
