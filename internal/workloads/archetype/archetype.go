// Package archetype is the loop-archetype library behind the NPB proxy
// suite. Each archetype is a self-contained MiniC loop with known ground
// truth and a characteristic detection signature across the six analyzers
// (Dependence Profiling, DiscoPoP, Idioms, Polly, ICC, DCA). The per-
// benchmark archetype mixes in workloads/npb are chosen so that running the
// real detectors over the generated programs reproduces the paper's
// Tables I and III row by row; the verdicts themselves always come from the
// analyzers, never from this table.
package archetype

import "fmt"

// Kind enumerates the loop archetypes.
type Kind int

// Archetypes. The comment gives the expected detection signature in the
// order (DepProf, DiscoPoP, Idioms, Polly, ICC, DCA).
const (
	// DoallConst: a[i] = f(i) with affine everything. (1,1,0,1,1,1)
	DoallConst Kind = iota
	// DoallCall: a[i] = pure(i); Polly rejects calls, ICC inlines.
	// (1,1,0,0,1,1)
	DoallCall
	// DoallCallRW: upd(a, i) writes a[i] through an impure callee; only the
	// dynamic dependence profile and DCA see the writes are disjoint;
	// DiscoPoP's CU construction keeps the inter-unit dependence.
	// (1,0,0,0,0,1)
	DoallCallRW
	// DoallDown: downward-counting doall; polyhedral analysis is direction
	// agnostic, the ICC model's dependence tests only handle canonical
	// upward loops. (1,1,0,1,0,1)
	DoallDown
	// SumReduction: s += f(i). Polly (as configured for detection) has no
	// reduction support. (1,1,1,0,1,1)
	SumReduction
	// MinMaxReduction: if (v > m) m = v. DiscoPoP's pattern matcher lacks
	// conditional reductions. (1,0,1,0,1,1)
	MinMaxReduction
	// Histogram: h[key(i)] += 1 with a non-affine key; only the idiom
	// matcher handles it statically. (1,1,1,0,0,1)
	Histogram
	// ScatterPerm: dst[perm(i)] = f(i) where perm is an injective
	// non-affine map; dynamically dependence-free, statically opaque.
	// (1,1,0,0,0,1)
	ScatterPerm
	// Recurrence: a[i] = a[i-1] + f(i); truly serial. (0,0,0,0,0,0)
	Recurrence
	// IOLoop: prints inside the loop; excluded/serial everywhere.
	// (0,0,0,0,0,0)
	IOLoop
	// UnexercisedPolly: an affine doall behind a workload-false guard;
	// static tools still detect it, dynamic tools see nothing.
	// (0,0,0,1,1,0)
	UnexercisedPolly
	// UnexercisedICC: same, with a pure call so only ICC detects it.
	// (0,0,0,0,1,0)
	UnexercisedICC
	// PLDSMap: linked-list traversal map loop; only DCA. (0,0,0,0,0,1)
	PLDSMap
	// FloatSum: floating-point accumulation with rounding; the dependence
	// tools treat it as a reduction, DCA observes the permuted rounding.
	// (1,1,1,0,1,0)
	FloatSum
	numKinds
)

var kindNames = [...]string{
	"doall_const", "doall_call", "doall_callrw", "doall_down",
	"sum_reduction", "minmax_reduction", "histogram", "scatter_perm",
	"recurrence", "io_loop", "unexercised_polly", "unexercised_icc",
	"plds_map", "float_sum",
}

func (k Kind) String() string { return kindNames[k] }

// Kinds lists every archetype.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Truth is the ground truth of an archetype loop, established analytically
// (this is the "expert algorithmic knowledge" column behind Table IV).
type Truth int

// Ground-truth classes.
const (
	// TruthParallel: the loop's iterations may run in any order.
	TruthParallel Truth = iota
	// TruthSerial: reordering changes the result.
	TruthSerial
	// TruthNotExercised: parallel, but the workload never runs it.
	TruthNotExercised
	// TruthIO: excluded from parallelization for side effects.
	TruthIO
)

// Truth returns the archetype's ground truth.
func (k Kind) Truth() Truth {
	switch k {
	case Recurrence, FloatSum:
		return TruthSerial
	case IOLoop:
		return TruthIO
	case UnexercisedPolly, UnexercisedICC:
		return TruthNotExercised
	}
	return TruthParallel
}

// Instance is one concrete archetype loop in a generated program.
type Instance struct {
	Kind Kind
	Seq  int // program-unique sequence number
	Trip int // iteration count (drives the coverage profile)
}

// Piece is the MiniC fragments of one instance: loop parameters and body
// (assembled into a function by the program builder, possibly sharing a
// function with a paired instance), plus main-side setup/call/consume code.
type Piece struct {
	// Params are "name type" parameter declarations for the loop function.
	Params []string
	// Body is the loop (and any per-call locals) inside the function.
	Body string
	// Ret is the function result type ("" for void) and RetExpr the value.
	Ret     string
	RetExpr string
	// Setup runs in main before the call (allocations).
	Setup string
	// Args are the call arguments supplied by main.
	Args []string
	// Consume is a main-side expression folded into the program checksum
	// ("" when the function's return value is the checksum contribution).
	Consume string
}

// Build renders an instance.
func Build(inst Instance) Piece {
	n := inst.Trip
	s := inst.Seq
	arr := fmt.Sprintf("arr%d", s)
	switch inst.Kind {
	case DoallConst:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = 0; i < n; i++) { a[i] = i * 3 + 7; }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[%d]", arr, arr, n-1),
		}
	case DoallCall:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = 0; i < n; i++) { a[i] = pure3(i); }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[%d]", arr, arr, n-1),
		}
	case DoallCallRW:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = 0; i < n; i++) { upd(a, i); }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[%d]", arr, arr, n-1),
		}
	case DoallDown:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = n - 1; i >= 0; i--) { a[i] = i * 5 + 1; }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[%d]", arr, arr, n-1),
		}
	case SumReduction:
		return Piece{
			Params:  []string{"n int"},
			Body:    fmt.Sprintf("\tvar s%d int = 0;\n\tfor (var i int = 0; i < n; i++) { s%d += (i * 7 + 3) %% 13; }\n", s, s),
			Ret:     "int",
			RetExpr: fmt.Sprintf("s%d", s),
			Args:    []string{fmt.Sprint(n)},
		}
	case MinMaxReduction:
		return Piece{
			Params: []string{"n int"},
			Body: fmt.Sprintf("\tvar m%d int = 0;\n\tfor (var i int = 0; i < n; i++) {\n"+
				"\t\tvar v int = (i * 17 + 5) %% 97;\n\t\tif (v > m%d) { m%d = v; }\n\t}\n", s, s, s),
			Ret:     "int",
			RetExpr: fmt.Sprintf("m%d", s),
			Args:    []string{fmt.Sprint(n)},
		}
	case Histogram:
		return Piece{
			Params:  []string{"h []int", "n int"},
			Body:    "\tfor (var i int = 0; i < n; i++) { h[(i * 7 + 3) % 8] += 1; }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [8]int;\n", arr),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[7] * 3", arr, arr),
		}
	case ScatterPerm:
		// stride coprime with n gives an injective index map.
		stride := coprimeStride(n)
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    fmt.Sprintf("\tfor (var i int = 0; i < n; i++) { a[(i * %d) %% n] = i * 5 + 2; }\n", stride),
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[%d]", arr, arr, n-1),
		}
	case Recurrence:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = 1; i < n; i++) { a[i] = a[i-1] + i % 9; }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[%d]", arr, n-1),
		}
	case IOLoop:
		return Piece{
			Params: []string{"a []int", "n int"},
			Body: "\tfor (var i int = 0; i < n; i++) {\n" +
				"\t\ta[i] = i * 2 + 1;\n\t\tif (i % 32 == 0) { print(i); }\n\t}\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n),
			Args:    []string{arr, fmt.Sprint(n)},
			Consume: fmt.Sprintf("%s[0] + %s[%d]", arr, arr, n-1),
		}
	case UnexercisedPolly:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = 0; i < n; i++) { a[i] = i * 11 + 4; }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [4]int;\n", arr),
			Args:    []string{arr, "0"}, // never exercised by the workload
			Consume: fmt.Sprintf("%s[0]", arr),
		}
	case UnexercisedICC:
		return Piece{
			Params:  []string{"a []int", "n int"},
			Body:    "\tfor (var i int = 0; i < n; i++) { a[i] = pure3(i); }\n",
			Setup:   fmt.Sprintf("\tvar %s []int = new [4]int;\n", arr),
			Args:    []string{arr, "0"},
			Consume: fmt.Sprintf("%s[0]", arr),
		}
	case PLDSMap:
		// Build the list serially (that loop is part of the instance and is
		// itself a carried-dependence loop), then map over it.
		return Piece{
			Params: []string{"n int"},
			Body: fmt.Sprintf("\tvar head%d *DNode = nil;\n"+
				"\tfor (var i int = 0; i < n; i++) {\n"+
				"\t\tvar nd *DNode = new DNode;\n\t\tnd->val = i;\n\t\tnd->next = head%d;\n\t\thead%d = nd;\n\t}\n"+
				"\tvar p%d *DNode = head%d;\n"+
				"\twhile (p%d != nil) {\n\t\tp%d->val = p%d->val * 2 + 1;\n\t\tp%d = p%d->next;\n\t}\n"+
				"\tvar s%d int = 0;\n\tp%d = head%d;\n"+
				"\twhile (p%d != nil) { s%d += p%d->val; p%d = p%d->next; }\n",
				s, s, s, s, s, s, s, s, s, s, s, s, s, s, s, s, s, s),
			Ret:     "int",
			RetExpr: fmt.Sprintf("s%d", s),
			Args:    []string{fmt.Sprint(n)},
		}
	case FloatSum:
		// Mixed-magnitude partial sums: reordering the additions changes the
		// rounding, which DCA observes and the dependence tools do not.
		return Piece{
			Params: []string{"n int"},
			Body: fmt.Sprintf("\tvar f%d float = 0.0;\n"+
				"\tfor (var i int = 0; i < n; i++) { f%d += 1.0 / float((i %% 17) * (i %% 17) + 1); }\n", s, s),
			Ret:     "int",
			RetExpr: fmt.Sprintf("int(f%d * 100000000.0)", s),
			Args:    []string{fmt.Sprint(n)},
		}
	}
	panic(fmt.Sprintf("archetype: unknown kind %d", inst.Kind))
}

// LoopsPerInstance returns how many loops an instance contributes (almost
// always 1; PLDSMap contributes 3: build, map and sum; FloatSum's carry
// chain is 1).
func (k Kind) LoopsPerInstance() int {
	if k == PLDSMap {
		return 3
	}
	return 1
}

// SharedDecls returns the helper functions and structs archetype bodies
// reference; emit once per program.
func SharedDecls(needPure, needUpd, needPLDS bool) string {
	out := ""
	if needPLDS {
		out += "struct DNode { val int; next *DNode; }\n"
	}
	if needPure {
		out += "func pure3(x int) int { return x * 2 + 1; }\n"
	}
	if needUpd {
		out += "func upd(a []int, i int) { a[i] = i * 2 + 1; }\n"
	}
	return out
}

// coprimeStride returns a stride > 1 coprime with n.
func coprimeStride(n int) int {
	for s := 5; ; s += 2 {
		if gcd(s, n) == 1 {
			return s
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
