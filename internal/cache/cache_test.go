package cache_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dca/internal/cache"
)

// key returns a distinct 32-hex-digit key, the shape fingerprints have.
func key(i int) string { return fmt.Sprintf("%032x", i+1) }

func open(t *testing.T, dir string, mem int64) *cache.Cache {
	t.Helper()
	c, err := cache.Open(dir, mem, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTripMemoryOnly(t *testing.T) {
	c := open(t, "", 0)
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(0), []byte("verdict"))
	got, ok := c.Get(key(0))
	if !ok || string(got) != "verdict" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDiskPersistence: entries survive a process restart (a fresh Open on
// the same directory) and are promoted back into memory.
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1 := open(t, dir, 0)
	c1.Put(key(1), []byte("persisted"))

	c2 := open(t, dir, 0)
	got, ok := c2.Get(key(1))
	if !ok || string(got) != "persisted" {
		t.Fatalf("after reopen: Get = %q, %v", got, ok)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("expected a disk hit, stats = %+v", st)
	}
	// Second read is served from memory.
	if _, ok := c2.Get(key(1)); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("expected a mem hit after promotion, stats = %+v", st)
	}
}

// entryPath locates the single on-disk entry file.
func entryPath(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			found = p
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err %v)", dir, err)
	}
	return found
}

// corrupt rewrites the stored entry through fn and asserts the next read
// is a miss (never a panic, never a wrong value) with the given counter.
func corrupt(t *testing.T, name string, fn func([]byte) []byte, wantCorruptions, wantVersionMisses uint64) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		dir := t.TempDir()
		c := open(t, dir, 0)
		c.Put(key(2), []byte("good verdict"))
		p := entryPath(t, dir)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, fn(data), 0o644); err != nil {
			t.Fatal(err)
		}
		// A fresh cache bypasses the memory tier.
		c2 := open(t, dir, 0)
		if val, ok := c2.Get(key(2)); ok {
			t.Fatalf("damaged entry served as a hit: %q", val)
		}
		st := c2.Stats()
		if st.Corruptions != wantCorruptions || st.VersionMisses != wantVersionMisses {
			t.Fatalf("stats = %+v, want corruptions=%d versionMisses=%d", st, wantCorruptions, wantVersionMisses)
		}
		if st.Misses != 1 {
			t.Fatalf("damaged entry must count as a miss, stats = %+v", st)
		}
		// The bad entry is removed, so the next read is a clean miss.
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("damaged entry not removed: %v", err)
		}
	})
}

func TestCorruptedEntriesReadAsMisses(t *testing.T) {
	corrupt(t, "truncated to half", func(b []byte) []byte { return b[:len(b)/2] }, 1, 0)
	corrupt(t, "truncated inside header", func(b []byte) []byte { return b[:10] }, 1, 0)
	corrupt(t, "empty file", func(b []byte) []byte { return nil }, 1, 0)
	corrupt(t, "flipped payload bit", func(b []byte) []byte {
		b[len(b)-1] ^= 0x40
		return b
	}, 1, 0)
	corrupt(t, "bad magic", func(b []byte) []byte {
		b[0] = 'X'
		return b
	}, 1, 0)
	corrupt(t, "trailing garbage", func(b []byte) []byte { return append(b, 0xFF) }, 1, 0)
	corrupt(t, "container version bump", func(b []byte) []byte {
		b[4]++
		return b
	}, 0, 1)
}

// TestAppVersionMismatch: entries written by a different record-schema
// version read as misses and are invalidated.
func TestAppVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	c1 := open(t, dir, 0) // appVersion 7
	c1.Put(key(3), []byte("v7 record"))

	c2, err := cache.Open(dir, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if val, ok := c2.Get(key(3)); ok {
		t.Fatalf("v7 record served to a v8 reader: %q", val)
	}
	if st := c2.Stats(); st.VersionMisses != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLRUEviction: the memory tier respects its byte budget, evicting
// least-recently-used entries first.
func TestLRUEviction(t *testing.T) {
	// Budget fits ~4 entries of (32-byte key + 100-byte value + overhead).
	c := open(t, "", 4*(32+100+128))
	val := make([]byte, 100)
	for i := 0; i < 8; i++ {
		c.Put(key(i), val)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after exceeding the budget, stats = %+v", st)
	}
	if st.MemBytes > 4*(32+100+128) {
		t.Fatalf("memory budget exceeded: %d", st.MemBytes)
	}
	// The most recent entry must still be resident; the oldest must not.
	if _, ok := c.Get(key(7)); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("least recent entry survived eviction")
	}
}

// TestOversizedValueSkipsMemory: a value above the whole memory budget
// never enters the memory tier but still persists on disk.
func TestOversizedValueSkipsMemory(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, 256)
	big := make([]byte, 4096)
	big[0] = 1
	c.Put(key(4), big)
	if st := c.Stats(); st.MemEntries != 0 {
		t.Fatalf("oversized value resident in memory, stats = %+v", st)
	}
	got, ok := c.Get(key(4))
	if !ok || len(got) != 4096 || got[0] != 1 {
		t.Fatalf("oversized value lost: ok=%v len=%d", ok, len(got))
	}
}

// TestNonHexKeySkipsDisk: keys outside the fingerprint alphabet never
// touch the filesystem but still work through the memory tier.
func TestNonHexKeySkipsDisk(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, 0)
	c.Put("../escape", []byte("x"))
	if _, ok := c.Get("../escape"); !ok {
		t.Fatal("memory tier lost non-hex key")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("non-hex key reached the disk tier: %v", entries)
	}
}

// TestConcurrent hammers one cache from many goroutines mixing hits,
// misses, overwrites, evictions, and disk reads; run under -race this is
// the cache's thread-safety proof.
func TestConcurrent(t *testing.T) {
	dir := t.TempDir()
	// A small budget keeps eviction churning during the test.
	c := open(t, dir, 2048)
	const goroutines = 8
	const ops = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := key(i % 16)
				switch i % 3 {
				case 0:
					c.Put(k, []byte(fmt.Sprintf("value-%d", i%16)))
				default:
					if val, ok := c.Get(k); ok {
						want := fmt.Sprintf("value-%d", i%16)
						if string(val) != want {
							t.Errorf("wrong value for %s: %q", k, val)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Puts == 0 || st.Hits()+st.Misses == 0 {
		t.Fatalf("counters untouched: %+v", st)
	}
}
