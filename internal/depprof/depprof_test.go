package depprof_test

import (
	"errors"
	"strings"
	"testing"

	"dca/internal/depprof"
	"dca/internal/interp"
	"dca/internal/irbuild"
)

func analyze(t *testing.T, src string) *depprof.Report {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := depprof.Analyze(prog, depprof.DefaultPolicy(), 0)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func expectParallel(t *testing.T, rep *depprof.Report, fn string, idx int, want bool) {
	t.Helper()
	v := rep.Verdict(fn, idx)
	if v == nil {
		t.Fatalf("no verdict for %s/L%d:\n%s", fn, idx, rep)
	}
	if v.Parallel != want {
		t.Errorf("%s/L%d parallel = %v (%v), want %v", fn, idx, v.Parallel, v.Reasons, want)
	}
}

// TestArrayMapParallel: Fig. 1(a) — dependence profiling succeeds.
func TestArrayMapParallel(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [32]int;
	for (var i int = 0; i < 32; i++) { a[i]++; }
	print(a[0]);
}`)
	expectParallel(t, rep, "main", 0, true)
}

// TestPLDSMapSerial: Fig. 1(b) — the cross-iteration RAW on ptr defeats
// dependence profiling even with perfect dynamic information. This is the
// paper's central motivating contrast.
func TestPLDSMapSerial(t *testing.T) {
	rep := analyze(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 8; i++) {
		var n *Node = new Node;
		n->val = i;
		n->next = head;
		head = n;
	}
	var ptr *Node = head;
	while (ptr != nil) {
		ptr->val++;
		ptr = ptr->next;
	}
	print(head->val);
}`)
	expectParallel(t, rep, "main", 1, false)
	v := rep.Verdict("main", 1)
	found := false
	for _, r := range v.Reasons {
		if r == `loop-carried scalar dependence on "ptr"` {
			found = true
		}
	}
	if !found {
		t.Errorf("expected carried-scalar reason on ptr, got %v", v.Reasons)
	}
}

func TestScalarReductionParallel(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [32]int;
	for (var i int = 0; i < 32; i++) { a[i] = i; }
	var s int = 0;
	for (var i int = 0; i < 32; i++) { s += a[i]; }
	print(s);
}`)
	expectParallel(t, rep, "main", 1, true)
}

func TestMinMaxReductionPolicy(t *testing.T) {
	src := `
func main() {
	var a []int = new [32]int;
	for (var i int = 0; i < 32; i++) { a[i] = (i * 17) % 31; }
	var m int = 0;
	for (var i int = 0; i < 32; i++) {
		if (a[i] > m) { m = a[i]; }
	}
	print(m);
}`
	rep := analyze(t, src)
	expectParallel(t, rep, "main", 1, true)

	// Without min/max recognition (the DiscoPoP-style policy) the loop is
	// serial.
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	pol := depprof.DefaultPolicy()
	pol.MinMaxScalars = false
	rep2, err := depprof.Analyze(prog, pol, 0)
	if err != nil {
		t.Fatal(err)
	}
	expectParallel(t, rep2, "main", 1, false)
}

func TestHistogramReduction(t *testing.T) {
	rep := analyze(t, `
func main() {
	var b []int = new [64]int;
	for (var i int = 0; i < 64; i++) { b[i] = (i * 7) % 8; }
	var h []int = new [8]int;
	for (var i int = 0; i < 64; i++) { h[b[i]] += 1; }
	print(h[0]);
}`)
	expectParallel(t, rep, "main", 1, true)
}

func TestTrueRecurrenceSerial(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [16]int;
	a[0] = 1;
	for (var i int = 1; i < 16; i++) { a[i] = a[i-1] + 1; }
	print(a[15]);
}`)
	expectParallel(t, rep, "main", 0, false)
	v := rep.Verdict("main", 0)
	if !v.Executed {
		t.Error("loop should be marked executed")
	}
}

func TestNotExercisedLoop(t *testing.T) {
	rep := analyze(t, `
func main() {
	var n int = 0;
	var a []int = new [4]int;
	for (var i int = 0; i < n; i++) { a[i] = i; }
	print(a[0]);
}`)
	v := rep.Verdict("main", 0)
	if v == nil {
		t.Fatal("missing verdict")
	}
	if v.Parallel || v.Executed {
		t.Errorf("unexercised loop must not be reported: parallel=%v executed=%v", v.Parallel, v.Executed)
	}
}

func TestIOLoopSerial(t *testing.T) {
	rep := analyze(t, `
func main() {
	for (var i int = 0; i < 4; i++) { print(i); }
}`)
	expectParallel(t, rep, "main", 0, false)
}

// TestPrivatizationWriteFirst: a scratch array written before read each
// iteration passes the dynamic write-first test.
func TestPrivatizationWriteFirst(t *testing.T) {
	rep := analyze(t, `
func main() {
	var out []int = new [8]int;
	var tmp []int = new [4]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 4; j++) { tmp[j] = i * j; }
		var s int = 0;
		for (var j int = 0; j < 4; j++) { s += tmp[j]; }
		out[i] = s;
	}
	print(out[7]);
}`)
	// The outer loop carries WAR/WAW on tmp, but every iteration writes tmp
	// before reading it: privatizable, hence parallel.
	expectParallel(t, rep, "main", 0, true)
}

// TestPrivatizationFailure: read-before-write across iterations is fatal.
func TestPrivatizationFailure(t *testing.T) {
	rep := analyze(t, `
func main() {
	var buf []int = new [4]int;
	var out []int = new [8]int;
	for (var i int = 0; i < 8; i++) {
		out[i] = buf[0];
		buf[0] = i;
	}
	print(out[7]);
}`)
	expectParallel(t, rep, "main", 0, false)
}

// TestWorklistSerial: the BFS-style worklist loop is serial for dependence
// profiling (pops mutate the list the loop condition reads).
func TestWorklistSerial(t *testing.T) {
	rep := analyze(t, `
struct Node { val int; next *Node; }
struct List { head *Node; size int; }
func main() {
	var wl *List = new List;
	for (var i int = 0; i < 8; i++) {
		var n *Node = new Node;
		n->val = i;
		n->next = wl->head;
		wl->head = n;
		wl->size++;
	}
	var total int = 0;
	while (wl->size > 0) {
		var cur *Node = wl->head;
		wl->head = cur->next;
		wl->size--;
		total += cur->val;
	}
	print(total);
}`)
	expectParallel(t, rep, "main", 1, false)
}

// TestCalleeAccessesAttributed: dependences inside called functions belong
// to the calling loop too.
func TestCalleeAccessesAttributed(t *testing.T) {
	rep := analyze(t, `
func touch(a []int, i int) { a[0] = a[0] + i; }
func main() {
	var a []int = new [4]int;
	for (var i int = 0; i < 8; i++) { touch(a, i); }
	print(a[0]);
}`)
	// Every iteration reads and writes a[0] through the callee: carried RAW
	// (and the op= pattern is split across instructions in a callee, still
	// recognized as a reduction group since Load/BinOp/Store share a block).
	v := rep.Verdict("main", 0)
	if v == nil {
		t.Fatal("missing verdict")
	}
	if !v.Executed {
		t.Error("loop must be executed")
	}
	// a[0] += i inside the callee forms a reduction group; dependence
	// profiling accepts it.
	if !v.Parallel {
		t.Errorf("callee reduction should be accepted, reasons: %v", v.Reasons)
	}
}

// TestTraceTruncatedOnBudget: running out of the step budget is an
// analysis-resource limit, not a program fault — Trace keeps the partial
// profile and marks it truncated instead of returning an error.
func TestTraceTruncatedOnBudget(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var a []int = new [1000]int;
	for (var i int = 0; i < 1000; i++) { a[i] = i; }
	print(a[999]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := depprof.Trace(prog, 50)
	if err != nil {
		t.Fatalf("budget exhaustion must not be an error, got %v", err)
	}
	if !prof.Truncated {
		t.Error("profile should be marked truncated")
	}
	if prof.Steps == 0 {
		t.Error("truncated profile should still report steps executed")
	}
	rep, err := depprof.Analyze(prog, depprof.DefaultPolicy(), 50)
	if err != nil {
		t.Fatalf("Analyze under budget: %v", err)
	}
	if !rep.Truncated {
		t.Error("report should mirror Profile.Truncated")
	}
	if !strings.Contains(rep.String(), "truncated") {
		t.Errorf("report text should mention truncation:\n%s", rep)
	}
}

// TestTraceFaultClassified: a program fault during tracing is a real error,
// clearly distinguished from a budget stop.
func TestTraceFaultClassified(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var z int = 0;
	print(10 / z);
}`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = depprof.Trace(prog, 0)
	if err == nil {
		t.Fatal("faulting program must error")
	}
	if !strings.Contains(err.Error(), "faulted") {
		t.Errorf("err = %v, want fault wording", err)
	}
	if errors.Is(err, interp.ErrBudget) {
		t.Errorf("fault misclassified as budget: %v", err)
	}
}

func TestCoverageSteps(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = i; }
	print(a[63]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := depprof.Trace(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := depprof.LoopKey{Fn: "main", Index: 0}
	if prof.LoopSteps[key] == 0 {
		t.Error("expected loop steps attributed to the loop")
	}
	if prof.Steps <= prof.LoopSteps[key] {
		t.Errorf("total steps %d must exceed loop steps %d", prof.Steps, prof.LoopSteps[key])
	}
	lp := prof.Loops[key]
	if lp.Invocations != 1 || lp.Iterations != 65 {
		t.Errorf("invocations=%d iterations=%d, want 1 and 65 (header entries)", lp.Invocations, lp.Iterations)
	}
}
