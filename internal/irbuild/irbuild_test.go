package irbuild_test

import (
	"strings"
	"testing"

	"dca/internal/cfg"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// run executes and returns output.
func run(t *testing.T, prog *ir.Program) string {
	t.Helper()
	var out strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &out}); err != nil {
		t.Fatalf("run: %v\n%s", err, prog)
	}
	return out.String()
}

func TestShortCircuitLowering(t *testing.T) {
	prog := compile(t, `
func sideEffect(a []int) bool { a[0] = a[0] + 1; return true; }
func main() {
	var a []int = new [1]int;
	var t bool = false;
	if (t && sideEffect(a)) { print("no"); }
	print(a[0]);
	if (true || sideEffect(a)) { }
	print(a[0]);
}`)
	// sideEffect must never run: the counter stays 0.
	if got := run(t, prog); got != "0\n0\n" {
		t.Errorf("short-circuit output = %q", got)
	}
}

func TestCompoundAssignLowering(t *testing.T) {
	prog := compile(t, `
func main() {
	var a []int = new [3]int;
	a[1] = 10;
	a[1] += 5;
	a[1] *= 2;
	a[1] -= 3;
	a[1] /= 2;
	a[1] %= 7;
	print(a[1]);
}`)
	// ((10+5)*2-3)/2 % 7 = 13 % 7 = 6
	if got := run(t, prog); got != "6\n" {
		t.Errorf("compound assign = %q", got)
	}
	// The index expression of a compound assignment must be evaluated once:
	prog2 := compile(t, `
func bump(c []int) int { c[0]++; return c[0]; }
func main() {
	var c []int = new [1]int;
	var a []int = new [8]int;
	a[bump(c)] += 1;
	print(c[0], a[1]);
}`)
	if got := run(t, prog2); got != "1 1\n" {
		t.Errorf("index evaluated more than once: %q", got)
	}
}

func TestFloatIncDec(t *testing.T) {
	prog := compile(t, `
func main() {
	var f float = 1.5;
	f++;
	f--;
	f++;
	print(f);
}`)
	if got := run(t, prog); got != "2.5\n" {
		t.Errorf("float inc/dec = %q", got)
	}
}

func TestImplicitReturns(t *testing.T) {
	prog := compile(t, `
func f(x int) int {
	if (x > 0) { return x; }
	return 0 - x;
}
func g() { }
func h(x int) int {
	if (x > 0) { return 1; }
	return 0;
}
func main() { print(f(3) + f(-4) + h(0)); }`)
	if got := run(t, prog); got != "7\n" {
		t.Errorf("returns = %q", got)
	}
	// Every block of every function must have a terminator.
	for _, fn := range prog.Funcs {
		if err := fn.Verify(); err != nil {
			t.Errorf("verify %s: %v", fn.Name, err)
		}
	}
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	if _, err := irbuild.Compile("t.mc", `func main() { break; }`); err == nil {
		t.Error("break outside loop must fail")
	}
	if _, err := irbuild.Compile("t.mc", `func main() { continue; }`); err == nil {
		t.Error("continue outside loop must fail")
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	prog := compile(t, `
func f() int {
	return 1;
	print("unreachable");
}
func main() { print(f()); }`)
	if got := run(t, prog); got != "1\n" {
		t.Errorf("dead code = %q", got)
	}
}

func TestLoopShapes(t *testing.T) {
	prog := compile(t, `
func main() {
	var s int = 0;
	// for with continue hits the latch, break hits the exit
	for (var i int = 0; i < 10; i++) {
		if (i % 2 == 1) { continue; }
		if (i > 6) { break; }
		s += i;
	}
	print(s);
}`)
	if got := run(t, prog); got != "12\n" { // 0+2+4+6
		t.Errorf("loop shape = %q", got)
	}
	_, loops := cfg.LoopsOf(prog.Func("main"))
	if len(loops) != 1 {
		t.Errorf("loops = %d", len(loops))
	}
}

func TestVariableShadowing(t *testing.T) {
	prog := compile(t, `
func main() {
	var x int = 1;
	{
		var x int = 2;
		print(x);
	}
	print(x);
	for (var x int = 9; x < 10; x++) { print(x); }
	print(x);
}`)
	if got := run(t, prog); got != "2\n1\n9\n1\n" {
		t.Errorf("shadowing = %q", got)
	}
}

func TestNestedFieldStores(t *testing.T) {
	prog := compile(t, `
struct Inner { v int; }
struct Outer { in *Inner; }
func main() {
	var o *Outer = new Outer;
	o->in = new Inner;
	o->in->v = 41;
	o->in->v += 1;
	print(o->in->v);
}`)
	if got := run(t, prog); got != "42\n" {
		t.Errorf("nested fields = %q", got)
	}
}

func TestStringOps(t *testing.T) {
	prog := compile(t, `
func main() {
	var a string = "foo";
	var b string = a + "bar";
	print(b, b == "foobar", a < b);
}`)
	if got := run(t, prog); got != "foobar true true\n" {
		t.Errorf("strings = %q", got)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile must panic on bad source")
		}
	}()
	irbuild.MustCompile("bad.mc", `func main() { x = ; }`)
}
