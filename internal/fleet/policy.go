package fleet

import (
	"context"
	"time"
)

// Policy is the coordinator's dispatch resilience configuration. The zero
// value is filled with production defaults by withDefaults; every knob is
// also reachable from `dca serve` and `dca fleet-bench` flags.
type Policy struct {
	// DispatchTimeout caps one batch dispatch attempt's wall clock — the
	// bound that turns a hung worker into a retryable failure instead of a
	// stalled run. <= 0 disables the cap (the request context still
	// applies).
	DispatchTimeout time.Duration
	// NodeRetries is how many times a transient dispatch failure retries
	// the same node before the node is declared suspect and the batch
	// re-routes. Negative disables retries; the default is 1.
	NodeRetries int
	// HedgeAfter is the straggler delay: a batch still unfinished after
	// this long is re-issued to its ring successor, first result wins —
	// safe because verdicts are deterministic and the merge dedups.
	// <= 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the background prober's cadence and the initial
	// probe backoff for a freshly suspected node (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
	// ProbeBackoffCap bounds the exponential probe backoff for nodes that
	// keep failing probes (default 30s).
	ProbeBackoffCap time.Duration
	// RetryBase seeds the decorrelated-jitter backoff between re-dispatch
	// rounds and between same-node retries (default 25ms).
	RetryBase time.Duration
	// RetryCap bounds that backoff (default 2s).
	RetryCap time.Duration
	// MaxRetryAfter caps how long a worker's Retry-After hint is honored
	// before retrying it (default 5s) — a confused worker must not park
	// the coordinator.
	MaxRetryAfter time.Duration
	// Jitter overrides the randomness source: it returns a uniform value
	// in [0, max). nil means math/rand; tests inject determinism.
	Jitter func(max int64) int64
}

func (p Policy) withDefaults() Policy {
	if p.NodeRetries == 0 {
		p.NodeRetries = 1
	}
	if p.NodeRetries < 0 {
		p.NodeRetries = 0
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = time.Second
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = 2 * time.Second
	}
	if p.ProbeBackoffCap <= 0 {
		p.ProbeBackoffCap = 30 * time.Second
	}
	if p.RetryBase <= 0 {
		p.RetryBase = 25 * time.Millisecond
	}
	if p.RetryCap <= 0 {
		p.RetryCap = 2 * time.Second
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = 5 * time.Second
	}
	return p
}

// backoffStep advances a decorrelated-jitter backoff: the next sleep is
// uniform in [base, 3*prev), capped — the AWS "decorrelated jitter"
// schedule, which spreads retrying coordinators apart instead of marching
// them in synchronized exponential waves.
func (p Policy) backoffStep(jitter func(int64) int64, prev time.Duration) time.Duration {
	if prev < p.RetryBase {
		prev = p.RetryBase
	}
	span := int64(3*prev - p.RetryBase)
	d := p.RetryBase
	if span > 0 {
		d += time.Duration(jitter(span))
	}
	if d > p.RetryCap {
		d = p.RetryCap
	}
	return d
}

// sleepCtx waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
