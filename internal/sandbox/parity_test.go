package sandbox_test

import (
	"context"
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/sandbox"
	"dca/internal/vm"
)

// runBoth executes the same program under both executors and returns the
// two outcomes plus captured output. The VM toggle is restored afterwards.
func runBoth(t *testing.T, prog *ir.Program, ctx context.Context, lim sandbox.Limits) (vmOut, twOut *sandbox.Outcome, vmStr, twStr string) {
	t.Helper()
	defer vm.SetEnabled(true)
	var vb, tb strings.Builder
	vm.SetEnabled(true)
	vmOut = sandbox.Run(ctx, prog, interp.Config{Out: &vb}, lim, nil)
	vm.SetEnabled(false)
	twOut = sandbox.Run(ctx, prog, interp.Config{Out: &tb}, lim, nil)
	return vmOut, twOut, vb.String(), tb.String()
}

// TestExecutorTrapParity locks the byte-identical contract between the
// bytecode VM and the tree-walking interpreter at the sandbox level: for
// every trap kind in the taxonomy, both executors must produce the same
// kind, the same error text, the same retired-step count at the moment the
// trap fired, and the same (possibly truncated) output.
func TestExecutorTrapParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		lim  sandbox.Limits
		kind sandbox.Kind
	}{
		{
			name: "clean",
			src:  `func main() { var s int = 0; for (var i int = 0; i < 100; i++) { s += i; } print(s); }`,
			kind: sandbox.None,
		},
		{
			name: "fault-div-zero",
			src:  `func main() { var z int = 0; print(10 / z); }`,
			kind: sandbox.Fault,
		},
		{
			name: "fault-nil-deref",
			src: `
struct N { v int; }
func main() { var n *N = nil; print(n->v); }`,
			kind: sandbox.Fault,
		},
		{
			name: "fault-oob",
			src:  `func main() { var a []int = new [3]int; var i int = 7; print(a[i]); }`,
			kind: sandbox.Fault,
		},
		{
			name: "budget-steps",
			src:  `func main() { var s int = 0; while (true) { s += 1; } }`,
			lim:  sandbox.Limits{MaxSteps: 777},
			kind: sandbox.Budget,
		},
		{
			name: "budget-heap",
			src: `
struct N { v int; }
func main() { for (var i int = 0; i < 100; i++) { var n *N = new N; n->v = i; } }`,
			lim:  sandbox.Limits{MaxHeapObjects: 7},
			kind: sandbox.Budget,
		},
		{
			name: "budget-output",
			src:  `func main() { for (var i int = 0; i < 10000; i++) { print(i); } }`,
			lim:  sandbox.Limits{MaxOutput: 64},
			kind: sandbox.Budget,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			vmOut, twOut, vmStr, twStr := runBoth(t, prog, nil, tc.lim)
			assertParity(t, vmOut, twOut, vmStr, twStr, tc.kind)
		})
	}
}

// TestExecutorTimeoutParity covers the Timeout kind with a pre-cancelled
// context, the only deterministic way to trip it identically in both
// executors.
func TestExecutorTimeoutParity(t *testing.T) {
	prog := compile(t, `func main() { while (true) { } }`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vmOut, twOut, vmStr, twStr := runBoth(t, prog, ctx, sandbox.Limits{})
	assertParity(t, vmOut, twOut, vmStr, twStr, sandbox.Timeout)
}

func assertParity(t *testing.T, vmOut, twOut *sandbox.Outcome, vmStr, twStr string, kind sandbox.Kind) {
	t.Helper()
	if vmStr != twStr {
		t.Errorf("output diverges:\n  vm:   %q\n  tree: %q", vmStr, twStr)
	}
	if kind == sandbox.None {
		if !vmOut.OK() || !twOut.OK() {
			t.Fatalf("want clean runs, got vm=%+v tree=%+v", vmOut.Trap, twOut.Trap)
		}
		if vmOut.Result.Steps != twOut.Result.Steps {
			t.Errorf("step counts diverge: vm=%d tree=%d", vmOut.Result.Steps, twOut.Result.Steps)
		}
		return
	}
	if vmOut.OK() || twOut.OK() {
		t.Fatalf("want %v traps, got vm=%+v tree=%+v", kind, vmOut.Trap, twOut.Trap)
	}
	if vmOut.Trap.Kind != kind || twOut.Trap.Kind != kind {
		t.Fatalf("trap kinds: vm=%v tree=%v, want %v", vmOut.Trap.Kind, twOut.Trap.Kind, kind)
	}
	if ve, te := vmOut.Trap.Err.Error(), twOut.Trap.Err.Error(); ve != te {
		t.Errorf("trap errors diverge:\n  vm:   %s\n  tree: %s", ve, te)
	}
	if vmOut.Trap.Steps != twOut.Trap.Steps {
		t.Errorf("steps at trap diverge: vm=%d tree=%d", vmOut.Trap.Steps, twOut.Trap.Steps)
	}
}
