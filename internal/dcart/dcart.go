// Package dcart is the DCA runtime library (§IV-B): it services the rt_*
// intrinsics that the instrumentation pass inserts, records iterator values
// (iterator recording), applies permutation schedules (DCA execution), and
// takes canonical live-out snapshots (live-out verification).
package dcart

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
)

// Schedule decides the replay order of n recorded iterations.
type Schedule interface {
	Name() string
	// Permute returns a permutation of [0,n).
	Permute(n int) []int
}

// Identity replays iterations in original order (the golden reference).
type Identity struct{}

// Name implements Schedule.
func (Identity) Name() string { return "identity" }

// Permute implements Schedule.
func (Identity) Permute(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Reverse replays iterations back to front.
type Reverse struct{}

// Name implements Schedule.
func (Reverse) Name() string { return "reverse" }

// Permute implements Schedule.
func (Reverse) Permute(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

// Random replays iterations in a seeded pseudo-random shuffle; distinct
// seeds give the paper's "configurable number of random shuffles".
type Random struct{ Seed int64 }

// Name implements Schedule.
func (s Random) Name() string { return fmt.Sprintf("random(%d)", s.Seed) }

// Permute implements Schedule.
func (s Random) Permute(n int) []int {
	r := rand.New(rand.NewSource(s.Seed))
	return r.Perm(n)
}

// Rotate replays iterations shifted by one (a cheap adjacent-exchange
// schedule useful in ablations).
type Rotate struct{}

// Name implements Schedule.
func (Rotate) Name() string { return "rotate" }

// Permute implements Schedule.
func (Rotate) Permute(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i + 1) % n
	}
	return p
}

// DefaultSchedules is the paper-default test set: reverse plus three random
// shuffles.
func DefaultSchedules() []Schedule {
	return []Schedule{Reverse{}, Random{Seed: 1}, Random{Seed: 2}, Random{Seed: 3}}
}

// Runtime implements interp.Runtime for one execution of an instrumented
// program. It accumulates one snapshot per loop invocation.
type Runtime struct {
	Schedule Schedule
	// TrackContexts records each invocation's calling context (the chain
	// of function names on the stack) alongside its snapshot, enabling the
	// context-sensitive analysis of core.AnalyzeLoopContexts — the paper's
	// §IV-E future-work extension.
	TrackContexts bool
	// OnlyContext, when non-empty, applies the schedule only to invocations
	// whose calling context matches; every other invocation replays in
	// original order. This isolates one context's permutation effects so
	// they can be attributed precisely.
	OnlyContext string
	// Footprint, when non-nil, is told where driver iterations begin and
	// end so the executor's heap-access stream can be segmented per
	// iteration (the dynamic stage's footprint fast path). The same
	// recorder must be installed in the executor's interp.Config.
	Footprint *interp.Footprint

	records [][]ir.Value
	order   []int
	cursor  int
	driving bool

	// DebugSnapshots additionally materializes the full string serialization
	// of every snapshot into SnapshotStrings, for mismatch diagnosis. Off by
	// default: the digest alone decides equality on the hot path.
	DebugSnapshots bool

	// Snapshots holds one canonical live-out digest per completed loop
	// invocation, in completion order; Contexts (when tracked) holds the
	// matching calling contexts. SnapshotStrings mirrors Snapshots with the
	// string serialization when DebugSnapshots is set.
	Snapshots       []Digest
	SnapshotStrings []string
	Contexts        []string
	// Invocations counts completed loop invocations; Iterations counts
	// replayed payload iterations.
	Invocations int
	Iterations  int64
}

// NewRuntime creates a runtime applying the given schedule.
func NewRuntime(s Schedule) *Runtime { return &Runtime{Schedule: s} }

var _ interp.Runtime = (*Runtime)(nil)

// Intrinsic implements interp.Runtime.
func (rt *Runtime) Intrinsic(_ interp.Env, fr *interp.Frame, name string, args []ir.Value) (ir.Value, error) {
	switch name {
	case instrument.RTLinearize:
		if rt.driving {
			return ir.Value{}, errors.New("dcart: nested loop invocation during replay (re-entrant test loop)")
		}
		tup := make([]ir.Value, len(args))
		copy(tup, args)
		rt.records = append(rt.records, tup)
		return ir.Value{}, nil
	case instrument.RTPermute:
		if rt.driving {
			return ir.Value{}, errors.New("dcart: rt_iterator_permute while already replaying")
		}
		if rt.OnlyContext != "" && ContextOf(fr) != rt.OnlyContext {
			rt.order = Identity{}.Permute(len(rt.records))
		} else {
			rt.order = rt.Schedule.Permute(len(rt.records))
		}
		rt.cursor = -1
		rt.driving = true
		return ir.Value{}, nil
	case instrument.RTNext:
		if !rt.driving {
			return ir.Value{}, errors.New("dcart: rt_iterator_next outside replay")
		}
		rt.cursor++
		if rt.cursor < len(rt.order) {
			rt.Iterations++
			if rt.Footprint != nil {
				rt.Footprint.BeginSegment()
			}
			return ir.BoolVal(true), nil
		}
		if rt.Footprint != nil {
			rt.Footprint.EndSegment()
		}
		return ir.BoolVal(false), nil
	case instrument.RTGet:
		if !rt.driving || rt.cursor < 0 || rt.cursor >= len(rt.order) {
			return ir.Value{}, errors.New("dcart: rt_iterator_get outside an iteration")
		}
		k := int(args[0].I)
		tup := rt.records[rt.order[rt.cursor]]
		if k < 0 || k >= len(tup) {
			return ir.Value{}, fmt.Errorf("dcart: iterator value index %d out of range", k)
		}
		return tup[k], nil
	case instrument.RTVerify:
		if !rt.driving {
			return ir.Value{}, errors.New("dcart: rt_verify outside an invocation")
		}
		rt.Snapshots = append(rt.Snapshots, SnapshotDigest(args))
		if rt.DebugSnapshots {
			rt.SnapshotStrings = append(rt.SnapshotStrings, Snapshot(args))
		}
		if rt.TrackContexts {
			rt.Contexts = append(rt.Contexts, ContextOf(fr))
		}
		rt.records = rt.records[:0]
		rt.order = nil
		rt.driving = false
		rt.Invocations++
		if rt.Footprint != nil {
			rt.Footprint.EndInvocation()
		}
		return ir.Value{}, nil
	}
	return ir.Value{}, fmt.Errorf("dcart: unknown intrinsic %q", name)
}

// ContextOf renders a frame's calling context as the chain of function
// names from the program entry down to the frame.
func ContextOf(fr *interp.Frame) string {
	var parts []string
	for f := fr; f != nil; f = f.Parent {
		parts = append(parts, f.Fn.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ">")
}

// Snapshot produces a canonical, identity-insensitive serialization of the
// value graph reachable from roots. Two states are considered equal live-out
// observations iff their snapshots are string-equal: scalars by value, heap
// objects structurally with traversal-order numbering (so object addresses
// and allocation order do not leak in), cycles via back-references.
func Snapshot(roots []ir.Value) string {
	buf := make([]byte, 0, 64)
	ids := map[*ir.Object]int{}
	var visit func(v ir.Value)
	visit = func(v ir.Value) {
		switch v.Kind {
		case ir.KindNil:
			buf = append(buf, "nil;"...)
		case ir.KindInt:
			buf = append(buf, 'i')
			buf = strconv.AppendInt(buf, v.I, 10)
			buf = append(buf, ';')
		case ir.KindBool:
			if v.I != 0 {
				buf = append(buf, "bT;"...)
			} else {
				buf = append(buf, "bF;"...)
			}
		case ir.KindFloat:
			buf = append(buf, 'f')
			buf = appendG(buf, v.F)
			buf = append(buf, ';')
		case ir.KindString:
			buf = append(buf, 's')
			buf = strconv.AppendQuote(buf, v.S)
			buf = append(buf, ';')
		case ir.KindRef:
			if v.Ref == nil {
				buf = append(buf, "nil;"...)
				return
			}
			if id, ok := ids[v.Ref]; ok {
				buf = append(buf, '^')
				buf = strconv.AppendInt(buf, int64(id), 10)
				buf = append(buf, ';')
				return
			}
			id := len(ids)
			ids[v.Ref] = id
			buf = append(buf, 'o')
			buf = strconv.AppendInt(buf, int64(id), 10)
			buf = append(buf, ':')
			buf = append(buf, v.Ref.TypeName...)
			buf = append(buf, '[')
			for _, e := range v.Ref.Elems {
				visit(e)
			}
			buf = append(buf, "];"...)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return string(buf)
}

// appendG appends f formatted exactly as fmt's %g verb does (shortest
// representation, exponent for large/small magnitudes).
func appendG(buf []byte, f float64) []byte {
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}
