package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// netBackend serves a fixed payload so fault effects are observable.
func netBackend(t *testing.T, size int) *httptest.Server {
	t.Helper()
	payload := strings.Repeat("x", size)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp, data, err
}

// TestNetChaosDeterminism: the same seed injects the same fault sequence.
func TestNetChaosDeterminism(t *testing.T) {
	backend := netBackend(t, 64)
	sequence := func(seed int64) []int64 {
		nc := NewNetChaos(nil, seed, 0.5, NetRefuse)
		client := &http.Client{Transport: nc}
		var out []int64
		for i := 0; i < 32; i++ {
			client.Get(backend.URL)
			out = append(out, nc.Faults())
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at request %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[len(a)-1] == 0 {
		t.Fatal("no faults injected at prob 0.5 over 32 requests")
	}
}

// TestNetChaosRefuse: injected refusals surface as marked transport
// errors without touching the backend.
func TestNetChaosRefuse(t *testing.T) {
	backend := netBackend(t, 8)
	nc := NewNetChaos(nil, 1, 1, NetRefuse)
	client := &http.Client{Transport: nc}
	_, _, err := get(t, client, backend.URL)
	if err == nil {
		t.Fatal("refused request succeeded")
	}
	if !Injected(err) {
		t.Fatalf("refusal not marked as injected: %v", err)
	}
}

// TestNetChaos5xx: synthesized sheds carry a 5xx status, and 503s carry
// Retry-After; bursts shed follow-up requests too.
func TestNetChaos5xx(t *testing.T) {
	backend := netBackend(t, 8)
	nc := NewNetChaos(nil, 3, 1, Net5xx)
	client := &http.Client{Transport: nc}
	saw503 := false
	for i := 0; i < 16; i++ {
		resp, _, err := get(t, client, backend.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode < 500 || resp.StatusCode > 599 {
			t.Fatalf("request %d: status %d, want 5xx", i, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 shed without Retry-After")
			}
		}
	}
	if !saw503 {
		t.Error("no 503 shed in 16 requests")
	}
}

// TestNetChaosCut: the body fails mid-stream after a bounded prefix.
func TestNetChaosCut(t *testing.T) {
	backend := netBackend(t, 1 << 16)
	nc := NewNetChaos(nil, 5, 1, NetCut)
	client := &http.Client{Transport: nc}
	_, data, err := get(t, client, backend.URL)
	if err == nil {
		t.Fatal("cut body read to completion")
	}
	if !Injected(err) {
		t.Fatalf("cut not marked as injected: %v", err)
	}
	if len(data) == 0 || len(data) >= 1<<16 {
		t.Fatalf("cut delivered %d bytes, want a proper prefix", len(data))
	}
}

// TestNetChaosCutShortBody: a body shorter than the cut point passes
// through intact — the disconnect never fired.
func TestNetChaosCutShortBody(t *testing.T) {
	backend := netBackend(t, 16)
	nc := NewNetChaos(nil, 5, 1, NetCut)
	client := &http.Client{Transport: nc}
	_, data, err := get(t, client, backend.URL)
	if err != nil {
		t.Fatalf("short body under cut fault: %v", err)
	}
	if len(data) != 16 {
		t.Fatalf("got %d bytes, want 16", len(data))
	}
}

// TestNetChaosSlowBody: the payload arrives complete, just slowly.
func TestNetChaosSlowBody(t *testing.T) {
	backend := netBackend(t, 2048)
	nc := NewNetChaos(nil, 7, 1, NetSlowBody)
	client := &http.Client{Transport: nc}
	start := time.Now()
	_, data, err := get(t, client, backend.URL)
	if err != nil {
		t.Fatalf("slow body: %v", err)
	}
	if len(data) != 2048 {
		t.Fatalf("got %d bytes, want 2048", len(data))
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Error("slow body arrived instantly; no trickle observed")
	}
}

// TestNetChaosLatency: the request is delayed but succeeds.
func TestNetChaosLatency(t *testing.T) {
	backend := netBackend(t, 8)
	nc := NewNetChaos(nil, 9, 1, NetLatency)
	nc.Latency = 40 * time.Millisecond
	client := &http.Client{Transport: nc}
	start := time.Now()
	_, data, err := get(t, client, backend.URL)
	if err != nil {
		t.Fatalf("latency-spiked request: %v", err)
	}
	if len(data) != 8 {
		t.Fatalf("got %d bytes, want 8", len(data))
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("no latency observed")
	}
}

// TestNetChaosOnlyScope: requests outside the scope are never touched.
func TestNetChaosOnlyScope(t *testing.T) {
	backend := netBackend(t, 8)
	nc := NewNetChaos(nil, 1, 1, NetRefuse)
	nc.Only = func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/analyze") }
	client := &http.Client{Transport: nc}
	for i := 0; i < 8; i++ {
		if _, _, err := get(t, client, backend.URL+"/healthz"); err != nil {
			t.Fatalf("scoped-out request %d failed: %v", i, err)
		}
	}
	if nc.Faults() != 0 {
		t.Fatalf("%d faults injected outside the scope", nc.Faults())
	}
	if _, _, err := get(t, client, backend.URL+"/analyze"); err == nil {
		t.Fatal("in-scope request not refused at prob 1")
	}
}
