// Linked-list example: walks the full DCA pipeline by hand on a PLDS map
// loop — iterator/payload separation, outlining, instrumentation, the
// golden and permuted runs — and then actually executes the payload in
// parallel with goroutine workers, checking the result against the
// sequential run.
package main

import (
	"fmt"
	"log"
	"strings"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/irbuild"
	"dca/internal/iterrec"
	"dca/internal/parallel"
	"dca/internal/pointer"
)

const src = `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 2000; i++) {
		var n *Node = new Node;
		n->val = i;
		n->next = head;
		head = n;
	}
	// The loop under study: a map over the list.
	var p *Node = head;
	while (p != nil) {
		p->val = p->val * 3 + 1;
		p = p->next;
	}
	var s int = 0;
	p = head;
	while (p != nil) { s += p->val; p = p->next; }
	print(s);
}
`

func main() {
	prog, err := irbuild.Compile("list.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	fn := prog.Func("main")
	g, loops := cfg.LoopsOf(fn)
	loop := loops[1] // the map loop
	fmt.Printf("analyzing %s\n\n", loop.ID())

	// --- Static stage: iterator/payload separation. ---
	sep := iterrec.Separate(g, cfg.ComputePostDom(g), loop, pointer.Analyze(prog), dataflow.ComputeLiveness(g))
	if !sep.OK {
		log.Fatalf("not separable: %s", sep.Reason)
	}
	var iters []string
	for in := range sep.IterInstrs {
		iters = append(iters, fmt.Sprint(in))
	}
	fmt.Printf("iterator slice (%d instructions): %s\n", len(sep.IterInstrs), strings.Join(iters, "; "))
	fmt.Printf("payload: %d instructions, iterator values consumed: %d, env fields: %d\n\n",
		sep.PayloadInstrCount, len(sep.IterLocals), len(sep.EnvLocals))

	// --- Instrumentation + dynamic stage. ---
	inst, err := instrument.Loop(prog, "main", loop.Index)
	if err != nil {
		log.Fatal(err)
	}
	var goldenOut, permOut strings.Builder
	golden := dcart.NewRuntime(dcart.Identity{})
	if _, err := interp.Run(inst.Prog, interp.Config{Out: &goldenOut, Runtime: golden}); err != nil {
		log.Fatal(err)
	}
	perm := dcart.NewRuntime(dcart.Reverse{})
	if _, err := interp.Run(inst.Prog, interp.Config{Out: &permOut, Runtime: perm}); err != nil {
		log.Fatal(err)
	}
	same := golden.Snapshots[0] == perm.Snapshots[0] && goldenOut.String() == permOut.String()
	fmt.Printf("golden vs reversed execution: live-outs identical = %v -> commutative\n\n", same)

	// --- Exploitation: run the payload in parallel for real. ---
	var seqOut strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &seqOut}); err != nil {
		log.Fatal(err)
	}
	var parOut strings.Builder
	res, err := parallel.RunLoop(inst, parallel.Options{Workers: 8, Out: &parOut})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel execution over %d workers: %d iterations\n", res.Workers, res.Iterations)
	fmt.Printf("sequential output: %sparallel output:   %s", seqOut.String(), parOut.String())
	if seqOut.String() == parOut.String() {
		fmt.Println("results match.")
	} else {
		fmt.Println("MISMATCH — this would be a bug.")
	}
}
