// Package skeleton classifies commutative loops into parallel algorithmic
// skeletons — the paper's stated future-work direction (§VII: "support the
// detection of parallel algorithmic skeletons in legacy code", building on
// von Koch et al. CC'18). Classification is purely structural, derived from
// the iterator/payload separation and the scalar recurrence classes:
//
//	Map        — the payload writes heap state but carries no scalar
//	             accumulator across iterations (array[i]++ or p->val++).
//	Reduce     — the payload's only shared writes are associative scalar
//	             accumulators (s += f(i), min/max updates).
//	MapReduce  — both heap writes and scalar accumulators.
//	Expand     — the payload allocates and links fresh objects (building
//	             output structures, e.g. per-row result lists).
//
// The classification feeds parallel code generation: Map/Expand payloads
// need no combining, Reduce payloads privatize their accumulators.
package skeleton

import (
	"dca/internal/instrument"
	"dca/internal/scalar"
)

// Kind is the detected skeleton.
type Kind int

// Skeleton kinds.
const (
	// Unknown: the loop is commutative but matches no modelled skeleton
	// (for example an ordered-commit shared scalar).
	Unknown Kind = iota
	// Map: pure elementwise heap update.
	Map
	// Reduce: associative scalar accumulation only.
	Reduce
	// MapReduce: heap updates plus scalar accumulation.
	MapReduce
	// Expand: the payload grows the heap (allocates and links new state).
	Expand
)

var kindNames = [...]string{"unknown", "map", "reduce", "map-reduce", "expand"}

func (k Kind) String() string { return kindNames[k] }

// Info is the classification result.
type Info struct {
	Kind Kind
	// Accumulators lists the reduction-class env locals (privatized by the
	// parallel code generator).
	Accumulators []string
	// HeapWrites counts payload stores (direct + via callees).
	HeapWrites int
	// Allocates reports whether the payload allocates.
	Allocates bool
}

// Classify inspects an instrumented (hence separable) loop.
func Classify(inst *instrument.Instrumented) *Info {
	sep := inst.Sep
	info := &Info{
		HeapWrites: sep.PayloadStores + sep.PayloadCallStores,
		Allocates:  sep.PayloadAllocs > 0,
	}
	classOf := map[string]scalar.Class{}
	for _, c := range inst.Carried {
		classOf[c.Local.Name] = c.Class
	}
	accumulators, ordered := 0, 0
	for _, l := range sep.EnvLocals {
		if !sep.PayloadDefSet[l] {
			continue // read-only env field
		}
		switch classOf[l.Name] {
		case scalar.Reduction, scalar.MinMax:
			accumulators++
			info.Accumulators = append(info.Accumulators, l.Name)
		default:
			ordered++
		}
	}
	switch {
	case ordered > 0:
		info.Kind = Unknown
	case info.Allocates && accumulators == 0:
		info.Kind = Expand
	case accumulators > 0 && info.HeapWrites > 0:
		info.Kind = MapReduce
	case accumulators > 0:
		info.Kind = Reduce
	case info.HeapWrites > 0:
		info.Kind = Map
	default:
		info.Kind = Unknown
	}
	return info
}
