package iterrec_test

import (
	"strings"
	"testing"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/iterrec"
	"dca/internal/pointer"
)

// separate compiles src and separates the idx-th loop of fn.
func separate(t *testing.T, src, fn string, idx int) *iterrec.Separation {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.Func(fn)
	g, loops := cfg.LoopsOf(f)
	if idx >= len(loops) {
		t.Fatalf("%s has %d loops", fn, len(loops))
	}
	return iterrec.Separate(g, cfg.ComputePostDom(g), loops[idx],
		pointer.Analyze(prog), dataflow.ComputeLiveness(g))
}

func names(ls []*ir.Local) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.Name
	}
	return out
}

func TestForLoopSeparation(t *testing.T) {
	sep := separate(t, `
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) { a[i] = i * 2; }
	print(a[0]);
}`, "main", 0)
	if !sep.OK {
		t.Fatalf("not separable: %s", sep.Reason)
	}
	if got := names(sep.IterLocals); len(got) != 1 || got[0] != "i" {
		t.Errorf("iter locals = %v, want [i]", got)
	}
	if got := names(sep.EnvLocals); len(got) != 1 || got[0] != "a" {
		t.Errorf("env locals = %v, want [a]", got)
	}
	if sep.PayloadInstrCount == 0 {
		t.Error("payload empty")
	}
}

func TestPLDSIteratorSlice(t *testing.T) {
	sep := separate(t, `
struct Node { val int; next *Node; }
func walk(head *Node) {
	var ptr *Node = head;
	while (ptr != nil) {
		ptr->val++;
		ptr = ptr->next;
	}
}
func main() {
	var n *Node = new Node;
	walk(n);
	print(n->val);
}`, "walk", 0)
	if !sep.OK {
		t.Fatalf("not separable: %s", sep.Reason)
	}
	// The iterator must contain the pointer advance, the payload the
	// increment: exactly one iterator value (ptr).
	if got := names(sep.IterLocals); len(got) != 1 || got[0] != "ptr" {
		t.Errorf("iter locals = %v", got)
	}
	for in := range sep.IterInstrs {
		if strings.Contains(in.String(), "->val") {
			t.Errorf("payload instruction leaked into iterator: %s", in)
		}
	}
}

// TestWorklistPopInIterator: a pop that feeds the loop condition through
// the heap must be pulled into the iterator slice via memory dependences.
func TestWorklistPopInIterator(t *testing.T) {
	sep := separate(t, `
struct Item { val int; next *Item; }
struct List { head *Item; }
func drain(wl *List, out []int) {
	while (wl->head != nil) {
		var cur *Item = wl->head;
		wl->head = cur->next;
		out[cur->val] = cur->val * 2;
	}
}
func main() {
	var wl *List = new List;
	var it *Item = new Item;
	it->val = 0;
	wl->head = it;
	var out []int = new [4]int;
	drain(wl, out);
	print(out[0]);
}`, "drain", 0)
	if !sep.OK {
		t.Fatalf("not separable: %s", sep.Reason)
	}
	// The pop feeds the loop condition through the heap, so it belongs to
	// the iterator; the out[] store is payload; cur is the per-iteration
	// value the linearization records.
	if got := names(sep.IterLocals); len(got) != 1 || got[0] != "cur" {
		t.Errorf("iter locals = %v, want [cur]", got)
	}
	iterHasPop := false
	for in := range sep.IterInstrs {
		s := in.String()
		if strings.Contains(s, "->head =") {
			iterHasPop = true
		}
		if strings.Contains(s, "out[") || strings.Contains(s, "= out") {
			t.Errorf("payload store leaked into iterator: %s", s)
		}
	}
	if !iterHasPop {
		t.Error("worklist pop must be in the iterator slice")
	}
}

// TestPayloadReadsIteratorState: a payload reading memory the iterator
// mutates cannot be replayed after full linearization; rejected.
func TestPayloadReadsIteratorState(t *testing.T) {
	sep := separate(t, `
struct List { head int; }
func f(wl *List, out []int, n int) {
	var i int = 0;
	while (i < n) {
		wl->head = wl->head + 1; // iterator state (feeds nothing? make it feed the condition)
		out[i] = wl->head;       // payload reads iterator-mutated memory
		i = i + wl->head % 2 + 1;
	}
}
func main() {
	var wl *List = new List;
	var out []int = new [64]int;
	f(wl, out, 8);
	print(out[0]);
}`, "f", 0)
	if sep.OK {
		t.Fatal("payload reading iterator-written memory must be rejected")
	}
	if !strings.Contains(sep.Reason, "iterator") {
		t.Errorf("reason = %q", sep.Reason)
	}
}

// TestPureIteratorRejected: a search loop whose whole body feeds the exit
// condition has no payload.
func TestPureIteratorRejected(t *testing.T) {
	sep := separate(t, `
struct Node { val int; next *Node; }
func find(head *Node, key int) *Node {
	var p *Node = head;
	while (p != nil && p->val != key) { p = p->next; }
	return p;
}
func main() {
	var n *Node = new Node;
	print(find(n, 1) == nil);
}`, "find", 0)
	if sep.OK {
		t.Fatal("pure-iterator loop must be rejected")
	}
	if !strings.Contains(sep.Reason, "pure iterator") && !strings.Contains(sep.Reason, "empty payload") {
		t.Errorf("reason = %q", sep.Reason)
	}
}

// TestGuardedPayload: internal control flow stays in the payload region.
func TestGuardedPayload(t *testing.T) {
	sep := separate(t, `
func main() {
	var a []int = new [16]int;
	var s int = 0;
	for (var i int = 0; i < 16; i++) {
		if (i % 3 == 0) {
			s += i;
		} else {
			a[i] = i;
		}
	}
	print(s, a[1]);
}`, "main", 0)
	if !sep.OK {
		t.Fatalf("not separable: %s", sep.Reason)
	}
	env := names(sep.EnvLocals)
	if len(env) != 2 {
		t.Errorf("env locals = %v, want [a s]", env)
	}
}

// TestInternalLocals: per-iteration temporaries stay out of the env.
func TestInternalLocals(t *testing.T) {
	sep := separate(t, `
func main() {
	var a []int = new [8]int;
	var s int = 0;
	for (var i int = 0; i < 8; i++) {
		var tmp int = i * i + 1;
		s += tmp;
		_ignore(a, tmp);
	}
	print(s, a[0]);
}
func _ignore(a []int, x int) { a[x % 8] = x; }
`, "main", 0)
	if !sep.OK {
		t.Fatalf("not separable: %s", sep.Reason)
	}
	if !sep.Internal[findLocal(t, sep, "tmp")] {
		t.Errorf("tmp must be iteration-internal; env = %v", names(sep.EnvLocals))
	}
}

func findLocal(t *testing.T, sep *iterrec.Separation, name string) *ir.Local {
	t.Helper()
	for _, l := range sep.Fn.Locals {
		if l.Name == name {
			return l
		}
	}
	t.Fatalf("no local %q", name)
	return nil
}

// TestPayloadDefSetStable: the def set is captured at separation time.
func TestPayloadDefSetStable(t *testing.T) {
	sep := separate(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 8; i++) { s += i; }
	print(s);
}`, "main", 0)
	if !sep.OK {
		t.Fatal(sep.Reason)
	}
	if !sep.PayloadDefSet[findLocal(t, sep, "s")] {
		t.Error("s must be in the payload def set")
	}
}

// TestFieldSensitivityAblation quantifies why field-sensitive memory
// regions are load-bearing: at object granularity (the ablation analysis)
// the payload's val-field store collapses into the same region as the
// iterator's next-field load, the closure swallows the payload, and the
// canonical PLDS map degenerates to a pure iterator.
func TestFieldSensitivityAblation(t *testing.T) {
	const src = `
struct Node { val int; next *Node; }
func walk(head *Node) {
	var p *Node = head;
	while (p != nil) {
		p->val = p->val * 2 + 1;
		p = p->next;
	}
}
func main() {
	var n *Node = new Node;
	walk(n);
	print(n->val);
}`
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("walk")
	g, loops := cfg.LoopsOf(f)
	pd := cfg.ComputePostDom(g)
	lv := dataflow.ComputeLiveness(g)

	sensitive := iterrec.Separate(g, pd, loops[0], pointer.Analyze(prog), lv)
	if !sensitive.OK {
		t.Fatalf("field-sensitive separation must succeed: %s", sensitive.Reason)
	}
	insensitive := iterrec.Separate(g, pd, loops[0], pointer.AnalyzeFieldInsensitive(prog), lv)
	if insensitive.OK && insensitive.PayloadInstrCount >= sensitive.PayloadInstrCount {
		t.Errorf("object-granular regions should degrade separation: sensitive payload=%d, insensitive ok=%v payload=%d",
			sensitive.PayloadInstrCount, insensitive.OK, insensitive.PayloadInstrCount)
	}
}
