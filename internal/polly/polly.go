// Package polly reimplements the decision procedure of a polyhedral loop
// analyzer in the style of Polly [52] configured as in the paper
// (-polly-process-unprofitable, detection only): a loop is reported
// parallelizable iff it is a static control part — constant-step induction
// variable, affine loop-invariant bound, single exit, call-free, straight
// array accesses with affine subscripts — and the affine dependence tests
// prove the absence of loop-carried dependences. Reductions, pointer-linked
// structures and early exits are outside the model, which is exactly why
// the paper's Table III shows it detecting 12% of NPB loops.
package polly

import (
	"fmt"
	"sort"
	"strings"

	"dca/internal/affine"
	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/pointer"
	"dca/internal/scalar"
)

// LoopKey identifies a loop by function and index.
type LoopKey struct {
	Fn    string
	Index int
}

// Verdict is Polly's per-loop decision.
type Verdict struct {
	Key      LoopKey
	Parallel bool
	Reasons  []string
}

// Report holds all verdicts for one program.
type Report struct {
	Prog     *ir.Program
	Verdicts map[LoopKey]*Verdict
}

// Parallelizable counts loops reported parallel.
func (r *Report) Parallelizable() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Parallel {
			n++
		}
	}
	return n
}

// Verdict returns the verdict for fn's index-th loop, or nil.
func (r *Report) Verdict(fn string, index int) *Verdict {
	return r.Verdicts[LoopKey{fn, index}]
}

func (r *Report) String() string { return renderVerdicts(r.Verdicts) }

// Analyze statically classifies every loop of the program.
func Analyze(prog *ir.Program) *Report {
	rep := &Report{Prog: prog, Verdicts: map[LoopKey]*Verdict{}}
	pa := pointer.Analyze(prog)
	for _, fn := range prog.Funcs {
		env := affine.NewEnv(fn)
		for _, loop := range env.Loops {
			v := &Verdict{Key: LoopKey{fn.Name, loop.Index}}
			rep.Verdicts[v.Key] = v
			v.Reasons = check(env, pa, loop)
			v.Parallel = len(v.Reasons) == 0
		}
	}
	return rep
}

func check(env *affine.Env, pa *pointer.Analysis, loop *cfg.Loop) []string {
	var reasons []string
	info := env.Info[loop]
	if !info.OK {
		return append(reasons, "not a SCoP: "+info.Why)
	}
	if len(loop.Exits) != 1 || len(loop.ExitSrcs) != 1 || loop.ExitSrcs[0] != loop.Header {
		reasons = append(reasons, "not a SCoP: early exits")
	}
	// Statement restrictions.
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Print:
				reasons = append(reasons, "not a SCoP: I/O in loop")
			case *ir.Alloc:
				reasons = append(reasons, "not a SCoP: allocation in loop")
			case *ir.Call:
				if !i.Builtin {
					reasons = append(reasons, fmt.Sprintf("not a SCoP: call to %q", i.Callee))
				}
			case *ir.Load:
				if i.FieldName != "" {
					reasons = append(reasons, "not a SCoP: pointer field access")
				}
			case *ir.Store:
				if i.FieldName != "" {
					reasons = append(reasons, "not a SCoP: pointer field access")
				}
			}
		}
	}
	if len(reasons) > 0 {
		return dedup(reasons)
	}
	// Scalars: inductions only.
	for _, c := range scalar.Classify(env.Env, loop) {
		if c.Class != scalar.Induction {
			reasons = append(reasons, fmt.Sprintf("loop-carried scalar %q (%s)", c.Local.Name, c.Class))
		}
	}
	// Array accesses: affine subscripts, loop-invariant bases, no carried
	// dependences.
	accs := env.Accesses(loop)
	for _, a := range accs {
		if a.SubErr != nil {
			reasons = append(reasons, "non-affine subscript: "+a.SubErr.Error())
		}
	}
	if len(reasons) > 0 {
		return dedup(reasons)
	}
	reasons = append(reasons, CarriedMemoryDeps(env, pa, loop, accs, nil)...)
	return dedup(reasons)
}

// CarriedMemoryDeps runs the affine dependence tests over every write/any
// pair that may alias, skipping instruction pairs for which skip returns
// true (used by the Idioms detector to exempt its reduction groups).
// Shared by the static tools.
func CarriedMemoryDeps(env *affine.Env, pa *pointer.Analysis, loop *cfg.Loop, accs []affine.Access, skip func(a, b affine.Access) bool) []string {
	var reasons []string
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if !a.IsWrite && !b.IsWrite {
				continue
			}
			if skip != nil && skip(a, b) {
				continue
			}
			if !mayAlias(pa, a, b) {
				continue
			}
			if a.Base != b.Base {
				reasons = append(reasons, "cannot disambiguate pointer bases")
				continue
			}
			if env.Carried(a, b, loop) {
				reasons = append(reasons, fmt.Sprintf("possible loop-carried dependence between %q and %q", a.Instr, b.Instr))
			}
		}
	}
	return reasons
}

func mayAlias(pa *pointer.Analysis, a, b affine.Access) bool {
	if a.Base == nil || b.Base == nil {
		return true
	}
	if a.Base == b.Base {
		return true
	}
	as := pa.PointsTo(a.Base)
	bs := pa.PointsTo(b.Base)
	for _, s := range as {
		for _, t := range bs {
			if s == t {
				return true
			}
		}
	}
	return false
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func renderVerdicts(vs map[LoopKey]*Verdict) string {
	keys := make([]LoopKey, 0, len(vs))
	for k := range vs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fn != keys[j].Fn {
			return keys[i].Fn < keys[j].Fn
		}
		return keys[i].Index < keys[j].Index
	})
	var b strings.Builder
	for _, k := range keys {
		v := vs[k]
		status := "parallel"
		if !v.Parallel {
			status = "serial"
		}
		fmt.Fprintf(&b, "%s/L%d: %s", k.Fn, k.Index, status)
		if len(v.Reasons) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(v.Reasons, "; "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
