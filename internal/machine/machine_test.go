package machine_test

import (
	"math"
	"testing"

	"dca/internal/depprof"
	"dca/internal/irbuild"
	"dca/internal/machine"
)

func profileOf(t *testing.T, src string) *depprof.Profile {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof, err := depprof.Trace(prog, 0)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return prof
}

const hotLoop = `
func main() {
	var a []int = new [20000]int;
	for (var i int = 0; i < 20000; i++) { a[i] = i * 3 + (i % 7); }
	var s int = 0;
	for (var i int = 0; i < 20000; i++) { s += a[i]; }
	print(s);
}`

func TestSpeedupAmdahl(t *testing.T) {
	prof := profileOf(t, hotLoop)
	all := []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}
	sel := machine.Select(prof, all, 0.01)
	if len(sel) != 2 {
		t.Fatalf("selected %d loops, want 2", len(sel))
	}
	cfg := machine.Xeon72(0)
	s := machine.Speedup(cfg, prof, sel)
	if s < 5 || s > 72 {
		t.Errorf("speedup = %.2f, want within (5, 72)", s)
	}
	// Parallelizing nothing gives exactly 1.
	if got := machine.Speedup(cfg, prof, nil); got != 1 {
		t.Errorf("empty selection speedup = %v, want 1", got)
	}
	// More parallel loops never slow the estimate below a subset (same cfg,
	// hot loops).
	s1 := machine.Speedup(cfg, prof, sel[:1])
	if s < s1 {
		t.Errorf("speedup with both loops (%.2f) below single loop (%.2f)", s, s1)
	}
}

func TestBandwidthCap(t *testing.T) {
	prof := profileOf(t, hotLoop)
	sel := machine.Select(prof, []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}, 0.01)
	uncapped := machine.Speedup(machine.Xeon72(0), prof, sel)
	capped := machine.Speedup(machine.Xeon72(3), prof, sel)
	if capped >= uncapped {
		t.Errorf("capped speedup %.2f should be below uncapped %.2f", capped, uncapped)
	}
	if capped > 3.0001 {
		t.Errorf("capped speedup %.2f exceeds the cap", capped)
	}
}

func TestSelectOutermostOnly(t *testing.T) {
	prof := profileOf(t, `
func main() {
	var m []int = new [4096]int;
	for (var i int = 0; i < 64; i++) {
		for (var j int = 0; j < 64; j++) { m[i*64+j] = i + j; }
	}
	print(m[0]);
}`)
	all := []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}
	sel := machine.Select(prof, all, 0.01)
	if len(sel) != 1 {
		t.Fatalf("selected %v, want only the outer loop", sel)
	}
	if sel[0].Index != 0 {
		t.Errorf("selected inner loop %v instead of outer", sel[0])
	}
}

func TestSelectAcrossCalls(t *testing.T) {
	prof := profileOf(t, `
func work(a []int, n int) {
	for (var j int = 0; j < n; j++) { a[j] += j; }
}
func main() {
	var a []int = new [256]int;
	for (var i int = 0; i < 50; i++) { work(a, 256); }
	print(a[0]);
}`)
	all := []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "work", Index: 0}}
	sel := machine.Select(prof, all, 0.01)
	if len(sel) != 1 {
		t.Fatalf("selected %v, want one (dynamic nesting must exclude the callee loop)", sel)
	}
	if sel[0].Fn != "main" {
		t.Errorf("selected %v, want the outer main loop", sel[0])
	}
}

func TestCoverage(t *testing.T) {
	prof := profileOf(t, hotLoop)
	sel := machine.Select(prof, []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}, 0.01)
	c := machine.Coverage(prof, sel)
	if c < 0.8 || c > 1 {
		t.Errorf("coverage = %.2f, want near 1 for a two-hot-loop program", c)
	}
	if got := machine.Coverage(prof, nil); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
}

func TestMinCoverageFilter(t *testing.T) {
	prof := profileOf(t, `
func main() {
	var tiny []int = new [4]int;
	for (var i int = 0; i < 4; i++) { tiny[i] = i; }
	var a []int = new [20000]int;
	for (var i int = 0; i < 20000; i++) { a[i] = i; }
	print(a[0], tiny[0]);
}`)
	all := []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}
	sel := machine.Select(prof, all, 0.05)
	if len(sel) != 1 || sel[0].Index != 1 {
		t.Errorf("profitability filter failed: selected %v", sel)
	}
}

func TestSmallTripLoopLimitedParallelism(t *testing.T) {
	prof := profileOf(t, `
func main() {
	var a []int = new [4]int;
	for (var i int = 0; i < 4; i++) {
		var acc int = 0;
		for (var j int = 0; j < 5000; j++) { acc += i * j; }
		a[i] = acc;
	}
	print(a[3]);
}`)
	sel := []depprof.LoopKey{{Fn: "main", Index: 0}}
	s := machine.Speedup(machine.Xeon72(0), prof, sel)
	// Only 4 iterations: cannot exceed 4x no matter the core count.
	if s > 4.01 || s < 1.5 {
		t.Errorf("4-iteration loop speedup = %.2f, want within (1.5, 4]", s)
	}
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Errorf("speedup is not finite: %v", s)
	}
}

func TestSelectBestPrefersWideInnerLoops(t *testing.T) {
	// An outer loop with 3 iterations wrapping a wide inner loop: benefit-
	// based selection must pick the inner loop once the outer's parallelism
	// is exhausted at 3 cores.
	prof := profileOf(t, `
func main() {
	var a []int = new [2000]int;
	for (var r int = 0; r < 3; r++) {
		for (var i int = 0; i < 2000; i++) { a[i] += r * i; }
	}
	print(a[5]);
}`)
	all := []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}
	cfg := machine.Xeon72(0)
	sel := machine.SelectBest(cfg, prof, all, 0.001)
	if len(sel) != 1 || sel[0].Index != 1 {
		t.Fatalf("SelectBest = %v, want the inner loop", sel)
	}
	inner := machine.Speedup(cfg, prof, sel)
	outer := machine.Speedup(cfg, prof, []depprof.LoopKey{{Fn: "main", Index: 0}})
	if inner <= outer {
		t.Errorf("inner-loop speedup %.2f must beat outer %.2f", inner, outer)
	}
}

func TestSelectBestKeepsHotOuter(t *testing.T) {
	// A wide outer loop with a narrow inner: the outer wins.
	prof := profileOf(t, `
func main() {
	var a []int = new [500]int;
	for (var i int = 0; i < 500; i++) {
		var acc int = 0;
		for (var k int = 0; k < 3; k++) { acc += i * k; }
		a[i] = acc;
	}
	print(a[5]);
}`)
	all := []depprof.LoopKey{{Fn: "main", Index: 0}, {Fn: "main", Index: 1}}
	sel := machine.SelectBest(machine.Xeon72(0), prof, all, 0.001)
	if len(sel) != 1 || sel[0].Index != 0 {
		t.Fatalf("SelectBest = %v, want the outer loop", sel)
	}
}
