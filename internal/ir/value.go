package ir

import (
	"fmt"
	"strings"

	"dca/internal/types"
)

// ValKind classifies runtime values.
type ValKind int

// Value kinds.
const (
	KindNil ValKind = iota // zero pointer/array reference
	KindInt
	KindFloat
	KindBool
	KindString
	KindRef // reference to a heap Object
)

// Value is a MiniC runtime value. Values are small and copied freely; heap
// state lives behind Ref.
type Value struct {
	Kind ValKind
	I    int64 // Int; Bool uses 0/1
	F    float64
	S    string
	Ref  *Object
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, I: v} }

// FloatVal makes a floating-point value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, F: v} }

// BoolVal makes a boolean value.
func BoolVal(v bool) Value {
	if v {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// StringVal makes a string value.
func StringVal(v string) Value { return Value{Kind: KindString, S: v} }

// RefVal makes a heap reference value.
func RefVal(o *Object) Value { return Value{Kind: KindRef, Ref: o} }

// NilVal makes the nil reference value.
func NilVal() Value { return Value{Kind: KindNil} }

// Bool reports the truth of a KindBool value.
func (v Value) Bool() bool { return v.Kind == KindBool && v.I != 0 }

// IsNilRef reports whether the value is a nil reference.
func (v Value) IsNilRef() bool { return v.Kind == KindNil || (v.Kind == KindRef && v.Ref == nil) }

// Equal reports shallow equality: scalars by value, references by identity.
func (v Value) Equal(u Value) bool {
	if v.IsNilRef() || u.IsNilRef() {
		return v.IsNilRef() && u.IsNilRef()
	}
	if v.Kind != u.Kind {
		return false
	}
	switch v.Kind {
	case KindInt, KindBool:
		return v.I == u.I
	case KindFloat:
		return v.F == u.F
	case KindString:
		return v.S == u.S
	case KindRef:
		return v.Ref == u.Ref
	}
	return true
}

func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindRef:
		if v.Ref == nil {
			return "nil"
		}
		return fmt.Sprintf("&%s#%d", v.Ref.TypeName, v.Ref.ID)
	}
	return "?"
}

// ZeroValue returns the zero value of a semantic type.
func ZeroValue(t *types.Type) Value {
	switch t.Kind {
	case types.Int:
		return IntVal(0)
	case types.Float:
		return FloatVal(0)
	case types.Bool:
		return BoolVal(false)
	case types.String:
		return StringVal("")
	}
	return NilVal()
}

// Object is a heap object: either a struct instance (TypeName = struct name,
// one element per field) or an array (TypeName = "[]T"). Object identity —
// the Go pointer — is the address used by dependence profiling; ID is a
// stable allocation number used in printing and snapshots.
type Object struct {
	ID       int64
	TypeName string
	Struct   *types.StructInfo // nil for arrays
	Elem     *types.Type       // element type for arrays, nil for structs
	Elems    []Value
}

// NewStructObject allocates a zeroed struct instance.
func NewStructObject(id int64, si *types.StructInfo) *Object {
	o := &Object{ID: id, TypeName: si.Name, Struct: si, Elems: make([]Value, len(si.Fields))}
	for i, f := range si.Fields {
		o.Elems[i] = ZeroValue(f.Type)
	}
	return o
}

// NewArrayObject allocates a zeroed array of n elements.
func NewArrayObject(id int64, elem *types.Type, n int) *Object {
	o := &Object{ID: id, TypeName: "[]" + elem.String(), Elem: elem, Elems: make([]Value, n)}
	z := ZeroValue(elem)
	for i := range o.Elems {
		o.Elems[i] = z
	}
	return o
}

// Len returns the number of elements/fields.
func (o *Object) Len() int { return len(o.Elems) }

// FieldName returns a printable name for element i.
func (o *Object) FieldName(i int) string {
	if o.Struct != nil && i >= 0 && i < len(o.Struct.Fields) {
		return o.Struct.Fields[i].Name
	}
	return fmt.Sprintf("[%d]", i)
}

func (o *Object) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d{", o.TypeName, o.ID)
	for i, e := range o.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		if o.Struct != nil {
			b.WriteString(o.FieldName(i))
			b.WriteString(": ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("}")
	return b.String()
}
