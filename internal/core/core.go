// Package core is the paper's primary contribution: Dynamic Commutativity
// Analysis. For every loop of a program it runs the static stage (selection,
// iterator/payload separation, outlining, instrumentation) and the dynamic
// stage (golden execution plus permuted executions under a set of
// schedules, with live-out verification), and reports a per-loop Verdict.
package core

import (
	"fmt"
	"sort"
	"strings"

	"dca/internal/cfg"
	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/purity"
	"dca/internal/source"
)

// Verdict classifies one loop after analysis.
type Verdict int

// Verdicts. Commutative is DCA's "potentially parallelizable".
const (
	// Commutative: every tested permutation preserved all live-out
	// snapshots and the program output.
	Commutative Verdict = iota
	// NonCommutative: some permutation changed a live-out or faulted.
	NonCommutative
	// ExcludedIO: the loop performs I/O (directly or through a callee) and
	// is excluded during the selection step of the static stage.
	ExcludedIO
	// NotSeparable: iterator/payload separation or outlining failed; the
	// loop is outside the prototype's transformable class.
	NotSeparable
	// NotExecuted: the workload never reached the loop, so the dynamic
	// stage has no evidence.
	NotExecuted
	// Failed: the instrumented golden run diverged from the original
	// program or errored; the loop is reported untestable.
	Failed
)

var verdictNames = [...]string{"commutative", "non-commutative", "excluded-io", "not-separable", "not-executed", "failed"}

func (v Verdict) String() string { return verdictNames[v] }

// IsParallelizable reports whether DCA proposes the loop for
// parallelization.
func (v Verdict) IsParallelizable() bool { return v == Commutative }

// LoopResult is the analysis outcome for one loop.
type LoopResult struct {
	Fn      string
	Index   int // loop index within the function (cfg.FindLoops order)
	ID      string
	Pos     source.Pos
	Depth   int
	Verdict Verdict
	Reason  string
	// Invocations/Iterations observed during the golden run.
	Invocations int
	Iterations  int64
	// SchedulesTested counts permutation schedules that completed.
	SchedulesTested int
}

// Report is the whole-program analysis result.
type Report struct {
	Prog  *ir.Program
	Loops []*LoopResult
}

// Count returns how many loops carry the given verdict.
func (r *Report) Count(v Verdict) int {
	n := 0
	for _, l := range r.Loops {
		if l.Verdict == v {
			n++
		}
	}
	return n
}

// Commutative returns the loops DCA found commutative.
func (r *Report) Commutative() []*LoopResult {
	var out []*LoopResult
	for _, l := range r.Loops {
		if l.Verdict == Commutative {
			out = append(out, l)
		}
	}
	return out
}

// Result returns the outcome for a specific loop, or nil.
func (r *Report) Result(fn string, index int) *LoopResult {
	for _, l := range r.Loops {
		if l.Fn == fn && l.Index == index {
			return l
		}
	}
	return nil
}

func (r *Report) String() string {
	var b strings.Builder
	for _, l := range r.Loops {
		fmt.Fprintf(&b, "%-40s %-16s", l.ID, l.Verdict)
		if l.Reason != "" {
			fmt.Fprintf(&b, " (%s)", l.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Options configures the analysis.
type Options struct {
	// Schedules are the permutations tested against the golden order;
	// defaults to dcart.DefaultSchedules().
	Schedules []dcart.Schedule
	// MaxSteps bounds each program execution (default 200M).
	MaxSteps int64
}

func (o *Options) normalize() {
	if len(o.Schedules) == 0 {
		o.Schedules = dcart.DefaultSchedules()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000_000
	}
}

// Analyze runs DCA over every loop of every function in the program.
func Analyze(prog *ir.Program, opt Options) (*Report, error) {
	opt.normalize()
	rep := &Report{Prog: prog}

	// Reference output of the unmodified program.
	var refOut strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &refOut, MaxSteps: opt.MaxSteps}); err != nil {
		return nil, fmt.Errorf("core: reference execution failed: %w", err)
	}

	pur := purity.Analyze(prog)

	for _, fn := range prog.Funcs {
		g, loops := cfg.LoopsOf(fn)
		for _, loop := range loops {
			res := &LoopResult{
				Fn:    fn.Name,
				Index: loop.Index,
				ID:    loop.ID(),
				Pos:   loop.Header.Pos,
				Depth: loop.Depth,
			}
			rep.Loops = append(rep.Loops, res)
			analyzeLoop(prog, fn, g, loop, pur, opt, refOut.String(), res)
		}
	}
	sort.SliceStable(rep.Loops, func(i, j int) bool {
		if rep.Loops[i].Fn != rep.Loops[j].Fn {
			return rep.Loops[i].Fn < rep.Loops[j].Fn
		}
		return rep.Loops[i].Index < rep.Loops[j].Index
	})
	return rep, nil
}

// AnalyzeLoop runs DCA on a single loop of the named function.
func AnalyzeLoop(prog *ir.Program, fnName string, loopIndex int, opt Options) (*LoopResult, error) {
	opt.normalize()
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("core: no function %q", fnName)
	}
	g, loops := cfg.LoopsOf(fn)
	if loopIndex < 0 || loopIndex >= len(loops) {
		return nil, fmt.Errorf("core: %s has %d loops", fnName, len(loops))
	}
	loop := loops[loopIndex]
	var refOut strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &refOut, MaxSteps: opt.MaxSteps}); err != nil {
		return nil, fmt.Errorf("core: reference execution failed: %w", err)
	}
	res := &LoopResult{Fn: fnName, Index: loopIndex, ID: loop.ID(), Pos: loop.Header.Pos, Depth: loop.Depth}
	analyzeLoop(prog, fn, g, loop, purity.Analyze(prog), opt, refOut.String(), res)
	return res, nil
}

func analyzeLoop(prog *ir.Program, fn *ir.Func, g *cfg.Graph, loop *cfg.Loop, pur *purity.Info, opt Options, refOut string, res *LoopResult) {
	// --- Selection: exclude I/O loops (§IV-E). ---
	if pur.LoopDoesIO(loop.Blocks) {
		res.Verdict = ExcludedIO
		res.Reason = "loop performs I/O directly or through a callee"
		return
	}

	// --- Static stage: separate, outline, instrument. ---
	inst, err := instrument.Loop(prog, fn.Name, loop.Index)
	if err != nil {
		res.Verdict = NotSeparable
		res.Reason = trimPrefixes(err.Error())
		return
	}

	// --- Dynamic stage: golden run. ---
	golden := dcart.NewRuntime(dcart.Identity{})
	var goldenOut strings.Builder
	if _, err := interp.Run(inst.Prog, interp.Config{Out: &goldenOut, Runtime: golden, MaxSteps: opt.MaxSteps}); err != nil {
		res.Verdict = Failed
		res.Reason = "golden run failed: " + err.Error()
		return
	}
	if goldenOut.String() != refOut {
		// The transformation changed observable behaviour even in original
		// order: a separability assumption was violated dynamically.
		res.Verdict = Failed
		res.Reason = "instrumented golden run diverges from original program"
		return
	}
	res.Invocations = golden.Invocations
	res.Iterations = golden.Iterations
	if golden.Iterations == 0 {
		// The workload either never reaches the loop or always exits it
		// before the payload runs: no dynamic evidence either way.
		res.Verdict = NotExecuted
		res.Reason = "workload never executes this loop's payload"
		return
	}

	// --- Dynamic stage: permuted runs + live-out verification. ---
	for _, sched := range opt.Schedules {
		rt := dcart.NewRuntime(sched)
		var out strings.Builder
		if _, err := interp.Run(inst.Prog, interp.Config{Out: &out, Runtime: rt, MaxSteps: opt.MaxSteps}); err != nil {
			// Permuted execution faulted: reliably detected as a
			// commutativity violation (§IV-E).
			res.Verdict = NonCommutative
			res.Reason = fmt.Sprintf("schedule %s faulted: %v", sched.Name(), err)
			return
		}
		if why := compareRuns(golden, rt, refOut, out.String(), sched); why != "" {
			res.Verdict = NonCommutative
			res.Reason = why
			return
		}
		res.SchedulesTested++
	}
	res.Verdict = Commutative
}

func compareRuns(golden, rt *dcart.Runtime, refOut, out string, sched dcart.Schedule) string {
	if out != refOut {
		return fmt.Sprintf("schedule %s changed program output", sched.Name())
	}
	if len(rt.Snapshots) != len(golden.Snapshots) {
		return fmt.Sprintf("schedule %s changed invocation count (%d vs %d)", sched.Name(), len(rt.Snapshots), len(golden.Snapshots))
	}
	for i := range rt.Snapshots {
		if rt.Snapshots[i] != golden.Snapshots[i] {
			return fmt.Sprintf("schedule %s changed live-outs of invocation %d", sched.Name(), i)
		}
	}
	return ""
}

func trimPrefixes(s string) string {
	s = strings.TrimPrefix(s, "instrument: ")
	return s
}
