// Package purity computes simple whole-program effect facts shared by DCA
// and the baseline detectors: which functions may perform I/O, and which
// are pure (no I/O and no heap writes).
package purity

import (
	"dca/internal/ir"
)

// Info holds per-program purity facts.
type Info struct {
	// MayIO marks functions that may execute a print, transitively.
	MayIO map[string]bool
	// WritesHeap marks functions that may store to the heap, transitively.
	WritesHeap map[string]bool
	// Allocates marks functions that may allocate, transitively.
	Allocates map[string]bool
}

// Analyze computes purity facts for the program.
func Analyze(prog *ir.Program) *Info {
	info := &Info{
		MayIO:      map[string]bool{},
		WritesHeap: map[string]bool{},
		Allocates:  map[string]bool{},
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range prog.Funcs {
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					switch i := in.(type) {
					case *ir.Print:
						changed = set(info.MayIO, fn.Name) || changed
					case *ir.Store:
						changed = set(info.WritesHeap, fn.Name) || changed
					case *ir.Alloc:
						changed = set(info.Allocates, fn.Name) || changed
					case *ir.Call:
						if i.Builtin {
							continue
						}
						if info.MayIO[i.Callee] {
							changed = set(info.MayIO, fn.Name) || changed
						}
						if info.WritesHeap[i.Callee] {
							changed = set(info.WritesHeap, fn.Name) || changed
						}
						if info.Allocates[i.Callee] {
							changed = set(info.Allocates, fn.Name) || changed
						}
					}
				}
			}
		}
	}
	return info
}

func set(m map[string]bool, k string) bool {
	if m[k] {
		return false
	}
	m[k] = true
	return true
}

// Pure reports whether calling the named function has no observable side
// effects (it may still read the heap and allocate private objects that do
// not escape; for the static baselines we use the stricter no-alloc rule).
func (in *Info) Pure(name string) bool {
	return !in.MayIO[name] && !in.WritesHeap[name]
}

// LoopDoesIO reports whether any instruction of the given blocks performs
// I/O directly or through a callee.
func (in *Info) LoopDoesIO(blocks map[*ir.Block]bool) bool {
	for b := range blocks {
		for _, instr := range b.Instrs {
			switch i := instr.(type) {
			case *ir.Print:
				return true
			case *ir.Call:
				if !i.Builtin && in.MayIO[i.Callee] {
					return true
				}
			}
		}
	}
	return false
}
