package core

import (
	"fmt"
	"sort"
	"strings"

	"dca/internal/cfg"
	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/sandbox"
)

// ContextResult is the verdict for one calling context of a loop. The
// paper's prototype is context-insensitive (§IV-E: "Loop candidates can
// exhibit commutativity in some execution contexts, but not in others...
// We leave this for future work"); AnalyzeLoopContexts implements that
// extension: for each calling context the permutation schedules are applied
// to that context's invocations only (all others replay in original order),
// so any live-out or output divergence is attributable to the context under
// test, and a loop that is commutative under one caller and order-dependent
// under another gets a split verdict instead of a blanket rejection.
type ContextResult struct {
	// Context is the call chain ("main>driver>kernel").
	Context     string
	Verdict     Verdict
	Reason      string
	Invocations int
}

// ContextReport is the context-sensitive outcome for one loop.
type ContextReport struct {
	LoopID   string
	Contexts []*ContextResult
}

// Commutative returns the contexts found commutative.
func (r *ContextReport) Commutative() []*ContextResult {
	var out []*ContextResult
	for _, c := range r.Contexts {
		if c.Verdict == Commutative {
			out = append(out, c)
		}
	}
	return out
}

// Context returns the result for an exact context string, or nil.
func (r *ContextReport) Context(ctx string) *ContextResult {
	for _, c := range r.Contexts {
		if c.Context == ctx {
			return c
		}
	}
	return nil
}

func (r *ContextReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.LoopID)
	for _, c := range r.Contexts {
		fmt.Fprintf(&b, "  %-40s %-16s", c.Context, c.Verdict)
		if c.Reason != "" {
			fmt.Fprintf(&b, " (%s)", c.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AnalyzeLoopContexts runs DCA's dynamic stage on one loop once per calling
// context observed in the golden run.
func AnalyzeLoopContexts(prog *ir.Program, fnName string, loopIndex int, opt Options) (*ContextReport, error) {
	opt.normalize()
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("core: no function %q", fnName)
	}
	_, loops := cfg.LoopsOf(fn)
	if loopIndex < 0 || loopIndex >= len(loops) {
		return nil, fmt.Errorf("core: %s has %d loops", fnName, len(loops))
	}
	rep := &ContextReport{LoopID: loops[loopIndex].ID()}

	inst, err := instrument.Loop(prog, fnName, loopIndex)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// run executes one sandboxed replay, retrying Budget/Timeout traps at
	// doubled limits like the context-insensitive dynamic stage does.
	run := func(s dcart.Schedule, only string) (*dcart.Runtime, string, *sandbox.Trap) {
		var rt *dcart.Runtime
		var out strings.Builder
		oc, _ := sandbox.RunRetry(nil, inst.Prog, func() interp.Config {
			rt = dcart.NewRuntime(s)
			rt.TrackContexts = true
			rt.OnlyContext = only
			out.Reset()
			return interp.Config{Out: &out, Runtime: rt}
		}, opt.Limits(), nil, opt.Retries)
		return rt, out.String(), oc.Trap
	}

	golden, goldenOut, trap := run(dcart.Identity{}, "")
	if trap != nil {
		return nil, fmt.Errorf("core: golden run failed (%s): %w", trap.Kind, trap)
	}
	counts := map[string]int{}
	for _, ctx := range golden.Contexts {
		counts[ctx]++
	}
	var ctxs []string
	for ctx := range counts {
		ctxs = append(ctxs, ctx)
	}
	sort.Strings(ctxs)

	for _, ctx := range ctxs {
		res := &ContextResult{Context: ctx, Verdict: Commutative, Invocations: counts[ctx]}
		rep.Contexts = append(rep.Contexts, res)
		for _, sched := range opt.Schedules {
			rt, out, trap := run(sched, ctx)
			if trap != nil {
				switch trap.Kind {
				case sandbox.Fault:
					// Golden completed; a fault under this context's
					// permutation is divergent observable behaviour.
					res.Verdict = NonCommutative
					res.Reason = fmt.Sprintf("schedule %s faulted where the golden run did not: %v", sched.Name(), trap.Err)
				case sandbox.Budget, sandbox.Timeout:
					res.Verdict = ResourceExhausted
					res.Reason = fmt.Sprintf("schedule %s hit its %s limit: %v", sched.Name(), trap.Kind, trap.Err)
				default: // Panic
					res.Verdict = Failed
					res.Reason = fmt.Sprintf("internal panic during schedule %s: %v", sched.Name(), trap.Err)
				}
				break
			}
			if why := compareContextRun(golden, goldenOut, rt, out, sched); why != "" {
				res.Verdict = NonCommutative
				res.Reason = why
				break
			}
		}
	}
	return rep, nil
}

// compareContextRun compares a selective-permutation run against golden:
// all snapshots (every context) and the program output must match, since
// only the context under test was permuted.
func compareContextRun(golden *dcart.Runtime, goldenOut string, rt *dcart.Runtime, out string, sched dcart.Schedule) string {
	if out != goldenOut {
		return fmt.Sprintf("schedule %s changed program output", sched.Name())
	}
	if len(rt.Snapshots) != len(golden.Snapshots) {
		return fmt.Sprintf("schedule %s changed invocation count (%d vs %d)", sched.Name(), len(rt.Snapshots), len(golden.Snapshots))
	}
	for i := range rt.Snapshots {
		if rt.Snapshots[i] != golden.Snapshots[i] {
			return fmt.Sprintf("schedule %s changed live-outs of invocation %d", sched.Name(), i)
		}
	}
	return ""
}
