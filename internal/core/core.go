// Package core is the paper's primary contribution: Dynamic Commutativity
// Analysis. For every loop of a program it runs the static stage (selection,
// iterator/payload separation, outlining, instrumentation) and the dynamic
// stage (golden execution plus permuted executions under a set of
// schedules, with live-out verification), and reports a per-loop Verdict.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"dca/internal/cfg"
	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/obs"
	"dca/internal/prove"
	"dca/internal/purity"
	"dca/internal/sandbox"
	"dca/internal/source"
)

// Verdict classifies one loop after analysis.
type Verdict int

// Verdicts. Commutative is DCA's "potentially parallelizable".
const (
	// Commutative: every tested permutation preserved all live-out
	// snapshots and the program output.
	Commutative Verdict = iota
	// NonCommutative: some permutation changed a live-out or faulted.
	NonCommutative
	// ExcludedIO: the loop performs I/O (directly or through a callee) and
	// is excluded during the selection step of the static stage.
	ExcludedIO
	// NotSeparable: iterator/payload separation or outlining failed; the
	// loop is outside the prototype's transformable class.
	NotSeparable
	// NotExecuted: the workload never reached the loop, so the dynamic
	// stage has no evidence.
	NotExecuted
	// Failed: the instrumented golden run diverged from the original
	// program, faulted, or the analysis itself panicked; the loop is
	// reported untestable while the rest of the suite continues.
	Failed
	// ResourceExhausted: a dynamic-stage execution ran out of its step,
	// heap, output, or wall-clock budget even after the bounded
	// doubled-budget retry. Unlike a fault this says nothing about the
	// program: the analysis simply could not afford the evidence.
	ResourceExhausted
	// Cancelled: the caller's context was cancelled before this loop's
	// analysis could finish (client disconnect, server drain, Ctrl-C).
	// Says nothing about the program; never cached.
	Cancelled
)

var verdictNames = [...]string{"commutative", "non-commutative", "excluded-io", "not-separable", "not-executed", "failed", "resource-exhausted", "cancelled"}

func (v Verdict) String() string { return verdictNames[v] }

// IsParallelizable reports whether DCA proposes the loop for
// parallelization.
func (v Verdict) IsParallelizable() bool { return v == Commutative }

// LoopResult is the analysis outcome for one loop.
type LoopResult struct {
	Fn      string
	Index   int // loop index within the function (cfg.FindLoops order)
	ID      string
	Pos     source.Pos
	Depth   int
	Verdict Verdict
	Reason  string
	// Invocations/Iterations observed during the golden run.
	Invocations int
	Iterations  int64
	// SchedulesTested counts permutation schedules that completed.
	SchedulesTested int
	// Retries counts doubled-budget retries spent during the dynamic stage.
	Retries int
	// TrapKind is the sandbox classification ("fault", "budget", "timeout",
	// "panic") behind a trap-derived verdict; "" when no trap fired.
	TrapKind string
	// Provenance records how the dynamic-stage outcome was obtained:
	// ProvenanceComputed (replays ran), ProvenanceCached (served from the
	// verdict cache), or ProvenanceJournaled (replayed from a run journal).
	Provenance string
	// Replays counts the instrumented executions this analysis consumed —
	// the golden run plus every schedule replay folded into the verdict
	// (doubled-budget retries are tracked separately in Retries). A cached
	// outcome consumes none.
	Replays int
	// SkippedStop counts schedule replays the sequential stopping rule
	// (Options.StopAfter) skipped after enough consecutive agreements.
	SkippedStop int
	// SkippedFootprint counts schedule replays the footprint fast path
	// skipped: the golden run proved the loop's iterations touch disjoint
	// memory, so every permutation is behaviour-preserving by construction.
	SkippedFootprint int
	// SkippedProve counts the schedule replays the static commutativity
	// prover skipped by closing a symbolic proof before the dynamic stage:
	// the golden run still executes as the coverage witness, but every
	// permuted replay could only reconfirm the proof.
	SkippedProve int
	// DurStatic/DurGolden/DurReplay split the loop's analysis wall-clock
	// into the static stage (separation, outlining, instrumentation), the
	// golden run, and the schedule replays. Diagnostic only, like Elapsed.
	DurStatic time.Duration
	DurGolden time.Duration
	DurReplay time.Duration
	// Elapsed is the wall-clock time this loop's analysis took, including a
	// cache hit's lookup time. Diagnostic only: it is not part of the
	// deterministic verdict and never compared across runs.
	Elapsed time.Duration
}

// Report is the whole-program analysis result.
type Report struct {
	Prog  *ir.Program
	Loops []*LoopResult
}

// Count returns how many loops carry the given verdict.
func (r *Report) Count(v Verdict) int {
	n := 0
	for _, l := range r.Loops {
		if l.Verdict == v {
			n++
		}
	}
	return n
}

// Commutative returns the loops DCA found commutative.
func (r *Report) Commutative() []*LoopResult {
	var out []*LoopResult
	for _, l := range r.Loops {
		if l.Verdict == Commutative {
			out = append(out, l)
		}
	}
	return out
}

// Replays returns the total instrumented executions consumed across all
// loops — the dynamic-stage work a warm verdict cache avoids.
func (r *Report) Replays() int {
	n := 0
	for _, l := range r.Loops {
		n += l.Replays
	}
	return n
}

// SkippedReplays totals the schedule replays the analysis did not run,
// split by mechanism: the sequential stopping rule and the footprint fast
// path.
func (r *Report) SkippedReplays() (stop, footprint int) {
	for _, l := range r.Loops {
		stop += l.SkippedStop
		footprint += l.SkippedFootprint
	}
	return stop, footprint
}

// StageSeconds totals the per-loop stage durations across the report:
// static (separation/outlining/instrumentation), golden runs, and schedule
// replays.
func (r *Report) StageSeconds() (static, golden, replay float64) {
	for _, l := range r.Loops {
		static += l.DurStatic.Seconds()
		golden += l.DurGolden.Seconds()
		replay += l.DurReplay.Seconds()
	}
	return static, golden, replay
}

// ProvedLoops returns how many loops the static commutativity prover
// decided without any schedule replay (provenance ProvenanceProved).
func (r *Report) ProvedLoops() int {
	n := 0
	for _, l := range r.Loops {
		if l.Provenance == ProvenanceProved {
			n++
		}
	}
	return n
}

// SkippedProveRuns totals the schedule replays the static prover skipped
// across the report, including counts preserved through cached records.
func (r *Report) SkippedProveRuns() int {
	n := 0
	for _, l := range r.Loops {
		n += l.SkippedProve
	}
	return n
}

// CachedLoops returns how many loops were served from the verdict cache.
func (r *Report) CachedLoops() int {
	n := 0
	for _, l := range r.Loops {
		if l.Provenance == ProvenanceCached {
			n++
		}
	}
	return n
}

// ResumedLoops returns how many loops were replayed from a run journal.
func (r *Report) ResumedLoops() int {
	n := 0
	for _, l := range r.Loops {
		if l.Provenance == ProvenanceJournaled {
			n++
		}
	}
	return n
}

// Result returns the outcome for a specific loop, or nil.
func (r *Report) Result(fn string, index int) *LoopResult {
	for _, l := range r.Loops {
		if l.Fn == fn && l.Index == index {
			return l
		}
	}
	return nil
}

func (r *Report) String() string {
	var b strings.Builder
	for _, l := range r.Loops {
		fmt.Fprintf(&b, "%-40s %-16s", l.ID, l.Verdict)
		if l.Reason != "" {
			fmt.Fprintf(&b, " (%s)", l.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Options configures the analysis.
type Options struct {
	// Schedules are the permutations tested against the golden order;
	// defaults to dcart.DefaultSchedules().
	Schedules []dcart.Schedule
	// MaxSteps bounds each program execution (default 200M).
	MaxSteps int64
	// Timeout bounds each program execution's wall-clock time (0 = none).
	Timeout time.Duration
	// MaxHeapObjects / MaxOutput bound each execution's heap allocations
	// and program output bytes (0 = none).
	MaxHeapObjects int64
	MaxOutput      int64
	// Retries is how many times a budget- or timeout-trapped execution is
	// retried at a doubled budget before the loop degrades to
	// ResourceExhausted. Default 1; negative disables retries.
	Retries int
	// StopAfter, when positive, is the sequential stopping rule: once
	// StopAfter consecutive schedules agree with the golden run, the
	// remaining schedules are skipped and the loop reports Commutative.
	// It trades evidence for time — a skipped schedule could have diverged —
	// so it participates in the verdict fingerprint. 0 tests every schedule.
	StopAfter int
	// NoFootprint disables the footprint fast path. By default the golden
	// run records every heap cell each iteration reads and writes; when the
	// per-iteration footprints are pairwise disjoint, reordering iterations
	// cannot change any observable behaviour, so the replays are skipped and
	// the loop reports Commutative with provenance ProvenanceFootprint.
	NoFootprint bool
	// NoProve disables the static commutativity prover. By default the
	// prover (internal/prove) runs between the static and dynamic stages and
	// attempts a symbolic proof — affine-disjoint accesses, pure payloads
	// over disjoint footprints, or closed reduction/min-max/histogram
	// recurrences — that every iteration order is behaviour-preserving. A
	// proved loop still runs the golden run (the proof cannot witness
	// coverage: a never-exercised loop must keep its NotExecuted verdict)
	// but skips every schedule replay, reporting Commutative with provenance
	// ProvenanceProved; a failed proof falls through to the dynamic stage
	// unchanged. Disabling the prover turns the dynamic stage back into a
	// differential oracle for it: verdicts are identical either way, the
	// prover only removes replay work.
	NoProve bool
	// NoVM runs every execution of this analysis on the tree-walking
	// interpreter instead of the bytecode VM. The two executors are
	// trap-and-output parity-verified, so the knob cannot reach a verdict
	// and is deliberately NOT part of the fingerprint: a VM run may serve a
	// tree-walker run's cached verdict and vice versa.
	NoVM bool
	// Inject deterministically trips a trap inside the instrumented
	// executions — the test harness for the degradation paths themselves.
	// InjectFn/InjectLoop restrict it to one loop; InjectFn == "" applies
	// it to every loop. The uninstrumented reference run is never injected.
	Inject     sandbox.Inject
	InjectFn   string
	InjectLoop int
	// DebugSnapshots keeps the full string serialization of every live-out
	// snapshot alongside its digest, so a live-out divergence reason carries
	// the actual differing serializations. Costs O(heap) per invocation.
	DebugSnapshots bool
	// Cache, when non-nil, is consulted before each loop's dynamic stage
	// and updated after it: a hit under the loop's fingerprint serves the
	// stored verdict without running the golden run or any replay. Fault
	// injection bypasses the cache entirely. See internal/fingerprint for
	// the key contract and internal/cache for the production store.
	Cache VerdictCache
	// Trace, when non-nil, receives one structured event per stage of
	// every loop's analysis lifecycle (static outcome, prescreen skip,
	// cache lookup, golden run, each schedule replay, final verdict) plus
	// one program-level event per reference execution. The sink must be
	// safe for concurrent use; it observes the analysis and must never
	// influence it. Not part of the fingerprinted inputs.
	Trace obs.Sink
}

// emit sends one trace event to the configured sink, if any.
func (o *Options) emit(ev obs.Event) {
	if o.Trace != nil {
		o.Trace.Emit(ev)
	}
}

func (o *Options) normalize() {
	if len(o.Schedules) == 0 {
		o.Schedules = dcart.DefaultSchedules()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000_000
	}
	switch {
	case o.Retries == 0:
		o.Retries = 1
	case o.Retries < 0:
		o.Retries = 0
	}
}

// Normalized returns the options with defaults filled in — the form the
// analysis entry points (and the concurrent engine) operate on.
func (o Options) Normalized() Options {
	o.normalize()
	return o
}

// Limits converts the per-execution budgets into sandbox limits.
func (o *Options) Limits() sandbox.Limits {
	return sandbox.Limits{
		MaxSteps:       o.MaxSteps,
		MaxHeapObjects: o.MaxHeapObjects,
		MaxOutput:      o.MaxOutput,
		Timeout:        o.Timeout,
	}
}

// InjectorFor arms the configured injection for one loop's dynamic stage,
// or returns nil when injection is off or aimed at a different loop.
func (o *Options) InjectorFor(fn string, loop int) *sandbox.Injector {
	if o.Inject.AtStep == 0 && o.Inject.AtIntrinsic == 0 {
		return nil
	}
	if o.InjectFn != "" && (o.InjectFn != fn || o.InjectLoop != loop) {
		return nil
	}
	return sandbox.NewInjector(o.Inject)
}

// InjectionEnabled reports whether any deterministic fault injection is
// configured. The engine runs schedule replays inline (sequentially) in
// that case so the injector's cross-run trip counter is consumed in the
// same order as the sequential path.
func (o *Options) InjectionEnabled() bool {
	return o.Inject.AtStep != 0 || o.Inject.AtIntrinsic != 0
}

// Analyze runs DCA over every loop of every function in the program.
func Analyze(prog *ir.Program, opt Options) (*Report, error) {
	opt.normalize()
	rep := &Report{Prog: prog}

	// Reference output of the unmodified program. A trap here is fatal for
	// the whole analysis: with no reference behaviour there is nothing to
	// compare any loop's replays against.
	var refOut strings.Builder
	refStart := time.Now()
	if oc := sandbox.Run(nil, prog, interp.Config{Out: &refOut, NoVM: opt.NoVM}, opt.Limits(), nil); !oc.OK() {
		return nil, fmt.Errorf("core: reference execution failed (%s): %w", oc.Trap.Kind, oc.Trap)
	}
	opt.emit(obs.Event{Stage: obs.StageReference, Outcome: obs.OutcomeOK,
		DurationMS: float64(time.Since(refStart)) / float64(time.Millisecond)})

	pur := purity.Analyze(prog)

	for _, fn := range prog.Funcs {
		_, loops := cfg.LoopsOf(fn)
		for _, loop := range loops {
			res := &LoopResult{
				Fn:    fn.Name,
				Index: loop.Index,
				ID:    loop.ID(),
				Pos:   loop.Header.Pos,
				Depth: loop.Depth,
			}
			rep.Loops = append(rep.Loops, res)
			AnalyzeLoopInto(context.Background(), prog, fn, loop, pur, opt, refOut.String(), res, false, nil)
		}
	}
	sort.SliceStable(rep.Loops, func(i, j int) bool {
		if rep.Loops[i].Fn != rep.Loops[j].Fn {
			return rep.Loops[i].Fn < rep.Loops[j].Fn
		}
		return rep.Loops[i].Index < rep.Loops[j].Index
	})
	return rep, nil
}

// AnalyzeLoop runs DCA on a single loop of the named function.
func AnalyzeLoop(prog *ir.Program, fnName string, loopIndex int, opt Options) (*LoopResult, error) {
	opt.normalize()
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("core: no function %q", fnName)
	}
	_, loops := cfg.LoopsOf(fn)
	if loopIndex < 0 || loopIndex >= len(loops) {
		return nil, fmt.Errorf("core: %s has %d loops", fnName, len(loops))
	}
	loop := loops[loopIndex]
	var refOut strings.Builder
	if oc := sandbox.Run(nil, prog, interp.Config{Out: &refOut, NoVM: opt.NoVM}, opt.Limits(), nil); !oc.OK() {
		return nil, fmt.Errorf("core: reference execution failed (%s): %w", oc.Trap.Kind, oc.Trap)
	}
	res := &LoopResult{Fn: fnName, Index: loopIndex, ID: loop.ID(), Pos: loop.Header.Pos, Depth: loop.Depth}
	AnalyzeLoopInto(context.Background(), prog, fn, loop, purity.Analyze(prog), opt, refOut.String(), res, false, nil)
	return res, nil
}

// runCell executes the instrumented program under a fresh runtime from
// mkRT inside a sandbox cell, retrying Budget and Timeout traps at doubled
// limits up to opt.Retries times. ctx cancellation aborts the execution
// mid-run (surfacing as a Timeout trap) and suppresses retries. It returns
// the last attempt's runtime, captured output, trap (nil on success), and
// the retries spent.
func runCell(ctx context.Context, prog *ir.Program, mkRT func() *dcart.Runtime, opt Options, inj *sandbox.Injector) (*dcart.Runtime, string, *sandbox.Trap, int) {
	var rt *dcart.Runtime
	var out strings.Builder
	oc, retries := sandbox.RunRetry(ctx, prog, func() interp.Config {
		rt = mkRT()
		out.Reset()
		return interp.Config{Out: &out, Runtime: rt, Footprint: rt.Footprint, NoVM: opt.NoVM}
	}, opt.Limits(), inj, opt.Retries)
	return rt, out.String(), oc.Trap, retries
}

// cancelled reports whether the analysis context has been cancelled.
func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// markCancelled records a context cancellation as the loop's outcome.
func markCancelled(ctx context.Context, res *LoopResult) {
	res.Verdict = Cancelled
	res.Reason = "analysis cancelled: " + context.Cause(ctx).Error()
}

// newRuntime builds a replay runtime for one schedule under the options'
// snapshot mode.
func newRuntime(s dcart.Schedule, opt *Options) *dcart.Runtime {
	rt := dcart.NewRuntime(s)
	rt.DebugSnapshots = opt.DebugSnapshots
	return rt
}

// ScheduleOutcome is the raw result of one permuted replay: the runtime
// (snapshots, counters), the captured program output, the trap if the run
// ended abnormally, and the doubled-budget retries it consumed. Fields are
// unexported — an executor only transports outcomes from runOne back to the
// fold; interpretation stays in AnalyzeLoopInto.
type ScheduleOutcome struct {
	rt      *dcart.Runtime
	out     string
	trap    *sandbox.Trap
	retries int
}

// ScheduleExecutor abstracts how a loop's n schedule replays are executed.
// It receives runOne (execute schedule i, any order, safe to call
// concurrently) and returns a getter the verdict fold calls for i = 0..n-1
// IN ORDER, stopping at the first failure. The sequential executor runs
// each schedule lazily inside get — never executing schedules past the
// first failure, exactly like the pre-executor code; a parallel executor
// may start all n eagerly and let get block on completion. Either way the
// fold consumes outcomes in schedule order, so verdict, reason,
// SchedulesTested, and Retries are identical across executors.
type ScheduleExecutor func(n int, runOne func(i int) ScheduleOutcome) (get func(i int) ScheduleOutcome)

// sequentialExecutor runs each schedule on demand, in fold order.
func sequentialExecutor(_ int, runOne func(i int) ScheduleOutcome) func(i int) ScheduleOutcome {
	return runOne
}

// AnalyzeLoopInto runs the static and dynamic stages for one loop and
// writes the verdict into res. It is the shared kernel of the sequential
// Analyze path and the concurrent engine:
//
//   - ctx cancellation aborts the analysis: the loop reports Cancelled
//     (a context-level outcome, never cached) and in-flight replays stop
//     at the interpreter's next cancellation check. ctx may be nil.
//   - prescreened declares that a coverage prescreen proved the loop's
//     header never executes in the reference run. The static stage (I/O
//     exclusion, separation, instrumentation) still runs — a never-executed
//     I/O loop must still report ExcludedIO and a non-separable one
//     NotSeparable, same as sequentially — but the golden run and every
//     replay are skipped and the loop short-circuits to NotExecuted.
//   - exec chooses how schedule replays execute (nil = sequential).
func AnalyzeLoopInto(ctx context.Context, prog *ir.Program, fn *ir.Func, loop *cfg.Loop, pur *purity.Info, opt Options, refOut string, res *LoopResult, prescreened bool, exec ScheduleExecutor) {
	start := time.Now()
	// Registered first so it runs last: the verdict event carries whatever
	// the panic recovery below settled on.
	defer func() {
		res.Elapsed = time.Since(start)
		opt.emit(obs.Event{Stage: obs.StageVerdict, Fn: res.Fn, LoopID: res.ID,
			Verdict: res.Verdict.String(), Reason: res.Reason, Trap: res.TrapKind,
			Provenance: res.Provenance, Retries: res.Retries,
			DurationMS: float64(res.Elapsed) / float64(time.Millisecond)})
	}()
	// A panic anywhere in this loop's static or dynamic stage (including
	// instrumentation) marks the loop Failed; the suite run continues.
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = Failed
			res.TrapKind = sandbox.Panic.String()
			res.Reason = fmt.Sprintf("internal panic: %v", r)
		}
	}()
	res.Provenance = ProvenanceComputed

	// Cancelled before any work: report without paying for the static
	// stage. The bounded engine dispatch drains its remaining jobs here.
	if cancelled(ctx) {
		markCancelled(ctx, res)
		return
	}

	// --- Selection: exclude I/O loops (§IV-E). ---
	if pur.LoopDoesIO(loop.Blocks) {
		res.Verdict = ExcludedIO
		res.Reason = "loop performs I/O directly or through a callee"
		opt.emit(obs.Event{Stage: obs.StageStatic, Fn: res.Fn, LoopID: res.ID, Outcome: ExcludedIO.String()})
		return
	}

	// --- Static stage: separate, outline, instrument. ---
	sstart := time.Now()
	inst, err := instrument.Loop(prog, fn.Name, loop.Index)
	res.DurStatic = time.Since(sstart)
	if err != nil {
		res.Verdict = NotSeparable
		res.Reason = trimPrefixes(err.Error())
		opt.emit(obs.Event{Stage: obs.StageStatic, Fn: res.Fn, LoopID: res.ID,
			Outcome: NotSeparable.String(), Err: res.Reason})
		return
	}
	opt.emit(obs.Event{Stage: obs.StageStatic, Fn: res.Fn, LoopID: res.ID, Outcome: obs.OutcomeOK})

	inj := opt.InjectorFor(fn.Name, loop.Index)

	// --- Incremental analysis: consult the verdict cache. The fingerprint
	// covers every input that can reach the verdict (program IR, payload,
	// schedules, budgets — see internal/fingerprint), so a hit is the exact
	// outcome the dynamic stage below would recompute. Armed fault injection
	// bypasses the cache in both directions: injected traps are harness
	// behaviour, not reusable analysis results.
	var key string
	if opt.Cache != nil && inj == nil {
		key = loopKey(prog, fn.Name, loop.Index, inst, &opt)
		if data, ok := opt.Cache.Get(key); ok && decodeCachedVerdict(data, res) {
			res.Provenance = ProvenanceCached
			opt.emit(obs.Event{Stage: obs.StageCache, Fn: res.Fn, LoopID: res.ID, Outcome: obs.OutcomeHit})
			return
		}
		opt.emit(obs.Event{Stage: obs.StageCache, Fn: res.Fn, LoopID: res.ID, Outcome: obs.OutcomeMiss})
	}

	// --- Coverage prescreen: the reference run proved the loop header never
	// executes, so the golden run could only confirm zero iterations. Skip
	// it and every replay. (Placed after the static stage on purpose —
	// selection and separability verdicts must not depend on coverage — and
	// BEFORE the prover: execution evidence outranks a symbolic proof, so a
	// never-reached loop keeps the NotExecuted verdict the golden run would
	// have produced, and the prover's work is saved.)
	if prescreened {
		res.Verdict = NotExecuted
		res.Reason = "workload never executes this loop's payload"
		opt.emit(obs.Event{Stage: obs.StagePrescreen, Fn: res.Fn, LoopID: res.ID, Outcome: obs.OutcomeSkipped})
		return
	}

	// --- Static commutativity prover: attempt a symbolic proof that every
	// iteration order is behaviour-preserving. A successful proof skips
	// every schedule replay — but NOT the golden run, which stays as the
	// coverage witness: a proof quantifies over iteration orders, it cannot
	// tell whether the workload exercises the loop at all, and a
	// never-exercised loop must report NotExecuted exactly as it would with
	// the prover off. The proved verdict is cached like a dynamic one
	// (NoProve participates in the fingerprint, so proved and
	// dynamically-tested records never alias); a failed attempt falls
	// through to the dynamic stage unchanged. Armed fault injection
	// bypasses the prover: injected traps are dynamic-stage harness
	// behaviour a proof would silently suppress.
	proved := false
	if !opt.NoProve && inj == nil {
		pstart := time.Now()
		pr := prove.Loop(prog, fn.Name, loop.Index, pur)
		dur := float64(time.Since(pstart)) / float64(time.Millisecond)
		if pr.Proved {
			// Cancellation wins even over an already-closed proof: the
			// engine's contract is that a cancelled analysis reports
			// Cancelled for every loop whose dynamic stage had not fully
			// concluded, and caches nothing.
			if cancelled(ctx) {
				markCancelled(ctx, res)
				return
			}
			proved = true
			opt.emit(obs.Event{Stage: obs.StageProve, Fn: res.Fn, LoopID: res.ID,
				Outcome: obs.OutcomeProved, Reason: pr.Argument, DurationMS: dur})
		} else {
			opt.emit(obs.Event{Stage: obs.StageProve, Fn: res.Fn, LoopID: res.ID,
				Outcome: obs.OutcomeMiss, Reason: pr.Reason, DurationMS: dur})
		}
	}

	dynamicStage(ctx, inst, &opt, refOut, res, inj, exec, proved)

	// Store the freshly computed outcome for future runs. Reached only on
	// normal completion: a panic unwinds past this into the recover above,
	// so a half-written result can never be cached — and a cancelled
	// analysis is a statement about the context, not the program, so it is
	// never stored either.
	if key != "" && !cancelled(ctx) && cacheableVerdict(res) {
		if data := encodeCachedVerdict(res); data != nil {
			opt.Cache.Put(key, data)
		}
	}
}

// dynamicStage runs the golden execution and the permuted replays for one
// instrumented loop and writes the verdict into res. Split from
// AnalyzeLoopInto so the cache layer wraps exactly the replay work and
// nothing else. proved reports that the static prover already closed a
// commutativity proof: the golden run still executes (coverage and
// behaviour-preservation evidence), but every schedule replay is skipped.
func dynamicStage(ctx context.Context, inst *instrument.Instrumented, optp *Options, refOut string, res *LoopResult, inj *sandbox.Injector, exec ScheduleExecutor, proved bool) {
	opt := *optp

	// --- Dynamic stage: golden run. ---
	// Unless disabled, the golden run doubles as the footprint-proof
	// attempt: the runtime brackets each payload execution into a segment
	// and the executor reports every heap cell it touches. A fresh recorder
	// per attempt keeps doubled-budget retries from seeing a dead run's
	// accesses. Fault injection runs without a recorder — an injected trap
	// aborts mid-segment and the partial footprint proves nothing. A static
	// proof already decided the replays, so the recorder's evidence would go
	// unused — skip the tracking cost.
	track := !opt.NoFootprint && inj == nil && !proved
	gstart := time.Now()
	golden, goldenOut, trap, retries := runCell(ctx, inst.Prog, func() *dcart.Runtime {
		rt := newRuntime(dcart.Identity{}, &opt)
		if track {
			rt.Footprint = interp.NewFootprint()
		}
		return rt
	}, opt, inj)
	res.DurGolden = time.Since(gstart)
	emitRun(&opt, obs.Event{Stage: obs.StageGolden, Fn: res.Fn, LoopID: res.ID,
		DurationMS: float64(res.DurGolden) / float64(time.Millisecond), Retries: retries}, trap)
	res.Replays++
	res.Retries += retries
	if trap != nil {
		res.TrapKind = trap.Kind.String()
		switch {
		case cancelled(ctx):
			// The caller tore the analysis down mid-run; the trap is an
			// artifact of cancellation, not evidence about the program.
			markCancelled(ctx, res)
		case trap.Kind == sandbox.Budget, trap.Kind == sandbox.Timeout:
			// The analysis ran out of resources, not the program out of
			// correctness: degrade without claiming a verdict.
			res.Verdict = ResourceExhausted
			res.Reason = fmt.Sprintf("golden run hit its %s limit after %d retries: %v", trap.Kind, retries, trap.Err)
		case trap.Kind == sandbox.Panic:
			res.Verdict = Failed
			res.Reason = fmt.Sprintf("internal panic during golden run: %v", trap.Err)
		default: // Fault
			// A fault in *original* order means the transformation itself
			// broke the program; it is not commutativity evidence.
			res.Verdict = Failed
			res.Reason = "golden run faulted: " + trap.Err.Error()
		}
		return
	}
	if goldenOut != refOut {
		// The transformation changed observable behaviour even in original
		// order: a separability assumption was violated dynamically.
		res.Verdict = Failed
		res.Reason = "instrumented golden run diverges from original program"
		return
	}
	res.Invocations = golden.Invocations
	res.Iterations = golden.Iterations
	if golden.Iterations == 0 {
		// The workload either never reaches the loop or always exits it
		// before the payload runs: no dynamic evidence either way.
		res.Verdict = NotExecuted
		res.Reason = "workload never executes this loop's payload"
		return
	}

	// --- Static proof short-circuit: the prover closed a commutativity
	// proof over every iteration order, and the golden run above supplied
	// what no symbolic argument can — the workload exercises the payload,
	// and the transformation preserves original-order behaviour. The
	// replays could only reconfirm the proof, so they are skipped.
	if proved {
		if cancelled(ctx) {
			markCancelled(ctx, res)
			return
		}
		res.Verdict = Commutative
		res.Provenance = ProvenanceProved
		res.SkippedProve = len(opt.Schedules)
		return
	}

	// --- Footprint fast path: the golden run observed every heap cell each
	// iteration reads and writes. If no cell written in one iteration is
	// touched by another, the iterations are independent computations over
	// disjoint state — any permutation produces the same cell values, the
	// same live-out graphs, and (payloads being I/O-free past selection) the
	// same output. The replays could only reconfirm that, so they are
	// skipped. Same evidentiary standard as the replays themselves: a
	// dynamic claim about the observed workload, not all inputs.
	if track && golden.Footprint.Disjoint() {
		// Cancellation wins even over an already-provable verdict: the
		// engine's contract is that a cancelled analysis deterministically
		// reports Cancelled for every loop whose dynamic stage had not fully
		// concluded, and caches nothing — regardless of which fast path
		// would have fired.
		if cancelled(ctx) {
			markCancelled(ctx, res)
			return
		}
		res.Verdict = Commutative
		res.Provenance = ProvenanceFootprint
		res.SkippedFootprint = len(opt.Schedules)
		return
	}

	// --- Dynamic stage: permuted runs + live-out verification. ---
	// The executor decides where each replay runs; the fold below consumes
	// outcomes strictly in schedule order and stops at the first failure, so
	// verdicts, reasons, SchedulesTested, and Retries match the sequential
	// path regardless of execution order.
	scheds := opt.Schedules
	runOne := func(i int) (oc ScheduleOutcome) {
		rstart := time.Now()
		// A panic inside a replay cell degrades to a Panic trap in both the
		// sequential and parallel executors, keeping reasons identical. The
		// replay event is emitted from this same deferred hook so trapped
		// and clean replays alike are traced — possibly concurrently, from
		// an offload worker's goroutine.
		defer func() {
			if r := recover(); r != nil {
				oc = ScheduleOutcome{trap: &sandbox.Trap{Kind: sandbox.Panic, Err: fmt.Errorf("core: recovered panic: %v", r)}}
			}
			emitRun(&opt, obs.Event{Stage: obs.StageReplay, Fn: res.Fn, LoopID: res.ID,
				Schedule: scheds[i].Name(), Retries: oc.retries,
				DurationMS: float64(time.Since(rstart)) / float64(time.Millisecond)}, oc.trap)
		}()
		rt, out, trap, retries := runCell(ctx, inst.Prog, func() *dcart.Runtime { return newRuntime(scheds[i], &opt) }, opt, inj)
		return ScheduleOutcome{rt: rt, out: out, trap: trap, retries: retries}
	}
	if exec == nil {
		exec = sequentialExecutor
	}
	get := exec(len(scheds), runOne)
	for i, sched := range scheds {
		t0 := time.Now()
		oc := get(i)
		res.DurReplay += time.Since(t0)
		res.Replays++
		res.Retries += oc.retries
		if oc.trap != nil {
			res.TrapKind = oc.trap.Kind.String()
			switch {
			case cancelled(ctx):
				markCancelled(ctx, res)
			case oc.trap.Kind == sandbox.Fault:
				// The golden run completed but this permutation trapped:
				// a divergent observable behaviour, reliably detected as a
				// commutativity violation (§IV-E).
				res.Verdict = NonCommutative
				res.Reason = fmt.Sprintf("schedule %s faulted where the golden run did not: %v", sched.Name(), oc.trap.Err)
			case oc.trap.Kind == sandbox.Budget, oc.trap.Kind == sandbox.Timeout:
				res.Verdict = ResourceExhausted
				res.Reason = fmt.Sprintf("schedule %s hit its %s limit after %d retries: %v", sched.Name(), oc.trap.Kind, oc.retries, oc.trap.Err)
			default: // Panic
				res.Verdict = Failed
				res.Reason = fmt.Sprintf("internal panic during schedule %s: %v", sched.Name(), oc.trap.Err)
			}
			return
		}
		if why := compareRuns(golden, oc.rt, refOut, oc.out, sched); why != "" {
			res.Verdict = NonCommutative
			res.Reason = why
			return
		}
		res.SchedulesTested++
		// Sequential stopping rule: enough consecutive agreements, stop
		// paying for more evidence. (Any disagreement returns above, so
		// SchedulesTested is exactly the current agreement streak.)
		if opt.StopAfter > 0 && res.SchedulesTested >= opt.StopAfter && i+1 < len(scheds) {
			res.SkippedStop = len(scheds) - (i + 1)
			break
		}
	}
	res.Verdict = Commutative
}

// emitRun emits a golden or replay event, filling the outcome from the
// trap (nil = clean).
func emitRun(opt *Options, ev obs.Event, trap *sandbox.Trap) {
	if opt.Trace == nil {
		return
	}
	if trap != nil {
		ev.Outcome = obs.OutcomeTrap
		ev.Trap = trap.Kind.String()
		if trap.Err != nil {
			ev.Err = trap.Err.Error()
		}
	} else {
		ev.Outcome = obs.OutcomeOK
	}
	opt.Trace.Emit(ev)
}

func compareRuns(golden, rt *dcart.Runtime, refOut, out string, sched dcart.Schedule) string {
	if out != refOut {
		return fmt.Sprintf("schedule %s changed program output", sched.Name())
	}
	if len(rt.Snapshots) != len(golden.Snapshots) {
		return fmt.Sprintf("schedule %s changed invocation count (%d vs %d)", sched.Name(), len(rt.Snapshots), len(golden.Snapshots))
	}
	for i := range rt.Snapshots {
		if rt.Snapshots[i] != golden.Snapshots[i] {
			why := fmt.Sprintf("schedule %s changed live-outs of invocation %d", sched.Name(), i)
			// With DebugSnapshots on, both runtimes kept the string
			// serializations: show what actually diverged.
			if i < len(golden.SnapshotStrings) && i < len(rt.SnapshotStrings) {
				why += fmt.Sprintf(": golden %s vs permuted %s",
					truncateSnap(golden.SnapshotStrings[i]), truncateSnap(rt.SnapshotStrings[i]))
			}
			return why
		}
	}
	return ""
}

// truncateSnap bounds a debug snapshot string for use inside a reason.
func truncateSnap(s string) string {
	const max = 96
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

func trimPrefixes(s string) string {
	s = strings.TrimPrefix(s, "instrument: ")
	return s
}
