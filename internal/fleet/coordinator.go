package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"dca/internal/cfg"
	"dca/internal/core"
	"dca/internal/fingerprint"
	"dca/internal/ir"
	"dca/internal/obs"
)

// Knobs are the per-request analysis options the coordinator forwards
// verbatim to every worker, so a sharded analysis runs under exactly the
// configuration a single node would have used.
type Knobs struct {
	Schedules   int
	MaxSteps    int64
	TimeoutMS   int64
	NoCache     bool
	StopAfter   int
	NoFootprint bool
	NoProve     bool
	NoVM        bool
}

// workerRequest is the worker-side /analyze body. JSON tags mirror the
// server's AnalyzeRequest; the type is redeclared here so fleet never
// imports internal/server (the server imports fleet).
type workerRequest struct {
	Filename    string    `json:"filename,omitempty"`
	Source      string    `json:"source"`
	Schedules   int       `json:"schedules,omitempty"`
	MaxSteps    int64     `json:"max_steps,omitempty"`
	TimeoutMS   int64     `json:"timeout_ms,omitempty"`
	NoCache     bool      `json:"no_cache,omitempty"`
	StopAfter   int       `json:"stop_after,omitempty"`
	NoFootprint bool      `json:"no_footprint,omitempty"`
	NoProve     bool      `json:"no_prove,omitempty"`
	NoVM        bool      `json:"no_vm,omitempty"`
	Loops       []LoopRef `json:"loops,omitempty"`
}

type workerResponse struct {
	Report *core.ReportJSON `json:"report"`
	Error  string           `json:"error"`
}

// maxWorkerResponse caps a worker response body (reports are bounded by
// the loop count, but a confused peer must not balloon memory).
const maxWorkerResponse = 64 << 20

// Coordinator shards a program's loops across the fleet's workers and
// merges their verdicts back into one deterministic report.
type Coordinator struct {
	ring   *Ring
	client *http.Client
	m      *Metrics
	trace  obs.Sink
}

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Nodes are the worker base URLs ("http://host:port"). Required.
	Nodes []string
	// Client overrides the HTTP client used for dispatch; nil means a
	// client with no overall timeout (batches are bounded by the request
	// context, not a fixed clock — suites can run for minutes).
	Client *http.Client
	// Metrics, when non-nil, receives dispatch and re-dispatch counts.
	Metrics *Metrics
	// Trace, when non-nil, receives one StageFleet event per batch
	// dispatch outcome.
	Trace obs.Sink
}

// NewCoordinator builds a coordinator over the given worker nodes.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{
		ring:   NewRing(cfg.Nodes),
		client: client,
		m:      cfg.Metrics,
		trace:  cfg.Trace,
	}
}

// Ring exposes the coordinator's dispatch ring (shared with metrics and
// the peer cache when the process is both coordinator and worker).
func (c *Coordinator) Ring() *Ring { return c.ring }

// SetMetrics attaches the fleet instruments after construction — the
// server builds the coordinator first so the ring-size gauge can sample
// its ring, then hands the registered metrics back. Call before Analyze.
func (c *Coordinator) SetMetrics(m *Metrics) { c.m = m }

// EnumerateLoops lists a program's loops in report order — sorted by
// function name, then loop index, exactly like core.Analyze's output. The
// registry seeds its source-ordered stream from this list, and the
// coordinator merges worker verdicts back into it.
func EnumerateLoops(prog *ir.Program) []LoopRef {
	var refs []LoopRef
	for _, fn := range prog.Funcs {
		_, loops := cfg.LoopsOf(fn)
		for _, loop := range loops {
			refs = append(refs, LoopRef{Fn: fn.Name, Index: loop.Index})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Fn != refs[j].Fn {
			return refs[i].Fn < refs[j].Fn
		}
		return refs[i].Index < refs[j].Index
	})
	return refs
}

// Health probes every node's /healthz, returning the nodes that failed
// (missing entries are healthy). The coordinator seeds a run's dead set
// with it so a down worker costs one cheap probe instead of a full batch
// dispatch and re-dispatch.
func (c *Coordinator) Health(ctx context.Context) map[string]error {
	bad := make(map[string]error)
	for _, n := range c.ring.Nodes() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n+"/healthz", nil)
		if err != nil {
			bad[n] = err
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			bad[n] = err
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			bad[n] = fmt.Errorf("healthz: %s", resp.Status)
		}
	}
	return bad
}

// ProgramError is a worker's 4xx verdict on the dispatched program itself
// (compile failure, reference-execution trap, invalid knobs). It is the
// program's fault, not the worker's: re-dispatching to another node would
// fail identically, so the coordinator aborts the run instead of marking
// nodes dead one by one.
type ProgramError struct {
	Node string
	Msg  string
}

func (e *ProgramError) Error() string { return e.Msg }

// batchResult is one dispatch outcome, drained by the merge loop.
type batchResult struct {
	node string
	refs []LoopRef
	rep  *core.ReportJSON
	err  error
}

// Analyze shards prog's loops across the fleet, dispatches per-worker
// batches concurrently, and merges the verdicts into one report whose
// loop order, summary, and totals are byte-identical (modulo timing) to a
// single node analyzing the whole program.
//
// Failures re-dispatch: a batch whose worker is unreachable, shedding
// (503), or otherwise failing marks that node dead for the rest of the
// run and re-routes the batch's loops to their ring successors. Semantics
// are at-least-once — a loop may execute on two nodes across a failover —
// and safe: verdicts are deterministic and fingerprint-keyed, and the
// first result wins on merge. onLoop, when non-nil, receives every merged
// loop verdict exactly once, as its batch arrives.
func (c *Coordinator) Analyze(ctx context.Context, prog *ir.Program, filename, source string, knobs Knobs, onLoop func(core.LoopJSON)) (*core.ReportJSON, error) {
	start := time.Now()
	refs := EnumerateLoops(prog)
	router := fingerprint.NewRouter(prog)
	route := make(map[LoopRef]string, len(refs))
	for _, ref := range refs {
		route[ref] = router.Route(ref.Fn, ref.Index).String()
	}

	results := make(map[LoopRef]core.LoopJSON, len(refs))
	dead := make(map[string]bool)
	pending := refs

	for len(results) < len(refs) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fleet: analysis cancelled: %w", context.Cause(ctx))
		}
		// Route the still-pending loops onto the live ring.
		batches := make(map[string][]LoopRef)
		for _, ref := range pending {
			owner := c.ring.Owner(route[ref], dead)
			if owner == "" {
				return nil, fmt.Errorf("fleet: no live workers (%d/%d nodes dead)", len(dead), c.ring.Size())
			}
			batches[owner] = append(batches[owner], ref)
		}

		// Dispatch every batch concurrently; drain outcomes as they land.
		out := make(chan batchResult, len(batches))
		for node, batch := range batches {
			if c.m != nil {
				c.m.Dispatches.Inc(node)
			}
			go func(node string, batch []LoopRef) {
				rep, err := c.dispatch(ctx, node, filename, source, knobs, batch)
				out <- batchResult{node: node, refs: batch, rep: rep, err: err}
			}(node, batch)
		}

		progress := false
		var fatal error
		for range batches {
			br := <-out
			var perr *ProgramError
			if errors.As(br.err, &perr) {
				// Keep draining so no dispatch goroutine leaks, then abort.
				if fatal == nil {
					fatal = br.err
				}
				continue
			}
			if br.err != nil {
				// The node failed this run; its loops stay pending and the
				// next round routes them to the ring successor.
				dead[br.node] = true
				if c.m != nil {
					c.m.Redispatches.Inc()
				}
				if c.trace != nil {
					c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeError, Err: br.err.Error()})
				}
				continue
			}
			if c.trace != nil {
				c.trace.Emit(obs.Event{Stage: obs.StageFleet, Outcome: obs.OutcomeOK})
			}
			want := make(map[LoopRef]bool, len(br.refs))
			for _, ref := range br.refs {
				want[ref] = true
			}
			for _, lj := range br.rep.Loops {
				ref := LoopRef{Fn: lj.Fn, Index: lj.Index}
				if !want[ref] {
					continue // a worker may never widen its batch
				}
				if _, dup := results[ref]; dup {
					continue // at-least-once: first result wins
				}
				results[ref] = lj
				progress = true
				if onLoop != nil {
					onLoop(lj)
				}
			}
		}

		if fatal != nil {
			return nil, fatal
		}

		var still []LoopRef
		for _, ref := range pending {
			if _, ok := results[ref]; !ok {
				still = append(still, ref)
			}
		}
		pending = still
		if len(pending) > 0 && !progress && len(dead) == 0 {
			// Every batch "succeeded" yet loops are missing: a worker is
			// answering but not analyzing its share. Re-dispatching the same
			// batches would loop forever.
			return nil, fmt.Errorf("fleet: %d loops missing from worker reports", len(pending))
		}
	}

	return mergeReport(refs, results, time.Since(start)), nil
}

// dispatch sends one batch to one worker and decodes its report. Any
// non-200 status — including a 503 shed — is a batch failure; the caller
// re-routes.
func (c *Coordinator) dispatch(ctx context.Context, node, filename, source string, knobs Knobs, batch []LoopRef) (*core.ReportJSON, error) {
	body, err := json.Marshal(workerRequest{
		Filename:    filename,
		Source:      source,
		Schedules:   knobs.Schedules,
		MaxSteps:    knobs.MaxSteps,
		TimeoutMS:   knobs.TimeoutMS,
		NoCache:     knobs.NoCache,
		StopAfter:   knobs.StopAfter,
		NoFootprint: knobs.NoFootprint,
		NoProve:     knobs.NoProve,
		NoVM:        knobs.NoVM,
		Loops:       batch,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", node, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWorkerResponse))
	if err != nil {
		return nil, fmt.Errorf("%s: read response: %w", node, err)
	}
	if resp.StatusCode != http.StatusOK {
		var wr workerResponse
		msg := resp.Status
		if json.Unmarshal(data, &wr) == nil && wr.Error != "" {
			msg = wr.Error
		}
		// 4xx means the program (or the forwarded knobs) is at fault and
		// every node would agree; 5xx and transport errors mean this node is.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &ProgramError{Node: node, Msg: msg}
		}
		return nil, fmt.Errorf("%s: %s: %s", node, resp.Status, msg)
	}
	var wr workerResponse
	if err := json.Unmarshal(data, &wr); err != nil {
		return nil, fmt.Errorf("%s: decode response: %w", node, err)
	}
	if wr.Report == nil {
		return nil, fmt.Errorf("%s: response carried no report", node)
	}
	return wr.Report, nil
}

// mergeReport assembles the fleet report: loops in report order, summary
// and totals recomputed from the merged loops — the same arithmetic
// core.Report.JSON applies, so N workers and one worker render the same
// bytes (timing aside).
func mergeReport(refs []LoopRef, results map[LoopRef]core.LoopJSON, elapsed time.Duration) *core.ReportJSON {
	rep := &core.ReportJSON{
		Loops:          make([]core.LoopJSON, 0, len(refs)),
		Summary:        map[string]int{},
		TotalLoops:     len(refs),
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, ref := range refs {
		lj := results[ref]
		rep.Loops = append(rep.Loops, lj)
		rep.Summary[lj.Verdict]++
		if lj.Verdict == core.Commutative.String() {
			rep.Commutative++
		}
		switch lj.Provenance {
		case core.ProvenanceCached:
			rep.CachedLoops++
		case core.ProvenanceJournaled:
			rep.ResumedLoops++
		}
		rep.Replays += lj.Replays
	}
	return rep
}
