package skeleton_test

import (
	"testing"

	"dca/internal/instrument"
	"dca/internal/irbuild"
	"dca/internal/skeleton"
)

func classify(t *testing.T, src, fn string, idx int) *skeleton.Info {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, err := instrument.Loop(prog, fn, idx)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return skeleton.Classify(inst)
}

func TestMapSkeleton(t *testing.T) {
	info := classify(t, `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) { a[i] = i * 2; }
	print(a[0]);
}`, "main", 0)
	if info.Kind != skeleton.Map {
		t.Errorf("kind = %s (%+v), want map", info.Kind, info)
	}
}

func TestPLDSMapSkeleton(t *testing.T) {
	info := classify(t, `
struct N { v int; next *N; }
func main() {
	var head *N = new N;
	var p *N = head;
	while (p != nil) { p->v++; p = p->next; }
	print(head->v);
}`, "main", 0)
	if info.Kind != skeleton.Map || info.HeapWrites == 0 {
		t.Errorf("PLDS map = %s (%+v)", info.Kind, info)
	}
}

func TestReduceSkeleton(t *testing.T) {
	info := classify(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 16; i++) { s += i * i; }
	print(s);
}`, "main", 0)
	if info.Kind != skeleton.Reduce {
		t.Errorf("kind = %s (%+v), want reduce", info.Kind, info)
	}
	if len(info.Accumulators) != 1 || info.Accumulators[0] != "s" {
		t.Errorf("accumulators = %v", info.Accumulators)
	}
}

func TestMapReduceSkeleton(t *testing.T) {
	info := classify(t, `
func main() {
	var a []int = new [16]int;
	var s int = 0;
	for (var i int = 0; i < 16; i++) { a[i] = i; s += i; }
	print(s, a[3]);
}`, "main", 0)
	if info.Kind != skeleton.MapReduce {
		t.Errorf("kind = %s (%+v), want map-reduce", info.Kind, info)
	}
}

func TestExpandSkeleton(t *testing.T) {
	info := classify(t, `
struct Row { out *Cell; }
struct Cell { v int; next *Cell; }
func fill(rows []*Row, n int) {
	for (var i int = 0; i < n; i++) {
		var c *Cell = new Cell;
		c->v = i;
		rows[i]->out = c;
	}
}
func main() {
	var rows []*Row = new [8]*Row;
	for (var i int = 0; i < 8; i++) { rows[i] = new Row; }
	fill(rows, 8);
	print(rows[0]->out->v);
}`, "fill", 0)
	if info.Kind != skeleton.Expand || !info.Allocates {
		t.Errorf("kind = %s (%+v), want expand", info.Kind, info)
	}
}

func TestOrderedScalarUnknown(t *testing.T) {
	info := classify(t, `
func main() {
	var last int = 0;
	for (var i int = 0; i < 8; i++) { last = i; }
	print(last);
}`, "main", 0)
	if info.Kind != skeleton.Unknown {
		t.Errorf("ordered scalar = %s, want unknown", info.Kind)
	}
}

func TestMinMaxCountsAsReduce(t *testing.T) {
	info := classify(t, `
func main() {
	var m int = 0;
	for (var i int = 0; i < 16; i++) {
		var v int = (i * 13) % 37;
		if (v > m) { m = v; }
	}
	print(m);
}`, "main", 0)
	if info.Kind != skeleton.Reduce {
		t.Errorf("minmax = %s (%+v), want reduce", info.Kind, info)
	}
}
