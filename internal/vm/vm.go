// Package vm is a register bytecode VM for the IR: the fast executor behind
// the dynamic commutativity stage. Each ir.Program is compiled once (flat
// instruction array, interned constants, fused load+binop and cmp+branch
// superinstructions, calls resolved at compile time) and the compiled form
// is memoized on the program, so one compilation serves the golden run and
// every permuted replay. Execution uses a tight dispatch loop with an
// arena-allocated value stack and heap, and folds the step budget and
// context-cancellation polling into a single dispatch-counter comparison
// per retired instruction.
//
// The VM reproduces the tree-walking interpreter's contract exactly: step
// counts, block counts, output bytes, BudgetError/CancelError taxonomy and
// texts, error wrapping per frame, Runtime intrinsics (via interp.Env), and
// panic behaviour. internal/sandbox switches between the two executors
// transparently; the tree-walker stays available behind -no-vm as the
// differential-testing oracle (see dca fuzz's exec-divergence leg).
//
// Arena lifetime rules: frames and their register slices live on per-machine
// LIFO arenas and are reused after the frame returns — a Runtime must not
// retain a *interp.Frame or an intrinsic args slice beyond the intrinsic
// call (the in-tree runtimes copy what they keep). Heap objects are carved
// from append-only chunks that stay reachable through the program's own
// references, so escaping a ref is always safe.
package vm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"dca/internal/interp"
	"dca/internal/ir"
)

// disabled flips the package-wide executor preference; the zero value means
// the VM is on. Cleared via SetEnabled (the -no-vm flag).
var disabled atomic.Bool

// Enabled reports whether the VM is the preferred executor.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns the VM on or off process-wide (-no-vm sets false; the
// tree-walker then runs everything).
func SetEnabled(v bool) { disabled.Store(!v) }

// Supported reports whether cfg can run on the VM. Tracer and StepHook
// subscribe to per-instruction events the VM does not raise; those runs
// stay on the tree-walker. A config carrying NoVM opted out per execution
// (the server's per-request `no_vm`), without touching the process-wide
// preference other requests share.
func Supported(cfg interp.Config) bool {
	return cfg.Tracer == nil && cfg.StepHook == nil && !cfg.NoVM
}

// Machine executes one program. Not safe for concurrent use; distinct
// machines may share the program's compiled code freely.
type Machine struct {
	code *progCode
	out  io.Writer
	rt   interp.Runtime
	fp   *interp.Footprint
	ctx  context.Context

	steps    int64
	maxSteps int64
	stopAt   int64 // next steps value that needs the slow path
	nextPoll int64 // next context poll point (multiple of 256)

	nextID   int64
	maxHeap  int64
	outBytes int64
	maxOut   int64

	blockCt  map[*ir.Block]int64
	printBuf []byte
	argBuf   []ir.Value

	stack  valArena
	frames frameArena
	heap   heapArena

	extra map[*ir.Func]*fnCode // ad-hoc code for funcs outside the program
}

// machinePool recycles machines — and, crucially, their arenas — across
// runs. The dynamic stage creates thousands of short-lived machines; with
// pooling, their register stacks and heap chunks are reused instead of
// churned through the garbage collector.
var machinePool = sync.Pool{New: func() any { return new(Machine) }}

// New creates a machine for prog, compiling it if this program has never
// executed before. Machines come from a pool; callers that can prove the
// run's values do not escape should hand them back via Release.
func New(prog *ir.Program, cfg interp.Config) *Machine {
	max := cfg.MaxSteps
	if max == 0 {
		max = 1_000_000_000
	}
	m := machinePool.Get().(*Machine)
	*m = Machine{
		code:     compiled(prog),
		out:      cfg.Out,
		rt:       cfg.Runtime,
		fp:       cfg.Footprint,
		ctx:      cfg.Ctx,
		maxSteps: max,
		maxHeap:  cfg.MaxHeapObjects,
		maxOut:   cfg.MaxOutput,
		stack:    m.stack,
		frames:   m.frames,
		heap:     m.heap,
		printBuf: m.printBuf,
		argBuf:   m.argBuf,
	}
	if cfg.CountBlocks {
		m.blockCt = map[*ir.Block]int64{}
	}
	return m
}

// Release resets the machine and returns it (arenas included) to the pool.
// Only call it when nothing produced by the run is referenced afterwards:
// no returned ir.Value holding a heap reference, and no Runtime that
// retained heap references beyond the run (the in-tree runtimes keep only
// digests, strings, and counters). The sandbox releases machines after it
// has extracted an outcome; arbitrary callers (tests, tools) may simply
// drop the machine instead.
func (m *Machine) Release() {
	m.stack.reset()
	m.frames.reset()
	m.heap.reset()
	clear(m.argBuf)
	*m = Machine{
		stack:    m.stack,
		frames:   m.frames,
		heap:     m.heap,
		printBuf: m.printBuf[:0],
		argBuf:   m.argBuf,
	}
	machinePool.Put(m)
}

// Run executes prog from main() on a fresh machine (the VM counterpart of
// interp.Run).
func Run(prog *ir.Program, cfg interp.Config) (*interp.Result, error) {
	m := New(prog, cfg)
	main := prog.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: program %q has no main function", prog.Name)
	}
	ret, err := m.Call(main, nil, nil)
	if err != nil {
		return nil, err
	}
	return &interp.Result{Steps: m.steps, BlockCount: m.blockCt, Ret: ret}, nil
}

// Steps returns the instructions retired so far (interp.Env).
func (m *Machine) Steps() int64 { return m.steps }

// BlockCounts returns per-block execution counts (nil unless enabled).
func (m *Machine) BlockCounts() map[*ir.Block]int64 { return m.blockCt }

// Program returns the program under execution.
func (m *Machine) Program() *ir.Program { return m.code.prog }

// NewObjectID mints a fresh heap object ID (interp.Env).
func (m *Machine) NewObjectID() int64 {
	m.nextID++
	return m.nextID
}

// Call invokes fn with args under parent, with the interpreter's exact
// entry checks and error surface.
func (m *Machine) Call(fn *ir.Func, args []ir.Value, parent *interp.Frame) (ir.Value, error) {
	if len(args) != len(fn.Params) {
		return ir.Value{}, fmt.Errorf("interp: call %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	m.nextPoll = math.MaxInt64
	if m.ctx != nil {
		m.nextPoll = (m.steps>>8 + 1) << 8
	}
	m.stopAt = m.maxSteps + 1
	if m.nextPoll < m.stopAt {
		m.stopAt = m.nextPoll
	}
	return m.call(m.fnCodeFor(fn), args, parent)
}

// fnCodeFor resolves fn's bytecode; functions outside the compiled program
// (callable on the tree-walker via a raw *ir.Func) compile ad hoc into a
// machine-private table.
func (m *Machine) fnCodeFor(fn *ir.Func) *fnCode {
	if fc, ok := m.code.byFn[fn]; ok {
		return fc
	}
	if fc, ok := m.extra[fn]; ok {
		return fc
	}
	fc := &fnCode{fn: fn, nLocals: len(fn.Locals)}
	compileFn(m.code, fc)
	if m.extra == nil {
		m.extra = map[*ir.Func]*fnCode{}
	}
	m.extra[fn] = fc
	return fc
}

func (m *Machine) call(fc *fnCode, args []ir.Value, parent *interp.Frame) (ir.Value, error) {
	depth := 0
	if parent != nil {
		depth = parent.Depth + 1
	}
	if depth > 10000 {
		return ir.Value{}, fmt.Errorf("interp: call stack overflow in %s", fc.fn.Name)
	}
	if len(fc.blocks) == 0 {
		// The tree-walker panics indexing Blocks[0]; reproduce it.
		_ = fc.fn.Entry()
	}
	regs := m.stack.push(fc.nLocals)
	fr := m.frames.push()
	*fr = interp.Frame{Fn: fc.fn, Locals: regs, Parent: parent, Depth: depth}
	for i, p := range fc.fn.Params {
		regs[p.Index] = args[i]
	}
	ret, err := m.exec(fc, fr, regs)
	m.frames.pop()
	m.stack.pop()
	return ret, err
}

// get decodes an operand: register when o >= 0, constant-pool entry when
// negative.
func get(regs, consts []ir.Value, o int32) ir.Value {
	if o >= 0 {
		return regs[o]
	}
	return consts[^o]
}

// trip is the slow path behind the fused dispatch-counter check: budget
// first (exactly the interpreter's order), then a context poll every 256
// steps, then the next stop point is rearmed.
func (m *Machine) trip(fc *fnCode, pc int32) error {
	if m.steps > m.maxSteps {
		return &interp.BudgetError{Resource: "steps", Fn: fc.fn.Name, Block: fc.blkOf(pc).Name, Steps: m.steps, Limit: m.maxSteps}
	}
	if err := m.ctx.Err(); err != nil {
		return &interp.CancelError{Fn: fc.fn.Name, Block: fc.blkOf(pc).Name, Steps: m.steps, Cause: err}
	}
	m.nextPoll += 256
	m.stopAt = m.maxSteps + 1
	if m.nextPoll < m.stopAt {
		m.stopAt = m.nextPoll
	}
	return nil
}

// wrap adds one frame of error context, exactly as the interpreter wraps
// every instruction-level error.
func wrap(fc *fnCode, in ir.Instr, err error) error {
	return fmt.Errorf("%s: %s: %w", fc.fn.Name, in, err)
}

func (m *Machine) budgetErr(resource string, limit int64, fc *fnCode, pc int32) error {
	return &interp.BudgetError{Resource: resource, Fn: fc.fn.Name, Block: fc.blkOf(pc).Name, Steps: m.steps, Limit: limit}
}

// enter counts a block entry when block counting is on and returns its pc.
func (m *Machine) enter(fc *fnCode, bi int32) int32 {
	if bi < 0 {
		nilBlockPanic()
	}
	bl := &fc.blocks[bi]
	if m.blockCt != nil {
		m.blockCt[bl.b] += bl.cost
	}
	return bl.pc
}

// nilBlockPanic reproduces the tree-walker's panic when a terminator names
// a nil successor block.
func nilBlockPanic() {
	var b *ir.Block
	sink = len(b.Instrs)
}

var sink int

func (m *Machine) argScratch(n int) []ir.Value {
	if cap(m.argBuf) < n {
		m.argBuf = make([]ir.Value, n)
	}
	return m.argBuf[:n]
}

func (m *Machine) exec(fc *fnCode, fr *interp.Frame, regs []ir.Value) (ir.Value, error) {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return ir.Value{}, &interp.CancelError{Fn: fc.fn.Name, Block: fc.blocks[0].b.Name, Steps: m.steps, Cause: err}
		}
	}
	ins := fc.ins
	consts := fc.consts
	pc := m.enter(fc, 0)
	for {
		in := &ins[pc]
		switch in.op {
		case opMov:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			regs[in.a] = get(regs, consts, in.b)
			pc++

		case opBin:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			x := get(regs, consts, in.b)
			y := get(regs, consts, in.c)
			if x.Kind == ir.KindInt && y.Kind == ir.KindInt {
				// Non-trapping integer ops inline; Div/Rem (which can
				// trap) and the rarer kinds go through binop.
				switch ir.BinKind(in.k) {
				case ir.Add:
					regs[in.a] = ir.IntVal(x.I + y.I)
					pc++
					continue
				case ir.Sub:
					regs[in.a] = ir.IntVal(x.I - y.I)
					pc++
					continue
				case ir.Mul:
					regs[in.a] = ir.IntVal(x.I * y.I)
					pc++
					continue
				case ir.Lt:
					regs[in.a] = ir.BoolVal(x.I < y.I)
					pc++
					continue
				case ir.Le:
					regs[in.a] = ir.BoolVal(x.I <= y.I)
					pc++
					continue
				case ir.Gt:
					regs[in.a] = ir.BoolVal(x.I > y.I)
					pc++
					continue
				case ir.Ge:
					regs[in.a] = ir.BoolVal(x.I >= y.I)
					pc++
					continue
				case ir.Eq:
					regs[in.a] = ir.BoolVal(x.I == y.I)
					pc++
					continue
				case ir.Ne:
					regs[in.a] = ir.BoolVal(x.I != y.I)
					pc++
					continue
				}
			}
			v, err := binop(ir.BinKind(in.k), x, y)
			if err != nil {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), err)
			}
			regs[in.a] = v
			pc++

		case opNeg:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			x := get(regs, consts, in.b)
			switch x.Kind {
			case ir.KindInt:
				regs[in.a] = ir.IntVal(-x.I)
			case ir.KindFloat:
				regs[in.a] = ir.FloatVal(-x.F)
			default:
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("neg of %s", x))
			}
			pc++

		case opNot:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			regs[in.a] = ir.BoolVal(!get(regs, consts, in.b).Bool())
			pc++

		case opLoad:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			base := get(regs, consts, in.b)
			if base.IsNilRef() {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), errors.New("nil dereference"))
			}
			idx := int(get(regs, consts, in.c).I)
			obj := base.Ref
			if idx < 0 || idx >= len(obj.Elems) {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("index %d out of range [0,%d)", idx, len(obj.Elems)))
			}
			if m.fp != nil {
				m.fp.OnLoad(obj, idx)
			}
			regs[in.a] = obj.Elems[idx]
			pc++

		case opStore:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			base := get(regs, consts, in.a)
			if base.IsNilRef() {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), errors.New("nil dereference"))
			}
			idx := int(get(regs, consts, in.b).I)
			obj := base.Ref
			if idx < 0 || idx >= len(obj.Elems) {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("index %d out of range [0,%d)", idx, len(obj.Elems)))
			}
			v := get(regs, consts, in.c)
			if m.fp != nil && m.fp.Active() {
				m.fp.OnStore(obj, idx, v.Equal(obj.Elems[idx]))
			}
			obj.Elems[idx] = v
			pc++

		case opAllocS:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			if m.maxHeap > 0 && m.nextID >= m.maxHeap {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), m.budgetErr("heap-objects", m.maxHeap, fc, pc))
			}
			ai := &fc.allocs[in.d]
			obj := m.heap.newObj()
			elems := m.heap.newVals(len(ai.si.Fields))
			for i, f := range ai.si.Fields {
				elems[i] = ir.ZeroValue(f.Type)
			}
			*obj = ir.Object{ID: m.NewObjectID(), TypeName: ai.typeName, Struct: ai.si, Elems: elems}
			regs[in.a] = ir.RefVal(obj)
			pc++

		case opAllocA:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			if m.maxHeap > 0 && m.nextID >= m.maxHeap {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), m.budgetErr("heap-objects", m.maxHeap, fc, pc))
			}
			nv := get(regs, consts, in.b)
			if nv.I < 0 {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("negative array length %d", nv.I))
			}
			if nv.I > 64<<20 {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("array length %d too large", nv.I))
			}
			ai := &fc.allocs[in.d]
			n := int(nv.I)
			obj := m.heap.newObj()
			elems := m.heap.newVals(n)
			fill(elems, ai.zero)
			*obj = ir.Object{ID: m.NewObjectID(), TypeName: ai.typeName, Elem: ai.elem, Elems: elems}
			regs[in.a] = ir.RefVal(obj)
			pc++

		case opCall:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			n := int(in.n)
			buf := m.argScratch(n)
			pool := fc.argPool[in.b : int(in.b)+n]
			for i, o := range pool {
				buf[i] = get(regs, consts, o)
			}
			v, err := m.call(fc.calls[in.d], buf, fr)
			if err != nil {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), err)
			}
			if in.a >= 0 {
				regs[in.a] = v
			}
			pc++

		case opCallB:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			n := int(in.n)
			buf := m.argScratch(n)
			pool := fc.argPool[in.b : int(in.b)+n]
			for i, o := range pool {
				buf[i] = get(regs, consts, o)
			}
			v, err := interp.EvalBuiltin(fc.names[in.d], buf)
			if err != nil {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), err)
			}
			if in.a >= 0 {
				regs[in.a] = v
			}
			pc++

		case opIntr:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			name := fc.names[in.d]
			if m.rt == nil {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("intrinsic @%s with no runtime installed", name))
			}
			n := int(in.n)
			buf := m.argScratch(n)
			pool := fc.argPool[in.b : int(in.b)+n]
			for i, o := range pool {
				buf[i] = get(regs, consts, o)
			}
			v, err := m.rt.Intrinsic(m, fr, name, buf)
			if err != nil {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), err)
			}
			if in.a >= 0 {
				regs[in.a] = v
			}
			pc++

		case opPrint:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			if m.out != nil {
				line := m.printBuf[:0]
				pool := fc.argPool[in.b : int(in.b)+int(in.n)]
				for k, o := range pool {
					if k > 0 {
						line = append(line, ' ')
					}
					v := get(regs, consts, o)
					switch v.Kind {
					case ir.KindString:
						line = append(line, v.S...)
					case ir.KindInt:
						line = strconv.AppendInt(line, v.I, 10)
					case ir.KindFloat:
						line = strconv.AppendFloat(line, v.F, 'g', -1, 64)
					case ir.KindBool:
						if v.I != 0 {
							line = append(line, "true"...)
						} else {
							line = append(line, "false"...)
						}
					case ir.KindNil:
						line = append(line, "nil"...)
					default:
						line = append(line, v.String()...)
					}
				}
				line = append(line, '\n')
				m.printBuf = line
				m.outBytes += int64(len(line))
				if m.maxOut > 0 && m.outBytes > m.maxOut {
					return ir.Value{}, wrap(fc, fc.in1Of(pc), m.budgetErr("output-bytes", m.maxOut, fc, pc))
				}
				m.out.Write(line)
			}
			pc++

		case opGoto:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			pc = m.enter(fc, in.d)

		case opIf:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			if get(regs, consts, in.b).Bool() {
				pc = m.enter(fc, in.d)
			} else {
				pc = m.enter(fc, in.c)
			}

		case opRet:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			if in.c != 0 {
				return get(regs, consts, in.b), nil
			}
			return ir.Value{}, nil

		case opLoadBin:
			// Component 1: the load, with its own step accounting.
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			base := get(regs, consts, in.b)
			if base.IsNilRef() {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), errors.New("nil dereference"))
			}
			idx := int(get(regs, consts, in.c).I)
			obj := base.Ref
			if idx < 0 || idx >= len(obj.Elems) {
				return ir.Value{}, wrap(fc, fc.in1Of(pc), fmt.Errorf("index %d out of range [0,%d)", idx, len(obj.Elems)))
			}
			if m.fp != nil {
				m.fp.OnLoad(obj, idx)
			}
			v := obj.Elems[idx]
			regs[in.a] = v
			// Component 2: the binop.
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			ext := fc.ext[in.d : in.d+3]
			var x, y ir.Value
			switch ext[2] {
			case 0:
				x, y = v, get(regs, consts, ext[1])
			case 1:
				x, y = get(regs, consts, ext[1]), v
			default:
				x, y = v, v
			}
			if x.Kind == ir.KindInt && y.Kind == ir.KindInt {
				switch ir.BinKind(in.k) {
				case ir.Add:
					regs[ext[0]] = ir.IntVal(x.I + y.I)
					pc++
					continue
				case ir.Sub:
					regs[ext[0]] = ir.IntVal(x.I - y.I)
					pc++
					continue
				case ir.Mul:
					regs[ext[0]] = ir.IntVal(x.I * y.I)
					pc++
					continue
				}
			}
			r, err := binop(ir.BinKind(in.k), x, y)
			if err != nil {
				return ir.Value{}, wrap(fc, fc.in2Of(pc), err)
			}
			regs[ext[0]] = r
			pc++

		case opCmpBr:
			// Component 1: the comparison.
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			cx := get(regs, consts, in.b)
			cy := get(regs, consts, in.c)
			var v ir.Value
			if cx.Kind == ir.KindInt && cy.Kind == ir.KindInt {
				switch ir.BinKind(in.k) {
				case ir.Lt:
					v = ir.BoolVal(cx.I < cy.I)
				case ir.Le:
					v = ir.BoolVal(cx.I <= cy.I)
				case ir.Gt:
					v = ir.BoolVal(cx.I > cy.I)
				case ir.Ge:
					v = ir.BoolVal(cx.I >= cy.I)
				case ir.Eq:
					v = ir.BoolVal(cx.I == cy.I)
				case ir.Ne:
					v = ir.BoolVal(cx.I != cy.I)
				default:
					var err error
					v, err = binop(ir.BinKind(in.k), cx, cy)
					if err != nil {
						return ir.Value{}, wrap(fc, fc.in1Of(pc), err)
					}
				}
			} else {
				var err error
				v, err = binop(ir.BinKind(in.k), cx, cy)
				if err != nil {
					return ir.Value{}, wrap(fc, fc.in1Of(pc), err)
				}
			}
			regs[in.a] = v
			// Component 2: the If terminator.
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			ext := fc.ext[in.d : in.d+2]
			if v.Bool() {
				pc = m.enter(fc, ext[0])
			} else {
				pc = m.enter(fc, ext[1])
			}

		case opErr:
			m.steps++
			if m.steps >= m.stopAt {
				if err := m.trip(fc, pc); err != nil {
					return ir.Value{}, err
				}
			}
			if in.c == 1 {
				return ir.Value{}, fc.errs[in.d]
			}
			return ir.Value{}, wrap(fc, fc.in1Of(pc), fc.errs[in.d])
		}
	}
}

// binop evaluates a binary operator with inline int and float fast paths;
// everything else (including the error texts) defers to the interpreter's
// EvalBinOp so the two executors cannot drift.
func binop(op ir.BinKind, x, y ir.Value) (ir.Value, error) {
	if x.Kind == ir.KindInt && y.Kind == ir.KindInt {
		switch op {
		case ir.Add:
			return ir.IntVal(x.I + y.I), nil
		case ir.Sub:
			return ir.IntVal(x.I - y.I), nil
		case ir.Mul:
			return ir.IntVal(x.I * y.I), nil
		case ir.Div:
			if y.I != 0 {
				return ir.IntVal(x.I / y.I), nil
			}
		case ir.Rem:
			if y.I != 0 {
				return ir.IntVal(x.I % y.I), nil
			}
		case ir.Shl:
			return ir.IntVal(x.I << uint(y.I&63)), nil
		case ir.Shr:
			return ir.IntVal(x.I >> uint(y.I&63)), nil
		case ir.BitAnd:
			return ir.IntVal(x.I & y.I), nil
		case ir.BitOr:
			return ir.IntVal(x.I | y.I), nil
		case ir.BitXor:
			return ir.IntVal(x.I ^ y.I), nil
		case ir.Eq:
			return ir.BoolVal(x.I == y.I), nil
		case ir.Ne:
			return ir.BoolVal(x.I != y.I), nil
		case ir.Lt:
			return ir.BoolVal(x.I < y.I), nil
		case ir.Le:
			return ir.BoolVal(x.I <= y.I), nil
		case ir.Gt:
			return ir.BoolVal(x.I > y.I), nil
		case ir.Ge:
			return ir.BoolVal(x.I >= y.I), nil
		}
	} else if x.Kind == ir.KindFloat && y.Kind == ir.KindFloat {
		switch op {
		case ir.Add:
			return ir.FloatVal(x.F + y.F), nil
		case ir.Sub:
			return ir.FloatVal(x.F - y.F), nil
		case ir.Mul:
			return ir.FloatVal(x.F * y.F), nil
		case ir.Div:
			if y.F != 0 {
				return ir.FloatVal(x.F / y.F), nil
			}
		case ir.Lt:
			return ir.BoolVal(x.F < y.F), nil
		case ir.Le:
			return ir.BoolVal(x.F <= y.F), nil
		case ir.Gt:
			return ir.BoolVal(x.F > y.F), nil
		case ir.Ge:
			return ir.BoolVal(x.F >= y.F), nil
		}
	}
	return interp.EvalBinOp(op, x, y)
}

// fill sets every element of s to v with doubling copies.
func fill(s []ir.Value, v ir.Value) {
	if len(s) == 0 {
		return
	}
	s[0] = v
	for i := 1; i < len(s); i *= 2 {
		copy(s[i:], s[:i])
	}
}
