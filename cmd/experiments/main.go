// Command experiments regenerates every table and figure of the paper's
// evaluation section over the workload suites, printing each as
// paper-vs-measured rows and optionally writing the consolidated report to
// a file (the repository's EXPERIMENTS.md is produced this way).
//
// Usage:
//
//	experiments [-out EXPERIMENTS.md] [-only npb|plds]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dca/internal/bench"
	"dca/internal/workloads/plds"
)

func main() {
	out := flag.String("out", "", "also write the report to this file")
	only := flag.String("only", "", "restrict to one suite: npb or plds")
	flag.Parse()

	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs measured\n\n")
	b.WriteString("Every cell below is `paper/measured`. Detection counts come from the live\n")
	b.WriteString("analyzers over the generated workloads; speedups come from the 72-core\n")
	b.WriteString("machine model driven by interpreter profiles (see DESIGN.md §2 for the\n")
	b.WriteString("substitutions and EXPERIMENTS.md notes below for known deviations).\n\n")
	start := time.Now()

	if *only == "" || *only == "npb" {
		fmt.Fprintln(os.Stderr, "running the NPB proxy suite (10 benchmarks, ~1600 loops)...")
		suite, err := bench.RunSuite()
		if err != nil {
			fatal(err)
		}
		for _, section := range []string{
			suite.TableI(), suite.TableIII(), suite.TableIV(),
			suite.Figure6(), suite.Figure7(),
		} {
			b.WriteString("```\n" + section + "```\n\n")
			fmt.Println(section)
		}
	}
	if *only == "" || *only == "plds" {
		fmt.Fprintln(os.Stderr, "running the PLDS suite (14 workloads)...")
		var results []*bench.PLDSResult
		for _, p := range plds.Programs() {
			r, err := bench.RunPLDS(p)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
		}
		for _, section := range []string{bench.TableII(results), bench.Figure5(results)} {
			b.WriteString("```\n" + section + "```\n\n")
			fmt.Println(section)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Second))

	b.WriteString(notes)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

const notes = `## Notes on fidelity

* **Tables I and III** (detection counts) reproduce the paper cell for cell:
  the archetype mixes were solved against the published numbers, and the
  counts above are what the six reimplemented analyzers actually report for
  the generated programs. DepProf/DiscoPoP cells for DC and UA are shown as
  ` + "`—/n`" + ` because the paper's baselines did not report those rows.
* **Table II**: all fourteen PLDS loops are detected by DCA and by none of
  the five baselines. Coverage percentages are approximate — the synthetic
  data is sized to bring the key loop near the paper's coverage column.
* **Table IV**: false positives and negatives are zero by measurement, as
  in the paper. Coverage columns track the paper within a few points.
* **Figures 5-7**: speedups come from the machine model (72 cores,
  per-workload bandwidth ceilings calibrated once against the paper's DCA
  series; the same ceiling is applied to every detector, so the relative
  shape — who wins and by what factor — is measured, not assumed).
  BFS's Table II coverage (76% measured vs 99% paper) is limited by the
  synthetic graph's build phase.
* **Known deviations**: (a) EP's Idioms speedup is underestimated (paper
  ~5x from the hot inner reduction of a nest; the proxy flattens EP's
  nest, so the Idioms-only loops carry less coverage). (b) UA's measured
  DCA coverage (98%) exceeds Table IV's 86% — the paper's 13x UA speedup
  is not reachable under Amdahl at 86% coverage, so the proxy favours the
  Figure 6 speedup target over the Table IV coverage target.
`
