package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dca/internal/core"
)

// LoopRef names one loop of the analyzed program — the unit the
// coordinator routes and the registry orders. JSON tags match the server's
// wire schema.
type LoopRef struct {
	Fn    string `json:"fn"`
	Index int    `json:"index"`
}

// maxRetainedRuns bounds how many finished runs the registry keeps for
// late /runs/{id} readers before the oldest are evicted. Running runs are
// never evicted.
const maxRetainedRuns = 256

// Registry tracks asynchronous analysis runs: each run is created with its
// full source-ordered loop list up front, collects per-loop verdicts in
// whatever order workers finish them, and releases them to subscribers in
// source order — so every event stream, no matter when it attaches or how
// the analysis was sharded, sees the same sequence.
type Registry struct {
	mu    sync.Mutex
	runs  map[string]*Run
	order []string // creation order, for finished-run eviction
	seq   int
}

// NewRegistry builds an empty run registry.
func NewRegistry() *Registry {
	return &Registry{runs: make(map[string]*Run)}
}

// NewRun registers a run over the given source-ordered loop list. runKey
// is the run-level fingerprint (fingerprint.Run); its prefix makes the
// handle self-describing without leaking the whole key into logs.
func (g *Registry) NewRun(runKey string, refs []LoopRef) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	suffix := runKey
	if len(suffix) > 8 {
		suffix = suffix[:8]
	}
	r := &Run{
		id:       fmt.Sprintf("r%d-%s", g.seq, suffix),
		started:  time.Now(),
		expected: refs,
		slot:     make(map[LoopRef]int, len(refs)),
		buffered: make(map[LoopRef]core.LoopJSON),
		wake:     make(chan struct{}),
	}
	for i, ref := range refs {
		r.slot[ref] = i
	}
	g.runs[r.id] = r
	g.order = append(g.order, r.id)
	g.evictLocked()
	return r
}

// evictLocked drops the oldest finished runs beyond the retention bound.
func (g *Registry) evictLocked() {
	for len(g.runs) > maxRetainedRuns {
		evicted := false
		for i, id := range g.order {
			r := g.runs[id]
			if r == nil {
				g.order = append(g.order[:i], g.order[i+1:]...)
				evicted = true
				break
			}
			if r.Done() {
				delete(g.runs, id)
				g.order = append(g.order[:i], g.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything left is still running
		}
	}
}

// Get returns a run by ID, or nil.
func (g *Registry) Get(id string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[id]
}

// Run is one asynchronous analysis: a source-ordered loop list filled in
// by out-of-order completions. Events release as the longest completed
// prefix grows, which makes every subscriber's stream identical to the
// final report's loop order.
type Run struct {
	id      string
	started time.Time

	mu       sync.Mutex
	expected []LoopRef
	slot     map[LoopRef]int           // ref -> source-order position
	buffered map[LoopRef]core.LoopJSON // completed, not yet released
	released []core.LoopJSON           // the streamed prefix, in source order
	report   *core.ReportJSON
	err      error
	done     bool
	wake     chan struct{} // closed and replaced on every state change
}

// ID returns the run handle.
func (r *Run) ID() string { return r.id }

// Started returns the run's creation time.
func (r *Run) Started() time.Time { return r.started }

// wakeLocked signals every parked subscriber and re-arms the channel.
func (r *Run) wakeLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// Complete records one loop's verdict. Out-of-order completions buffer
// until their source-order predecessors arrive; duplicates (an at-least-
// once re-dispatch finishing twice) keep the first result and drop the
// rest, so subscribers see every loop exactly once.
func (r *Run) Complete(lj core.LoopJSON) {
	ref := LoopRef{Fn: lj.Fn, Index: lj.Index}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.slot[ref]
	if !ok || r.done {
		return // unknown loop, or a straggler after Finish
	}
	if i < len(r.released) {
		return // duplicate: already streamed, first result won
	}
	if _, dup := r.buffered[ref]; dup {
		return
	}
	r.buffered[ref] = lj
	// Release the longest completed prefix.
	for len(r.released) < len(r.expected) {
		next := r.expected[len(r.released)]
		lj, ok := r.buffered[next]
		if !ok {
			break
		}
		delete(r.buffered, next)
		r.released = append(r.released, lj)
	}
	r.wakeLocked()
}

// Finish seals the run with its merged report or error. Any loop that
// never completed (a cancelled run) stops the stream at the released
// prefix; subscribers then observe the terminal state.
func (r *Run) Finish(rep *core.ReportJSON, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.report, r.err, r.done = rep, err, true
	r.wakeLocked()
}

// Done reports whether the run has finished.
func (r *Run) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Status is a point-in-time run snapshot — the /runs/{id} payload.
type Status struct {
	ID             string  `json:"id"`
	State          string  `json:"state"` // "running", "done", "error"
	TotalLoops     int     `json:"total_loops"`
	CompletedLoops int     `json:"completed_loops"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Error          string  `json:"error,omitempty"`
	// Report is the merged final report, present once State is "done".
	Report *core.ReportJSON `json:"report,omitempty"`
}

// Status snapshots the run.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:             r.id,
		State:          "running",
		TotalLoops:     len(r.expected),
		CompletedLoops: len(r.released) + len(r.buffered),
		ElapsedSeconds: time.Since(r.started).Seconds(),
	}
	if r.done {
		if r.err != nil {
			st.State, st.Error = "error", r.err.Error()
		} else {
			st.State, st.Report = "done", r.report
		}
	}
	return st
}

// Next blocks until event i is released, the run finishes, or ctx is
// cancelled. It returns the event and ok=true; or ok=false with done=true
// when the stream has ended (i is past the final prefix or the run erred)
// and done=false when ctx was cancelled first. Subscribers iterate i from
// 0; late subscribers replay the full released prefix, so every stream
// carries every verdict exactly once, in source order.
func (r *Run) Next(ctx context.Context, i int) (ev core.LoopJSON, ok, done bool) {
	for {
		r.mu.Lock()
		if i < len(r.released) {
			ev = r.released[i]
			r.mu.Unlock()
			return ev, true, false
		}
		if r.done {
			r.mu.Unlock()
			return core.LoopJSON{}, false, true
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return core.LoopJSON{}, false, false
		}
	}
}

// Result blocks until the run finishes or ctx is cancelled, returning the
// merged report or the run's error.
func (r *Run) Result(ctx context.Context) (*core.ReportJSON, error) {
	for {
		r.mu.Lock()
		if r.done {
			rep, err := r.report, r.err
			r.mu.Unlock()
			return rep, err
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
