package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dca/internal/core"
)

func testRefs(n int) []LoopRef {
	refs := make([]LoopRef, n)
	for i := range refs {
		refs[i] = LoopRef{Fn: "f", Index: i}
	}
	return refs
}

func loopEvent(i int, verdict string) core.LoopJSON {
	return core.LoopJSON{Fn: "f", Index: i, Verdict: verdict}
}

// drain collects every event of a run's stream via the subscriber
// iterator, exactly as the /runs/{id}/events handler does.
func drain(t *testing.T, ctx context.Context, r *Run) []core.LoopJSON {
	t.Helper()
	var got []core.LoopJSON
	for i := 0; ; i++ {
		ev, ok, done := r.Next(ctx, i)
		if ok {
			got = append(got, ev)
			continue
		}
		if !done {
			t.Fatalf("subscriber cancelled at event %d", i)
		}
		return got
	}
}

// TestRunSourceOrderRelease: completions arriving in reverse order still
// stream to subscribers in source order.
func TestRunSourceOrderRelease(t *testing.T) {
	g := NewRegistry()
	r := g.NewRun("deadbeefcafe", testRefs(5))
	streamed := make(chan []core.LoopJSON, 1)
	go func() { streamed <- drain(t, context.Background(), r) }()

	for i := 4; i >= 0; i-- {
		r.Complete(loopEvent(i, "commutative"))
	}
	r.Finish(&core.ReportJSON{}, nil)

	got := <-streamed
	if len(got) != 5 {
		t.Fatalf("streamed %d events, want 5", len(got))
	}
	for i, ev := range got {
		if ev.Index != i {
			t.Fatalf("event %d has index %d; stream is not source-ordered", i, ev.Index)
		}
	}
}

// TestRunDuplicateCompletions: at-least-once re-dispatch means the same
// loop can complete twice; the first verdict wins and the stream carries
// it exactly once.
func TestRunDuplicateCompletions(t *testing.T) {
	g := NewRegistry()
	r := g.NewRun("deadbeefcafe", testRefs(3))
	r.Complete(loopEvent(1, "commutative"))
	r.Complete(loopEvent(1, "failed")) // duplicate while buffered
	r.Complete(loopEvent(0, "commutative"))
	r.Complete(loopEvent(0, "failed")) // duplicate after release
	r.Complete(loopEvent(2, "commutative"))
	r.Finish(&core.ReportJSON{}, nil)

	got := drain(t, context.Background(), r)
	if len(got) != 3 {
		t.Fatalf("streamed %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Verdict != "commutative" {
			t.Fatalf("event %d verdict %q; duplicate overwrote the first result", i, ev.Verdict)
		}
	}
	if st := r.Status(); st.CompletedLoops != 3 {
		t.Fatalf("CompletedLoops = %d, want 3", st.CompletedLoops)
	}
}

// TestRunLateSubscriber: a subscriber attaching after the run finished
// replays the full released prefix.
func TestRunLateSubscriber(t *testing.T) {
	g := NewRegistry()
	r := g.NewRun("deadbeefcafe", testRefs(4))
	for i := 0; i < 4; i++ {
		r.Complete(loopEvent(i, "commutative"))
	}
	r.Finish(&core.ReportJSON{Summary: map[string]int{"commutative": 4}}, nil)

	got := drain(t, context.Background(), r)
	if len(got) != 4 {
		t.Fatalf("late subscriber saw %d events, want 4", len(got))
	}
	st := r.Status()
	if st.State != "done" || st.Report == nil {
		t.Fatalf("status = %+v, want done with report", st)
	}
}

// TestRunSubscriberCancel: a cancelled subscriber context unblocks Next
// without ending the run.
func TestRunSubscriberCancel(t *testing.T) {
	g := NewRegistry()
	r := g.NewRun("deadbeefcafe", testRefs(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok, done := r.Next(ctx, 0); ok || done {
		t.Fatalf("Next on cancelled ctx = ok=%v done=%v, want false/false", ok, done)
	}
	if r.Done() {
		t.Fatal("subscriber cancellation finished the run")
	}
	// The run is still live: complete it normally and verify a fresh
	// subscriber sees everything.
	r.Complete(loopEvent(0, "commutative"))
	r.Complete(loopEvent(1, "commutative"))
	r.Finish(&core.ReportJSON{}, nil)
	if got := drain(t, context.Background(), r); len(got) != 2 {
		t.Fatalf("fresh subscriber saw %d events, want 2", len(got))
	}
}

// TestRunFinishWithError: an erred run reports state "error" and its
// stream ends at the released prefix.
func TestRunFinishWithError(t *testing.T) {
	g := NewRegistry()
	r := g.NewRun("deadbeefcafe", testRefs(3))
	r.Complete(loopEvent(0, "commutative"))
	r.Finish(nil, fmt.Errorf("worker exploded"))
	r.Complete(loopEvent(1, "commutative")) // straggler after Finish

	got := drain(t, context.Background(), r)
	if len(got) != 1 {
		t.Fatalf("erred run streamed %d events, want the 1 released before Finish", len(got))
	}
	st := r.Status()
	if st.State != "error" || st.Error != "worker exploded" {
		t.Fatalf("status = %+v, want error state", st)
	}
	if _, err := r.Result(context.Background()); err == nil {
		t.Fatal("Result returned nil error for an erred run")
	}
}

// TestRegistryEviction: finished runs beyond the retention bound are
// evicted oldest-first; running runs survive.
func TestRegistryEviction(t *testing.T) {
	g := NewRegistry()
	running := g.NewRun("deadbeefcafe", testRefs(1))
	var finished []*Run
	for i := 0; i < maxRetainedRuns+8; i++ {
		r := g.NewRun(fmt.Sprintf("key%08d", i), nil)
		r.Finish(&core.ReportJSON{}, nil)
		finished = append(finished, r)
	}
	if g.Get(running.ID()) == nil {
		t.Fatal("running run was evicted")
	}
	if g.Get(finished[0].ID()) != nil {
		t.Fatal("oldest finished run survived past the retention bound")
	}
	if g.Get(finished[len(finished)-1].ID()) == nil {
		t.Fatal("newest finished run was evicted")
	}
}

// TestRunResultBlocks: Result parks until Finish.
func TestRunResultBlocks(t *testing.T) {
	g := NewRegistry()
	r := g.NewRun("deadbeefcafe", testRefs(1))
	done := make(chan error, 1)
	go func() {
		_, err := r.Result(context.Background())
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("Result returned before Finish")
	case <-time.After(20 * time.Millisecond):
	}
	r.Finish(&core.ReportJSON{}, nil)
	if err := <-done; err != nil {
		t.Fatalf("Result: %v", err)
	}
}
