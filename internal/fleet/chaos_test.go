// Chaos property tests: a coordinator whose dispatch transport injects
// seeded network faults must merge a report byte-identical to a single
// healthy node's, for every fault pattern — including the pattern where
// every worker is dead and the local fallback carries the run.
package fleet_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dca/internal/chaos"
	"dca/internal/fleet"
	"dca/internal/irbuild"
	"dca/internal/obs"
)

// chaosPolicy is tuned for test wall-clock: tight backoffs, aggressive
// hedging, fast probes. Correctness must not depend on the tuning.
func chaosPolicy() fleet.Policy {
	return fleet.Policy{
		DispatchTimeout: 10 * time.Second,
		NodeRetries:     2,
		HedgeAfter:      200 * time.Millisecond,
		ProbeInterval:   50 * time.Millisecond,
		ProbeTimeout:    time.Second,
		RetryBase:       5 * time.Millisecond,
		RetryCap:        50 * time.Millisecond,
		MaxRetryAfter:   50 * time.Millisecond,
	}
}

// chaosCoordinator builds a coordinator over f's workers whose dispatches
// run through the given fault injector, with the in-process fallback
// wired. The fallback mirrors the workers' Config{Workers: 2} ceilings so
// degraded verdicts match dispatched ones.
func chaosCoordinator(f *testFleet, nc *chaos.NetChaos, trace obs.Sink) *fleet.Coordinator {
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Nodes:  f.urls,
		Client: &http.Client{Transport: nc},
		Policy: chaosPolicy(),
		Trace:  trace,
		Local:  fleet.NewLocalAnalyzer(fleet.LocalConfig{Workers: 2}),
	})
	coord.SetMetrics(f.cm)
	return coord
}

// TestFleetChaosIdentity is the property test: under every seeded fault
// pattern — each kind alone, then all kinds mixed, across seeds — the
// merged verdict table is byte-identical to a single healthy node's.
func TestFleetChaosIdentity(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	if want == "" {
		t.Fatal("reference table is empty")
	}
	single.stop()

	f := newTestFleet(t, 3)
	type pattern struct {
		name  string
		seeds []int64
		kinds []chaos.NetFault
	}
	patterns := []pattern{
		{"refuse", []int64{1}, []chaos.NetFault{chaos.NetRefuse}},
		{"latency", []int64{1}, []chaos.NetFault{chaos.NetLatency}},
		{"cut", []int64{1}, []chaos.NetFault{chaos.NetCut}},
		{"5xx", []int64{1}, []chaos.NetFault{chaos.Net5xx}},
		{"slow-body", []int64{1}, []chaos.NetFault{chaos.NetSlowBody}},
		{"all", []int64{1, 2, 3}, nil},
	}
	for _, p := range patterns {
		for _, seed := range p.seeds {
			t.Run(fmt.Sprintf("%s/seed%d", p.name, seed), func(t *testing.T) {
				nc := chaos.NewNetChaos(nil, seed, 0.35, p.kinds...)
				// Probes stay clean: the pattern under test is dispatch
				// weather, not a partitioned prober.
				nc.Only = func(r *http.Request) bool {
					return strings.HasSuffix(r.URL.Path, "/analyze")
				}
				coord := chaosCoordinator(f, nc, nil)
				prog, err := irbuild.Compile("fleet.mc", fleetSrc)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc,
					fleet.Knobs{Schedules: 1}, nil)
				if err != nil {
					t.Fatalf("analyze under %s faults (seed %d, %d injected): %v",
						p.name, seed, nc.Faults(), err)
				}
				if got := renderTable(rep); got != want {
					t.Errorf("table under %s faults diverged (seed %d, %d injected):\n--- healthy ---\n%s--- chaos ---\n%s",
						p.name, seed, nc.Faults(), want, got)
				}
			})
		}
	}
}

// TestFleetChaosAllDeadFallback: every worker is really dead — the
// coordinator must finish the whole run in-process and still render the
// identical table, with the degradation visible in metrics and trace.
func TestFleetChaosAllDeadFallback(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	single.stop()

	f := newTestFleet(t, 3)
	f.stop()
	time.Sleep(10 * time.Millisecond) // let the listeners close

	trace := &obs.Collector{}
	coord := chaosCoordinator(f, chaos.NewNetChaos(nil, 1, 0), trace)
	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc,
		fleet.Knobs{Schedules: 1}, nil)
	if err != nil {
		t.Fatalf("analyze with all workers dead: %v", err)
	}
	if got := renderTable(rep); got != want {
		t.Errorf("fallback table diverged:\n--- healthy ---\n%s--- fallback ---\n%s", want, got)
	}
	if f.cm.FallbackRuns.Value() == 0 {
		t.Error("no fallback runs counted")
	}
	if got := f.cm.FallbackLoops.Value(); got != uint64(len(rep.Loops)) {
		t.Errorf("fallback loops = %d, want %d", got, len(rep.Loops))
	}
	sawFallback := false
	for _, ev := range trace.Events() {
		if ev.Stage == obs.StageFleet && ev.Outcome == obs.OutcomeFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("no StageFleet fallback event traced")
	}
}

// TestFleetChaosFallbackMidRun: the fleet dies while faults are flying —
// refusal-only chaos at high probability kills every node within a few
// rounds, so part of the program is served by workers and the rest by the
// local fallback, and the merged table still matches.
func TestFleetChaosFallbackMidRun(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	single.stop()

	f := newTestFleet(t, 3)
	nc := chaos.NewNetChaos(nil, 7, 0.9, chaos.NetRefuse)
	nc.Only = func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/analyze") }
	// Probes must not resurrect nodes faster than refusal kills them, or
	// the run never degrades; an injector on probes too keeps them down.
	probeChaos := chaos.NewNetChaos(nil, 8, 1, chaos.NetRefuse)
	probeChaos.Only = func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/healthz") }
	nc.Inner = probeChaos
	coord := chaosCoordinator(f, nc, nil)

	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc,
		fleet.Knobs{Schedules: 1}, nil)
	if err != nil {
		t.Fatalf("analyze under refusal storm: %v", err)
	}
	if got := renderTable(rep); got != want {
		t.Errorf("refusal-storm table diverged:\n--- healthy ---\n%s--- chaos ---\n%s", want, got)
	}
}
