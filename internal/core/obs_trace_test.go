package core_test

import (
	"sync"
	"testing"

	"dca/internal/core"
	"dca/internal/irbuild"
	"dca/internal/obs"
)

// mapCache is a minimal VerdictCache for trace tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapCache() *mapCache { return &mapCache{m: map[string][]byte{}} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *mapCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

// loopEvents groups a collector's events by loop ID, preserving order.
func loopEvents(events []obs.Event) map[string][]obs.Event {
	byLoop := map[string][]obs.Event{}
	for _, ev := range events {
		byLoop[ev.LoopID] = append(byLoop[ev.LoopID], ev)
	}
	return byLoop
}

// TestTraceEventLifecycle: one analysis emits a reference event and, per
// loop, static → cache miss → golden → one replay per schedule → verdict,
// in that order, with the verdict events agreeing with the report.
func TestTraceEventLifecycle(t *testing.T) {
	prog, err := irbuild.Compile("trace.mc", `
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) {
		a[i] = i * 2;
	}
	var s int = 0;
	for (var i int = 0; i < 8; i++) {
		s = s + a[i];
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	rep, err := core.Analyze(prog, core.Options{Trace: col, Cache: newMapCache()})
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 || events[0].Stage != obs.StageReference || events[0].Outcome != obs.OutcomeOK {
		t.Fatalf("first event must be an ok reference run, got %+v", events[:1])
	}

	byLoop := loopEvents(events[1:])
	for _, lr := range rep.Loops {
		evs := byLoop[lr.ID]
		stages := make([]string, len(evs))
		for i, ev := range evs {
			stages[i] = ev.Stage
		}
		// static, cache miss, golden, one replay per schedule, verdict.
		wantLen := 4 + lr.SchedulesTested
		if len(evs) != wantLen {
			t.Fatalf("loop %s: %d events %v, want %d", lr.ID, len(evs), stages, wantLen)
		}
		if evs[0].Stage != obs.StageStatic {
			t.Errorf("loop %s: first event %q, want static", lr.ID, evs[0].Stage)
		}
		if evs[1].Stage != obs.StageCache || evs[1].Outcome != obs.OutcomeMiss {
			t.Errorf("loop %s: second event %+v, want cache miss", lr.ID, evs[1])
		}
		if evs[2].Stage != obs.StageGolden || evs[2].DurationMS <= 0 {
			t.Errorf("loop %s: third event %+v, want timed golden run", lr.ID, evs[2])
		}
		for i := 0; i < lr.SchedulesTested; i++ {
			ev := evs[3+i]
			if ev.Stage != obs.StageReplay || ev.Schedule == "" {
				t.Errorf("loop %s: event %d = %+v, want named replay", lr.ID, 3+i, ev)
			}
		}
		last := evs[len(evs)-1]
		if last.Stage != obs.StageVerdict || last.Verdict != lr.Verdict.String() || last.Provenance != lr.Provenance {
			t.Errorf("loop %s: verdict event %+v disagrees with report verdict %s (%s)", lr.ID, last, lr.Verdict, lr.Provenance)
		}
	}
}

// TestTraceCacheHit: a warm second analysis emits cache-hit events and
// cached-provenance verdicts with no golden or replay executions.
func TestTraceCacheHit(t *testing.T) {
	prog, err := irbuild.Compile("trace.mc", `
func main() {
	var s int = 0;
	for (var i int = 0; i < 8; i++) {
		s = s + i;
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	vc := newMapCache()
	if _, err := core.Analyze(prog, core.Options{Cache: vc}); err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	rep, err := core.Analyze(prog, core.Options{Trace: col, Cache: vc})
	if err != nil {
		t.Fatal(err)
	}
	var hits, runs int
	for _, ev := range col.Events() {
		switch ev.Stage {
		case obs.StageCache:
			if ev.Outcome == obs.OutcomeHit {
				hits++
			}
		case obs.StageGolden, obs.StageReplay:
			runs++
		case obs.StageVerdict:
			if ev.Provenance != core.ProvenanceCached {
				t.Errorf("warm verdict event provenance %q, want cached", ev.Provenance)
			}
		}
	}
	if hits != len(rep.Loops) {
		t.Errorf("cache hit events = %d, want %d", hits, len(rep.Loops))
	}
	if runs != 0 {
		t.Errorf("warm analysis emitted %d golden/replay events, want 0", runs)
	}
}
