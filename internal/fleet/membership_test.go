package fleet

import (
	"testing"
	"time"
)

// zeroJitter makes membership and backoff schedules exact for assertions.
func zeroJitter(int64) int64 { return 0 }

func TestMembershipLifecycle(t *testing.T) {
	m := newMembership([]string{"a", "b"}, time.Second, 8*time.Second, zeroJitter)

	if got := m.Counts(); got[NodeLive] != 2 {
		t.Fatalf("fresh membership: %v, want 2 live", got)
	}
	if len(m.Excluded()) != 0 {
		t.Fatalf("fresh membership excludes %v", m.Excluded())
	}

	// live → suspect, exactly once.
	if !m.Suspect("a") {
		t.Fatal("first Suspect(a) reported no transition")
	}
	if m.Suspect("a") {
		t.Fatal("second Suspect(a) reported a transition")
	}
	if got := m.State("a"); got != NodeSuspect {
		t.Fatalf("State(a) = %v, want suspect", got)
	}
	if ex := m.Excluded(); !ex["a"] || ex["b"] {
		t.Fatalf("Excluded() = %v, want only a", ex)
	}

	// The suspect node is not due before its backoff elapses.
	if due := m.due(time.Now()); len(due) != 0 {
		t.Fatalf("due before backoff: %v", due)
	}
	due := m.due(time.Now().Add(time.Second))
	if len(due) != 1 || due[0] != "a" {
		t.Fatalf("due after backoff: %v, want [a]", due)
	}
	if got := m.State("a"); got != NodeProbing {
		t.Fatalf("State(a) after due = %v, want probing", got)
	}
	// A probing node is never handed out twice.
	if due := m.due(time.Now().Add(time.Hour)); len(due) != 0 {
		t.Fatalf("probing node re-listed as due: %v", due)
	}

	// probing → dead on a failed probe, with the backoff doubling.
	m.probeFailed("a")
	if got := m.State("a"); got != NodeDead {
		t.Fatalf("State(a) after failed probe = %v, want dead", got)
	}
	if due := m.due(time.Now().Add(1500 * time.Millisecond)); len(due) != 0 {
		t.Fatalf("dead node due before doubled backoff: %v", due)
	}
	if due := m.due(time.Now().Add(2 * time.Second)); len(due) != 1 {
		t.Fatalf("dead node not due after doubled backoff: %v", due)
	}

	// probing → live on success, with a counted transition and reset backoff.
	if !m.MarkLive("a") {
		t.Fatal("MarkLive(a) reported no transition")
	}
	if m.MarkLive("a") {
		t.Fatal("MarkLive(a) on a live node reported a transition")
	}
	if got := m.Counts(); got[NodeLive] != 2 {
		t.Fatalf("after rejoin: %v, want 2 live", got)
	}
}

func TestMembershipBackoffCap(t *testing.T) {
	m := newMembership([]string{"a"}, time.Second, 4*time.Second, zeroJitter)
	m.Suspect("a")
	for i := 0; i < 10; i++ {
		if due := m.due(time.Now().Add(time.Hour)); len(due) != 1 {
			t.Fatalf("round %d: node not due: %v", i, due)
		}
		m.probeFailed("a")
	}
	if h := m.nodes["a"]; h.backoff != 4*time.Second {
		t.Fatalf("backoff = %v, want capped at 4s", h.backoff)
	}
}

func TestMembershipUnknownNode(t *testing.T) {
	m := newMembership([]string{"a"}, time.Second, time.Second, zeroJitter)
	if got := m.State("ghost"); got != NodeDead {
		t.Fatalf("State(ghost) = %v, want dead", got)
	}
	if m.Suspect("ghost") || m.MarkLive("ghost") {
		t.Fatal("unknown node transitioned")
	}
}

func TestPolicyBackoffStepBounds(t *testing.T) {
	p := Policy{RetryBase: 10 * time.Millisecond, RetryCap: 80 * time.Millisecond}.withDefaults()

	// Zero jitter pins the step to the base.
	if got := p.backoffStep(zeroJitter, 0); got != p.RetryBase {
		t.Fatalf("first step = %v, want base %v", got, p.RetryBase)
	}
	// Max jitter caps out.
	maxJitter := func(n int64) int64 { return n - 1 }
	prev := p.RetryBase
	for i := 0; i < 6; i++ {
		prev = p.backoffStep(maxJitter, prev)
		if prev < p.RetryBase || prev > p.RetryCap {
			t.Fatalf("step %d = %v, outside [%v, %v]", i, prev, p.RetryBase, p.RetryCap)
		}
	}
	if prev != p.RetryCap {
		t.Fatalf("max-jitter steps converged to %v, want cap %v", prev, p.RetryCap)
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.NodeRetries != 1 {
		t.Errorf("NodeRetries = %d, want 1", p.NodeRetries)
	}
	if p.ProbeInterval != time.Second || p.ProbeTimeout != 2*time.Second {
		t.Errorf("probe defaults = %v / %v", p.ProbeInterval, p.ProbeTimeout)
	}
	if (Policy{NodeRetries: -1}).withDefaults().NodeRetries != 0 {
		t.Error("negative NodeRetries should disable retries")
	}
}
