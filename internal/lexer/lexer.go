// Package lexer turns MiniC source text into a stream of tokens.
package lexer

import (
	"dca/internal/source"
	"dca/internal/token"
)

// Lexer scans a source file.
type Lexer struct {
	file  *source.File
	src   string
	pos   int
	diags *source.DiagList
}

// New creates a Lexer over the given file, reporting errors into diags.
func New(file *source.File, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: file.Text, diags: diags}
}

// Scan returns every token in the file, ending with EOF.
func (l *Lexer) Scan() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(off int, format string, args ...any) {
	l.diags.Add(l.file.Name, l.file.PosFor(off), format, args...)
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos
			l.pos += 2
			closed := false
			for l.pos+1 < len(l.src) {
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					closed = true
					break
				}
				l.pos++
			}
			if !closed {
				l.pos = len(l.src)
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	start := l.pos
	pos := l.file.PosFor(start)
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.src[l.pos]
	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Text: text, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
	case isDigit(c):
		return l.scanNumber(start, pos)
	case c == '"':
		return l.scanString(start, pos)
	}
	// Operators.
	two := func(k token.Kind) token.Token {
		l.pos += 2
		return token.Token{Kind: k, Text: l.src[start : start+2], Pos: pos}
	}
	one := func(k token.Kind) token.Token {
		l.pos++
		return token.Token{Kind: k, Text: l.src[start : start+1], Pos: pos}
	}
	n := l.peek2()
	switch c {
	case '+':
		if n == '+' {
			return two(token.PLUSPLUS)
		}
		if n == '=' {
			return two(token.PLUSEQ)
		}
		return one(token.PLUS)
	case '-':
		if n == '-' {
			return two(token.MINUSMINUS)
		}
		if n == '=' {
			return two(token.MINUSEQ)
		}
		if n == '>' {
			return two(token.ARROW)
		}
		return one(token.MINUS)
	case '*':
		if n == '=' {
			return two(token.STAREQ)
		}
		return one(token.STAR)
	case '/':
		if n == '=' {
			return two(token.SLASHEQ)
		}
		return one(token.SLASH)
	case '%':
		if n == '=' {
			return two(token.PERCENTEQ)
		}
		return one(token.PERCENT)
	case '=':
		if n == '=' {
			return two(token.EQ)
		}
		return one(token.ASSIGN)
	case '!':
		if n == '=' {
			return two(token.NEQ)
		}
		return one(token.NOT)
	case '<':
		if n == '=' {
			return two(token.LEQ)
		}
		if n == '<' {
			return two(token.SHL)
		}
		return one(token.LT)
	case '>':
		if n == '=' {
			return two(token.GEQ)
		}
		if n == '>' {
			return two(token.SHR)
		}
		return one(token.GT)
	case '&':
		if n == '&' {
			return two(token.ANDAND)
		}
		return one(token.AMP)
	case '|':
		if n == '|' {
			return two(token.OROR)
		}
		return one(token.PIPE)
	case '^':
		return one(token.CARET)
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '{':
		return one(token.LBRACE)
	case '}':
		return one(token.RBRACE)
	case '[':
		return one(token.LBRACKET)
	case ']':
		return one(token.RBRACKET)
	case ',':
		return one(token.COMMA)
	case ';':
		return one(token.SEMICOLON)
	case '.':
		return one(token.DOT)
	case ':':
		return one(token.COLON)
	}
	l.pos++
	l.errorf(start, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Text: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(start int, pos source.Pos) token.Token {
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		save := l.pos
		l.pos++
		if c := l.peek(); c == '+' || c == '-' {
			l.pos++
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	kind := token.INT
	if isFloat {
		kind = token.FLOAT
	}
	return token.Token{Kind: kind, Text: l.src[start:l.pos], Pos: pos}
}

func (l *Lexer) scanString(start int, pos source.Pos) token.Token {
	l.pos++ // opening quote
	var buf []byte
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return token.Token{Kind: token.STRING, Text: string(buf), Pos: pos}
		}
		if c == '\n' {
			break
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\':
				buf = append(buf, '\\')
			case '"':
				buf = append(buf, '"')
			default:
				l.errorf(l.pos, "unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
			continue
		}
		buf = append(buf, c)
		l.pos++
	}
	l.errorf(start, "unterminated string literal")
	return token.Token{Kind: token.ILLEGAL, Text: string(buf), Pos: pos}
}
