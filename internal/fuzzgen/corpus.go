package fuzzgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry is one minimized counterexample in the regression corpus: the
// disagreement the differential harness found, the shrunk program spec
// that still reproduces it, and everything needed to re-run it — the
// originating seeds and a one-line repro command. Entries are written by
// the campaign after minimization and replayed by the corpus regression
// test on every ordinary `go test` run.
type Entry struct {
	// Kind is the disagreement class: "soundness" (DCA said commutative on
	// a non-commutative label), "label" (DCA produced divergence evidence
	// on a commutative label — a generator or analyzer bug either way), or
	// "parallel-divergence" (goroutine executor output != sequential).
	Kind string `json:"kind"`
	// Fn/Loop locate the disagreeing loop in the minimized program.
	Fn   string `json:"fn"`
	Loop int    `json:"loop"`
	// Label and Verdict are the two sides of the disagreement.
	Label   string `json:"label"`
	Verdict string `json:"verdict"`
	// Detail is the harness's human-readable account.
	Detail string `json:"detail,omitempty"`
	// Seed generated the original (pre-minimization) program; CampaignSeed
	// is the campaign it came from. Repro regenerates and re-checks the
	// original with one command.
	Seed         int64  `json:"seed"`
	CampaignSeed int64  `json:"campaign_seed"`
	Repro        string `json:"repro"`
	// Fingerprint is the minimized loop's structural fingerprint
	// (internal/fingerprint), the corpus dedup key: repeated campaigns
	// finding isomorphic counterexamples collapse into one entry.
	Fingerprint string `json:"fingerprint"`
	// Spec is the minimized program; Source is its rendering, stored so a
	// human can read the counterexample without running the generator.
	Spec   *Program `json:"spec"`
	Source string   `json:"source"`
}

// WriteEntry persists a counterexample into the corpus directory, keyed
// and deduplicated by loop fingerprint. It reports dup=true (and writes
// nothing) when an entry with the same fingerprint already exists —
// repeated campaigns must not accumulate isomorphic counterexamples.
func WriteEntry(dir string, e *Entry) (path string, dup bool, err error) {
	if e.Fingerprint == "" {
		return "", false, fmt.Errorf("fuzzgen: corpus entry needs a fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", false, err
	}
	existing, err := LoadDir(dir)
	if err != nil {
		return "", false, err
	}
	for _, old := range existing {
		if old.Fingerprint == e.Fingerprint {
			return "", true, nil
		}
	}
	name := fmt.Sprintf("%s-%s.json", e.Kind, short(e.Fingerprint))
	path = filepath.Join(dir, name)
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", false, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", false, err
	}
	return path, false, nil
}

// LoadDir reads every corpus entry under dir, sorted by file name for
// deterministic replay order. A missing directory is an empty corpus, not
// an error.
func LoadDir(dir string) ([]*Entry, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Entry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return nil, err
		}
		e := &Entry{}
		if err := json.Unmarshal(data, e); err != nil {
			return nil, fmt.Errorf("fuzzgen: corpus entry %s: %w", de.Name(), err)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}

// short bounds a fingerprint for use in a file name.
func short(fp string) string {
	if len(fp) > 16 {
		return fp[:16]
	}
	return fp
}
