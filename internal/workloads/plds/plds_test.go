package plds_test

import (
	"testing"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/discopop"
	"dca/internal/icc"
	"dca/internal/idioms"
	"dca/internal/polly"
	"dca/internal/workloads/plds"
)

// TestTableII verifies the paper's central PLDS claim for every workload:
// DCA detects the key loop as commutative while all five baseline
// techniques fail to report it parallelizable.
func TestTableII(t *testing.T) {
	for _, p := range plds.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := core.AnalyzeLoop(prog, p.KeyFn, p.KeyLoop, core.Options{
				Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}, dcart.Random{Seed: 2}},
			})
			if err != nil {
				t.Fatalf("dca: %v", err)
			}
			if !res.Verdict.IsParallelizable() {
				t.Errorf("DCA verdict = %s (%s), want commutative", res.Verdict, res.Reason)
			}

			dp, err := depprof.Analyze(prog, depprof.DefaultPolicy(), 0)
			if err != nil {
				t.Fatalf("depprof: %v", err)
			}
			if v := dp.Verdict(p.KeyFn, p.KeyLoop); v == nil || v.Parallel {
				t.Errorf("dependence profiling must fail on %s/L%d, got %+v", p.KeyFn, p.KeyLoop, v)
			}
			dpp, err := discopop.Analyze(prog, 0)
			if err != nil {
				t.Fatalf("discopop: %v", err)
			}
			if v := dpp.Verdict(p.KeyFn, p.KeyLoop); v == nil || v.Parallel {
				t.Errorf("DiscoPoP must fail, got %+v", v)
			}
			if v := idioms.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v == nil || v.Parallel {
				t.Errorf("Idioms must fail, got %+v", v)
			}
			if v := polly.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v == nil || v.Parallel {
				t.Errorf("Polly must fail, got %+v", v)
			}
			if v := icc.Analyze(prog).Verdict(p.KeyFn, p.KeyLoop); v == nil || v.Parallel {
				t.Errorf("ICC must fail, got %+v", v)
			}
		})
	}
}

// TestMCFLatentDependence reproduces the paper's §V-B2 discussion: the mcf
// loop is commutative under the test/ref workloads because the
// cross-iteration dependence is never exercised, and DCA detects the
// violation as soon as an input exercises it.
func TestMCFLatentDependence(t *testing.T) {
	clean := plds.MCF(false)
	prog, err := clean.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeLoop(prog, clean.KeyFn, clean.KeyLoop, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.IsParallelizable() {
		t.Errorf("unexercised latent dependence: verdict = %s (%s), want commutative", res.Verdict, res.Reason)
	}

	dirty := plds.MCF(true)
	prog2, err := dirty.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.AnalyzeLoop(prog2, dirty.KeyFn, dirty.KeyLoop, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != core.NonCommutative {
		t.Errorf("exercised dependence: verdict = %s (%s), want non-commutative", res2.Verdict, res2.Reason)
	}
}

// TestMetadataComplete checks Table II bookkeeping.
func TestMetadataComplete(t *testing.T) {
	ps := plds.Programs()
	if len(ps) != 14 {
		t.Fatalf("got %d programs, want 14 (Table II rows)", len(ps))
	}
	fig5 := 0
	for _, p := range ps {
		if p.Name == "" || p.Origin == "" || p.Function == "" || p.Technique == "" {
			t.Errorf("%+v missing metadata", p.Name)
		}
		if p.CoveragePct <= 0 || p.CoveragePct > 100 {
			t.Errorf("%s: bad coverage %d", p.Name, p.CoveragePct)
		}
		if p.Fig5 {
			fig5++
			if p.Fig5Target <= 0 || p.Cap <= 0 {
				t.Errorf("%s: Fig5 program missing targets", p.Name)
			}
		}
	}
	if fig5 != 7 {
		t.Errorf("Fig5 programs = %d, want 7", fig5)
	}
	if plds.ByName("BFS") == nil || plds.ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}
