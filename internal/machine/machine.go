// Package machine is the multicore execution-time model used to regenerate
// the paper's speedup figures. We do not have the authors' 72-core Xeon
// Gold 6154, so wall-clock ratios are derived from measured interpreter
// profiles instead: the dynamic instruction count of each loop (including
// callees) is the work, parallel loops execute their iterations over P
// cores list-scheduled in chunks, every parallel invocation pays a
// fork/join overhead, and each workload carries a memory-bandwidth ceiling
// that caps its effective core count (NPB class B on a 72-core node is
// bandwidth-bound for most kernels; EP is the compute-bound exception).
//
// The model deliberately uses only quantities the rest of the repository
// measures (steps, iterations, invocations, nesting), so "who wins and by
// roughly what factor" is decided by which loops a detector finds — not by
// per-tool tuning.
package machine

import (
	"sort"

	"dca/internal/depprof"
)

// Config describes the modelled host.
type Config struct {
	// Cores is the machine's core count.
	Cores int
	// ForkJoinSteps is the per-invocation cost (in interpreter steps) of
	// spawning and joining a parallel region.
	ForkJoinSteps float64
	// PerIterSteps is the per-iteration scheduling overhead.
	PerIterSteps float64
	// BandwidthCap bounds the effective core count of memory-bound
	// workloads (0 = uncapped). It is a property of the workload on the
	// host, applied identically to every detector.
	BandwidthCap float64
}

// Xeon72 models the paper's evaluation host for a given workload bandwidth
// ceiling. The overhead constants are expressed in interpreter steps and
// scaled to the proxy workloads' dynamic sizes (1e5-ish steps per program,
// against ~1e11 instructions for NPB class B): fork/join penalizes
// low-trip-count regions without drowning hot ones.
func Xeon72(bandwidthCap float64) Config {
	return Config{Cores: 72, ForkJoinSteps: 16, PerIterSteps: 0.25, BandwidthCap: bandwidthCap}
}

// Speedup estimates the whole-program speedup when the given loops run in
// parallel. The selected loops must be dynamically disjoint (use Select).
func Speedup(cfg Config, prof *depprof.Profile, selected []depprof.LoopKey) float64 {
	total := float64(prof.Steps)
	if total == 0 {
		return 1
	}
	p := float64(cfg.Cores)
	if cfg.BandwidthCap > 0 && cfg.BandwidthCap < p {
		p = cfg.BandwidthCap
	}
	if p < 1 {
		p = 1
	}
	tpar := total
	for _, key := range selected {
		lp := prof.Loops[key]
		steps := float64(prof.LoopSteps[key])
		if lp == nil || steps == 0 || lp.Iterations == 0 {
			continue
		}
		// LoopProfile.Iterations counts header entries; each invocation has
		// one extra entry for the exit check, so subtract it to get body
		// iterations.
		iters := float64(lp.Iterations - int64(lp.Invocations))
		inv := float64(lp.Invocations)
		if iters <= 0 || inv <= 0 {
			continue
		}
		// Average iterations per invocation bound the usable parallelism of
		// each region: a 4-iteration loop cannot use 72 cores.
		perInv := iters / inv
		pEff := p
		if perInv < pEff {
			pEff = perInv
		}
		if pEff < 1 {
			pEff = 1
		}
		parTime := steps/pEff + iters*cfg.PerIterSteps/pEff + inv*cfg.ForkJoinSteps
		if parTime >= steps {
			continue // unprofitable: the code generator keeps it sequential
		}
		tpar += parTime - steps
	}
	if tpar <= 0 {
		tpar = 1
	}
	return total / tpar
}

// Select picks the loops to parallelize from a detected set: outermost
// first (by observed dynamic nesting), largest coverage first, skipping
// loops whose share of execution falls below minCoverage (the expert
// profitability filter the paper applies) and loops nested inside an
// already-selected loop.
func Select(prof *depprof.Profile, detected []depprof.LoopKey, minCoverage float64) []depprof.LoopKey {
	sorted := append([]depprof.LoopKey(nil), detected...)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := prof.LoopSteps[sorted[i]], prof.LoopSteps[sorted[j]]
		if si != sj {
			return si > sj
		}
		if sorted[i].Fn != sorted[j].Fn {
			return sorted[i].Fn < sorted[j].Fn
		}
		return sorted[i].Index < sorted[j].Index
	})
	total := float64(prof.Steps)
	var out []depprof.LoopKey
	for _, key := range sorted {
		if total > 0 && float64(prof.LoopSteps[key])/total < minCoverage {
			continue
		}
		conflict := false
		for _, sel := range out {
			if prof.Contains[sel][key] || prof.Contains[key][sel] {
				conflict = true
				break
			}
		}
		if !conflict {
			out = append(out, key)
		}
	}
	return out
}

// Coverage returns the fraction of total execution spent inside the given
// (disjoint) loops.
func Coverage(prof *depprof.Profile, selected []depprof.LoopKey) float64 {
	if prof.Steps == 0 {
		return 0
	}
	var sum int64
	for _, key := range selected {
		sum += prof.LoopSteps[key]
	}
	c := float64(sum) / float64(prof.Steps)
	if c > 1 {
		c = 1
	}
	return c
}

// benefit estimates the steps saved by parallelizing one loop (0 when
// unprofitable), mirroring Speedup's per-loop model.
func benefit(cfg Config, prof *depprof.Profile, key depprof.LoopKey) float64 {
	lp := prof.Loops[key]
	steps := float64(prof.LoopSteps[key])
	if lp == nil || steps == 0 {
		return 0
	}
	iters := float64(lp.Iterations - int64(lp.Invocations))
	inv := float64(lp.Invocations)
	if iters <= 0 || inv <= 0 {
		return 0
	}
	p := float64(cfg.Cores)
	if cfg.BandwidthCap > 0 && cfg.BandwidthCap < p {
		p = cfg.BandwidthCap
	}
	if perInv := iters / inv; perInv < p {
		p = perInv
	}
	if p < 1 {
		p = 1
	}
	parTime := steps/p + iters*cfg.PerIterSteps/p + inv*cfg.ForkJoinSteps
	if parTime >= steps {
		return 0
	}
	return steps - parTime
}

// SelectBest chooses the parallel loops like Select, but resolves nesting
// by estimated benefit: an outer loop with few iterations per invocation
// (say a handful of repeated searches) loses to the wide loops it
// contains. This mirrors the profitability decisions of the expert NPB
// parallelization the paper borrows.
func SelectBest(cfg Config, prof *depprof.Profile, detected []depprof.LoopKey, minCoverage float64) []depprof.LoopKey {
	total := float64(prof.Steps)
	cands := map[depprof.LoopKey]bool{}
	for _, k := range detected {
		if total > 0 && float64(prof.LoopSteps[k])/total < minCoverage {
			continue
		}
		cands[k] = true
	}
	// Parent = the smallest candidate strictly containing the loop.
	parent := map[depprof.LoopKey]*depprof.LoopKey{}
	children := map[depprof.LoopKey][]depprof.LoopKey{}
	for k := range cands {
		var best *depprof.LoopKey
		for a := range cands {
			if a == k || !prof.Contains[a][k] {
				continue
			}
			if best == nil || prof.LoopSteps[a] < prof.LoopSteps[*best] {
				a := a
				best = &a
			}
		}
		parent[k] = best
		if best != nil {
			children[*best] = append(children[*best], k)
		}
	}
	var resolve func(k depprof.LoopKey) (float64, []depprof.LoopKey)
	resolve = func(k depprof.LoopKey) (float64, []depprof.LoopKey) {
		var kidB float64
		var kidKeys []depprof.LoopKey
		kids := append([]depprof.LoopKey(nil), children[k]...)
		sort.Slice(kids, func(i, j int) bool { return less(kids[i], kids[j]) })
		for _, c := range kids {
			b, ks := resolve(c)
			kidB += b
			kidKeys = append(kidKeys, ks...)
		}
		own := benefit(cfg, prof, k)
		if own >= kidB {
			return own, []depprof.LoopKey{k}
		}
		return kidB, kidKeys
	}
	var roots []depprof.LoopKey
	for k := range cands {
		if parent[k] == nil {
			roots = append(roots, k)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return less(roots[i], roots[j]) })
	var out []depprof.LoopKey
	for _, r := range roots {
		_, ks := resolve(r)
		out = append(out, ks...)
	}
	return out
}

func less(a, b depprof.LoopKey) bool {
	if a.Fn != b.Fn {
		return a.Fn < b.Fn
	}
	return a.Index < b.Index
}
