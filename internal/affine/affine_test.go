package affine_test

import (
	"testing"

	"dca/internal/affine"
	"dca/internal/cfg"
	"dca/internal/irbuild"
)

func envOf(t *testing.T, src, fn string) (*affine.Env, []*cfg.Loop) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	env := affine.NewEnv(prog.Func(fn))
	return env, env.Loops
}

func TestLoopInfoConstTrip(t *testing.T) {
	env, loops := envOf(t, `func main() { for (var i int = 0; i < 17; i++) { } }`, "main")
	info := env.Info[loops[0]]
	if !info.OK || info.Step != 1 || info.Trip != 17 {
		t.Errorf("info = %+v (%s)", info, info.Why)
	}
}

func TestLoopInfoStrides(t *testing.T) {
	cases := []struct {
		src  string
		trip int64
	}{
		{`func main() { for (var i int = 0; i < 10; i += 3) { } }`, 4},
		{`func main() { for (var i int = 10; i > 0; i--) { } }`, 10},
		{`func main() { for (var i int = 0; i <= 10; i += 2) { } }`, 6},
		{`func main() { for (var i int = 10; i >= 1; i -= 2) { } }`, 5},
	}
	for k, c := range cases {
		env, loops := envOf(t, c.src, "main")
		info := env.Info[loops[0]]
		if !info.OK || info.Trip != c.trip {
			t.Errorf("case %d: trip = %d (ok=%v %s), want %d", k, info.Trip, info.OK, info.Why, c.trip)
		}
	}
}

func TestSymbolicBound(t *testing.T) {
	env, loops := envOf(t, `
func f(n int) {
	for (var i int = 0; i < n; i++) { }
}
func main() { f(3); }`, "f")
	info := env.Info[loops[0]]
	if !info.OK || info.Trip != -1 {
		t.Errorf("symbolic bound: %+v", info)
	}
}

func TestNonAffineLoopRejected(t *testing.T) {
	env, loops := envOf(t, `
struct N { next *N; }
func main() {
	var p *N = nil;
	while (p != nil) { p = p->next; }
}`, "main")
	if env.Info[loops[0]].OK {
		t.Error("pointer-chase loop must not be affine")
	}
}

func TestSubscriptExtraction(t *testing.T) {
	env, loops := envOf(t, `
func main() {
	var a []int = new [100]int;
	for (var i int = 0; i < 10; i++) {
		a[2*i + 3] = i;
		a[i << 2] = i;
	}
	print(a[0]);
}`, "main")
	accs := env.Accesses(loops[0])
	var stores []affine.Access
	for _, a := range accs {
		if a.IsWrite {
			stores = append(stores, a)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("stores = %d", len(stores))
	}
	iv := env.Info[loops[0]].IV
	if c := stores[0].Sub.Coeff(iv); c != 2 || stores[0].Sub.Const != 3 {
		t.Errorf("subscript 1 = %s", stores[0].Sub)
	}
	if c := stores[1].Sub.Coeff(iv); c != 4 {
		t.Errorf("shift subscript coeff = %d", c)
	}
}

func TestIndirectSubscriptNotAffine(t *testing.T) {
	env, loops := envOf(t, `
func main() {
	var b []int = new [10]int;
	var a []int = new [10]int;
	for (var i int = 0; i < 10; i++) { a[b[i]] = i; }
	print(a[0]);
}`, "main")
	found := false
	for _, a := range env.Accesses(loops[0]) {
		if a.IsWrite && a.SubErr != nil {
			found = true
		}
	}
	if !found {
		t.Error("indirect store subscript must be non-affine")
	}
}

func TestCarriedTests(t *testing.T) {
	// Strong SIV: a[i] vs a[i-1] → carried; a[2i] vs a[2i+1] → independent.
	env, loops := envOf(t, `
func main() {
	var a []int = new [100]int;
	for (var i int = 1; i < 40; i++) {
		a[i] = a[i-1];
		a[2*i] = a[2*i+1];
	}
	print(a[0]);
}`, "main")
	loop := loops[0]
	accs := env.Accesses(loop)
	// accs order: load a[i-1], store a[i], load a[2i+1], store a[2i]
	if len(accs) != 4 {
		t.Fatalf("accs = %d", len(accs))
	}
	loadIm1, storeI, load2ip1, store2i := accs[0], accs[1], accs[2], accs[3]
	if !env.Carried(storeI, loadIm1, loop) {
		t.Error("a[i] vs a[i-1] must be carried")
	}
	if env.Carried(store2i, load2ip1, loop) {
		t.Error("a[2i] vs a[2i+1] must be independent")
	}
	if env.Carried(storeI, storeI, loop) {
		t.Error("a[i] with itself: injective, no carried WAW")
	}
}

func TestZIVTest(t *testing.T) {
	env, loops := envOf(t, `
func main() {
	var a []int = new [10]int;
	for (var i int = 0; i < 5; i++) {
		a[0] = a[7];
	}
	print(a[0]);
}`, "main")
	loop := loops[0]
	accs := env.Accesses(loop)
	load7, store0 := accs[0], accs[1]
	if env.Carried(store0, load7, loop) {
		t.Error("a[0] vs a[7]: distinct constants, independent")
	}
	if !env.Carried(store0, store0, loop) {
		t.Error("a[0] written every iteration: carried WAW")
	}
}

func TestInnerIVRange(t *testing.T) {
	// Outer test: m[8i + j] with j in [0,8) — rows are disjoint across i.
	env, loops := envOf(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 8; j++) { m[8*i + j] = i; }
	}
	print(m[0]);
}`, "main")
	outer := loops[0]
	accs := env.Accesses(outer)
	var store affine.Access
	for _, a := range accs {
		if a.IsWrite {
			store = a
		}
	}
	if env.Carried(store, store, outer) {
		t.Error("8i+j rows are disjoint across outer iterations")
	}
}

func TestInnerIVRangeOverlap(t *testing.T) {
	// m[4i + j] with j in [0,8): rows overlap across i.
	env, loops := envOf(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 8; j++) { m[4*i + j] = i; }
	}
	print(m[0]);
}`, "main")
	outer := loops[0]
	var store affine.Access
	for _, a := range env.Accesses(outer) {
		if a.IsWrite {
			store = a
		}
	}
	if !env.Carried(store, store, outer) {
		t.Error("4i+j rows overlap: carried dependence")
	}
}

func TestMemReductionGroups(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var h []int = new [8]int;
	var b []int = new [32]int;
	for (var i int = 0; i < 32; i++) {
		h[b[i] % 8] += 1;
		h[0] = 5;
	}
	print(h[0]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	groups := affine.MemReductionGroups(prog.Func("main"))
	if len(groups) != 2 {
		t.Errorf("group instrs = %d, want 2 (the load and store of the += only)", len(groups))
	}
}
