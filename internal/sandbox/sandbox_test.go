package sandbox_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/sandbox"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestCleanRun(t *testing.T) {
	prog := compile(t, `func main() { var s int = 0; for (var i int = 0; i < 10; i++) { s += i; } print(s); }`)
	var out strings.Builder
	oc := sandbox.Run(nil, prog, interp.Config{Out: &out}, sandbox.Limits{}, nil)
	if !oc.OK() {
		t.Fatalf("trap on clean run: %v", oc.Trap)
	}
	if out.String() != "45\n" {
		t.Errorf("output = %q, want 45", out.String())
	}
	if oc.Result == nil || oc.Result.Steps == 0 {
		t.Errorf("missing result: %+v", oc.Result)
	}
}

func TestFaultClassification(t *testing.T) {
	prog := compile(t, `func main() { var z int = 0; print(1 / z); }`)
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{}, nil)
	if oc.OK() || oc.Trap.Kind != sandbox.Fault {
		t.Fatalf("want Fault trap, got %+v", oc.Trap)
	}
	if !strings.Contains(oc.Trap.Error(), "division by zero") {
		t.Errorf("trap error = %v", oc.Trap)
	}
}

func TestStepBudgetClassification(t *testing.T) {
	prog := compile(t, `func main() { while (true) { } }`)
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{MaxSteps: 500}, nil)
	if oc.OK() || oc.Trap.Kind != sandbox.Budget {
		t.Fatalf("want Budget trap, got %+v", oc.Trap)
	}
	var be *interp.BudgetError
	if !errors.As(oc.Trap.Err, &be) {
		t.Fatalf("want *interp.BudgetError, got %T: %v", oc.Trap.Err, oc.Trap.Err)
	}
	if be.Fn != "main" || be.Block == "" || be.Steps == 0 || be.Resource != "steps" {
		t.Errorf("budget error missing site info: %+v", be)
	}
}

func TestHeapBudget(t *testing.T) {
	prog := compile(t, `
struct N { v int; }
func main() {
	for (var i int = 0; i < 1000; i++) { var n *N = new N; n->v = i; }
}`)
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{MaxHeapObjects: 10}, nil)
	if oc.OK() || oc.Trap.Kind != sandbox.Budget {
		t.Fatalf("want Budget trap, got %+v", oc.Trap)
	}
	if !strings.Contains(oc.Trap.Err.Error(), "heap-objects") {
		t.Errorf("trap error = %v", oc.Trap.Err)
	}
}

func TestOutputBudget(t *testing.T) {
	prog := compile(t, `func main() { for (var i int = 0; i < 10000; i++) { print(i); } }`)
	var out strings.Builder
	oc := sandbox.Run(nil, prog, interp.Config{Out: &out}, sandbox.Limits{MaxOutput: 64}, nil)
	if oc.OK() || oc.Trap.Kind != sandbox.Budget {
		t.Fatalf("want Budget trap, got %+v", oc.Trap)
	}
	if !strings.Contains(oc.Trap.Err.Error(), "output-bytes") {
		t.Errorf("trap error = %v", oc.Trap.Err)
	}
	if int64(len(out.String())) > 64 {
		t.Errorf("wrote %d bytes past the budget", len(out.String()))
	}
}

func TestTimeoutClassification(t *testing.T) {
	prog := compile(t, `func main() { while (true) { } }`)
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{Timeout: 20 * time.Millisecond}, nil)
	if oc.OK() || oc.Trap.Kind != sandbox.Timeout {
		t.Fatalf("want Timeout trap, got %+v", oc.Trap)
	}
	if !errors.Is(oc.Trap.Err, interp.ErrCancelled) {
		t.Errorf("timeout error does not match ErrCancelled: %v", oc.Trap.Err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	prog := compile(t, `func main() { print(1); }`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	oc := sandbox.Run(ctx, prog, interp.Config{}, sandbox.Limits{}, nil)
	if oc.OK() || oc.Trap.Kind != sandbox.Timeout {
		t.Fatalf("want Timeout trap for pre-cancelled context, got %+v", oc.Trap)
	}
}

func TestInjectPanicAtStep(t *testing.T) {
	prog := compile(t, `func main() { var s int = 0; for (var i int = 0; i < 100; i++) { s += i; } print(s); }`)
	inj := sandbox.NewInjector(sandbox.Inject{AtStep: 50, Kind: sandbox.Panic})
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{}, inj)
	if oc.OK() || oc.Trap.Kind != sandbox.Panic {
		t.Fatalf("want Panic trap, got %+v", oc.Trap)
	}
	if oc.Trap.Stack == "" {
		t.Errorf("panic trap lost its stack")
	}
	if inj.Trips() != 1 {
		t.Errorf("trips = %d, want 1", inj.Trips())
	}
}

func TestInjectFaultAtStep(t *testing.T) {
	prog := compile(t, `func main() { var s int = 0; for (var i int = 0; i < 100; i++) { s += i; } print(s); }`)
	inj := sandbox.NewInjector(sandbox.Inject{AtStep: 50, Kind: sandbox.Fault})
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{}, inj)
	if oc.OK() || oc.Trap.Kind != sandbox.Fault {
		t.Fatalf("want Fault trap, got %+v", oc.Trap)
	}
	if !strings.Contains(oc.Trap.Err.Error(), "injected fault") {
		t.Errorf("trap error = %v", oc.Trap.Err)
	}
}

func TestInjectBudgetAtStep(t *testing.T) {
	prog := compile(t, `func main() { var s int = 0; for (var i int = 0; i < 100; i++) { s += i; } print(s); }`)
	inj := sandbox.NewInjector(sandbox.Inject{AtStep: 50, Kind: sandbox.Budget})
	oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{}, inj)
	if oc.OK() || oc.Trap.Kind != sandbox.Budget {
		t.Fatalf("want Budget trap, got %+v", oc.Trap)
	}
	if !errors.Is(oc.Trap.Err, interp.ErrBudget) {
		t.Errorf("injected budget trap does not match ErrBudget: %v", oc.Trap.Err)
	}
}

func TestInjectMaxTrips(t *testing.T) {
	prog := compile(t, `func main() { var s int = 0; for (var i int = 0; i < 100; i++) { s += i; } print(s); }`)
	inj := sandbox.NewInjector(sandbox.Inject{AtStep: 50, Kind: sandbox.Fault, MaxTrips: 1})
	if oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{}, inj); oc.OK() {
		t.Fatalf("first run should trap")
	}
	// The budget of trips is spent: the second run must complete.
	if oc := sandbox.Run(nil, prog, interp.Config{}, sandbox.Limits{}, inj); !oc.OK() {
		t.Fatalf("second run should be clean, got %v", oc.Trap)
	}
	if inj.Trips() != 1 {
		t.Errorf("trips = %d, want 1", inj.Trips())
	}
}

func TestInjectAtIntrinsic(t *testing.T) {
	prog := compile(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 20; i++) { s += i; }
	print(s);
}`)
	inst, err := instrument.Loop(prog, "main", 0)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	inj := sandbox.NewInjector(sandbox.Inject{AtIntrinsic: 5, Kind: sandbox.Fault})
	rt := dcart.NewRuntime(dcart.Identity{})
	oc := sandbox.Run(nil, inst.Prog, interp.Config{Runtime: rt}, sandbox.Limits{}, inj)
	if oc.OK() || oc.Trap.Kind != sandbox.Fault {
		t.Fatalf("want Fault trap at intrinsic, got %+v", oc.Trap)
	}
	if !strings.Contains(oc.Trap.Err.Error(), "injected fault at @rt_") {
		t.Errorf("trap error = %v", oc.Trap.Err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want sandbox.Kind
	}{
		{nil, sandbox.None},
		{interp.ErrBudget, sandbox.Budget},
		{&interp.BudgetError{Resource: "steps"}, sandbox.Budget},
		{interp.ErrCancelled, sandbox.Timeout},
		{&interp.CancelError{Cause: context.Canceled}, sandbox.Timeout},
		{errors.New("nil dereference"), sandbox.Fault},
	}
	for _, c := range cases {
		if got := sandbox.Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var inj *sandbox.Injector
	if inj.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if inj.Trips() != 0 {
		t.Error("nil injector has trips")
	}
}
