package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/fleet"
	"dca/internal/irbuild"
	"dca/internal/obs"
	"dca/internal/server"
	"dca/internal/workloads/npb"
)

// fleetBlock is the "fleet" record merged into BENCH_analysis.json.
type fleetBlock struct {
	Nodes           int     `json:"nodes"`
	Loops           int     `json:"loops"`
	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	FailoverSeconds float64 `json:"failover_seconds"`
	WarmReplays     int     `json:"warm_replays"`
	PeerHits        uint64  `json:"peer_hits"`
	PeerMisses      uint64  `json:"peer_misses"`
	PeerErrors      uint64  `json:"peer_errors"`
	PeerHitRate     float64 `json:"peer_hit_rate"`
	Redispatches    uint64  `json:"redispatches"`
	Identical       bool    `json:"identical"`
	GoVersion       string  `json:"go_version"`
}

// cmdFleetBench measures the sharded fleet on the NPB-inspired suite: it
// boots N in-process workers on loopback listeners with the peer cache
// enabled, runs the suite through a coordinator cold and warm, kills one
// worker and runs a failover pass, and asserts every pass renders the
// same verdict table a single node does. The numbers land in the "fleet"
// block of BENCH_analysis.json.
func cmdFleetBench(args []string) error {
	fs := flag.NewFlagSet("fleet-bench", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "fleet size")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "engine workers per node")
	benchOut := fs.String("bench-out", "BENCH_analysis.json", "merge the \"fleet\" block into this JSON file (empty = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet-bench: unexpected arguments %q", fs.Args())
	}
	if *nodes < 2 {
		return fmt.Errorf("fleet-bench: -nodes must be >= 2 (the single-node reference is built in)")
	}
	ctx := context.Background()

	// Single-node reference: the verdict table every fleet pass must match.
	single, err := newBenchFleet(ctx, 1, *jobs)
	if err != nil {
		return fmt.Errorf("fleet-bench: %w", err)
	}
	defer single.stop()
	refTable, _, _, err := single.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: reference suite: %w", err)
	}
	single.stop()

	fl, err := newBenchFleet(ctx, *nodes, *jobs)
	if err != nil {
		return fmt.Errorf("fleet-bench: %w", err)
	}
	defer fl.stop()

	coldTable, coldDur, coldLoops, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: cold suite: %w", err)
	}
	warmTable, warmDur, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: warm suite: %w", err)
	}
	warmReplays := fl.lastReplays

	// Failover: kill the last worker and run the suite again. The
	// coordinator must re-dispatch its shard to the ring successors and
	// still render the identical table.
	fl.kill(*nodes - 1)
	failTable, failDur, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: failover suite: %w", err)
	}

	identical := coldTable == refTable && warmTable == refTable && failTable == refTable

	// Every worker's registry counts, including the killed one: its peer
	// traffic happened while it was alive.
	var hits, misses, errs uint64
	for _, w := range fl.workers {
		if m := w.FleetMetrics(); m != nil {
			hits += m.PeerHits.Value()
			misses += m.PeerMisses.Value()
			errs += m.PeerErrors.Value()
		}
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	block := fleetBlock{
		Nodes:           *nodes,
		Loops:           coldLoops,
		ColdSeconds:     coldDur.Seconds(),
		WarmSeconds:     warmDur.Seconds(),
		FailoverSeconds: failDur.Seconds(),
		WarmReplays:     warmReplays,
		PeerHits:        hits,
		PeerMisses:      misses,
		PeerErrors:      errs,
		PeerHitRate:     hitRate,
		Redispatches:    fl.cm.Redispatches.Value(),
		Identical:       identical,
		GoVersion:       runtime.Version(),
	}
	fmt.Printf("fleet-bench: %d nodes, %d loops\n", block.Nodes, block.Loops)
	fmt.Printf("  cold %.2fs  warm %.2fs  failover %.2fs\n", block.ColdSeconds, block.WarmSeconds, block.FailoverSeconds)
	fmt.Printf("  warm replays %d  peer hits %d / misses %d / errors %d (hit rate %.2f)\n",
		block.WarmReplays, block.PeerHits, block.PeerMisses, block.PeerErrors, block.PeerHitRate)
	fmt.Printf("  re-dispatches %d  tables identical to single node: %v\n", block.Redispatches, block.Identical)
	if *benchOut != "" {
		if err := mergeBenchBlock(*benchOut, "fleet", block); err != nil {
			return fmt.Errorf("fleet-bench: %w", err)
		}
	}
	if !identical {
		return fmt.Errorf("fleet-bench: fleet verdict tables diverged from the single-node reference")
	}
	return nil
}

// benchFleet is an in-process fleet: N worker servers on loopback
// listeners, each with a memory-only verdict cache wrapped in the peer
// protocol, and one coordinator routing over all of them.
type benchFleet struct {
	workers     []*server.Server
	cancels     []context.CancelFunc
	urls        []string
	coord       *fleet.Coordinator
	cm          *fleet.Metrics
	lastReplays int
}

func newBenchFleet(ctx context.Context, n, jobs int) (*benchFleet, error) {
	f := &benchFleet{}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.stop()
			return nil, err
		}
		listeners[i] = ln
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		c, err := cache.Open("", 0, core.CacheRecordVersion)
		if err != nil {
			f.stop()
			return nil, err
		}
		cfg := server.Config{
			Workers:   jobs,
			Cache:     c,
			PeerNodes: f.urls,
			PeerSelf:  f.urls[i],
		}
		srv := server.New(cfg)
		wctx, cancel := context.WithCancel(ctx)
		f.workers = append(f.workers, srv)
		f.cancels = append(f.cancels, cancel)
		go srv.Serve(wctx, listeners[i])
	}
	reg := obs.NewRegistry()
	f.coord = fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: f.urls})
	f.cm = fleet.NewMetrics(reg, f.coord.Ring())
	f.coord.SetMetrics(f.cm)
	return f, nil
}

// kill shuts one worker down; its listener closes, so subsequent
// dispatches and peer lookups fail over.
func (f *benchFleet) kill(i int) {
	if i < len(f.cancels) && f.cancels[i] != nil {
		f.cancels[i]()
		f.cancels[i] = nil
	}
}

func (f *benchFleet) stop() {
	for i := range f.cancels {
		f.kill(i)
	}
}

// runSuite pushes every NPB spec through the coordinator and renders the
// verdict table: one line per loop with function, index, verdict, and
// reason — everything deterministic, nothing timing- or
// provenance-dependent — so tables compare byte-for-byte across fleet
// sizes and cache states.
func (f *benchFleet) runSuite(ctx context.Context) (table string, dur time.Duration, loops int, err error) {
	start := time.Now()
	var b strings.Builder
	f.lastReplays = 0
	for _, spec := range npb.Specs() {
		src := spec.Source()
		name := spec.Name + ".mc"
		prog, err := irbuild.Compile(name, src)
		if err != nil {
			return "", 0, 0, fmt.Errorf("%s: compile: %w", spec.Name, err)
		}
		rep, err := f.coord.Analyze(ctx, prog, name, src, fleet.Knobs{Schedules: 1}, nil)
		if err != nil {
			return "", 0, 0, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, l := range rep.Loops {
			fmt.Fprintf(&b, "%s %-40s #%-3d %-18s %s\n", spec.Name, l.Fn, l.Index, l.Verdict, l.Reason)
			loops++
		}
		f.lastReplays += rep.Replays
	}
	return b.String(), time.Since(start), loops, nil
}

// mergeBenchBlock read-modify-writes one top-level block of the bench
// JSON file, leaving every other section untouched.
func mergeBenchBlock(path, key string, block any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(block)
	if err != nil {
		return err
	}
	doc[key] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
