package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
)

const testSrc = `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) {
		a[i] = i * 3;
	}
	var s int = 0;
	for (var i int = 0; i < 16; i++) {
		s = s + a[i];
	}
	print(s);
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeReport(t *testing.T, data []byte) *core.ReportJSON {
	t.Helper()
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatalf("decode response: %v\n%s", err, data)
	}
	if ar.Report == nil {
		t.Fatalf("no report in response: %s", data)
	}
	return ar.Report
}

// TestAnalyzeComputedThenCached: the first request computes every verdict;
// an identical second request is served wholly from the cache with the same
// verdict table.
func TestAnalyzeComputedThenCached(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c, Workers: 2})

	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, body)
	}
	cold := decodeReport(t, body)
	if cold.TotalLoops == 0 {
		t.Fatal("cold report has no loops")
	}
	for _, l := range cold.Loops {
		if l.Provenance != core.ProvenanceComputed {
			t.Errorf("cold loop %s: provenance %q", l.ID, l.Provenance)
		}
	}

	resp, body = postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	warm := decodeReport(t, body)
	if warm.Replays != 0 {
		t.Errorf("warm request performed %d replays, want 0", warm.Replays)
	}
	for i, l := range warm.Loops {
		if l.Provenance != core.ProvenanceCached {
			t.Errorf("warm loop %s: provenance %q, want cached", l.ID, l.Provenance)
		}
		cd := cold.Loops[i]
		if l.Verdict != cd.Verdict || l.Reason != cd.Reason || l.Iterations != cd.Iterations {
			t.Errorf("warm loop %s diverged: %+v vs %+v", l.ID, l, cd)
		}
	}

	// no_cache forces recomputation even with the cache populated.
	resp, body = postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc, NoCache: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no_cache status %d: %s", resp.StatusCode, body)
	}
	for _, l := range decodeReport(t, body).Loops {
		if l.Provenance != core.ProvenanceComputed {
			t.Errorf("no_cache loop %s: provenance %q, want computed", l.ID, l.Provenance)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
}

// TestStats: counters reflect served traffic, the pool section reports the
// configured workers, and the cache section carries hit counters.
func TestStats(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c, Workers: 3})

	postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: "not a program"})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
	if st.Analyzed != 2 {
		t.Errorf("analyzed = %d, want 2", st.Analyzed)
	}
	if st.Errored != 1 {
		t.Errorf("errored = %d, want 1", st.Errored)
	}
	if st.Pool.Workers != 3 {
		t.Errorf("pool workers = %d, want 3", st.Pool.Workers)
	}
	if st.Cache == nil {
		t.Fatal("no cache section")
	}
	if st.Cache.Hits() == 0 {
		t.Error("warm request produced no cache hits")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSourceBytes: 4096})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid-json", "{nope", http.StatusBadRequest},
		{"missing-source", `{"filename": "x.mc"}`, http.StatusBadRequest},
		{"bad-program", `{"source": "func main("}`, http.StatusUnprocessableEntity},
		{"oversized", fmt.Sprintf(`{"source": %q}`, strings.Repeat("x", 8192)), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("error body must be JSON: %v", err)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
		})
	}

	// GET on /analyze is rejected by the method-aware mux.
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentRequests: a burst of parallel analyses against a small pool
// must all succeed with consistent verdicts. Run under -race this is the
// server's sharing discipline test.
func TestConcurrentRequests(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Cache: c, Workers: 2, MaxConcurrent: 4})

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two distinct programs interleaved, so the cache serves both.
			src := testSrc
			if i%2 == 1 {
				src = strings.Replace(testSrc, "i * 3", "i * 5", 1)
			}
			resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Source: src})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			rep := decodeReport(t, body)
			if rep.TotalLoops == 0 {
				errs <- fmt.Errorf("request %d: empty report", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.requests.Load(); got != n {
		t.Errorf("requests = %d, want %d", got, n)
	}
	if s.inFlight.Load() != 0 {
		t.Errorf("in-flight = %d after drain, want 0", s.inFlight.Load())
	}
}

// TestBudgetClamping: requests may tighten sandbox budgets but a request
// asking for more than the server ceiling is clamped down to it.
func TestBudgetClamping(t *testing.T) {
	s := New(Config{MaxSteps: 1000, Timeout: time.Second, Schedules: 2})

	opt := s.options(&AnalyzeRequest{MaxSteps: 500, TimeoutMS: 100})
	if opt.Core.MaxSteps != 500 {
		t.Errorf("tightened MaxSteps = %d, want 500", opt.Core.MaxSteps)
	}
	if opt.Core.Timeout != 100*time.Millisecond {
		t.Errorf("tightened Timeout = %v, want 100ms", opt.Core.Timeout)
	}

	opt = s.options(&AnalyzeRequest{MaxSteps: 1 << 40, TimeoutMS: 3600_000})
	if opt.Core.MaxSteps != 1000 {
		t.Errorf("clamped MaxSteps = %d, want the 1000 ceiling", opt.Core.MaxSteps)
	}
	if opt.Core.Timeout != time.Second {
		t.Errorf("clamped Timeout = %v, want the 1s ceiling", opt.Core.Timeout)
	}

	// Schedule count is bounded by the server default too.
	if got := len(s.options(&AnalyzeRequest{Schedules: 100}).Core.Schedules); got != 3 {
		t.Errorf("schedules = %d (incl. reverse), want 3", got)
	}
	if got := len(s.options(&AnalyzeRequest{Schedules: 1}).Core.Schedules); got != 2 {
		t.Errorf("schedules = %d (incl. reverse), want 2", got)
	}
}

// TestGracefulDrain: cancelling the serve context stops the listener and
// Serve returns cleanly once in-flight work drains.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2, DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	resp, body := postAnalyze(t, url, AnalyzeRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}

	// The listener is closed: new connections must fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after drain")
	}
}
