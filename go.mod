module dca

go 1.22
