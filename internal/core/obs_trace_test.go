package core_test

import (
	"sync"
	"testing"

	"dca/internal/core"
	"dca/internal/irbuild"
	"dca/internal/obs"
)

// mapCache is a minimal VerdictCache for trace tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapCache() *mapCache { return &mapCache{m: map[string][]byte{}} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *mapCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

// loopEvents groups a collector's events by loop ID, preserving order.
func loopEvents(events []obs.Event) map[string][]obs.Event {
	byLoop := map[string][]obs.Event{}
	for _, ev := range events {
		byLoop[ev.LoopID] = append(byLoop[ev.LoopID], ev)
	}
	return byLoop
}

// TestTraceEventLifecycle: one analysis (prover off, so the dynamic stage
// runs) emits a reference event and, per loop, static → cache miss →
// golden → one replay per schedule → verdict, in that order, with the
// verdict events agreeing with the report.
func TestTraceEventLifecycle(t *testing.T) {
	prog, err := irbuild.Compile("trace.mc", `
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) {
		a[i] = i * 2;
	}
	var s int = 0;
	for (var i int = 0; i < 8; i++) {
		s = s + a[i];
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	rep, err := core.Analyze(prog, core.Options{Trace: col, Cache: newMapCache(), NoProve: true})
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 || events[0].Stage != obs.StageReference || events[0].Outcome != obs.OutcomeOK {
		t.Fatalf("first event must be an ok reference run, got %+v", events[:1])
	}

	byLoop := loopEvents(events[1:])
	for _, lr := range rep.Loops {
		evs := byLoop[lr.ID]
		stages := make([]string, len(evs))
		for i, ev := range evs {
			stages[i] = ev.Stage
		}
		// static, cache miss, golden, one replay per schedule, verdict.
		wantLen := 4 + lr.SchedulesTested
		if len(evs) != wantLen {
			t.Fatalf("loop %s: %d events %v, want %d", lr.ID, len(evs), stages, wantLen)
		}
		if evs[0].Stage != obs.StageStatic {
			t.Errorf("loop %s: first event %q, want static", lr.ID, evs[0].Stage)
		}
		if evs[1].Stage != obs.StageCache || evs[1].Outcome != obs.OutcomeMiss {
			t.Errorf("loop %s: second event %+v, want cache miss", lr.ID, evs[1])
		}
		if evs[2].Stage != obs.StageGolden || evs[2].DurationMS <= 0 {
			t.Errorf("loop %s: third event %+v, want timed golden run", lr.ID, evs[2])
		}
		for i := 0; i < lr.SchedulesTested; i++ {
			ev := evs[3+i]
			if ev.Stage != obs.StageReplay || ev.Schedule == "" {
				t.Errorf("loop %s: event %d = %+v, want named replay", lr.ID, 3+i, ev)
			}
		}
		last := evs[len(evs)-1]
		if last.Stage != obs.StageVerdict || last.Verdict != lr.Verdict.String() || last.Provenance != lr.Provenance {
			t.Errorf("loop %s: verdict event %+v disagrees with report verdict %s (%s)", lr.ID, last, lr.Verdict, lr.Provenance)
		}
	}
}

// TestTraceCacheHit: a warm second analysis emits cache-hit events and
// cached-provenance verdicts with no golden or replay executions.
func TestTraceCacheHit(t *testing.T) {
	prog, err := irbuild.Compile("trace.mc", `
func main() {
	var s int = 0;
	for (var i int = 0; i < 8; i++) {
		s = s + i;
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	vc := newMapCache()
	if _, err := core.Analyze(prog, core.Options{Cache: vc}); err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	rep, err := core.Analyze(prog, core.Options{Trace: col, Cache: vc})
	if err != nil {
		t.Fatal(err)
	}
	var hits, runs int
	for _, ev := range col.Events() {
		switch ev.Stage {
		case obs.StageCache:
			if ev.Outcome == obs.OutcomeHit {
				hits++
			}
		case obs.StageGolden, obs.StageReplay:
			runs++
		case obs.StageVerdict:
			if ev.Provenance != core.ProvenanceCached {
				t.Errorf("warm verdict event provenance %q, want cached", ev.Provenance)
			}
		}
	}
	if hits != len(rep.Loops) {
		t.Errorf("cache hit events = %d, want %d", hits, len(rep.Loops))
	}
	if runs != 0 {
		t.Errorf("warm analysis emitted %d golden/replay events, want 0", runs)
	}
}

// TestTraceProvedLifecycle: a loop the static commutativity prover decides
// emits static → cache miss → prove(proved, argument in Reason) → golden
// (the coverage witness) → verdict, with no schedule replay, and the
// verdict carries static-proved provenance. A second run serves the proved
// record from the cache.
func TestTraceProvedLifecycle(t *testing.T) {
	prog, err := irbuild.Compile("trace.mc", `
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) {
		a[i] = i * 2;
	}
	print(a[0]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	vc := newMapCache()
	col := &obs.Collector{}
	rep, err := core.Analyze(prog, core.Options{Trace: col, Cache: vc})
	if err != nil {
		t.Fatal(err)
	}
	lr := rep.Loops[0]
	if lr.Verdict != core.Commutative || lr.Provenance != core.ProvenanceProved {
		t.Fatalf("verdict %s (%s), want commutative static-proved", lr.Verdict, lr.Provenance)
	}
	if lr.Replays != 1 || lr.SkippedProve == 0 {
		t.Errorf("proved loop ran %d executions, skipped %d, want exactly the golden run and >0 skipped replays", lr.Replays, lr.SkippedProve)
	}
	if lr.Invocations == 0 || lr.Iterations == 0 {
		t.Errorf("proved loop invocations/iterations = %d/%d, want golden-run coverage evidence", lr.Invocations, lr.Iterations)
	}
	evs := loopEvents(col.Events()[1:])[lr.ID]
	stages := make([]string, len(evs))
	for i, ev := range evs {
		stages[i] = ev.Stage
	}
	want := []string{obs.StageStatic, obs.StageCache, obs.StageProve, obs.StageGolden, obs.StageVerdict}
	if len(stages) != len(want) {
		t.Fatalf("proved loop events %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("proved loop events %v, want %v", stages, want)
		}
	}
	if evs[2].Outcome != obs.OutcomeProved || evs[2].Reason == "" {
		t.Errorf("prove event %+v, want proved outcome with an argument name", evs[2])
	}

	// Warm run: the proved record is served from the cache, preserving the
	// skipped-execution count.
	rep2, err := core.Analyze(prog, core.Options{Cache: vc})
	if err != nil {
		t.Fatal(err)
	}
	lr2 := rep2.Loops[0]
	if lr2.Provenance != core.ProvenanceCached || lr2.Verdict != core.Commutative {
		t.Errorf("warm verdict %s (%s), want cached commutative", lr2.Verdict, lr2.Provenance)
	}
	if lr2.SkippedProve != lr.SkippedProve {
		t.Errorf("warm SkippedProve = %d, want %d", lr2.SkippedProve, lr.SkippedProve)
	}
}
