package core_test

import (
	"strings"
	"testing"

	"dca/internal/core"
	"dca/internal/irbuild"
)

// analyze compiles src and runs DCA over all loops.
func analyze(t *testing.T, src string) *core.Report {
	t.Helper()
	prog, err := irbuild.Compile("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

// expectVerdict asserts the verdict of the index-th loop of fn.
func expectVerdict(t *testing.T, rep *core.Report, fn string, index int, want core.Verdict) {
	t.Helper()
	res := rep.Result(fn, index)
	if res == nil {
		t.Fatalf("no result for %s loop %d; report:\n%s", fn, index, rep)
	}
	if res.Verdict != want {
		t.Errorf("%s = %s (%s), want %s", res.ID, res.Verdict, res.Reason, want)
	}
}

// TestFig1aArrayMap is the paper's Fig. 1(a): an array map loop must be
// commutative.
func TestFig1aArrayMap(t *testing.T) {
	rep := analyze(t, `
func main() {
	var array []int = new [64]int;
	for (var i int = 0; i < 64; i++) { array[i] = i; }
	for (var i int = 0; i < 64; i++) { array[i]++; }
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s += array[i]; }
	print(s);
}`)
	expectVerdict(t, rep, "main", 0, core.Commutative) // init map
	expectVerdict(t, rep, "main", 1, core.Commutative) // increment map
	expectVerdict(t, rep, "main", 2, core.Commutative) // sum reduction
}

// TestFig1bPLDSMap is the paper's Fig. 1(b): the same map over a linked
// list; dependence analysis fails here but DCA must find it commutative.
func TestFig1bPLDSMap(t *testing.T) {
	rep := analyze(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 32; i++) {
		var n *Node = new Node;
		n->val = i;
		n->next = head;
		head = n;
	}
	var ptr *Node = head;
	while (ptr != nil) {
		ptr->val++;
		ptr = ptr->next;
	}
	var s int = 0;
	ptr = head;
	while (ptr != nil) { s += ptr->val; ptr = ptr->next; }
	print(s);
}`)
	expectVerdict(t, rep, "main", 1, core.Commutative) // the ptr->val++ loop
	expectVerdict(t, rep, "main", 2, core.Commutative) // the sum loop
}

// TestNonCommutativeOrderDependent: a loop whose live-out depends on
// iteration order must be rejected.
func TestNonCommutativeOrderDependent(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [16]int;
	a[0] = 1;
	// recurrence: a[i] = a[i-1] + 1 — order matters
	for (var i int = 1; i < 16; i++) { a[i] = a[i-1] + 1; }
	print(a[15]);
}`)
	expectVerdict(t, rep, "main", 0, core.NonCommutative)
}

func TestNonCommutativeLastWriterWins(t *testing.T) {
	rep := analyze(t, `
func main() {
	var last int = 0;
	for (var i int = 0; i < 10; i++) { last = i; }
	print(last);
}`)
	expectVerdict(t, rep, "main", 0, core.NonCommutative)
}

func TestIOExcluded(t *testing.T) {
	rep := analyze(t, `
func emit(x int) { print(x); }
func main() {
	for (var i int = 0; i < 4; i++) { print(i); }
	for (var i int = 0; i < 4; i++) { emit(i); }
}`)
	expectVerdict(t, rep, "main", 0, core.ExcludedIO)
	expectVerdict(t, rep, "main", 1, core.ExcludedIO)
}

// TestNotExecutedLoop: the loop body is provably disjoint, but the workload
// never runs it — coverage evidence outranks the static proof, so the
// golden run's NotExecuted verdict stands exactly as it would with the
// prover off.
func TestNotExecutedLoop(t *testing.T) {
	rep := analyze(t, `
func main() {
	var n int = 0;
	var a []int = new [8]int;
	for (var i int = 0; i < n; i++) { a[i] = i; }
	print(a[0]);
}`)
	expectVerdict(t, rep, "main", 0, core.NotExecuted)
	if res := rep.Result("main", 0); res.Provenance == core.ProvenanceProved {
		t.Errorf("dead loop carries static-proved provenance: %+v", res)
	}
}

// TestScalarReduction: s += a[i] is commutative (integer addition).
func TestScalarReduction(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [32]int;
	for (var i int = 0; i < 32; i++) { a[i] = i * 3; }
	var s int = 0;
	var m int = 0;
	for (var i int = 0; i < 32; i++) {
		s += a[i];
		if (a[i] > m) { m = a[i]; }
	}
	print(s, m);
}`)
	expectVerdict(t, rep, "main", 1, core.Commutative)
}

// TestHistogram: a[b[i]]++ with colliding indices is commutative for DCA.
func TestHistogram(t *testing.T) {
	rep := analyze(t, `
func main() {
	var b []int = new [40]int;
	for (var i int = 0; i < 40; i++) { b[i] = (i * 7) % 8; }
	var h []int = new [8]int;
	for (var i int = 0; i < 40; i++) { h[b[i]] += 1; }
	var s int = 0;
	for (var i int = 0; i < 8; i++) { s += h[i] * i; }
	print(s);
}`)
	expectVerdict(t, rep, "main", 1, core.Commutative)
}

// TestLoopInsideCalledFunction: loops in callees are analyzed too, across
// multiple invocations — the golden run records them even when the prover
// decides the loop, since a proof only skips the replays.
func TestLoopInsideCalledFunction(t *testing.T) {
	rep := analyze(t, `
func bump(a []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] += 1; }
}
func main() {
	var a []int = new [16]int;
	bump(a, 16);
	bump(a, 8);
	var s int = 0;
	for (var i int = 0; i < 16; i++) { s += a[i]; }
	print(s);
}`)
	res := rep.Result("bump", 0)
	if res == nil {
		t.Fatalf("no result for bump loop; report:\n%s", rep)
	}
	if res.Verdict != core.Commutative {
		t.Fatalf("bump loop = %s (%s)", res.Verdict, res.Reason)
	}
	if res.Invocations != 2 {
		t.Errorf("invocations = %d, want 2", res.Invocations)
	}
	if res.Iterations != 24 {
		t.Errorf("golden iterations = %d, want 24 (16 + 8 across the two invocations)", res.Iterations)
	}
}

// TestWhileWithBreak: an early-exit search loop; the exit condition depends
// on the payload's data, so separation pulls the body into the iterator and
// the loop is reported not separable (pure iterator).
func TestWhileWithBreak(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [32]int;
	for (var i int = 0; i < 32; i++) { a[i] = i * 2; }
	var found int = -1;
	for (var i int = 0; i < 32; i++) {
		if (a[i] == 40) { found = i; break; }
	}
	print(found);
}`)
	res := rep.Result("main", 1)
	if res == nil {
		t.Fatalf("missing result:\n%s", rep)
	}
	if res.Verdict == core.Commutative {
		t.Errorf("search loop with break must not be commutative-parallelizable as-is, got %s", res.Verdict)
	}
}

// TestFloatAccumulationNonCommutative: float rounding makes permuted sums
// observable... unless values are exactly representable. Use values that
// expose rounding.
func TestFloatSumRoundingDetected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []float = new [24]float;
	var x float = 1.0;
	for (var i int = 0; i < 24; i++) { a[i] = x; x = x / 3.0; }
	var s float = 0.0;
	for (var i int = 0; i < 24; i++) { s += a[i]; }
	print(s);
}`)
	res := rep.Result("main", 1)
	if res == nil {
		t.Fatalf("missing result:\n%s", rep)
	}
	if res.Verdict != core.NonCommutative {
		t.Errorf("float sum with rounding = %s (%s), want non-commutative", res.Verdict, res.Reason)
	}
}

// TestNestedLoops: the outer loop over rows of a matrix-scale operation is
// commutative, as is each inner loop.
func TestNestedLoops(t *testing.T) {
	rep := analyze(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 8; j++) {
			m[i*8+j] = i + j;
		}
	}
	var s int = 0;
	for (var k int = 0; k < 64; k++) { s += m[k]; }
	print(s);
}`)
	for idx := 0; idx < 3; idx++ {
		res := rep.Result("main", idx)
		if res == nil {
			t.Fatalf("missing loop %d:\n%s", idx, rep)
		}
		if res.Verdict != core.Commutative {
			t.Errorf("loop %d (%s) = %s (%s), want commutative", idx, res.ID, res.Verdict, res.Reason)
		}
	}
}

func TestReportHelpers(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [4]int;
	for (var i int = 0; i < 4; i++) { a[i] = i; }
	print(a[3]);
}`)
	if got := rep.Count(core.Commutative); got != 1 {
		t.Errorf("Count(Commutative) = %d, want 1", got)
	}
	if got := len(rep.Commutative()); got != 1 {
		t.Errorf("len(Commutative()) = %d, want 1", got)
	}
	if s := rep.String(); !strings.Contains(s, "commutative") {
		t.Errorf("report string missing verdict: %q", s)
	}
}

// TestCalleeLiveOutThroughParams: a non-commutative loop inside a void
// function must be caught through heap state reachable from its reference
// parameters, even when the whole-program output converges across repeated
// calls (so output comparison alone would miss it).
func TestCalleeLiveOutThroughParams(t *testing.T) {
	rep := analyze(t, `
func fill(a []int) {
	var prev int = 0;
	for (var i int = 0; i < 8; i++) {
		a[i] = prev;
		prev = a[i] + i;
	}
}
func main() {
	var a []int = new [8]int;
	// Two calls: the second overwrites with identical values, so the final
	// printed state is insensitive to a wrong first call.
	fill(a);
	fill(a);
	var s int = 0;
	for (var i int = 0; i < 8; i++) { s += a[i]; }
	print(s);
}`)
	expectVerdict(t, rep, "fill", 0, core.NonCommutative)
}
