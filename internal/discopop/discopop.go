// Package discopop reimplements the decision procedure of DiscoPoP (Li et
// al. [9]): profile-driven detection of parallelizable code regions of
// varying granularity. Like Dependence Profiling it classifies loops from a
// dynamic dependence trace, but
//
//   - it recognizes only the plain arithmetic reduction patterns its CU
//     (computational-unit) matcher covers — conditional min/max updates are
//     not among them; and
//   - it additionally reports non-loop regions: adjacent computational
//     units with disjoint memory footprints form a task-parallel section,
//     so its region count can exceed the loop count of a benchmark (as in
//     the paper's Table I, where DiscoPoP reports 20 regions for the 16
//     loops of IS).
package discopop

import (
	"fmt"
	"strings"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/depprof"
	"dca/internal/ir"
	"dca/internal/pointer"
)

// Report holds DiscoPoP's findings for one program.
type Report struct {
	Prog *ir.Program
	// LoopVerdicts reuses the dependence-profiling verdict structure.
	Loops *depprof.Report
	// TaskSections lists the detected non-loop parallel regions.
	TaskSections []TaskSection
}

// TaskSection is a pair of adjacent, memory-disjoint regions inside one
// function that can run as parallel tasks.
type TaskSection struct {
	Fn     string
	First  string // description of the first unit (loop id)
	Second string
}

// ParallelRegions returns DiscoPoP's headline count: parallelizable loops
// plus task-parallel sections.
func (r *Report) ParallelRegions() int {
	return r.Loops.Parallelizable() + len(r.TaskSections)
}

// ParallelLoops counts only the loop-shaped regions.
func (r *Report) ParallelLoops() int { return r.Loops.Parallelizable() }

// Verdict exposes the per-loop verdict.
func (r *Report) Verdict(fn string, index int) *depprof.Verdict {
	return r.Loops.Verdict(fn, index)
}

func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Loops.String())
	for _, ts := range r.TaskSections {
		fmt.Fprintf(&b, "%s: task section (%s || %s)\n", ts.Fn, ts.First, ts.Second)
	}
	return b.String()
}

// Policy is DiscoPoP's loop policy: dependence profiling without the
// conditional min/max reduction matcher, and with side-effecting calls
// kept as inter-CU dependences.
func Policy() depprof.Policy {
	p := depprof.DefaultPolicy()
	p.MinMaxScalars = false
	p.ImpureCalls = false
	return p
}

// Analyze traces the program and produces DiscoPoP's region report.
func Analyze(prog *ir.Program, maxSteps int64) (*Report, error) {
	prof, err := depprof.Trace(prog, maxSteps)
	if err != nil {
		return nil, err
	}
	return AnalyzeProfile(prog, prof), nil
}

// AnalyzeProfile produces the region report from an existing dependence
// profile, so one traced execution can serve both this baseline and
// dependence profiling: the trace is policy-independent, only the
// classification differs.
func AnalyzeProfile(prog *ir.Program, prof *depprof.Profile) *Report {
	loops := depprof.AnalyzeProfile(prog, prof, Policy())
	rep := &Report{Prog: prog, Loops: loops}
	pa := pointer.Analyze(prog)
	for _, fn := range prog.Funcs {
		rep.TaskSections = append(rep.TaskSections, taskSections(fn, pa, loops)...)
	}
	return rep
}

// unit is a candidate computational unit: a top-level loop of a function
// together with its memory footprint and scalar defs/uses.
type unit struct {
	loop   *cfg.Loop
	reads  pointer.RegionSet
	writes pointer.RegionSet
	defs   dataflow.LocalSet
	uses   dataflow.LocalSet
	order  int // position of the header block in RPO
}

// taskSections finds adjacent top-level loops with disjoint footprints.
// Both units must have been executed (DiscoPoP is profile-driven).
func taskSections(fn *ir.Func, pa *pointer.Analysis, loops *depprof.Report) []TaskSection {
	g, ls := cfg.LoopsOf(fn)
	var units []*unit
	for _, l := range ls {
		if l.Depth != 1 {
			continue
		}
		v := loops.Verdict(fn.Name, l.Index)
		if v == nil || !v.Executed {
			continue
		}
		u := &unit{
			loop:   l,
			reads:  pointer.RegionSet{},
			writes: pointer.RegionSet{},
			defs:   dataflow.LocalSet{},
			uses:   dataflow.LocalSet{},
		}
		for i, b := range g.RPO {
			if b == l.Header {
				u.order = i
			}
			if !l.Blocks[b] {
				continue
			}
			for _, in := range b.Instrs {
				switch instr := in.(type) {
				case *ir.Load:
					for _, r := range pa.AccessRegions(instr) {
						u.reads.Add(r)
					}
				case *ir.Store:
					for _, r := range pa.AccessRegions(instr) {
						u.writes.Add(r)
					}
				case *ir.Call:
					if mr := pa.CallEffects(instr); mr != nil {
						u.reads.AddAll(mr.Reads)
						u.writes.AddAll(mr.Writes)
					}
				}
				if d := in.Def(); d != nil {
					u.defs[d] = true
				}
				for _, o := range in.Uses() {
					if o.Local != nil {
						u.uses[o.Local] = true
					}
				}
			}
		}
		units = append(units, u)
	}
	var out []TaskSection
	for i := 0; i+1 < len(units); i++ {
		a, b := units[i], units[i+1]
		if independent(a, b) {
			out = append(out, TaskSection{
				Fn:     fn.Name,
				First:  fmt.Sprintf("L%d", a.loop.Index),
				Second: fmt.Sprintf("L%d", b.loop.Index),
			})
		}
	}
	return out
}

func independent(a, b *unit) bool {
	if a.writes.Intersects(b.reads) || a.writes.Intersects(b.writes) || b.writes.Intersects(a.reads) {
		return false
	}
	// No scalar flow between the units (ignoring each unit's own loop
	// locals, which are distinct by construction).
	for l := range a.defs {
		if b.uses[l] {
			return false
		}
	}
	for l := range b.defs {
		if a.uses[l] {
			return false
		}
	}
	return true
}
