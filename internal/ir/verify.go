package ir

import "fmt"

// Verify checks structural invariants of a function:
//   - every block has a terminator;
//   - branch targets belong to the function;
//   - every operand local and defined local belongs to the function;
//   - local indices are consistent.
//
// Passes run Verify after transforming IR; a failure is a compiler bug.
func (f *Func) Verify() error {
	blocks := map[*Block]bool{}
	for _, b := range f.Blocks {
		blocks[b] = true
	}
	locals := map[*Local]bool{}
	for i, l := range f.Locals {
		if l.Index != i {
			return fmt.Errorf("ir: %s: local %q has index %d, want %d", f.Name, l.Name, l.Index, i)
		}
		locals[l] = true
	}
	checkOp := func(where string, o Operand) error {
		if o.Local != nil && !locals[o.Local] {
			return fmt.Errorf("ir: %s: %s reads foreign local %q", f.Name, where, o.Local.Name)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d != nil && !locals[d] {
				return fmt.Errorf("ir: %s: block %s: %s defines foreign local %q", f.Name, b.Name, in, d.Name)
			}
			for _, u := range in.Uses() {
				if err := checkOp(fmt.Sprintf("block %s: %s", b.Name, in), u); err != nil {
					return err
				}
			}
		}
		if b.Term == nil {
			return fmt.Errorf("ir: %s: block %s has no terminator", f.Name, b.Name)
		}
		for _, u := range b.Term.Uses() {
			if err := checkOp(fmt.Sprintf("block %s terminator", b.Name), u); err != nil {
				return err
			}
		}
		for _, s := range b.Term.Succs() {
			if !blocks[s] {
				return fmt.Errorf("ir: %s: block %s branches to foreign block %q", f.Name, b.Name, s.Name)
			}
		}
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: function has no blocks", f.Name)
	}
	return nil
}

// Verify checks all functions in the program.
func (p *Program) Verify() error {
	for _, f := range p.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}
