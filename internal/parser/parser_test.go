package parser_test

import (
	"strings"
	"testing"
	"testing/quick"

	"dca/internal/ast"
	"dca/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestStructAndFuncDecls(t *testing.T) {
	prog := parse(t, `
struct Node { val int; next *Node; data []float; }
func f(a int, b *Node, c []int) int { return a; }
func g() { }
`)
	if len(prog.Structs) != 1 || len(prog.Funcs) != 2 {
		t.Fatalf("decls: %d structs, %d funcs", len(prog.Structs), len(prog.Funcs))
	}
	n := prog.Struct("Node")
	if n == nil || len(n.Fields) != 3 {
		t.Fatalf("Node = %+v", n)
	}
	if n.Fields[1].Type.String() != "*Node" || n.Fields[2].Type.String() != "[]float" {
		t.Errorf("field types: %s, %s", n.Fields[1].Type, n.Fields[2].Type)
	}
	f := prog.Func("f")
	if f == nil || len(f.Params) != 3 || f.Ret == nil || f.Ret.String() != "int" {
		t.Fatalf("f = %+v", f)
	}
	if g := prog.Func("g"); g == nil || g.Ret != nil {
		t.Errorf("g should be void")
	}
}

func TestPrecedence(t *testing.T) {
	prog := parse(t, `func main() { var x int = 1 + 2 * 3; var y bool = 1 < 2 && 3 < 4 || false; }`)
	body := prog.Func("main").Body.Stmts
	// 1 + 2*3: top is +, right is *
	init := body[0].(*ast.VarDecl).Init.(*ast.BinaryExpr)
	if init.Op != "+" {
		t.Fatalf("top op = %s", init.Op)
	}
	if r, ok := init.Y.(*ast.BinaryExpr); !ok || r.Op != "*" {
		t.Errorf("rhs = %#v", init.Y)
	}
	// (1<2 && 3<4) || false: top is ||
	y := body[1].(*ast.VarDecl).Init.(*ast.BinaryExpr)
	if y.Op != "||" {
		t.Errorf("bool top = %s", y.Op)
	}
	if l, ok := y.X.(*ast.BinaryExpr); !ok || l.Op != "&&" {
		t.Errorf("lhs = %#v", y.X)
	}
}

func TestPostfixChains(t *testing.T) {
	prog := parse(t, `func main() { x->a->b[i + 1]->c = f(1, g(2))[0]; }`)
	stmt := prog.Func("main").Body.Stmts[0].(*ast.AssignStmt)
	if _, ok := stmt.LHS.(*ast.FieldExpr); !ok {
		t.Errorf("lhs = %#v", stmt.LHS)
	}
	if _, ok := stmt.RHS.(*ast.IndexExpr); !ok {
		t.Errorf("rhs = %#v", stmt.RHS)
	}
}

func TestStatements(t *testing.T) {
	prog := parse(t, `
func main() {
	var a []int = new [10]int;
	var p *N = new N;
	if (a[0] == 1) { a[1] = 2; } else if (true) { } else { }
	while (a[0] < 5) { a[0]++; continue; }
	for (var i int = 0; i < 10; i++) { break; }
	for (; ;) { break; }
	print("x", 1, 2.5);
	return;
}
struct N { v int; }
`)
	if len(prog.Func("main").Body.Stmts) != 8 {
		t.Errorf("stmts = %d", len(prog.Func("main").Body.Stmts))
	}
}

func TestForClausesOptional(t *testing.T) {
	prog := parse(t, `func main() { for (x = 0; ; x++) { break; } }`)
	f := prog.Func("main").Body.Stmts[0].(*ast.ForStmt)
	if f.Init == nil || f.Cond != nil || f.Post == nil {
		t.Errorf("for clauses: init=%v cond=%v post=%v", f.Init, f.Cond, f.Post)
	}
}

func TestConversionCalls(t *testing.T) {
	prog := parse(t, `func main() { var x float = float(3); var y int = int(x); }`)
	decl := prog.Func("main").Body.Stmts[0].(*ast.VarDecl)
	call, ok := decl.Init.(*ast.CallExpr)
	if !ok || call.Fn.Name != "float" {
		t.Errorf("init = %#v", decl.Init)
	}
}

func TestUnaryAndNegatives(t *testing.T) {
	prog := parse(t, `func main() { var x int = -3 + -y; var b bool = !(x == 0); }`)
	init := prog.Func("main").Body.Stmts[0].(*ast.VarDecl).Init.(*ast.BinaryExpr)
	if _, ok := init.X.(*ast.UnaryExpr); !ok {
		t.Errorf("lhs = %#v", init.X)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`func main() { var x int = ; }`,
		`func main() { if x { } }`, // missing parens
		`func main() { x + ; }`,
		`struct S { }`,   // ok actually: empty struct allowed
		`func () { }`,    // missing name
		`func f( { }`,    // bad params
		`garbage tokens`, // top-level junk
	}
	for i, src := range cases {
		if i == 3 {
			continue // empty struct is legal
		}
		if _, err := parser.Parse("e.mc", src); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	// The parser must report an error but keep parsing later declarations.
	_, err := parser.Parse("e.mc", `
func bad() { var ; }
func good() { }
`)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "expected") {
		t.Errorf("err = %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	parser.MustParse("bad.mc", "not a program")
}

// TestParserTotal (property): the parser never panics and always
// terminates on arbitrary input.
func TestParserTotal(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 2048 {
			src = src[:2048]
		}
		_, _ = parser.Parse("q.mc", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
