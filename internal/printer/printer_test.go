package printer_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/irbuild"
	"dca/internal/parser"
	"dca/internal/printer"
)

// roundtrip parses, prints, reparses and reprints: the two printed forms
// must be identical (print∘parse is idempotent on printed output).
func roundtrip(t *testing.T, src string) string {
	t.Helper()
	p1, err := parser.Parse("a.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out1 := printer.Print(p1)
	p2, err := parser.Parse("b.mc", out1)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, out1)
	}
	out2 := printer.Print(p2)
	if out1 != out2 {
		t.Fatalf("printer not idempotent:\n--- first:\n%s\n--- second:\n%s", out1, out2)
	}
	return out1
}

func TestRoundtripBasics(t *testing.T) {
	roundtrip(t, `
struct Node { val int; next *Node; data []float; }
func f(a int, b *Node) int {
	var x int = a * 2 + 1;
	if (x > 3) { return x; } else if (x == 0) { return 1; } else { x--; }
	while (x > 0) { x -= 2; continue; }
	for (var i int = 0; i < 10; i++) { if (i == 5) { break; } }
	for (; ;) { break; }
	return -x;
}
func main() {
	var n *Node = new Node;
	var a []int = new [4]int;
	a[0] = n->val;
	a[1] += len(a);
	print("hi", 1.5, true, nil == n);
	f(3, n);
}
`)
}

func TestPrecedencePreserved(t *testing.T) {
	cases := []string{
		`func main() { print((1 + 2) * 3); }`,
		`func main() { print(1 + 2 * 3); }`,
		`func main() { print(-(1 + 2)); }`,
		`func main() { print(-(-3)); }`,
		`func main() { print(!(true && false) || true); }`,
		`func main() { print((1 < 2) == (3 < 4)); }`,
		`func main() { print(2 * (3 % 2) << 1); }`,
		`func main() { var a []int = new [4]int; print(a[(1 + 2) % 4]); }`,
	}
	for _, src := range cases {
		out := roundtrip(t, src)
		// Semantic check: both versions must print the same values.
		ref, err := irbuild.Compile("ref.mc", src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		re, err := irbuild.Compile("re.mc", out)
		if err != nil {
			t.Fatalf("reprinted does not compile: %v\n%s", err, out)
		}
		var o1, o2 strings.Builder
		if _, err := interp.Run(ref, interp.Config{Out: &o1}); err != nil {
			t.Fatal(err)
		}
		if _, err := interp.Run(re, interp.Config{Out: &o2}); err != nil {
			t.Fatal(err)
		}
		if o1.String() != o2.String() {
			t.Errorf("semantics changed by printing:\nsrc: %s\nout: %s\n%q vs %q", src, out, o1.String(), o2.String())
		}
	}
}

// TestCorpusRoundtripSemantics: every corpus program survives a
// print→reparse→execute cycle with identical output.
func TestCorpusRoundtripSemantics(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("..", "interp", "testdata", "*.mc"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, src := range srcs {
		text, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := roundtrip(t, string(text))
		ref, err := irbuild.Compile(src, string(text))
		if err != nil {
			t.Fatal(err)
		}
		re, err := irbuild.Compile(src+".printed", printed)
		if err != nil {
			t.Fatalf("%s: reprinted does not compile: %v", src, err)
		}
		var o1, o2 strings.Builder
		if _, err := interp.Run(ref, interp.Config{Out: &o1}); err != nil {
			t.Fatal(err)
		}
		if _, err := interp.Run(re, interp.Config{Out: &o2}); err != nil {
			t.Fatalf("%s: reprinted program fails: %v", src, err)
		}
		if o1.String() != o2.String() {
			t.Errorf("%s: output changed through the printer", src)
		}
	}
}

// TestWorkloadRoundtrip: worklist-style PLDS code also survives printing.
func TestWorkloadRoundtrip(t *testing.T) {
	roundtrip(t, pldsBFS)
}

// pldsBFS is a captured fragment exercising the printer over worklist code.
const pldsBFS = `
struct GNode { vert int; adj *GEdge; }
struct GEdge { to *GNode; next *GEdge; }
func bfs_round(nodes []*GNode, infront []int, nextfront []int, dist []int, n int, level int) int {
	var added int = 0;
	for (var v int = 0; v < n; v++) {
		if (infront[v] == 1) {
			var e *GEdge = nodes[v]->adj;
			while (e != nil) {
				var u int = e->to->vert;
				if (dist[u] > level + 1) {
					dist[u] = level + 1;
					if (nextfront[u] == 0) { nextfront[u] = 1; added++; }
				}
				e = e->next;
			}
		}
	}
	return added;
}
func main() { print(0); }
`
