package scalar_test

import (
	"testing"

	"dca/internal/irbuild"
	"dca/internal/scalar"
)

// classify compiles the program and classifies the first loop of fn.
func classify(t *testing.T, src, fn string) map[string]scalar.Carried {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	env := scalar.NewEnv(prog.Func(fn))
	loops := env.G.FindLoops()
	if len(loops) == 0 {
		t.Fatal("no loops")
	}
	out := map[string]scalar.Carried{}
	for _, c := range scalar.Classify(env, loops[0]) {
		out[c.Local.Name] = c
	}
	return out
}

func TestInductionConstStep(t *testing.T) {
	m := classify(t, `func main() { for (var i int = 0; i < 10; i++) { } }`, "main")
	c, ok := m["i"]
	if !ok || c.Class != scalar.Induction || c.Step != 1 {
		t.Errorf("i = %+v", c)
	}
}

func TestInductionNegativeAndStride(t *testing.T) {
	m := classify(t, `func main() { for (var i int = 20; i > 0; i -= 3) { } }`, "main")
	if c := m["i"]; c.Class != scalar.Induction || c.Step != -3 {
		t.Errorf("i = %+v", c)
	}
}

func TestSumReduction(t *testing.T) {
	m := classify(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 10; i++) { s += i * 2; }
	print(s);
}`, "main")
	if c := m["s"]; c.Class != scalar.Reduction {
		t.Errorf("s = %+v", c)
	}
}

func TestProductReduction(t *testing.T) {
	m := classify(t, `
func main() {
	var p int = 1;
	for (var i int = 1; i < 10; i++) { p *= i; }
	print(p);
}`, "main")
	if c := m["p"]; c.Class != scalar.Reduction {
		t.Errorf("p = %+v", c)
	}
}

func TestMinMax(t *testing.T) {
	m := classify(t, `
func main() {
	var mx int = 0;
	for (var i int = 0; i < 10; i++) {
		var v int = (i * 7) % 5;
		if (v > mx) { mx = v; }
	}
	print(mx);
}`, "main")
	if c := m["mx"]; c.Class != scalar.MinMax {
		t.Errorf("mx = %+v", c)
	}
}

func TestPointerChaseFatal(t *testing.T) {
	m := classify(t, `
struct N { next *N; }
func main() {
	var p *N = nil;
	while (p != nil) { p = p->next; }
	print(0);
}`, "main")
	if c := m["p"]; c.Class != scalar.Fatal {
		t.Errorf("p = %+v, want fatal", c)
	}
}

func TestReductionUsedElsewhereIsFatal(t *testing.T) {
	m := classify(t, `
func main() {
	var a []int = new [16]int;
	var s int = 0;
	for (var i int = 0; i < 10; i++) {
		s += i;
		a[s % 16] = i;
	}
	print(s, a[0]);
}`, "main")
	if c := m["s"]; c.Class != scalar.Fatal {
		t.Errorf("s used beyond the recurrence must be fatal, got %+v", c)
	}
}

func TestLastWriterWinsFatal(t *testing.T) {
	m := classify(t, `
func main() {
	var last int = 0;
	for (var i int = 0; i < 10; i++) { last = i; }
	print(last);
}`, "main")
	if c := m["last"]; c.Class != scalar.Fatal {
		t.Errorf("last = %+v", c)
	}
}

func TestInvariantNotCarried(t *testing.T) {
	m := classify(t, `
func main() {
	var k int = 5;
	var s int = 0;
	for (var i int = 0; i < 10; i++) { s += k; }
	print(s);
}`, "main")
	if _, ok := m["k"]; ok {
		t.Error("loop-invariant k must not appear among carried scalars")
	}
}

func TestSymbolicStepInduction(t *testing.T) {
	m := classify(t, `
func f(step int) int {
	var i int = 0;
	var n int = 0;
	while (i < 100) { i += step; n++; }
	return n;
}
func main() { print(f(7)); }`, "f")
	c := m["i"]
	if c.Class != scalar.Induction || c.Step != 0 {
		t.Errorf("symbolic-step induction = %+v", c)
	}
}
