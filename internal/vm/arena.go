package vm

import (
	"dca/internal/interp"
	"dca/internal/ir"
)

// valArena is a LIFO arena for frame register slices: push carves a zeroed
// window for one frame, pop releases the most recent push. Chunks are never
// freed, so a run's peak call depth sets the footprint and steady-state
// calls allocate nothing.
//
// The high-water mark (hwCi, hwUsed) tracks the deepest point any push
// reached, so reset can clear exactly the region that may hold value
// references — a pooled machine that once ran something deep does not pay
// full-capacity clears forever after.
type valArena struct {
	chunks [][]ir.Value
	ci     int // current chunk
	used   int // values used in current chunk
	marks  []valMark
	hwCi   int
	hwUsed int
}

type valMark struct{ ci, used int }

func (a *valArena) push(n int) []ir.Value {
	a.marks = append(a.marks, valMark{a.ci, a.used})
	for {
		if a.ci == len(a.chunks) {
			// Chunks grow geometrically (512, 1024, ... capped at 8192) so a
			// shallow run — the common case for dynamic-stage cells, which the
			// engine creates by the thousand — costs one small allocation, not
			// a full-size chunk.
			sz := 512 << len(a.chunks)
			if sz > 8192 {
				sz = 8192
			}
			if n > sz {
				sz = n
			}
			a.chunks = append(a.chunks, make([]ir.Value, sz))
		}
		c := a.chunks[a.ci]
		if n <= len(c)-a.used {
			s := c[a.used : a.used+n : a.used+n]
			a.used += n
			if a.ci > a.hwCi || (a.ci == a.hwCi && a.used > a.hwUsed) {
				a.hwCi, a.hwUsed = a.ci, a.used
			}
			clear(s)
			return s
		}
		a.ci++
		a.used = 0
	}
}

func (a *valArena) pop() {
	mk := a.marks[len(a.marks)-1]
	a.marks = a.marks[:len(a.marks)-1]
	a.ci, a.used = mk.ci, mk.used
}

// reset rewinds the arena for reuse by a later run and clears everything up
// to the high-water mark, so pooled chunks never pin a dead run's heap.
// Chunks keep their capacity.
func (a *valArena) reset() {
	for i := 0; i < a.hwCi && i < len(a.chunks); i++ {
		clear(a.chunks[i])
	}
	if a.hwCi < len(a.chunks) {
		clear(a.chunks[a.hwCi][:a.hwUsed])
	}
	a.ci, a.used, a.hwCi, a.hwUsed = 0, 0, 0, 0
	a.marks = a.marks[:0]
}

// frameArena is the matching LIFO arena for interp.Frame records.
type frameArena struct {
	chunks [][]interp.Frame
	ci     int
	used   int
}

func (a *frameArena) push() *interp.Frame {
	for {
		if a.ci == len(a.chunks) {
			sz := 32 << len(a.chunks)
			if sz > 256 {
				sz = 256
			}
			a.chunks = append(a.chunks, make([]interp.Frame, sz))
		}
		c := a.chunks[a.ci]
		if a.used < len(c) {
			f := &c[a.used]
			a.used++
			return f
		}
		a.ci++
		a.used = 0
	}
}

func (a *frameArena) pop() {
	if a.used == 0 {
		a.ci--
		a.used = len(a.chunks[a.ci])
	}
	a.used--
}

// reset drops every frame's references. Frame chunks are small (a few KB in
// total even at full depth), so clearing them whole is cheaper than
// high-water bookkeeping.
func (a *frameArena) reset() {
	for _, c := range a.chunks {
		clear(c)
	}
	a.ci, a.used = 0, 0
}

// heapArena batches heap allocations: Object records and element slices are
// carved from chunks that are retained across runs (via Machine pooling), so
// steady-state allocation touches no garbage collector at all. Any live
// object is reachable through the program's own references, so escaping a
// ref is always safe.
//
// Callers fully initialize every carved record and element window (both
// alloc opcodes overwrite the Object and fill the elements), so a reused
// chunk needs no per-carve clearing: reset's bulk clear re-establishes the
// all-zero state, and skipped chunk tails stay zero by induction.
type heapArena struct {
	objChunks [][]ir.Object
	objCi     int
	objUsed   int
	valChunks [][]ir.Value
	valCi     int
	valUsed   int
}

func (h *heapArena) newObj() *ir.Object {
	for {
		if h.objCi == len(h.objChunks) {
			// First chunk small: most dynamic-stage cells allocate a handful
			// of objects (the env record plus the workload's arrays).
			sz := 64
			if h.objCi > 0 {
				sz = 1024
			}
			h.objChunks = append(h.objChunks, make([]ir.Object, sz))
		}
		c := h.objChunks[h.objCi]
		if h.objUsed < len(c) {
			o := &c[h.objUsed]
			h.objUsed++
			return o
		}
		h.objCi++
		h.objUsed = 0
	}
}

func (h *heapArena) newVals(n int) []ir.Value {
	if n > 4096 {
		// Outsized arrays go straight to the heap rather than hollowing out
		// the chunk progression.
		return make([]ir.Value, n)
	}
	for {
		if h.valCi == len(h.valChunks) {
			sz := 1024
			if h.valCi > 0 || n > 1024 {
				sz = 8192
			}
			h.valChunks = append(h.valChunks, make([]ir.Value, sz))
		}
		c := h.valChunks[h.valCi]
		if n <= len(c)-h.valUsed {
			s := c[h.valUsed : h.valUsed+n : h.valUsed+n]
			h.valUsed += n
			return s
		}
		h.valCi++
		h.valUsed = 0
	}
}

// reset rewinds the arena and clears the written region so a pooled machine
// never pins the previous run's objects. The arena never rewinds mid-run,
// so the current position is its own high-water mark. Must only be called
// when nothing outside the run references the carved objects (see
// Machine.Release).
func (h *heapArena) reset() {
	for i := 0; i < h.objCi && i < len(h.objChunks); i++ {
		clear(h.objChunks[i])
	}
	if h.objCi < len(h.objChunks) {
		clear(h.objChunks[h.objCi][:h.objUsed])
	}
	for i := 0; i < h.valCi && i < len(h.valChunks); i++ {
		clear(h.valChunks[i])
	}
	if h.valCi < len(h.valChunks) {
		clear(h.valChunks[h.valCi][:h.valUsed])
	}
	h.objCi, h.objUsed = 0, 0
	h.valCi, h.valUsed = 0, 0
}
