// Package interp is a tree-walking interpreter for the IR. It is DCA's
// execution substrate: the dynamic stage runs instrumented programs under
// it, the dependence profilers subscribe to its heap-access trace, and the
// benchmark harness uses its dynamic instruction counts as the cost model
// for the machine simulator.
package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"dca/internal/ir"
)

// ErrBudget is the sentinel matched by errors.Is for every resource-budget
// exhaustion (steps, heap objects, output bytes). The concrete error is a
// *BudgetError carrying the exhaustion site.
var ErrBudget = errors.New("interp: step budget exhausted")

// ErrCancelled is the sentinel matched by errors.Is when execution stopped
// because the configured context was cancelled or its deadline elapsed. The
// concrete error is a *CancelError.
var ErrCancelled = errors.New("interp: execution cancelled")

// BudgetError reports which resource budget ran out and where execution
// stood when it did.
type BudgetError struct {
	Resource string // "steps", "heap-objects", "output-bytes", or "injected"
	Fn       string // function executing at exhaustion
	Block    string // basic block executing at exhaustion
	Steps    int64  // instructions retired at exhaustion
	Limit    int64  // the budget that was exceeded
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("interp: %s budget (%d) exhausted in %s at block %s after %d steps",
		e.Resource, e.Limit, e.Fn, e.Block, e.Steps)
}

// Is reports ErrBudget so callers can classify without knowing the resource.
func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// CancelError reports where execution stood when the context was done.
type CancelError struct {
	Fn    string
	Block string
	Steps int64
	Cause error // the context's error (context.Canceled or DeadlineExceeded)
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("interp: execution cancelled in %s at block %s after %d steps: %v",
		e.Fn, e.Block, e.Steps, e.Cause)
}

// Is reports ErrCancelled; Unwrap exposes the context error.
func (e *CancelError) Is(target error) bool { return target == ErrCancelled }

func (e *CancelError) Unwrap() error { return e.Cause }

// Frame is one activation record.
type Frame struct {
	Fn     *ir.Func
	Locals []ir.Value
	Parent *Frame
	Depth  int
}

// Tracer receives execution events. A nil tracer costs nothing.
type Tracer interface {
	// OnBlock fires when control enters a basic block.
	OnBlock(fr *Frame, b *ir.Block)
	// OnLoad fires for every heap read: object plus element index.
	OnLoad(fr *Frame, in *ir.Load, obj *ir.Object, idx int)
	// OnStore fires for every heap write.
	OnStore(fr *Frame, in *ir.Store, obj *ir.Object, idx int)
	// OnCall fires after the callee frame is created, before it runs.
	OnCall(fr *Frame)
	// OnRet fires when a frame returns.
	OnRet(fr *Frame)
}

// Env is the executor-side surface a Runtime may use while servicing an
// intrinsic: the retired instruction count and fresh heap-object IDs. Both
// the tree-walking interpreter and the bytecode VM (internal/vm) implement
// it, so one Runtime serves either executor.
type Env interface {
	Steps() int64
	NewObjectID() int64
}

// Runtime services Intrinsic instructions (the rt_* calls inserted by the
// DCA instrumentation pass).
type Runtime interface {
	Intrinsic(env Env, fr *Frame, name string, args []ir.Value) (ir.Value, error)
}

// Config controls one execution.
type Config struct {
	Out         io.Writer // print destination; nil discards
	Runtime     Runtime   // intrinsic handler; nil makes intrinsics errors
	Tracer      Tracer    // event hooks; nil disables tracing
	MaxSteps    int64     // instruction budget; 0 means 1e9
	CountBlocks bool      // record per-block execution counts
	// Ctx, when non-nil, cancels execution: the interpreter polls it every
	// few hundred instructions and returns a *CancelError once it is done.
	Ctx context.Context
	// MaxHeapObjects bounds the number of heap allocations (0 = unlimited).
	MaxHeapObjects int64
	// MaxOutput bounds the bytes written through print (0 = unlimited).
	MaxOutput int64
	// StepHook, when non-nil, runs before every instruction; a returned
	// error aborts execution with it. The sandbox fault injector uses it to
	// trip deterministic traps at a chosen instruction count.
	StepHook func(fr *Frame, in ir.Instr, steps int64) error
	// Footprint, when non-nil, receives every heap access so the dynamic
	// stage can prove iteration-disjoint read/write sets from a golden run.
	// Much cheaper than a full Tracer: a concrete type with an early-out
	// when no segment is open, supported by both executors.
	Footprint *Footprint
	// NoVM forces this execution onto the tree-walking interpreter even
	// when the bytecode VM is enabled process-wide. It is a per-execution
	// request (the server's `no_vm` knob), so concurrent analyses with
	// different executor preferences never fight over a global switch.
	NoVM bool
}

// Result reports what an execution did.
type Result struct {
	Steps      int64
	BlockCount map[*ir.Block]int64
	Ret        ir.Value
	Output     string // only set by helpers that capture output
}

// Interp executes IR programs.
type Interp struct {
	prog     *ir.Program
	cfg      Config
	steps    int64
	max      int64
	nextID   int64
	outBytes int64
	blockCt  map[*ir.Block]int64
	printBuf []byte // reusable scratch for Print formatting
}

// New creates an interpreter for prog.
func New(prog *ir.Program, cfg Config) *Interp {
	max := cfg.MaxSteps
	if max == 0 {
		max = 1_000_000_000
	}
	it := &Interp{prog: prog, cfg: cfg, max: max}
	if cfg.CountBlocks {
		it.blockCt = map[*ir.Block]int64{}
	}
	return it
}

// Run executes prog from main().
func Run(prog *ir.Program, cfg Config) (*Result, error) {
	it := New(prog, cfg)
	main := prog.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: program %q has no main function", prog.Name)
	}
	ret, err := it.Call(main, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Steps: it.steps, BlockCount: it.blockCt, Ret: ret}, nil
}

// Steps returns the number of instructions executed so far.
func (it *Interp) Steps() int64 { return it.steps }

// BlockCounts returns per-block execution counts (nil unless enabled).
func (it *Interp) BlockCounts() map[*ir.Block]int64 { return it.blockCt }

// Program returns the program under execution.
func (it *Interp) Program() *ir.Program { return it.prog }

// NewObjectID mints a fresh heap object ID (also used by the DCA runtime
// when it materializes helper objects).
func (it *Interp) NewObjectID() int64 {
	it.nextID++
	return it.nextID
}

// Call invokes fn with the given argument values under parent.
func (it *Interp) Call(fn *ir.Func, args []ir.Value, parent *Frame) (ir.Value, error) {
	if len(args) != len(fn.Params) {
		return ir.Value{}, fmt.Errorf("interp: call %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	depth := 0
	if parent != nil {
		depth = parent.Depth + 1
	}
	if depth > 10000 {
		return ir.Value{}, fmt.Errorf("interp: call stack overflow in %s", fn.Name)
	}
	fr := &Frame{Fn: fn, Locals: make([]ir.Value, len(fn.Locals)), Parent: parent, Depth: depth}
	for i, p := range fn.Params {
		fr.Locals[p.Index] = args[i]
	}
	if it.cfg.Tracer != nil {
		it.cfg.Tracer.OnCall(fr)
	}
	ret, err := it.exec(fr)
	if it.cfg.Tracer != nil {
		it.cfg.Tracer.OnRet(fr)
	}
	return ret, err
}

// CallByName invokes the named function with args.
func (it *Interp) CallByName(name string, args ...ir.Value) (ir.Value, error) {
	fn := it.prog.Func(name)
	if fn == nil {
		return ir.Value{}, fmt.Errorf("interp: no function %q", name)
	}
	return it.Call(fn, args, nil)
}

func (it *Interp) operand(fr *Frame, o ir.Operand) ir.Value {
	if o.Local != nil {
		return fr.Locals[o.Local.Index]
	}
	return o.Const
}

func (it *Interp) budgetErr(resource string, limit int64, fr *Frame, b *ir.Block) error {
	return &BudgetError{Resource: resource, Fn: fr.Fn.Name, Block: b.Name, Steps: it.steps, Limit: limit}
}

func (it *Interp) exec(fr *Frame) (ir.Value, error) {
	b := fr.Fn.Entry()
	if it.cfg.Ctx != nil {
		if err := it.cfg.Ctx.Err(); err != nil {
			return ir.Value{}, &CancelError{Fn: fr.Fn.Name, Block: b.Name, Steps: it.steps, Cause: err}
		}
	}
	for {
		if it.cfg.Tracer != nil {
			it.cfg.Tracer.OnBlock(fr, b)
		}
		if it.blockCt != nil {
			it.blockCt[b] += int64(len(b.Instrs)) + 1
		}
		for _, in := range b.Instrs {
			it.steps++
			if it.steps > it.max {
				return ir.Value{}, it.budgetErr("steps", it.max, fr, b)
			}
			if it.cfg.Ctx != nil && it.steps&255 == 0 {
				if err := it.cfg.Ctx.Err(); err != nil {
					return ir.Value{}, &CancelError{Fn: fr.Fn.Name, Block: b.Name, Steps: it.steps, Cause: err}
				}
			}
			if it.cfg.StepHook != nil {
				if err := it.cfg.StepHook(fr, in, it.steps); err != nil {
					return ir.Value{}, fmt.Errorf("%s: %s: %w", fr.Fn.Name, in, err)
				}
			}
			if err := it.step(fr, b, in); err != nil {
				return ir.Value{}, fmt.Errorf("%s: %s: %w", fr.Fn.Name, in, err)
			}
		}
		it.steps++
		if it.steps > it.max {
			return ir.Value{}, it.budgetErr("steps", it.max, fr, b)
		}
		if it.cfg.Ctx != nil && it.steps&255 == 0 {
			if err := it.cfg.Ctx.Err(); err != nil {
				return ir.Value{}, &CancelError{Fn: fr.Fn.Name, Block: b.Name, Steps: it.steps, Cause: err}
			}
		}
		switch t := b.Term.(type) {
		case *ir.Goto:
			b = t.Target
		case *ir.If:
			if it.operand(fr, t.Cond).Bool() {
				b = t.Then
			} else {
				b = t.Else
			}
		case *ir.Ret:
			if t.Val == nil {
				return ir.Value{}, nil
			}
			return it.operand(fr, *t.Val), nil
		default:
			return ir.Value{}, fmt.Errorf("interp: %s: block %s has bad terminator", fr.Fn.Name, b.Name)
		}
	}
}

func (it *Interp) step(fr *Frame, b *ir.Block, in ir.Instr) error {
	switch i := in.(type) {
	case *ir.Mov:
		fr.Locals[i.Dst.Index] = it.operand(fr, i.Src)
	case *ir.BinOp:
		v, err := EvalBinOp(i.Op, it.operand(fr, i.X), it.operand(fr, i.Y))
		if err != nil {
			return err
		}
		fr.Locals[i.Dst.Index] = v
	case *ir.UnOp:
		x := it.operand(fr, i.X)
		switch i.Op {
		case ir.Neg:
			switch x.Kind {
			case ir.KindInt:
				fr.Locals[i.Dst.Index] = ir.IntVal(-x.I)
			case ir.KindFloat:
				fr.Locals[i.Dst.Index] = ir.FloatVal(-x.F)
			default:
				return fmt.Errorf("neg of %s", x)
			}
		case ir.Not:
			fr.Locals[i.Dst.Index] = ir.BoolVal(!x.Bool())
		}
	case *ir.Load:
		base := it.operand(fr, i.Base)
		if base.IsNilRef() {
			return fmt.Errorf("nil dereference")
		}
		idxv := it.operand(fr, i.Index)
		idx := int(idxv.I)
		obj := base.Ref
		if idx < 0 || idx >= len(obj.Elems) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(obj.Elems))
		}
		if it.cfg.Tracer != nil {
			it.cfg.Tracer.OnLoad(fr, i, obj, idx)
		}
		if it.cfg.Footprint != nil {
			it.cfg.Footprint.OnLoad(obj, idx)
		}
		fr.Locals[i.Dst.Index] = obj.Elems[idx]
	case *ir.Store:
		base := it.operand(fr, i.Base)
		if base.IsNilRef() {
			return fmt.Errorf("nil dereference")
		}
		idxv := it.operand(fr, i.Index)
		idx := int(idxv.I)
		obj := base.Ref
		if idx < 0 || idx >= len(obj.Elems) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(obj.Elems))
		}
		if it.cfg.Tracer != nil {
			it.cfg.Tracer.OnStore(fr, i, obj, idx)
		}
		v := it.operand(fr, i.Src)
		if it.cfg.Footprint != nil && it.cfg.Footprint.Active() {
			it.cfg.Footprint.OnStore(obj, idx, v.Equal(obj.Elems[idx]))
		}
		obj.Elems[idx] = v
	case *ir.Alloc:
		if it.cfg.MaxHeapObjects > 0 && it.nextID >= it.cfg.MaxHeapObjects {
			return it.budgetErr("heap-objects", it.cfg.MaxHeapObjects, fr, b)
		}
		if i.Struct != nil {
			fr.Locals[i.Dst.Index] = ir.RefVal(ir.NewStructObject(it.NewObjectID(), i.Struct))
		} else {
			n := it.operand(fr, i.Count)
			if n.I < 0 {
				return fmt.Errorf("negative array length %d", n.I)
			}
			if n.I > 64<<20 {
				return fmt.Errorf("array length %d too large", n.I)
			}
			fr.Locals[i.Dst.Index] = ir.RefVal(ir.NewArrayObject(it.NewObjectID(), i.Elem, int(n.I)))
		}
	case *ir.Call:
		args := make([]ir.Value, len(i.Args))
		for k, a := range i.Args {
			args[k] = it.operand(fr, a)
		}
		if i.Builtin {
			v, err := EvalBuiltin(i.Callee, args)
			if err != nil {
				return err
			}
			if i.Dst != nil {
				fr.Locals[i.Dst.Index] = v
			}
			return nil
		}
		fn := it.prog.Func(i.Callee)
		if fn == nil {
			return fmt.Errorf("unknown function %q", i.Callee)
		}
		v, err := it.Call(fn, args, fr)
		if err != nil {
			return err
		}
		if i.Dst != nil {
			fr.Locals[i.Dst.Index] = v
		}
	case *ir.Print:
		if it.cfg.Out != nil {
			line := it.printBuf[:0]
			for k, a := range i.Args {
				if k > 0 {
					line = append(line, ' ')
				}
				v := it.operand(fr, a)
				switch v.Kind {
				case ir.KindString:
					line = append(line, v.S...)
				case ir.KindInt:
					line = strconv.AppendInt(line, v.I, 10)
				case ir.KindFloat:
					line = strconv.AppendFloat(line, v.F, 'g', -1, 64)
				case ir.KindBool:
					if v.I != 0 {
						line = append(line, "true"...)
					} else {
						line = append(line, "false"...)
					}
				case ir.KindNil:
					line = append(line, "nil"...)
				default:
					line = append(line, v.String()...)
				}
			}
			line = append(line, '\n')
			it.printBuf = line
			it.outBytes += int64(len(line))
			if it.cfg.MaxOutput > 0 && it.outBytes > it.cfg.MaxOutput {
				return it.budgetErr("output-bytes", it.cfg.MaxOutput, fr, b)
			}
			it.cfg.Out.Write(line)
		}
	case *ir.Intrinsic:
		if it.cfg.Runtime == nil {
			return fmt.Errorf("intrinsic @%s with no runtime installed", i.Name)
		}
		args := make([]ir.Value, len(i.Args))
		for k, a := range i.Args {
			args[k] = it.operand(fr, a)
		}
		v, err := it.cfg.Runtime.Intrinsic(it, fr, i.Name, args)
		if err != nil {
			return err
		}
		if i.Dst != nil {
			fr.Locals[i.Dst.Index] = v
		}
	default:
		return fmt.Errorf("interp: unknown instruction %T", in)
	}
	return nil
}

// EvalBinOp evaluates a binary operator on constant values with exactly the
// interpreter's semantics; the optimizer uses it for constant folding.
func EvalBinOp(op ir.BinKind, x, y ir.Value) (ir.Value, error) {
	switch op {
	case ir.Eq:
		return ir.BoolVal(x.Equal(y)), nil
	case ir.Ne:
		return ir.BoolVal(!x.Equal(y)), nil
	}
	if x.Kind == ir.KindInt && y.Kind == ir.KindInt {
		switch op {
		case ir.Add:
			return ir.IntVal(x.I + y.I), nil
		case ir.Sub:
			return ir.IntVal(x.I - y.I), nil
		case ir.Mul:
			return ir.IntVal(x.I * y.I), nil
		case ir.Div:
			if y.I == 0 {
				return ir.Value{}, errors.New("integer division by zero")
			}
			return ir.IntVal(x.I / y.I), nil
		case ir.Rem:
			if y.I == 0 {
				return ir.Value{}, errors.New("integer modulo by zero")
			}
			return ir.IntVal(x.I % y.I), nil
		case ir.Shl:
			return ir.IntVal(x.I << uint(y.I&63)), nil
		case ir.Shr:
			return ir.IntVal(x.I >> uint(y.I&63)), nil
		case ir.BitAnd:
			return ir.IntVal(x.I & y.I), nil
		case ir.BitOr:
			return ir.IntVal(x.I | y.I), nil
		case ir.BitXor:
			return ir.IntVal(x.I ^ y.I), nil
		case ir.Lt:
			return ir.BoolVal(x.I < y.I), nil
		case ir.Le:
			return ir.BoolVal(x.I <= y.I), nil
		case ir.Gt:
			return ir.BoolVal(x.I > y.I), nil
		case ir.Ge:
			return ir.BoolVal(x.I >= y.I), nil
		}
	}
	if x.Kind == ir.KindFloat && y.Kind == ir.KindFloat {
		switch op {
		case ir.Add:
			return ir.FloatVal(x.F + y.F), nil
		case ir.Sub:
			return ir.FloatVal(x.F - y.F), nil
		case ir.Mul:
			return ir.FloatVal(x.F * y.F), nil
		case ir.Div:
			if y.F == 0 {
				return ir.Value{}, errors.New("float division by zero")
			}
			return ir.FloatVal(x.F / y.F), nil
		case ir.Lt:
			return ir.BoolVal(x.F < y.F), nil
		case ir.Le:
			return ir.BoolVal(x.F <= y.F), nil
		case ir.Gt:
			return ir.BoolVal(x.F > y.F), nil
		case ir.Ge:
			return ir.BoolVal(x.F >= y.F), nil
		}
	}
	if x.Kind == ir.KindString && y.Kind == ir.KindString {
		switch op {
		case ir.Add:
			return ir.StringVal(x.S + y.S), nil
		case ir.Lt:
			return ir.BoolVal(x.S < y.S), nil
		case ir.Le:
			return ir.BoolVal(x.S <= y.S), nil
		case ir.Gt:
			return ir.BoolVal(x.S > y.S), nil
		case ir.Ge:
			return ir.BoolVal(x.S >= y.S), nil
		}
	}
	return ir.Value{}, fmt.Errorf("bad operands for %s: %s, %s", op, x, y)
}

// EvalBuiltin evaluates a pure builtin with exactly the interpreter's
// semantics (shared with the bytecode VM so the two executors cannot
// drift).
func EvalBuiltin(name string, args []ir.Value) (ir.Value, error) {
	switch name {
	case "len":
		if args[0].IsNilRef() {
			return ir.Value{}, errors.New("len of nil")
		}
		return ir.IntVal(int64(len(args[0].Ref.Elems))), nil
	case "float":
		return ir.FloatVal(float64(args[0].I)), nil
	case "int":
		return ir.IntVal(int64(args[0].F)), nil
	case "sqrt":
		return ir.FloatVal(math.Sqrt(args[0].F)), nil
	case "abs":
		if args[0].I < 0 {
			return ir.IntVal(-args[0].I), nil
		}
		return args[0], nil
	case "fabs":
		return ir.FloatVal(math.Abs(args[0].F)), nil
	case "log":
		return ir.FloatVal(math.Log(args[0].F)), nil
	case "pow":
		return ir.FloatVal(math.Pow(args[0].F, args[1].F)), nil
	}
	return ir.Value{}, fmt.Errorf("unknown builtin %q", name)
}
