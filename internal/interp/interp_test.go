package interp_test

import (
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
)

// run compiles and executes src, returning printed output.
func run(t *testing.T, src string) string {
	t.Helper()
	prog, err := irbuild.Compile("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &out}); err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, prog)
	}
	return out.String()
}

func TestArithmeticAndPrint(t *testing.T) {
	got := run(t, `
func main() {
	var x int = 6;
	var y int = 7;
	print(x * y, x + y, x - y, y / x, y % x);
	var f float = 1.5;
	print(f * 2.0);
	print(3 << 2, 12 >> 1, 6 & 3, 6 | 3, 6 ^ 3);
}`)
	want := "42 13 -1 1 1\n3\n12 6 2 7 5\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestControlFlow(t *testing.T) {
	got := run(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 10; i++) {
		if (i % 2 == 0) { s += i; } else { s -= 1; }
	}
	print(s);
	var n int = 0;
	while (n < 100) {
		n += 7;
		if (n > 50) { break; }
	}
	print(n);
}`)
	if got != "15\n56\n" {
		t.Errorf("output = %q", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// The second operand of && must not run when the first is false:
	// indexing out of bounds would error.
	got := run(t, `
func main() {
	var a []int = new [3]int;
	var i int = 5;
	if (i < 3 && a[i] == 0) { print("bad"); } else { print("ok"); }
	if (i >= 3 || a[i] == 0) { print("ok2"); }
	var b bool = i < 3 && a[0] == 0;
	print(b);
}`)
	if got != "ok\nok2\nfalse\n" {
		t.Errorf("output = %q", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	got := run(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() { print(fib(15)); }`)
	if got != "610\n" {
		t.Errorf("fib output = %q", got)
	}
}

func TestArrays(t *testing.T) {
	got := run(t, `
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < len(a); i++) { a[i] = i * i; }
	var s int = 0;
	for (var i int = 0; i < len(a); i++) { s += a[i]; }
	print(s, len(a));
}`)
	if got != "140 8\n" {
		t.Errorf("output = %q", got)
	}
}

func TestLinkedList(t *testing.T) {
	got := run(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 5; i++) {
		var n *Node = new Node;
		n->val = i + 1;
		n->next = head;
		head = n;
	}
	var s int = 0;
	var p *Node = head;
	while (p != nil) {
		s += p->val;
		p = p->next;
	}
	print(s);
}`)
	if got != "15\n" {
		t.Errorf("output = %q", got)
	}
}

func TestStructFieldsAndNestedLoops(t *testing.T) {
	got := run(t, `
struct Point { x float; y float; }
func dist2(p *Point) float { return p->x * p->x + p->y * p->y; }
func main() {
	var ps []*Point = new [4]*Point;
	for (var i int = 0; i < 4; i++) {
		var p *Point = new Point;
		p->x = float(i);
		p->y = float(i) * 2.0;
		ps[i] = p;
	}
	var total float = 0.0;
	for (var i int = 0; i < 4; i++) { total += dist2(ps[i]); }
	print(total);
}`)
	if got != "70\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBuiltins(t *testing.T) {
	got := run(t, `
func main() {
	print(sqrt(9.0), abs(-4), fabs(-1.5), int(3.9), float(2), pow(2.0, 10.0));
}`)
	if got != "3 4 1.5 3 2 1024\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"nil deref", `struct N { v int; } func main() { var p *N = nil; print(p->v); }`, "nil dereference"},
		{"div zero", `func main() { var z int = 0; print(1 / z); }`, "division by zero"},
		{"oob", `func main() { var a []int = new [2]int; a[5] = 1; }`, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := irbuild.Compile("t.mc", c.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			_, err = interp.Run(prog, interp.Config{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestStepBudget(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `func main() { while (true) { } }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = interp.Run(prog, interp.Config{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget error", err)
	}
}

func TestCallByName(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func add(a int, b int) int { return a + b; }
func main() { }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	it := interp.New(prog, interp.Config{})
	v, err := it.CallByName("add", ir.IntVal(20), ir.IntVal(22))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if v.I != 42 {
		t.Errorf("add = %v, want 42", v)
	}
}

func TestBlockCounts(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var s int = 0;
	for (var i int = 0; i < 10; i++) { s += i; }
	print(s);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Config{CountBlocks: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Steps == 0 || len(res.BlockCount) == 0 {
		t.Errorf("expected step and block counts, got %d steps %d blocks", res.Steps, len(res.BlockCount))
	}
}

// traceRecorder counts tracer events.
type traceRecorder struct {
	blocks, loads, stores, calls, rets int
}

func (tr *traceRecorder) OnBlock(_ *interp.Frame, _ *ir.Block)                      { tr.blocks++ }
func (tr *traceRecorder) OnLoad(_ *interp.Frame, _ *ir.Load, _ *ir.Object, _ int)   { tr.loads++ }
func (tr *traceRecorder) OnStore(_ *interp.Frame, _ *ir.Store, _ *ir.Object, _ int) { tr.stores++ }
func (tr *traceRecorder) OnCall(_ *interp.Frame)                                    { tr.calls++ }
func (tr *traceRecorder) OnRet(_ *interp.Frame)                                     { tr.rets++ }

func TestTracerEvents(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func touch(a []int, i int) { a[i] = a[i] + 1; }
func main() {
	var a []int = new [4]int;
	for (var i int = 0; i < 4; i++) { touch(a, i); }
	print(a[3]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	tr := &traceRecorder{}
	if _, err := interp.Run(prog, interp.Config{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.calls != tr.rets {
		t.Errorf("calls %d != rets %d", tr.calls, tr.rets)
	}
	if tr.calls != 5 { // main + 4 touch
		t.Errorf("calls = %d, want 5", tr.calls)
	}
	if tr.loads != 5 || tr.stores != 4 { // 4 loads in touch + 1 in print; 4 stores
		t.Errorf("loads=%d stores=%d, want 5/4", tr.loads, tr.stores)
	}
	if tr.blocks == 0 {
		t.Error("no block events")
	}
}

func TestNoLoopsAnalysisEdge(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `func main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Config{CountBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 2 {
		t.Errorf("steps = %d", res.Steps)
	}
}
