package fleet

import "dca/internal/obs"

// Metrics are the fleet's instruments, registered next to the server's on
// one shared registry so /metrics and /stats cover dispatch and peer-cache
// behaviour without a second scrape target.
type Metrics struct {
	// Dispatches counts batches sent to each worker node (label "node" is
	// bounded by the configured fleet size, within the registry's
	// cardinality policy).
	Dispatches *obs.CounterVec
	// Redispatches counts batches re-routed to a ring successor after
	// their owner failed mid-run.
	Redispatches *obs.Counter
	// NodeRetries counts same-node retries of transient dispatch failures
	// (the attempts between "first failure" and "node suspect").
	NodeRetries *obs.Counter
	// Hedges / HedgeWins count straggler mitigation: batches re-issued to
	// the ring successor after the hedge delay, and the subset where the
	// hedge finished first.
	Hedges    *obs.Counter
	HedgeWins *obs.Counter
	// Probes / ProbeFailures / Rejoins count the health prober's work:
	// /healthz probes of out-of-rotation nodes, the ones that failed, and
	// nodes re-admitted to dispatch rotation.
	Probes        *obs.Counter
	ProbeFailures *obs.Counter
	Rejoins       *obs.Counter
	// FallbackRuns / FallbackLoops count graceful degradation: rounds where
	// no live worker remained and the coordinator analyzed in-process, and
	// the loops those rounds covered.
	FallbackRuns  *obs.Counter
	FallbackLoops *obs.Counter
	// PeerHits / PeerMisses / PeerErrors / PeerWrites count peer
	// verdict-cache traffic: hits served by a ring owner, owner lookups
	// that missed, transport or protocol failures (degraded to local
	// misses), and write-throughs on fresh verdicts.
	PeerHits   *obs.Counter
	PeerMisses *obs.Counter
	PeerErrors *obs.Counter
	PeerWrites *obs.Counter
}

// NewMetrics registers the fleet instruments on reg, plus a ring-size
// gauge sampling the given ring.
func NewMetrics(reg *obs.Registry, ring *Ring) *Metrics {
	m := &Metrics{
		Dispatches: reg.CounterVec("dca_fleet_dispatch_total",
			"Loop batches dispatched, by worker node.", "node"),
		Redispatches: reg.Counter("dca_fleet_redispatch_total",
			"Batches re-routed to a ring successor after a worker failure."),
		NodeRetries: reg.Counter("dca_fleet_node_retries_total",
			"Same-node retries of transient dispatch failures."),
		Hedges: reg.Counter("dca_fleet_hedges_total",
			"Straggling batches re-issued to the ring successor."),
		HedgeWins: reg.Counter("dca_fleet_hedge_wins_total",
			"Hedged dispatches where the hedge finished first."),
		Probes: reg.Counter("dca_fleet_probes_total",
			"Health probes of out-of-rotation nodes."),
		ProbeFailures: reg.Counter("dca_fleet_probe_failures_total",
			"Health probes that failed (node stays out of rotation)."),
		Rejoins: reg.Counter("dca_fleet_rejoins_total",
			"Nodes re-admitted to dispatch rotation."),
		FallbackRuns: reg.Counter("dca_fleet_fallback_runs_total",
			"Dispatch rounds degraded to in-process analysis (no live workers)."),
		FallbackLoops: reg.Counter("dca_fleet_fallback_loops_total",
			"Loops analyzed in-process by the local fallback."),
		PeerHits: reg.Counter("dca_fleet_peer_hits_total",
			"Peer verdict-cache lookups served by a ring owner."),
		PeerMisses: reg.Counter("dca_fleet_peer_misses_total",
			"Peer verdict-cache lookups the ring owner missed too."),
		PeerErrors: reg.Counter("dca_fleet_peer_errors_total",
			"Peer verdict-cache requests that failed (degraded to local misses)."),
		PeerWrites: reg.Counter("dca_fleet_peer_writes_total",
			"Fresh verdicts written through to their ring owner."),
	}
	reg.GaugeFunc("dca_fleet_ring_nodes",
		"Distinct nodes on the consistent-hash ring.",
		func() float64 { return float64(ring.Size()) })
	return m
}

// RegisterMembership adds the node-state gauges, sampling ms live: one
// gauge per lifecycle state, so `live + suspect + dead + probing == ring
// size` holds at every scrape.
func RegisterMembership(reg *obs.Registry, ms *Membership) {
	sample := func(s NodeState) func() float64 {
		return func() float64 { return float64(ms.Counts()[s]) }
	}
	reg.GaugeFunc("dca_fleet_nodes_live",
		"Fleet nodes in dispatch rotation.", sample(NodeLive))
	reg.GaugeFunc("dca_fleet_nodes_suspect",
		"Fleet nodes out of rotation after dispatch failures, awaiting probe.", sample(NodeSuspect))
	reg.GaugeFunc("dca_fleet_nodes_dead",
		"Fleet nodes that also failed health probes (backoff doubling).", sample(NodeDead))
	reg.GaugeFunc("dca_fleet_nodes_probing",
		"Fleet nodes with a health probe in flight.", sample(NodeProbing))
}
