// Package fingerprint computes the content-addressed key of one loop's
// dynamic-stage analysis: a canonical 128-bit structural fingerprint over
// every input that can influence the verdict, and nothing else. It extends
// the injective token-walk construction of internal/dcart's snapshot digest
// (two decorrelated 64-bit hash lanes fed length-delimited tokens) from
// heap value graphs to analysis inputs.
//
// # What is in the key
//
//   - The whole program IR, structurally (function signatures, locals,
//     blocks, instructions, struct layouts). The dynamic stage executes the
//     entire program — the golden run and every replay — so a change in any
//     function can change how often the loop runs, the values its payload
//     sees, and therefore the verdict. Per-loop keys that covered only the
//     loop body would be unsound.
//   - The target loop (function name + loop index).
//   - The static stage's outputs for the loop: the outlined payload IR, the
//     iterator value slice, the environment (live-in/loop-carried) fields,
//     and the live-out set rt_verify snapshots. These are derivable from
//     the program walk, but hashing them directly anchors the invalidation
//     contract: any change to what the dynamic stage replays or verifies
//     changes the key.
//   - The schedule set (count and per-schedule identity, including random
//     seeds) — the evidence the verdict rests on.
//   - The sandbox limits (steps, heap, output, wall clock), the retry
//     budget, and the snapshot-debugging mode: they decide whether a run
//     degrades to ResourceExhausted and how divergence reasons render.
//
// # What is not in the key
//
// Source positions, file names, comments, and formatting — the walk reads
// the IR's structural serialization, which carries none of them — and every
// knob that cannot reach a verdict (worker counts, prescreen mode, cache
// configuration, output format).
//
// Version is hashed into every key, so a change to the walk itself
// invalidates all previously stored fingerprints.
package fingerprint

import (
	"fmt"
	"math/bits"

	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/ir"
	"dca/internal/sandbox"
)

// Version is the fingerprint schema version. Bump it whenever the token
// walk changes (new tokens, reordered fields, different serialization), so
// stale keys can never alias fresh ones.
const Version = 3

// Key is a 128-bit loop-analysis fingerprint.
type Key struct{ Hi, Lo uint64 }

// String renders the key as 32 hex digits — the form used as a cache key
// and an on-disk shard/file name.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }

// Inputs bundles the dynamic-stage configuration that participates in a
// loop's fingerprint.
type Inputs struct {
	// Schedules is the permutation set the verdict is tested against.
	Schedules []dcart.Schedule
	// Limits are the per-execution sandbox budgets.
	Limits sandbox.Limits
	// Retries is the doubled-budget retry count for budget/timeout traps.
	Retries int
	// DebugSnapshots selects the string-snapshot mode, which changes how
	// live-out divergence reasons are rendered.
	DebugSnapshots bool
	// StopAfter is the sequential stopping rule (0 = off): it bounds which
	// schedules are actually tested, so it can reach the verdict.
	StopAfter int
	// NoFootprint disables the footprint fast path, which otherwise decides
	// whether replays run at all (and the verdict's provenance).
	NoFootprint bool
	// NoProve disables the static commutativity prover, which otherwise
	// decides whether the dynamic stage runs at all (and the verdict's
	// provenance).
	NoProve bool
}

// Token tags. Every composite token is count- or length-prefixed, so the
// stream is injective: no two distinct walks produce the same token
// sequence.
const (
	tagVersion = iota + 1
	tagProgram
	tagStruct
	tagFunc
	tagParam
	tagResult
	tagLocal
	tagBlock
	tagInstr
	tagTerm
	tagTarget
	tagPayload
	tagIter
	tagEnv
	tagLiveOut
	tagSchedule
	tagLimits
	tagEnd
	// tagRun sits after tagEnd so introducing the run-level fingerprint did
	// not renumber the loop-key tags (which would have invalidated every
	// stored loop key without a Version bump).
	tagRun
	// tagRoute keys the fleet's dispatch routing (Router): a cheap
	// program+target fingerprint with no static-stage or schedule sections.
	// Like tagRun it sits past tagEnd so it cannot alias the loop-key walk.
	tagRoute
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	mixSeed   = 0x9e3779b97f4a7c15 // golden-ratio increment (splitmix64)
	mixPrime  = 0xff51afd7ed558ccd // fmix64 multiplier (murmur3)
)

// hasher streams 64-bit words into two independently-mixed lanes — the same
// construction as dcart's snapshot digest: lane lo is FNV-1a, lane hi is a
// rotate-multiply over a premixed word.
type hasher struct{ hi, lo uint64 }

func newHasher() hasher { return hasher{hi: mixSeed, lo: fnvOffset} }

func (h *hasher) word(x uint64) {
	h.lo = (h.lo ^ x) * fnvPrime
	h.hi = bits.RotateLeft64(h.hi^(x*mixPrime), 31) * mixSeed
}

// str hashes a length-prefixed string, eight bytes per word.
func (h *hasher) str(s string) {
	h.word(uint64(len(s)))
	for len(s) >= 8 {
		h.word(uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56)
		s = s[8:]
	}
	if len(s) > 0 {
		var last uint64
		for i := 0; i < len(s); i++ {
			last |= uint64(s[i]) << (8 * uint(i))
		}
		h.word(last)
	}
}

// fn walks one function structurally: signature, locals, and every block's
// instructions and terminator in their canonical printed form. The printed
// form carries no source positions, so reformatting a source file leaves
// the walk unchanged.
func (h *hasher) fn(f *ir.Func) {
	h.word(tagFunc)
	h.str(f.Name)
	h.word(uint64(len(f.Params)))
	for _, p := range f.Params {
		h.word(tagParam)
		h.str(p.Name)
		h.str(p.Type.String())
	}
	h.word(tagResult)
	if f.Result != nil {
		h.str(f.Result.String())
	} else {
		h.str("")
	}
	h.word(uint64(len(f.Locals)))
	for _, l := range f.Locals {
		h.word(tagLocal)
		h.str(l.Name)
		h.str(l.Type.String())
	}
	h.word(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.word(tagBlock)
		h.str(b.Name)
		h.word(uint64(len(b.Instrs)))
		for _, in := range b.Instrs {
			h.word(tagInstr)
			h.str(in.String())
		}
		h.word(tagTerm)
		if b.Term != nil {
			h.str(b.Term.String())
		} else {
			h.str("")
		}
	}
	h.word(tagEnd)
}

// program walks every function and struct layout of a program.
func (h *hasher) program(p *ir.Program) {
	h.word(tagProgram)
	h.word(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		h.fn(f)
	}
	// Struct layouts in sorted-name order: field names and types decide
	// load/store semantics and snapshot shapes.
	names := make([]string, 0, len(p.Structs))
	for name := range p.Structs {
		names = append(names, name)
	}
	sortStrings(names)
	h.word(uint64(len(names)))
	for _, name := range names {
		si := p.Structs[name]
		h.word(tagStruct)
		h.str(name)
		h.word(uint64(len(si.Fields)))
		for _, fld := range si.Fields {
			h.str(fld.Name)
			h.str(fld.Type.String())
		}
	}
	h.word(tagEnd)
}

// sortStrings is an allocation-free insertion sort; struct maps are small.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Loop fingerprints one loop analysis: the program under test, the target
// loop, its static-stage outputs, and the dynamic-stage configuration.
// Equal keys mean the dynamic stage would run byte-identically; any change
// to an input that can reach the verdict yields a different key (up to hash
// collisions, ~2^-128 for non-adversarial inputs).
func Loop(prog *ir.Program, fnName string, loopIndex int, inst *instrument.Instrumented, in Inputs) Key {
	h := newHasher()
	h.word(tagVersion)
	h.word(Version)

	h.program(prog)

	h.word(tagTarget)
	h.str(fnName)
	h.word(uint64(loopIndex))

	// Static-stage outputs: the outlined payload the replays execute, the
	// iterator slice it consumes, the environment it shares, and the
	// live-out roots rt_verify snapshots.
	h.word(tagPayload)
	h.fn(inst.Payload.Payload)
	h.word(tagIter)
	h.word(uint64(len(inst.Payload.IterParams)))
	for _, p := range inst.Payload.IterParams {
		h.str(p.Name)
		h.str(p.Type.String())
	}
	h.word(tagEnv)
	h.word(uint64(len(inst.Payload.EnvType.Fields)))
	for _, fld := range inst.Payload.EnvType.Fields {
		h.str(fld.Name)
		h.str(fld.Type.String())
	}
	h.word(tagLiveOut)
	h.word(uint64(len(inst.LiveOut)))
	for _, l := range inst.LiveOut {
		h.str(l.Name)
		h.str(l.Type.String())
	}

	h.word(tagSchedule)
	h.word(uint64(len(in.Schedules)))
	for _, s := range in.Schedules {
		h.str(s.Name())
	}

	h.word(tagLimits)
	h.word(uint64(in.Limits.MaxSteps))
	h.word(uint64(in.Limits.MaxHeapObjects))
	h.word(uint64(in.Limits.MaxOutput))
	h.word(uint64(in.Limits.Timeout))
	h.word(uint64(in.Retries))
	if in.DebugSnapshots {
		h.word(1)
	} else {
		h.word(0)
	}
	h.word(uint64(in.StopAfter))
	if in.NoFootprint {
		h.word(1)
	} else {
		h.word(0)
	}
	if in.NoProve {
		h.word(1)
	} else {
		h.word(0)
	}
	h.word(tagEnd)
	return Key{Hi: h.hi, Lo: h.lo}
}

// Router issues per-loop routing keys for the analysis fleet: stable
// identifiers the coordinator hashes onto its consistent-hash ring to pick
// each loop's worker. A routing key covers the whole program and the target
// loop — everything that identifies "this loop of this program" — but none
// of the static-stage outputs or dynamic-stage knobs a cache key needs,
// because the coordinator routes before any static stage has run. The
// program walk is hashed once at construction; Route then costs two words
// per loop, so routing a thousand-loop program is O(program + loops), not
// O(program × loops).
//
// Routing keys and cache keys live in different namespaces (tagRoute vs the
// loop-key walk) and are never stored: equal routing keys only ever mean
// "same ring owner".
type Router struct{ base hasher }

// NewRouter hashes prog's structural walk once, ready to issue Route keys.
func NewRouter(prog *ir.Program) *Router {
	h := newHasher()
	h.word(tagVersion)
	h.word(Version)
	h.word(tagRoute)
	h.program(prog)
	return &Router{base: h}
}

// Route returns the routing key for one loop of the program. The base
// hasher is copied by value, so a Router is safe for concurrent use.
func (r *Router) Route(fnName string, loopIndex int) Key {
	h := r.base
	h.word(tagTarget)
	h.str(fnName)
	h.word(uint64(loopIndex))
	h.word(tagEnd)
	return Key{Hi: h.hi, Lo: h.lo}
}

// Run fingerprints a whole analysis run: the program under test plus the
// verdict-reaching configuration, without any per-loop sections. It keys
// the write-ahead run journal — two runs with equal keys analyze the same
// loops under the same configuration, so journaled verdicts from one are
// valid answers in the other. Knobs that cannot change a verdict (worker
// count, prescreen mode, cache configuration) are deliberately absent, so
// a resume may change them freely.
func Run(prog *ir.Program, in Inputs) Key {
	h := newHasher()
	h.word(tagVersion)
	h.word(Version)
	h.word(tagRun)

	h.program(prog)

	h.word(tagSchedule)
	h.word(uint64(len(in.Schedules)))
	for _, s := range in.Schedules {
		h.str(s.Name())
	}

	h.word(tagLimits)
	h.word(uint64(in.Limits.MaxSteps))
	h.word(uint64(in.Limits.MaxHeapObjects))
	h.word(uint64(in.Limits.MaxOutput))
	h.word(uint64(in.Limits.Timeout))
	h.word(uint64(in.Retries))
	if in.DebugSnapshots {
		h.word(1)
	} else {
		h.word(0)
	}
	h.word(uint64(in.StopAfter))
	if in.NoFootprint {
		h.word(1)
	} else {
		h.word(0)
	}
	if in.NoProve {
		h.word(1)
	} else {
		h.word(0)
	}
	h.word(tagEnd)
	return Key{Hi: h.hi, Lo: h.lo}
}
