package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dca/internal/dcart"
	"dca/internal/fuzzgen/diff"
)

// cmdFuzz runs a differential fuzzing campaign: Count programs generated
// from consecutive seeds, each pushed through DCA, the parallel oracle, and
// (by default) the five baseline detectors, with ground-truth labels
// cross-checked throughout. Soundness violations, mislabeled productions,
// and parallel-vs-sequential divergences are minimized, written to the
// corpus, and fail the command.
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "campaign seed; program i uses seed+i (0 is a valid fixed seed — never derived from the clock)")
	count := fs.Int("count", 1000, "number of programs to generate and check")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "concurrent program checks")
	schedules := fs.Int("schedules", 2, "number of random permutation schedules (plus reverse)")
	timeout := fs.Duration("timeout", 5*time.Second, "wall-clock limit per execution")
	maxSteps := fs.Int64("max-steps", 2_000_000, "instruction budget per execution")
	wall := fs.Duration("wall", 0, "campaign wall-clock cap; stop dispatching when exceeded (0 = none)")
	corpusDir := fs.String("corpus", "internal/fuzzgen/corpus", "directory for minimized counterexamples (empty = don't persist)")
	noBaselines := fs.Bool("no-baselines", false, "skip the five baseline detectors (faster; loses precision deltas)")
	parWorkers := fs.String("par-workers", "2", "comma-separated worker counts for the parallel oracle")
	benchOut := fs.String("bench-out", "", "write campaign stats as JSON to this file (BENCH_fuzz.json shape)")
	verbose := fs.Bool("v", false, "print the full label/verdict confusion matrix and baseline table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz: unexpected arguments %q", fs.Args())
	}
	workers, err := parseWorkerList(*parWorkers)
	if err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	scheds := []dcart.Schedule{dcart.Reverse{}}
	for i := 0; i < *schedules; i++ {
		scheds = append(scheds, dcart.Random{Seed: int64(i + 1)})
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stats, failures, err := diff.RunCampaign(ctx, diff.CampaignOptions{
		Seed:  *seed,
		Count: *count,
		Jobs:  *jobs,
		Wall:  *wall,
		Check: diff.Options{
			Schedules:  scheds,
			MaxSteps:   *maxSteps,
			Timeout:    *timeout,
			ParWorkers: workers,
			Baselines:  !*noBaselines,
		},
		CorpusDir: *corpusDir,
		Log:       os.Stderr,
	})
	if err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	printFuzzSummary(stats, *verbose)
	if *benchOut != "" {
		data, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("fuzz: write bench stats: %w", err)
		}
		fmt.Fprintf(os.Stderr, "dca fuzz: wrote %s\n", *benchOut)
	}
	if n := stats.ViolationCount(); n > 0 {
		return fmt.Errorf("fuzz: %d violations (%d soundness, %d label, %d parallel-divergence) across %d failures — see repro lines above",
			n, stats.SoundnessViolations, stats.LabelViolations, stats.ParallelDivergences, len(failures))
	}
	return nil
}

// parseWorkerList parses "1,2,8" into worker counts.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -par-workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-par-workers is empty")
	}
	return out, nil
}

func printFuzzSummary(s *diff.Stats, verbose bool) {
	done := s.Completed + s.Trapped
	fmt.Printf("== dca fuzz (seed %d) ==\n", s.CampaignSeed)
	fmt.Printf("programs: %d checked of %d requested (%.1f/sec), %d trapped (%.1f%%)\n",
		done, s.Requested, s.ProgramsPerSec, s.Trapped, 100*s.TrapRate)
	if len(s.TrapKinds) > 0 {
		fmt.Printf("traps: %s\n", sortedCounts(s.TrapKinds))
	}
	fmt.Printf("verdicts: %s\n", sortedCounts(s.Verdicts))
	fmt.Printf("labeled loops: %s\n", sortedCounts(s.Labels))
	fmt.Printf("parallel oracle: %d loops checked, %d refused\n", s.ParallelChecked, s.ParallelRefused)
	fmt.Printf("prover: %d loops static-proved (each cross-checked dynamically)\n", s.ProvedLoops)
	fmt.Printf("violations: %d soundness, %d label, %d parallel-divergence, %d exec-divergence, %d prover-divergence\n",
		s.SoundnessViolations, s.LabelViolations, s.ParallelDivergences, s.ExecDivergences, s.ProverDivergences)
	if verbose {
		fmt.Printf("label/verdict: %s\n", sortedCounts(s.LabelVerdicts))
		names := make([]string, 0, len(s.Baselines))
		for name := range s.Baselines {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := s.Baselines[name]
			fmt.Printf("baseline %-9s parallel on %d/%d commutative, %d/%d non-commutative (over-claims)\n",
				name+":", b.OnCommutative, b.LabeledCommutative, b.OnNonCommutative, b.LabeledNonCommutative)
		}
	}
	if s.WallCapped {
		fmt.Println("note: wall-clock cap hit before the full count")
	}
}

// sortedCounts renders a count map deterministically: "a=1 b=2".
func sortedCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}
