// Package journal is the write-ahead run journal that makes long analysis
// suites durable: one checksummed record per completed loop verdict,
// appended as the suite runs, so a crash, OOM-kill, or SIGKILL throws away
// at most the tail the kernel had not yet accepted — never the completed
// work. `dca analyze -journal run.wal -resume` replays the journal, skips
// every already-verdicted loop, and continues exactly where the previous
// process died.
//
// # Format
//
// The journal is line-oriented: every line is
//
//	<8-hex CRC32C> <JSON payload>\n
//
// with the checksum taken over the JSON bytes. Line one is the header — the
// container format version, the caller's record-schema version, and the
// run key (the program-plus-configuration fingerprint from
// internal/fingerprint) — and every following line is one Record. The
// framing makes replay torn-tail tolerant: recovery scans lines in order
// and stops at the first one that is incomplete, fails its checksum, or
// does not parse; everything before that point is intact by construction,
// everything after is discarded and truncated away before appending
// resumes.
//
// # Durability policy
//
// Append writes each record through to the operating system immediately
// (no user-space buffering), so a process death — however violent — loses
// nothing that Append already accepted. fsync is batched: every
// Options.SyncEvery records and on Close, bounding what a machine crash
// can lose to the last unsynced batch.
//
// # Recovery semantics
//
// Open in resume mode validates the header before trusting any record: a
// journal written by a different program, configuration, format version,
// or record-schema version is discarded wholesale (reported in
// Recovery.Discarded) and the run starts fresh — a stale journal can
// degrade to recomputation, never to wrong verdicts. The storage runs on
// chaos.FS, so every one of these claims is exercised by fault-injection
// tests rather than assumed.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"dca/internal/chaos"
)

// FormatVersion is the journal container format. Bump it when the framing
// or header layout changes; older journals are then discarded on open.
const FormatVersion = 1

// DefaultSyncEvery is the default fsync batch size.
const DefaultSyncEvery = 8

// Record is one journaled loop verdict. Fn and Index identify the loop
// within the analyzed program; Data is the serialized verdict record in the
// caller's schema (core.EncodeLoopRecord), opaque to the journal.
type Record struct {
	Fn    string          `json:"fn"`
	Index int             `json:"index"`
	Data  json.RawMessage `json:"data"`
}

// header is the journal's first line.
type header struct {
	Magic   string `json:"magic"`
	Format  int    `json:"format"`
	Version uint32 `json:"version"` // caller's record-schema version
	Run     string `json:"run"`     // program+configuration fingerprint
}

const magic = "dcawal"

// Options tunes a journal.
type Options struct {
	// Version is the caller's record-schema version (core.CacheRecordVersion
	// for verdict records). Journals written under a different version are
	// discarded on open, never decoded.
	Version uint32
	// SyncEvery is the fsync batch size: the journal fsyncs after this many
	// appends and on Close (<= 0 means DefaultSyncEvery; 1 syncs every
	// record).
	SyncEvery int
	// Resume replays an existing journal with a matching header instead of
	// discarding it.
	Resume bool
	// FS is the filesystem the journal runs on (nil means the real one).
	FS chaos.FS
}

// Recovery describes what Open found in an existing journal file.
type Recovery struct {
	// Records are the valid records replayed from a matching previous run,
	// in append order. Nil unless Options.Resume was set.
	Records []Record
	// Discarded is non-empty when an existing journal was thrown away, and
	// says why (header mismatch, unreadable header, resume off).
	Discarded string
	// TornBytes counts trailing bytes dropped as a torn tail.
	TornBytes int64
}

// Journal is an append-only run journal. Append is safe for concurrent use
// — analysis workers complete loops in nondeterministic order. Write errors
// are sticky: after the first one the journal drops further records and
// reports the error from Err and Close, so a dying disk degrades the run to
// non-resumable instead of killing it.
type Journal struct {
	path string

	mu       sync.Mutex
	f        chaos.File
	pending  int // appends since the last fsync
	appended int
	sync     int
	err      error
}

// Open creates or resumes the journal at path for the given run key.
// With opt.Resume set, an existing journal with a matching header has its
// valid record prefix replayed into the Recovery and is appended to; any
// torn tail is truncated first. Without Resume — or on any header mismatch
// — an existing file is discarded and a fresh journal is started.
func Open(path string, runKey string, opt Options) (*Journal, *Recovery, error) {
	fsys := opt.FS
	if fsys == nil {
		fsys = chaos.OS{}
	}
	syncEvery := opt.SyncEvery
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}

	rec := &Recovery{}
	validLen := int64(0)
	data, readErr := fsys.ReadFile(path)
	exists := readErr == nil
	if exists && len(data) > 0 {
		hdr, records, valid := scan(data)
		switch {
		case !opt.Resume:
			rec.Discarded = "resume not requested"
		case hdr == nil:
			rec.Discarded = "unreadable journal header"
		case hdr.Magic != magic || hdr.Format != FormatVersion:
			rec.Discarded = fmt.Sprintf("journal format %d, want %d", hdr.Format, FormatVersion)
		case hdr.Version != opt.Version:
			rec.Discarded = fmt.Sprintf("record schema version %d, want %d", hdr.Version, opt.Version)
		case hdr.Run != runKey:
			rec.Discarded = "journal belongs to a different program or configuration"
		default:
			rec.Records = records
			rec.TornBytes = int64(len(data)) - valid
			validLen = valid
		}
	}

	// O_APPEND places every write at the current end of file, so after the
	// truncation below new records land exactly after the valid prefix — no
	// seek, which chaos.File deliberately does not offer.
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	// Cut the file back to its valid prefix — the torn tail on resume,
	// everything on a fresh start — before any new bytes land after it.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate %s: %w", path, err)
	}

	j := &Journal{path: path, f: f, sync: syncEvery}
	if validLen == 0 {
		hdr := header{Magic: magic, Format: FormatVersion, Version: opt.Version, Run: runKey}
		if err := j.writeLine(hdr, true); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: write header: %w", err)
		}
	}
	return j, rec, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append journals one completed loop verdict. The record reaches the
// operating system before Append returns; it reaches stable storage at the
// next batch fsync. After the first write error the journal is dead:
// further appends are dropped and the error is reported from Err.
func (j *Journal) Append(fn string, index int, data []byte) error {
	rec := Record{Fn: fn, Index: index, Data: json.RawMessage(data)}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.writeLineLocked(rec, false); err != nil {
		return err
	}
	j.appended++
	return nil
}

// Appended returns how many records this process has journaled (recovered
// records are not counted).
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Err returns the journal's sticky write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync forces an fsync of everything appended so far.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close fsyncs and closes the journal. The first sticky write error, if
// any, is returned in preference to close errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	serr := j.syncLocked()
	cerr := j.f.Close()
	j.f = nil
	switch {
	case j.err != nil:
		return j.err
	case serr != nil:
		return serr
	default:
		return cerr
	}
}

func (j *Journal) writeLine(v any, forceSync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeLineLocked(v, forceSync)
}

func (j *Journal) writeLineLocked(v any, forceSync bool) error {
	payload, err := json.Marshal(v)
	if err != nil {
		// Records are plain structs; this cannot happen, but a marshal bug
		// must not be silently dropped.
		j.fail(fmt.Errorf("journal: marshal: %w", err))
		return j.err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.fail(fmt.Errorf("journal: write: %w", err))
		return j.err
	}
	j.pending++
	if forceSync || j.pending >= j.sync {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if j.err != nil || j.f == nil || j.pending == 0 {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.fail(fmt.Errorf("journal: sync: %w", err))
		return j.err
	}
	j.pending = 0
	return nil
}

// fail records the first write error; the journal is dead from here on.
func (j *Journal) fail(err error) {
	if j.err == nil {
		j.err = err
	}
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// scan parses a journal image into its header, valid records, and the byte
// length of the valid prefix. It stops at the first torn, corrupt, or
// unparsable line; nothing after that point is trusted.
func scan(data []byte) (hdr *header, records []Record, validLen int64) {
	off := int64(0)
	first := true
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn final line: no terminator reached the disk
		}
		line := data[:nl]
		payload, ok := checkLine(line)
		if !ok {
			break
		}
		if first {
			var h header
			if json.Unmarshal(payload, &h) != nil {
				break
			}
			hdr = &h
			first = false
		} else {
			var r Record
			if json.Unmarshal(payload, &r) != nil {
				break
			}
			records = append(records, r)
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return hdr, records, off
}

// checkLine validates one "crc payload" line and returns the payload.
func checkLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, false
	}
	return payload, true
}
