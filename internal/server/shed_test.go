package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"dca/internal/obs"
)

// TestShedDraining: a request arriving during the drain window is shed with
// 503 + Retry-After before its body is read, and counted by reason. The
// jitter source is pinned so the header is exact: base (7s drain timeout)
// plus the injected 3.
func TestShedDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, DrainTimeout: 7 * time.Second,
		RetryJitter: func(max int64) int64 { return 3 },
	})
	s.beginDrain()
	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "10" {
		t.Errorf("Retry-After = %q, want %q (drain timeout 7 + jitter 3)", ra, "10")
	}
	if got := s.shed.Value(shedDraining); got != 1 {
		t.Errorf("shed draining = %d, want 1", got)
	}
	if got := s.outcomes.Value(outcomeRejected); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestShedRetryAfterJitter: shed responses spread their Retry-After hints
// across [base, 2*base) instead of synchronizing every turned-away client
// (and every fleet coordinator re-dispatch) onto one retry instant. The
// default jitter source must actually vary; each observed value must stay
// inside the window.
func TestShedRetryAfterJitter(t *testing.T) {
	const base = 20 // QueueTimeout in seconds; window is [20, 40)
	s, ts := newTestServer(t, Config{Workers: 1, QueueTimeout: base * time.Second})
	s.beginDrain() // draining sheds use the same jittered path; DrainTimeout defaults to 15s
	s.cfg.DrainTimeout = base * time.Second

	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
		}
		ra := resp.Header.Get("Retry-After")
		var secs int64
		if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil {
			t.Fatalf("unparsable Retry-After %q: %v", ra, err)
		}
		if secs < base || secs >= 2*base {
			t.Fatalf("Retry-After %d outside jitter window [%d, %d)", secs, base, 2*base)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 shed responses produced %d distinct Retry-After values; jitter is not spreading retries", len(seen))
	}
}

// TestShedQueueFull: once waiting requests fill the queue watermark, the
// next arrival is shed immediately — and the queued ones still complete
// when capacity frees up.
func TestShedQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 30 * time.Second,
	})
	// Hold the only analysis slot so admitted requests queue behind it.
	s.sem <- struct{}{}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until both are admitted (1 queued + 1 counted against the
	// occupied slot), then the watermark (MaxConcurrent+MaxQueue = 2) is
	// full and a third arrival must shed.
	deadline := time.Now().Add(10 * time.Second)
	for s.admitted.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted = %d, want 2", s.admitted.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-watermark status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.shed.Value(shedQueueFull); got != 1 {
		t.Errorf("shed queue_full = %d, want 1", got)
	}

	// Free the slot: both queued requests must drain to 200.
	<-s.sem
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("queued request %d finished %d, want 200", i, code)
		}
	}
}

// TestShedQueueTimeout: a request that cannot get a slot within
// QueueTimeout is shed instead of waiting forever.
func TestShedQueueTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 50 * time.Millisecond,
	})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Errorf("shed after %v, before the queue timeout", waited)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.shed.Value(shedQueueTimeout); got != 1 {
		t.Errorf("shed queue_timeout = %d, want 1", got)
	}
}

// TestDrainCompletesAdmittedWork: a request already in flight when the
// drain begins runs to completion — 200, full verdict trail in the trace —
// while arrivals during the drain are shed. This is the SIGTERM contract:
// stop taking work, finish what was promised.
func TestDrainCompletesAdmittedWork(t *testing.T) {
	col := &obs.Collector{}
	var s *Server
	var once sync.Once
	sink := obs.Multi{col, obs.SinkFunc(func(ev obs.Event) {
		if ev.Stage == obs.StageGolden {
			once.Do(func() { s.beginDrain() }) // SIGTERM lands mid-analysis
		}
	})}
	srv, hts := newTestServer(t, Config{Workers: 2, Trace: sink})
	s = srv

	// Two loops: the drain begins during the first loop's golden run, so
	// the second loop's entire dynamic stage runs inside the drain window.
	const drainSrc = `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = i * 7; }
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s = s + a[i]; }
	print(s);
}`
	resp, body := postAnalyze(t, hts.URL, AnalyzeRequest{Source: drainSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished %d during drain, want 200: %s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if len(rep.Loops) == 0 {
		t.Fatal("drained request returned an empty report")
	}
	verdicts := 0
	for _, ev := range col.Events() {
		if ev.Stage == obs.StageVerdict {
			verdicts++
			if ev.Verdict == "cancelled" {
				t.Errorf("loop %s/%s cancelled by drain; admitted work must finish", ev.Fn, ev.LoopID)
			}
		}
	}
	if verdicts != len(rep.Loops) {
		t.Errorf("trace has %d verdict events for %d loops", verdicts, len(rep.Loops))
	}

	// The drain is on: the next arrival is shed.
	resp2, _ := postAnalyze(t, hts.URL, AnalyzeRequest{Source: testSrc})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during-drain arrival got %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("during-drain shed missing Retry-After")
	}
}
