package parallel_test

import (
	goast "go/ast"
	goparser "go/parser"
	gotoken "go/token"
	"strconv"
	"strings"
	"testing"

	"dca/internal/core"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/irbuild"
	"dca/internal/parallel"
	"dca/internal/sandbox"
)

// exampleSources are the example programs that embed their MiniC source as
// a `const src` string literal; the table test below extracts those
// literals so the examples stay the single source of truth.
var exampleSources = []string{
	"../../examples/quickstart/main.go",
	"../../examples/linkedlist/main.go",
	"../../examples/skeletons/main.go",
}

// extractSrc pulls the `const src = ...` MiniC literal out of an example's
// Go source with the standard parser.
func extractSrc(t *testing.T, path string) string {
	t.Helper()
	fset := gotoken.NewFileSet()
	file, err := goparser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*goast.GenDecl)
		if !ok || gd.Tok != gotoken.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*goast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "src" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*goast.BasicLit)
				if !ok || lit.Kind != gotoken.STRING {
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquoting src literal in %s: %v", path, err)
				}
				return s
			}
		}
	}
	t.Fatalf("%s has no `const src` string literal", path)
	return ""
}

// TestExamplesParallelOutputIdentity: for every loop DCA finds commutative
// in the embedded example programs, running that loop through the parallel
// executor at 1, 2, and 8 workers must reproduce the sequential output
// byte for byte. Loops the executor refuses (unprivatizable env, e.g. a
// max accumulator) are skipped, not failed — refusal is the executor's
// soundness mechanism, and the test asserts the campaign still exercised
// at least one loop per example.
func TestExamplesParallelOutputIdentity(t *testing.T) {
	for _, path := range exampleSources {
		path := path
		name := strings.TrimSuffix(strings.TrimPrefix(path, "../../examples/"), "/main.go")
		t.Run(name, func(t *testing.T) {
			src := extractSrc(t, path)
			prog, err := irbuild.Compile(name+".mc", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var ref strings.Builder
			if oc := sandbox.Run(nil, prog, interp.Config{Out: &ref}, sandbox.Limits{MaxSteps: 50_000_000}, nil); !oc.OK() {
				t.Fatalf("sequential reference run: %v", oc.Trap)
			}
			rep, err := core.Analyze(prog, core.Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			checked := 0
			for _, l := range rep.Loops {
				if l.Verdict != core.Commutative {
					continue
				}
				inst, err := instrument.Loop(prog, l.Fn, l.Index)
				if err != nil {
					t.Fatalf("%s/L%d: instrument: %v", l.Fn, l.Index, err)
				}
				refused := false
				for _, workers := range []int{1, 2, 8} {
					var buf strings.Builder
					if _, err := parallel.RunLoop(inst, parallel.Options{Workers: workers, Out: &buf}); err != nil {
						t.Logf("%s/L%d: executor refused (workers=%d): %v", l.Fn, l.Index, workers, err)
						refused = true
						break
					}
					if buf.String() != ref.String() {
						t.Errorf("%s/L%d workers=%d: output diverged from sequential:\n%q\nvs\n%q",
							l.Fn, l.Index, workers, buf.String(), ref.String())
					}
				}
				if !refused {
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no commutative loop ran through the parallel executor — the identity check never fired")
			}
		})
	}
}

// TestExamplesParallelSurvivesWorkerFault: an injected single-trip worker
// fault on an example loop must surface as a structured error — never a
// hang, never silent corruption — and an immediately following clean run
// must still match the sequential output exactly.
func TestExamplesParallelSurvivesWorkerFault(t *testing.T) {
	for _, path := range exampleSources {
		path := path
		name := strings.TrimSuffix(strings.TrimPrefix(path, "../../examples/"), "/main.go")
		t.Run(name, func(t *testing.T) {
			src := extractSrc(t, path)
			prog, err := irbuild.Compile(name+".mc", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var ref strings.Builder
			if oc := sandbox.Run(nil, prog, interp.Config{Out: &ref}, sandbox.Limits{MaxSteps: 50_000_000}, nil); !oc.OK() {
				t.Fatalf("sequential reference run: %v", oc.Trap)
			}
			rep, err := core.Analyze(prog, core.Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			for _, l := range rep.Loops {
				if l.Verdict != core.Commutative {
					continue
				}
				inst, err := instrument.Loop(prog, l.Fn, l.Index)
				if err != nil {
					continue
				}
				// Establish that the loop parallelizes cleanly at all before
				// injecting; refusals are skipped as in the identity test.
				var clean strings.Builder
				if _, err := parallel.RunLoop(inst, parallel.Options{Workers: 2, Out: &clean}); err != nil {
					continue
				}
				if _, err := parallel.RunLoop(inst, parallel.Options{
					Workers: 2,
					Out:     &strings.Builder{},
					Inject:  sandbox.NewInjector(sandbox.Inject{AtStep: 40, Kind: sandbox.Fault, MaxTrips: 1}),
				}); err == nil {
					t.Errorf("%s/L%d: injected worker fault was not reported", l.Fn, l.Index)
				}
				var after strings.Builder
				if _, err := parallel.RunLoop(inst, parallel.Options{Workers: 8, Out: &after}); err != nil {
					t.Fatalf("%s/L%d: clean run after fault: %v", l.Fn, l.Index, err)
				}
				if after.String() != ref.String() {
					t.Errorf("%s/L%d: post-fault run diverged from sequential:\n%q\nvs\n%q",
						l.Fn, l.Index, after.String(), ref.String())
				}
				return // one faulted loop per example is enough
			}
			t.Skip("no parallelizable loop to fault-inject")
		})
	}
}
