package fleet

import (
	"context"
	"sync"
	"time"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/engine"
	"dca/internal/ir"
	"dca/internal/obs"
)

// LocalAnalyzer analyzes a batch of loops in-process — the coordinator's
// graceful-degradation path when no live worker remains. It returns one
// row per requested loop with provenance preserved exactly as a worker
// would have reported it (computed, cached, proved…), so fallback rows
// merge indistinguishably from dispatched ones. onLoop, when non-nil,
// receives every row as it completes.
type LocalAnalyzer func(ctx context.Context, prog *ir.Program, knobs Knobs, refs []LoopRef, onLoop func(core.LoopJSON)) (map[LoopRef]core.LoopJSON, error)

// LocalConfig mirrors a worker's execution ceilings for the in-process
// fallback, so a loop analyzed locally runs under exactly the
// configuration its ring owner would have used — which is what keeps the
// degraded report byte-identical to a healthy fleet's.
type LocalConfig struct {
	// Pool shares a worker budget with the embedding server; nil runs on
	// Workers dedicated goroutines (<= 0 means GOMAXPROCS).
	Pool    *engine.Pool
	Workers int
	// Schedules is the schedule-count ceiling (<= 0 means 3, the server
	// default).
	Schedules int
	// MaxSteps / Timeout / MaxHeapObjects / MaxOutput / Retries are the
	// sandbox ceilings, with the same zero-value semantics as
	// server.Config.
	MaxSteps       int64
	Timeout        time.Duration
	MaxHeapObjects int64
	MaxOutput      int64
	Retries        int
	// Cache, when non-nil, serves and stores verdicts exactly like a
	// worker's local tier.
	Cache core.VerdictCache
	// Trace, when non-nil, receives the fallback analyses' trace events.
	Trace obs.Sink
}

// NewLocalAnalyzer builds the engine-backed fallback over lc.
func NewLocalAnalyzer(lc LocalConfig) LocalAnalyzer {
	if lc.Schedules <= 0 {
		lc.Schedules = 3
	}
	if lc.Timeout <= 0 {
		lc.Timeout = 30 * time.Second
	}
	return func(ctx context.Context, prog *ir.Program, knobs Knobs, refs []LoopRef, onLoop func(core.LoopJSON)) (map[LoopRef]core.LoopJSON, error) {
		n := knobs.Schedules
		if n <= 0 || n > lc.Schedules {
			n = lc.Schedules
		}
		scheds := []dcart.Schedule{dcart.Reverse{}}
		for i := 0; i < n; i++ {
			scheds = append(scheds, dcart.Random{Seed: int64(i + 1)})
		}
		copt := core.Options{
			Schedules:      scheds,
			MaxSteps:       clampBudget(lc.MaxSteps, knobs.MaxSteps),
			Timeout:        time.Duration(clampBudget(int64(lc.Timeout), knobs.TimeoutMS*int64(time.Millisecond))),
			MaxHeapObjects: lc.MaxHeapObjects,
			MaxOutput:      lc.MaxOutput,
			Retries:        lc.Retries,
			StopAfter:      knobs.StopAfter,
			NoFootprint:    knobs.NoFootprint,
			NoProve:        knobs.NoProve,
			NoVM:           knobs.NoVM,
			Trace:          lc.Trace,
		}
		if !knobs.NoCache {
			copt.Cache = lc.Cache
		}
		only := make(map[engine.LoopKey]bool, len(refs))
		for _, ref := range refs {
			only[engine.LoopKey{Fn: ref.Fn, Index: ref.Index}] = true
		}
		var mu sync.Mutex
		rows := make(map[LoopRef]core.LoopJSON, len(refs))
		eopt := engine.Options{
			Core:    copt,
			Pool:    lc.Pool,
			Workers: lc.Workers,
			Only:    only,
			OnLoop: func(res *core.LoopResult) {
				lj := res.JSON()
				mu.Lock()
				rows[LoopRef{Fn: lj.Fn, Index: lj.Index}] = lj
				mu.Unlock()
				if onLoop != nil {
					onLoop(lj)
				}
			},
		}
		if _, err := engine.Analyze(ctx, prog, eopt); err != nil {
			return nil, err
		}
		return rows, nil
	}
}

// clampBudget lowers def to req when the batch asks for less; a batch can
// never exceed the local ceiling. Identical to the server's clamp so a
// fallback analysis and a worker agree on effective budgets.
func clampBudget(def, req int64) int64 {
	if req <= 0 {
		return def
	}
	if def <= 0 || req < def {
		return req
	}
	return def
}
