// Package types implements MiniC's semantic type representation and its
// static type checker. The checker records the type of every expression;
// the IR builder consumes those results.
package types

import (
	"dca/internal/ast"
	"dca/internal/source"
)

// Kind classifies a semantic type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Int
	Float
	Bool
	String
	Pointer // pointer to a struct
	Array   // heap array of Elem
	Void    // function with no result
	UntypedNil
)

// Type is a semantic MiniC type. Types are canonicalized per checker run,
// but comparison should use Equal rather than pointer identity.
type Type struct {
	Kind   Kind
	Elem   *Type       // for Array
	Struct *StructInfo // for Pointer
}

// Predeclared scalar types.
var (
	IntType     = &Type{Kind: Int}
	FloatType   = &Type{Kind: Float}
	BoolType    = &Type{Kind: Bool}
	StringType  = &Type{Kind: String}
	VoidType    = &Type{Kind: Void}
	NilType     = &Type{Kind: UntypedNil}
	InvalidType = &Type{Kind: Invalid}
)

func (t *Type) String() string {
	switch t.Kind {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	case Pointer:
		return "*" + t.Struct.Name
	case Array:
		return "[]" + t.Elem.String()
	case Void:
		return "void"
	case UntypedNil:
		return "nil"
	}
	return "invalid"
}

// Equal reports whether two types are identical (nil is assignable to any
// pointer but not Equal to it).
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case Array:
		return t.Elem.Equal(u.Elem)
	case Pointer:
		return t.Struct == u.Struct
	}
	return true
}

// AssignableTo reports whether a value of type t can be assigned to a
// location of type u.
func (t *Type) AssignableTo(u *Type) bool {
	if t.Equal(u) {
		return true
	}
	return t.Kind == UntypedNil && (u.Kind == Pointer || u.Kind == Array)
}

// IsRef reports whether the type is heap-referencing (pointer or array).
func (t *Type) IsRef() bool { return t.Kind == Pointer || t.Kind == Array }

// IsNumeric reports whether the type supports arithmetic.
func (t *Type) IsNumeric() bool { return t.Kind == Int || t.Kind == Float }

// StructInfo describes a declared struct.
type StructInfo struct {
	Name   string
	Fields []FieldInfo
	index  map[string]int
}

// FieldInfo is one struct field.
type FieldInfo struct {
	Name string
	Type *Type
}

// NewStructInfo builds a struct type from a field list; the compiler uses
// it to synthesize environment structs during payload outlining.
func NewStructInfo(name string, fields []FieldInfo) *StructInfo {
	si := &StructInfo{Name: name, Fields: fields, index: map[string]int{}}
	for i, f := range fields {
		si.index[f.Name] = i
	}
	return si
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructInfo) FieldIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// FuncSig describes a function signature.
type FuncSig struct {
	Name    string
	Params  []*Type
	Result  *Type // VoidType when absent
	Builtin bool
}

// Builtin functions available to all programs. All of them are pure.
var Builtins = map[string]*FuncSig{
	"len":   {Name: "len", Params: []*Type{nil}, Result: IntType, Builtin: true}, // len(array)
	"float": {Name: "float", Params: []*Type{IntType}, Result: FloatType, Builtin: true},
	"int":   {Name: "int", Params: []*Type{FloatType}, Result: IntType, Builtin: true},
	"sqrt":  {Name: "sqrt", Params: []*Type{FloatType}, Result: FloatType, Builtin: true},
	"abs":   {Name: "abs", Params: []*Type{IntType}, Result: IntType, Builtin: true},
	"fabs":  {Name: "fabs", Params: []*Type{FloatType}, Result: FloatType, Builtin: true},
	"log":   {Name: "log", Params: []*Type{FloatType}, Result: FloatType, Builtin: true},
	"pow":   {Name: "pow", Params: []*Type{FloatType, FloatType}, Result: FloatType, Builtin: true},
}

// Info holds the results of type checking a program.
type Info struct {
	Program   *ast.Program
	Structs   map[string]*StructInfo
	Funcs     map[string]*FuncSig
	ExprTypes map[ast.Expr]*Type
	VarTypes  map[*ast.VarDecl]*Type
}

// TypeOf returns the checked type of an expression.
func (in *Info) TypeOf(e ast.Expr) *Type {
	if t, ok := in.ExprTypes[e]; ok {
		return t
	}
	return InvalidType
}

// Check type-checks the program, returning the collected Info. The error is
// a source.DiagList when problems were found.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Program:   prog,
			Structs:   map[string]*StructInfo{},
			Funcs:     map[string]*FuncSig{},
			ExprTypes: map[ast.Expr]*Type{},
			VarTypes:  map[*ast.VarDecl]*Type{},
		},
		diags: &source.DiagList{},
		file:  prog.File.Name,
	}
	c.collect(prog)
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	c.diags.Sort()
	return c.info, c.diags.Err()
}

// MustCheck checks and panics on error; for compiled-in workloads.
func MustCheck(prog *ast.Program) *Info {
	info, err := Check(prog)
	if err != nil {
		panic("types.MustCheck: " + err.Error())
	}
	return info
}

type checker struct {
	info   *Info
	diags  *source.DiagList
	file   string
	scopes []map[string]*Type
	cur    *FuncSig
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.diags.Add(c.file, pos, format, args...)
}

func (c *checker) collect(prog *ast.Program) {
	// First pass: struct names (so fields can be mutually recursive).
	for _, s := range prog.Structs {
		if _, dup := c.info.Structs[s.Name]; dup {
			c.errorf(s.Pos(), "duplicate struct %q", s.Name)
			continue
		}
		c.info.Structs[s.Name] = &StructInfo{Name: s.Name, index: map[string]int{}}
	}
	// Second pass: struct fields.
	for _, s := range prog.Structs {
		si := c.info.Structs[s.Name]
		for _, f := range s.Fields {
			if _, dup := si.index[f.Name]; dup {
				c.errorf(f.NamePos, "duplicate field %q in struct %q", f.Name, s.Name)
				continue
			}
			si.index[f.Name] = len(si.Fields)
			si.Fields = append(si.Fields, FieldInfo{Name: f.Name, Type: c.resolve(f.Type)})
		}
	}
	// Function signatures.
	for _, f := range prog.Funcs {
		if _, dup := c.info.Funcs[f.Name]; dup {
			c.errorf(f.Pos(), "duplicate function %q", f.Name)
			continue
		}
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			c.errorf(f.Pos(), "function %q shadows a builtin", f.Name)
		}
		sig := &FuncSig{Name: f.Name, Result: VoidType}
		for _, p := range f.Params {
			sig.Params = append(sig.Params, c.resolve(p.Type))
		}
		if f.Ret != nil {
			sig.Result = c.resolve(f.Ret)
		}
		c.info.Funcs[f.Name] = sig
	}
}

func (c *checker) resolve(t ast.Type) *Type {
	switch t := t.(type) {
	case *ast.NamedType:
		switch t.Name {
		case "int":
			return IntType
		case "float":
			return FloatType
		case "bool":
			return BoolType
		case "string":
			return StringType
		}
		if si, ok := c.info.Structs[t.Name]; ok {
			// A bare struct name in type position means pointer-to-struct;
			// MiniC has no struct values.
			return &Type{Kind: Pointer, Struct: si}
		}
		c.errorf(t.Pos(), "unknown type %q", t.Name)
		return InvalidType
	case *ast.PointerType:
		elem := t.Elem
		nt, ok := elem.(*ast.NamedType)
		if !ok {
			c.errorf(t.Pos(), "pointer element must be a struct name")
			return InvalidType
		}
		if si, ok := c.info.Structs[nt.Name]; ok {
			return &Type{Kind: Pointer, Struct: si}
		}
		c.errorf(nt.Pos(), "unknown struct %q", nt.Name)
		return InvalidType
	case *ast.ArrayType:
		return &Type{Kind: Array, Elem: c.resolve(t.Elem)}
	}
	return InvalidType
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Type{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos source.Pos, name string, t *Type) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "redeclaration of %q", name)
	}
	top[name] = t
}

func (c *checker) lookup(name string) (*Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) checkFunc(f *ast.FuncDecl) {
	c.cur = c.info.Funcs[f.Name]
	c.pushScope()
	for i, p := range f.Params {
		c.declare(p.NamePos, p.Name, c.cur.Params[i])
	}
	c.checkBlock(f.Body)
	c.popScope()
	c.cur = nil
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s)
	case *ast.VarDecl:
		t := c.resolve(s.Type)
		c.info.VarTypes[s] = t
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			if !it.AssignableTo(t) && it.Kind != Invalid {
				c.errorf(s.Pos(), "cannot initialize %s variable %q with %s", t, s.Name, it)
			}
		}
		c.declare(s.Pos(), s.Name, t)
	case *ast.AssignStmt:
		lt := c.checkLValue(s.LHS)
		rt := c.checkExpr(s.RHS)
		if s.Op == "=" {
			if !rt.AssignableTo(lt) && lt.Kind != Invalid && rt.Kind != Invalid {
				c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
			}
			return
		}
		// Compound assignment requires numeric operands of the same type
		// (%= is int-only).
		if !lt.IsNumeric() || !rt.Equal(lt) {
			if lt.Kind != Invalid && rt.Kind != Invalid {
				c.errorf(s.Pos(), "invalid operands for %s: %s and %s", s.Op, lt, rt)
			}
		}
		if s.Op == "%=" && lt.Kind != Int {
			c.errorf(s.Pos(), "%%= requires int operands")
		}
	case *ast.IncDecStmt:
		lt := c.checkLValue(s.LHS)
		if lt.Kind != Int && lt.Kind != Float && lt.Kind != Invalid {
			c.errorf(s.Pos(), "++/-- requires a numeric lvalue, got %s", lt)
		}
	case *ast.IfStmt:
		ct := c.checkExpr(s.Cond)
		if ct.Kind != Bool && ct.Kind != Invalid {
			c.errorf(s.Cond.Pos(), "if condition must be bool, got %s", ct)
		}
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		ct := c.checkExpr(s.Cond)
		if ct.Kind != Bool && ct.Kind != Invalid {
			c.errorf(s.Cond.Pos(), "while condition must be bool, got %s", ct)
		}
		c.checkBlock(s.Body)
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			ct := c.checkExpr(s.Cond)
			if ct.Kind != Bool && ct.Kind != Invalid {
				c.errorf(s.Cond.Pos(), "for condition must be bool, got %s", ct)
			}
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.checkBlock(s.Body)
		c.popScope()
	case *ast.ReturnStmt:
		want := c.cur.Result
		if s.Val == nil {
			if want.Kind != Void {
				c.errorf(s.Pos(), "missing return value (want %s)", want)
			}
			return
		}
		got := c.checkExpr(s.Val)
		if want.Kind == Void {
			c.errorf(s.Pos(), "unexpected return value in void function")
		} else if !got.AssignableTo(want) && got.Kind != Invalid {
			c.errorf(s.Pos(), "cannot return %s (want %s)", got, want)
		}
	case *ast.BreakStmt, *ast.ContinueStmt:
		// Loop-nesting validity is enforced syntactically by usage; the IR
		// builder reports stray break/continue.
	case *ast.ExprStmt:
		if _, ok := s.X.(*ast.CallExpr); !ok {
			c.errorf(s.Pos(), "expression statement must be a call")
			return
		}
		c.checkExpr(s.X)
	case *ast.PrintStmt:
		for _, a := range s.Args {
			c.checkExpr(a)
		}
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

// checkLValue checks an expression in assignment-target position.
func (c *checker) checkLValue(e ast.Expr) *Type {
	switch e.(type) {
	case *ast.Ident, *ast.IndexExpr, *ast.FieldExpr:
		return c.checkExpr(e)
	}
	c.errorf(e.Pos(), "not an assignable location")
	c.checkExpr(e)
	return InvalidType
}

func (c *checker) set(e ast.Expr, t *Type) *Type {
	c.info.ExprTypes[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return c.set(e, IntType)
	case *ast.FloatLit:
		return c.set(e, FloatType)
	case *ast.BoolLit:
		return c.set(e, BoolType)
	case *ast.StringLit:
		return c.set(e, StringType)
	case *ast.NilLit:
		return c.set(e, NilType)
	case *ast.Ident:
		if t, ok := c.lookup(e.Name); ok {
			return c.set(e, t)
		}
		c.errorf(e.Pos(), "undefined variable %q", e.Name)
		return c.set(e, InvalidType)
	case *ast.UnaryExpr:
		xt := c.checkExpr(e.X)
		switch e.Op {
		case "-":
			if !xt.IsNumeric() && xt.Kind != Invalid {
				c.errorf(e.Pos(), "operator - requires numeric operand, got %s", xt)
			}
			return c.set(e, xt)
		case "!":
			if xt.Kind != Bool && xt.Kind != Invalid {
				c.errorf(e.Pos(), "operator ! requires bool operand, got %s", xt)
			}
			return c.set(e, BoolType)
		}
		return c.set(e, InvalidType)
	case *ast.BinaryExpr:
		return c.set(e, c.checkBinary(e))
	case *ast.CallExpr:
		return c.set(e, c.checkCall(e))
	case *ast.IndexExpr:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.Index)
		if it.Kind != Int && it.Kind != Invalid {
			c.errorf(e.Index.Pos(), "array index must be int, got %s", it)
		}
		if xt.Kind == Array {
			return c.set(e, xt.Elem)
		}
		if xt.Kind != Invalid {
			c.errorf(e.Pos(), "cannot index %s", xt)
		}
		return c.set(e, InvalidType)
	case *ast.FieldExpr:
		xt := c.checkExpr(e.X)
		if xt.Kind != Pointer {
			if xt.Kind != Invalid {
				c.errorf(e.Pos(), "field access requires a struct pointer, got %s", xt)
			}
			return c.set(e, InvalidType)
		}
		idx := xt.Struct.FieldIndex(e.Name)
		if idx < 0 {
			c.errorf(e.Pos(), "struct %q has no field %q", xt.Struct.Name, e.Name)
			return c.set(e, InvalidType)
		}
		return c.set(e, xt.Struct.Fields[idx].Type)
	case *ast.NewExpr:
		t := c.resolve(e.Type)
		if e.Len != nil {
			lt := c.checkExpr(e.Len)
			if lt.Kind != Int && lt.Kind != Invalid {
				c.errorf(e.Len.Pos(), "array length must be int, got %s", lt)
			}
			return c.set(e, &Type{Kind: Array, Elem: t})
		}
		if t.Kind != Pointer {
			c.errorf(e.Pos(), "new requires a struct type, got %s", t)
			return c.set(e, InvalidType)
		}
		return c.set(e, t)
	}
	c.errorf(e.Pos(), "unhandled expression %T", e)
	return InvalidType
}

func (c *checker) checkBinary(e *ast.BinaryExpr) *Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	if xt.Kind == Invalid || yt.Kind == Invalid {
		return InvalidType
	}
	switch e.Op {
	case "+", "-", "*", "/":
		if xt.IsNumeric() && xt.Equal(yt) {
			return xt
		}
		if e.Op == "+" && xt.Kind == String && yt.Kind == String {
			return StringType
		}
	case "%", "<<", ">>", "&", "|", "^":
		if xt.Kind == Int && yt.Kind == Int {
			return IntType
		}
	case "==", "!=":
		if xt.Equal(yt) || xt.AssignableTo(yt) || yt.AssignableTo(xt) {
			return BoolType
		}
	case "<", "<=", ">", ">=":
		if (xt.IsNumeric() || xt.Kind == String) && xt.Equal(yt) {
			return BoolType
		}
	case "&&", "||":
		if xt.Kind == Bool && yt.Kind == Bool {
			return BoolType
		}
	}
	c.errorf(e.Pos(), "invalid operands for %s: %s and %s", e.Op, xt, yt)
	return InvalidType
}

func (c *checker) checkCall(e *ast.CallExpr) *Type {
	name := e.Fn.Name
	if sig, ok := Builtins[name]; ok {
		return c.checkBuiltin(e, sig)
	}
	sig, ok := c.info.Funcs[name]
	if !ok {
		c.errorf(e.Pos(), "undefined function %q", name)
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return InvalidType
	}
	if len(e.Args) != len(sig.Params) {
		c.errorf(e.Pos(), "call to %q has %d args, want %d", name, len(e.Args), len(sig.Params))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(sig.Params) && !at.AssignableTo(sig.Params[i]) && at.Kind != Invalid {
			c.errorf(a.Pos(), "arg %d of %q: cannot use %s as %s", i+1, name, at, sig.Params[i])
		}
	}
	return sig.Result
}

func (c *checker) checkBuiltin(e *ast.CallExpr, sig *FuncSig) *Type {
	name := sig.Name
	if len(e.Args) != len(sig.Params) {
		c.errorf(e.Pos(), "builtin %q takes %d args, got %d", name, len(sig.Params), len(e.Args))
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return sig.Result
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		want := sig.Params[i]
		if want == nil { // len: any array
			if at.Kind != Array && at.Kind != Invalid {
				c.errorf(a.Pos(), "len requires an array, got %s", at)
			}
			continue
		}
		if !at.AssignableTo(want) && at.Kind != Invalid {
			c.errorf(a.Pos(), "arg %d of builtin %q: cannot use %s as %s", i+1, name, at, want)
		}
	}
	return sig.Result
}
