package depprof

import (
	"fmt"
	"sort"
	"strings"

	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/purity"
	"dca/internal/scalar"
)

// Policy tunes which benign-dependence exemptions the analysis applies;
// the defaults model Dependence Profiling [8].
type Policy struct {
	// InductionScalars accepts i = i ± inv loop-carried scalars.
	InductionScalars bool
	// ReductionScalars accepts s = s op expr loop-carried scalars.
	ReductionScalars bool
	// MinMaxScalars accepts conditional if (x < m) m = x reductions.
	MinMaxScalars bool
	// MemReductions accepts op= memory reduction groups (incl. histograms).
	MemReductions bool
	// Privatization accepts carried WAR/WAW on addresses that pass the
	// dynamic write-first test.
	Privatization bool
	// ImpureCalls accepts loops calling functions with side effects,
	// relying purely on the dynamic trace to disambiguate them (DiscoPoP's
	// computational-unit construction keeps such dependences instead).
	ImpureCalls bool
}

// DefaultPolicy models the paper's Dependence Profiling baseline.
func DefaultPolicy() Policy {
	return Policy{
		InductionScalars: true,
		ReductionScalars: true,
		MinMaxScalars:    true,
		MemReductions:    true,
		Privatization:    true,
		ImpureCalls:      true,
	}
}

// Verdict is the per-loop outcome.
type Verdict struct {
	Key      LoopKey
	Loop     *cfg.Loop
	Parallel bool
	Executed bool
	Reasons  []string
}

// Report holds all verdicts for one program.
type Report struct {
	Prog     *ir.Program
	Profile  *Profile
	Verdicts map[LoopKey]*Verdict
	// Truncated mirrors Profile.Truncated: the trace hit its step budget
	// and verdicts cover only the executed prefix.
	Truncated bool
}

// Parallelizable counts loops reported parallel.
func (r *Report) Parallelizable() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Parallel {
			n++
		}
	}
	return n
}

// Verdict returns the verdict for fn's index-th loop, or nil.
func (r *Report) Verdict(fn string, index int) *Verdict {
	return r.Verdicts[LoopKey{fn, index}]
}

func (r *Report) String() string {
	keys := make([]LoopKey, 0, len(r.Verdicts))
	for k := range r.Verdicts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fn != keys[j].Fn {
			return keys[i].Fn < keys[j].Fn
		}
		return keys[i].Index < keys[j].Index
	})
	var b strings.Builder
	for _, k := range keys {
		v := r.Verdicts[k]
		status := "parallel"
		if !v.Parallel {
			status = "serial"
		}
		fmt.Fprintf(&b, "%s/L%d: %s", k.Fn, k.Index, status)
		if len(v.Reasons) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(v.Reasons, "; "))
		}
		b.WriteByte('\n')
	}
	if r.Truncated {
		b.WriteString("(trace truncated: step budget exhausted before the program finished)\n")
	}
	return b.String()
}

// Analyze traces the program and classifies every loop.
func Analyze(prog *ir.Program, pol Policy, maxSteps int64) (*Report, error) {
	prof, err := Trace(prog, maxSteps)
	if err != nil {
		return nil, err
	}
	return AnalyzeProfile(prog, prof, pol), nil
}

// AnalyzeProfile classifies every loop against an existing profile. The
// classification only reads the profile, so one traced execution can be
// shared between several profiler configurations (depprof policies,
// discopop) instead of re-tracing the program per baseline.
func AnalyzeProfile(prog *ir.Program, prof *Profile, pol Policy) *Report {
	rep := &Report{Prog: prog, Profile: prof, Verdicts: map[LoopKey]*Verdict{}, Truncated: prof.Truncated}
	pur := purity.Analyze(prog)
	for _, fn := range prog.Funcs {
		env := scalar.NewEnv(fn)
		loops := env.G.FindLoops()
		for _, loop := range loops {
			key := LoopKey{fn.Name, loop.Index}
			v := &Verdict{Key: key, Loop: loop}
			rep.Verdicts[key] = v
			lp := prof.Loops[key]
			v.Executed = lp != nil && lp.BodyExecuted
			if !v.Executed {
				v.Reasons = append(v.Reasons, "not exercised by workload")
				continue
			}
			if pur.LoopDoesIO(loop.Blocks) {
				v.Reasons = append(v.Reasons, "loop performs I/O")
				continue
			}
			if !pol.ImpureCalls {
				if callee := impureCallee(prog, pur, loop); callee != "" {
					v.Reasons = append(v.Reasons, fmt.Sprintf("call to %q crosses computational units", callee))
					continue
				}
			}
			scalarReasons := classifyScalars(env, loop, pol)
			v.Reasons = append(v.Reasons, scalarReasons...)
			v.Reasons = append(v.Reasons, memoryReasons(lp, pol)...)
			v.Parallel = len(v.Reasons) == 0
		}
	}
	return rep
}

// impureCallee returns the name of a side-effecting function the loop
// calls, or "".
func impureCallee(prog *ir.Program, pur *purity.Info, loop *cfg.Loop) string {
	for b := range loop.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && !c.Builtin && !pur.Pure(c.Callee) {
				return c.Callee
			}
		}
	}
	return ""
}

func memoryReasons(lp *LoopProfile, pol Policy) []string {
	var out []string
	if lp.ReductionAddrs && !pol.MemReductions {
		out = append(out, "carried memory reduction not recognized")
	}
	if lp.FatalRAW {
		out = append(out, fmt.Sprintf("loop-carried true dependence on %d address(es)", lp.addrFatalRAW))
	}
	if lp.NeedPriv {
		if !pol.Privatization {
			out = append(out, "carried output/anti dependences and privatization disabled")
		} else if lp.addrPrivFail > 0 {
			out = append(out, fmt.Sprintf("%d address(es) fail the write-first privatization test", lp.addrPrivFail))
		}
	}
	return out
}

// classifyScalars reports the loop-carried scalar dependences that are not
// benign under the policy.
func classifyScalars(env *scalar.Env, loop *cfg.Loop, pol Policy) []string {
	var reasons []string
	for _, c := range scalar.Classify(env, loop) {
		ok := false
		switch c.Class {
		case scalar.Induction:
			ok = pol.InductionScalars
		case scalar.Reduction:
			ok = pol.ReductionScalars
		case scalar.MinMax:
			ok = pol.MinMaxScalars
		}
		if !ok {
			reasons = append(reasons, fmt.Sprintf("loop-carried scalar dependence on %q", c.Local.Name))
		}
	}
	return reasons
}
