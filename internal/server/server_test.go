package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/obs"
)

const testSrc = `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) {
		a[i] = i * 3;
	}
	var s int = 0;
	for (var i int = 0; i < 16; i++) {
		s = s + a[i];
	}
	print(s);
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeReport(t *testing.T, data []byte) *core.ReportJSON {
	t.Helper()
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatalf("decode response: %v\n%s", err, data)
	}
	if ar.Report == nil {
		t.Fatalf("no report in response: %s", data)
	}
	return ar.Report
}

// TestAnalyzeComputedThenCached: the first request computes every verdict;
// an identical second request is served wholly from the cache with the same
// verdict table.
func TestAnalyzeComputedThenCached(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c, Workers: 2})

	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, body)
	}
	// Freshly analyzed loops carry "computed", "footprint-proved", or
	// "static-proved" provenance; what the test cares about is that they
	// were not cached.
	fresh := func(p string) bool {
		return p == core.ProvenanceComputed || p == core.ProvenanceFootprint ||
			p == core.ProvenanceProved
	}
	cold := decodeReport(t, body)
	if cold.TotalLoops == 0 {
		t.Fatal("cold report has no loops")
	}
	for _, l := range cold.Loops {
		if !fresh(l.Provenance) {
			t.Errorf("cold loop %s: provenance %q", l.ID, l.Provenance)
		}
	}

	resp, body = postAnalyze(t, ts.URL, AnalyzeRequest{Filename: "t.mc", Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	warm := decodeReport(t, body)
	if warm.Replays != 0 {
		t.Errorf("warm request performed %d replays, want 0", warm.Replays)
	}
	for i, l := range warm.Loops {
		if l.Provenance != core.ProvenanceCached {
			t.Errorf("warm loop %s: provenance %q, want cached", l.ID, l.Provenance)
		}
		cd := cold.Loops[i]
		if l.Verdict != cd.Verdict || l.Reason != cd.Reason || l.Iterations != cd.Iterations {
			t.Errorf("warm loop %s diverged: %+v vs %+v", l.ID, l, cd)
		}
	}

	// no_cache forces recomputation even with the cache populated.
	resp, body = postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc, NoCache: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no_cache status %d: %s", resp.StatusCode, body)
	}
	for _, l := range decodeReport(t, body).Loops {
		if !fresh(l.Provenance) {
			t.Errorf("no_cache loop %s: provenance %q, want freshly analyzed", l.ID, l.Provenance)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
}

// TestStats: counters reflect served traffic, the pool section reports the
// configured workers, and the cache section carries hit counters.
func TestStats(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c, Workers: 3})

	postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: "not a program"})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
	if st.Analyzed != 2 {
		t.Errorf("analyzed = %d, want 2", st.Analyzed)
	}
	if st.Errored != 1 {
		t.Errorf("errored = %d, want 1", st.Errored)
	}
	if st.Pool.Workers != 3 {
		t.Errorf("pool workers = %d, want 3", st.Pool.Workers)
	}
	if st.Cache == nil {
		t.Fatal("no cache section")
	}
	if st.Cache.Hits() == 0 {
		t.Error("warm request produced no cache hits")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSourceBytes: 4096})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid-json", "{nope", http.StatusBadRequest},
		{"missing-source", `{"filename": "x.mc"}`, http.StatusBadRequest},
		{"bad-program", `{"source": "func main("}`, http.StatusUnprocessableEntity},
		{"oversized", fmt.Sprintf(`{"source": %q}`, strings.Repeat("x", 8192)), http.StatusRequestEntityTooLarge},
		{"negative-timeout", `{"source": "func main() { print(0); }", "timeout_ms": -5}`, http.StatusBadRequest},
		{"overflowing-timeout", `{"source": "func main() { print(0); }", "timeout_ms": 9300000000000000}`, http.StatusBadRequest},
		{"negative-max-steps", `{"source": "func main() { print(0); }", "max_steps": -1}`, http.StatusBadRequest},
		{"negative-schedules", `{"source": "func main() { print(0); }", "schedules": -1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("error body must be JSON: %v", err)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
		})
	}

	// GET on /analyze is rejected by the method-aware mux.
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentRequests: a burst of parallel analyses against a small pool
// must all succeed with consistent verdicts. Run under -race this is the
// server's sharing discipline test.
func TestConcurrentRequests(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Cache: c, Workers: 2, MaxConcurrent: 4})

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two distinct programs interleaved, so the cache serves both.
			src := testSrc
			if i%2 == 1 {
				src = strings.Replace(testSrc, "i * 3", "i * 5", 1)
			}
			resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{Source: src})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			rep := decodeReport(t, body)
			if rep.TotalLoops == 0 {
				errs <- fmt.Errorf("request %d: empty report", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.requests.Value(); got != n {
		t.Errorf("requests = %d, want %d", got, n)
	}
	if s.inFlight.Value() != 0 {
		t.Errorf("in-flight = %d after drain, want 0", s.inFlight.Value())
	}
}

// TestBudgetClamping: requests may tighten sandbox budgets but a request
// asking for more than the server ceiling is clamped down to it.
func TestBudgetClamping(t *testing.T) {
	s := New(Config{MaxSteps: 1000, Timeout: time.Second, Schedules: 2})

	opt := s.options(&AnalyzeRequest{MaxSteps: 500, TimeoutMS: 100})
	if opt.Core.MaxSteps != 500 {
		t.Errorf("tightened MaxSteps = %d, want 500", opt.Core.MaxSteps)
	}
	if opt.Core.Timeout != 100*time.Millisecond {
		t.Errorf("tightened Timeout = %v, want 100ms", opt.Core.Timeout)
	}

	opt = s.options(&AnalyzeRequest{MaxSteps: 1 << 40, TimeoutMS: 3600_000})
	if opt.Core.MaxSteps != 1000 {
		t.Errorf("clamped MaxSteps = %d, want the 1000 ceiling", opt.Core.MaxSteps)
	}
	if opt.Core.Timeout != time.Second {
		t.Errorf("clamped Timeout = %v, want the 1s ceiling", opt.Core.Timeout)
	}

	// Schedule count is bounded by the server default too.
	if got := len(s.options(&AnalyzeRequest{Schedules: 100}).Core.Schedules); got != 3 {
		t.Errorf("schedules = %d (incl. reverse), want 3", got)
	}
	if got := len(s.options(&AnalyzeRequest{Schedules: 1}).Core.Schedules); got != 2 {
		t.Errorf("schedules = %d (incl. reverse), want 2", got)
	}
}

// TestGracefulDrain: cancelling the serve context stops the listener and
// Serve returns cleanly once in-flight work drains.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2, DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	resp, body := postAnalyze(t, url, AnalyzeRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}

	// The listener is closed: new connections must fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after drain")
	}
}

// TestRequestValidation: the budget arithmetic that silently overflowed
// (timeout_ms * time.Millisecond wrapping negative) is now rejected up
// front, and the largest representable timeout still clamps sanely.
func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name    string
		req     AnalyzeRequest
		wantErr bool
	}{
		{"zero", AnalyzeRequest{}, false},
		{"max-timeout", AnalyzeRequest{TimeoutMS: maxTimeoutMS}, false},
		{"overflow-timeout", AnalyzeRequest{TimeoutMS: maxTimeoutMS + 1}, true},
		{"negative-timeout", AnalyzeRequest{TimeoutMS: -1}, true},
		{"negative-steps", AnalyzeRequest{MaxSteps: -1}, true},
		{"negative-schedules", AnalyzeRequest{Schedules: -1}, true},
	}
	for _, tc := range cases {
		if err := tc.req.validate(); (err != nil) != tc.wantErr {
			t.Errorf("%s: validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}

	// A validated maximal timeout must never reach the engine negative.
	s := New(Config{Timeout: time.Second})
	if d := s.options(&AnalyzeRequest{TimeoutMS: maxTimeoutMS}).Core.Timeout; d != time.Second {
		t.Errorf("maximal timeout_ms produced engine timeout %v, want the 1s ceiling", d)
	}
}

// TestHealthzDraining: once the drain window opens, /healthz flips to
// "draining" with 503 so load balancers take the instance out of rotation.
func TestHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.beginDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("status %q, want draining", h.Status)
	}
}

// TestMetrics: GET /metrics serves Prometheus text covering requests, pool
// occupancy, the replay latency histogram, verdict counters, and both the
// analysis-level and tiered cache counters.
func TestMetrics(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c, Workers: 2})

	// Cold then warm: the second request is served from the cache.
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()

	for _, want := range []string{
		"dca_requests_total 2\n",
		"dca_request_outcomes_total{outcome=\"analyzed\"} 2\n",
		"# TYPE dca_replay_seconds histogram\n",
		"dca_replay_seconds_bucket{le=\"+Inf\"}",
		"dca_replay_seconds_sum",
		"dca_loops_total{verdict=\"commutative\"} 4\n",
		"dca_pool_workers 2\n",
		"dca_pool_in_use 0\n",
		"dca_inflight_requests 0\n",
		"dca_loops_analyzed_total 4\n",
		"dca_verdict_cache_hits_total 2\n",
		"dca_verdict_cache_misses_total 2\n",
		"dca_cache_mem_hits_total 2\n",
		"dca_traps_total",
		"dca_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics output:\n%s", out)
	}
}

// slowSrc keeps the interpreter busy long enough for a cancellation to
// land mid-analysis (a few hundred ms per execution).
const slowSrc = `
func main() {
	var s int = 0;
	for (var i int = 0; i < 2000; i++) {
		for (var j int = 0; j < 2000; j++) {
			s = s + i * j;
		}
	}
	print(s);
}`

// TestAnalyzeCancellation: a client that disconnects mid-analysis frees its
// request slot and every pool worker promptly, is accounted as rejected
// (not errored), leaves a cancelled-verdict trail in the trace, and does
// not starve the next request.
func TestAnalyzeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := &obs.Collector{}
	sink := obs.Multi{col, obs.SinkFunc(func(ev obs.Event) {
		if ev.Stage == obs.StageGolden {
			cancel() // the client hangs up as the first golden run finishes
		}
	})}
	s, ts := newTestServer(t, Config{Workers: 2, MaxConcurrent: 1, Trace: sink})

	body, err := json.Marshal(AnalyzeRequest{Source: slowSrc})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled request completed with a response")
	}

	// The semaphore slot and every pool worker must come free, and the
	// request must be accounted as rejected.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.InUse() != 0 || len(s.sem) != 0 || s.outcomes.Value(outcomeRejected) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancellation did not release resources: pool in use %d, slots held %d, rejected %d",
				s.pool.InUse(), len(s.sem), s.outcomes.Value(outcomeRejected))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.outcomes.Value(outcomeErrored); got != 0 {
		t.Errorf("errored = %d, want 0 (a disconnect is load shed, not an analysis failure)", got)
	}

	// The trace proves replays were aborted rather than run to completion.
	var sawCancelled bool
	for _, ev := range col.Events() {
		if ev.Stage == obs.StageVerdict && ev.Verdict == core.Cancelled.String() {
			sawCancelled = true
			break
		}
	}
	if !sawCancelled {
		t.Error("trace has no cancelled verdict event")
	}

	// With MaxConcurrent=1, a leaked slot would starve this follow-up.
	resp, rbody := postAnalyze(t, ts.URL, AnalyzeRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request after cancellation: status %d: %s", resp.StatusCode, rbody)
	}
}
