package interp_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
)

// TestBudgetErrorDetail: ErrBudget is no longer a bare sentinel — the error
// names the function, block, and step count at exhaustion.
func TestBudgetErrorDetail(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func spin() { while (true) { } }
func main() { spin(); }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = interp.Run(prog, interp.Config{MaxSteps: 1000})
	if !errors.Is(err, interp.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget match", err)
	}
	var be *interp.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetError", err)
	}
	if be.Fn != "spin" {
		t.Errorf("Fn = %q, want spin", be.Fn)
	}
	if be.Block == "" {
		t.Errorf("Block is empty")
	}
	if be.Steps <= 1000 && be.Steps != 1001 {
		t.Errorf("Steps = %d, want just past the 1000 budget", be.Steps)
	}
	for _, part := range []string{"spin", "1000", "steps budget"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q missing %q", err.Error(), part)
		}
	}
}

func TestCancellation(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `func main() { while (true) { } }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := interp.Run(prog, interp.Config{Ctx: ctx})
		done <- err
	}()
	cancel()
	err = <-done
	if !errors.Is(err, interp.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled match", err)
	}
	var ce *interp.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not exposed: %v", err)
	}
}

func TestHeapObjectBudget(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
struct N { v int; }
func main() { for (var i int = 0; i < 100; i++) { var n *N = new N; n->v = i; } }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = interp.Run(prog, interp.Config{MaxHeapObjects: 5})
	if !errors.Is(err, interp.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget match", err)
	}
	var be *interp.BudgetError
	if !errors.As(err, &be) || be.Resource != "heap-objects" {
		t.Errorf("err = %v, want heap-objects budget error", err)
	}
}

func TestOutputBudget(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `func main() { for (var i int = 0; i < 1000; i++) { print("xxxxxxxxxx"); } }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	_, err = interp.Run(prog, interp.Config{Out: &out, MaxOutput: 100})
	var be *interp.BudgetError
	if !errors.As(err, &be) || be.Resource != "output-bytes" {
		t.Fatalf("err = %v, want output-bytes budget error", err)
	}
}

// TestStepHookAbort: a StepHook error aborts execution with that error.
func TestStepHookAbort(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `func main() { var s int = 0; for (var i int = 0; i < 100; i++) { s += i; } print(s); }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	boom := errors.New("hook says stop")
	var sawSteps int64
	_, err = interp.Run(prog, interp.Config{
		StepHook: func(fr *interp.Frame, in ir.Instr, steps int64) error {
			sawSteps = steps
			if steps >= 10 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want hook error", err)
	}
	if sawSteps != 10 {
		t.Errorf("hook last saw step %d, want 10", sawSteps)
	}
}
