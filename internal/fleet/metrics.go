package fleet

import "dca/internal/obs"

// Metrics are the fleet's instruments, registered next to the server's on
// one shared registry so /metrics and /stats cover dispatch and peer-cache
// behaviour without a second scrape target.
type Metrics struct {
	// Dispatches counts batches sent to each worker node (label "node" is
	// bounded by the configured fleet size, within the registry's
	// cardinality policy).
	Dispatches *obs.CounterVec
	// Redispatches counts batches re-routed to a ring successor after
	// their owner failed mid-run.
	Redispatches *obs.Counter
	// PeerHits / PeerMisses / PeerErrors / PeerWrites count peer
	// verdict-cache traffic: hits served by a ring owner, owner lookups
	// that missed, transport or protocol failures (degraded to local
	// misses), and write-throughs on fresh verdicts.
	PeerHits   *obs.Counter
	PeerMisses *obs.Counter
	PeerErrors *obs.Counter
	PeerWrites *obs.Counter
}

// NewMetrics registers the fleet instruments on reg, plus a ring-size
// gauge sampling the given ring.
func NewMetrics(reg *obs.Registry, ring *Ring) *Metrics {
	m := &Metrics{
		Dispatches: reg.CounterVec("dca_fleet_dispatch_total",
			"Loop batches dispatched, by worker node.", "node"),
		Redispatches: reg.Counter("dca_fleet_redispatch_total",
			"Batches re-routed to a ring successor after a worker failure."),
		PeerHits: reg.Counter("dca_fleet_peer_hits_total",
			"Peer verdict-cache lookups served by a ring owner."),
		PeerMisses: reg.Counter("dca_fleet_peer_misses_total",
			"Peer verdict-cache lookups the ring owner missed too."),
		PeerErrors: reg.Counter("dca_fleet_peer_errors_total",
			"Peer verdict-cache requests that failed (degraded to local misses)."),
		PeerWrites: reg.Counter("dca_fleet_peer_writes_total",
			"Fresh verdicts written through to their ring owner."),
	}
	reg.GaugeFunc("dca_fleet_ring_nodes",
		"Distinct nodes on the consistent-hash ring.",
		func() float64 { return float64(ring.Size()) })
	return m
}
