package parallel_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/irbuild"
	"dca/internal/parallel"
	"dca/internal/sandbox"
)

const sumSrc = `
func main() {
	var a []int = new [2000]int;
	for (var i int = 0; i < 2000; i++) { a[i] = i * 3 + 1; }
	var s int = 0;
	for (var i int = 0; i < 2000; i++) { s += a[i]; }
	print(s);
}`

func instrumented(t *testing.T, src, fn string, loop int) *instrument.Instrumented {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, err := instrument.Loop(prog, fn, loop)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return inst
}

// TestWorkerPanicJoinsCleanly: one worker panicking mid-iteration must
// neither crash the process nor deadlock the pool — RunLoop returns a
// structured error and every sibling worker joins. Run under -race.
func TestWorkerPanicJoinsCleanly(t *testing.T) {
	inst := instrumented(t, sumSrc, "main", 1)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = parallel.RunLoop(inst, parallel.Options{
			Workers: 8,
			Inject:  sandbox.NewInjector(sandbox.Inject{AtStep: 40, Kind: sandbox.Panic, MaxTrips: 1}),
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pool did not join after a worker panic")
	}
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want worker panic error", err)
	}
}

// TestWorkerFaultCancelsSiblings: a faulting worker reports a classified
// fault error, not a generic one, and the pool still joins.
func TestWorkerFaultCancelsSiblings(t *testing.T) {
	inst := instrumented(t, sumSrc, "main", 1)
	_, err := parallel.RunLoop(inst, parallel.Options{
		Workers: 8,
		Inject:  sandbox.NewInjector(sandbox.Inject{AtStep: 40, Kind: sandbox.Fault, MaxTrips: 1}),
	})
	if err == nil || !strings.Contains(err.Error(), "faulted at iteration") {
		t.Fatalf("err = %v, want classified worker fault", err)
	}
	if errors.Is(err, interp.ErrBudget) || errors.Is(err, interp.ErrCancelled) {
		t.Errorf("fault misclassified: %v", err)
	}
}

// TestWorkerBudgetDistinguishedFromFault: budget exhaustion in a worker is
// reported as a budget error, matchable via interp.ErrBudget.
func TestWorkerBudgetDistinguishedFromFault(t *testing.T) {
	inst := instrumented(t, sumSrc, "main", 1)
	_, err := parallel.RunLoop(inst, parallel.Options{
		Workers: 4,
		Inject:  sandbox.NewInjector(sandbox.Inject{AtStep: 40, Kind: sandbox.Budget, MaxTrips: 1}),
	})
	if err == nil || !errors.Is(err, interp.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget match", err)
	}
	if !strings.Contains(err.Error(), "exhausted its budget") {
		t.Errorf("err = %v, want budget wording", err)
	}
}

// TestParallelTimeout: the whole run is cancellable by wall clock; the
// driver and workers stop and the error classifies as a timeout.
func TestParallelTimeout(t *testing.T) {
	// An effectively endless sequential prologue keeps the run going long
	// enough for the deadline to land regardless of scheduling.
	inst := instrumented(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 100000000; i++) { s += i; }
	var p int = 0;
	for (var i int = 0; i < 100; i++) { p += i; }
	print(s + p);
}`, "main", 1)
	start := time.Now()
	_, err := parallel.RunLoop(inst, parallel.Options{
		Workers: 2,
		Timeout: 50 * time.Millisecond,
	})
	if err == nil || !errors.Is(err, interp.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled match", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
