package cache_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dca/internal/cache"
	"dca/internal/chaos"
	"dca/internal/obs"
)

const nChaosEntries = 4

func chaosVal(i int) []byte { return []byte(fmt.Sprintf("verdict-record-%d-%032x", i, i)) }

// chaosWorkload opens a cache on fsys and pushes nChaosEntries entries
// through it — the disk-mutating op sequence the fault-point enumeration
// walks. Put swallows write errors by contract; an Open failure is
// surfaced to the caller instead (reported false here), so it may cost
// every entry without being a silent loss.
func chaosWorkload(fsys chaos.FS, dir string) bool {
	c, err := cache.OpenFS(fsys, dir, 0, 1)
	if err != nil {
		return false
	}
	for i := 0; i < nChaosEntries; i++ {
		c.Put(key(i), chaosVal(i))
	}
	return true
}

// checkSurvivors reopens dir on the real filesystem and asserts the
// bounded-loss invariant: every key either misses or returns exactly the
// bytes that were Put — an injected fault may cost entries, never corrupt
// them.
func checkSurvivors(t *testing.T, label, dir string) int {
	t.Helper()
	c, err := cache.OpenFS(chaos.OS{}, dir, 0, 1)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	hits := 0
	for i := 0; i < nChaosEntries; i++ {
		val, ok := c.Get(key(i))
		if !ok {
			continue
		}
		hits++
		if !bytes.Equal(val, chaosVal(i)) {
			t.Fatalf("%s: key %d returned wrong bytes %q", label, i, val)
		}
	}
	return hits
}

// TestCacheChaosEveryFaultPoint plants every fault kind at every eligible
// disk operation of the Put workload and asserts the store degrades to
// misses, never to wrong values. TornRename is the sharpest case: a
// half-copied entry lands under its final name and must be caught by the
// checksum, counted as a corruption, and removed.
func TestCacheChaosEveryFaultPoint(t *testing.T) {
	ops := chaos.CountOps(chaos.OS{}, false, func(fsys chaos.FS) {
		chaosWorkload(fsys, t.TempDir())
	})
	if ops == 0 {
		t.Fatal("workload performed no eligible operations")
	}
	for _, kind := range []chaos.Kind{chaos.EIO, chaos.ENOSPC, chaos.ShortWrite, chaos.TornRename} {
		for at := int64(1); at <= ops; at++ {
			label := fmt.Sprintf("%s@%d", kind, at)
			dir := t.TempDir()
			opened := chaosWorkload(chaos.NewFaulty(chaos.OS{}, chaos.Plan{FailAt: at, Kind: kind}), dir)
			hits := checkSurvivors(t, label, dir)
			// One planted fault costs at most one entry — unless it failed
			// Open itself, which is a loud error, not a silent loss.
			if opened && hits < nChaosEntries-1 {
				t.Fatalf("%s: only %d/%d entries survived a single fault", label, hits, nChaosEntries)
			}
		}
	}
}

// TestCacheChaosEveryFaultPointSticky is the dead-disk variant: the fault
// is sticky, so everything from the fault point on fails. Any subset of
// entries may be lost; correctness of the survivors is the invariant.
func TestCacheChaosEveryFaultPointSticky(t *testing.T) {
	ops := chaos.CountOps(chaos.OS{}, false, func(fsys chaos.FS) {
		chaosWorkload(fsys, t.TempDir())
	})
	for _, kind := range []chaos.Kind{chaos.EIO, chaos.ShortWrite, chaos.TornRename} {
		for at := int64(1); at <= ops; at++ {
			dir := t.TempDir()
			chaosWorkload(chaos.NewFaulty(chaos.OS{}, chaos.Plan{FailAt: at, Kind: kind, Sticky: true}), dir)
			checkSurvivors(t, fmt.Sprintf("sticky %s@%d", kind, at), dir)
		}
	}
}

// TestCacheChaosMonkey layers seeded random faults (reads included) over
// repeated open/put/get cycles; survivors must stay byte-correct under
// every seed.
func TestCacheChaosMonkey(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		dir := t.TempDir()
		m := chaos.NewMonkey(chaos.OS{}, seed, 0.12, true)
		for round := 0; round < 3; round++ {
			c, err := cache.OpenFS(m, dir, 0, 1)
			if err != nil {
				continue
			}
			for i := 0; i < nChaosEntries; i++ {
				c.Put(key(i), chaosVal(i))
				// Reads may fault or miss; a success must be exact.
				if val, ok := c.Get(key(i)); ok && !bytes.Equal(val, chaosVal(i)) {
					t.Fatalf("seed %d: live Get returned wrong bytes %q", seed, val)
				}
			}
		}
		checkSurvivors(t, fmt.Sprintf("monkey seed %d", seed), dir)
	}
}

// TestBreakerTripsAndRecovers drives the disk breaker through its full
// cycle: consecutive write failures trip it open (disk access stops), a
// failed half-open probe re-opens it, and a successful probe after the
// disk heals closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	f := chaos.NewFaulty(chaos.OS{}, chaos.Plan{})
	c, err := cache.OpenFS(f, dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const cooldown = 25 * time.Millisecond
	c.ConfigureBreaker(3, cooldown)

	f.SetAlwaysFail(true)
	for i := 0; i < 3; i++ {
		c.Put(key(i), chaosVal(i))
	}
	st := c.Stats()
	if st.BreakerState != cache.BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("after 3 write failures: state %s, trips %d, want open/1", st.BreakerState, st.BreakerTrips)
	}
	if st.DiskWriteErrors != 3 {
		t.Fatalf("DiskWriteErrors = %d, want 3", st.DiskWriteErrors)
	}

	// Open breaker: no disk operation leaves the cache at all.
	before := f.Ops()
	c.Put(key(9), chaosVal(9))
	if got := f.Ops(); got != before {
		t.Fatalf("open breaker let %d disk ops through", got-before)
	}

	// Cooldown elapses while the disk is still dead: the half-open probe
	// fails and re-trips the breaker.
	time.Sleep(cooldown + 5*time.Millisecond)
	c.Put(key(8), chaosVal(8))
	if st := c.Stats(); st.BreakerState != cache.BreakerOpen || st.BreakerTrips != 2 {
		t.Fatalf("failed probe: state %s, trips %d, want open/2", st.BreakerState, st.BreakerTrips)
	}

	// Disk heals; after the cooldown the next operation probes and closes.
	f.SetAlwaysFail(false)
	time.Sleep(cooldown + 5*time.Millisecond)
	c.Put(key(7), chaosVal(7))
	if st := c.Stats(); st.BreakerState != cache.BreakerClosed {
		t.Fatalf("successful probe left breaker %s", st.BreakerState)
	}
	// The post-recovery write really reached the disk.
	c2, err := cache.OpenFS(chaos.OS{}, dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if val, ok := c2.Get(key(7)); !ok || !bytes.Equal(val, chaosVal(7)) {
		t.Fatalf("post-recovery entry = %q, %v", val, ok)
	}
}

// TestWriteErrorsCountedAndTraced: a failed disk write must not be silent —
// it increments DiskWriteErrors and emits a cache-stage error trace event.
func TestWriteErrorsCountedAndTraced(t *testing.T) {
	f := chaos.NewFaulty(chaos.OS{}, chaos.Plan{FailAt: 2, Kind: chaos.EIO}) // op 1 is OpenFS's MkdirAll
	c, err := cache.OpenFS(f, t.TempDir(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var tr obs.Collector
	c.SetTrace(&tr)
	c.Put(key(0), chaosVal(0))
	if got := c.Stats().DiskWriteErrors; got != 1 {
		t.Fatalf("DiskWriteErrors = %d, want 1", got)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Stage != obs.StageCache || evs[0].Outcome != obs.OutcomeError || evs[0].Err == "" {
		t.Fatalf("trace events = %+v, want one cache/error event", evs)
	}
	// The memory tier still serves the value; the loss is durability only.
	if val, ok := c.Get(key(0)); !ok || !bytes.Equal(val, chaosVal(0)) {
		t.Fatal("memory tier lost the entry after a disk write error")
	}
}

// TestReadErrorsCounted: an I/O error on the read path (not a miss, not
// corruption) counts under DiskReadErrors and degrades to a miss.
func TestReadErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	prime, err := cache.OpenFS(chaos.OS{}, dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	prime.Put(key(0), chaosVal(0))

	f := chaos.NewFaulty(chaos.OS{}, chaos.Plan{})
	c, err := cache.OpenFS(f, dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.SetAlwaysFail(true)
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("Get succeeded through a failing disk")
	}
	if got := c.Stats().DiskReadErrors; got != 1 {
		t.Fatalf("DiskReadErrors = %d, want 1", got)
	}
	f.SetAlwaysFail(false)
	if val, ok := c.Get(key(0)); !ok || !bytes.Equal(val, chaosVal(0)) {
		t.Fatal("healed disk did not serve the entry")
	}
}

// TestStaleTempSweep: Open removes orphaned temp files older than the
// stale age from shard directories, and leaves young ones (a live writer
// may own them) and real entries alone.
func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	prime, err := cache.Open(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	prime.Put(key(0), chaosVal(0))

	shard := filepath.Join(dir, key(0)[:2])
	stale := filepath.Join(shard, ".tmp-stale")
	young := filepath.Join(shard, ".tmp-young")
	for _, p := range []string{stale, young} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c, err := cache.Open(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().StaleTempsRemoved; got != 1 {
		t.Fatalf("StaleTempsRemoved = %d, want 1", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived the sweep")
	}
	if _, err := os.Stat(young); err != nil {
		t.Fatal("young temp file was removed")
	}
	if val, ok := c.Get(key(0)); !ok || !bytes.Equal(val, chaosVal(0)) {
		t.Fatal("sweep damaged a real entry")
	}
}
