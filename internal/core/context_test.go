package core_test

import (
	"strings"
	"testing"

	"dca/internal/core"
	"dca/internal/irbuild"
)

// contextSrc: the kernel loop writes out[(i*stride)%n]. Called with a
// stride coprime to n the writes are a permutation (commutative); called
// with stride 0 every iteration writes out[0] (last-writer-wins: order
// dependent). The context-insensitive analysis must reject the loop; the
// context-sensitive one must split the verdict.
const contextSrc = `
func kernel(out []int, n int, stride int) {
	for (var i int = 0; i < n; i++) {
		out[(i * stride) % n] = i * 3 + 1;
	}
}
func goodCaller(a []int) { kernel(a, 16, 5); }
func badCaller(b []int) { kernel(b, 16, 0); }
func main() {
	var a []int = new [16]int;
	var b []int = new [16]int;
	goodCaller(a);
	badCaller(b);
	print(a[0] + a[15], b[0]);
}
`

func TestContextInsensitiveRejects(t *testing.T) {
	prog, err := irbuild.Compile("ctx.mc", contextSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeLoop(prog, "kernel", 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.NonCommutative {
		t.Fatalf("context-insensitive verdict = %s (%s), want non-commutative", res.Verdict, res.Reason)
	}
}

func TestContextSensitiveSplitsVerdict(t *testing.T) {
	prog, err := irbuild.Compile("ctx.mc", contextSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.AnalyzeLoopContexts(prog, "kernel", 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Contexts) != 2 {
		t.Fatalf("contexts = %d (%s), want 2", len(rep.Contexts), rep)
	}
	good := rep.Context("main>goodCaller>kernel")
	bad := rep.Context("main>badCaller>kernel")
	if good == nil || bad == nil {
		t.Fatalf("missing contexts:\n%s", rep)
	}
	if good.Verdict != core.Commutative {
		t.Errorf("good context = %s (%s), want commutative", good.Verdict, good.Reason)
	}
	if bad.Verdict != core.NonCommutative {
		t.Errorf("bad context = %s, want non-commutative", bad.Verdict)
	}
	if good.Invocations != 1 || bad.Invocations != 1 {
		t.Errorf("invocations: good=%d bad=%d", good.Invocations, bad.Invocations)
	}
	if len(rep.Commutative()) != 1 {
		t.Errorf("commutative contexts = %d", len(rep.Commutative()))
	}
	if !strings.Contains(rep.String(), "goodCaller") {
		t.Errorf("report rendering: %s", rep)
	}
}

func TestContextsAllCommutative(t *testing.T) {
	prog, err := irbuild.Compile("ctx.mc", `
func bump(a []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] += 1; }
}
func main() {
	var a []int = new [8]int;
	bump(a, 8);
	bump(a, 4);
	var s int = 0;
	for (var i int = 0; i < 8; i++) { s += a[i]; }
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.AnalyzeLoopContexts(prog, "bump", 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both bump calls share one context (main>bump).
	if len(rep.Contexts) != 1 {
		t.Fatalf("contexts = %d:\n%s", len(rep.Contexts), rep)
	}
	c := rep.Contexts[0]
	if c.Verdict != core.Commutative || c.Invocations != 2 {
		t.Errorf("context = %+v", c)
	}
}
