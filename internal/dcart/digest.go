package dcart

import (
	"fmt"
	"math"
	"math/bits"

	"dca/internal/ir"
)

// Digest is a 128-bit structural digest of a live-out snapshot. It replaces
// the O(heap) string materialization of Snapshot on the dynamic stage's hot
// path: the value graph is streamed token-by-token into two decorrelated
// 64-bit hash lanes, so a golden run holding thousands of invocations keeps
// 16 bytes per snapshot instead of a serialized heap copy.
//
// Equivalence contract: two snapshots have equal Digests iff their Snapshot
// strings are equal, up to hash collisions (~2^-128 for non-adversarial
// inputs). The token stream mirrors the string serialization exactly —
// identity-insensitive traversal-order numbering, cycle back-references,
// the nil-kind/nil-ref conflation, and a single NaN class (all NaN bit
// patterns print as "NaN" in string mode, so they digest alike too). For
// mismatch diagnosis the string mode is retained behind
// Runtime.DebugSnapshots.
type Digest struct{ Hi, Lo uint64 }

func (d Digest) String() string { return fmt.Sprintf("%016x%016x", d.Hi, d.Lo) }

// Token tags. Values share the tag space with nothing else; every composite
// token is length- or end-delimited, so the stream is injective.
const (
	tagNil = iota + 1
	tagInt
	tagBool
	tagFloat
	tagNaN
	tagStr
	tagObj
	tagBackref
	tagEnd
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	mixSeed   = 0x9e3779b97f4a7c15 // golden-ratio increment (splitmix64)
	mixPrime  = 0xff51afd7ed558ccd // fmix64 multiplier (murmur3)
)

// hasher streams 64-bit words into two independently-mixed lanes: lane lo
// is FNV-1a, lane hi is a rotate-multiply over a premixed word.
type hasher struct{ hi, lo uint64 }

func newHasher() hasher { return hasher{hi: mixSeed, lo: fnvOffset} }

func (h *hasher) word(x uint64) {
	h.lo = (h.lo ^ x) * fnvPrime
	h.hi = bits.RotateLeft64(h.hi^(x*mixPrime), 31) * mixSeed
}

// str hashes a length-prefixed string, eight bytes per word; the prefix
// makes the zero-padding of the final chunk unambiguous.
func (h *hasher) str(s string) {
	h.word(uint64(len(s)))
	for len(s) >= 8 {
		h.word(uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56)
		s = s[8:]
	}
	if len(s) > 0 {
		var last uint64
		for i := 0; i < len(s); i++ {
			last |= uint64(s[i]) << (8 * uint(i))
		}
		h.word(last)
	}
}

// SnapshotDigest produces the canonical, identity-insensitive digest of the
// value graph reachable from roots, without materializing it: scalars by
// value, heap objects structurally with traversal-order numbering, cycles
// via back-references — the streaming counterpart of Snapshot.
func SnapshotDigest(roots []ir.Value) Digest {
	h := newHasher()
	var ids map[*ir.Object]int
	var visit func(v ir.Value)
	visit = func(v ir.Value) {
		switch v.Kind {
		case ir.KindNil:
			h.word(tagNil)
		case ir.KindInt:
			h.word(tagInt)
			h.word(uint64(v.I))
		case ir.KindBool:
			h.word(tagBool)
			h.word(uint64(v.I) & 1)
		case ir.KindFloat:
			if v.F != v.F {
				// All NaN payloads serialize as "NaN" in string mode.
				h.word(tagNaN)
				return
			}
			h.word(tagFloat)
			h.word(math.Float64bits(v.F))
		case ir.KindString:
			h.word(tagStr)
			h.str(v.S)
		case ir.KindRef:
			if v.Ref == nil {
				// String mode conflates nil-kind and nil-ref ("nil;").
				h.word(tagNil)
				return
			}
			if id, ok := ids[v.Ref]; ok {
				h.word(tagBackref)
				h.word(uint64(id))
				return
			}
			if ids == nil {
				ids = make(map[*ir.Object]int, 16)
			}
			id := len(ids)
			ids[v.Ref] = id
			h.word(tagObj)
			h.word(uint64(id))
			h.str(v.Ref.TypeName)
			for _, e := range v.Ref.Elems {
				visit(e)
			}
			h.word(tagEnd)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return Digest{Hi: h.hi, Lo: h.lo}
}
