// Package outline implements payload outlining (§IV-A2): given a separable
// loop, it extracts the payload region into a fresh function
//
//	payload$<fn>$L<k>(iter0, iter1, ..., env *Env$<fn>$L<k>)
//
// taking the per-iteration iterator values by value and the loop-carried /
// live-in / live-out scalars through a synthesized environment object. The
// environment makes the outlined payload re-entrant: the sequential driver
// shares one env across iterations (reductions still accumulate), and the
// parallel executor can privatize env fields per worker.
package outline

import (
	"fmt"
	"sort"

	"dca/internal/ir"
	"dca/internal/iterrec"
	"dca/internal/types"
)

// Result describes an outlined payload.
type Result struct {
	Payload  *ir.Func
	EnvType  *types.StructInfo
	PtrType  *types.Type // pointer to EnvType
	EnvIndex map[*ir.Local]int
	// IterParams are the payload parameters carrying iterator values, in
	// the order of sep.IterLocals; EnvParam is the trailing env parameter.
	IterParams []*ir.Local
	EnvParam   *ir.Local
}

// Outline builds the payload function for the separation and registers it
// (and its env struct) with the program owning sep.Fn.
func Outline(sep *iterrec.Separation) (*Result, error) {
	if !sep.OK {
		return nil, fmt.Errorf("outline: loop %s is not separable: %s", sep.Loop.ID(), sep.Reason)
	}
	fn := sep.Fn
	prog := fn.Prog
	base := fmt.Sprintf("%s$L%d", fn.Name, sep.Loop.Index)

	// Environment struct: one field per shared payload local.
	var fields []types.FieldInfo
	envIndex := map[*ir.Local]int{}
	for i, l := range sep.EnvLocals {
		fields = append(fields, types.FieldInfo{Name: "v_" + l.Name, Type: l.Type})
		envIndex[l] = i
	}
	envSI := types.NewStructInfo("Env$"+base, fields)
	if prog.Structs == nil {
		prog.Structs = map[string]*types.StructInfo{}
	}
	prog.Structs[envSI.Name] = envSI
	envPtr := &types.Type{Kind: types.Pointer, Struct: envSI}

	out := ir.NewFunc("payload$"+base, types.VoidType)
	out.Pos = sep.Loop.Header.Pos

	// Locals: mirror every original local (payload code references a subset;
	// unreferenced mirrors are harmless and keep the remapping trivial).
	lmap := map[*ir.Local]*ir.Local{}
	res := &Result{Payload: out, EnvType: envSI, PtrType: envPtr, EnvIndex: envIndex}
	for _, il := range sep.IterLocals {
		p := out.NewParam("it_"+il.Name, il.Type)
		lmap[il] = p
		res.IterParams = append(res.IterParams, p)
	}
	res.EnvParam = out.NewParam("env", envPtr)
	for _, l := range fn.Locals {
		if _, done := lmap[l]; done {
			continue
		}
		nl := out.NewLocal(l.Name, l.Type)
		nl.Synth = l.Synth
		lmap[l] = nl
	}

	// Blocks: entry (prologue), one copy per region block, epilogue.
	entry := out.NewBlock("entry")
	epilogue := out.NewBlock("epilogue")

	// Region blocks: B0, every payload-side block, and the continuation
	// block when its payload run ends mid-block (mixed block with an
	// iterator suffix).
	regionBlocks := []*ir.Block{sep.B0}
	seen := map[*ir.Block]bool{sep.B0: true}
	for b := range sep.PayloadSide {
		if !seen[b] {
			seen[b] = true
			regionBlocks = append(regionBlocks, b)
		}
	}
	if sep.Cont.Index > 0 && !seen[sep.Cont.Block] {
		seen[sep.Cont.Block] = true
		regionBlocks = append(regionBlocks, sep.Cont.Block)
	}
	sort.Slice(regionBlocks[1:], func(i, j int) bool {
		return regionBlocks[i+1].Index < regionBlocks[j+1].Index
	})
	bmap := map[*ir.Block]*ir.Block{}
	for _, b := range regionBlocks {
		bmap[b] = out.NewBlock("p_" + b.Name)
	}

	op := func(o ir.Operand) ir.Operand {
		if o.Local != nil {
			return ir.LocalOp(lmap[o.Local])
		}
		return o
	}
	ops := func(os []ir.Operand) []ir.Operand {
		if os == nil {
			return nil
		}
		r := make([]ir.Operand, len(os))
		for i, o := range os {
			r[i] = op(o)
		}
		return r
	}
	loc := func(l *ir.Local) *ir.Local {
		if l == nil {
			return nil
		}
		return lmap[l]
	}
	cloneInto := func(dst *ir.Block, instrs []ir.Instr) error {
		for _, in := range instrs {
			switch i := in.(type) {
			case *ir.BinOp:
				dst.Append(&ir.BinOp{Dst: loc(i.Dst), Op: i.Op, X: op(i.X), Y: op(i.Y)})
			case *ir.UnOp:
				dst.Append(&ir.UnOp{Dst: loc(i.Dst), Op: i.Op, X: op(i.X)})
			case *ir.Mov:
				dst.Append(&ir.Mov{Dst: loc(i.Dst), Src: op(i.Src)})
			case *ir.Load:
				dst.Append(&ir.Load{Dst: loc(i.Dst), Base: op(i.Base), Index: op(i.Index), FieldName: i.FieldName})
			case *ir.Store:
				dst.Append(&ir.Store{Base: op(i.Base), Index: op(i.Index), Src: op(i.Src), FieldName: i.FieldName})
			case *ir.Alloc:
				dst.Append(&ir.Alloc{Dst: loc(i.Dst), Struct: i.Struct, Elem: i.Elem, Count: op(i.Count)})
			case *ir.Call:
				dst.Append(&ir.Call{Dst: loc(i.Dst), Callee: i.Callee, Builtin: i.Builtin, Args: ops(i.Args)})
			default:
				return fmt.Errorf("outline: unsupported instruction %q in payload", in)
			}
		}
		return nil
	}

	// retarget maps an original successor block to its block in the
	// outlined function; edges leaving the region go to the epilogue.
	retarget := func(s *ir.Block) *ir.Block {
		if nb, ok := bmap[s]; ok {
			return nb
		}
		return epilogue
	}
	cloneTerm := func(dst *ir.Block, t ir.Term) {
		switch t := t.(type) {
		case *ir.If:
			dst.Term = &ir.If{Cond: op(t.Cond), Then: retarget(t.Then), Else: retarget(t.Else)}
		case *ir.Goto:
			dst.Term = &ir.Goto{Target: retarget(t.Target)}
		default:
			// Region blocks never return (checked by separation).
			dst.Term = &ir.Goto{Target: epilogue}
		}
	}

	for _, b := range regionBlocks {
		nb := bmap[b]
		lo, hi := 0, len(b.Instrs)
		if r, ok := sep.Runs[b]; ok {
			lo, hi = r.Lo, r.Hi
		}
		if b == sep.B0 {
			lo = sep.P0
		}
		if b == sep.Cont.Block && sep.Cont.Index > 0 {
			hi = sep.Cont.Index
		}
		if err := cloneInto(nb, b.Instrs[lo:hi]); err != nil {
			return nil, err
		}
		if b == sep.Cont.Block && sep.Cont.Index > 0 {
			// The run ends inside the block; control continues into the
			// iterator suffix, i.e. leaves the region.
			nb.Term = &ir.Goto{Target: epilogue}
		} else {
			cloneTerm(nb, b.Term)
		}
	}

	// Prologue: load env fields into locals, then enter the region.
	for _, l := range sep.EnvLocals {
		entry.Append(&ir.Load{
			Dst:       lmap[l],
			Base:      ir.LocalOp(res.EnvParam),
			Index:     ir.IntOp(int64(envIndex[l])),
			FieldName: envSI.Fields[envIndex[l]].Name,
		})
	}
	entry.Term = &ir.Goto{Target: bmap[sep.B0]}

	// Epilogue: store env fields back, return.
	for _, l := range sep.EnvLocals {
		epilogue.Append(&ir.Store{
			Base:      ir.LocalOp(res.EnvParam),
			Index:     ir.IntOp(int64(envIndex[l])),
			Src:       ir.LocalOp(lmap[l]),
			FieldName: envSI.Fields[envIndex[l]].Name,
		})
	}
	epilogue.Term = &ir.Ret{}

	prog.AddFunc(out)
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("outline: generated payload is malformed: %w", err)
	}
	return res, nil
}
