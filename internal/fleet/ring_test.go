package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: two rings built from the same node list agree on
// every key — the property that lets fleet members route without talking
// to each other.
func TestRingDeterminism(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, r2 := NewRing(nodes), NewRing(nodes)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if o1, o2 := r1.Owner(key, nil), r2.Owner(key, nil); o1 != o2 {
			t.Fatalf("ring disagreement on %q: %q vs %q", key, o1, o2)
		}
	}
}

// TestRingBalance: virtual nodes spread keys across the fleet — no node
// owns everything, every node owns something.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(nodes)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i), nil)]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Errorf("node %s owns no keys out of %d", n, keys)
		}
		if counts[n] > keys*2/3 {
			t.Errorf("node %s owns %d/%d keys; virtual nodes are not spreading load", n, counts[n], keys)
		}
	}
}

// TestRingFailover: killing a node re-routes only its keys — every key the
// dead node did not own keeps its owner, and the dead node's keys land on
// live successors.
func TestRingFailover(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(nodes)
	const victim = "http://b:2"
	dead := map[string]bool{victim: true}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := r.Owner(key, nil), r.Owner(key, dead)
		if after == victim {
			t.Fatalf("key %q routed to the dead node", key)
		}
		if before != victim && before != after {
			t.Fatalf("key %q moved from live node %q to %q when an unrelated node died", key, before, after)
		}
		if before == victim {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; failover untested")
	}
}

// TestRingEdgeCases: empty rings and all-dead rings return "", duplicate
// nodes collapse.
func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil).Owner("k", nil); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	r := NewRing([]string{"http://a:1", "http://a:1", ""})
	if r.Size() != 1 {
		t.Errorf("ring size = %d, want 1 (duplicates and empties collapse)", r.Size())
	}
	if got := r.Owner("k", map[string]bool{"http://a:1": true}); got != "" {
		t.Errorf("all-dead ring owner = %q, want \"\"", got)
	}
}
