// Package cache is the two-tier verdict store of the incremental-analysis
// subsystem: a byte-budgeted in-memory LRU in front of an optional
// persistent on-disk store. Keys are content-addressed fingerprints
// (internal/fingerprint), values are opaque serialized verdict records.
//
// The disk tier is built for hostile conditions: entries live in sharded
// directories (two-hex-digit prefix), writes go through a temp file plus
// fsync plus atomic rename so a crash can never leave a half-written entry
// under its final name, every entry carries a versioned, checksummed
// header, and any read that fails validation — truncation, corruption,
// version mismatch — degrades to a miss and removes the bad entry. A cache
// can lose every entry and only cost recomputation; it can never serve a
// wrong verdict short of a 128-bit fingerprint collision.
//
// Every disk operation goes through a chaos.FS (OpenFS), so the claims
// above are exercised by fault-injection property tests, and a circuit
// breaker guards the disk tier: repeated I/O errors trip it open and the
// cache runs memory-only for a cooldown, probing the disk back to health
// (half-open) instead of hammering a dead device on every lookup.
package cache

import (
	"encoding/binary"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dca/internal/chaos"
	"dca/internal/obs"
)

// FormatVersion is the on-disk container format version. Bump it when the
// header layout changes; all older entries then read as version misses.
const FormatVersion = 1

// DefaultMemBytes is the in-memory tier's default byte budget.
const DefaultMemBytes = 64 << 20

// entryOverhead approximates the per-entry bookkeeping cost counted
// against the memory budget, beyond key and value bytes.
const entryOverhead = 128

// staleTmpAge is how old an orphaned temp file must be before Open removes
// it — old enough that no live writer can still own it. Package variable so
// tests can age files artificially instead of sleeping.
var staleTmpAge = time.Hour

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	MemHits       uint64 `json:"mem_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	Misses        uint64 `json:"misses"`
	Puts          uint64 `json:"puts"`
	Evictions     uint64 `json:"evictions"`
	Corruptions   uint64 `json:"corruptions"`
	VersionMisses uint64 `json:"version_misses"`
	// DiskWriteErrors / DiskReadErrors count disk-tier I/O failures (not
	// corruption, which has its own counter): each write error silently cost
	// a future recomputation, each read error degraded a lookup to a miss.
	DiskWriteErrors uint64 `json:"disk_write_errors"`
	DiskReadErrors  uint64 `json:"disk_read_errors"`
	// StaleTempsRemoved counts orphaned temp files (crashed writers) swept
	// at Open.
	StaleTempsRemoved uint64 `json:"stale_temps_removed"`
	// BreakerState is the disk breaker's current state ("closed", "open",
	// "half-open"); BreakerTrips counts how often it opened.
	BreakerState string `json:"breaker_state,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips"`
	MemEntries   int    `json:"mem_entries"`
	MemBytes     int64  `json:"mem_bytes"`
}

// Hits returns total hits across both tiers.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// entry is one resident cache entry; entries form an intrusive LRU list
// (front = most recently used).
type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

// Cache is a concurrency-safe two-tier verdict store.
type Cache struct {
	dir        string   // "" = memory-only
	appVersion uint32   // caller's record-schema version, validated on read
	fs         chaos.FS // every disk operation goes through here
	br         *breaker // guards the disk tier against a dying device

	mu       sync.Mutex
	entries  map[string]*entry
	front    *entry // most recently used
	back     *entry // least recently used
	memBytes int64
	maxBytes int64

	trace   atomic.Value // obs.Sink; nil until SetTrace
	logOnce sync.Once

	memHits, diskHits, misses   atomic.Uint64
	puts, evictions             atomic.Uint64
	corruptions, versionMisses  atomic.Uint64
	diskWriteErrs, diskReadErrs atomic.Uint64
	staleTemps                  atomic.Uint64
}

// Open creates a two-tier cache on the real filesystem. dir is the
// persistent tier's root directory ("" disables the disk tier); it is
// created if missing. maxMemBytes bounds the in-memory tier (<= 0 selects
// DefaultMemBytes). appVersion is the caller's record-schema version:
// entries written under a different appVersion read as misses, so a
// record-format change can never decode stale bytes.
func Open(dir string, maxMemBytes int64, appVersion uint32) (*Cache, error) {
	return OpenFS(chaos.OS{}, dir, maxMemBytes, appVersion)
}

// OpenFS is Open on an explicit filesystem — the seam the chaos tests
// inject faults through. Opening also sweeps temp files orphaned by
// crashed writers (older than an hour) out of the shard directories.
func OpenFS(fsys chaos.FS, dir string, maxMemBytes int64, appVersion uint32) (*Cache, error) {
	if maxMemBytes <= 0 {
		maxMemBytes = DefaultMemBytes
	}
	c := &Cache{
		dir:        dir,
		appVersion: appVersion,
		fs:         fsys,
		br:         newBreaker(),
		entries:    map[string]*entry{},
		maxBytes:   maxMemBytes,
	}
	if dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		c.cleanStaleTemps()
	}
	return c, nil
}

// SetTrace routes disk-fault trace events (obs.StageCache, outcome
// "error") to s. Safe to call at any time; nil disables.
func (c *Cache) SetTrace(s obs.Sink) {
	c.trace.Store(&s)
}

// ConfigureBreaker tunes the disk circuit breaker: trip after threshold
// consecutive I/O errors, probe again after cooldown. Zero values keep the
// defaults.
func (c *Cache) ConfigureBreaker(threshold int, cooldown time.Duration) {
	c.br.mu.Lock()
	defer c.br.mu.Unlock()
	if threshold > 0 {
		c.br.threshold = threshold
	}
	if cooldown > 0 {
		c.br.cooldown = cooldown
	}
}

// cleanStaleTemps removes orphaned ".tmp-*" files left in shard
// directories by writers that died between CreateTemp and Rename. Only
// files older than staleTmpAge go: a younger one may belong to a live
// writer racing this Open. All errors are ignored — the sweep is
// best-effort hygiene, not correctness.
func (c *Cache) cleanStaleTemps() {
	shards, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTmpAge)
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		sdir := filepath.Join(c.dir, shard.Name())
		files, err := c.fs.ReadDir(sdir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasPrefix(f.Name(), ".tmp-") {
				continue
			}
			info, err := f.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
			if c.fs.Remove(filepath.Join(sdir, f.Name())) == nil {
				c.staleTemps.Add(1)
			}
		}
	}
}

// Dir returns the persistent tier's root, or "" for a memory-only cache.
func (c *Cache) Dir() string { return c.dir }

// Get returns the value stored under key, consulting memory first and then
// disk. A disk hit is promoted into the memory tier. The returned slice
// must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		c.mu.Unlock()
		c.memHits.Add(1)
		return e.val, true
	}
	c.mu.Unlock()

	if c.dir != "" && validKey(key) {
		if val, ok := c.readDisk(key); ok {
			c.insert(key, val)
			c.diskHits.Add(1)
			return val, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores val under key in both tiers. Values larger than the whole
// memory budget skip the memory tier but still persist.
func (c *Cache) Put(key string, val []byte) {
	c.puts.Add(1)
	c.insert(key, val)
	if c.dir != "" && validKey(key) {
		c.writeDisk(key, val)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.memBytes
	c.mu.Unlock()
	state, trips := c.br.snapshot()
	return Stats{
		MemHits:           c.memHits.Load(),
		DiskHits:          c.diskHits.Load(),
		Misses:            c.misses.Load(),
		Puts:              c.puts.Load(),
		Evictions:         c.evictions.Load(),
		Corruptions:       c.corruptions.Load(),
		VersionMisses:     c.versionMisses.Load(),
		DiskWriteErrors:   c.diskWriteErrs.Load(),
		DiskReadErrors:    c.diskReadErrs.Load(),
		StaleTempsRemoved: c.staleTemps.Load(),
		BreakerState:      state,
		BreakerTrips:      trips,
		MemEntries:        entries,
		MemBytes:          bytes,
	}
}

// ---------------------------------------------------------------- memory

func (c *Cache) insert(key string, val []byte) {
	size := int64(len(key) + len(val) + entryOverhead)
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.memBytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.moveToFront(e)
	} else {
		e := &entry{key: key, val: val}
		c.entries[key] = e
		c.pushFront(e)
		c.memBytes += size
	}
	for c.memBytes > c.maxBytes && c.back != nil {
		lru := c.back
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.memBytes -= int64(len(lru.key) + len(lru.val) + entryOverhead)
		c.evictions.Add(1)
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.front == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// ---------------------------------------------------------------- disk

// Entry header: magic, container format version, caller record version,
// payload length, FNV-64a payload checksum — 28 bytes, little endian.
var magic = [4]byte{'D', 'C', 'A', 'V'}

const headerSize = 4 + 4 + 4 + 8 + 8

// ValidKey reports whether key is a well-formed cache key: a lowercase-hex
// fingerprint string of at least three digits. The peer-cache protocol's
// HTTP handlers (`GET/PUT /cache/{key}`) validate inbound keys with it
// before touching either tier, so a request path can never escape the
// shard layout or name a special file.
func ValidKey(key string) bool { return validKey(key) }

// validKey restricts disk keys to lowercase-hex fingerprint strings, so a
// key can never escape the shard layout or name a special file.
func validKey(key string) bool {
	if len(key) < 3 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path shards entries by the first two hex digits of the key.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:])
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func (c *Cache) encode(val []byte) []byte {
	buf := make([]byte, headerSize+len(val))
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], c.appVersion)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(val)))
	binary.LittleEndian.PutUint64(buf[20:28], checksum(val))
	copy(buf[headerSize:], val)
	return buf
}

// writeDisk persists one entry via temp file + fsync + atomic rename. A
// failed write costs a future recomputation, never a wrong result — but it
// is not silent: it is counted, fed to the breaker, surfaced as a trace
// event, and logged once per process.
func (c *Cache) writeDisk(key string, val []byte) {
	if !c.br.allow() {
		return
	}
	if err := c.tryWriteDisk(key, val); err != nil {
		c.br.failure()
		c.diskWriteErrs.Add(1)
		c.noteWriteError(key, err)
		return
	}
	c.br.success()
}

func (c *Cache) tryWriteDisk(key string, val []byte) error {
	dst := c.path(key)
	dir := filepath.Dir(dst)
	if err := c.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := c.fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(c.encode(val))
	// Sync before rename: otherwise a machine crash could publish an entry
	// whose bytes never reached the disk.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		c.fs.Remove(name)
		switch {
		case werr != nil:
			return werr
		case serr != nil:
			return serr
		default:
			return cerr
		}
	}
	if err := c.fs.Rename(name, dst); err != nil {
		c.fs.Remove(name)
		return err
	}
	return nil
}

// noteWriteError surfaces one disk-write failure: a trace event per error
// (fed to /metrics via the analysis fold) and one process-wide log line —
// the first failure is news, the next thousand are noise.
func (c *Cache) noteWriteError(key string, err error) {
	if s := c.trace.Load(); s != nil {
		if sink := *s.(*obs.Sink); sink != nil {
			sink.Emit(obs.Event{Stage: obs.StageCache, Outcome: obs.OutcomeError, Err: err.Error()})
		}
	}
	c.logOnce.Do(func() {
		log.Printf("cache: disk write failed (entry %s): %v (further disk errors counted, not logged)", key, err)
	})
}

// readDisk loads and validates one entry. Anything malformed — short file,
// bad magic, length or checksum mismatch — counts as a corruption, removes
// the entry, and reads as a miss; a version mismatch does the same under
// its own counter. Only I/O errors feed the breaker: a missing entry is a
// healthy disk saying no, and corruption is bad bytes on a working disk.
func (c *Cache) readDisk(key string) ([]byte, bool) {
	if !c.br.allow() {
		return nil, false
	}
	p := c.path(key)
	data, err := c.fs.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			c.br.success()
			return nil, false
		}
		c.br.failure()
		c.diskReadErrs.Add(1)
		return nil, false
	}
	c.br.success()
	if len(data) < headerSize || [4]byte(data[0:4]) != magic {
		c.corrupt(p)
		return nil, false
	}
	format := binary.LittleEndian.Uint32(data[4:8])
	app := binary.LittleEndian.Uint32(data[8:12])
	if format != FormatVersion || app != c.appVersion {
		c.versionMisses.Add(1)
		c.fs.Remove(p)
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	if n != uint64(len(data)-headerSize) {
		c.corrupt(p)
		return nil, false
	}
	val := data[headerSize:]
	if checksum(val) != binary.LittleEndian.Uint64(data[20:28]) {
		c.corrupt(p)
		return nil, false
	}
	return val, true
}

func (c *Cache) corrupt(path string) {
	c.corruptions.Add(1)
	c.fs.Remove(path)
}
