package prove_test

import (
	"strings"
	"testing"

	"dca/internal/irbuild"
	"dca/internal/prove"
	"dca/internal/purity"
)

// proveLoop compiles src and runs the prover on the loopIndex-th loop of fn.
func proveLoop(t *testing.T, src, fn string, loopIndex int) prove.Result {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prove.Loop(prog, fn, loopIndex, purity.Analyze(prog))
}

func TestAffineDisjointProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	for (var i int = 0; i < 40; i++) { a[i] = 2*i + 1; }
	print(a[0]);
}`, "main", 0)
	if !r.Proved || r.Argument != prove.ArgAffine {
		t.Errorf("result = %+v, want affine-disjoint proof", r)
	}
}

func TestCarriedDependenceNotProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	for (var i int = 1; i < 40; i++) { a[i] = a[i-1] + 1; }
	print(a[0]);
}`, "main", 0)
	if r.Proved {
		t.Errorf("a[i] = a[i-1] proved: %+v", r)
	}
}

func TestNestedDisjointRows(t *testing.T) {
	src := `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 8; j++) { m[8*i + j] = i + j; }
	}
	print(m[0]);
}`
	if r := proveLoop(t, src, "main", 0); !r.Proved || r.Argument != prove.ArgAffine {
		t.Errorf("outer 8i+j: %+v, want proof", r)
	}
	if r := proveLoop(t, src, "main", 1); !r.Proved {
		t.Errorf("inner loop: %+v, want proof", r)
	}
}

func TestNestedOverlappingRowsNotProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var m []int = new [64]int;
	for (var i int = 0; i < 8; i++) {
		for (var j int = 0; j < 8; j++) { m[4*i + j] = i; }
	}
	print(m[0]);
}`, "main", 0)
	if r.Proved {
		t.Errorf("overlapping rows proved: %+v", r)
	}
}

func TestPureCalleeProved(t *testing.T) {
	r := proveLoop(t, `
func sq(x int) int { return x * x; }
func main() {
	var a []int = new [100]int;
	for (var i int = 0; i < 40; i++) { a[i] = sq(i); }
	print(a[0]);
}`, "main", 0)
	if !r.Proved || r.Argument != prove.ArgPure {
		t.Errorf("result = %+v, want pure-disjoint proof", r)
	}
}

func TestHeapReadingCalleeNotProved(t *testing.T) {
	// peek reads the heap: its result can observe other iterations' writes,
	// so the pure-disjoint argument must refuse it.
	r := proveLoop(t, `
func peek(a []int, k int) int { return a[k]; }
func main() {
	var a []int = new [100]int;
	for (var i int = 0; i < 40; i++) { a[i] = peek(a, i); }
	print(a[0]);
}`, "main", 0)
	if r.Proved {
		t.Errorf("heap-reading callee proved: %+v", r)
	}
}

func TestSumReductionProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	var s int = 0;
	for (var i int = 0; i < 40; i++) { s = s + a[i]; }
	print(s);
}`, "main", 0)
	if !r.Proved || r.Argument != prove.ArgReduction {
		t.Errorf("result = %+v, want reduction proof", r)
	}
}

func TestMinMaxProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	var m int = -1000000;
	for (var i int = 0; i < 40; i++) {
		if (a[i] > m) { m = a[i]; }
	}
	print(m);
}`, "main", 0)
	if !r.Proved || r.Argument != prove.ArgReduction {
		t.Errorf("result = %+v, want reduction (minmax) proof", r)
	}
}

func TestHistogramProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var h []int = new [8]int;
	var b []int = new [32]int;
	for (var i int = 0; i < 32; i++) { h[b[i] % 8] += 1; }
	print(h[0]);
}`, "main", 0)
	if !r.Proved || r.Argument != prove.ArgReduction {
		t.Errorf("result = %+v, want reduction (histogram) proof", r)
	}
}

func TestFloatReductionNotProved(t *testing.T) {
	// Float addition is not associative bit-for-bit — the dynamic stage
	// compares snapshots exactly, so a float fold must not be proved.
	r := proveLoop(t, `
func main() {
	var s float = 0.0;
	for (var i int = 0; i < 40; i++) { s = s + 1.5; }
	print(s);
}`, "main", 0)
	if r.Proved {
		t.Errorf("float reduction proved: %+v", r)
	}
}

func TestSecondaryInductionNotProved(t *testing.T) {
	// k is a second induction variable updated in the loop body; whether
	// its intermediate values stay order-invariant depends on how the
	// separation places it, so the prover refuses.
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	var k int = 0;
	for (var i int = 0; i < 30; i++) { a[k] = i; k = k + 3; }
	print(a[0]);
}`, "main", 0)
	if r.Proved {
		t.Errorf("secondary induction proved: %+v", r)
	}
}

// TestSymbolicTripProved: a commutativity proof quantifies over every
// iteration pair, so a symbolic bound (here a function parameter) does not
// obstruct it — affine.Carried treats the unknown trip conservatively.
func TestSymbolicTripProved(t *testing.T) {
	r := proveLoop(t, `
func f(a []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] = i; }
}
func main() {
	var a []int = new [10]int;
	f(a, 10);
	print(a[0]);
}`, "f", 0)
	if !r.Proved || r.Argument != prove.ArgAffine {
		t.Errorf("symbolic-trip disjoint loop not proved: %+v", r)
	}
}

// TestSymbolicTripCarriedNotProved: the unknown trip count must not weaken
// the dependence test — a carried dependence at distance 1 still blocks the
// proof when the bound is symbolic.
func TestSymbolicTripCarriedNotProved(t *testing.T) {
	r := proveLoop(t, `
func f(a []int, n int) {
	for (var i int = 1; i < n; i++) { a[i] = a[i-1] + 1; }
}
func main() {
	var a []int = new [10]int;
	f(a, 10);
	print(a[9]);
}`, "f", 0)
	if r.Proved {
		t.Errorf("symbolic-trip carried loop proved: %+v", r)
	}
}

// TestZeroTripNotProved: a loop statically known to never iterate keeps its
// dynamic NotExecuted verdict — the degenerate proof would be vacuous and
// less informative.
func TestZeroTripNotProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	var a []int = new [10]int;
	for (var i int = 0; i < 0; i++) { a[i] = i; }
	print(a[0]);
}`, "main", 0)
	if r.Proved {
		t.Errorf("zero-trip loop proved: %+v", r)
	}
	if !strings.Contains(r.Reason, "never iterates") {
		t.Errorf("reason = %q, want never-iterates obstruction", r.Reason)
	}
}

func TestIOLoopNotProved(t *testing.T) {
	r := proveLoop(t, `
func main() {
	for (var i int = 0; i < 10; i++) { print(i); }
}`, "main", 0)
	if r.Proved {
		t.Errorf("I/O loop proved: %+v", r)
	}
}

func TestNonOrderingGuardNotProved(t *testing.T) {
	// if (x != m) { m = x } is classified MinMax by the scalar matcher but
	// is order-dependent; the prover must reject the comparison kind.
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	var m int = 0;
	for (var i int = 0; i < 40; i++) {
		if (a[i] != m) { m = a[i]; }
	}
	print(m);
}`, "main", 0)
	if r.Proved {
		t.Errorf("!= guard proved: %+v", r)
	}
}

func TestConflictingGuardDirectionsNotProved(t *testing.T) {
	// Mixed min and max guards on one local do not compose into an
	// order-insensitive recurrence.
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	var b []int = new [100]int;
	var m int = 0;
	for (var i int = 0; i < 40; i++) {
		if (a[i] > m) { m = a[i]; }
		if (b[i] < m) { m = b[i]; }
	}
	print(m);
}`, "main", 0)
	if r.Proved {
		t.Errorf("mixed-direction guards proved: %+v", r)
	}
}

func TestGuardedSideEffectNotProved(t *testing.T) {
	// A store conditional on the running maximum is order-dependent even
	// though m itself is a clean minmax recurrence.
	r := proveLoop(t, `
func main() {
	var a []int = new [100]int;
	var b []int = new [100]int;
	var m int = -1000000;
	for (var i int = 0; i < 40; i++) {
		if (a[i] > m) { m = a[i]; b[i] = 1; }
	}
	print(m);
}`, "main", 0)
	if r.Proved {
		t.Errorf("guarded side effect proved: %+v", r)
	}
}

func TestScatterNotProved(t *testing.T) {
	// Indirect store a[b[i]] = i: possibly colliding writes, not an idiom.
	r := proveLoop(t, `
func main() {
	var a []int = new [10]int;
	var b []int = new [10]int;
	for (var i int = 0; i < 10; i++) { a[b[i]] = i; }
	print(a[0]);
}`, "main", 0)
	if r.Proved {
		t.Errorf("scatter proved: %+v", r)
	}
}

func TestPointerChaseNotProved(t *testing.T) {
	r := proveLoop(t, `
struct N { next *N; val int; }
func main() {
	var p *N = nil;
	var s int = 0;
	while (p != nil) { s = s + p->val; p = p->next; }
	print(s);
}`, "main", 0)
	if r.Proved {
		t.Errorf("pointer chase proved: %+v", r)
	}
}
