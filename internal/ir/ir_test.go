package ir_test

import (
	"strings"
	"testing"
	"testing/quick"

	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/types"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestValueEquality(t *testing.T) {
	o := ir.NewArrayObject(1, types.IntType, 2)
	cases := []struct {
		a, b ir.Value
		want bool
	}{
		{ir.IntVal(3), ir.IntVal(3), true},
		{ir.IntVal(3), ir.IntVal(4), false},
		{ir.FloatVal(1.5), ir.FloatVal(1.5), true},
		{ir.BoolVal(true), ir.BoolVal(true), true},
		{ir.BoolVal(true), ir.IntVal(1), false},
		{ir.StringVal("a"), ir.StringVal("a"), true},
		{ir.NilVal(), ir.NilVal(), true},
		{ir.NilVal(), ir.RefVal(nil), true}, // nil ref == nil
		{ir.RefVal(o), ir.RefVal(o), true},
		{ir.RefVal(o), ir.NilVal(), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %s == %s -> %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestZeroValues(t *testing.T) {
	if v := ir.ZeroValue(types.IntType); v.Kind != ir.KindInt || v.I != 0 {
		t.Errorf("zero int = %v", v)
	}
	if v := ir.ZeroValue(types.FloatType); v.Kind != ir.KindFloat {
		t.Errorf("zero float = %v", v)
	}
	if v := ir.ZeroValue(&types.Type{Kind: types.Array, Elem: types.IntType}); !v.IsNilRef() {
		t.Errorf("zero array = %v", v)
	}
}

func TestObjects(t *testing.T) {
	si := types.NewStructInfo("P", []types.FieldInfo{
		{Name: "x", Type: types.IntType},
		{Name: "y", Type: types.FloatType},
	})
	o := ir.NewStructObject(7, si)
	if o.Len() != 2 || o.FieldName(0) != "x" || o.Elems[1].Kind != ir.KindFloat {
		t.Errorf("struct object = %v", o)
	}
	a := ir.NewArrayObject(8, types.BoolType, 3)
	if a.Len() != 3 || a.TypeName != "[]bool" {
		t.Errorf("array object = %v", a)
	}
	if s := o.String(); !strings.Contains(s, "P#7") || !strings.Contains(s, "x: 0") {
		t.Errorf("object string = %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	prog := compile(t, `
func f(a []int, n int) int {
	var s int = 0;
	for (var i int = 0; i < n; i++) {
		if (a[i] > 0) { s += a[i]; }
	}
	return s;
}
func main() { var a []int = new [4]int; print(f(a, 4)); }
`)
	fn := prog.Func("f")
	clone := fn.Clone()
	if err := clone.Verify(); err != nil {
		t.Fatalf("clone verify: %v", err)
	}
	// Structural equality of printouts.
	if fn.String() != clone.String() {
		t.Errorf("clone renders differently:\n%s\nvs\n%s", fn, clone)
	}
	// Mutating the clone must not affect the original.
	clone.Blocks[0].Instrs = nil
	if len(fn.Blocks[0].Instrs) == 0 {
		t.Error("clone shares instruction slices with original")
	}
	// Locals must be distinct objects.
	for i := range fn.Locals {
		if fn.Locals[i] == clone.Locals[i] {
			t.Fatalf("local %d shared between clone and original", i)
		}
	}
}

func TestProgramClone(t *testing.T) {
	prog := compile(t, `func main() { var x int = 1; print(x); }`)
	clone := prog.Clone()
	if err := clone.Verify(); err != nil {
		t.Fatal(err)
	}
	if clone.Func("main") == prog.Func("main") {
		t.Error("program clone shares functions")
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	fn := ir.NewFunc("bad", types.VoidType)
	b := fn.NewBlock("entry")
	// No terminator.
	if err := fn.Verify(); err == nil || !strings.Contains(err.Error(), "no terminator") {
		t.Errorf("err = %v", err)
	}
	b.Term = &ir.Ret{}
	if err := fn.Verify(); err != nil {
		t.Errorf("now valid, got %v", err)
	}
	// Foreign local.
	other := ir.NewFunc("other", types.VoidType)
	l := other.NewLocal("x", types.IntType)
	b.Append(&ir.Mov{Dst: l, Src: ir.IntOp(1)})
	if err := fn.Verify(); err == nil || !strings.Contains(err.Error(), "foreign local") {
		t.Errorf("err = %v", err)
	}
	b.Instrs = nil
	// Foreign block target.
	fb := other.NewBlock("fb")
	fb.Term = &ir.Ret{}
	b.Term = &ir.Goto{Target: fb}
	if err := fn.Verify(); err == nil || !strings.Contains(err.Error(), "foreign block") {
		t.Errorf("err = %v", err)
	}
}

func TestPrinterRoundtripInfo(t *testing.T) {
	prog := compile(t, `
struct N { v int; next *N; }
func main() {
	var p *N = new N;
	p->v = 1;
	var a []int = new [2]int;
	a[0] = p->v;
	print(a[0]);
}
`)
	s := prog.String()
	for _, want := range []string{"func main()", "new N", "->v", "[", "print", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestBinKindFromString(t *testing.T) {
	for _, op := range []string{"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "==", "!=", "<", "<=", ">", ">="} {
		k, ok := ir.BinKindFromString(op)
		if !ok || k.String() != op {
			t.Errorf("roundtrip %q failed: %v %v", op, k, ok)
		}
	}
	if _, ok := ir.BinKindFromString("&&"); ok {
		t.Error("&& must not be an IR operator")
	}
}

// Property: shallow Equal is reflexive and symmetric for scalar values.
func TestValueEqualProperties(t *testing.T) {
	mk := func(kind uint8, i int64, f float64, s string) ir.Value {
		switch kind % 5 {
		case 0:
			return ir.IntVal(i)
		case 1:
			return ir.FloatVal(f)
		case 2:
			return ir.BoolVal(i%2 == 0)
		case 3:
			return ir.StringVal(s)
		}
		return ir.NilVal()
	}
	refl := func(kind uint8, i int64, f float64, s string) bool {
		v := mk(kind, i, f, s)
		return v.Equal(v)
	}
	sym := func(k1, k2 uint8, i1, i2 int64, f1, f2 float64, s1, s2 string) bool {
		a, b := mk(k1, i1, f1, s1), mk(k2, i2, f2, s2)
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
}
