// NPB-EP example: the embarrassingly-parallel benchmark proxy — a hot
// reduction nest evaluating pseudo-random trials, the benchmark where the
// paper reports its peak 55.2x speedup. The example runs all six detectors
// over the generated program, compares their counts to Table I/III rows,
// and reports each tool's modelled 72-core speedup (Fig. 6).
package main

import (
	"fmt"
	"log"

	"dca/internal/bench"
	"dca/internal/workloads/npb"
)

func main() {
	spec := npb.SpecByName("EP")
	fmt.Printf("generating NPB proxy %s: %d loops from the archetype mix\n\n", spec.Name, spec.ExpectedLoops())

	r, err := bench.RunNPB(spec)
	if err != nil {
		log.Fatal(err)
	}
	row := r.Counts()
	p := spec.Paper
	fmt.Println("detection (paper/measured):")
	fmt.Printf("  loops      %d/%d\n", p.Loops, row.Loops)
	fmt.Printf("  DepProf    %d/%d\n", p.DepProf, row.DepProf)
	fmt.Printf("  DiscoPoP   %d/%d\n", p.DiscoPoP, row.DiscoPoP)
	fmt.Printf("  Idioms     %d/%d\n", p.Idioms, row.Idioms)
	fmt.Printf("  Polly      %d/%d\n", p.Polly, row.Polly)
	fmt.Printf("  ICC        %d/%d\n", p.ICC, row.ICC)
	fmt.Printf("  DCA        %d/%d\n", p.DCA, row.DCA)

	found, fp, fn := r.Accuracy()
	fmt.Printf("\nDCA accuracy vs ground truth: found=%d falsePos=%d falseNeg=%d\n", found, fp, fn)

	s := r.Speedups()
	fmt.Println("\nmodelled 72-core speedups (paper/measured):")
	fmt.Printf("  Idioms %.1f/%.2f  Polly %.1f/%.2f  ICC %.1f/%.2f  DCA %.1f/%.2f\n",
		p.SpeedIdioms, s.Idioms, p.SpeedPolly, s.Polly, p.SpeedICC, s.ICC, p.SpeedDCA, s.DCA)
	fmt.Printf("  coverage: DCA %.0f%% (paper %d%%), combined static %.0f%% (paper %d%%)\n",
		s.CoverageDCA*100, p.CovDCA, s.CoverageStatic*100, p.CovStatic)
}
