package cache

import (
	"sync"
	"time"
)

// Breaker states. The breaker guards the cache's disk tier: repeated I/O
// failures trip it open, stopping every disk access for a cooldown so a
// dying or hung disk cannot drag each analysis through a failing syscall.
// After the cooldown one probe operation is let through (half-open); its
// success closes the breaker, its failure re-opens it for another cooldown.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Breaker defaults: trip after this many consecutive disk faults, probe
// again after this long.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// breaker is a consecutive-failure circuit breaker. Corrupt entries do not
// feed it — corruption means bad bytes on a working disk, which the read
// path already handles by deleting the entry — only I/O errors do.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	state    string
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    uint64
}

func newBreaker() *breaker {
	return &breaker{
		threshold: DefaultBreakerThreshold,
		cooldown:  DefaultBreakerCooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// allow reports whether a disk operation may proceed. While open it denies
// everything until the cooldown elapses, then admits exactly one probe
// (half-open); concurrent callers during a probe are denied.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success reports a disk operation that completed; a half-open probe's
// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.state = BreakerClosed
}

// failure reports a disk I/O error; enough consecutive ones — or one failed
// half-open probe — trip the breaker open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.trips++
}

// snapshot returns the current state name and total trips.
func (b *breaker) snapshot() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
