package diff

import (
	"testing"

	"dca/internal/fuzzgen"
)

// TestCorpusReplay replays every minimized counterexample in the checked-in
// regression corpus (internal/fuzzgen/corpus) through the full differential
// harness. Each entry was added when a campaign found a disagreement; once
// the underlying bug is fixed the entry must stay clean forever, so any
// violation here is a regression. An empty corpus passes trivially.
func TestCorpusReplay(t *testing.T) {
	entries, err := fuzzgen.LoadDir("../corpus")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	for _, e := range entries {
		e := e
		t.Run(e.Kind+"-"+e.Fingerprint[:8], func(t *testing.T) {
			if e.Spec == nil {
				t.Fatal("corpus entry has no program spec")
			}
			// The minimized spec must still render exactly what was stored —
			// the corpus is readable evidence, not just replay input.
			if got := e.Spec.Render(); got != e.Source {
				t.Errorf("stored source drifted from spec rendering:\n%s\n----\n%s", got, e.Source)
			}
			res := Check(e.Spec, Options{})
			if res.Trapped {
				t.Fatalf("replay trapped (%s): %s\nrepro: %s", res.TrapKind, res.TrapDetail, e.Repro)
			}
			for _, v := range res.Violations {
				t.Errorf("regression: %s on %s loop %d (label %s, verdict %s)\nrepro: %s",
					v.Kind, v.Fn, v.Index, v.Label, v.Verdict, e.Repro)
			}
		})
	}
}
