// Package core is the paper's primary contribution: Dynamic Commutativity
// Analysis. For every loop of a program it runs the static stage (selection,
// iterator/payload separation, outlining, instrumentation) and the dynamic
// stage (golden execution plus permuted executions under a set of
// schedules, with live-out verification), and reports a per-loop Verdict.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dca/internal/cfg"
	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/purity"
	"dca/internal/sandbox"
	"dca/internal/source"
)

// Verdict classifies one loop after analysis.
type Verdict int

// Verdicts. Commutative is DCA's "potentially parallelizable".
const (
	// Commutative: every tested permutation preserved all live-out
	// snapshots and the program output.
	Commutative Verdict = iota
	// NonCommutative: some permutation changed a live-out or faulted.
	NonCommutative
	// ExcludedIO: the loop performs I/O (directly or through a callee) and
	// is excluded during the selection step of the static stage.
	ExcludedIO
	// NotSeparable: iterator/payload separation or outlining failed; the
	// loop is outside the prototype's transformable class.
	NotSeparable
	// NotExecuted: the workload never reached the loop, so the dynamic
	// stage has no evidence.
	NotExecuted
	// Failed: the instrumented golden run diverged from the original
	// program, faulted, or the analysis itself panicked; the loop is
	// reported untestable while the rest of the suite continues.
	Failed
	// ResourceExhausted: a dynamic-stage execution ran out of its step,
	// heap, output, or wall-clock budget even after the bounded
	// doubled-budget retry. Unlike a fault this says nothing about the
	// program: the analysis simply could not afford the evidence.
	ResourceExhausted
)

var verdictNames = [...]string{"commutative", "non-commutative", "excluded-io", "not-separable", "not-executed", "failed", "resource-exhausted"}

func (v Verdict) String() string { return verdictNames[v] }

// IsParallelizable reports whether DCA proposes the loop for
// parallelization.
func (v Verdict) IsParallelizable() bool { return v == Commutative }

// LoopResult is the analysis outcome for one loop.
type LoopResult struct {
	Fn      string
	Index   int // loop index within the function (cfg.FindLoops order)
	ID      string
	Pos     source.Pos
	Depth   int
	Verdict Verdict
	Reason  string
	// Invocations/Iterations observed during the golden run.
	Invocations int
	Iterations  int64
	// SchedulesTested counts permutation schedules that completed.
	SchedulesTested int
	// Retries counts doubled-budget retries spent during the dynamic stage.
	Retries int
	// TrapKind is the sandbox classification ("fault", "budget", "timeout",
	// "panic") behind a trap-derived verdict; "" when no trap fired.
	TrapKind string
}

// Report is the whole-program analysis result.
type Report struct {
	Prog  *ir.Program
	Loops []*LoopResult
}

// Count returns how many loops carry the given verdict.
func (r *Report) Count(v Verdict) int {
	n := 0
	for _, l := range r.Loops {
		if l.Verdict == v {
			n++
		}
	}
	return n
}

// Commutative returns the loops DCA found commutative.
func (r *Report) Commutative() []*LoopResult {
	var out []*LoopResult
	for _, l := range r.Loops {
		if l.Verdict == Commutative {
			out = append(out, l)
		}
	}
	return out
}

// Result returns the outcome for a specific loop, or nil.
func (r *Report) Result(fn string, index int) *LoopResult {
	for _, l := range r.Loops {
		if l.Fn == fn && l.Index == index {
			return l
		}
	}
	return nil
}

func (r *Report) String() string {
	var b strings.Builder
	for _, l := range r.Loops {
		fmt.Fprintf(&b, "%-40s %-16s", l.ID, l.Verdict)
		if l.Reason != "" {
			fmt.Fprintf(&b, " (%s)", l.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Options configures the analysis.
type Options struct {
	// Schedules are the permutations tested against the golden order;
	// defaults to dcart.DefaultSchedules().
	Schedules []dcart.Schedule
	// MaxSteps bounds each program execution (default 200M).
	MaxSteps int64
	// Timeout bounds each program execution's wall-clock time (0 = none).
	Timeout time.Duration
	// MaxHeapObjects / MaxOutput bound each execution's heap allocations
	// and program output bytes (0 = none).
	MaxHeapObjects int64
	MaxOutput      int64
	// Retries is how many times a budget- or timeout-trapped execution is
	// retried at a doubled budget before the loop degrades to
	// ResourceExhausted. Default 1; negative disables retries.
	Retries int
	// Inject deterministically trips a trap inside the instrumented
	// executions — the test harness for the degradation paths themselves.
	// InjectFn/InjectLoop restrict it to one loop; InjectFn == "" applies
	// it to every loop. The uninstrumented reference run is never injected.
	Inject     sandbox.Inject
	InjectFn   string
	InjectLoop int
}

func (o *Options) normalize() {
	if len(o.Schedules) == 0 {
		o.Schedules = dcart.DefaultSchedules()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000_000
	}
	switch {
	case o.Retries == 0:
		o.Retries = 1
	case o.Retries < 0:
		o.Retries = 0
	}
}

func (o *Options) limits() sandbox.Limits {
	return sandbox.Limits{
		MaxSteps:       o.MaxSteps,
		MaxHeapObjects: o.MaxHeapObjects,
		MaxOutput:      o.MaxOutput,
		Timeout:        o.Timeout,
	}
}

// injectorFor arms the configured injection for one loop's dynamic stage,
// or returns nil when injection is off or aimed at a different loop.
func (o *Options) injectorFor(fn string, loop int) *sandbox.Injector {
	if o.Inject.AtStep == 0 && o.Inject.AtIntrinsic == 0 {
		return nil
	}
	if o.InjectFn != "" && (o.InjectFn != fn || o.InjectLoop != loop) {
		return nil
	}
	return sandbox.NewInjector(o.Inject)
}

// Analyze runs DCA over every loop of every function in the program.
func Analyze(prog *ir.Program, opt Options) (*Report, error) {
	opt.normalize()
	rep := &Report{Prog: prog}

	// Reference output of the unmodified program. A trap here is fatal for
	// the whole analysis: with no reference behaviour there is nothing to
	// compare any loop's replays against.
	var refOut strings.Builder
	if oc := sandbox.Run(nil, prog, interp.Config{Out: &refOut}, opt.limits(), nil); !oc.OK() {
		return nil, fmt.Errorf("core: reference execution failed (%s): %w", oc.Trap.Kind, oc.Trap)
	}

	pur := purity.Analyze(prog)

	for _, fn := range prog.Funcs {
		g, loops := cfg.LoopsOf(fn)
		for _, loop := range loops {
			res := &LoopResult{
				Fn:    fn.Name,
				Index: loop.Index,
				ID:    loop.ID(),
				Pos:   loop.Header.Pos,
				Depth: loop.Depth,
			}
			rep.Loops = append(rep.Loops, res)
			analyzeLoop(prog, fn, g, loop, pur, opt, refOut.String(), res)
		}
	}
	sort.SliceStable(rep.Loops, func(i, j int) bool {
		if rep.Loops[i].Fn != rep.Loops[j].Fn {
			return rep.Loops[i].Fn < rep.Loops[j].Fn
		}
		return rep.Loops[i].Index < rep.Loops[j].Index
	})
	return rep, nil
}

// AnalyzeLoop runs DCA on a single loop of the named function.
func AnalyzeLoop(prog *ir.Program, fnName string, loopIndex int, opt Options) (*LoopResult, error) {
	opt.normalize()
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("core: no function %q", fnName)
	}
	g, loops := cfg.LoopsOf(fn)
	if loopIndex < 0 || loopIndex >= len(loops) {
		return nil, fmt.Errorf("core: %s has %d loops", fnName, len(loops))
	}
	loop := loops[loopIndex]
	var refOut strings.Builder
	if oc := sandbox.Run(nil, prog, interp.Config{Out: &refOut}, opt.limits(), nil); !oc.OK() {
		return nil, fmt.Errorf("core: reference execution failed (%s): %w", oc.Trap.Kind, oc.Trap)
	}
	res := &LoopResult{Fn: fnName, Index: loopIndex, ID: loop.ID(), Pos: loop.Header.Pos, Depth: loop.Depth}
	analyzeLoop(prog, fn, g, loop, purity.Analyze(prog), opt, refOut.String(), res)
	return res, nil
}

// runCell executes the instrumented program under a fresh runtime from
// mkRT inside a sandbox cell, retrying Budget and Timeout traps at doubled
// limits up to opt.Retries times. It returns the last attempt's runtime,
// captured output, trap (nil on success), and the retries spent.
func runCell(prog *ir.Program, mkRT func() *dcart.Runtime, opt Options, inj *sandbox.Injector) (*dcart.Runtime, string, *sandbox.Trap, int) {
	lim := opt.limits()
	retries := 0
	for {
		rt := mkRT()
		var out strings.Builder
		oc := sandbox.Run(nil, prog, interp.Config{Out: &out, Runtime: rt}, lim, inj)
		if oc.OK() {
			return rt, out.String(), nil, retries
		}
		k := oc.Trap.Kind
		if (k == sandbox.Budget || k == sandbox.Timeout) && retries < opt.Retries {
			retries++
			lim = lim.Doubled()
			continue
		}
		return rt, out.String(), oc.Trap, retries
	}
}

func analyzeLoop(prog *ir.Program, fn *ir.Func, g *cfg.Graph, loop *cfg.Loop, pur *purity.Info, opt Options, refOut string, res *LoopResult) {
	// A panic anywhere in this loop's static or dynamic stage (including
	// instrumentation) marks the loop Failed; the suite run continues.
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = Failed
			res.TrapKind = sandbox.Panic.String()
			res.Reason = fmt.Sprintf("internal panic: %v", r)
		}
	}()

	// --- Selection: exclude I/O loops (§IV-E). ---
	if pur.LoopDoesIO(loop.Blocks) {
		res.Verdict = ExcludedIO
		res.Reason = "loop performs I/O directly or through a callee"
		return
	}

	// --- Static stage: separate, outline, instrument. ---
	inst, err := instrument.Loop(prog, fn.Name, loop.Index)
	if err != nil {
		res.Verdict = NotSeparable
		res.Reason = trimPrefixes(err.Error())
		return
	}

	inj := opt.injectorFor(fn.Name, loop.Index)

	// --- Dynamic stage: golden run. ---
	golden, goldenOut, trap, retries := runCell(inst.Prog, func() *dcart.Runtime { return dcart.NewRuntime(dcart.Identity{}) }, opt, inj)
	res.Retries += retries
	if trap != nil {
		res.TrapKind = trap.Kind.String()
		switch trap.Kind {
		case sandbox.Budget, sandbox.Timeout:
			// The analysis ran out of resources, not the program out of
			// correctness: degrade without claiming a verdict.
			res.Verdict = ResourceExhausted
			res.Reason = fmt.Sprintf("golden run hit its %s limit after %d retries: %v", trap.Kind, retries, trap.Err)
		case sandbox.Panic:
			res.Verdict = Failed
			res.Reason = fmt.Sprintf("internal panic during golden run: %v", trap.Err)
		default: // Fault
			// A fault in *original* order means the transformation itself
			// broke the program; it is not commutativity evidence.
			res.Verdict = Failed
			res.Reason = "golden run faulted: " + trap.Err.Error()
		}
		return
	}
	if goldenOut != refOut {
		// The transformation changed observable behaviour even in original
		// order: a separability assumption was violated dynamically.
		res.Verdict = Failed
		res.Reason = "instrumented golden run diverges from original program"
		return
	}
	res.Invocations = golden.Invocations
	res.Iterations = golden.Iterations
	if golden.Iterations == 0 {
		// The workload either never reaches the loop or always exits it
		// before the payload runs: no dynamic evidence either way.
		res.Verdict = NotExecuted
		res.Reason = "workload never executes this loop's payload"
		return
	}

	// --- Dynamic stage: permuted runs + live-out verification. ---
	for _, sched := range opt.Schedules {
		rt, out, trap, retries := runCell(inst.Prog, func() *dcart.Runtime { return dcart.NewRuntime(sched) }, opt, inj)
		res.Retries += retries
		if trap != nil {
			res.TrapKind = trap.Kind.String()
			switch trap.Kind {
			case sandbox.Fault:
				// The golden run completed but this permutation trapped:
				// a divergent observable behaviour, reliably detected as a
				// commutativity violation (§IV-E).
				res.Verdict = NonCommutative
				res.Reason = fmt.Sprintf("schedule %s faulted where the golden run did not: %v", sched.Name(), trap.Err)
			case sandbox.Budget, sandbox.Timeout:
				res.Verdict = ResourceExhausted
				res.Reason = fmt.Sprintf("schedule %s hit its %s limit after %d retries: %v", sched.Name(), trap.Kind, retries, trap.Err)
			default: // Panic
				res.Verdict = Failed
				res.Reason = fmt.Sprintf("internal panic during schedule %s: %v", sched.Name(), trap.Err)
			}
			return
		}
		if why := compareRuns(golden, rt, refOut, out, sched); why != "" {
			res.Verdict = NonCommutative
			res.Reason = why
			return
		}
		res.SchedulesTested++
	}
	res.Verdict = Commutative
}

func compareRuns(golden, rt *dcart.Runtime, refOut, out string, sched dcart.Schedule) string {
	if out != refOut {
		return fmt.Sprintf("schedule %s changed program output", sched.Name())
	}
	if len(rt.Snapshots) != len(golden.Snapshots) {
		return fmt.Sprintf("schedule %s changed invocation count (%d vs %d)", sched.Name(), len(rt.Snapshots), len(golden.Snapshots))
	}
	for i := range rt.Snapshots {
		if rt.Snapshots[i] != golden.Snapshots[i] {
			return fmt.Sprintf("schedule %s changed live-outs of invocation %d", sched.Name(), i)
		}
	}
	return ""
}

func trimPrefixes(s string) string {
	s = strings.TrimPrefix(s, "instrument: ")
	return s
}
