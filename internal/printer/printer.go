// Package printer renders a MiniC AST back to canonical source text. The
// output reparses to an identical tree (round-trip property), which makes
// the printer usable as a formatter (`dca fmt`) and lets the workload
// generators emit canonical sources.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"dca/internal/ast"
)

// Print renders a whole program.
func Print(prog *ast.Program) string {
	p := &printer{}
	for i, s := range prog.Structs {
		if i > 0 {
			p.nl()
		}
		p.structDecl(s)
	}
	if len(prog.Structs) > 0 && len(prog.Funcs) > 0 {
		p.nl()
	}
	for i, f := range prog.Funcs {
		if i > 0 {
			p.nl()
		}
		p.funcDecl(f)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl()                          { p.b.WriteByte('\n') }
func (p *printer) w(s string)                   { p.b.WriteString(s) }
func (p *printer) f(format string, args ...any) { fmt.Fprintf(&p.b, format, args...) }

func (p *printer) line(s string) {
	p.w(strings.Repeat("\t", p.indent))
	p.w(s)
	p.nl()
}

func (p *printer) structDecl(s *ast.StructDecl) {
	p.f("struct %s {", s.Name)
	if len(s.Fields) > 0 {
		p.w(" ")
		for _, fd := range s.Fields {
			p.f("%s %s; ", fd.Name, fd.Type)
		}
	} else {
		p.w(" ")
	}
	p.w("}\n")
}

func (p *printer) funcDecl(fd *ast.FuncDecl) {
	p.f("func %s(", fd.Name)
	for i, prm := range fd.Params {
		if i > 0 {
			p.w(", ")
		}
		p.f("%s %s", prm.Name, prm.Type)
	}
	p.w(")")
	if fd.Ret != nil {
		p.f(" %s", fd.Ret)
	}
	p.w(" {\n")
	p.indent++
	for _, st := range fd.Body.Stmts {
		p.stmt(st)
	}
	p.indent--
	p.w("}\n")
}

func (p *printer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		p.line("{")
		p.indent++
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ast.VarDecl:
		if s.Init != nil {
			p.line(fmt.Sprintf("var %s %s = %s;", s.Name, s.Type, expr(s.Init)))
		} else {
			p.line(fmt.Sprintf("var %s %s;", s.Name, s.Type))
		}
	case *ast.AssignStmt:
		p.line(fmt.Sprintf("%s %s %s;", expr(s.LHS), s.Op, expr(s.RHS)))
	case *ast.IncDecStmt:
		op := "++"
		if s.Dec {
			op = "--"
		}
		p.line(expr(s.LHS) + op + ";")
	case *ast.IfStmt:
		p.ifChain(s, true)
	case *ast.WhileStmt:
		p.line(fmt.Sprintf("while (%s) {", expr(s.Cond)))
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ast.ForStmt:
		var init, cond, post string
		if s.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(capture(s.Init)), ";")
		}
		if s.Cond != nil {
			cond = expr(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(capture(s.Post)), ";")
		}
		p.line(fmt.Sprintf("for (%s; %s; %s) {", init, cond, post))
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ast.ReturnStmt:
		if s.Val != nil {
			p.line("return " + expr(s.Val) + ";")
		} else {
			p.line("return;")
		}
	case *ast.BreakStmt:
		p.line("break;")
	case *ast.ContinueStmt:
		p.line("continue;")
	case *ast.ExprStmt:
		p.line(expr(s.X) + ";")
	case *ast.PrintStmt:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = expr(a)
		}
		p.line("print(" + strings.Join(args, ", ") + ");")
	}
}

func (p *printer) ifChain(s *ast.IfStmt, leading bool) {
	head := fmt.Sprintf("if (%s) {", expr(s.Cond))
	if leading {
		p.line(head)
	} else {
		p.w(" " + head + "\n")
	}
	p.indent++
	for _, st := range s.Then.Stmts {
		p.stmt(st)
	}
	p.indent--
	switch e := s.Else.(type) {
	case nil:
		p.line("}")
	case *ast.IfStmt:
		p.w(strings.Repeat("\t", p.indent) + "} else")
		p.ifChain(e, false)
	case *ast.BlockStmt:
		p.line("} else {")
		p.indent++
		for _, st := range e.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	}
}

// capture prints a statement without indentation (for for-clauses).
func capture(s ast.Stmt) string {
	q := &printer{}
	q.stmt(s)
	return q.b.String()
}

// expr renders an expression with minimal, correct parenthesization.
func expr(e ast.Expr) string { return exprPrec(e, 0) }

// Binary precedence levels mirror the parser's table.
func precOf(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=":
		return 3
	case "<", "<=", ">", ">=":
		return 4
	case "+", "-", "|", "^":
		return 5
	case "*", "/", "%", "<<", ">>", "&":
		return 6
	}
	return 0
}

func exprPrec(e ast.Expr, min int) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *ast.FloatLit:
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *ast.BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *ast.StringLit:
		return strconv.Quote(e.Val)
	case *ast.NilLit:
		return "nil"
	case *ast.BinaryExpr:
		prec := precOf(e.Op)
		s := exprPrec(e.X, prec) + " " + e.Op + " " + exprPrec(e.Y, prec+1)
		if prec < min {
			return "(" + s + ")"
		}
		return s
	case *ast.UnaryExpr:
		inner := exprPrec(e.X, 7)
		if strings.HasPrefix(inner, e.Op) {
			inner = "(" + inner + ")" // avoid -- / !! token gluing
		}
		s := e.Op + inner
		if min > 7 {
			return "(" + s + ")"
		}
		return s
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = expr(a)
		}
		return e.Fn.Name + "(" + strings.Join(args, ", ") + ")"
	case *ast.IndexExpr:
		return exprPrec(e.X, 8) + "[" + expr(e.Index) + "]"
	case *ast.FieldExpr:
		return exprPrec(e.X, 8) + "->" + e.Name
	case *ast.NewExpr:
		if e.Len != nil {
			return "new [" + expr(e.Len) + "]" + e.Type.String()
		}
		return "new " + e.Type.String()
	}
	return "/*?*/"
}
