package cfg

import "dca/internal/ir"

// PostDom holds the postdominator tree and control-dependence relation of a
// function. A virtual exit node (represented by nil) postdominates every
// return block.
type PostDom struct {
	G *Graph
	// ipdom maps a block to its immediate postdominator; blocks whose only
	// postdominator is the virtual exit map to nil.
	ipdom map[*ir.Block]*ir.Block
	// CD maps a block B to the set of branch blocks A such that B is
	// control dependent on A (Ferrante et al.).
	CD map[*ir.Block]map[*ir.Block]bool
}

// ComputePostDom builds postdominators and control dependences.
func ComputePostDom(g *Graph) *PostDom {
	pd := &PostDom{G: g, ipdom: map[*ir.Block]*ir.Block{}, CD: map[*ir.Block]map[*ir.Block]bool{}}
	// Postorder over the forward CFG gives us an order where, reversed, we
	// can iterate the backward dominance problem. We implement the simple
	// iterative data-flow formulation over block sets; functions here are
	// small enough that O(n^2) bitset-free iteration is fine.
	blocks := g.RPO
	n := len(blocks)
	idx := map[*ir.Block]int{}
	for i, b := range blocks {
		idx[b] = i
	}
	// pdom[i] = set of blocks postdominating blocks[i]; nil bit (virtual
	// exit) is implicit. Start: returns postdominated by themselves; others
	// by everything.
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	pdom := make([][]bool, n)
	isRet := func(b *ir.Block) bool { return len(g.Succs[b]) == 0 }
	for i, b := range blocks {
		pdom[i] = make([]bool, n)
		if isRet(b) {
			pdom[i][i] = true
		} else {
			copy(pdom[i], full)
		}
	}
	changed := true
	for changed {
		changed = false
		// Visit in reverse RPO (approximates postorder of reverse CFG).
		for i := n - 1; i >= 0; i-- {
			b := blocks[i]
			if isRet(b) {
				continue
			}
			// meet over successors
			meet := make([]bool, n)
			copy(meet, full)
			for _, s := range g.Succs[b] {
				si := idx[s]
				for k := 0; k < n; k++ {
					meet[k] = meet[k] && pdom[si][k]
				}
			}
			meet[i] = true
			for k := 0; k < n; k++ {
				if meet[k] != pdom[i][k] {
					copy(pdom[i], meet)
					changed = true
					break
				}
			}
		}
	}
	// Immediate postdominator: the strict postdominator not postdominated
	// by any other strict postdominator.
	for i, b := range blocks {
		var best *ir.Block
		for k := 0; k < n; k++ {
			if k == i || !pdom[i][k] {
				continue
			}
			c := blocks[k]
			if best == nil {
				best = c
				continue
			}
			// c is "closer" if best postdominates c.
			if pdom[idx[c]][idx[best]] {
				best = c
			}
		}
		pd.ipdom[b] = best
	}
	// Control dependence: for each edge A->B where B does not postdominate
	// A, every node from B up the postdom tree to (exclusive) ipdom(A) is
	// control dependent on A.
	postdominates := func(x, y *ir.Block) bool { // x postdominates y
		return pdom[idx[y]][idx[x]]
	}
	for _, a := range blocks {
		if len(g.Succs[a]) < 2 {
			continue
		}
		stop := pd.ipdom[a]
		for _, b := range g.Succs[a] {
			if postdominates(b, a) {
				continue
			}
			for r := b; r != nil && r != stop; r = pd.ipdom[r] {
				m := pd.CD[r]
				if m == nil {
					m = map[*ir.Block]bool{}
					pd.CD[r] = m
				}
				m[a] = true
			}
		}
	}
	return pd
}

// Ipdom returns the immediate postdominator (nil = virtual exit).
func (pd *PostDom) Ipdom(b *ir.Block) *ir.Block { return pd.ipdom[b] }

// ControllingBranches returns the branch blocks that b is control dependent
// on.
func (pd *PostDom) ControllingBranches(b *ir.Block) []*ir.Block {
	var out []*ir.Block
	for a := range pd.CD[b] {
		out = append(out, a)
	}
	return out
}
