package parser_test

import (
	"testing"

	"dca/internal/parser"
	"dca/internal/types"
)

// FuzzParse feeds arbitrary text through the parser and, when it parses,
// through the type checker: neither may panic or hang.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() { }",
		"struct S { a int; b *S; } func main() { var s *S = new S; s->a = 1; }",
		"func f(x int) int { return x * 2; } func main() { print(f(21)); }",
		`func main() { for (var i int = 0; i < 10; i++) { if (i % 2 == 0) { continue; } break; } }`,
		`func main() { var a []int = new [4]int; a[0] += len(a); print(a[0]); }`,
		`func main() { var s string = "a\n\"b"; print(s < "z", s + s); }`,
		`func main() { while (true) { } }`,
		"func main() { var f float = 1.5e3; print(int(f), float(2)); }",
		"struct { } func",
		"func main() { ((((((((((1))))))))))",
		"/* unterminated",
		"func main() { a->b->c[d[e]]->f = -!-!g; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		prog, err := parser.Parse("fuzz.mc", src)
		if err != nil || prog == nil {
			return
		}
		_, _ = types.Check(prog)
	})
}
