// Package parser implements a recursive-descent parser for MiniC.
package parser

import (
	"strconv"

	"dca/internal/ast"
	"dca/internal/lexer"
	"dca/internal/source"
	"dca/internal/token"
)

// Parse parses the given source text into a Program. The returned DiagList
// error is non-nil if any syntax errors were found.
func Parse(name, text string) (*ast.Program, error) {
	file := source.NewFile(name, text)
	diags := &source.DiagList{}
	toks := lexer.New(file, diags).Scan()
	p := &parser{file: file, toks: toks, diags: diags}
	prog := p.parseProgram()
	diags.Sort()
	return prog, diags.Err()
}

// MustParse parses text and panics on error; intended for workload
// definitions whose sources are compiled into the binary.
func MustParse(name, text string) *ast.Program {
	prog, err := Parse(name, text)
	if err != nil {
		panic("parser.MustParse(" + name + "): " + err.Error())
	}
	return prog
}

type parser struct {
	file  *source.File
	toks  []token.Token
	pos   int
	diags *source.DiagList
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) next() token.Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf("expected %s, found %s", k, t)
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *parser) errorf(format string, args ...any) {
	p.diags.Add(p.file.Name, p.cur().Pos, format, args...)
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync(stop ...token.Kind) {
	for !p.at(token.EOF) {
		k := p.cur().Kind
		for _, s := range stop {
			if k == s {
				return
			}
		}
		p.advance()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.file}
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwStruct:
			prog.Structs = append(prog.Structs, p.parseStruct())
		case token.KwFunc:
			prog.Funcs = append(prog.Funcs, p.parseFunc())
		default:
			p.errorf("expected 'struct' or 'func' at top level, found %s", p.cur())
			p.sync(token.KwStruct, token.KwFunc)
		}
	}
	return prog
}

func (p *parser) parseStruct() *ast.StructDecl {
	kw := p.expect(token.KwStruct)
	name := p.expect(token.IDENT)
	d := &ast.StructDecl{KwPos: kw.Pos, Name: name.Text}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		fname := p.expect(token.IDENT)
		ftype := p.parseType()
		p.expect(token.SEMICOLON)
		d.Fields = append(d.Fields, ast.Field{NamePos: fname.Pos, Name: fname.Text, Type: ftype})
	}
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseFunc() *ast.FuncDecl {
	kw := p.expect(token.KwFunc)
	name := p.expect(token.IDENT)
	d := &ast.FuncDecl{KwPos: kw.Pos, Name: name.Text}
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		pname := p.expect(token.IDENT)
		ptype := p.parseType()
		d.Params = append(d.Params, ast.Field{NamePos: pname.Pos, Name: pname.Text, Type: ptype})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	if !p.at(token.LBRACE) {
		d.Ret = p.parseType()
	}
	d.Body = p.parseBlock()
	return d
}

func (p *parser) parseType() ast.Type {
	t := p.cur()
	switch {
	case t.Kind.IsTypeKeyword():
		p.advance()
		return &ast.NamedType{NamePos: t.Pos, Name: t.Kind.String()}
	case t.Kind == token.IDENT:
		p.advance()
		return &ast.NamedType{NamePos: t.Pos, Name: t.Text}
	case t.Kind == token.STAR:
		p.advance()
		return &ast.PointerType{StarPos: t.Pos, Elem: p.parseType()}
	case t.Kind == token.LBRACKET:
		p.advance()
		p.expect(token.RBRACKET)
		return &ast.ArrayType{BrackPos: t.Pos, Elem: p.parseType()}
	}
	p.errorf("expected type, found %s", t)
	p.advance()
	return &ast.NamedType{NamePos: t.Pos, Name: "int"}
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	b := &ast.BlockStmt{LBrace: lb.Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.KwVar:
		return p.parseVarDecl()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseBlock()
		return &ast.WhileStmt{KwPos: t.Pos, Cond: cond, Body: body}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.advance()
		var val ast.Expr
		if !p.at(token.SEMICOLON) {
			val = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return &ast.ReturnStmt{KwPos: t.Pos, Val: val}
	case token.KwBreak:
		p.advance()
		p.expect(token.SEMICOLON)
		return &ast.BreakStmt{KwPos: t.Pos}
	case token.KwContinue:
		p.advance()
		p.expect(token.SEMICOLON)
		return &ast.ContinueStmt{KwPos: t.Pos}
	case token.KwPrint:
		p.advance()
		p.expect(token.LPAREN)
		var args []ast.Expr
		for !p.at(token.RPAREN) && !p.at(token.EOF) {
			args = append(args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.PrintStmt{KwPos: t.Pos, Args: args}
	case token.LBRACE:
		return p.parseBlock()
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMICOLON)
	return s
}

func (p *parser) parseVarDecl() ast.Stmt {
	kw := p.expect(token.KwVar)
	name := p.expect(token.IDENT)
	typ := p.parseType()
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	return &ast.VarDecl{KwPos: kw.Pos, Name: name.Text, Type: typ, Init: init}
}

func (p *parser) parseIf() ast.Stmt {
	kw := p.expect(token.KwIf)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			els = p.parseIf()
		} else {
			els = p.parseBlock()
		}
	}
	return &ast.IfStmt{KwPos: kw.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseFor() ast.Stmt {
	kw := p.expect(token.KwFor)
	p.expect(token.LPAREN)
	var init ast.Stmt
	if !p.at(token.SEMICOLON) {
		if p.at(token.KwVar) {
			init = p.parseVarDecl() // consumes the ';'
		} else {
			init = p.parseSimpleStmt()
			p.expect(token.SEMICOLON)
		}
	} else {
		p.expect(token.SEMICOLON)
	}
	var cond ast.Expr
	if !p.at(token.SEMICOLON) {
		cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	var post ast.Stmt
	if !p.at(token.RPAREN) {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.ForStmt{KwPos: kw.Pos, Init: init, Cond: cond, Post: post, Body: body}
}

// parseSimpleStmt parses an assignment, inc/dec or expression statement
// (without the trailing semicolon).
func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parseExpr()
	t := p.cur()
	switch {
	case t.Kind.IsAssignOp():
		p.advance()
		rhs := p.parseExpr()
		return &ast.AssignStmt{LHS: lhs, Op: t.Kind.String(), RHS: rhs}
	case t.Kind == token.PLUSPLUS:
		p.advance()
		return &ast.IncDecStmt{LHS: lhs}
	case t.Kind == token.MINUSMINUS:
		p.advance()
		return &ast.IncDecStmt{LHS: lhs, Dec: true}
	}
	return &ast.ExprStmt{X: lhs}
}

// Binary operator precedence; higher binds tighter.
func precedence(k token.Kind) int {
	switch k {
	case token.OROR:
		return 1
	case token.ANDAND:
		return 2
	case token.EQ, token.NEQ:
		return 3
	case token.LT, token.LEQ, token.GT, token.GEQ:
		return 4
	case token.PLUS, token.MINUS, token.PIPE, token.CARET:
		return 5
	case token.STAR, token.SLASH, token.PERCENT, token.SHL, token.SHR, token.AMP:
		return 6
	}
	return 0
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		t := p.cur()
		prec := precedence(t.Kind)
		if prec < minPrec {
			return x
		}
		p.advance()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{X: x, Op: t.Kind.String(), Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.MINUS:
		p.advance()
		return &ast.UnaryExpr{OpPos: t.Pos, Op: "-", X: p.parseUnary()}
	case token.NOT:
		p.advance()
		return &ast.UnaryExpr{OpPos: t.Pos, Op: "!", X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBRACKET:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.ARROW, token.DOT:
			p.advance()
			name := p.expect(token.IDENT)
			x = &ast.FieldExpr{X: x, Name: name.Text}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	// Type keywords in expression position are conversion builtins:
	// float(x), int(x).
	if t.Kind.IsTypeKeyword() && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == token.LPAREN {
		p.advance()
		p.advance()
		call := &ast.CallExpr{Fn: &ast.Ident{NamePos: t.Pos, Name: t.Kind.String()}}
		for !p.at(token.RPAREN) && !p.at(token.EOF) {
			call.Args = append(call.Args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		return call
	}
	switch t.Kind {
	case token.IDENT:
		p.advance()
		id := &ast.Ident{NamePos: t.Pos, Name: t.Text}
		if p.at(token.LPAREN) {
			p.advance()
			call := &ast.CallExpr{Fn: id}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			return call
		}
		return id
	case token.INT:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.diags.Add(p.file.Name, t.Pos, "invalid integer literal %q", t.Text)
		}
		return &ast.IntLit{LitPos: t.Pos, Val: v}
	case token.FLOAT:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.diags.Add(p.file.Name, t.Pos, "invalid float literal %q", t.Text)
		}
		return &ast.FloatLit{LitPos: t.Pos, Val: v}
	case token.STRING:
		p.advance()
		return &ast.StringLit{LitPos: t.Pos, Val: t.Text}
	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Val: true}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Val: false}
	case token.KwNil:
		p.advance()
		return &ast.NilLit{LitPos: t.Pos}
	case token.KwNew:
		p.advance()
		if p.accept(token.LBRACKET) {
			n := p.parseExpr()
			p.expect(token.RBRACKET)
			elem := p.parseType()
			return &ast.NewExpr{KwPos: t.Pos, Type: elem, Len: n}
		}
		return &ast.NewExpr{KwPos: t.Pos, Type: p.parseType()}
	case token.LPAREN:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf("expected expression, found %s", t)
	p.advance()
	return &ast.IntLit{LitPos: t.Pos}
}
