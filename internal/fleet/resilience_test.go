// Tests for the dispatch-policy and membership half of fleet resilience:
// bounded no-progress rounds, Retry-After honoring, hedged dispatch,
// prober-driven rejoin, and the parallel health sweep.
package fleet_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/fingerprint"
	"dca/internal/fleet"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/obs"
	"dca/internal/server"
)

// newMetrics builds a standalone fleet.Metrics for a hand-built
// coordinator.
func newMetrics(nodes []string) *fleet.Metrics {
	return fleet.NewMetrics(obs.NewRegistry(), fleet.NewRing(nodes))
}

// fastPolicy keeps test wall-clock tight; probes are effectively off so
// membership decisions stay where the test put them.
func fastPolicy() fleet.Policy {
	return fleet.Policy{
		NodeRetries:   0,
		RetryBase:     time.Millisecond,
		RetryCap:      5 * time.Millisecond,
		ProbeInterval: time.Hour,
	}
}

// deadAddr returns a loopback address with nothing listening on it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// TestFleetNoProgressBounded is the regression test for the infinite
// re-dispatch loop: a worker that answers 200 while omitting its loops,
// combined with a dead node, used to spin the coordinator forever (the
// missing-loops guard only fired when no node had died). Now the run must
// error out in bounded time regardless of the dead set.
func TestFleetNoProgressBounded(t *testing.T) {
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"report":{"loops":[],"summary":{},"total_loops":0}}`)
	}))
	defer empty.Close()

	nodes := []string{empty.URL, deadAddr(t)}
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: nodes, Policy: fastPolicy()})
	coord.SetMetrics(newMetrics(nodes))

	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = coord.Analyze(ctx, prog, "fleet.mc", fleetSrc, fleet.Knobs{Schedules: 1}, nil)
	if err == nil {
		t.Fatal("analyze against a loop-omitting worker succeeded")
	}
	if ctx.Err() != nil {
		t.Fatalf("coordinator spun until the test deadline: %v", err)
	}
	if !strings.Contains(err.Error(), "missing from worker reports") {
		t.Errorf("error = %v, want the missing-loops guard", err)
	}
}

// TestFleetRetryAfterHonored: a worker that sheds with 503 + Retry-After
// is retried on the same node no sooner than its hint — the coordinator
// used to re-arrive immediately, straight back into the overload.
func TestFleetRetryAfterHonored(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	single.stop()

	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	worker := server.New(server.Config{Workers: 2, Cache: c})
	var sheds atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"shedding"}`)
			return
		}
		worker.Handler().ServeHTTP(w, r)
	}))
	defer stub.Close()

	nodes := []string{stub.URL}
	policy := fastPolicy()
	policy.NodeRetries = 1
	m := newMetrics(nodes)
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: nodes, Policy: policy})
	coord.SetMetrics(m)

	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc, fleet.Knobs{Schedules: 1}, nil)
	if err != nil {
		t.Fatalf("analyze through a shedding worker: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retry re-arrived after %v; Retry-After of 1s was not honored", elapsed)
	}
	if got := renderTable(rep); got != want {
		t.Errorf("table after shed+retry diverged:\n--- healthy ---\n%s--- got ---\n%s", want, got)
	}
	if m.NodeRetries.Value() == 0 {
		t.Error("no same-node retries counted")
	}
}

// TestFleetHedgedDispatch: a straggling worker's batch is re-issued to
// the ring successor after the hedge delay and the successor's result
// wins, so one slow node costs the hedge delay, not its full stall.
func TestFleetHedgedDispatch(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	single.stop()

	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	refs := fleet.EnumerateLoops(prog)

	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	worker := server.New(server.Config{Workers: 2, Cache: c})
	const stall = 3 * time.Second

	// Retry listener pairs until the ring splits the loops across both
	// nodes, so the slow node is guaranteed a batch to straggle on.
	var urls []string
	var listeners []net.Listener
	for attempt := 0; attempt < 50; attempt++ {
		listeners = nil
		urls = nil
		for i := 0; i < 2; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			listeners = append(listeners, ln)
			urls = append(urls, "http://"+ln.Addr().String())
		}
		ring := fleet.NewRing(urls)
		route := routerFor(prog)
		owners := map[string]bool{}
		for _, ref := range refs {
			owners[ring.Owner(route(ref), nil)] = true
		}
		if len(owners) == 2 {
			break
		}
		for _, ln := range listeners {
			ln.Close()
		}
		listeners = nil
	}
	if listeners == nil {
		t.Fatal("ring never split the loops across both nodes")
	}

	// Node 0 straggles on every dispatch; node 1 serves promptly.
	slow := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			time.Sleep(stall)
		}
		worker.Handler().ServeHTTP(w, r)
	})}
	fast := &http.Server{Handler: worker.Handler()}
	go slow.Serve(listeners[0])
	go fast.Serve(listeners[1])
	t.Cleanup(func() { slow.Close(); fast.Close() })

	policy := fastPolicy()
	policy.HedgeAfter = 100 * time.Millisecond
	m := newMetrics(urls)
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: urls, Policy: policy})
	coord.SetMetrics(m)

	start := time.Now()
	rep, err := coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc, fleet.Knobs{Schedules: 1}, nil)
	if err != nil {
		t.Fatalf("analyze with a straggling worker: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Errorf("run took %v, at least the full stall; hedging bought nothing", elapsed)
	}
	if got := renderTable(rep); got != want {
		t.Errorf("hedged table diverged:\n--- healthy ---\n%s--- got ---\n%s", want, got)
	}
	if m.Hedges.Value() == 0 {
		t.Error("no hedges counted")
	}
	if m.HedgeWins.Value() == 0 {
		t.Error("no hedge wins counted")
	}
}

// TestFleetProberRejoin: a worker that dies mid-fleet is suspected, the
// background prober re-admits it once it is back on the same address, and
// the next run dispatches to it again.
func TestFleetProberRejoin(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	single.stop()

	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	refs := fleet.EnumerateLoops(prog)
	route := routerFor(prog)

	// Routing hashes node URLs, so whether the victim owns any loops
	// depends on the ports the OS handed out; retry fleets until the ring
	// splits the program across both nodes, so killing node 1 is
	// guaranteed to fail a dispatch (and rejoining it to receive one).
	var f *testFleet
	for attempt := 0; ; attempt++ {
		f = newTestFleet(t, 2)
		ring := fleet.NewRing(f.urls)
		owners := map[string]bool{}
		for _, ref := range refs {
			owners[ring.Owner(route(ref), nil)] = true
		}
		if len(owners) == 2 {
			break
		}
		f.stop()
		if attempt >= 50 {
			t.Fatal("ring never split the loops across both nodes")
		}
	}

	policy := fastPolicy()
	policy.ProbeInterval = 20 * time.Millisecond
	m := newMetrics(f.urls)
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: f.urls, Policy: policy})
	coord.SetMetrics(m)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.StartProber(ctx)
	analyze := func() string {
		t.Helper()
		rep, err := coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc, fleet.Knobs{Schedules: 1}, nil)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		return renderTable(rep)
	}

	f.kill(1)
	time.Sleep(10 * time.Millisecond)
	if got := analyze(); got != want {
		t.Fatalf("table with worker 1 dead diverged:\n--- healthy ---\n%s--- got ---\n%s", want, got)
	}
	if got := coord.Membership().State(f.urls[1]); got == fleet.NodeLive {
		t.Fatal("killed worker still live after a failed run")
	}

	f.restart(t, 1)
	deadline := time.Now().Add(10 * time.Second)
	for coord.Membership().State(f.urls[1]) != fleet.NodeLive {
		if time.Now().After(deadline) {
			t.Fatal("restarted worker never rejoined the ring")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.Rejoins.Value() == 0 {
		t.Error("no rejoins counted")
	}
	if m.Probes.Value() == 0 {
		t.Error("no probes counted")
	}
	if got := analyze(); got != want {
		t.Fatalf("table after rejoin diverged:\n--- healthy ---\n%s--- got ---\n%s", want, got)
	}
}

// TestFleetHealthParallel: one hung node must cost one probe timeout, not
// delay the whole sweep, and failures are reported per node.
func TestFleetHealthParallel(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Second)
	}))
	defer hang.Close()

	nodes := []string{healthy.URL, hang.URL, deadAddr(t)}
	policy := fastPolicy()
	policy.ProbeTimeout = 100 * time.Millisecond
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: nodes, Policy: policy})

	start := time.Now()
	bad := coord.Health(context.Background())
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("health sweep took %v; probes did not run in parallel under the probe timeout", elapsed)
	}
	if len(bad) != 2 {
		t.Errorf("bad nodes = %v, want the hung and dead ones", bad)
	}
	if _, ok := bad[healthy.URL]; ok {
		t.Error("healthy node reported unhealthy")
	}
}

// routerFor returns the same loop → route-key mapping the coordinator
// uses, for ownership checks in tests.
func routerFor(prog *ir.Program) func(fleet.LoopRef) string {
	r := fingerprint.NewRouter(prog)
	return func(ref fleet.LoopRef) string { return r.Route(ref.Fn, ref.Index).String() }
}

// restart boots a fresh worker on a killed slot's original address so the
// prober can re-admit it (the ring routes by URL, so the address must be
// reused).
func (f *testFleet) restart(t *testing.T, i int) {
	t.Helper()
	addr := strings.TrimPrefix(f.urls[i], "http://")
	var ln net.Listener
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Workers:   2,
		Cache:     c,
		PeerNodes: f.urls,
		PeerSelf:  f.urls[i],
	})
	ctx, cancel := context.WithCancel(context.Background())
	f.workers[i] = srv
	f.cancels[i] = cancel
	go srv.Serve(ctx, ln)
}
