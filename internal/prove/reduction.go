package prove

import (
	"fmt"

	"dca/internal/affine"
	"dca/internal/ir"
	"dca/internal/polly"
	"dca/internal/scalar"
	"dca/internal/types"
)

// minmax guard directions.
const (
	dirMin = 1
	dirMax = 2
)

// reduction is the scalar-reduction / min-max / histogram argument. It is
// deliberately stricter than the Idioms baseline detector: beyond "an idiom
// is present and the rest of the loop is clean", it closes every channel
// through which an intermediate (order-dependent) value of the recurrence
// could leak into observable state:
//
//   - reduction temporaries feed only the move back into the accumulator;
//   - min-max comparison results feed only their guard branches, guard
//     blocks contain only the guarded moves, and all guards of one local
//     agree on a direction (min or max) and move the compared value;
//   - histogram loads feed only the combining op, whose result feeds only
//     the store back to the same location (accumulator on the left for
//     subtraction);
//   - all recurrences are integer-typed (float folds are order-sensitive
//     bit-for-bit, which is exactly what the dynamic stage compares);
//   - control flow is the header exit plus verified guard diamonds only.
func (p *prover) reduction(carried []scalar.Carried) string {
	reds := map[*ir.Local]bool{}
	minmax := map[*ir.Local]bool{}
	idioms := 0
	for _, c := range carried {
		switch c.Class {
		case scalar.Induction:
			if c.Local != p.info.IV {
				return fmt.Sprintf("secondary induction %q", c.Local.Name)
			}
		case scalar.Reduction:
			if c.Local.Type == nil || c.Local.Type.Kind != types.Int {
				return fmt.Sprintf("non-integer reduction %q", c.Local.Name)
			}
			reds[c.Local] = true
			idioms++
		case scalar.MinMax:
			if c.Local.Type == nil || c.Local.Type.Kind != types.Int {
				return fmt.Sprintf("non-integer minmax %q", c.Local.Name)
			}
			minmax[c.Local] = true
			idioms++
		default:
			return fmt.Sprintf("loop-carried scalar %q (%s)", c.Local.Name, c.Class)
		}
	}

	// In-loop memory-reduction groups.
	groups := affine.MemReductionGroups(p.fn)
	gInstr := map[ir.Instr]int{}
	groupIDs := map[int]bool{}
	for _, b := range p.blocks {
		for _, in := range b.Instrs {
			if id, ok := groups[in]; ok {
				gInstr[in] = id
				groupIDs[id] = true
			}
		}
	}
	if idioms == 0 && len(groupIDs) == 0 {
		return "no reduction, minmax, or histogram idiom in loop"
	}

	// Instruction restrictions.
	for _, b := range p.blocks {
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Load:
				if i.FieldName != "" {
					return "pointer field access"
				}
			case *ir.Store:
				if i.FieldName != "" {
					return "pointer field access"
				}
			case *ir.Call:
				if !i.Builtin && !p.hermeticFn(i.Callee) {
					return fmt.Sprintf("call to non-hermetic function %q", i.Callee)
				}
			}
		}
	}

	if why := p.checkReductionLeaks(reds); why != "" {
		return why
	}
	carriedSet := map[*ir.Local]bool{p.info.IV: true}
	for s := range reds {
		carriedSet[s] = true
	}
	for m := range minmax {
		carriedSet[m] = true
	}
	guardIfs, why := p.checkMinMax(minmax, carriedSet)
	if why != "" {
		return why
	}
	// Control-flow closure: the only conditional branches are the header's
	// exit test and the verified min-max guards. Everything else (inner
	// loops included) falls through to the dynamic stage.
	for _, b := range p.blocks {
		if _, ok := b.Term.(*ir.If); ok && b != p.loop.Header && !guardIfs[b] {
			return "conditional control flow beyond minmax guards"
		}
	}
	if why := p.checkGroups(gInstr); why != "" {
		return why
	}

	// Memory outside the groups: affine over order-invariant terms, and the
	// dependence tests must clear every pair except within one group.
	accs := p.env.Accesses(p.loop)
	for _, a := range accs {
		if _, ok := gInstr[a.Instr]; ok {
			continue
		}
		if a.SubErr != nil {
			if a.IsWrite {
				return "non-affine store outside the idiom: " + a.SubErr.Error()
			}
			continue // a non-affine read is handled pairwise below
		}
		if !p.subscriptTermsOK(a.Sub) {
			return "subscript depends on a secondary induction"
		}
	}
	skip := func(a, b affine.Access) bool {
		ga, aOK := gInstr[a.Instr]
		gb, bOK := gInstr[b.Instr]
		return aOK && bOK && ga == gb
	}
	if reasons := polly.CarriedMemoryDeps(p.env, p.pa, p.loop, accs, skip); len(reasons) > 0 {
		return reasons[0]
	}
	return ""
}

// checkReductionLeaks verifies that each scalar reduction's update chain is
// closed: the temporary holding s op expr (when the update goes through a
// move) is single-def and feeds only that move, and no update is
// self-referential (s = s op s folds the running value into the operand,
// which does not commute across iterations).
func (p *prover) checkReductionLeaks(reds map[*ir.Local]bool) string {
	for s := range reds {
		for _, d := range p.defs[s] {
			var bo *ir.BinOp
			switch in := d.(type) {
			case *ir.BinOp:
				bo = in
			case *ir.Mov:
				t := in.Src.Local
				if t == nil || len(p.defs[t]) != 1 {
					return fmt.Sprintf("reduction %q updated through an opaque temporary", s.Name)
				}
				b, ok := p.defs[t][0].(*ir.BinOp)
				if !ok {
					return fmt.Sprintf("reduction %q updated through an opaque temporary", s.Name)
				}
				if len(p.uses[t]) != 1 || p.uses[t][0] != d || len(p.termUses[t]) != 0 {
					return fmt.Sprintf("reduction temporary for %q leaks", s.Name)
				}
				bo = b
			default:
				return fmt.Sprintf("unrecognized update of reduction %q", s.Name)
			}
			if bo.X.Local == s && bo.Y.Local == s {
				return fmt.Sprintf("self-referential update of reduction %q", s.Name)
			}
		}
	}
	return ""
}

// checkMinMax verifies every min-max recurrence is a strict guarded-move
// diamond and returns the set of blocks whose If terminators were verified
// as guards.
func (p *prover) checkMinMax(minmax, carriedSet map[*ir.Local]bool) (map[*ir.Block]bool, string) {
	guardIfs := map[*ir.Block]bool{}
	// guardBlocks collects, per minmax local, the guard blocks its own
	// comparisons justify; every def of the local must land in one.
	guardBlocks := map[*ir.Local]map[*ir.Block]bool{}
	for m := range minmax {
		guardBlocks[m] = map[*ir.Block]bool{}
		dir := 0
		for _, u := range p.uses[m] {
			cmp, ok := u.(*ir.BinOp)
			if !ok || !cmp.Op.IsComparison() {
				return nil, fmt.Sprintf("minmax %q used outside a comparison", m.Name)
			}
			var x ir.Operand
			var mOnLeft bool
			switch {
			case cmp.X.Local == m && cmp.Y.Local != m:
				x, mOnLeft = cmp.Y, true
			case cmp.Y.Local == m && cmp.X.Local != m:
				x, mOnLeft = cmp.X, false
			default:
				return nil, fmt.Sprintf("degenerate minmax comparison on %q", m.Name)
			}
			// Direction: `if (x < m) { m = x }` keeps the minimum;
			// `if (m < x) { m = x }` keeps the maximum. Equality tests are
			// not order-insensitive recurrences.
			var d int
			switch cmp.Op {
			case ir.Lt, ir.Le:
				d = dirMin
				if mOnLeft {
					d = dirMax
				}
			case ir.Gt, ir.Ge:
				d = dirMax
				if mOnLeft {
					d = dirMin
				}
			default:
				return nil, fmt.Sprintf("non-ordering minmax comparison on %q", m.Name)
			}
			if dir != 0 && d != dir {
				return nil, fmt.Sprintf("conflicting guard directions for %q", m.Name)
			}
			dir = d
			// The comparison result must feed only guard branches.
			if len(p.defs[cmp.Dst]) != 1 || len(p.uses[cmp.Dst]) != 0 {
				return nil, fmt.Sprintf("minmax comparison result for %q leaks", m.Name)
			}
			if len(p.termUses[cmp.Dst]) == 0 {
				return nil, fmt.Sprintf("unused minmax comparison on %q", m.Name)
			}
			for _, gb := range p.termUses[cmp.Dst] {
				iff, ok := gb.Term.(*ir.If)
				if !ok {
					return nil, fmt.Sprintf("minmax comparison on %q reaches a non-branch terminator", m.Name)
				}
				why := p.checkGuardDiamond(iff, m, x, cmp, minmax, carriedSet, guardBlocks[m])
				if why != "" {
					return nil, why
				}
				guardIfs[gb] = true
			}
		}
		for _, d := range p.defs[m] {
			if !guardBlocks[m][p.instrBlock[d]] {
				return nil, fmt.Sprintf("update of minmax %q outside its own guard", m.Name)
			}
		}
	}
	return guardIfs, ""
}

// checkGuardDiamond verifies one guard branch: each successor is either a
// guard block or the join the other side's guard block jumps to. A guard
// block holds only pure value computation (the compiler recomputes the
// moved value into fresh temporaries) plus moves into minmax locals; it
// must not store, call, or redefine any other carried local, and the value
// moved into m must evaluate to the compared value x (the compiler
// recomputes it into fresh temporaries, so this is a structural value
// equivalence, not an operand identity) — a guard that moves anything else
// (m = f(x)) is order-dependent.
func (p *prover) checkGuardDiamond(iff *ir.If, m *ir.Local, x ir.Operand, cmp ir.Instr, minmax, carriedSet map[*ir.Local]bool, out map[*ir.Block]bool) string {
	isGuardBlock := func(b *ir.Block) bool {
		if !p.loop.Blocks[b] || b == p.loop.Header {
			return false
		}
		g, ok := b.Term.(*ir.Goto)
		if !ok || !p.loop.Blocks[g.Target] {
			return false
		}
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.BinOp, *ir.UnOp:
			case *ir.Load:
				if i.FieldName != "" {
					return false
				}
			case *ir.Mov:
				if !minmax[i.Dst] {
					return false
				}
				if i.Dst == m && !p.sameValue(i.Src, in, x, cmp) {
					return false
				}
				continue
			default:
				return false // Store, Call, anything else
			}
			if d := in.Def(); d != nil && carriedSet[d] {
				return false
			}
		}
		return true
	}
	gotoTarget := func(b *ir.Block) *ir.Block {
		if g, ok := b.Term.(*ir.Goto); ok {
			return g.Target
		}
		return nil
	}
	then, els := iff.Then, iff.Else
	switch {
	case isGuardBlock(then) && gotoTarget(then) == els:
		out[then] = true
	case isGuardBlock(els) && gotoTarget(els) == then:
		out[els] = true
	case isGuardBlock(then) && isGuardBlock(els) && gotoTarget(then) == gotoTarget(els):
		out[then] = true
		out[els] = true
	default:
		return fmt.Sprintf("guard of minmax %q is not a strict diamond", m.Name)
	}
	return ""
}

// checkGroups closes the leak channels of every in-loop memory-reduction
// group: single-def load temp feeding only the combining op, whose result
// feeds only the store back, with the accumulator on the left for Sub, over
// integer elements.
func (p *prover) checkGroups(gInstr map[ir.Instr]int) string {
	loads := map[int]*ir.Load{}
	stores := map[int]*ir.Store{}
	for in, id := range gInstr {
		switch i := in.(type) {
		case *ir.Load:
			loads[id] = i
		case *ir.Store:
			stores[id] = i
		}
	}
	for id, ld := range loads {
		st := stores[id]
		if st == nil {
			return "memory-reduction group split across the loop boundary"
		}
		if ld.Dst.Type == nil || ld.Dst.Type.Kind != types.Int {
			return "non-integer memory reduction"
		}
		if len(p.defs[ld.Dst]) != 1 || len(p.termUses[ld.Dst]) != 0 || len(p.uses[ld.Dst]) != 1 {
			return "memory-reduction load leaks"
		}
		bo, ok := p.uses[ld.Dst][0].(*ir.BinOp)
		if !ok {
			return "memory-reduction load leaks"
		}
		if bo.Op == ir.Sub && bo.X.Local != ld.Dst {
			return "memory reduction subtracts the accumulator"
		}
		if len(p.defs[bo.Dst]) != 1 || len(p.termUses[bo.Dst]) != 0 || len(p.uses[bo.Dst]) != 1 || p.uses[bo.Dst][0] != ir.Instr(st) {
			return "memory-reduction result leaks"
		}
		if st.Src.Local != bo.Dst {
			return "memory-reduction store source mismatch"
		}
	}
	for id := range stores {
		if loads[id] == nil {
			return "memory-reduction group split across the loop boundary"
		}
	}
	return ""
}

func sameOperand(a, b ir.Operand) bool {
	if a.Local != nil || b.Local != nil {
		return a.Local == b.Local
	}
	return a.Const.Equal(b.Const)
}
