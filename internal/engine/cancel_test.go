package engine_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dca/internal/core"
	"dca/internal/engine"
	"dca/internal/irbuild"
	"dca/internal/obs"
)

// spyCache counts stores; Get always misses.
type spyCache struct {
	mu   sync.Mutex
	puts int
}

func (c *spyCache) Get(key string) ([]byte, bool) { return nil, false }

func (c *spyCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
}

func (c *spyCache) Puts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.puts
}

const cancelSrc = `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) {
		a[i] = i;
	}
	for (var i int = 0; i < 64; i++) {
		a[i] = a[i] * 2;
	}
	var s int = 0;
	for (var i int = 0; i < 64; i++) {
		s = s + a[i];
	}
	print(s);
}`

// TestAnalyzeCancelledMidFlight: cancelling the analysis context at the
// first golden run deterministically marks every loop Cancelled (the first
// loop's replays abort, the rest never start), stores nothing in the
// verdict cache, and still returns a complete, ordered report.
func TestAnalyzeCancelledMidFlight(t *testing.T) {
	prog, err := irbuild.Compile("cancel.mc", cancelSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := &obs.Collector{}
	sink := obs.Multi{col, obs.SinkFunc(func(ev obs.Event) {
		if ev.Stage == obs.StageGolden {
			cancel()
		}
	})}
	spy := &spyCache{}
	opt := testOptions()
	opt.Trace = sink
	opt.Cache = spy
	// Prover off: the cancel trigger is the first golden run, which a
	// static proof of these loops would skip entirely.
	opt.NoProve = true
	// One worker: loops run in order, so the cancel lands during loop 0's
	// dynamic stage and every later loop sees a dead context at entry.
	rep, err := engine.Analyze(ctx, prog, engine.Options{Core: opt, Workers: 1})
	if err != nil {
		t.Fatalf("cancelled analysis must still return its report, got %v", err)
	}
	if len(rep.Loops) != 3 {
		t.Fatalf("report has %d loops, want 3", len(rep.Loops))
	}
	for _, lr := range rep.Loops {
		if lr.Verdict != core.Cancelled {
			t.Errorf("loop %s: verdict %s, want cancelled", lr.ID, lr.Verdict)
		}
		if lr.Reason == "" {
			t.Errorf("loop %s: cancelled verdict carries no reason", lr.ID)
		}
	}
	if n := spy.Puts(); n != 0 {
		t.Errorf("cancelled analysis stored %d cache entries, want 0", n)
	}
	var verdicts int
	for _, ev := range col.Events() {
		if ev.Stage == obs.StageVerdict {
			verdicts++
			if ev.Verdict != "cancelled" {
				t.Errorf("verdict event for %s says %q, want cancelled", ev.LoopID, ev.Verdict)
			}
		}
	}
	if verdicts != 3 {
		t.Errorf("got %d verdict events, want 3", verdicts)
	}
}

// TestAnalyzeCancelledBeforeProofLands: a cancellation that arrives while
// the static prover is deciding a loop wins over the proof — the loop
// reports Cancelled, never static-proved, and nothing reaches the verdict
// cache. The trigger is the cache-miss event, which fires immediately
// before the prover runs.
func TestAnalyzeCancelledBeforeProofLands(t *testing.T) {
	prog, err := irbuild.Compile("cancel.mc", cancelSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := &obs.Collector{}
	sink := obs.Multi{col, obs.SinkFunc(func(ev obs.Event) {
		if ev.Stage == obs.StageCache && ev.Outcome == obs.OutcomeMiss {
			cancel()
		}
	})}
	spy := &spyCache{}
	opt := testOptions()
	opt.Trace = sink
	opt.Cache = spy
	rep, err := engine.Analyze(ctx, prog, engine.Options{Core: opt, Workers: 1})
	if err != nil {
		t.Fatalf("cancelled analysis must still return its report, got %v", err)
	}
	for _, lr := range rep.Loops {
		if lr.Verdict != core.Cancelled {
			t.Errorf("loop %s: verdict %s (%s), want cancelled", lr.ID, lr.Verdict, lr.Provenance)
		}
		if lr.Provenance == core.ProvenanceProved {
			t.Errorf("loop %s: proof landed after cancellation", lr.ID)
		}
	}
	if n := spy.Puts(); n != 0 {
		t.Errorf("cancelled analysis stored %d cache entries, want 0", n)
	}
	for _, ev := range col.Events() {
		if ev.Stage == obs.StageProve && ev.Outcome == obs.OutcomeProved {
			t.Errorf("cancelled loop %s emitted a proved event", ev.LoopID)
		}
	}
}

// TestAnalyzeCancelledBeforeStart: a context that is already dead fails the
// reference execution with a cancellation error, not a timeout diagnosis.
func TestAnalyzeCancelledBeforeStart(t *testing.T) {
	prog, err := irbuild.Compile("cancel.mc", cancelSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = engine.Analyze(ctx, prog, engine.Options{Core: testOptions(), Workers: 1})
	if err == nil {
		t.Fatal("analysis under a dead context must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}
