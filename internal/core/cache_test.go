package core_test

import (
	"sync"
	"testing"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/irbuild"
	"dca/internal/sandbox"
)

const cacheSrc = `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 16; i++) {
		var n *Node = new Node;
		n.val = i;
		n.next = head;
		head = n;
	}
	var sum int = 0;
	for (var p *Node = head; p != nil; p = p.next) { sum += p.val; }
	print(sum);
}`

func analyzeCached(t *testing.T, src string, opt core.Options) *core.Report {
	t.Helper()
	prog, err := irbuild.Compile("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := core.Analyze(prog, opt)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

// TestCacheIdentity: a warm-cache run reproduces the cold run's verdict
// table byte-for-byte, serves every dynamic-stage loop from the cache, and
// performs zero replays.
func TestCacheIdentity(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Cache: c}

	cold := analyzeCached(t, cacheSrc, opt)
	if cold.Replays() == 0 {
		t.Fatal("cold run performed no replays")
	}
	if cold.CachedLoops() != 0 {
		t.Fatalf("cold run served %d loops from an empty cache", cold.CachedLoops())
	}

	warm := analyzeCached(t, cacheSrc, opt)
	if cold.String() != warm.String() {
		t.Fatalf("warm verdict table diverged:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if warm.Replays() != 0 {
		t.Fatalf("warm run performed %d replays, want 0", warm.Replays())
	}
	if len(warm.Loops) != len(cold.Loops) {
		t.Fatalf("loop counts differ: %d vs %d", len(warm.Loops), len(cold.Loops))
	}
	for i, w := range warm.Loops {
		cd := cold.Loops[i]
		if cd.Provenance != core.ProvenanceComputed {
			t.Errorf("cold %s: provenance %q", cd.ID, cd.Provenance)
		}
		if w.Provenance != core.ProvenanceCached {
			t.Errorf("warm %s: provenance %q, want cached", w.ID, w.Provenance)
		}
		// Every dynamic-stage field the cache stores must round-trip.
		if w.Verdict != cd.Verdict || w.Reason != cd.Reason ||
			w.Invocations != cd.Invocations || w.Iterations != cd.Iterations ||
			w.SchedulesTested != cd.SchedulesTested || w.Retries != cd.Retries ||
			w.TrapKind != cd.TrapKind {
			t.Errorf("warm %s differs from cold:\n  cold: %+v\n  warm: %+v", w.ID, *cd, *w)
		}
	}
}

// TestCacheInvalidation: a payload change misses the cache and recomputes.
func TestCacheInvalidation(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Cache: c}
	analyzeCached(t, cacheSrc, opt)

	changed := analyzeCached(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = nil;
	for (var i int = 0; i < 16; i++) {
		var n *Node = new Node;
		n.val = i * 2;
		n.next = head;
		head = n;
	}
	var sum int = 0;
	for (var p *Node = head; p != nil; p = p.next) { sum += p.val; }
	print(sum);
}`, opt)
	if changed.CachedLoops() != 0 {
		t.Fatalf("changed program served %d loops from the old program's cache", changed.CachedLoops())
	}
}

// countingCache wraps the verdict-cache interface with counters and an
// optional poisoned read path.
type countingCache struct {
	mu     sync.Mutex
	store  map[string][]byte
	poison []byte // when non-nil, every Get returns this
	gets   int
	puts   int
	hits   int
}

func newCountingCache() *countingCache { return &countingCache{store: map[string][]byte{}} }

func (c *countingCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	if c.poison != nil {
		c.hits++
		return c.poison, true
	}
	v, ok := c.store[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *countingCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.store[key] = val
}

// TestUndecodableRecordRecomputes: a cache serving garbage bytes must
// degrade to a computed verdict, never panic or misreport.
func TestUndecodableRecordRecomputes(t *testing.T) {
	clean := analyzeCached(t, cacheSrc, core.Options{})

	for _, poison := range [][]byte{[]byte("not json"), []byte(`{"verdict": 99}`), []byte(`{"verdict": -1}`)} {
		pc := newCountingCache()
		pc.poison = poison
		rep := analyzeCached(t, cacheSrc, core.Options{Cache: pc})
		if rep.String() != clean.String() {
			t.Fatalf("poisoned cache (%q) changed verdicts:\n%s\nvs\n%s", poison, rep, clean)
		}
		if rep.CachedLoops() != 0 {
			t.Fatalf("poisoned record (%q) accepted as cached", poison)
		}
	}
}

// TestInjectionBypassesCache: armed fault injection must neither read nor
// write the cache — injected traps are harness behaviour.
func TestInjectionBypassesCache(t *testing.T) {
	cc := newCountingCache()
	opt := core.Options{
		Cache:  cc,
		Inject: sandbox.Inject{Kind: sandbox.Fault, AtStep: 50},
	}
	analyzeCached(t, cacheSrc, opt)
	if cc.gets != 0 || cc.puts != 0 {
		t.Fatalf("injection touched the cache: %d gets, %d puts", cc.gets, cc.puts)
	}
}
