package ast_test

import (
	"testing"

	"dca/internal/ast"
	"dca/internal/parser"
)

func TestProgramLookups(t *testing.T) {
	prog, err := parser.Parse("t.mc", `
struct A { x int; }
struct B { y float; }
func f() { }
func g(a int) int { return a; }
func main() { f(); print(g(1)); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Struct("A") == nil || prog.Struct("B") == nil || prog.Struct("C") != nil {
		t.Error("struct lookup broken")
	}
	if prog.Func("g") == nil || prog.Func("nope") != nil {
		t.Error("func lookup broken")
	}
	if got := prog.Struct("A").Fields[0].Name; got != "x" {
		t.Errorf("field = %q", got)
	}
}

func TestPositionsPropagate(t *testing.T) {
	prog, err := parser.Parse("t.mc", `func main() {
	var x int = 1 + 2;
	while (x > 0) { x--; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	if !fn.Pos().IsValid() {
		t.Error("func position missing")
	}
	decl := fn.Body.Stmts[0].(*ast.VarDecl)
	if decl.Pos().Line != 2 {
		t.Errorf("var decl at line %d", decl.Pos().Line)
	}
	loop := fn.Body.Stmts[1].(*ast.WhileStmt)
	if loop.Pos().Line != 3 {
		t.Errorf("while at line %d", loop.Pos().Line)
	}
	if !decl.Pos().Before(loop.Pos()) {
		t.Error("ordering broken")
	}
}

func TestTypeStrings(t *testing.T) {
	prog, err := parser.Parse("t.mc", `
struct S { p *S; a []int; m [][]float; }
func main() { }
`)
	if err != nil {
		t.Fatal(err)
	}
	fields := prog.Struct("S").Fields
	want := []string{"*S", "[]int", "[][]float"}
	for i, w := range want {
		if got := fields[i].Type.String(); got != w {
			t.Errorf("field %d type = %q, want %q", i, got, w)
		}
	}
}
